// Package diagnosis is the public API of this repository: a Go
// implementation of the circuit-diagnosis procedures analyzed in
//
//	G. Fey, S. Safarpour, A. Veneris, R. Drechsler:
//	"On the Relation Between Simulation-based and SAT-based Diagnosis",
//	DATE 2006.
//
// Given a faulty combinational implementation and a set of failing tests
// (input vector, erroneous output, correct value), the package locates
// candidate gates whose correction rectifies the tests, with three
// engines at different points of the speed/quality trade-off the paper
// maps out:
//
//   - BSIM — path-tracing over sensitized paths; linear time, marks
//     candidate regions, no validity guarantee.
//   - COV — set covering over the path-trace candidate sets; fast, small
//     solutions, still no validity guarantee (Lemma 2).
//   - BSAT — complete SAT-based diagnosis; slower, but every reported
//     correction is valid and essential-only (Lemmas 1 and 3).
//
// Hybrids (Section 6 of the paper) combine the engines: simulation
// results steer the SAT search, or covering solutions are validated and
// repaired by SAT.
//
// The underlying substrates — a gate-level netlist model with .bench
// I/O, a 64-way bit-parallel simulator, a CDCL SAT solver, CNF and
// cardinality encoders, error injection, test generation, a synthetic
// ISCAS89-like benchmark suite and the experiment harness reproducing
// the paper's tables and figures — live in internal/ packages and are
// re-exported here where they are part of the supported surface.
package diagnosis

import (
	"context"
	"fmt"
	"io"
	"os"

	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/metrics"
	"repro/internal/seq"
	"repro/internal/sim"
	"repro/internal/tgen"
)

// Kind identifies a gate function for programmatic circuit construction.
type Kind = logic.Kind

// Gate kinds accepted by Builder.Gate.
const (
	Buf  = logic.Buf
	Not  = logic.Not
	And  = logic.And
	Nand = logic.Nand
	Or   = logic.Or
	Nor  = logic.Nor
	Xor  = logic.Xor
	Xnor = logic.Xnor
)

// Core data types.
type (
	// Circuit is a combinational gate-level netlist in topological order.
	Circuit = circuit.Circuit
	// Builder assembles circuits programmatically.
	Builder = circuit.Builder
	// Test is one diagnosis triple (vector, erroneous output, correct value).
	Test = circuit.Test
	// TestSet is an ordered collection of tests.
	TestSet = circuit.TestSet
	// Correction is a set of candidate gates rectifying the tests.
	Correction = core.Correction
	// SolutionSet is a list of corrections plus completeness information.
	SolutionSet = core.SolutionSet
	// FaultSet records injected error sites.
	FaultSet = faults.FaultSet
	// GenSpec parameterizes the synthetic circuit generator.
	GenSpec = gen.Spec
)

// Diagnosis options and results.
type (
	// PTOptions configures path tracing (Figure 1 of the paper).
	PTOptions = core.PTOptions
	// BSIMResult holds per-test candidate sets and mark counts.
	BSIMResult = core.BSIMResult
	// CovOptions configures set-covering diagnosis (Figure 4).
	CovOptions = core.CovOptions
	// CovResult holds covering solutions (not validity-checked).
	CovResult = core.CovResult
	// BSATOptions configures SAT-based diagnosis (Figure 3).
	BSATOptions = core.BSATOptions
	// BSATResult holds the valid, essential-only corrections.
	BSATResult = core.BSATResult
	// CEGARResult extends BSATResult with abstraction statistics
	// (encoded copies, refinements) of the lazy CEGAR driver.
	CEGARResult = core.CEGARResult
	// RepairResult is the outcome of the COV-seeded hybrid.
	RepairResult = core.RepairResult
	// GateFunction is a reconstructed partial truth table for a repair.
	GateFunction = core.GateFunction
	// InjectOptions configures error injection.
	InjectOptions = faults.Options
	// TestGenOptions configures random test generation.
	TestGenOptions = tgen.Options
	// BSIMQuality / SolutionQuality are the Table 3 statistics.
	BSIMQuality     = metrics.BSIMQuality
	SolutionQuality = metrics.SolutionQuality
)

// Path-trace marking policies.
const (
	MarkFirst  = core.MarkFirst
	MarkRandom = core.MarkRandom
	MarkAll    = core.MarkAll
)

// Error models for injection.
const (
	KindChange      = faults.KindChange
	OutputInversion = faults.OutputInversion
	FunctionChange  = faults.FunctionChange
)

// Cardinality encodings for the BSAT select-line bound.
const (
	SeqCounter = cnf.SeqCounter
	Totalizer  = cnf.Totalizer
	Pairwise   = cnf.Pairwise
)

// Unified engine layer: every diagnosis procedure behind one request/
// response pair (see internal/core's engine registry).
type (
	// Request is the unified diagnosis request: engine name, circuit,
	// tests, correction-size ladder, shard count and budgets.
	Request = core.Request
	// Report is the unified diagnosis response: the canonical solution
	// set plus timings, instance sizes, solver statistics and per-shard
	// breakdowns.
	Report = core.Report
	// ShardStats is one stage of a sharded run in Report.PerShard: the
	// sequential sample stage (Shard == -1) or one parallel worker.
	ShardStats = cnf.ShardStats
)

// Diagnose runs the requested diagnosis engine — "bsim", "cov", "bsat",
// "cegar" or "hybrid" (default "bsat") — and returns its unified
// report. All engines share the request/response shape, cooperative
// cancellation through ctx, and, for the SAT engines, sharded parallel
// enumeration through Request.Shards: with Shards > 1 the candidate
// select-literals are partitioned into disjoint shards enumerated
// concurrently on cloned solver backends, and for complete runs the
// canonically merged result is identical to the monolithic run — the
// same solutions in the same order for any shard count. A budget or
// solution cap truncates sharded and monolithic runs to different
// (both incomplete) prefixes.
//
// The per-procedure entry points (DiagnoseBSIM, DiagnoseCOV,
// DiagnoseBSAT, DiagnoseCEGAR, DiagnoseHybrid) remain for callers that
// want the engine-specific result types.
func Diagnose(ctx context.Context, req Request) (*Report, error) {
	return core.Diagnose(ctx, req)
}

// Engines lists the registered diagnosis engines, sorted by name.
func Engines() []string { return core.EngineNames() }

// NewBuilder starts a programmatic circuit description.
func NewBuilder(name string) *Builder { return circuit.NewBuilder(name) }

// ParseBench reads an ISCAS .bench netlist; flip-flops are converted to
// pseudo-primary inputs/outputs (full-scan combinational model).
func ParseBench(name string, r io.Reader) (*Circuit, error) {
	return circuit.ParseBench(name, r)
}

// LoadBench reads a .bench netlist from a file.
func LoadBench(path string) (*Circuit, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return circuit.ParseBench(path, f)
}

// WriteBench renders a circuit in .bench format.
func WriteBench(w io.Writer, c *Circuit) error { return circuit.WriteBench(w, c) }

// GenerateCircuit returns a named circuit from the synthetic ISCAS89-like
// suite (see BenchmarkNames).
func GenerateCircuit(name string) (*Circuit, error) { return gen.ByName(name) }

// GenerateCustom builds a synthetic circuit from an explicit spec.
func GenerateCustom(spec GenSpec) (*Circuit, error) { return gen.Generate(spec) }

// BenchmarkNames lists the circuits of the synthetic suite.
func BenchmarkNames() []string { return gen.SuiteNames() }

// Inject returns a copy of golden with opts.Count seeded errors and the
// fault records.
func Inject(golden *Circuit, opts InjectOptions) (*Circuit, *FaultSet, error) {
	return faults.Inject(golden, opts)
}

// MakeTests derives a failing test-set for the golden/faulty pair: fast
// random bit-parallel simulation first, SAT-based distinguishing-vector
// ATPG as fallback for hard-to-hit faults. Returns an error when the
// circuits are equivalent (nothing to diagnose).
func MakeTests(golden, faulty *Circuit, opts TestGenOptions) (TestSet, error) {
	tests, err := tgen.Random(golden, faulty, opts)
	if err == tgen.ErrUndetected {
		tests, err = tgen.ATPG(golden, faulty, tgen.ATPGOptions{Count: opts.Count, PerVector: opts.PerVector})
		if err == tgen.ErrUndetected {
			return nil, fmt.Errorf("diagnosis: circuits are equivalent; no failing test exists")
		}
	}
	return tests, err
}

// VerifyTests checks the test-set invariant (each test fails on faulty,
// Want matches golden); it returns the first violating index or -1.
func VerifyTests(golden, faulty *Circuit, tests TestSet) int {
	return tgen.Verify(golden, faulty, tests)
}

// DiagnoseBSIM runs BasicSimDiagnose: path tracing per test.
func DiagnoseBSIM(faulty *Circuit, tests TestSet, opts PTOptions) *BSIMResult {
	return core.BSIM(faulty, tests, opts)
}

// DiagnoseXList runs the X-injection screening engine (forward
// three-valued implications instead of backward path tracing): a gate is
// a candidate for a test iff an X at its output reaches the erroneous
// output. Pass CovOptions.UseXList to run set covering on these sets.
func DiagnoseXList(faulty *Circuit, tests TestSet) *BSIMResult {
	return core.XDiagnose(faulty, tests)
}

// AdvSim options and results (the advanced simulation-based approach:
// backtracking over path-trace candidates with effect analysis by
// re-simulation).
type (
	AdvSimOptions = core.AdvSimOptions
	AdvSimResult  = core.AdvSimResult
)

// DiagnoseAdvSim runs the advanced simulation-based diagnosis: every
// returned correction is valid and essential, but the candidate pool is
// limited to sensitized paths (it may miss corrections BSAT finds).
func DiagnoseAdvSim(faulty *Circuit, tests TestSet, opts AdvSimOptions) (*AdvSimResult, error) {
	return core.AdvSimDiagnose(faulty, tests, opts)
}

// DiagnoseCOV runs SCDiagnose: BSIM plus all irredundant set covers of
// size at most opts.K.
func DiagnoseCOV(faulty *Circuit, tests TestSet, opts CovOptions) (*CovResult, error) {
	return core.COV(faulty, tests, opts)
}

// DiagnoseBSAT runs BasicSATDiagnose: every solution is a valid
// correction containing only essential candidates, up to size opts.K.
func DiagnoseBSAT(faulty *Circuit, tests TestSet, opts BSATOptions) (*BSATResult, error) {
	return core.BSAT(faulty, tests, opts)
}

// DiagnoseCEGAR runs the counterexample-guided form of SAT diagnosis:
// the instance is seeded with one test per distinct erroneous output
// and grown lazily, with candidate corrections validated against the
// full test-set by the incremental simulation oracle and refuting tests
// added as new copies. The solution set is provably identical to
// DiagnoseBSAT; the instance encodes only CEGARResult.Copies of the m
// test copies the monolith pays for up front.
func DiagnoseCEGAR(faulty *Circuit, tests TestSet, opts BSATOptions) (*CEGARResult, error) {
	return core.CEGARDiagnose(faulty, tests, opts)
}

// DiagnoseHybrid runs BSAT with its decision heuristics steered by
// path-trace mark counts (the paper's Section 6 hybrid); the solution
// set is identical to DiagnoseBSAT.
func DiagnoseHybrid(faulty *Circuit, tests TestSet, opts BSATOptions, pt PTOptions) (*BSATResult, *BSIMResult, error) {
	return core.HybridBSAT(faulty, tests, opts, pt)
}

// RepairCover validates covering solutions by effect analysis and, when
// none is valid, repairs the best candidate with SAT (second Section 6
// hybrid).
func RepairCover(faulty *Circuit, tests TestSet, covRes *CovResult, opts BSATOptions) (*RepairResult, error) {
	return core.CovGuidedRepair(faulty, tests, covRes, opts)
}

// RepairCoverReusing is RepairCover against the live diagnosis session
// of an earlier BSAT/hybrid/CEGAR run over the same circuit, so the
// repair queries skip instance construction entirely. tests is the
// full test-set the repair must be valid for (a CEGAR session encodes
// only a subset of it); every reported repair is validated against it.
func RepairCoverReusing(bsatRes *BSATResult, tests TestSet, covRes *CovResult, opts BSATOptions) (*RepairResult, error) {
	return core.CovGuidedRepairSession(bsatRes.Session(), tests, covRes, opts)
}

// Validate performs exact effect analysis (Definition 3): can values at
// the given gates rectify every test?
func Validate(faulty *Circuit, tests TestSet, gates []int) bool {
	return core.Validate(faulty, tests, gates)
}

// Essential reports whether gates form a valid correction from which no
// gate can be dropped (Definition 4).
func Essential(faulty *Circuit, tests TestSet, gates []int) bool {
	return core.Essential(faulty, tests, gates)
}

// Simulate evaluates the circuit on one vector and returns the output
// values in Circuit.Outputs order.
func Simulate(c *Circuit, vec []bool) []bool { return sim.Eval(c, vec) }

// MeasureBSIM computes the paper's Table 3 BSIM quality statistics
// against known error sites.
func MeasureBSIM(c *Circuit, res *BSIMResult, sites []int) BSIMQuality {
	return metrics.MeasureBSIM(c, res, sites)
}

// MeasureSolutions computes the Table 3 solution quality statistics.
func MeasureSolutions(c *Circuit, ss *SolutionSet, sites []int) SolutionQuality {
	return metrics.MeasureSolutions(c, ss, sites)
}

// Sequential diagnosis (time-frame expansion; the application of BSAT
// the paper cites as [4]).
type (
	// SeqTest is a sequential stimulus: input sequence, initial state,
	// and an erroneous observable output at one frame.
	SeqTest = seq.Test
	// SeqGenOptions configures sequential test generation.
	SeqGenOptions = seq.GenOptions
	// Unrolled is a time-frame expansion of a sequential circuit.
	Unrolled = seq.Unrolled
)

// SimulateSequence runs a sequential circuit (flip-flops recorded in
// Circuit.Latches) over an input sequence from the given initial state,
// returning per-frame observable output values.
func SimulateSequence(c *Circuit, initial []bool, vectors [][]bool) ([][]bool, error) {
	return seq.Simulate(c, initial, vectors)
}

// MakeSeqTests derives failing sequential tests by random-sequence
// simulation of the golden/faulty pair.
func MakeSeqTests(golden, faulty *Circuit, opts SeqGenOptions) ([]SeqTest, error) {
	return seq.GenerateTests(golden, faulty, opts)
}

// DiagnoseSequential runs SAT-based diagnosis on a time-frame expansion:
// one select line per physical gate, shared across frames and tests.
// Reported corrections name gates of the original circuit.
func DiagnoseSequential(faulty *Circuit, tests []SeqTest, frames int, opts BSATOptions) (*BSATResult, *Unrolled, error) {
	return seq.BSAT(faulty, tests, frames, opts)
}

// ValidateSequential checks a sequential correction by exact effect
// analysis on the unrolled circuit.
func ValidateSequential(u *Unrolled, tests []SeqTest, gates []int) (bool, error) {
	return seq.Validate(u, tests, gates)
}
