// Sequential diagnosis: a bug in a state machine only shows up cycles
// after the faulty gate misbehaves, so combinational single-vector
// diagnosis cannot localize it. This example diagnoses a broken 3-bit
// counter through time-frame expansion — the application of SAT-based
// diagnosis the paper cites for sequential errors.
//
//	go run ./examples/sequential
package main

import (
	"fmt"
	"log"
	"strings"

	diagnosis "repro"
)

// counterBench: a 3-bit up-counter with enable and a terminal-count flag.
const counterBench = `# 3-bit counter with terminal count
INPUT(en)
OUTPUT(tc)
b0 = DFF(n0)
b1 = DFF(n1)
b2 = DFF(n2)
n0 = XOR(b0, en)
c0 = AND(b0, en)
n1 = XOR(b1, c0)
c1 = AND(b1, c0)
n2 = XOR(b2, c1)
t01 = AND(b0, b1)
tc = AND(t01, b2)
`

func main() {
	golden, err := diagnosis.ParseBench("counter3", strings.NewReader(counterBench))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("design:", golden, "with", len(golden.Latches), "flip-flops")

	// The bug: the second carry gate computes OR instead of AND, so the
	// counter skips states — but the terminal-count flag only reveals it
	// several cycles later.
	faulty := golden.Clone()
	site, _ := faulty.GateByName("c1")
	faulty.Gates[site].Kind = diagnosis.Or
	fmt.Println("bug:     c1 AND->OR (pretend we don't know)")

	const frames = 6
	tests, err := diagnosis.MakeSeqTests(golden, faulty, diagnosis.SeqGenOptions{
		Count: 6, Frames: frames, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tests:   %d failing input sequences of %d cycles\n\n", len(tests), frames)

	res, unrolled, err := diagnosis.DiagnoseSequential(faulty, tests, frames, diagnosis.BSATOptions{K: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("time-frame expansion: %v\n", unrolled.Comb)
	fmt.Printf("sequential BSAT: %d candidate fixes (complete=%v) in %v\n",
		len(res.Solutions), res.Complete, res.Timings.All)
	for _, sol := range res.Solutions {
		names := make([]string, len(sol.Gates))
		tag := ""
		for i, g := range sol.Gates {
			names[i] = faulty.Gates[g].Name
			if g == site {
				tag = "  <== the actual bug"
			}
		}
		ok, err := diagnosis.ValidateSequential(unrolled, tests, sol.Gates)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  fix {%s}  sequential-effect-analysis=%v%s\n", strings.Join(names, ","), ok, tag)
	}
}
