// Resolution study: how diagnosis quality improves with more tests —
// the phenomenon the paper's Table 3 quantifies ("the finer resolution
// obtained from additional tests").
//
// For one faulty circuit the example sweeps m = 2..32 tests and prints,
// per engine, the number of candidates/solutions and their average
// distance to the real error. Watch BSAT's solution list shrink toward
// the actual site while BSIM's marked set keeps growing.
//
//	go run ./examples/resolution
package main

import (
	"fmt"
	"log"

	diagnosis "repro"
)

func main() {
	golden, err := diagnosis.GenerateCircuit("s526x")
	if err != nil {
		log.Fatal(err)
	}
	faulty, fs, err := diagnosis.Inject(golden, diagnosis.InjectOptions{Count: 2, Seed: 8})
	if err != nil {
		log.Fatal(err)
	}
	allTests, err := diagnosis.MakeTests(golden, faulty, diagnosis.TestGenOptions{Count: 32, Seed: 8})
	if err != nil {
		log.Fatal(err)
	}
	sites := fs.Sites()
	fmt.Printf("circuit %v\ninjected %v\n\n", faulty, fs)
	fmt.Printf("%3s | %12s | %22s | %22s\n", "m", "BSIM |UCi|", "COV #sol avg-dist", "BSAT #sol avg-dist")
	fmt.Println("----+--------------+------------------------+----------------------")

	for _, m := range []int{2, 4, 8, 16, 32} {
		tests := allTests.Prefix(m)
		if len(tests) < m {
			break
		}
		bsim := diagnosis.DiagnoseBSIM(faulty, tests, diagnosis.PTOptions{})
		bq := diagnosis.MeasureBSIM(faulty, bsim, sites)

		cov, err := diagnosis.DiagnoseCOV(faulty, tests, diagnosis.CovOptions{K: 2, MaxSolutions: 20000})
		if err != nil {
			log.Fatal(err)
		}
		cq := diagnosis.MeasureSolutions(faulty, &cov.SolutionSet, sites)

		bsat, err := diagnosis.DiagnoseBSAT(faulty, tests, diagnosis.BSATOptions{K: 2, MaxSolutions: 20000})
		if err != nil {
			log.Fatal(err)
		}
		sq := diagnosis.MeasureSolutions(faulty, &bsat.SolutionSet, sites)

		fmt.Printf("%3d | %12d | %8d %13.2f | %8d %13.2f\n",
			m, bq.UnionSize, cq.NumSolutions, cq.AvgAvg, sq.NumSolutions, sq.AvgAvg)
	}
	fmt.Println("\nEvery BSAT solution above is a guaranteed valid correction;")
	fmt.Println("COV counts include covers that no gate change can realize.")
}
