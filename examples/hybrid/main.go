// Hybrid diagnosis: the future-work direction the paper sketches in
// Section 6, implemented both ways:
//
//  1. Steered search — path-trace mark counts M(g) bump the SAT solver's
//     VSIDS activity for the corresponding select lines, so the solver
//     branches on simulation-suspected gates first. Solution space is
//     provably unchanged; only the amount of search work moves.
//
//  2. Validate-and-repair — set-covering solutions are checked by exact
//     effect analysis, and an invalid initial correction is repaired
//     into a valid one with SAT.
//
//     go run ./examples/hybrid
package main

import (
	"fmt"
	"log"
	"strings"

	diagnosis "repro"
)

func main() {
	golden, err := diagnosis.GenerateCircuit("s838x")
	if err != nil {
		log.Fatal(err)
	}
	faulty, fs, err := diagnosis.Inject(golden, diagnosis.InjectOptions{Count: 2, Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	tests, err := diagnosis.MakeTests(golden, faulty, diagnosis.TestGenOptions{Count: 16, Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("circuit %v\ninjected %v\n%d failing tests\n\n", faulty, fs, len(tests))

	opts := diagnosis.BSATOptions{K: 2, MaxSolutions: 500}

	plain, err := diagnosis.DiagnoseBSAT(faulty, tests, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plain BSAT : %4d solutions, %8d decisions, %6d conflicts, %v\n",
		len(plain.Solutions), plain.Stats.Decisions, plain.Stats.Conflicts, plain.Timings.All)

	steered, _, err := diagnosis.DiagnoseHybrid(faulty, tests, opts, diagnosis.PTOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hybrid BSAT: %4d solutions, %8d decisions, %6d conflicts, %v\n",
		len(steered.Solutions), steered.Stats.Decisions, steered.Stats.Conflicts, steered.Timings.All)

	same := len(plain.Solutions) == len(steered.Solutions)
	fmt.Printf("same solution count: %v (steering may only reorder the search)\n\n", same)

	// Validate-and-repair on the covering solutions.
	cov, err := diagnosis.DiagnoseCOV(faulty, tests, diagnosis.CovOptions{K: 2, MaxSolutions: 2000})
	if err != nil {
		log.Fatal(err)
	}
	valid := 0
	for _, s := range cov.Solutions {
		if diagnosis.Validate(faulty, tests, s.Gates) {
			valid++
		}
	}
	fmt.Printf("COV proposed %d covers; %d are valid corrections (%.0f%%)\n",
		len(cov.Solutions), valid, 100*float64(valid)/float64(len(cov.Solutions)))

	rep, err := diagnosis.RepairCover(faulty, tests, cov, opts)
	if err != nil {
		log.Fatal(err)
	}
	if rep.Found {
		names := make([]string, len(rep.Correction.Gates))
		for i, g := range rep.Correction.Gates {
			names[i] = faulty.Gates[g].Name
		}
		how := "validated as-is"
		if rep.Repaired {
			how = "repaired by SAT"
		}
		fmt.Printf("first valid correction via hybrid flow: {%s} (%s, %v)\n",
			strings.Join(names, ", "), how, rep.Elapsed)
	} else {
		fmt.Println("hybrid flow found no valid correction within bounds")
	}
}
