// Netlist debug: the post-verification design-debug scenario that
// motivates the paper — a synthesized netlist fails equivalence tests
// against its specification, and the designer needs to know which gate
// to fix and what function it should compute.
//
// The example injects a gate-change error into the s1423-class synthetic
// benchmark, diagnoses with BSAT, and then uses the correction values
// from the SAT models to reconstruct the repaired gate's truth table —
// the "determine the 'correct' function of the gate" application from
// Section 4 of the paper.
//
//	go run ./examples/netlistdebug
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	diagnosis "repro"
)

func main() {
	golden, err := diagnosis.GenerateCircuit("s1423x")
	if err != nil {
		log.Fatal(err)
	}
	faulty, fs, err := diagnosis.Inject(golden, diagnosis.InjectOptions{
		Count: 1, Model: diagnosis.KindChange, Seed: 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("implementation:", faulty)
	fmt.Println("actual bug:    ", fs, "(pretend we don't know)")

	tests, err := diagnosis.MakeTests(golden, faulty, diagnosis.TestGenOptions{Count: 16, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("failing tests:  %d triples over %d outputs\n\n", len(tests), len(tests.Outputs()))

	res, err := diagnosis.DiagnoseBSAT(faulty, tests, diagnosis.BSATOptions{
		K: 1, MaxSolutions: 50,
	})
	fmt.Println()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BSAT: %d candidate fixes in %v (instance: %d vars, %d clauses)\n",
		len(res.Solutions), res.Timings.All, res.Vars, res.Clauses)

	// Rank fixes by proximity to the real site for the demo printout.
	site := fs.Sites()[0]
	sort.SliceStable(res.Solutions, func(i, j int) bool {
		return res.Solutions[i].Gates[0] < res.Solutions[j].Gates[0]
	})
	for _, sol := range res.Solutions {
		g := sol.Gates[0]
		gate := &faulty.Gates[g]
		tag := ""
		if g == site {
			tag = "  <== actual error site"
		}
		fmt.Printf("  fix at %-6s (%s)%s\n", gate.Name, gate.Kind, tag)

		// Reconstruct what the gate should compute from the SAT models.
		funcs, err := res.ExtractFunctions(sol)
		if err != nil {
			log.Fatal(err)
		}
		for _, gf := range funcs {
			if len(gf.Care) == 0 {
				continue
			}
			var rows []string
			minterms := make([]int, 0, len(gf.Care))
			for m := range gf.Care {
				minterms = append(minterms, m)
			}
			sort.Ints(minterms)
			for _, m := range minterms {
				val := 0
				if gf.Care[m] {
					val = 1
				}
				rows = append(rows, fmt.Sprintf("%0*b->%d", len(gf.Fanin), m, val))
			}
			fmt.Printf("       required behaviour (%d care minterms, consistent=%v): %s\n",
				len(gf.Care), gf.Agrees, strings.Join(rows, " "))
		}
		if g == site {
			// Compare with the golden gate's true function.
			fmt.Printf("       golden gate was: %s\n", golden.Gates[g].Kind)
		}
	}
}
