// Quickstart: the smallest end-to-end diagnosis session.
//
// We build a four-gate circuit, break one gate, derive failing tests by
// comparing against the intact version, and run all three diagnosis
// engines of the paper — path tracing (BSIM), set covering (COV) and
// SAT-based diagnosis (BSAT) — printing what each can and cannot
// guarantee.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	diagnosis "repro"
)

func main() {
	// A 1-bit multiplexer: out = (sel AND a) OR (!sel AND b).
	b := diagnosis.NewBuilder("mux1")
	sel := b.Input("sel")
	a := b.Input("a")
	bb := b.Input("b")
	nsel := b.Gate(diagnosis.Not, "nsel", sel)
	hi := b.Gate(diagnosis.And, "hi", sel, a)
	lo := b.Gate(diagnosis.And, "lo", nsel, bb)
	out := b.Gate(diagnosis.Or, "out", hi, lo)
	b.Output(out)
	golden, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("golden: ", golden)

	// Break it: a designer wired "hi" as OR instead of AND.
	faulty, fs, err := diagnosis.Inject(golden, diagnosis.InjectOptions{
		Count: 1, Model: diagnosis.KindChange, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("injected:", fs)

	// Failing tests (vector, erroneous output, correct value).
	tests, err := diagnosis.MakeTests(golden, faulty, diagnosis.TestGenOptions{Count: 4, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tests:   %d failing triples\n\n", len(tests))

	// 1. BSIM: linear-time path tracing; candidate regions only.
	bsim := diagnosis.DiagnoseBSIM(faulty, tests, diagnosis.PTOptions{})
	fmt.Printf("BSIM marked %d gates: %s\n", len(bsim.Union()), gateNames(faulty, bsim.Union()))

	// 2. COV: all irredundant covers of the candidate sets; fast but a
	//    cover need not be a real fix (the paper's Lemma 2).
	cov, err := diagnosis.DiagnoseCOV(faulty, tests, diagnosis.CovOptions{K: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("COV found %d covering solutions:\n", len(cov.Solutions))
	for _, s := range cov.Solutions {
		valid := diagnosis.Validate(faulty, tests, s.Gates)
		fmt.Printf("  {%s}  valid-correction=%v\n", gateNames(faulty, s.Gates), valid)
	}

	// 3. BSAT: every solution is a guaranteed valid correction (Lemma 1)
	//    with only essential gates (Lemma 3).
	bsat, err := diagnosis.DiagnoseBSAT(faulty, tests, diagnosis.BSATOptions{K: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BSAT found %d valid corrections:\n", len(bsat.Solutions))
	for _, s := range bsat.Solutions {
		marker := ""
		for _, g := range s.Gates {
			for _, site := range fs.Sites() {
				if g == site {
					marker = "  <-- the actual error site"
				}
			}
		}
		fmt.Printf("  {%s}%s\n", gateNames(faulty, s.Gates), marker)
	}
}

func gateNames(c *diagnosis.Circuit, gates []int) string {
	names := make([]string, len(gates))
	for i, g := range gates {
		names[i] = c.Gates[g].Name
	}
	return strings.Join(names, ", ")
}
