// Package cover solves the set-covering problem underlying the paper's
// third diagnosis approach (SCDiagnose, Figure 4): given the candidate
// sets C1..Cm produced by path tracing, find all irredundant hitting sets
// C* of size at most k — sets containing at least one element of every Ci
// such that no element can be removed (conditions (a), (b), (c)).
//
// Three engines are provided: a SAT-based enumerator (the paper solved
// its covering instances with zchaff), an explicit branch-and-bound
// enumerator used for cross-checking, and a greedy heuristic for the
// "one solution" timing column of Table 2.
//
// Note that a "hitting set" view is used throughout: elements hit sets.
// This matches the paper's formulation of condition (a).
package cover

import (
	"context"
	"fmt"
	"sort"
	"strconv"

	"repro/internal/cnf"
	"repro/internal/sat"
)

// appendInt appends the decimal form of v to dst without allocating.
func appendInt(dst []byte, v int) []byte {
	return strconv.AppendInt(dst, int64(v), 10)
}

// Problem is a set-covering instance over integer elements (gate IDs).
type Problem struct {
	Sets [][]int // the candidate sets Ci; must be non-empty for solvability
}

// NewProblem copies the given sets into a problem, deduplicating
// elements within each set.
func NewProblem(sets [][]int) *Problem {
	p := &Problem{Sets: make([][]int, len(sets))}
	for i, s := range sets {
		seen := make(map[int]bool, len(s))
		var out []int
		for _, e := range s {
			if !seen[e] {
				seen[e] = true
				out = append(out, e)
			}
		}
		sort.Ints(out)
		p.Sets[i] = out
	}
	return p
}

// Universe returns the sorted distinct elements across all sets.
func (p *Problem) Universe() []int {
	seen := make(map[int]bool)
	var u []int
	for _, s := range p.Sets {
		for _, e := range s {
			if !seen[e] {
				seen[e] = true
				u = append(u, e)
			}
		}
	}
	sort.Ints(u)
	return u
}

// Covers reports whether the element set sel (sorted or not) hits every set.
func (p *Problem) Covers(sel []int) bool {
	in := make(map[int]bool, len(sel))
	for _, e := range sel {
		in[e] = true
	}
	for _, s := range p.Sets {
		hit := false
		for _, e := range s {
			if in[e] {
				hit = true
				break
			}
		}
		if !hit {
			return false
		}
	}
	return true
}

// Irredundant reports whether sel is a cover none of whose elements can
// be dropped (the paper's condition (b)).
func (p *Problem) Irredundant(sel []int) bool {
	if !p.Covers(sel) {
		return false
	}
	for i := range sel {
		reduced := make([]int, 0, len(sel)-1)
		reduced = append(reduced, sel[:i]...)
		reduced = append(reduced, sel[i+1:]...)
		if p.Covers(reduced) {
			return false
		}
	}
	return true
}

// Options bounds enumeration.
type Options struct {
	MaxK         int   // largest cover size (required, >= 1)
	MaxSolutions int   // cap on enumerated covers (0 = unlimited)
	MaxConflicts int64 // SAT budget per stage (0 = unlimited)
	// Ctx, when non-nil, cancels the enumeration cooperatively
	// (Result.Complete reports false).
	Ctx context.Context
}

// Result carries the enumerated covers and completeness information.
type Result struct {
	Covers   [][]int // sorted element sets, enumeration order
	Complete bool    // solution space exhausted within budgets
}

// EnumerateSAT enumerates all irredundant covers of size <= MaxK with the
// incremental-SAT discipline of the paper: one selection variable per
// universe element, one clause per candidate set, a cardinality ladder,
// and for limits i = 1..MaxK all models projected onto the selection
// variables, blocking each found cover (Figure 4 via Figure 3's loop).
func EnumerateSAT(p *Problem, opts Options) (*Result, error) {
	if opts.MaxK < 1 {
		return nil, fmt.Errorf("cover: MaxK must be >= 1")
	}
	for i, s := range p.Sets {
		if len(s) == 0 {
			return nil, fmt.Errorf("cover: set %d is empty; no cover exists", i)
		}
	}
	universe := p.Universe()
	s := sat.New()
	s.MaxConflicts = opts.MaxConflicts
	vars := make(map[int]sat.Var, len(universe))
	lits := make([]sat.Lit, len(universe))
	for i, e := range universe {
		v := s.NewVar()
		vars[e] = v
		lits[i] = sat.PosLit(v)
	}
	for _, set := range p.Sets {
		clause := make([]sat.Lit, len(set))
		for i, e := range set {
			clause[i] = sat.PosLit(vars[e])
		}
		s.AddClause(clause...)
	}
	ladder, err := cnf.AddLadder(s, lits, opts.MaxK, cnf.SeqCounter)
	if err != nil {
		return nil, err
	}

	res := &Result{Complete: true}
	for k := 1; k <= opts.MaxK; k++ {
		var assumps []sat.Lit
		if l := ladder.AtMost(k); l != sat.LitUndef {
			assumps = []sat.Lit{l}
		}
		remaining := 0
		if opts.MaxSolutions > 0 {
			remaining = opts.MaxSolutions - len(res.Covers)
			if remaining <= 0 {
				res.Complete = false
				return res, nil
			}
		}
		_, complete := s.EnumerateProjected(lits, sat.EnumOptions{Assumptions: assumps, Ctx: opts.Ctx, MaxSolutions: remaining}, func(trueLits []sat.Lit) bool {
			cov := make([]int, len(trueLits))
			for i, l := range trueLits {
				cov[i] = universe[indexOfLit(lits, l)]
			}
			sort.Ints(cov)
			res.Covers = append(res.Covers, cov)
			return true
		})
		if !complete {
			res.Complete = false
			return res, nil
		}
	}
	return res, nil
}

func indexOfLit(lits []sat.Lit, l sat.Lit) int {
	// lits are the positive literals of consecutively allocated variables,
	// so the variable gap gives the index directly.
	return int(l.Var() - lits[0].Var())
}

// EnumerateBB enumerates all irredundant covers of size <= MaxK with an
// explicit backtracking search (the O(|I|^k) procedure of Table 1): pick
// the first uncovered set, branch on each of its elements, prune by
// size. Used to cross-check the SAT enumerator and as the classic
// simulation-based-community implementation.
//
// Coverage state is maintained incrementally: an element-to-sets index
// is built once and per-set hit counts are adjusted as the search pushes
// and pops elements, so a search node costs O(|sets|) instead of
// re-scanning the selection against every set, and the leaf-level
// irredundancy check (every chosen element uniquely hits some set) needs
// no per-candidate slices or maps.
func EnumerateBB(p *Problem, opts Options) (*Result, error) {
	if opts.MaxK < 1 {
		return nil, fmt.Errorf("cover: MaxK must be >= 1")
	}
	for i, s := range p.Sets {
		if len(s) == 0 {
			return nil, fmt.Errorf("cover: set %d is empty; no cover exists", i)
		}
	}
	res := &Result{Complete: true}
	setsOf := make(map[int][]int) // element -> indices of sets containing it
	for i, set := range p.Sets {
		for _, e := range set {
			setsOf[e] = append(setsOf[e], i)
		}
	}
	hits := make([]int, len(p.Sets)) // per set, how many selected elements hit it
	seen := make(map[string]bool)
	sel := make([]int, 0, opts.MaxK)
	cov := make([]int, 0, opts.MaxK) // reused sorted-copy buffer
	var key []byte                   // reused dedup-key buffer
	nodes := 0
	var rec func() bool
	rec = func() bool {
		if opts.MaxSolutions > 0 && len(res.Covers) >= opts.MaxSolutions {
			res.Complete = false
			return false
		}
		// Poll the cancellation context every few hundred search nodes so
		// it never dominates the per-node cost.
		if nodes++; opts.Ctx != nil && nodes&255 == 0 && opts.Ctx.Err() != nil {
			res.Complete = false
			return false
		}
		// Find first uncovered set.
		uncovered := -1
		for i := range hits {
			if hits[i] == 0 {
				uncovered = i
				break
			}
		}
		if uncovered == -1 {
			cov = append(cov[:0], sel...)
			sort.Ints(cov)
			// Irredundant iff dropping any element would uncover a set,
			// i.e. every element is the unique hitter of some set. The
			// branching rule only ever picks elements of uncovered sets,
			// so sel never holds duplicates and the hit counts decide
			// this exactly (conditions (a) and (b)).
			irredundant := true
			for _, e := range cov {
				unique := false
				for _, si := range setsOf[e] {
					if hits[si] == 1 {
						unique = true
						break
					}
				}
				if !unique {
					irredundant = false
					break
				}
			}
			if irredundant {
				key = key[:0]
				for _, e := range cov {
					key = appendInt(key, e)
					key = append(key, ',')
				}
				if !seen[string(key)] {
					seen[string(key)] = true
					res.Covers = append(res.Covers, append([]int(nil), cov...))
				}
			}
			return true
		}
		if len(sel) == opts.MaxK {
			return true // size bound: prune
		}
		for _, e := range p.Sets[uncovered] {
			sel = append(sel, e)
			for _, si := range setsOf[e] {
				hits[si]++
			}
			ok := rec()
			for _, si := range setsOf[e] {
				hits[si]--
			}
			sel = sel[:len(sel)-1]
			if !ok {
				return false
			}
		}
		return true
	}
	rec()
	// Order deterministically by (size, lexicographic).
	sort.Slice(res.Covers, func(i, j int) bool {
		a, b := res.Covers[i], res.Covers[j]
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		for i := range a {
			if a[i] != b[i] {
				return a[i] < b[i]
			}
		}
		return false
	})
	return res, nil
}

// Greedy returns one (not necessarily minimal-cardinality) irredundant
// cover quickly: repeatedly pick the element hitting the most uncovered
// sets, then strip redundant picks. Used for the "One" columns.
func Greedy(p *Problem) ([]int, error) {
	for i, s := range p.Sets {
		if len(s) == 0 {
			return nil, fmt.Errorf("cover: set %d is empty; no cover exists", i)
		}
	}
	covered := make([]bool, len(p.Sets))
	var sel []int
	for {
		remaining := 0
		for _, c := range covered {
			if !c {
				remaining++
			}
		}
		if remaining == 0 {
			break
		}
		gain := make(map[int]int)
		for i, set := range p.Sets {
			if covered[i] {
				continue
			}
			for _, e := range set {
				gain[e]++
			}
		}
		best, bestGain := -1, 0
		for e, g := range gain {
			if g > bestGain || (g == bestGain && (best == -1 || e < best)) {
				best, bestGain = e, g
			}
		}
		sel = append(sel, best)
		for i, set := range p.Sets {
			if covered[i] {
				continue
			}
			for _, e := range set {
				if e == best {
					covered[i] = true
					break
				}
			}
		}
	}
	// Strip redundant elements (later picks can subsume earlier ones).
	sort.Ints(sel)
	for i := 0; i < len(sel); {
		reduced := make([]int, 0, len(sel)-1)
		reduced = append(reduced, sel[:i]...)
		reduced = append(reduced, sel[i+1:]...)
		if p.Covers(reduced) {
			sel = reduced
		} else {
			i++
		}
	}
	return sel, nil
}
