package cover

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// TestPaperExample1 encodes Example 1 of the paper verbatim: candidate
// sets C1={A,B,F,G}, C2={C,D,E,F,G}, C3={B,C,E,H}, k=2; {B,D} must be
// among the solutions, {A,D,H} (size 3) must not (k=2), and every
// solution must be an irredundant cover.
func TestPaperExample1(t *testing.T) {
	const (
		A = iota
		B
		C
		D
		E
		F
		G
		H
	)
	p := NewProblem([][]int{
		{A, B, F, G},
		{C, D, E, F, G},
		{B, C, E, H},
	})
	res, err := EnumerateSAT(p, Options{MaxK: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatal("incomplete")
	}
	found := func(want []int) bool {
		for _, cov := range res.Covers {
			if fmt.Sprint(cov) == fmt.Sprint(want) {
				return true
			}
		}
		return false
	}
	if !found([]int{B, D}) {
		t.Fatalf("{B,D} missing from %v", res.Covers)
	}
	// {A,D,H} is a valid solution for k=3 but must be absent at k=2.
	if found([]int{A, D, H}) {
		t.Fatal("size-3 solution at k=2")
	}
	for _, cov := range res.Covers {
		if !p.Irredundant(cov) || len(cov) > 2 {
			t.Fatalf("bad solution %v", cov)
		}
	}
	// With k=3, {A,D,H} must appear (the paper's second example solution).
	res3, err := EnumerateSAT(p, Options{MaxK: 3})
	if err != nil {
		t.Fatal(err)
	}
	found3 := false
	for _, cov := range res3.Covers {
		if fmt.Sprint(cov) == fmt.Sprint([]int{A, D, H}) {
			found3 = true
		}
	}
	if !found3 {
		t.Fatalf("{A,D,H} missing at k=3: %v", res3.Covers)
	}
}

func TestCoversAndIrredundant(t *testing.T) {
	p := NewProblem([][]int{{1, 2}, {2, 3}})
	if !p.Covers([]int{2}) || p.Covers([]int{1}) {
		t.Fatal("Covers wrong")
	}
	if !p.Irredundant([]int{2}) {
		t.Fatal("{2} should be irredundant")
	}
	if p.Irredundant([]int{1, 2}) {
		t.Fatal("{1,2} has redundant 1")
	}
	if !p.Irredundant([]int{1, 3}) {
		t.Fatal("{1,3} should be irredundant")
	}
}

func TestUniverseDedupes(t *testing.T) {
	p := NewProblem([][]int{{3, 1, 3}, {1, 2}})
	u := p.Universe()
	if fmt.Sprint(u) != "[1 2 3]" {
		t.Fatalf("universe %v", u)
	}
	if len(p.Sets[0]) != 2 {
		t.Fatalf("in-set duplicate kept: %v", p.Sets[0])
	}
}

func TestEmptySetRejected(t *testing.T) {
	p := NewProblem([][]int{{1}, {}})
	if _, err := EnumerateSAT(p, Options{MaxK: 2}); err == nil {
		t.Fatal("empty set accepted by SAT engine")
	}
	if _, err := EnumerateBB(p, Options{MaxK: 2}); err == nil {
		t.Fatal("empty set accepted by BB engine")
	}
	if _, err := Greedy(p); err == nil {
		t.Fatal("empty set accepted by Greedy")
	}
}

// TestEnginesAgreeProperty: SAT and branch-and-bound enumerate identical
// irredundant cover sets on random instances.
func TestEnginesAgreeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nElems := 3 + rng.Intn(6)
		nSets := 1 + rng.Intn(5)
		sets := make([][]int, nSets)
		for i := range sets {
			size := 1 + rng.Intn(nElems)
			perm := rng.Perm(nElems)[:size]
			sets[i] = perm
		}
		p := NewProblem(sets)
		k := 1 + rng.Intn(3)
		satRes, err := EnumerateSAT(p, Options{MaxK: k})
		if err != nil {
			t.Fatal(err)
		}
		bbRes, err := EnumerateBB(p, Options{MaxK: k})
		if err != nil {
			t.Fatal(err)
		}
		return sameCoverSets(satRes.Covers, bbRes.Covers)
	}
	cfg := &quick.Config{MaxCount: 120}
	if testing.Short() {
		cfg.MaxCount = 30
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func sameCoverSets(a, b [][]int) bool {
	ka := make([]string, len(a))
	kb := make([]string, len(b))
	for i, c := range a {
		ka[i] = fmt.Sprint(c)
	}
	for i, c := range b {
		kb[i] = fmt.Sprint(c)
	}
	sort.Strings(ka)
	sort.Strings(kb)
	return fmt.Sprint(ka) == fmt.Sprint(kb)
}

// TestEnumerationExactlyIrredundant: every enumerated cover is
// irredundant and every irredundant cover of size <= k is enumerated
// (cross-checked against brute force).
func TestEnumerationExactlyIrredundant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nElems := 3 + rng.Intn(4) // <= 6 elements: brute force is cheap
		nSets := 1 + rng.Intn(4)
		sets := make([][]int, nSets)
		for i := range sets {
			size := 1 + rng.Intn(nElems)
			sets[i] = rng.Perm(nElems)[:size]
		}
		p := NewProblem(sets)
		k := 1 + rng.Intn(nElems)
		res, err := EnumerateSAT(p, Options{MaxK: k})
		if err != nil {
			t.Fatal(err)
		}
		var brute [][]int
		for m := 1; m < 1<<uint(nElems); m++ {
			var sel []int
			for e := 0; e < nElems; e++ {
				if m>>uint(e)&1 == 1 {
					sel = append(sel, e)
				}
			}
			if len(sel) <= k && p.Irredundant(sel) {
				brute = append(brute, sel)
			}
		}
		return sameCoverSets(res.Covers, brute)
	}
	cfg := &quick.Config{MaxCount: 100}
	if testing.Short() {
		cfg.MaxCount = 25
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyReturnsIrredundantCover(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nElems := 3 + rng.Intn(8)
		nSets := 1 + rng.Intn(8)
		sets := make([][]int, nSets)
		for i := range sets {
			size := 1 + rng.Intn(nElems)
			sets[i] = rng.Perm(nElems)[:size]
		}
		p := NewProblem(sets)
		sel, err := Greedy(p)
		if err != nil {
			t.Fatal(err)
		}
		return p.Irredundant(sel)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxSolutionsCap(t *testing.T) {
	// Universe of 6 free elements, one set of all: 6 singleton covers.
	p := NewProblem([][]int{{0, 1, 2, 3, 4, 5}})
	res, err := EnumerateSAT(p, Options{MaxK: 1, MaxSolutions: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Covers) != 3 || res.Complete {
		t.Fatalf("cap broken: %d covers, complete=%v", len(res.Covers), res.Complete)
	}
	resBB, err := EnumerateBB(p, Options{MaxK: 1, MaxSolutions: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(resBB.Covers) != 3 || resBB.Complete {
		t.Fatalf("BB cap broken: %d covers, complete=%v", len(resBB.Covers), resBB.Complete)
	}
}

func TestBadK(t *testing.T) {
	p := NewProblem([][]int{{1}})
	if _, err := EnumerateSAT(p, Options{MaxK: 0}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := EnumerateBB(p, Options{MaxK: 0}); err == nil {
		t.Fatal("k=0 accepted by BB")
	}
}
