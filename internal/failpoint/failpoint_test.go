package failpoint

import (
	"errors"
	"testing"
	"time"
)

func TestDisabledIsNoop(t *testing.T) {
	Disable()
	if Active() {
		t.Fatal("Active() = true with no schedule")
	}
	for i := 0; i < 100; i++ {
		if err := Inject("any/name"); err != nil {
			t.Fatalf("Inject with no schedule returned %v", err)
		}
	}
}

func TestEnableEmptyDisables(t *testing.T) {
	if err := Enable("a=error", 1); err != nil {
		t.Fatal(err)
	}
	if !Active() {
		t.Fatal("Active() = false after Enable")
	}
	if err := Enable("", 1); err != nil {
		t.Fatal(err)
	}
	if Active() {
		t.Fatal("Active() = true after empty Enable")
	}
	t.Cleanup(Disable)
}

func TestErrorTerm(t *testing.T) {
	t.Cleanup(Disable)
	if err := Enable("p=error(1)x2", 42); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		err := Inject("p")
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("fire %d: got %v, want ErrInjected", i, err)
		}
		if !IsInjected(err) {
			t.Fatalf("IsInjected(%v) = false", err)
		}
	}
	if err := Inject("p"); err != nil {
		t.Fatalf("after cap: got %v, want nil", err)
	}
	if h := Hits("p"); h.Errors != 2 || h.Failures() != 2 {
		t.Fatalf("Hits = %+v, want 2 errors", h)
	}
}

func TestCancelTerm(t *testing.T) {
	t.Cleanup(Disable)
	if err := Enable("p=cancel(1)x1", 42); err != nil {
		t.Fatal(err)
	}
	err := Inject("p")
	if !errors.Is(err, ErrCanceled) || !IsInjected(err) {
		t.Fatalf("got %v, want ErrCanceled", err)
	}
}

func TestPanicTerm(t *testing.T) {
	t.Cleanup(Disable)
	if err := Enable("p=panic(1)x1", 42); err != nil {
		t.Fatal(err)
	}
	recovered := func() (v any) {
		defer func() { v = recover() }()
		Inject("p")
		return nil
	}()
	if !IsPanic(recovered) {
		t.Fatalf("recovered %v (%T), want *Panic", recovered, recovered)
	}
	if h := Hits("p"); h.Panics != 1 {
		t.Fatalf("Hits = %+v, want 1 panic", h)
	}
	// Cap reached: no more panics.
	if err := Inject("p"); err != nil {
		t.Fatalf("after cap: %v", err)
	}
}

func TestDelayTerm(t *testing.T) {
	t.Cleanup(Disable)
	if err := Enable("p=delay(30ms)x1", 42); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := Inject("p"); err != nil {
		t.Fatalf("delay returned error %v", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("delay slept %v, want >= 30ms", d)
	}
	if h := Hits("p"); h.Delays != 1 || h.Failures() != 0 {
		t.Fatalf("Hits = %+v, want 1 delay, 0 failures", h)
	}
}

func TestDelayComposesWithFailure(t *testing.T) {
	t.Cleanup(Disable)
	if err := Enable("p=delay(1ms);p=error(1)x1", 42); err != nil {
		t.Fatal(err)
	}
	if err := Inject("p"); !errors.Is(err, ErrInjected) {
		t.Fatalf("got %v, want ErrInjected after delay", err)
	}
	if h := Hits("p"); h.Delays != 1 || h.Errors != 1 {
		t.Fatalf("Hits = %+v, want 1 delay + 1 error", h)
	}
}

func TestDeterministicBySeed(t *testing.T) {
	t.Cleanup(Disable)
	draw := func(seed int64) []bool {
		if err := Enable("p=error(0.5)", seed); err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 64)
		for i := range out {
			out[i] = Inject("p") != nil
		}
		return out
	}
	a, b, c := draw(7), draw(7), draw(8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical 64-draw sequences")
	}
}

func TestProbabilityZeroNeverFires(t *testing.T) {
	t.Cleanup(Disable)
	if err := Enable("p=panic(0)", 42); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := Inject("p"); err != nil {
			t.Fatalf("prob 0 fired: %v", err)
		}
	}
}

func TestUnknownNameIsNoop(t *testing.T) {
	t.Cleanup(Disable)
	if err := Enable("p=error(1)", 42); err != nil {
		t.Fatal(err)
	}
	if err := Inject("other"); err != nil {
		t.Fatalf("unknown point returned %v", err)
	}
	if h := Hits("other"); h != (Counts{}) {
		t.Fatalf("Hits(other) = %+v, want zero", h)
	}
}

func TestParseErrors(t *testing.T) {
	t.Cleanup(Disable)
	for _, spec := range []string{
		"noequals",
		"=error",
		"p=",
		"p=frob(1)",
		"p=error(2)",    // prob out of range
		"p=error(-0.1)", // prob out of range
		"p=error(0.5,7)",
		"p=delay",        // missing duration
		"p=delay(10)",    // bare number is not a duration
		"p=delay(-5ms)",  // negative duration
		"p=error(1)x0",   // cap must be >= 1
		"p=error(1)xfoo", // cap must be a number
		"p=error(1",      // unbalanced parens
	} {
		if err := Enable(spec, 1); err == nil {
			t.Errorf("Enable(%q) accepted, want parse error", spec)
		}
	}
	// A failed Enable must not clobber the previous schedule... actually it
	// never installs, so the prior state (disabled) persists.
	if Active() {
		t.Fatal("failed Enable left injection active")
	}
}

func TestParseValidForms(t *testing.T) {
	t.Cleanup(Disable)
	for _, spec := range []string{
		"p=panic",
		"p=panic(0.25)x3",
		"a/b=error(0.5); c=cancel(1)x2 ; d=delay(5ms,0.1)",
		"p=delay(1ms);p=panic(0.1)",
	} {
		if err := Enable(spec, 1); err != nil {
			t.Errorf("Enable(%q) failed: %v", spec, err)
		}
	}
}
