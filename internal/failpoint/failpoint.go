// Package failpoint provides named, seeded fault-injection points for
// chaos testing the diagnosis stack. A failpoint is a call site
// (Inject) identified by a string name; a schedule installed with
// Enable decides, per evaluation, whether the site fires and how:
//
//   - panic:  Inject panics with a *Panic value (the caller's recover
//     harness is what is under test),
//   - error:  Inject returns an error wrapping ErrInjected (a transient
//     failure the caller should retry),
//   - cancel: Inject returns an error wrapping ErrCanceled (a lost or
//     cancelled unit of work),
//   - delay:  Inject sleeps (a straggler), then keeps evaluating the
//     remaining terms.
//
// When no schedule is installed — the production default — Inject is a
// single atomic load and nil return, so instrumented hot paths pay
// effectively nothing. Schedules are deterministic: every point draws
// from its own RNG seeded by the global seed and the point name, and
// each term can cap its total fires ("xN"), so a chaos run with a fixed
// seed injects a reproducible fault budget.
//
// The schedule grammar (DIAG_FAILPOINTS env var, -failpoints flag, or
// test code) is a semicolon-separated list of terms:
//
//	name=kind(args)[xN]
//
//	cnf/cube=panic(0.2)x3          panic on 20% of draws, at most 3 times
//	cnf/cube=error(0.5)            injected error on half the draws
//	service/diagnose=cancel(1)x2   first two evaluations fail as cancelled
//	cnf/cube=delay(25ms,0.3)       30% of evaluations sleep 25ms
//
// Repeating a name adds terms to the same point; terms are evaluated in
// installation order and the first non-delay term that fires decides
// the outcome.
package failpoint

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected marks a transient failure injected by an "error" term.
// Callers classify it with errors.Is and should treat it as retryable.
var ErrInjected = errors.New("failpoint: injected failure")

// ErrCanceled marks an injected cancellation ("cancel" term): the unit
// of work was lost mid-flight and may be re-executed.
var ErrCanceled = errors.New("failpoint: injected cancellation")

// Panic is the value thrown by a "panic" term, so recover harnesses can
// distinguish injected panics from genuine bugs in tests.
type Panic struct{ Name string }

func (p *Panic) Error() string { return "failpoint: injected panic at " + p.Name }

// Kind enumerates the injectable faults.
type Kind int

// The fault kinds of the schedule grammar.
const (
	KindPanic Kind = iota
	KindError
	KindCancel
	KindDelay
)

func (k Kind) String() string {
	switch k {
	case KindPanic:
		return "panic"
	case KindError:
		return "error"
	case KindCancel:
		return "cancel"
	case KindDelay:
		return "delay"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Counts reports how often each kind fired at one point.
type Counts struct {
	Panics, Errors, Cancels, Delays int
}

// Failures is the number of fires that failed the caller's unit of work
// (everything but delays).
func (c Counts) Failures() int { return c.Panics + c.Errors + c.Cancels }

type term struct {
	kind  Kind
	prob  float64
	sleep time.Duration
	max   int // 0 = unlimited
	fired int
}

type point struct {
	mu    sync.Mutex
	terms []*term
	rng   *rand.Rand
	hits  Counts
}

var (
	enabled atomic.Bool
	mu      sync.RWMutex
	points  map[string]*point
)

// Enable parses and installs a schedule, replacing any previous one.
// An empty spec disables injection entirely (same as Disable). The seed
// makes every point's draw sequence reproducible.
func Enable(spec string, seed int64) error {
	parsed, err := parse(spec, seed)
	if err != nil {
		return err
	}
	mu.Lock()
	points = parsed
	mu.Unlock()
	enabled.Store(len(parsed) > 0)
	return nil
}

// Disable removes the schedule; Inject reverts to the zero-cost no-op.
func Disable() {
	enabled.Store(false)
	mu.Lock()
	points = nil
	mu.Unlock()
}

// Active reports whether a schedule is installed.
func Active() bool { return enabled.Load() }

// Inject evaluates the named failpoint under the installed schedule.
// With no schedule, or no terms for this name, it returns nil at the
// cost of one atomic load. Otherwise it may panic (*Panic), sleep, or
// return an error wrapping ErrInjected / ErrCanceled.
func Inject(name string) error {
	if !enabled.Load() {
		return nil
	}
	mu.RLock()
	p := points[name]
	mu.RUnlock()
	if p == nil {
		return nil
	}
	return p.eval(name)
}

func (p *point) eval(name string) error {
	p.mu.Lock()
	var fire *term
	var sleep time.Duration
	for _, t := range p.terms {
		if t.max > 0 && t.fired >= t.max {
			continue
		}
		if t.prob < 1 && p.rng.Float64() >= t.prob {
			continue
		}
		t.fired++
		if t.kind == KindDelay {
			// A straggler is not a failure; keep evaluating so a delay
			// term can compose with a failure term in one schedule.
			p.hits.Delays++
			sleep += t.sleep
			continue
		}
		fire = t
		break
	}
	if fire != nil {
		switch fire.kind {
		case KindPanic:
			p.hits.Panics++
		case KindError:
			p.hits.Errors++
		case KindCancel:
			p.hits.Cancels++
		}
	}
	p.mu.Unlock()
	if sleep > 0 {
		time.Sleep(sleep)
	}
	if fire == nil {
		return nil
	}
	switch fire.kind {
	case KindPanic:
		panic(&Panic{Name: name})
	case KindCancel:
		return fmt.Errorf("%s: %w", name, ErrCanceled)
	default:
		return fmt.Errorf("%s: %w", name, ErrInjected)
	}
}

// Hits returns the fire counts of the named point under the current
// schedule (zero Counts when unknown).
func Hits(name string) Counts {
	mu.RLock()
	p := points[name]
	mu.RUnlock()
	if p == nil {
		return Counts{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits
}

// IsInjected reports whether err originates from an injected failure
// (error or cancel term) — the transient classification retry layers
// key on.
func IsInjected(err error) bool {
	return err != nil && (errors.Is(err, ErrInjected) || errors.Is(err, ErrCanceled))
}

// IsPanic reports whether a recovered value is an injected panic.
func IsPanic(v any) bool {
	_, ok := v.(*Panic)
	return ok
}

func parse(spec string, seed int64) (map[string]*point, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	out := make(map[string]*point)
	for _, raw := range strings.Split(spec, ";") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		name, rhs, ok := strings.Cut(raw, "=")
		name, rhs = strings.TrimSpace(name), strings.TrimSpace(rhs)
		if !ok || name == "" || rhs == "" {
			return nil, fmt.Errorf("failpoint: bad term %q (want name=kind(args)[xN])", raw)
		}
		t, err := parseTerm(rhs)
		if err != nil {
			return nil, fmt.Errorf("failpoint: %s: %w", name, err)
		}
		p := out[name]
		if p == nil {
			h := fnv.New64a()
			h.Write([]byte(name))
			p = &point{rng: rand.New(rand.NewSource(seed ^ int64(h.Sum64())))}
			out[name] = p
		}
		p.terms = append(p.terms, t)
	}
	return out, nil
}

func parseTerm(rhs string) (*term, error) {
	// Split the optional "xN" cap off the end: kind(args)xN.
	max := 0
	if i := strings.LastIndex(rhs, "x"); i > 0 && !strings.ContainsAny(rhs[i:], ")") {
		n, err := strconv.Atoi(rhs[i+1:])
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad fire cap %q", rhs[i:])
		}
		max = n
		rhs = rhs[:i]
	}
	kindName, args := rhs, ""
	if i := strings.Index(rhs, "("); i >= 0 {
		if !strings.HasSuffix(rhs, ")") {
			return nil, fmt.Errorf("unbalanced parens in %q", rhs)
		}
		kindName, args = rhs[:i], rhs[i+1:len(rhs)-1]
	}
	t := &term{prob: 1, max: max}
	switch kindName {
	case "panic":
		t.kind = KindPanic
	case "error":
		t.kind = KindError
	case "cancel":
		t.kind = KindCancel
	case "delay":
		t.kind = KindDelay
	default:
		return nil, fmt.Errorf("unknown kind %q (panic, error, cancel, delay)", kindName)
	}
	fields := strings.Split(args, ",")
	if args == "" {
		fields = nil
	}
	if t.kind == KindDelay {
		if len(fields) < 1 || len(fields) > 2 {
			return nil, fmt.Errorf("delay wants (duration[,prob]), got %q", args)
		}
		d, err := time.ParseDuration(strings.TrimSpace(fields[0]))
		if err != nil || d < 0 {
			return nil, fmt.Errorf("bad delay duration %q", fields[0])
		}
		t.sleep = d
		fields = fields[1:]
	} else if len(fields) > 1 {
		return nil, fmt.Errorf("%s wants at most (prob), got %q", kindName, args)
	}
	if len(fields) == 1 {
		p, err := strconv.ParseFloat(strings.TrimSpace(fields[0]), 64)
		if err != nil || p < 0 || p > 1 {
			return nil, fmt.Errorf("bad probability %q", fields[0])
		}
		t.prob = p
	}
	return t, nil
}
