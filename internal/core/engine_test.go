package core

import (
	"context"
	"testing"
	"testing/quick"
	"time"
)

// canonicalLess is the canonical solution order: size, then numeric
// lexicographic over the gate IDs.
func canonicalLess(a, b Correction) bool {
	if a.Size() != b.Size() {
		return a.Size() < b.Size()
	}
	for i := range a.Gates {
		if a.Gates[i] != b.Gates[i] {
			return a.Gates[i] < b.Gates[i]
		}
	}
	return false
}

// firstScenario returns the first detectable scenario scanning seeds
// upward from start.
func firstScenario(t *testing.T, start int64, p, m int) *scenario {
	t.Helper()
	for seed := start; seed < start+25; seed++ {
		if sc := makeScenario(t, seed, p, m); sc != nil {
			return sc
		}
	}
	t.Fatalf("no detectable scenario from seed %d", start)
	return nil
}

// sameOrder reports whether two solution lists are identical including
// order — the canonical-ordering contract, stronger than SameSolutions.
func sameOrder(a, b []Correction) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Key() != b[i].Key() {
			return false
		}
	}
	return true
}

// TestShardCountInvarianceProperty is the acceptance contract of the
// sharded engine layer: on randomized scenarios, every SAT engine must
// produce the identical solution list — canonical order included — for
// Shards = 1 and Shards = N, and the sharded bsat/cegar results must
// equal monolithic BSAT.
func TestShardCountInvarianceProperty(t *testing.T) {
	engines := []string{"bsat", "cegar", "hybrid"}
	shardCounts := []int{1, 2, 3, 5}
	f := func(seed int64) bool {
		sc := makeScenario(t, seed%5000, 1+int(abs64(seed)%2), 5)
		if sc == nil {
			return true
		}
		mono, err := BSAT(sc.faulty, sc.tests, BSATOptions{K: sc.k})
		if err != nil {
			t.Fatal(err)
		}
		if !mono.Complete {
			return true
		}
		for _, engine := range engines {
			var base []Correction
			for _, n := range shardCounts {
				rep, err := Diagnose(context.Background(), Request{
					Engine: engine, Circuit: sc.faulty, Tests: sc.tests,
					K: sc.k, Shards: n, ShardSample: 1,
				})
				if err != nil {
					t.Fatal(err)
				}
				if !rep.Complete {
					t.Logf("seed %d %s shards=%d: incomplete without budgets", seed, engine, n)
					return false
				}
				if !SameSolutions(&mono.SolutionSet, &rep.SolutionSet) {
					t.Logf("seed %d %s shards=%d: %v != mono %v", seed, engine, n, rep.Solutions, mono.Solutions)
					return false
				}
				if base == nil {
					base = rep.Solutions
				} else if !sameOrder(base, rep.Solutions) {
					t.Logf("seed %d %s shards=%d: order %v != shards=1 order %v", seed, engine, n, rep.Solutions, base)
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 20}
	if testing.Short() {
		cfg.MaxCount = 6
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestRequestSolverKnob: Request.Solver selects the search
// configuration without changing the answer (configurations are
// trajectory-only), and unknown names are rejected up front.
func TestRequestSolverKnob(t *testing.T) {
	sc := firstScenario(t, 1, 2, 5)
	base, err := Diagnose(context.Background(), Request{
		Engine: "bsat", Circuit: sc.faulty, Tests: sc.tests, K: sc.k,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, solver := range []string{"default", "gen2"} {
		rep, err := Diagnose(context.Background(), Request{
			Engine: "bsat", Circuit: sc.faulty, Tests: sc.tests, K: sc.k, Solver: solver,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !sameOrder(base.Solutions, rep.Solutions) {
			t.Fatalf("solver %s: %v != default %v", solver, rep.Solutions, base.Solutions)
		}
	}
	if _, err := Diagnose(context.Background(), Request{
		Engine: "bsat", Circuit: sc.faulty, Tests: sc.tests, K: sc.k, Solver: "bogus",
	}); err == nil {
		t.Fatal("unknown solver accepted")
	}
}

// TestShardedBSATDirect exercises the Shards option on the concrete
// entry point (no registry) including per-shard reporting.
func TestShardedBSATDirect(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		sc := makeScenario(t, seed, 2, 5)
		if sc == nil {
			continue
		}
		mono, err := BSAT(sc.faulty, sc.tests, BSATOptions{K: sc.k})
		if err != nil {
			t.Fatal(err)
		}
		// ShardSample 1 forces the fork path even on small spaces.
		sharded, err := BSAT(sc.faulty, sc.tests, BSATOptions{K: sc.k, Shards: 4, ShardSample: 1})
		if err != nil {
			t.Fatal(err)
		}
		if !mono.Complete || !sharded.Complete {
			continue
		}
		if !sameOrder(mono.Solutions, sharded.Solutions) {
			t.Fatalf("seed %d: sharded %v != mono %v", seed, sharded.Solutions, mono.Solutions)
		}
		if len(sharded.PerShard) == 0 {
			t.Fatalf("seed %d: sharded run missing per-shard stats", seed)
		}
		total := 0
		for _, st := range sharded.PerShard {
			total += st.Solutions
		}
		if total < len(sharded.Solutions) {
			t.Fatalf("seed %d: shards report %d solutions, merged %d", seed, total, len(sharded.Solutions))
		}

		cegar, err := CEGARDiagnose(sc.faulty, sc.tests, BSATOptions{K: sc.k, Shards: 3, ShardSample: 1})
		if err != nil {
			t.Fatal(err)
		}
		if cegar.Complete && !sameOrder(mono.Solutions, cegar.Solutions) {
			t.Fatalf("seed %d: sharded cegar %v != mono %v", seed, cegar.Solutions, mono.Solutions)
		}
	}
}

// TestDiagnoseCancellation: a cancelled context must surface promptly as
// an incomplete result on every SAT engine, and the sat layer's
// mid-enumeration test covers the in-search path.
func TestDiagnoseCancellation(t *testing.T) {
	sc := firstScenario(t, 17, 2, 6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, engine := range []string{"bsat", "cegar", "hybrid", "cov", "bsim"} {
		start := time.Now()
		rep, err := Diagnose(ctx, Request{Engine: engine, Circuit: sc.faulty, Tests: sc.tests, K: sc.k, Shards: 2})
		if err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
		if rep.Complete {
			t.Fatalf("%s: cancelled diagnosis reported complete", engine)
		}
		if elapsed := time.Since(start); elapsed > 30*time.Second {
			t.Fatalf("%s: cancellation took %v", engine, elapsed)
		}
	}
}

// TestDiagnoseRegistry: engine resolution, defaults and error paths.
func TestDiagnoseRegistry(t *testing.T) {
	sc := firstScenario(t, 1, 1, 4)
	names := EngineNames()
	want := []string{"bsat", "bsim", "cegar", "cov", "hybrid"}
	for _, w := range want {
		found := false
		for _, n := range names {
			found = found || n == w
		}
		if !found {
			t.Fatalf("engine %q not registered (have %v)", w, names)
		}
	}
	// Default engine is bsat; report echoes the resolved name.
	rep, err := Diagnose(context.Background(), Request{Circuit: sc.faulty, Tests: sc.tests, K: sc.k})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Engine != "bsat" || !rep.Guaranteed {
		t.Fatalf("default engine report: %q guaranteed=%v", rep.Engine, rep.Guaranteed)
	}
	if _, err := Diagnose(context.Background(), Request{Engine: "no-such", Circuit: sc.faulty, Tests: sc.tests}); err == nil {
		t.Fatal("unknown engine accepted")
	}
	if _, err := Diagnose(context.Background(), Request{Engine: "bsat", Tests: sc.tests}); err == nil {
		t.Fatal("nil circuit accepted")
	}
	if _, err := Diagnose(context.Background(), Request{Engine: "bsat", Circuit: sc.faulty}); err == nil {
		t.Fatal("empty test-set accepted")
	}
	// bsim and cov answer through the same surface, unguaranteed.
	for _, engine := range []string{"bsim", "cov"} {
		rep, err := Diagnose(context.Background(), Request{Engine: engine, Circuit: sc.faulty, Tests: sc.tests, K: sc.k})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Guaranteed {
			t.Fatalf("%s must not claim the Lemma 1/3 guarantee", engine)
		}
	}
}

// TestCanonicalOrderProperty: every engine emits solutions in canonical
// order (size, then lexicographic).
func TestCanonicalOrderProperty(t *testing.T) {
	sc := firstScenario(t, 23, 2, 6)
	for _, engine := range []string{"bsim", "cov", "bsat", "cegar", "hybrid"} {
		rep, err := Diagnose(context.Background(), Request{Engine: engine, Circuit: sc.faulty, Tests: sc.tests, K: sc.k})
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(rep.Solutions); i++ {
			if canonicalLess(rep.Solutions[i], rep.Solutions[i-1]) {
				t.Fatalf("%s: solutions %d/%d out of canonical order: %v then %v",
					engine, i-1, i, rep.Solutions[i-1], rep.Solutions[i])
			}
		}
	}
}
