package core

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/circuit"
	"repro/internal/logic"
	"repro/internal/sim"
)

// PTPolicy selects which controlling input path tracing marks when a
// gate has several inputs at controlling value. The paper's Figure 1
// marks exactly one (the nondeterminism behind "PT either marks {A,B,D}
// or {A,C,D}" in the Lemma 2 proof); MarkAll is the conservative variant
// that marks every controlling input.
type PTPolicy int

// Marking policies.
const (
	MarkFirst  PTPolicy = iota // first controlling input in pin order (deterministic)
	MarkRandom                 // a seeded random controlling input
	MarkAll                    // every controlling input (superset variant)
)

// String names the policy.
func (p PTPolicy) String() string {
	switch p {
	case MarkFirst:
		return "mark-first"
	case MarkRandom:
		return "mark-random"
	case MarkAll:
		return "mark-all"
	default:
		return fmt.Sprintf("PTPolicy(%d)", int(p))
	}
}

// PTOptions configures path tracing.
type PTOptions struct {
	Policy PTPolicy
	Seed   int64 // used by MarkRandom
}

// PathTrace implements the PT procedure of Figure 1 on a single test:
// simulate the vector, mark the gate driving the erroneous output, and
// walk backward over sensitized paths — at each visited gate, if some
// input carries the gate's controlling value, mark one such input (per
// the policy), otherwise mark all inputs. Gates with no controlling
// value (XOR/XNOR, truth tables) mark all inputs. The returned candidate
// set Ci contains the visited internal gates in ascending ID order;
// primary inputs terminate traces and are not candidates (corrections
// apply at gates, mirroring the multiplexer placement of BSAT).
//
// The simulator must wrap the faulty implementation the test failed on.
//
// PathTrace is the one-shot reference entry point; it simulates the
// vector over the whole circuit and runs the single reverse-sweep
// implementation of the marking (traceSweep), which BSIM's event-driven
// traces are equivalence-tested against.
func PathTrace(s *sim.Simulator, t circuit.Test, opts PTOptions) []int {
	c := s.Circuit()
	s.RunVector(t.Vector)
	return newTraceScratch(c).traceSweep(c, s.OutputBit, t, opts)
}

// BSIMResult is the outcome of BasicSimDiagnose: one candidate set per
// test plus the per-gate mark counts M(g).
type BSIMResult struct {
	Sets      [][]int // Ci per test, ascending gate IDs
	MarkCount []int   // M(g) = |{i : g in Ci}| per gate ID
	Elapsed   time.Duration
}

// BSIM runs BasicSimDiagnose (Figure 1) on the faulty implementation c.
// Unlike the one-simulation-per-test reference (BSIMReference), tests
// are packed 64 to a word-parallel evaluation and each test's backward
// trace is event-driven (it visits marked gates only, bucketed by
// level), with the independent per-test traces sharded across a bounded
// worker pool. The result is byte-identical to BSIMReference for every
// policy and worker count.
func BSIM(c *circuit.Circuit, tests circuit.TestSet, opts PTOptions) *BSIMResult {
	return BSIMWorkers(c, tests, opts, 0)
}

// bsimState bundles the per-worker machinery of one BSIM sweep. States
// are pooled per circuit (see bsimPools): the simulator value arrays,
// trace buckets and cone bitsets are recycled across calls, so repeated
// sweeps over the same circuit — the diagnosis serving pattern — do not
// re-allocate or re-zero them.
type bsimState struct {
	s       *sim.Simulator
	scratch *traceScratch
	cone    circuit.Bitset
}

// bsimPools maps circuits to pools of *bsimState. The map is bounded:
// once it holds maxBSIMPools circuits it is cleared wholesale, so a
// process sweeping many distinct circuits cannot pin them (and their
// cached analyses) forever — eviction only costs re-warming the pool.
var (
	bsimPoolMu sync.Mutex
	bsimPools  = make(map[*circuit.Circuit]*sync.Pool)
)

const maxBSIMPools = 8

func bsimPool(c *circuit.Circuit) *sync.Pool {
	bsimPoolMu.Lock()
	defer bsimPoolMu.Unlock()
	p, ok := bsimPools[c]
	if !ok {
		if len(bsimPools) >= maxBSIMPools {
			clear(bsimPools)
		}
		p = &sync.Pool{}
		bsimPools[c] = p
	}
	return p
}

func getBSIMState(c *circuit.Circuit) *bsimState {
	if st, ok := bsimPool(c).Get().(*bsimState); ok {
		return st
	}
	return &bsimState{s: sim.New(c), scratch: newTraceScratch(c), cone: circuit.NewBitset(len(c.Gates))}
}

func putBSIMState(c *circuit.Circuit, st *bsimState) {
	bsimPool(c).Put(st)
}

// BSIMWorkers is BSIM with an explicit worker-pool bound: 0 selects
// runtime.NumCPU, 1 forces a serial run. Results do not depend on the
// worker count.
func BSIMWorkers(c *circuit.Circuit, tests circuit.TestSet, opts PTOptions, workers int) *BSIMResult {
	start := time.Now()
	res := &BSIMResult{
		Sets:      make([][]int, len(tests)),
		MarkCount: make([]int, len(c.Gates)),
	}
	an := c.Analysis()
	levels := an.Levels
	numBatches := (len(tests) + 63) / 64
	switch {
	case numBatches == 0:
	case numBatches == 1:
		// One shared 64-lane evaluation, restricted to the union of the
		// failing outputs' fanin cones (the traces never read values
		// outside them); the per-test traces read the shared value words
		// (each through its own lane) concurrently.
		states := make([]*bsimState, poolSize(len(tests), workers))
		for w := range states {
			states[w] = getBSIMState(c)
		}
		st := states[0]
		vecs := make([][]bool, len(tests))
		st.cone.Clear()
		for i, t := range tests {
			vecs[i] = t.Vector
			st.cone.Or(an.FaninConeBits(t.Output))
		}
		st.s.RunCone(sim.PackVectors(vecs, len(c.Inputs)), st.cone)
		vals := st.s.Values()
		parallelFor(len(tests), workers, func(w, i int) {
			res.Sets[i] = states[w].scratch.trace(c, levels, laneBit(vals, uint(i)), tests[i], perTestPT(opts, i))
		})
		for _, st := range states {
			putBSIMState(c, st)
		}
	default:
		// Whole 64-test batches sharded; each worker owns a simulator.
		states := make([]*bsimState, poolSize(numBatches, workers))
		for w := range states {
			states[w] = getBSIMState(c)
		}
		parallelFor(numBatches, workers, func(w, bi int) {
			lo := bi * 64
			hi := lo + 64
			if hi > len(tests) {
				hi = len(tests)
			}
			batch := tests[lo:hi]
			vecs := make([][]bool, len(batch))
			st := states[w]
			st.cone.Clear()
			for j, t := range batch {
				vecs[j] = t.Vector
				st.cone.Or(an.FaninConeBits(t.Output))
			}
			st.s.RunCone(sim.PackVectors(vecs, len(c.Inputs)), st.cone)
			vals := st.s.Values()
			for j, t := range batch {
				res.Sets[lo+j] = st.scratch.trace(c, levels, laneBit(vals, uint(j)), t, perTestPT(opts, lo+j))
			}
		})
		for _, st := range states {
			putBSIMState(c, st)
		}
	}
	// Mark counts accumulate in test order, off the parallel section, so
	// the result is deterministic.
	for _, ci := range res.Sets {
		for _, g := range ci {
			res.MarkCount[g]++
		}
	}
	res.Elapsed = time.Since(start)
	return res
}

// BSIMReference is the original BasicSimDiagnose loop — one full
// circuit simulation per test via PathTrace. It is the reference oracle
// the batched, event-driven BSIM is equivalence-tested against, and the
// "before" side of the benchmark comparison.
func BSIMReference(c *circuit.Circuit, tests circuit.TestSet, opts PTOptions) *BSIMResult {
	start := time.Now()
	s := sim.New(c)
	res := &BSIMResult{
		Sets:      make([][]int, len(tests)),
		MarkCount: make([]int, len(c.Gates)),
	}
	for i, t := range tests {
		ci := PathTrace(s, t, perTestPT(opts, i))
		res.Sets[i] = ci
		for _, g := range ci {
			res.MarkCount[g]++
		}
	}
	res.Elapsed = time.Since(start)
	return res
}

// perTestPT derives the per-test path-trace options: MarkRandom reseeds
// per test so traces stay independent (and parallelizable).
func perTestPT(opts PTOptions, i int) PTOptions {
	if opts.Policy == MarkRandom {
		opts.Seed += int64(i)
	}
	return opts
}

// laneBit adapts one lane of a 64-lane value array to the single-bit
// reader interface the traces consume.
func laneBit(vals []uint64, lane uint) func(int) bool {
	return func(id int) bool { return vals[id]>>lane&1 == 1 }
}

// traceScratch holds the reusable buffers of the event-driven path
// trace: the mark flags, the per-level worklist buckets and the
// controlling-input scratch. One per goroutine; after warm-up a trace
// allocates only its output slice.
type traceScratch struct {
	marked  []bool
	buckets [][]int32
	ctrl    []int
}

func newTraceScratch(c *circuit.Circuit) *traceScratch {
	return &traceScratch{
		marked:  make([]bool, len(c.Gates)),
		buckets: make([][]int32, c.Analysis().MaxLevel+1),
	}
}

// mark flags gate f and schedules it in its level bucket.
func (ts *traceScratch) mark(levels []int, f int) {
	if !ts.marked[f] {
		ts.marked[f] = true
		ts.buckets[levels[f]] = append(ts.buckets[levels[f]], int32(f))
	}
}

// trace runs the Figure 1 marking for one test over the gate values
// exposed by bit, visiting marked gates only. Marks flow strictly
// downward in level (a marker's fanin sits on a lower level), so
// draining the level buckets in descending order visits every gate
// after all gates that could mark it; the candidate set is identical to
// PathTrace's full reverse sweep. MarkRandom consumes random numbers in
// the reverse sweep's descending-ID visit order, which level buckets do
// not preserve, so it takes the exact-order sweep fallback.
func (ts *traceScratch) trace(c *circuit.Circuit, levels []int, bit func(int) bool, t circuit.Test, opts PTOptions) []int {
	if opts.Policy == MarkRandom {
		return ts.traceSweep(c, bit, t, opts)
	}
	ts.mark(levels, t.Output)
	var ci []int
	for l := levels[t.Output]; l >= 0; l-- {
		b := ts.buckets[l]
		for i := 0; i < len(b); i++ { // bucket cannot grow: marks go to lower levels
			g := int(b[i])
			gate := &c.Gates[g]
			if gate.Kind == logic.Input {
				continue
			}
			ci = append(ci, g)
			ctrlVal, hasCtrl := gate.Kind.Controlling()
			ctrl := ts.ctrl[:0]
			if hasCtrl {
				for _, f := range gate.Fanin {
					if bit(f) == ctrlVal {
						ctrl = append(ctrl, f)
					}
				}
			}
			switch {
			case len(ctrl) == 0:
				for _, f := range gate.Fanin {
					ts.mark(levels, f)
				}
			case opts.Policy == MarkAll:
				for _, f := range ctrl {
					ts.mark(levels, f)
				}
			default: // MarkFirst
				ts.mark(levels, ctrl[0])
			}
			ts.ctrl = ctrl[:0]
		}
		for _, g := range b {
			ts.marked[g] = false
		}
		ts.buckets[l] = b[:0]
	}
	sort.Ints(ci)
	return ci
}

// traceSweep is the full descending-ID reverse sweep over reused
// buffers — the exact visit order of PathTrace, needed for MarkRandom's
// random-number stream.
func (ts *traceScratch) traceSweep(c *circuit.Circuit, bit func(int) bool, t circuit.Test, opts PTOptions) []int {
	var rng *rand.Rand
	if opts.Policy == MarkRandom {
		rng = rand.New(rand.NewSource(opts.Seed))
	}
	ts.marked[t.Output] = true
	var ci []int
	for g := len(c.Gates) - 1; g >= 0; g-- {
		if !ts.marked[g] {
			continue
		}
		ts.marked[g] = false
		gate := &c.Gates[g]
		if gate.Kind == logic.Input {
			continue
		}
		ci = append(ci, g)
		ctrlVal, hasCtrl := gate.Kind.Controlling()
		ctrl := ts.ctrl[:0]
		if hasCtrl {
			for _, f := range gate.Fanin {
				if bit(f) == ctrlVal {
					ctrl = append(ctrl, f)
				}
			}
		}
		switch {
		case len(ctrl) == 0:
			for _, f := range gate.Fanin {
				ts.marked[f] = true
			}
		case opts.Policy == MarkAll:
			for _, f := range ctrl {
				ts.marked[f] = true
			}
		case opts.Policy == MarkRandom:
			ts.marked[ctrl[rng.Intn(len(ctrl))]] = true
		default: // MarkFirst
			ts.marked[ctrl[0]] = true
		}
		ts.ctrl = ctrl[:0]
	}
	sort.Ints(ci)
	return ci
}

// Union returns the set of all marked gates (∪ Ci), ascending.
func (r *BSIMResult) Union() []int {
	var u []int
	for g, m := range r.MarkCount {
		if m > 0 {
			u = append(u, g)
		}
	}
	return u
}

// Intersection returns ∩ Ci — under a single-error assumption the actual
// error site lies in this set.
func (r *BSIMResult) Intersection() []int {
	var out []int
	for g, m := range r.MarkCount {
		if m == len(r.Sets) && m > 0 {
			out = append(out, g)
		}
	}
	return out
}

// MaxMarked returns Gmax: the gates marked by the maximal number of
// tests (the ordering heuristic for multiple errors).
func (r *BSIMResult) MaxMarked() []int {
	max := 0
	for _, m := range r.MarkCount {
		if m > max {
			max = m
		}
	}
	if max == 0 {
		return nil
	}
	var out []int
	for g, m := range r.MarkCount {
		if m == max {
			out = append(out, g)
		}
	}
	return out
}
