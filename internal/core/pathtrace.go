package core

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/circuit"
	"repro/internal/logic"
	"repro/internal/sim"
)

// PTPolicy selects which controlling input path tracing marks when a
// gate has several inputs at controlling value. The paper's Figure 1
// marks exactly one (the nondeterminism behind "PT either marks {A,B,D}
// or {A,C,D}" in the Lemma 2 proof); MarkAll is the conservative variant
// that marks every controlling input.
type PTPolicy int

// Marking policies.
const (
	MarkFirst  PTPolicy = iota // first controlling input in pin order (deterministic)
	MarkRandom                 // a seeded random controlling input
	MarkAll                    // every controlling input (superset variant)
)

// String names the policy.
func (p PTPolicy) String() string {
	switch p {
	case MarkFirst:
		return "mark-first"
	case MarkRandom:
		return "mark-random"
	case MarkAll:
		return "mark-all"
	default:
		return fmt.Sprintf("PTPolicy(%d)", int(p))
	}
}

// PTOptions configures path tracing.
type PTOptions struct {
	Policy PTPolicy
	Seed   int64 // used by MarkRandom
}

// PathTrace implements the PT procedure of Figure 1 on a single test:
// simulate the vector, mark the gate driving the erroneous output, and
// walk backward over sensitized paths — at each visited gate, if some
// input carries the gate's controlling value, mark one such input (per
// the policy), otherwise mark all inputs. Gates with no controlling
// value (XOR/XNOR, truth tables) mark all inputs. The returned candidate
// set Ci contains the visited internal gates in ascending ID order;
// primary inputs terminate traces and are not candidates (corrections
// apply at gates, mirroring the multiplexer placement of BSAT).
//
// The simulator must wrap the faulty implementation the test failed on.
func PathTrace(s *sim.Simulator, t circuit.Test, opts PTOptions) []int {
	c := s.Circuit()
	s.RunVector(t.Vector)

	var rng *rand.Rand
	if opts.Policy == MarkRandom {
		rng = rand.New(rand.NewSource(opts.Seed))
	}
	marked := make([]bool, len(c.Gates))
	marked[t.Output] = true
	var ci []int
	// Gates are in topological order, so a single reverse sweep visits
	// every marked gate after all gates it could be marked by.
	for g := len(c.Gates) - 1; g >= 0; g-- {
		if !marked[g] {
			continue
		}
		gate := &c.Gates[g]
		if gate.Kind == logic.Input {
			continue
		}
		ci = append(ci, g)
		ctrlVal, hasCtrl := gate.Kind.Controlling()
		var controlling []int
		if hasCtrl {
			for _, f := range gate.Fanin {
				if s.OutputBit(f) == ctrlVal {
					controlling = append(controlling, f)
				}
			}
		}
		switch {
		case len(controlling) == 0:
			// No input at controlling value (or no controlling value
			// exists): every input is on a sensitized path.
			for _, f := range gate.Fanin {
				marked[f] = true
			}
		case opts.Policy == MarkAll:
			for _, f := range controlling {
				marked[f] = true
			}
		case opts.Policy == MarkRandom:
			marked[controlling[rng.Intn(len(controlling))]] = true
		default: // MarkFirst
			marked[controlling[0]] = true
		}
	}
	sort.Ints(ci)
	return ci
}

// BSIMResult is the outcome of BasicSimDiagnose: one candidate set per
// test plus the per-gate mark counts M(g).
type BSIMResult struct {
	Sets      [][]int // Ci per test, ascending gate IDs
	MarkCount []int   // M(g) = |{i : g in Ci}| per gate ID
	Elapsed   time.Duration
}

// BSIM runs BasicSimDiagnose (Figure 1): PathTrace for every test of the
// set, on the faulty implementation c.
func BSIM(c *circuit.Circuit, tests circuit.TestSet, opts PTOptions) *BSIMResult {
	start := time.Now()
	s := sim.New(c)
	res := &BSIMResult{
		Sets:      make([][]int, len(tests)),
		MarkCount: make([]int, len(c.Gates)),
	}
	for i, t := range tests {
		o := opts
		if opts.Policy == MarkRandom {
			o.Seed = opts.Seed + int64(i)
		}
		ci := PathTrace(s, t, o)
		res.Sets[i] = ci
		for _, g := range ci {
			res.MarkCount[g]++
		}
	}
	res.Elapsed = time.Since(start)
	return res
}

// Union returns the set of all marked gates (∪ Ci), ascending.
func (r *BSIMResult) Union() []int {
	var u []int
	for g, m := range r.MarkCount {
		if m > 0 {
			u = append(u, g)
		}
	}
	return u
}

// Intersection returns ∩ Ci — under a single-error assumption the actual
// error site lies in this set.
func (r *BSIMResult) Intersection() []int {
	var out []int
	for g, m := range r.MarkCount {
		if m == len(r.Sets) && m > 0 {
			out = append(out, g)
		}
	}
	return out
}

// MaxMarked returns Gmax: the gates marked by the maximal number of
// tests (the ordering heuristic for multiple errors).
func (r *BSIMResult) MaxMarked() []int {
	max := 0
	for _, m := range r.MarkCount {
		if m > max {
			max = m
		}
	}
	if max == 0 {
		return nil
	}
	var out []int
	for g, m := range r.MarkCount {
		if m == max {
			out = append(out, g)
		}
	}
	return out
}
