package core

import (
	"testing"
)

// TestEnumModeEquivalenceCore: the projected enumeration mode must leave
// the BSAT and CEGAR solution sets byte-identical to legacy runs — the
// mode rides the session default (BSATOptions.diagOptions), so one knob
// covers the monolithic, sharded and refinement-driven drivers alike.
func TestEnumModeEquivalenceCore(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		sc := makeScenario(t, seed, 1+int(seed%2), 6)
		if sc == nil {
			continue
		}
		legacy, err := BSAT(sc.faulty, sc.tests, BSATOptions{K: sc.k})
		if err != nil {
			t.Fatal(err)
		}
		if !legacy.Complete {
			continue
		}
		proj, err := BSAT(sc.faulty, sc.tests, BSATOptions{K: sc.k, Enum: "projected"})
		if err != nil {
			t.Fatal(err)
		}
		if !SameSolutions(&legacy.SolutionSet, &proj.SolutionSet) {
			t.Fatalf("seed %d: projected %v != legacy %v", seed, proj.Solutions, legacy.Solutions)
		}
		if len(legacy.Solutions) > 0 && proj.Stats.EarlyTerms == 0 {
			t.Fatalf("seed %d: projected BSAT never early-terminated", seed)
		}
		sharded, err := BSAT(sc.faulty, sc.tests, BSATOptions{K: sc.k, Enum: "projected", Shards: 2, ShardSample: 1})
		if err != nil {
			t.Fatal(err)
		}
		if sharded.Complete && !SameSolutions(&legacy.SolutionSet, &sharded.SolutionSet) {
			t.Fatalf("seed %d: sharded projected %v != legacy %v", seed, sharded.Solutions, legacy.Solutions)
		}
		cegar, err := CEGARDiagnose(sc.faulty, sc.tests, BSATOptions{K: sc.k, Enum: "projected"})
		if err != nil {
			t.Fatal(err)
		}
		if cegar.Complete && !SameSolutions(&legacy.SolutionSet, &cegar.SolutionSet) {
			t.Fatalf("seed %d: cegar projected %v != legacy %v", seed, cegar.Solutions, legacy.Solutions)
		}
	}

	if _, err := BSAT(nil, nil, BSATOptions{K: 1, Enum: "nope"}); err == nil {
		t.Fatal("unknown enum mode accepted")
	}
}
