package core

import (
	"sort"
	"time"

	"repro/internal/circuit"
	"repro/internal/sim"
)

// XDiagnose implements the simulation-based diagnosis style the paper
// contrasts with path tracing in Section 2.2: "an approach based on
// forward implications by injecting X-values" (Boppana et al.'s X-lists).
// For each test, a gate is a candidate iff injecting X at its output
// drives the erroneous output to X under three-valued simulation — a
// per-gate forward effect screen instead of PT's backward trace.
//
// 64 gates are screened per simulation pass (one X per lane), so a test
// costs ceil(|I|/64) passes. The result uses the BSIMResult shape so the
// covering stage (Figure 4) can run on either engine's candidate sets.
//
// Relation to path tracing: X-candidacy is a sound over-approximation of
// single-gate fixability — every gate whose value change can rectify a
// test is X-marked (three-valued simulation is pessimistic but never
// reports a definite value when a refinement differs). PT, in contrast,
// may mark gates whose value cannot influence the output at all (the
// Lemma 2 situation), and may miss influencing gates on unmarked
// branches.
func XDiagnose(c *circuit.Circuit, tests circuit.TestSet) *BSIMResult {
	start := time.Now()
	xs := sim.NewX(c)
	internal := c.InternalGates()
	res := &BSIMResult{
		Sets:      make([][]int, len(tests)),
		MarkCount: make([]int, len(c.Gates)),
	}
	forces := make([]sim.XForce, 0, 64)
	for i, t := range tests {
		inputs := sim.PackVector(t.Vector)
		var ci []int
		for base := 0; base < len(internal); base += 64 {
			hi := base + 64
			if hi > len(internal) {
				hi = len(internal)
			}
			chunk := internal[base:hi]
			forces = forces[:0]
			for lane, g := range chunk {
				forces = append(forces, sim.XForce{Gate: g, Lanes: 1 << uint(lane)})
			}
			xs.RunForced(inputs, forces)
			w := xs.Value(t.Output)
			xmask := ^(w.Zero | w.One)
			for lane := range chunk {
				if xmask>>uint(lane)&1 == 1 {
					ci = append(ci, chunk[lane])
				}
			}
		}
		sort.Ints(ci)
		res.Sets[i] = ci
		for _, g := range ci {
			res.MarkCount[g]++
		}
	}
	res.Elapsed = time.Since(start)
	return res
}

// PerTestFixable reports, for one test, the internal gates whose output
// value flip-or-force rectifies that single test (singleton effect
// analysis). Used to cross-check XDiagnose and as the exact —
// 2x-more-expensive — screen.
func PerTestFixable(c *circuit.Circuit, t circuit.Test) []int {
	s := sim.New(c)
	internal := c.InternalGates()
	inputs := sim.PackVector(t.Vector)
	var out []int
	forces := make([]sim.Forced, 0, 1)
	for _, g := range internal {
		fixable := false
		for _, val := range []uint64{0, ^uint64(0)} {
			forces = append(forces[:0], sim.Forced{Gate: g, Value: val})
			s.RunForced(inputs, forces)
			if s.OutputBit(t.Output) == t.Want {
				fixable = true
				break
			}
		}
		if fixable {
			out = append(out, g)
		}
	}
	return out
}
