package core

import (
	"sort"
	"time"

	"repro/internal/circuit"
	"repro/internal/sim"
)

// XDiagnose implements the simulation-based diagnosis style the paper
// contrasts with path tracing in Section 2.2: "an approach based on
// forward implications by injecting X-values" (Boppana et al.'s X-lists).
// For each test, a gate is a candidate iff injecting X at its output
// drives the erroneous output to X under three-valued simulation — a
// per-gate forward effect screen instead of PT's backward trace.
//
// 64 gates are screened per simulation pass (one X per lane), so a test
// costs ceil(|I|/64) passes. The independent per-test screens are
// sharded across a bounded worker pool (one XSimulator per goroutine);
// candidate sets land in per-test slots, so the result is deterministic.
// The result uses the BSIMResult shape so the covering stage (Figure 4)
// can run on either engine's candidate sets.
//
// Relation to path tracing: X-candidacy is a sound over-approximation of
// single-gate fixability — every gate whose value change can rectify a
// test is X-marked (three-valued simulation is pessimistic but never
// reports a definite value when a refinement differs). PT, in contrast,
// may mark gates whose value cannot influence the output at all (the
// Lemma 2 situation), and may miss influencing gates on unmarked
// branches.
func XDiagnose(c *circuit.Circuit, tests circuit.TestSet) *BSIMResult {
	start := time.Now()
	internal := c.InternalGates()
	res := &BSIMResult{
		Sets:      make([][]int, len(tests)),
		MarkCount: make([]int, len(c.Gates)),
	}
	sims := make([]*sim.XSimulator, poolSize(len(tests), 0))
	for w := range sims {
		sims[w] = sim.NewX(c)
	}
	parallelFor(len(tests), 0, func(w, i int) {
		res.Sets[i] = xScreen(sims[w], internal, tests[i])
	})
	for _, ci := range res.Sets {
		for _, g := range ci {
			res.MarkCount[g]++
		}
	}
	res.Elapsed = time.Since(start)
	return res
}

// xScreen runs the X-injection screen of one test: every internal gate,
// 64 per three-valued pass.
func xScreen(xs *sim.XSimulator, internal []int, t circuit.Test) []int {
	inputs := sim.PackVector(t.Vector)
	var ci []int
	forces := make([]sim.XForce, 0, 64)
	for base := 0; base < len(internal); base += 64 {
		hi := base + 64
		if hi > len(internal) {
			hi = len(internal)
		}
		chunk := internal[base:hi]
		forces = forces[:0]
		for lane, g := range chunk {
			forces = append(forces, sim.XForce{Gate: g, Lanes: 1 << uint(lane)})
		}
		xs.RunForced(inputs, forces)
		w := xs.Value(t.Output)
		xmask := ^(w.Zero | w.One)
		for lane := range chunk {
			if xmask>>uint(lane)&1 == 1 {
				ci = append(ci, chunk[lane])
			}
		}
	}
	sort.Ints(ci)
	return ci
}

// PerTestFixable reports, for one test, the internal gates whose output
// value flip-or-force rectifies that single test (singleton effect
// analysis). Used to cross-check XDiagnose and as the exact —
// 2x-more-expensive — screen. Each candidate is answered by event-driven
// propagation through its fanout cone against the test's resident
// baseline, with a structural screen skipping gates that cannot reach
// the output at all.
func PerTestFixable(c *circuit.Circuit, t circuit.Test) []int {
	an := c.Analysis()
	inc := sim.NewIncremental(c)
	inc.SetBaseline(sim.PackVector(t.Vector))
	baseOK := inc.OutputBit(t.Output) == t.Want
	var out []int
	for _, g := range c.InternalGates() {
		if !an.Reaches(g, t.Output) {
			// Forcing g cannot move the output: fixable iff it already
			// carries the wanted value (then any force "fixes" the test).
			if baseOK {
				out = append(out, g)
			}
			continue
		}
		fixable := false
		for _, val := range []uint64{0, ^uint64(0)} {
			inc.Force(g, val)
			ok := inc.OutputBit(t.Output) == t.Want
			inc.Undo()
			if ok {
				fixable = true
				break
			}
		}
		if fixable {
			out = append(out, g)
		}
	}
	return out
}
