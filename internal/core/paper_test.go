package core

// Executable versions of the paper's worked examples and theory results
// (Section 3). The netlists of Figure 5 are reconstructions that
// preserve the published structure of the arguments: the figures' exact
// pin-level detail is not fully specified in the text, so the circuits
// here are built to exhibit precisely the claimed phenomena.

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/logic"
	"repro/internal/sim"
)

// fig5a builds the Lemma 2 circuit: an AND whose two fanins reconverge
// from a single gate A, with a test wanting output 1 but observing 0.
//
//	i1=1, i2=0:  A = AND(i1,i2) = 0;  B = BUF(A) = 0;  C = BUF(A) = 0
//	D = AND(B, C) = 0, correct value 1.
//
// PT marks {A,B,D} (or {A,C,D} under another controlling choice); the
// cover {B} rectifies nothing.
func fig5a(t *testing.T) (*circuit.Circuit, circuit.Test, map[string]int) {
	t.Helper()
	b := circuit.NewBuilder("fig5a")
	i1 := b.Input("i1")
	i2 := b.Input("i2")
	a := b.Gate(logic.And, "A", i1, i2)
	bb := b.Gate(logic.Buf, "B", a)
	cc := b.Gate(logic.Buf, "C", a)
	d := b.Gate(logic.And, "D", bb, cc)
	b.Output(d)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	test := circuit.Test{Vector: []bool{true, false}, Output: d, Want: true}
	names := map[string]int{"A": a, "B": bb, "C": cc, "D": d}
	return c, test, names
}

// fig5b builds the Lemma 4 circuit: output E = AND(A, B) with both
// fanins at the controlling value, so PT marks only one branch; the
// valid essential correction {A,B} is invisible to set covering.
//
//	i1=0, i2=1, i3=0:  A = AND(i1,i2) = 0;  B = BUF(i3) = 0
//	E = AND(A, B) = 0, correct value 1.
func fig5b(t *testing.T) (*circuit.Circuit, circuit.Test, map[string]int) {
	t.Helper()
	b := circuit.NewBuilder("fig5b")
	i1 := b.Input("i1")
	i2 := b.Input("i2")
	i3 := b.Input("i3")
	a := b.Gate(logic.And, "A", i1, i2)
	bb := b.Gate(logic.Buf, "B", i3)
	e := b.Gate(logic.And, "E", a, bb)
	b.Output(e)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	test := circuit.Test{Vector: []bool{false, true, false}, Output: e, Want: true}
	names := map[string]int{"A": a, "B": bb, "E": e}
	return c, test, names
}

func gateSet(names map[string]int, labels ...string) []int {
	out := make([]int, len(labels))
	for i, l := range labels {
		out[i] = names[l]
	}
	return out
}

func TestFig5aPathTraceMarksOneBranch(t *testing.T) {
	c, test, names := fig5a(t)
	ci := PathTrace(sim.New(c), test, PTOptions{Policy: MarkFirst})
	want := NewCorrection(gateSet(names, "A", "B", "D"))
	got := NewCorrection(ci)
	if got.Key() != want.Key() {
		t.Fatalf("PT marked %v, want %v (the {A,B,D} branch)", got, want)
	}
	// The other nondeterministic outcome, {A,C,D}, arises under MarkAll
	// restricted... verify MarkAll marks the union {A,B,C,D}.
	all := PathTrace(sim.New(c), test, PTOptions{Policy: MarkAll})
	wantAll := NewCorrection(gateSet(names, "A", "B", "C", "D"))
	if NewCorrection(all).Key() != wantAll.Key() {
		t.Fatalf("MarkAll marked %v, want %v", NewCorrection(all), wantAll)
	}
}

// TestLemma2CovSolutionNotValid: there exist covering solutions that are
// not valid corrections.
func TestLemma2CovSolutionNotValid(t *testing.T) {
	c, test, names := fig5a(t)
	covRes, err := COV(c, circuit.TestSet{test}, CovOptions{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !covRes.Complete {
		t.Fatal("COV enumeration incomplete")
	}
	// All three singletons {A}, {B}, {D} cover the single candidate set.
	if len(covRes.Solutions) != 3 {
		t.Fatalf("COV returned %d solutions %v, want 3 singletons", len(covRes.Solutions), covRes.Solutions)
	}
	bSol := NewCorrection([]int{names["B"]})
	if !covRes.ContainsKey(bSol) {
		t.Fatalf("COV solutions %v miss {B}", covRes.Solutions)
	}
	if Validate(c, circuit.TestSet{test}, bSol.Gates) {
		t.Fatal("Lemma 2 violated: {B} validated as a correction")
	}
}

// TestTheorem1CovMinusBSAT: SCDiagnose computes solutions that
// BasicSATDiagnose does not.
func TestTheorem1CovMinusBSAT(t *testing.T) {
	c, test, names := fig5a(t)
	tests := circuit.TestSet{test}
	covRes, err := COV(c, tests, CovOptions{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	satRes, err := BSAT(c, tests, BSATOptions{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !satRes.Complete {
		t.Fatal("BSAT enumeration incomplete")
	}
	// BSAT: exactly the valid singletons {A} and {D}.
	wantSAT := map[string]bool{
		NewCorrection([]int{names["A"]}).Key(): true,
		NewCorrection([]int{names["D"]}).Key(): true,
	}
	if len(satRes.Solutions) != 2 {
		t.Fatalf("BSAT returned %v, want {A} and {D}", satRes.Solutions)
	}
	for _, s := range satRes.Solutions {
		if !wantSAT[s.Key()] {
			t.Fatalf("unexpected BSAT solution %v", s)
		}
	}
	// {B} is in COV but not in BSAT: Theorem 1.
	bSol := NewCorrection([]int{names["B"]})
	if !covRes.ContainsKey(bSol) || satRes.ContainsKey(bSol) {
		t.Fatalf("Theorem 1 witness missing: COV=%v BSAT=%v", covRes.Solutions, satRes.Solutions)
	}
}

// TestLemma4ValidCorrectionMissedByCov: a valid correction within the
// size bound that SCDiagnose cannot produce.
func TestLemma4ValidCorrectionMissedByCov(t *testing.T) {
	c, test, names := fig5b(t)
	tests := circuit.TestSet{test}
	ab := NewCorrection(gateSet(names, "A", "B"))
	if !Validate(c, tests, ab.Gates) {
		t.Fatal("{A,B} should be a valid correction")
	}
	if Validate(c, tests, []int{names["A"]}) || Validate(c, tests, []int{names["B"]}) {
		t.Fatal("{A} or {B} alone should not rectify the test")
	}
	// PT must not mark B (it chose the A branch).
	ci := PathTrace(sim.New(c), test, PTOptions{Policy: MarkFirst})
	for _, g := range ci {
		if g == names["B"] {
			t.Fatal("PT marked B; reconstruction broken")
		}
	}
	covRes, err := COV(c, tests, CovOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if covRes.ContainsKey(ab) {
		t.Fatalf("Lemma 4 violated: COV found %v", ab)
	}
}

// TestTheorem2BSATMinusCov: BasicSATDiagnose computes solutions that
// SCDiagnose does not.
func TestTheorem2BSATMinusCov(t *testing.T) {
	c, test, names := fig5b(t)
	tests := circuit.TestSet{test}
	covRes, err := COV(c, tests, CovOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	satRes, err := BSAT(c, tests, BSATOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !satRes.Complete || !covRes.Complete {
		t.Fatal("enumeration incomplete")
	}
	ab := NewCorrection(gateSet(names, "A", "B"))
	if !satRes.ContainsKey(ab) {
		t.Fatalf("BSAT solutions %v miss {A,B}", satRes.Solutions)
	}
	if covRes.ContainsKey(ab) {
		t.Fatalf("COV unexpectedly found %v", ab)
	}
	// Sanity: BSAT = {{E}, {A,B}} exactly.
	if len(satRes.Solutions) != 2 {
		t.Fatalf("BSAT returned %v, want {{E}, {A,B}}", satRes.Solutions)
	}
}

// TestLemma1AllBSATSolutionsValid (on the worked examples): every BSAT
// solution is a valid correction.
func TestLemma1AllBSATSolutionsValid(t *testing.T) {
	for _, build := range []func(*testing.T) (*circuit.Circuit, circuit.Test, map[string]int){fig5a, fig5b} {
		c, test, _ := build(t)
		tests := circuit.TestSet{test}
		res, err := BSAT(c, tests, BSATOptions{K: 2})
		if err != nil {
			t.Fatal(err)
		}
		for _, sol := range res.Solutions {
			if !Validate(c, tests, sol.Gates) {
				t.Fatalf("%s: BSAT solution %v is not a valid correction", c.Name, sol)
			}
		}
	}
}

// TestLemma3EssentialOnly (on the worked examples): BSAT solutions
// contain only essential candidates and are mutually non-nested.
func TestLemma3EssentialOnly(t *testing.T) {
	for _, build := range []func(*testing.T) (*circuit.Circuit, circuit.Test, map[string]int){fig5a, fig5b} {
		c, test, _ := build(t)
		tests := circuit.TestSet{test}
		res, err := BSAT(c, tests, BSATOptions{K: 2})
		if err != nil {
			t.Fatal(err)
		}
		for i, a := range res.Solutions {
			if !Essential(c, tests, a.Gates) {
				t.Fatalf("%s: solution %v not essential-only", c.Name, a)
			}
			for j, b := range res.Solutions {
				if i != j && a.SubsetOf(b) {
					t.Fatalf("%s: solution %v nested in %v", c.Name, a, b)
				}
			}
		}
	}
}

// TestCovSolutionsAreIrredundantCovers: COV solutions satisfy the
// set-covering conditions (a) and (b) of Figure 4.
func TestCovSolutionsAreIrredundantCovers(t *testing.T) {
	c, test, _ := fig5a(t)
	covRes, err := COV(c, circuit.TestSet{test}, CovOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, sol := range covRes.Solutions {
		if !covRes.Problem.Irredundant(sol.Gates) {
			t.Fatalf("COV solution %v is not an irredundant cover", sol)
		}
		if len(sol.Gates) > 2 {
			t.Fatalf("COV solution %v exceeds k", sol)
		}
	}
}

// TestCovEnginesAgree: the SAT-based and backtracking covering engines
// enumerate identical solution sets.
func TestCovEnginesAgree(t *testing.T) {
	for _, build := range []func(*testing.T) (*circuit.Circuit, circuit.Test, map[string]int){fig5a, fig5b} {
		c, test, _ := build(t)
		tests := circuit.TestSet{test}
		for k := 1; k <= 3; k++ {
			satCov, err := COV(c, tests, CovOptions{K: k, Engine: CovSAT})
			if err != nil {
				t.Fatal(err)
			}
			bbCov, err := COV(c, tests, CovOptions{K: k, Engine: CovBB})
			if err != nil {
				t.Fatal(err)
			}
			if !SameSolutions(&satCov.SolutionSet, &bbCov.SolutionSet) {
				t.Fatalf("%s k=%d: SAT %v vs BB %v", c.Name, k, satCov.Solutions, bbCov.Solutions)
			}
		}
	}
}

// TestHybridSameSolutionsOnExamples: steering the decision heuristics
// must not change the solution space (Section 6's safety property).
func TestHybridSameSolutionsOnExamples(t *testing.T) {
	for _, build := range []func(*testing.T) (*circuit.Circuit, circuit.Test, map[string]int){fig5a, fig5b} {
		c, test, _ := build(t)
		tests := circuit.TestSet{test}
		plain, err := BSAT(c, tests, BSATOptions{K: 2})
		if err != nil {
			t.Fatal(err)
		}
		hyb, _, err := HybridBSAT(c, tests, BSATOptions{K: 2}, PTOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !SameSolutions(&plain.SolutionSet, &hyb.SolutionSet) {
			t.Fatalf("%s: hybrid %v vs plain %v", c.Name, hyb.Solutions, plain.Solutions)
		}
	}
}

// TestCovGuidedRepairOnFig5b: no covering solution of fig5a... on fig5b
// the first COV solutions include the valid {E}; on a crafted case where
// all covering singletons are invalid, SAT repair must find a valid
// correction near the seed.
func TestCovGuidedRepairOnFig5b(t *testing.T) {
	c, test, _ := fig5b(t)
	tests := circuit.TestSet{test}
	covRes, err := COV(c, tests, CovOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := CovGuidedRepair(c, tests, covRes, BSATOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Found {
		t.Fatal("repair found nothing")
	}
	if !Validate(c, tests, rep.Correction.Gates) {
		t.Fatalf("repair returned invalid correction %v", rep.Correction)
	}
}

// TestCovGuidedRepairNeedsRepair exercises the SAT-repair path: force a
// covering result whose only solution is invalid.
func TestCovGuidedRepairNeedsRepair(t *testing.T) {
	c, test, names := fig5a(t)
	tests := circuit.TestSet{test}
	covRes := &CovResult{}
	covRes.Solutions = []Correction{NewCorrection([]int{names["B"]})} // invalid seed
	covRes.Complete = true
	rep, err := CovGuidedRepair(c, tests, covRes, BSATOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Found || !rep.Repaired {
		t.Fatalf("expected SAT repair, got %+v", rep)
	}
	if !Validate(c, tests, rep.Correction.Gates) {
		t.Fatalf("repaired correction %v invalid", rep.Correction)
	}
}
