package core

import (
	"testing"
	"testing/quick"

	"repro/internal/circuit"
	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/tgen"
)

// TestCEGAREquivalenceProperty is the correctness contract of the CEGAR
// driver: on randomized circuits, fault injections and test-sets, and
// across the solution-space-preserving encoding options, CEGARDiagnose
// must return exactly the monolithic BSAT solution set while never
// encoding more test copies than the monolith.
func TestCEGAREquivalenceProperty(t *testing.T) {
	variants := []BSATOptions{
		{},
		{ForceZero: true},
		{ConeOnly: true},
		{ForceZero: true, ConeOnly: true},
	}
	f := func(seed int64) bool {
		sc := makeScenario(t, seed%5000, 1+int(abs64(seed)%2), 6)
		if sc == nil {
			return true
		}
		for _, v := range variants {
			opts := v
			opts.K = sc.k
			mono, err := BSAT(sc.faulty, sc.tests, opts)
			if err != nil {
				t.Fatal(err)
			}
			cegar, err := CEGARDiagnose(sc.faulty, sc.tests, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !mono.Complete || !cegar.Complete {
				continue
			}
			if !SameSolutions(&mono.SolutionSet, &cegar.SolutionSet) {
				t.Logf("seed %d opts %+v: cegar %v != mono %v", seed, opts, cegar.Solutions, mono.Solutions)
				return false
			}
			if cegar.Copies > len(sc.tests) {
				t.Logf("seed %d: %d copies for %d tests", seed, cegar.Copies, len(sc.tests))
				return false
			}
			if cegar.Vars > mono.Vars {
				t.Logf("seed %d: cegar instance larger than mono (%d > %d vars)", seed, cegar.Vars, mono.Vars)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if testing.Short() {
		cfg.MaxCount = 8
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// cegarLargeScenario prepares a suite circuit with a test-set of at
// least m failing triples.
func cegarLargeScenario(t *testing.T, name string, p, m int) (*circuit.Circuit, circuit.TestSet, int) {
	t.Helper()
	golden, err := gen.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed < 20; seed++ {
		faulty, _, err := faults.Inject(golden, faults.Options{Count: p, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		tests, err := tgen.Random(golden, faulty, tgen.Options{Count: m, Seed: seed, MaxPatterns: 1 << 14})
		if err == tgen.ErrUndetected || len(tests) < m {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		return faulty, tests, p
	}
	t.Fatalf("no detectable %d-fault injection on %s", p, name)
	return nil, nil, 0
}

// TestCEGAREncodesFewerCopies: on a realistic circuit with a large
// test-set, the abstraction must converge without encoding every test —
// the whole point of the lazy instance — while still matching BSAT.
func TestCEGAREncodesFewerCopies(t *testing.T) {
	c, tests, k := cegarLargeScenario(t, "s298x", 2, 16)
	opts := BSATOptions{K: k}
	mono, err := BSAT(c, tests, opts)
	if err != nil {
		t.Fatal(err)
	}
	cegar, err := CEGARDiagnose(c, tests, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !mono.Complete || !cegar.Complete {
		t.Fatal("enumeration incomplete without budgets")
	}
	if !SameSolutions(&mono.SolutionSet, &cegar.SolutionSet) {
		t.Fatalf("cegar %v != mono %v", cegar.Solutions, mono.Solutions)
	}
	if cegar.Copies >= len(tests) {
		t.Fatalf("CEGAR encoded %d of %d test copies — no abstraction benefit", cegar.Copies, len(tests))
	}
	if cegar.Vars >= mono.Vars {
		t.Fatalf("CEGAR instance not smaller: %d vs %d vars", cegar.Vars, mono.Vars)
	}
	t.Logf("copies %d/%d, refinements %d, vars %d vs %d, clauses %d vs %d",
		cegar.Copies, len(tests), cegar.Refinements, cegar.Vars, mono.Vars, cegar.Clauses, mono.Clauses)
}

// TestCEGARRejectsUnsupportedOptions: grouped select lines and golden
// all-output constraints have validity semantics the simulation oracle
// does not model; the driver must refuse them instead of mis-answering.
func TestCEGARRejectsUnsupportedOptions(t *testing.T) {
	sc := makeScenario(t, 7, 1, 4)
	if sc == nil {
		t.Skip("scenario undetectable")
	}
	if _, err := CEGARDiagnose(sc.faulty, sc.tests, BSATOptions{K: 1, Groups: [][]int{{1, 2}}}); err == nil {
		t.Fatal("Groups accepted")
	}
	if _, err := CEGARDiagnose(sc.faulty, sc.tests, BSATOptions{K: 1, Golden: sc.golden}); err == nil {
		t.Fatal("Golden accepted")
	}
	if _, err := CEGARDiagnose(sc.faulty, sc.tests, BSATOptions{K: 0}); err == nil {
		t.Fatal("K=0 accepted")
	}
	if _, err := CEGARDiagnose(sc.faulty, nil, BSATOptions{K: 1}); err == nil {
		t.Fatal("empty test-set accepted")
	}
}

// TestCEGARExtractFunctionsOnLiveSession: the lazily grown session must
// serve function extraction like the monolithic result does.
func TestCEGARExtractFunctionsOnLiveSession(t *testing.T) {
	sc := makeScenario(t, 11, 1, 6)
	if sc == nil {
		t.Skip("scenario undetectable")
	}
	res, err := CEGARDiagnose(sc.faulty, sc.tests, BSATOptions{K: sc.k})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) == 0 {
		t.Skip("no solutions")
	}
	funcs, err := res.ExtractFunctions(res.Solutions[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(funcs) != res.Solutions[0].Size() {
		t.Fatalf("%d gate functions for correction %v", len(funcs), res.Solutions[0])
	}
	for _, gf := range funcs {
		if !res.Solutions[0].Contains(gf.Gate) {
			t.Fatalf("function extracted for gate %d outside correction %v", gf.Gate, res.Solutions[0])
		}
	}
}

// TestFFRTwoPassSharedSessionEquivalence: both passes of the shared-
// session two-pass must match monolithic BSAT runs over the same
// candidate tiers, and repeating the whole procedure must be
// deterministic (the session-reuse determinism contract).
func TestFFRTwoPassSharedSessionEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		sc := makeScenario(t, seed, 1, 4)
		if sc == nil {
			continue
		}
		pass1, pass2, err := FFRTwoPass(sc.faulty, sc.tests, BSATOptions{K: sc.k})
		if err != nil {
			t.Fatal(err)
		}
		if !pass1.Complete {
			continue
		}

		// Oracle for pass 1: a fresh monolithic instance over the roots.
		roots, _ := ffrCandidates(sc.faulty)
		oracle1, err := BSAT(sc.faulty, sc.tests, BSATOptions{K: sc.k, Candidates: roots})
		if err != nil {
			t.Fatal(err)
		}
		if !SameSolutions(&pass1.SolutionSet, &oracle1.SolutionSet) {
			t.Fatalf("seed %d: pass1 %v != oracle %v", seed, pass1.Solutions, oracle1.Solutions)
		}

		re1, re2, err := FFRTwoPass(sc.faulty, sc.tests, BSATOptions{K: sc.k})
		if err != nil {
			t.Fatal(err)
		}
		if !SameSolutions(&pass1.SolutionSet, &re1.SolutionSet) || !SameSolutions(&pass2.SolutionSet, &re2.SolutionSet) {
			t.Fatalf("seed %d: FFRTwoPass not deterministic", seed)
		}
		if pass1.Session() == nil || pass1.Session() != pass2.Session() {
			t.Fatalf("seed %d: passes do not share one session", seed)
		}
	}
}

// TestPartitionedBSATMatchesRebuildReference: the assumption-scoped
// partitioning must return exactly what the old rebuild-per-partition
// formulation returned.
func TestPartitionedBSATMatchesRebuildReference(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		sc := makeScenario(t, seed, 1+int(seed%2), 6)
		if sc == nil || len(sc.tests) < 4 {
			continue
		}
		const psize = 2
		got, err := PartitionedBSAT(sc.faulty, sc.tests, psize, BSATOptions{K: sc.k})
		if err != nil {
			t.Fatal(err)
		}

		// Reference: fresh BSAT per partition slice, union, essential
		// filter over the full test-set.
		byKey := make(map[string]Correction)
		for lo := 0; lo < len(sc.tests); lo += psize {
			hi := lo + psize
			if hi > len(sc.tests) {
				hi = len(sc.tests)
			}
			res, err := BSAT(sc.faulty, sc.tests[lo:hi], BSATOptions{K: sc.k})
			if err != nil {
				t.Fatal(err)
			}
			for _, sol := range res.Solutions {
				byKey[sol.Key()] = sol
			}
		}
		want := &SolutionSet{}
		for _, sol := range byKey {
			if Essential(sc.faulty, sc.tests, sol.Gates) {
				want.Solutions = append(want.Solutions, sol)
			}
		}
		if !SameSolutions(got, want) {
			t.Fatalf("seed %d: scoped %v != rebuilt %v", seed, got.Solutions, want.Solutions)
		}
	}
}

// TestCovGuidedRepairSessionRejectsWiderK: a session built for K=1
// cannot express "at most 2" (its ladder is too narrow); the reuse
// entry point must refuse instead of silently dropping the bound.
func TestCovGuidedRepairSessionRejectsWiderK(t *testing.T) {
	sc := makeScenario(t, 13, 1, 4)
	if sc == nil {
		t.Skip("scenario undetectable")
	}
	bsat, err := BSAT(sc.faulty, sc.tests, BSATOptions{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	cov := &CovResult{SolutionSet: SolutionSet{Solutions: []Correction{NewCorrection(sc.sites)}}}
	if _, err := CovGuidedRepairSession(bsat.Session(), sc.tests, cov, BSATOptions{K: 2}); err == nil {
		t.Fatal("K wider than the session ladder accepted")
	}
}

// TestCovGuidedRepairSessionReuse: repairing through a session recycled
// from a BSAT run must agree with the standalone repair path.
func TestCovGuidedRepairSessionReuse(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		sc := makeScenario(t, seed, 1, 4)
		if sc == nil {
			continue
		}
		cov, err := COV(sc.faulty, sc.tests, CovOptions{K: sc.k, MaxSolutions: 100})
		if err != nil {
			continue
		}
		standalone, err := CovGuidedRepair(sc.faulty, sc.tests, cov, BSATOptions{K: sc.k})
		if err != nil {
			t.Fatal(err)
		}
		bsat, err := BSAT(sc.faulty, sc.tests, BSATOptions{K: sc.k})
		if err != nil {
			t.Fatal(err)
		}
		reused, err := CovGuidedRepairSession(bsat.Session(), sc.tests, cov, BSATOptions{K: sc.k})
		if err != nil {
			t.Fatal(err)
		}
		if standalone.Found != reused.Found {
			t.Fatalf("seed %d: standalone found=%v, session found=%v", seed, standalone.Found, reused.Found)
		}
		if reused.Found && !Validate(sc.faulty, sc.tests, reused.Correction.Gates) {
			t.Fatalf("seed %d: session repair %v invalid", seed, reused.Correction)
		}
	}
}
