package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/circuit"
	"repro/internal/cover"
)

// CovEngine selects the covering-problem solver.
type CovEngine int

// Engines: CovSAT mirrors the paper (the covering problem "was also
// solved using Zchaff"); CovBB is the explicit backtracking search whose
// O(|I|^k) complexity Table 1 cites for COV.
const (
	CovSAT CovEngine = iota
	CovBB
)

// String names the engine.
func (e CovEngine) String() string {
	switch e {
	case CovSAT:
		return "sat"
	case CovBB:
		return "backtrack"
	default:
		return fmt.Sprintf("CovEngine(%d)", int(e))
	}
}

// CovOptions configures SCDiagnose.
type CovOptions struct {
	K            int       // maximum correction size (required)
	PT           PTOptions // path-tracing configuration for the BSIM stage
	Engine       CovEngine
	MaxSolutions int   // cap on enumerated covers (0 = unlimited)
	MaxConflicts int64 // SAT budget (CovSAT only; 0 = unlimited)
	// Ctx, when non-nil, cancels the covering enumeration cooperatively
	// (surfaces as an incomplete result).
	Ctx context.Context
	// UseXList derives the candidate sets by X-injection screening
	// (XDiagnose) instead of path tracing — the alternative
	// simulation-based engine of Section 2.2.
	UseXList bool
	// Workers bounds the worker pool of the BSIM candidate sweep
	// (0 = runtime.NumCPU, 1 = serial). The result is identical for any
	// setting.
	Workers int
}

// CovResult is the outcome of SCDiagnose.
type CovResult struct {
	SolutionSet
	BSIM    *BSIMResult
	Problem *cover.Problem
	Timings Timings
}

// COV implements SCDiagnose (Figure 4): run BasicSimDiagnose to obtain
// the candidate sets Ci, then enumerate every solution C* of the set
// covering problem — hit every Ci, no removable element (irredundant),
// size at most K. No effect analysis is performed, so solutions are not
// guaranteed to be valid corrections (Lemma 2).
func COV(c *circuit.Circuit, tests circuit.TestSet, opts CovOptions) (*CovResult, error) {
	if opts.K < 1 {
		return nil, fmt.Errorf("core: COV requires K >= 1, got %d", opts.K)
	}
	if len(tests) == 0 {
		return nil, fmt.Errorf("core: COV requires a non-empty test-set")
	}
	start := time.Now()
	var bsim *BSIMResult
	if opts.UseXList {
		bsim = XDiagnose(c, tests)
	} else {
		bsim = BSIMWorkers(c, tests, opts.PT, opts.Workers)
	}
	for i, ci := range bsim.Sets {
		if len(ci) == 0 {
			return nil, fmt.Errorf("core: COV: test %d produced an empty candidate set", i)
		}
	}
	problem := cover.NewProblem(bsim.Sets)
	res := &CovResult{BSIM: bsim, Problem: problem}
	res.Timings.CNF = time.Since(start) // includes the BSIM stage, as in Table 2

	solveStart := time.Now()
	covOpts := cover.Options{MaxK: opts.K, MaxSolutions: opts.MaxSolutions, MaxConflicts: opts.MaxConflicts, Ctx: opts.Ctx}
	var (
		result *cover.Result
		err    error
	)
	switch opts.Engine {
	case CovBB:
		result, err = cover.EnumerateBB(problem, covOpts)
	default:
		result, err = cover.EnumerateSAT(problem, covOpts)
	}
	if err != nil {
		return nil, fmt.Errorf("core: COV: %w", err)
	}
	res.Complete = result.Complete
	for i, cov := range result.Covers {
		if i == 0 {
			res.Timings.One = time.Since(solveStart)
		}
		res.Solutions = append(res.Solutions, NewCorrection(cov))
	}
	res.Timings.All = time.Since(solveStart)
	return res, nil
}
