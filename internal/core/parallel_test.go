package core

// Determinism and equivalence of the batched, event-driven, parallel
// candidate sweeps against their full-resimulation reference oracles.

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/sim"
)

// bsimEqual asserts two BSIM results carry byte-identical rankings.
func bsimEqual(t *testing.T, label string, want, got *BSIMResult) {
	t.Helper()
	if len(want.Sets) != len(got.Sets) {
		t.Fatalf("%s: %d sets vs %d", label, len(got.Sets), len(want.Sets))
	}
	for i := range want.Sets {
		if !reflect.DeepEqual(want.Sets[i], got.Sets[i]) {
			t.Fatalf("%s: set %d differs:\n got %v\nwant %v", label, i, got.Sets[i], want.Sets[i])
		}
	}
	if !reflect.DeepEqual(want.MarkCount, got.MarkCount) {
		t.Fatalf("%s: mark counts differ", label)
	}
}

// TestBSIMMatchesReference checks that the batched event-driven BSIM —
// serial and parallel — returns byte-identical candidate sets and mark
// counts to the one-simulation-per-test reference, for every marking
// policy.
func TestBSIMMatchesReference(t *testing.T) {
	policies := []PTPolicy{MarkFirst, MarkRandom, MarkAll}
	checked := 0
	for seed := int64(1); seed <= 12; seed++ {
		sc := makeScenario(t, seed*37, 1+int(seed%3), 6)
		if sc == nil {
			continue
		}
		checked++
		for _, policy := range policies {
			opts := PTOptions{Policy: policy, Seed: seed}
			ref := BSIMReference(sc.faulty, sc.tests, opts)
			serial := BSIMWorkers(sc.faulty, sc.tests, opts, 1)
			parallel := BSIMWorkers(sc.faulty, sc.tests, opts, 0)
			wide := BSIMWorkers(sc.faulty, sc.tests, opts, 7)
			bsimEqual(t, policy.String()+"/serial-vs-reference", ref, serial)
			bsimEqual(t, policy.String()+"/parallel-vs-serial", serial, parallel)
			bsimEqual(t, policy.String()+"/7workers-vs-serial", serial, wide)
		}
	}
	if checked < 4 {
		t.Fatalf("only %d scenarios exercised", checked)
	}
}

// TestBSIMManyTestsBatching drives the multi-batch path (more than 64
// tests) by repeating the test list, and checks it against the
// reference.
func TestBSIMManyTestsBatching(t *testing.T) {
	sc := makeScenario(t, 23, 2, 8)
	if sc == nil {
		t.Skip("undetectable scenario")
	}
	tests := sc.tests
	for len(tests) <= 64 {
		tests = append(tests, sc.tests...)
	}
	for _, policy := range []PTPolicy{MarkFirst, MarkRandom, MarkAll} {
		opts := PTOptions{Policy: policy, Seed: 3}
		ref := BSIMReference(sc.faulty, tests, opts)
		got := BSIMWorkers(sc.faulty, tests, opts, 0)
		bsimEqual(t, policy.String(), ref, got)
	}
}

// TestValidatorMatchesValidateSim compares the incremental, resident-
// baseline Validator against the full-resimulation ValidateSim on
// random gate subsets, including Essential.
func TestValidatorMatchesValidateSim(t *testing.T) {
	queries := 0
	for seed := int64(1); seed <= 10; seed++ {
		sc := makeScenario(t, seed*71, 1+int(seed%2), 5)
		if sc == nil {
			continue
		}
		rng := rand.New(rand.NewSource(seed))
		v := NewValidator(sc.faulty, sc.tests)
		s := sim.New(sc.faulty)
		internal := sc.faulty.InternalGates()
		for q := 0; q < 40; q++ {
			n := 1 + rng.Intn(3)
			gates := make([]int, 0, n)
			for len(gates) < n {
				g := internal[rng.Intn(len(internal))]
				if !containsGate(gates, g) {
					gates = append(gates, g)
				}
			}
			want := ValidateSim(s, sc.tests, gates)
			if got := v.Validate(gates); got != want {
				t.Fatalf("seed %d: Validate(%v) = %v, reference %v", seed, gates, got, want)
			}
			if want {
				eWant := Essential(sc.faulty, sc.tests, gates)
				if eGot := v.Essential(gates); eGot != eWant {
					t.Fatalf("seed %d: Essential(%v) = %v, reference %v", seed, gates, eGot, eWant)
				}
			}
			queries++
		}
		// The injected sites themselves must validate both ways.
		if len(sc.sites) <= maxValidateGates {
			if v.Validate(sc.sites) != ValidateSim(s, sc.tests, sc.sites) {
				t.Fatalf("seed %d: sites disagree", seed)
			}
		}
	}
	if queries < 200 {
		t.Fatalf("only %d validator queries exercised", queries)
	}
}

// TestValidatorEmptyCorrection pins the n == 0 semantics: valid iff the
// circuit already passes every test.
func TestValidatorEmptyCorrection(t *testing.T) {
	sc := makeScenario(t, 5, 1, 4)
	if sc == nil {
		t.Skip("undetectable scenario")
	}
	v := NewValidator(sc.faulty, sc.tests)
	if v.Validate(nil) {
		t.Fatal("empty correction validated on a failing test-set")
	}
	if v.Validate(nil) != ValidateSim(sim.New(sc.faulty), sc.tests, nil) {
		t.Fatal("empty-correction semantics diverge from ValidateSim")
	}
}
