package core

// Property-based validation of the paper's theory on randomized
// circuit/fault/test scenarios (testing/quick): Lemmas 1 and 3 as
// invariants, solution-space invariance of the advanced options, and the
// end-to-end guarantee that the injected error set always dominates some
// enumerated solution.

import (
	"testing"
	"testing/quick"

	"repro/internal/circuit"
	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/sim"
	"repro/internal/tgen"
)

// scenario is one randomized diagnosis pipeline instance.
type scenario struct {
	golden *circuit.Circuit
	faulty *circuit.Circuit
	sites  []int
	tests  circuit.TestSet
	k      int
}

// makeScenario builds a reproducible random scenario; returns nil when
// the sampled fault is undetectable (skipped by callers).
func makeScenario(t *testing.T, seed int64, p, m int) *scenario {
	t.Helper()
	golden, err := gen.Generate(gen.Spec{
		Name:   "prop",
		Inputs: 6, Outputs: 3, Gates: 40,
		Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	model := faults.Model(abs64(seed) % 3)
	faulty, fs, err := faults.Inject(golden, faults.Options{Count: p, Model: model, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	tests, err := tgen.Random(golden, faulty, tgen.Options{Count: m, Seed: seed, MaxPatterns: 1 << 12})
	if err == tgen.ErrUndetected {
		return nil
	}
	if err != nil {
		t.Fatal(err)
	}
	if bad := tgen.Verify(golden, faulty, tests); bad >= 0 {
		t.Fatalf("seed %d: test %d violates the test-set invariant", seed, bad)
	}
	return &scenario{golden: golden, faulty: faulty, sites: fs.Sites(), tests: tests, k: p}
}

func TestLemma1Property(t *testing.T) {
	// Every BSAT solution is a valid correction, for random scenarios.
	f := func(seed int64) bool {
		sc := makeScenario(t, seed%5000, 1+int(abs64(seed)%2), 4)
		if sc == nil {
			return true
		}
		res, err := BSAT(sc.faulty, sc.tests, BSATOptions{K: sc.k, MaxSolutions: 64})
		if err != nil {
			t.Fatal(err)
		}
		s := sim.New(sc.faulty)
		for _, sol := range res.Solutions {
			if !ValidateSim(s, sc.tests, sol.Gates) {
				t.Logf("seed %d: invalid solution %v", seed, sol)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if testing.Short() {
		cfg.MaxCount = 10
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestLemma3Property(t *testing.T) {
	// BSAT solutions are mutually non-nested and essential-only (when
	// enumeration completes).
	f := func(seed int64) bool {
		sc := makeScenario(t, seed%5000, 1+int(abs64(seed)%2), 4)
		if sc == nil {
			return true
		}
		res, err := BSAT(sc.faulty, sc.tests, BSATOptions{K: sc.k})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Complete {
			return true
		}
		for i, a := range res.Solutions {
			for j, b := range res.Solutions {
				if i != j && a.SubsetOf(b) {
					t.Logf("seed %d: %v nested in %v", seed, a, b)
					return false
				}
			}
			if !Essential(sc.faulty, sc.tests, a.Gates) {
				t.Logf("seed %d: %v not essential", seed, a)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if testing.Short() {
		cfg.MaxCount = 8
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestErrorSitesDominateSomeSolutionProperty(t *testing.T) {
	// The injected error set is a valid correction (restoring the golden
	// functions rectifies every test), so with k = p and complete
	// enumeration some BSAT solution must be a subset of the error sites.
	f := func(seed int64) bool {
		sc := makeScenario(t, seed%5000, 1+int(abs64(seed)%3), 6)
		if sc == nil {
			return true
		}
		if !Validate(sc.faulty, sc.tests, sc.sites) {
			t.Logf("seed %d: error sites %v not a valid correction?!", seed, sc.sites)
			return false
		}
		res, err := BSAT(sc.faulty, sc.tests, BSATOptions{K: sc.k})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Complete {
			return true
		}
		sitesCorr := NewCorrection(sc.sites)
		for _, sol := range res.Solutions {
			if sol.SubsetOf(sitesCorr) {
				return true
			}
		}
		t.Logf("seed %d: no solution within error sites %v (solutions %v)", seed, sc.sites, res.Solutions)
		return false
	}
	cfg := &quick.Config{MaxCount: 30}
	if testing.Short() {
		cfg.MaxCount = 8
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestAdvancedOptionsPreserveSolutionSpace(t *testing.T) {
	// ForceZero, ConeOnly, alternate cardinality encodings and hybrid
	// steering must all enumerate exactly the basic solution set
	// (Section 2.3: "These techniques do not change the solution space").
	f := func(seed int64) bool {
		sc := makeScenario(t, seed%5000, 1+int(abs64(seed)%2), 4)
		if sc == nil {
			return true
		}
		base, err := BSAT(sc.faulty, sc.tests, BSATOptions{K: sc.k})
		if err != nil {
			t.Fatal(err)
		}
		if !base.Complete {
			return true
		}
		variants := []BSATOptions{
			{K: sc.k, ForceZero: true},
			{K: sc.k, ConeOnly: true},
			{K: sc.k, Encoding: 1 /* Totalizer */},
			{K: sc.k, Encoding: 2 /* Pairwise */},
			{K: sc.k, ForceZero: true, ConeOnly: true},
		}
		for _, opts := range variants {
			res, err := BSAT(sc.faulty, sc.tests, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !SameSolutions(&base.SolutionSet, &res.SolutionSet) {
				t.Logf("seed %d opts %+v: got %v want %v", seed, opts, res.Solutions, base.Solutions)
				return false
			}
		}
		hyb, _, err := HybridBSAT(sc.faulty, sc.tests, BSATOptions{K: sc.k}, PTOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return SameSolutions(&base.SolutionSet, &hyb.SolutionSet)
	}
	cfg := &quick.Config{MaxCount: 20}
	if testing.Short() {
		cfg.MaxCount = 6
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPathTraceStructuralProperties(t *testing.T) {
	// Every Ci is non-empty, contains the erroneous output gate, lies
	// within the output's fanin cone, and contains no input gates.
	f := func(seed int64) bool {
		sc := makeScenario(t, seed%5000, 1, 6)
		if sc == nil {
			return true
		}
		bsim := BSIM(sc.faulty, sc.tests, PTOptions{})
		for i, ci := range bsim.Sets {
			test := sc.tests[i]
			if len(ci) == 0 {
				t.Logf("seed %d: empty candidate set", seed)
				return false
			}
			cone := sc.faulty.FaninCone(test.Output)
			foundOut := false
			for _, g := range ci {
				if g == test.Output {
					foundOut = true
				}
				if !cone[g] {
					t.Logf("seed %d: gate %d outside cone of %d", seed, g, test.Output)
					return false
				}
				if sc.faulty.Gates[g].Kind == logic.Input {
					t.Logf("seed %d: input gate %d in Ci", seed, g)
					return false
				}
			}
			if !foundOut {
				t.Logf("seed %d: output gate missing from Ci", seed)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50}
	if testing.Short() {
		cfg.MaxCount = 15
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMarkAllSupersetProperty(t *testing.T) {
	// The conservative MarkAll policy always marks a superset of any
	// single-choice policy's candidate set.
	f := func(seed int64) bool {
		sc := makeScenario(t, seed%5000, 1, 4)
		if sc == nil {
			return true
		}
		s := sim.New(sc.faulty)
		for _, test := range sc.tests {
			first := NewCorrection(PathTrace(s, test, PTOptions{Policy: MarkFirst}))
			rnd := NewCorrection(PathTrace(s, test, PTOptions{Policy: MarkRandom, Seed: seed}))
			all := NewCorrection(PathTrace(s, test, PTOptions{Policy: MarkAll}))
			if !first.SubsetOf(all) || !rnd.SubsetOf(all) {
				t.Logf("seed %d: MarkAll %v misses members of %v / %v", seed, all, first, rnd)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50}
	if testing.Short() {
		cfg.MaxCount = 15
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSingleErrorInIntersectionProperty(t *testing.T) {
	// For single errors, the paper states the actual error site is in the
	// intersection of all candidate sets. Classic path tracing can in
	// rare reconvergent cases miss the site under single-choice policies,
	// so the guarantee is asserted for the conservative MarkAll policy
	// and measured (not asserted) for MarkFirst.
	missFirst, total := 0, 0
	f := func(seed int64) bool {
		sc := makeScenario(t, seed%5000, 1, 6)
		if sc == nil {
			return true
		}
		site := sc.sites[0]
		all := BSIM(sc.faulty, sc.tests, PTOptions{Policy: MarkAll})
		inter := all.Intersection()
		found := false
		for _, g := range inter {
			if g == site {
				found = true
				break
			}
		}
		if !found {
			t.Logf("seed %d: site %d not in MarkAll intersection %v", seed, site, inter)
			return false
		}
		first := BSIM(sc.faulty, sc.tests, PTOptions{Policy: MarkFirst})
		total++
		if first.MarkCount[site] != len(sc.tests) {
			missFirst++
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if testing.Short() {
		cfg.MaxCount = 10
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
	if total > 0 {
		t.Logf("MarkFirst missed the error site in %d/%d scenarios (informational)", missFirst, total)
	}
}

func TestPartitionedBSATSoundProperty(t *testing.T) {
	// Partitioned solutions are always full-test-set BSAT solutions.
	f := func(seed int64) bool {
		sc := makeScenario(t, seed%5000, 1+int(abs64(seed)%2), 6)
		if sc == nil || len(sc.tests) < 4 {
			return true
		}
		full, err := BSAT(sc.faulty, sc.tests, BSATOptions{K: sc.k})
		if err != nil {
			t.Fatal(err)
		}
		if !full.Complete {
			return true
		}
		part, err := PartitionedBSAT(sc.faulty, sc.tests, 2, BSATOptions{K: sc.k})
		if err != nil {
			t.Fatal(err)
		}
		for _, sol := range part.Solutions {
			if !full.ContainsKey(sol) {
				t.Logf("seed %d: partitioned %v not in full %v", seed, sol, full.Solutions)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 15}
	if testing.Short() {
		cfg.MaxCount = 5
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestFFRTwoPassSoundProperty(t *testing.T) {
	// Two-pass solutions are valid corrections (soundness), and pass 1
	// finds at least one solution whenever plain BSAT does.
	f := func(seed int64) bool {
		sc := makeScenario(t, seed%5000, 1, 4)
		if sc == nil {
			return true
		}
		full, err := BSAT(sc.faulty, sc.tests, BSATOptions{K: sc.k})
		if err != nil {
			t.Fatal(err)
		}
		pass1, pass2, err := FFRTwoPass(sc.faulty, sc.tests, BSATOptions{K: sc.k})
		if err != nil {
			t.Fatal(err)
		}
		if full.Complete && len(full.Solutions) > 0 && pass1.Complete && len(pass1.Solutions) == 0 {
			t.Logf("seed %d: pass 1 empty though solutions exist", seed)
			return false
		}
		for _, sol := range pass2.Solutions {
			if !Validate(sc.faulty, sc.tests, sol.Gates) {
				t.Logf("seed %d: two-pass solution %v invalid", seed, sol)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 15}
	if testing.Short() {
		cfg.MaxCount = 5
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func abs64(x int64) int64 {
	if x < 0 {
		if x == -x { // MinInt64
			return 0
		}
		return -x
	}
	return x
}
