package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/circuit"
	"repro/internal/sim"
)

// AdvSimOptions configures the advanced simulation-based diagnosis.
type AdvSimOptions struct {
	K            int       // maximum correction size (required)
	PT           PTOptions // path-tracing configuration
	MaxSolutions int       // cap (0 = unlimited)
	// Retrace re-runs path tracing after each tentative gate choice with
	// the chosen gates' values flipped, refining the candidate pool for
	// the next level — the recalculation step of the incremental
	// approach. Off, the initial marked sets are searched directly.
	Retrace bool
}

// AdvSimResult is the outcome of AdvSimDiagnose.
type AdvSimResult struct {
	SolutionSet
	Elapsed time.Duration
	// Explored counts the search-tree nodes visited (the O(|I|^k · |I|m)
	// work term of Table 1).
	Explored int
}

// AdvSimDiagnose implements the advanced simulation-based diagnosis of
// Section 2.2 ([9, 18, 13]): a backtracking search over candidate
// subsets drawn from the path-trace marks, ordered greedily by the mark
// count M(g), with exact effect analysis by re-simulation at every leaf
// — "the ability to perform a backtrack similar to the solvers for
// NP-complete problems". Unlike BSIM and COV, every returned correction
// is valid (the approaches' key advantage in Table 1); unlike BSAT, the
// candidate pool is limited to gates on sensitized paths, so valid
// corrections off the traced paths (the Lemma 4 situation) are missed.
//
// Solutions are filtered to essential-only corrections and deduplicated,
// making the result directly comparable to (a subset of) BSAT's.
func AdvSimDiagnose(c *circuit.Circuit, tests circuit.TestSet, opts AdvSimOptions) (*AdvSimResult, error) {
	if opts.K < 1 {
		return nil, fmt.Errorf("core: AdvSimDiagnose requires K >= 1, got %d", opts.K)
	}
	if len(tests) == 0 {
		return nil, fmt.Errorf("core: AdvSimDiagnose requires a non-empty test-set")
	}
	start := time.Now()
	res := &AdvSimResult{}
	res.Complete = true

	bsim := BSIM(c, tests, opts.PT)
	v := NewValidator(c, tests)
	scratch := newTraceScratch(c)
	marks := make([]int, len(c.Gates))
	seen := make(map[string]bool)

	// Candidate pool ordered by decreasing mark count (greedy heuristic),
	// ties by gate ID for determinism.
	pool := orderByMarks(bsim.Union(), bsim.MarkCount)

	var sel []int
	var search func(pool []int) bool
	search = func(pool []int) bool {
		res.Explored++
		if opts.MaxSolutions > 0 && len(res.Solutions) >= opts.MaxSolutions {
			res.Complete = false
			return false
		}
		if len(sel) > 0 && v.Validate(sel) {
			corr := NewCorrection(sel)
			if !seen[corr.Key()] && v.Essential(corr.Gates) {
				seen[corr.Key()] = true
				res.Solutions = append(res.Solutions, corr)
			}
			// Supersets of a valid correction are never essential: prune.
			return true
		}
		if len(sel) == opts.K {
			return true
		}
		next := pool
		if opts.Retrace && len(sel) > 0 {
			next = v.retrace(sel, bsim, opts.PT, scratch, marks)
		}
		for i, g := range next {
			if containsGate(sel, g) {
				continue
			}
			sel = append(sel, g)
			ok := search(next[i+1:])
			sel = sel[:len(sel)-1]
			if !ok {
				return false
			}
		}
		return true
	}
	search(pool)

	sortSolutions(res.Solutions)
	res.Elapsed = time.Since(start)
	return res, nil
}

// retrace re-runs path tracing with the chosen gates' baseline values
// complemented, approximating the candidate-set recalculation after a
// tentative correction ("correcting one error may change the sensitized
// paths in the circuit"). It rides the validator's resident per-test
// baselines: flipping the chosen gates is an incremental Force through
// their fanout cones, undone in O(touched) — no re-simulation. marks is
// a caller-provided per-gate scratch slice.
func (v *Validator) retrace(chosen []int, base *BSIMResult, pt PTOptions, scratch *traceScratch, marks []int) []int {
	for i := range marks {
		marks[i] = 0
	}
	levels := v.an.Levels
	for i, t := range v.tests {
		inc := v.incs[i]
		forced := v.forced[:0]
		for _, g := range chosen {
			forced = append(forced, sim.Forced{Gate: g, Value: ^inc.BaselineValue(g)})
		}
		inc.ForceMany(forced)
		if inc.OutputBit(t.Output) == t.Want {
			inc.Undo()
			continue // test already rectified by the tentative choice
		}
		// Trace the still-failing output on the modified value assignment.
		ci := pathTraceValues(v.c, levels, inc, t, pt, scratch)
		inc.Undo()
		for _, g := range ci {
			marks[g]++
		}
	}
	var pool []int
	for g, m := range marks {
		if m > 0 {
			pool = append(pool, g)
		}
	}
	if len(pool) == 0 {
		// All tests rectified or nothing marked; fall back to the base pool.
		return orderByMarks(base.Union(), base.MarkCount)
	}
	return orderByMarks(pool, marks)
}

// bitSource exposes a single-pattern value assignment; both Simulator
// and IncrementalSimulator satisfy it.
type bitSource interface {
	OutputBit(id int) bool
}

// pathTraceValues runs the Figure 1 marking over the source's current
// value assignment (which may include forced values), without
// re-simulating the vector. Buffers come from the caller's reusable
// traceScratch instead of per-call allocations. The retrace marking has
// always resolved MarkRandom as "first controlling input" (there is no
// per-retrace random stream); that behavior is kept.
func pathTraceValues(c *circuit.Circuit, levels []int, s bitSource, t circuit.Test, opts PTOptions, scratch *traceScratch) []int {
	if opts.Policy == MarkRandom {
		opts.Policy = MarkFirst
	}
	return scratch.trace(c, levels, s.OutputBit, t, opts)
}

func orderByMarks(gates []int, marks []int) []int {
	out := append([]int(nil), gates...)
	sort.SliceStable(out, func(i, j int) bool {
		if marks[out[i]] != marks[out[j]] {
			return marks[out[i]] > marks[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}

func containsGate(sel []int, g int) bool {
	for _, x := range sel {
		if x == g {
			return true
		}
	}
	return false
}

func sortSolutions(sols []Correction) {
	sort.SliceStable(sols, func(i, j int) bool {
		if len(sols[i].Gates) != len(sols[j].Gates) {
			return len(sols[i].Gates) < len(sols[j].Gates)
		}
		return sols[i].Key() < sols[j].Key()
	})
}
