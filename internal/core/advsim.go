package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/circuit"
	"repro/internal/sim"
)

// AdvSimOptions configures the advanced simulation-based diagnosis.
type AdvSimOptions struct {
	K            int       // maximum correction size (required)
	PT           PTOptions // path-tracing configuration
	MaxSolutions int       // cap (0 = unlimited)
	// Retrace re-runs path tracing after each tentative gate choice with
	// the chosen gates' values flipped, refining the candidate pool for
	// the next level — the recalculation step of the incremental
	// approach. Off, the initial marked sets are searched directly.
	Retrace bool
}

// AdvSimResult is the outcome of AdvSimDiagnose.
type AdvSimResult struct {
	SolutionSet
	Elapsed time.Duration
	// Explored counts the search-tree nodes visited (the O(|I|^k · |I|m)
	// work term of Table 1).
	Explored int
}

// AdvSimDiagnose implements the advanced simulation-based diagnosis of
// Section 2.2 ([9, 18, 13]): a backtracking search over candidate
// subsets drawn from the path-trace marks, ordered greedily by the mark
// count M(g), with exact effect analysis by re-simulation at every leaf
// — "the ability to perform a backtrack similar to the solvers for
// NP-complete problems". Unlike BSIM and COV, every returned correction
// is valid (the approaches' key advantage in Table 1); unlike BSAT, the
// candidate pool is limited to gates on sensitized paths, so valid
// corrections off the traced paths (the Lemma 4 situation) are missed.
//
// Solutions are filtered to essential-only corrections and deduplicated,
// making the result directly comparable to (a subset of) BSAT's.
func AdvSimDiagnose(c *circuit.Circuit, tests circuit.TestSet, opts AdvSimOptions) (*AdvSimResult, error) {
	if opts.K < 1 {
		return nil, fmt.Errorf("core: AdvSimDiagnose requires K >= 1, got %d", opts.K)
	}
	if len(tests) == 0 {
		return nil, fmt.Errorf("core: AdvSimDiagnose requires a non-empty test-set")
	}
	start := time.Now()
	res := &AdvSimResult{}
	res.Complete = true

	bsim := BSIM(c, tests, opts.PT)
	s := sim.New(c)
	seen := make(map[string]bool)

	// Candidate pool ordered by decreasing mark count (greedy heuristic),
	// ties by gate ID for determinism.
	pool := orderByMarks(bsim.Union(), bsim.MarkCount)

	var sel []int
	var search func(pool []int) bool
	search = func(pool []int) bool {
		res.Explored++
		if opts.MaxSolutions > 0 && len(res.Solutions) >= opts.MaxSolutions {
			res.Complete = false
			return false
		}
		if len(sel) > 0 && ValidateSim(s, tests, sel) {
			corr := NewCorrection(sel)
			if !seen[corr.Key()] && Essential(c, tests, corr.Gates) {
				seen[corr.Key()] = true
				res.Solutions = append(res.Solutions, corr)
			}
			// Supersets of a valid correction are never essential: prune.
			return true
		}
		if len(sel) == opts.K {
			return true
		}
		next := pool
		if opts.Retrace && len(sel) > 0 {
			next = retrace(c, tests, sel, bsim, opts.PT)
		}
		for i, g := range next {
			if containsGate(sel, g) {
				continue
			}
			sel = append(sel, g)
			ok := search(next[i+1:])
			sel = sel[:len(sel)-1]
			if !ok {
				return false
			}
		}
		return true
	}
	search(pool)

	sortSolutions(res.Solutions)
	res.Elapsed = time.Since(start)
	return res, nil
}

// retrace re-runs path tracing with the chosen gates' simulated values
// complemented, approximating the candidate-set recalculation after a
// tentative correction ("correcting one error may change the sensitized
// paths in the circuit").
func retrace(c *circuit.Circuit, tests circuit.TestSet, chosen []int, base *BSIMResult, pt PTOptions) []int {
	s := sim.New(c)
	marks := make([]int, len(c.Gates))
	for i, t := range tests {
		// Flip the chosen gates' values for this test.
		s.RunVector(t.Vector)
		forced := make([]sim.Forced, len(chosen))
		for j, g := range chosen {
			forced[j] = sim.Forced{Gate: g, Value: ^s.Value(g)}
		}
		s.RunForced(sim.PackVector(t.Vector), forced)
		if s.OutputBit(t.Output) == t.Want {
			continue // test already rectified by the tentative choice
		}
		// Trace the still-failing output on the modified value assignment.
		ci := pathTraceValues(s, t, pt)
		for _, g := range ci {
			marks[g]++
		}
		_ = i
	}
	var pool []int
	for g, m := range marks {
		if m > 0 {
			pool = append(pool, g)
		}
	}
	if len(pool) == 0 {
		// All tests rectified or nothing marked; fall back to the base pool.
		return orderByMarks(base.Union(), base.MarkCount)
	}
	return orderByMarks(pool, marks)
}

// pathTraceValues runs the Figure 1 marking over the simulator's current
// value assignment (which may include forced values), without
// re-simulating the vector.
func pathTraceValues(s *sim.Simulator, t circuit.Test, opts PTOptions) []int {
	c := s.Circuit()
	marked := make([]bool, len(c.Gates))
	marked[t.Output] = true
	var ci []int
	for g := len(c.Gates) - 1; g >= 0; g-- {
		if !marked[g] {
			continue
		}
		gate := &c.Gates[g]
		if c.IsInput(g) {
			continue
		}
		ci = append(ci, g)
		ctrlVal, hasCtrl := gate.Kind.Controlling()
		var controlling []int
		if hasCtrl {
			for _, f := range gate.Fanin {
				if s.OutputBit(f) == ctrlVal {
					controlling = append(controlling, f)
				}
			}
		}
		switch {
		case len(controlling) == 0:
			for _, f := range gate.Fanin {
				marked[f] = true
			}
		case opts.Policy == MarkAll:
			for _, f := range controlling {
				marked[f] = true
			}
		default:
			marked[controlling[0]] = true
		}
	}
	sort.Ints(ci)
	return ci
}

func orderByMarks(gates []int, marks []int) []int {
	out := append([]int(nil), gates...)
	sort.SliceStable(out, func(i, j int) bool {
		if marks[out[i]] != marks[out[j]] {
			return marks[out[i]] > marks[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}

func containsGate(sel []int, g int) bool {
	for _, x := range sel {
		if x == g {
			return true
		}
	}
	return false
}

func sortSolutions(sols []Correction) {
	sort.SliceStable(sols, func(i, j int) bool {
		if len(sols[i].Gates) != len(sols[j].Gates) {
			return len(sols[i].Gates) < len(sols[j].Gates)
		}
		return sols[i].Key() < sols[j].Key()
	})
}
