package core
