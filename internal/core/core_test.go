package core

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/logic"
	"repro/internal/sim"
)

func TestValidateEmptyCorrection(t *testing.T) {
	c, test, _ := fig5a(t)
	// The circuit fails the test, so the empty correction is invalid.
	if Validate(c, circuit.TestSet{test}, nil) {
		t.Fatal("empty correction validated on a failing test")
	}
	// On a passing test the empty correction is valid.
	pass := test
	pass.Want = !test.Want
	if !Validate(c, circuit.TestSet{pass}, nil) {
		t.Fatal("empty correction rejected on a passing test")
	}
}

func TestValidateOutputGateAlwaysFixesSingleOutputTest(t *testing.T) {
	c, test, names := fig5a(t)
	if !Validate(c, circuit.TestSet{test}, []int{names["D"]}) {
		t.Fatal("forcing the output gate itself must rectify its test")
	}
}

func TestValidateMoreThanSixGates(t *testing.T) {
	// Chunked evaluation path: 7 gates -> 128 assignments in 2 words.
	b := circuit.NewBuilder("wide")
	in := b.Input("i")
	gates := make([]int, 8)
	prev := in
	for i := range gates {
		prev = b.Gate(logic.Not, "", prev)
		gates[i] = prev
	}
	out := b.Gate(logic.Buf, "out", prev)
	b.Output(out)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// i=0 -> chain of 8 NOTs -> out = 0; want 1: any of the gates fixes it.
	test := circuit.Test{Vector: []bool{false}, Output: out, Want: true}
	if !Validate(c, circuit.TestSet{test}, gates[:7]) {
		t.Fatal("7-gate correction rejected")
	}
	if !Validate(c, circuit.TestSet{test}, gates) {
		t.Fatal("8-gate correction rejected")
	}
}

func TestAssignmentWord(t *testing.T) {
	// Lane l of assignmentWord(0, j) is bit j of l.
	for j := 0; j < 6; j++ {
		w := assignmentWord(0, j)
		for l := uint(0); l < 64; l++ {
			want := l>>uint(j)&1 == 1
			if (w>>l&1 == 1) != want {
				t.Fatalf("j=%d lane %d", j, l)
			}
		}
	}
	// High bits are constant per 64-chunk.
	if assignmentWord(64, 6) != ^uint64(0) || assignmentWord(128, 6) != 0 {
		t.Fatal("chunk bits wrong")
	}
}

func TestEssentialDefinition(t *testing.T) {
	c, test, names := fig5b(t)
	tests := circuit.TestSet{test}
	if !Essential(c, tests, gateSet(names, "A", "B")) {
		t.Fatal("{A,B} should be essential")
	}
	// {A,B,E} is valid but E alone suffices -> not essential.
	if Essential(c, tests, gateSet(names, "A", "B", "E")) {
		t.Fatal("{A,B,E} wrongly essential")
	}
	if !Essential(c, tests, gateSet(names, "E")) {
		t.Fatal("{E} should be essential (singleton on failing test)")
	}
	if Essential(c, tests, gateSet(names, "A")) {
		t.Fatal("{A} is not even valid")
	}
}

func TestExtractFunctions(t *testing.T) {
	// Faulty AND that should be OR: extraction must demand output 1 on
	// the minterms the tests exercise where OR differs from AND.
	b := circuit.NewBuilder("exf")
	x := b.Input("x")
	y := b.Input("y")
	g := b.Gate(logic.And, "g", x, y) // should be OR
	o := b.Gate(logic.Buf, "o", g)
	b.Output(o)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Failing tests: (1,0) and (0,1) should produce 1.
	tests := circuit.TestSet{
		{Vector: []bool{true, false}, Output: o, Want: true},
		{Vector: []bool{false, true}, Output: o, Want: true},
	}
	res, err := BSAT(c, tests, BSATOptions{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	var gSol *Correction
	for i := range res.Solutions {
		if res.Solutions[i].Contains(g) {
			gSol = &res.Solutions[i]
		}
	}
	if gSol == nil {
		t.Fatalf("no solution at g: %v", res.Solutions)
	}
	funcs, err := res.ExtractFunctions(*gSol)
	if err != nil {
		t.Fatal(err)
	}
	if len(funcs) != 1 || funcs[0].Gate != g {
		t.Fatalf("funcs %+v", funcs)
	}
	gf := funcs[0]
	if !gf.Agrees {
		t.Fatal("consistent repair flagged inconsistent")
	}
	// Minterm 1 = (x=1,y=0), minterm 2 = (x=0,y=1): both must be 1.
	for _, m := range []int{1, 2} {
		v, ok := gf.Care[m]
		if !ok || !v {
			t.Fatalf("minterm %d: got (%v,%v), want required 1 (care map %v)", m, v, ok, gf.Care)
		}
	}
}

func TestExtractFunctionsRejectsNonSolution(t *testing.T) {
	c, test, names := fig5a(t)
	res, err := BSAT(c, circuit.TestSet{test}, BSATOptions{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.ExtractFunctions(NewCorrection([]int{names["B"]})); err == nil {
		t.Fatal("extraction over an invalid correction must fail")
	}
}

// TestTable1CandidateCounts: BSIM returns O(|I|) candidates while COV
// and BSAT return size-<=k corrections only (feature matrix, Table 1).
func TestTable1CandidateCounts(t *testing.T) {
	c, test, _ := fig5a(t)
	tests := circuit.TestSet{test}
	bsim := BSIM(c, tests, PTOptions{})
	if len(bsim.Union()) == 0 {
		t.Fatal("BSIM empty")
	}
	for _, k := range []int{1, 2} {
		cov, err := COV(c, tests, CovOptions{K: k})
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range cov.Solutions {
			if s.Size() > k {
				t.Fatalf("COV solution %v exceeds k=%d", s, k)
			}
		}
		bsat, err := BSAT(c, tests, BSATOptions{K: k})
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range bsat.Solutions {
			if s.Size() > k {
				t.Fatalf("BSAT solution %v exceeds k=%d", s, k)
			}
		}
	}
}

func TestPTDeterminismAndSeeds(t *testing.T) {
	c, test, _ := fig5a(t)
	s := sim.New(c)
	a := PathTrace(s, test, PTOptions{Policy: MarkFirst})
	b := PathTrace(s, test, PTOptions{Policy: MarkFirst})
	if NewCorrection(a).Key() != NewCorrection(b).Key() {
		t.Fatal("MarkFirst nondeterministic")
	}
	r1 := PathTrace(s, test, PTOptions{Policy: MarkRandom, Seed: 1})
	r1b := PathTrace(s, test, PTOptions{Policy: MarkRandom, Seed: 1})
	if NewCorrection(r1).Key() != NewCorrection(r1b).Key() {
		t.Fatal("MarkRandom not seed-deterministic")
	}
}

func TestBSIMResultHelpers(t *testing.T) {
	c, test, names := fig5a(t)
	res := BSIM(c, circuit.TestSet{test, test}, PTOptions{})
	inter := res.Intersection()
	if len(inter) != 3 {
		t.Fatalf("intersection %v", inter)
	}
	gmax := res.MaxMarked()
	if len(gmax) != 3 {
		t.Fatalf("Gmax %v", gmax)
	}
	_ = names
}

func TestBadOptionsRejected(t *testing.T) {
	c, test, _ := fig5a(t)
	tests := circuit.TestSet{test}
	if _, err := COV(c, tests, CovOptions{K: 0}); err == nil {
		t.Fatal("COV k=0 accepted")
	}
	if _, err := BSAT(c, tests, BSATOptions{K: 0}); err == nil {
		t.Fatal("BSAT k=0 accepted")
	}
	if _, err := COV(c, nil, CovOptions{K: 1}); err == nil {
		t.Fatal("COV empty tests accepted")
	}
	if _, err := BSAT(c, nil, BSATOptions{K: 1}); err == nil {
		t.Fatal("BSAT empty tests accepted")
	}
	if _, err := PartitionedBSAT(c, tests, 0, BSATOptions{K: 1}); err == nil {
		t.Fatal("partition size 0 accepted")
	}
}

func TestCorrectionHelpers(t *testing.T) {
	a := NewCorrection([]int{3, 1, 2})
	if a.Key() != "1,2,3" || a.Size() != 3 || a.String() != "{1,2,3}" {
		t.Fatalf("correction basics: %v %q", a, a.Key())
	}
	if !a.Contains(2) || a.Contains(5) {
		t.Fatal("Contains")
	}
	b := NewCorrection([]int{1, 3})
	if !b.SubsetOf(a) || a.SubsetOf(b) {
		t.Fatal("SubsetOf")
	}
	ss := &SolutionSet{Solutions: []Correction{a}}
	if !ss.ContainsKey(NewCorrection([]int{2, 1, 3})) {
		t.Fatal("ContainsKey")
	}
	if SameSolutions(ss, &SolutionSet{Solutions: []Correction{b}}) {
		t.Fatal("SameSolutions false positive")
	}
}
