package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// poolSize returns the number of workers parallelFor will use for n
// independent items and the given bound (<= 0 selects runtime.NumCPU).
// Callers size per-worker scratch (simulators, trace buffers) with it.
func poolSize(n, workers int) int {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// parallelFor runs fn(worker, i) for every i in [0, n) on a bounded
// worker pool of poolSize(n, workers) goroutines. Items are handed out
// by an atomic counter; fn must deposit its result into an
// index-addressed slot, which keeps the assembled output deterministic
// (byte-identical to a serial run) regardless of scheduling. worker
// identifies the executing goroutine (0..poolSize-1) so fn can reuse
// per-worker scratch without locking.
func parallelFor(n, workers int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	w := poolSize(n, workers)
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for id := 0; id < w; id++ {
		go func(id int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(id, i)
			}
		}(id)
	}
	wg.Wait()
}
