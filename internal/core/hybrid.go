package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/sat"
)

// HybridBSAT implements the first hybrid sketched in the paper's
// Section 6: "the fast engines of BSIM and COV can be used to direct the
// SAT-search by tuning the decision heuristics of the solver". It runs
// BasicSimDiagnose, then boosts the VSIDS activity of each candidate
// gate's select line proportionally to its path-trace mark count M(g)
// and sets the saved phase of highly marked selects to "selected", so
// the SAT search branches on simulation-suspected sites first.
//
// The steering only reorders the search: the solution space — and thus
// every guarantee of Lemmas 1 and 3 — is exactly that of plain BSAT.
func HybridBSAT(c *circuit.Circuit, tests circuit.TestSet, opts BSATOptions, pt PTOptions) (*BSATResult, *BSIMResult, error) {
	bsim := BSIM(c, tests, pt)
	steered := opts
	steered.Steer = func(inst *cnf.Instance) {
		max := 0
		for _, m := range bsim.MarkCount {
			if m > max {
				max = m
			}
		}
		if max == 0 {
			return
		}
		for j, g := range inst.Candidates {
			m := bsim.MarkCount[g]
			if m == 0 {
				continue
			}
			v := inst.Sels[j].Var()
			inst.Solver.BumpActivity(v, float64(m))
			if 2*m >= max {
				inst.Solver.SetPolarity(v, true)
			}
		}
	}
	res, err := BSAT(c, tests, steered)
	if err != nil {
		return nil, nil, fmt.Errorf("core: hybrid: %w", err)
	}
	return res, bsim, nil
}

// RepairResult is the outcome of CovGuidedRepair.
type RepairResult struct {
	// Correction is the first valid correction obtained, or empty when
	// none was found within the exploration bounds.
	Correction Correction
	Found      bool
	// CovSolution is the covering solution the repair started from.
	CovSolution Correction
	// Validated counts COV solutions confirmed valid as-is; Repaired is
	// set when the returned correction needed SAT repair (gate swaps).
	Validated int
	Repaired  bool
	Elapsed   time.Duration
}

// CovGuidedRepair implements the second hybrid of Section 6: "choose an
// initial correction (that may not be valid) and use SAT-based diagnosis
// to turn it into a valid correction". Covering solutions are tried in
// enumeration order: each is first checked by exact effect analysis
// (cheap simulation); the first valid one is returned directly. If none
// validates, the most promising covering solution seeds a SAT repair:
// its gates are assumed selected one subset at a time (largest first)
// while the solver is free to choose up to K total corrections, so the
// initial guess is minimally amended into a valid correction.
//
// The repair runs on a cnf.DiagSession built lazily only when simulation
// alone cannot settle the covering solutions. Callers that already hold
// a live session over the same circuit and test-set (e.g. from a prior
// BSAT or HybridBSAT run, via BSATResult.Session) can reuse it through
// CovGuidedRepairSession and skip even that build.
func CovGuidedRepair(c *circuit.Circuit, tests circuit.TestSet, covRes *CovResult, opts BSATOptions) (*RepairResult, error) {
	return covGuidedRepair(c, tests, nil, covRes, opts)
}

// CovGuidedRepairSession is CovGuidedRepair reusing a live diagnosis
// session instead of building one. tests is the full test-set the
// repair must be valid for; sess must encode the same circuit over
// these tests (all of them for a BSAT/HybridBSAT session, possibly a
// converged subset for a CEGAR session) with an unrestricted candidate
// set and a cardinality ladder wide enough for opts.K. Every reported
// repair is validated against the full tests by the simulation oracle,
// so partial sessions stay sound (they may just fail to repair). The
// repair queries are assumption-only, so the session stays reusable.
func CovGuidedRepairSession(sess *cnf.DiagSession, tests circuit.TestSet, covRes *CovResult, opts BSATOptions) (*RepairResult, error) {
	if !sess.CanBound(opts.K) {
		return nil, fmt.Errorf("core: reused session cannot bound corrections at K=%d (built with a smaller MaxK)", opts.K)
	}
	if len(sess.Candidates) < len(sess.Circuit.InternalGates()) {
		return nil, fmt.Errorf("core: reused session has a restricted candidate set (%d of %d internal gates); repair needs an unrestricted one",
			len(sess.Candidates), len(sess.Circuit.InternalGates()))
	}
	if !sameTests(sess.Tests, tests) && opts.K > maxValidateGates {
		// A session whose copies are not exactly this test-set (e.g. a
		// converged CEGAR abstraction) proves validity only for what it
		// encodes, so every repair must fit the simulation oracle's bound
		// to be checkable against the full test-set.
		return nil, fmt.Errorf("core: repairing over a different test-set than the session encodes requires K <= %d (oracle bound), got %d", maxValidateGates, opts.K)
	}
	return covGuidedRepair(sess.Circuit, tests, sess, covRes, opts)
}

func covGuidedRepair(c *circuit.Circuit, tests circuit.TestSet, sess *cnf.DiagSession, covRes *CovResult, opts BSATOptions) (*RepairResult, error) {
	start := time.Now()
	out := &RepairResult{}
	if len(covRes.Solutions) == 0 {
		out.Elapsed = time.Since(start)
		return out, nil
	}
	// One validator serves every candidate solution and the final repair
	// check: the per-test baselines are built once and each effect
	// analysis touches only the candidate gates' fanout cones.
	v := NewValidator(c, tests)
	for _, sol := range covRes.Solutions {
		if v.Validate(sol.Gates) {
			out.Correction = sol
			out.CovSolution = sol
			out.Found = true
			out.Validated++
			out.Elapsed = time.Since(start)
			return out, nil
		}
	}

	// No covering solution is valid as-is (the Lemma 2 situation): repair
	// the first one with SAT.
	seed := covRes.Solutions[0]
	out.CovSolution = seed
	if sess == nil {
		sess = cnf.NewSession(c, cnf.DiagOptions{
			MaxK:      opts.K,
			Encoding:  opts.Encoding,
			ForceZero: opts.ForceZero,
			ConeOnly:  opts.ConeOnly,
		})
		sess.AddTests(tests)
	}
	solver := sess.Solver
	solver.SetBudget(opts.MaxConflicts, opts.Timeout)
	// Phase-steer toward the seed so free searches stay near it.
	for j, g := range sess.Candidates {
		if seed.Contains(g) {
			v := sess.Sels[j].Var()
			solver.BumpActivity(v, 10)
			solver.SetPolarity(v, true)
		}
	}
	active := sess.ActivationAssumps(nil) // bind every copy of guarded sessions
	// A session encoding exactly this test-set yields SAT models that
	// are valid by construction; any other session (e.g. a converged
	// CEGAR abstraction) needs the oracle to confirm each repair, and
	// repairs it cannot check are rejected (fail closed).
	mustValidate := !sameTests(sess.Tests, tests)
	subsets := subsetsLargestFirst(seed.Gates)
	for _, keep := range subsets {
		if len(keep) > opts.K {
			continue
		}
		assumps := make([]sat.Lit, 0, len(keep)+len(active)+1)
		for _, g := range keep {
			l, ok := sess.SelLit(g)
			if !ok {
				continue
			}
			assumps = append(assumps, l)
		}
		assumps = append(assumps, active...)
		assumps = append(assumps, sess.AtMost(opts.K)...)
		if solver.Solve(assumps...) == sat.StatusSat {
			gates := sess.ModelGates()
			if mustValidate && (len(gates) > maxValidateGates || !v.Validate(gates)) {
				continue
			}
			out.Correction = NewCorrection(gates)
			out.Found = true
			out.Repaired = true
			out.Elapsed = time.Since(start)
			return out, nil
		}
	}
	out.Elapsed = time.Since(start)
	return out, nil
}

// sameTests reports whether two test-sets contain identical triples in
// the same order.
func sameTests(a, b circuit.TestSet) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Output != b[i].Output || a[i].Want != b[i].Want || len(a[i].Vector) != len(b[i].Vector) {
			return false
		}
		for j := range a[i].Vector {
			if a[i].Vector[j] != b[i].Vector[j] {
				return false
			}
		}
	}
	return true
}

// subsetsLargestFirst yields all subsets of gates ordered by descending
// size (the full seed first, the empty set last).
func subsetsLargestFirst(gates []int) [][]int {
	n := len(gates)
	subsets := make([][]int, 0, 1<<uint(n))
	for m := 0; m < 1<<uint(n); m++ {
		var sub []int
		for i := 0; i < n; i++ {
			if m>>uint(i)&1 == 1 {
				sub = append(sub, gates[i])
			}
		}
		subsets = append(subsets, sub)
	}
	sort.SliceStable(subsets, func(i, j int) bool { return len(subsets[i]) > len(subsets[j]) })
	return subsets
}
