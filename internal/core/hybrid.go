package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/sat"
)

// HybridBSAT implements the first hybrid sketched in the paper's
// Section 6: "the fast engines of BSIM and COV can be used to direct the
// SAT-search by tuning the decision heuristics of the solver". It runs
// BasicSimDiagnose, then boosts the VSIDS activity of each candidate
// gate's select line proportionally to its path-trace mark count M(g)
// and sets the saved phase of highly marked selects to "selected", so
// the SAT search branches on simulation-suspected sites first.
//
// The steering only reorders the search: the solution space — and thus
// every guarantee of Lemmas 1 and 3 — is exactly that of plain BSAT.
func HybridBSAT(c *circuit.Circuit, tests circuit.TestSet, opts BSATOptions, pt PTOptions) (*BSATResult, *BSIMResult, error) {
	bsim := BSIM(c, tests, pt)
	steered := opts
	steered.Steer = func(inst *cnf.Instance) {
		max := 0
		for _, m := range bsim.MarkCount {
			if m > max {
				max = m
			}
		}
		if max == 0 {
			return
		}
		for j, g := range inst.Candidates {
			m := bsim.MarkCount[g]
			if m == 0 {
				continue
			}
			v := inst.Sels[j].Var()
			inst.Solver.BumpActivity(v, float64(m))
			if 2*m >= max {
				inst.Solver.SetPolarity(v, true)
			}
		}
	}
	res, err := BSAT(c, tests, steered)
	if err != nil {
		return nil, nil, fmt.Errorf("core: hybrid: %w", err)
	}
	return res, bsim, nil
}

// RepairResult is the outcome of CovGuidedRepair.
type RepairResult struct {
	// Correction is the first valid correction obtained, or empty when
	// none was found within the exploration bounds.
	Correction Correction
	Found      bool
	// CovSolution is the covering solution the repair started from.
	CovSolution Correction
	// Validated counts COV solutions confirmed valid as-is; Repaired is
	// set when the returned correction needed SAT repair (gate swaps).
	Validated int
	Repaired  bool
	Elapsed   time.Duration
}

// CovGuidedRepair implements the second hybrid of Section 6: "choose an
// initial correction (that may not be valid) and use SAT-based diagnosis
// to turn it into a valid correction". Covering solutions are tried in
// enumeration order: each is first checked by exact effect analysis
// (cheap simulation); the first valid one is returned directly. If none
// validates, the most promising covering solution seeds a SAT repair:
// its gates are assumed selected one subset at a time (largest first)
// while the solver is free to choose up to K total corrections, so the
// initial guess is minimally amended into a valid correction.
func CovGuidedRepair(c *circuit.Circuit, tests circuit.TestSet, covRes *CovResult, opts BSATOptions) (*RepairResult, error) {
	start := time.Now()
	out := &RepairResult{}
	if len(covRes.Solutions) > 0 {
		// One validator serves every candidate solution: the per-test
		// baselines are built once and each effect analysis touches only
		// the candidate gates' fanout cones.
		v := NewValidator(c, tests)
		for _, sol := range covRes.Solutions {
			if v.Validate(sol.Gates) {
				out.Correction = sol
				out.CovSolution = sol
				out.Found = true
				out.Validated++
				out.Elapsed = time.Since(start)
				return out, nil
			}
		}
	}
	if len(covRes.Solutions) == 0 {
		out.Elapsed = time.Since(start)
		return out, nil
	}

	// No covering solution is valid as-is (the Lemma 2 situation): repair
	// the first one with SAT.
	seed := covRes.Solutions[0]
	out.CovSolution = seed
	inst := cnf.BuildDiag(c, tests, cnf.DiagOptions{
		MaxK:      opts.K,
		Encoding:  opts.Encoding,
		ForceZero: opts.ForceZero,
		ConeOnly:  opts.ConeOnly,
	})
	solver := inst.Solver
	solver.MaxConflicts = opts.MaxConflicts
	if opts.Timeout > 0 {
		solver.Deadline = time.Now().Add(opts.Timeout)
	}
	// Phase-steer toward the seed so free searches stay near it.
	for j, g := range inst.Candidates {
		if seed.Contains(g) {
			v := inst.Sels[j].Var()
			solver.BumpActivity(v, 10)
			solver.SetPolarity(v, true)
		}
	}
	subsets := subsetsLargestFirst(seed.Gates)
	for _, keep := range subsets {
		if len(keep) > opts.K {
			continue
		}
		assumps := make([]sat.Lit, 0, len(keep)+1)
		for _, g := range keep {
			l, ok := inst.SelLit(g)
			if !ok {
				continue
			}
			assumps = append(assumps, l)
		}
		assumps = append(assumps, inst.AtMost(opts.K)...)
		if solver.Solve(assumps...) == sat.StatusSat {
			var gates []int
			for j, g := range inst.Candidates {
				if solver.ValueLit(inst.Sels[j]) == sat.LTrue {
					gates = append(gates, g)
				}
			}
			out.Correction = NewCorrection(gates)
			out.Found = true
			out.Repaired = true
			out.Elapsed = time.Since(start)
			return out, nil
		}
	}
	out.Elapsed = time.Since(start)
	return out, nil
}

// subsetsLargestFirst yields all subsets of gates ordered by descending
// size (the full seed first, the empty set last).
func subsetsLargestFirst(gates []int) [][]int {
	n := len(gates)
	subsets := make([][]int, 0, 1<<uint(n))
	for m := 0; m < 1<<uint(n); m++ {
		var sub []int
		for i := 0; i < n; i++ {
			if m>>uint(i)&1 == 1 {
				sub = append(sub, gates[i])
			}
		}
		subsets = append(subsets, sub)
	}
	sort.SliceStable(subsets, func(i, j int) bool { return len(subsets[i]) > len(subsets[j]) })
	return subsets
}
