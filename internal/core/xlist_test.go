package core

import (
	"testing"
	"testing/quick"

	"repro/internal/circuit"
)

// TestXDiagnoseOnFig5a: X-injection performs per-gate effect analysis,
// so — unlike path tracing — it excludes B and C on the Lemma 2 circuit:
// with the other buffer stuck at 0, an X at one buffer cannot reach the
// output through the AND gate.
func TestXDiagnoseOnFig5a(t *testing.T) {
	c, test, names := fig5a(t)
	res := XDiagnose(c, circuit.TestSet{test})
	got := NewCorrection(res.Sets[0])
	want := NewCorrection(gateSet(names, "A", "D"))
	if got.Key() != want.Key() {
		t.Fatalf("X-candidates %v, want %v", got, want)
	}
}

// TestXDiagnoseOnFig5b: on the Lemma 4 circuit no single gate other than
// E can fix the test, and X-screening reflects that (A and B alone are
// masked by the other AND input being 0).
func TestXDiagnoseOnFig5b(t *testing.T) {
	c, test, names := fig5b(t)
	res := XDiagnose(c, circuit.TestSet{test})
	got := NewCorrection(res.Sets[0])
	want := NewCorrection(gateSet(names, "E"))
	if got.Key() != want.Key() {
		t.Fatalf("X-candidates %v, want %v", got, want)
	}
}

// TestXDiagnoseOverapproximatesFixable: every gate whose forced value
// rectifies a test must be X-marked for that test (soundness of the
// three-valued screen); the X set may be larger (pessimism).
func TestXDiagnoseOverapproximatesFixable(t *testing.T) {
	f := func(seed int64) bool {
		sc := makeScenario(t, seed%5000, 1, 4)
		if sc == nil {
			return true
		}
		res := XDiagnose(sc.faulty, sc.tests)
		for i, test := range sc.tests {
			marked := make(map[int]bool, len(res.Sets[i]))
			for _, g := range res.Sets[i] {
				marked[g] = true
			}
			for _, g := range PerTestFixable(sc.faulty, test) {
				if !marked[g] {
					t.Logf("seed %d test %d: fixable gate %d not X-marked", seed, i, g)
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30}
	if testing.Short() {
		cfg.MaxCount = 8
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestXDiagnoseCandidatesWithinCone: X at a gate outside the output's
// fanin cone can never reach it.
func TestXDiagnoseCandidatesWithinCone(t *testing.T) {
	f := func(seed int64) bool {
		sc := makeScenario(t, seed%5000, 1, 4)
		if sc == nil {
			return true
		}
		res := XDiagnose(sc.faulty, sc.tests)
		for i, test := range sc.tests {
			cone := sc.faulty.FaninCone(test.Output)
			for _, g := range res.Sets[i] {
				if !cone[g] {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30}
	if testing.Short() {
		cfg.MaxCount = 8
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestCOVWithXListEngine: the covering stage runs on X-list candidate
// sets; on fig5a this eliminates the invalid {B} solution that the
// PT-based COV produced (Lemma 2's witness), because the candidate sets
// themselves are effect-screened.
func TestCOVWithXListEngine(t *testing.T) {
	c, test, names := fig5a(t)
	tests := circuit.TestSet{test}
	covX, err := COV(c, tests, CovOptions{K: 1, UseXList: true})
	if err != nil {
		t.Fatal(err)
	}
	bSol := NewCorrection([]int{names["B"]})
	if covX.ContainsKey(bSol) {
		t.Fatalf("X-list COV still proposes invalid {B}: %v", covX.Solutions)
	}
	// And it still finds the two real single-gate fixes.
	for _, label := range []string{"A", "D"} {
		if !covX.ContainsKey(NewCorrection([]int{names[label]})) {
			t.Fatalf("X-list COV lost {%s}: %v", label, covX.Solutions)
		}
	}
}

// TestXDiagnoseSingleErrorSiteMarked: for single-error scenarios the
// actual site must be X-marked by every test (its value change caused
// the failure, so X reaches the output).
func TestXDiagnoseSingleErrorSiteMarked(t *testing.T) {
	f := func(seed int64) bool {
		sc := makeScenario(t, seed%5000, 1, 6)
		if sc == nil {
			return true
		}
		res := XDiagnose(sc.faulty, sc.tests)
		site := sc.sites[0]
		return res.MarkCount[site] == len(sc.tests)
	}
	cfg := &quick.Config{MaxCount: 30}
	if testing.Short() {
		cfg.MaxCount = 8
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
