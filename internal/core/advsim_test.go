package core

import (
	"testing"
	"testing/quick"

	"repro/internal/circuit"
)

func TestAdvSimOnFig5a(t *testing.T) {
	// The advanced simulation-based approach performs effect analysis, so
	// on the Lemma 2 circuit it returns only the valid single-gate fixes
	// {A} and {D} — never the bogus cover {B}.
	c, test, names := fig5a(t)
	tests := circuit.TestSet{test}
	res, err := AdvSimDiagnose(c, tests, AdvSimOptions{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 2 {
		t.Fatalf("solutions %v, want {A} and {D}", res.Solutions)
	}
	for _, want := range []string{"A", "D"} {
		if !res.ContainsKey(NewCorrection([]int{names[want]})) {
			t.Fatalf("missing {%s}: %v", want, res.Solutions)
		}
	}
	if res.ContainsKey(NewCorrection([]int{names["B"]})) {
		t.Fatal("invalid {B} returned")
	}
}

func TestAdvSimMissesOffPathCorrections(t *testing.T) {
	// On the Lemma 4 circuit, {A,B} is valid but B is off the traced
	// paths: the advanced simulation-based approach (like COV) cannot
	// find it, while it does find {E}. This is exactly the candidate-pool
	// limitation Table 1 ascribes to the simulation side.
	c, test, names := fig5b(t)
	tests := circuit.TestSet{test}
	res, err := AdvSimDiagnose(c, tests, AdvSimOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.ContainsKey(NewCorrection([]int{names["E"]})) {
		t.Fatalf("missing {E}: %v", res.Solutions)
	}
	ab := NewCorrection(gateSet(names, "A", "B"))
	if res.ContainsKey(ab) {
		t.Fatalf("found off-path correction %v (B is never marked)", ab)
	}
}

// TestAdvSimSubsetOfBSATProperty: every advanced-simulation solution is
// valid, essential and of size <= k, hence a member of BSAT's complete
// solution list.
func TestAdvSimSubsetOfBSATProperty(t *testing.T) {
	f := func(seed int64) bool {
		sc := makeScenario(t, seed%5000, 1+int(abs64(seed)%2), 4)
		if sc == nil {
			return true
		}
		adv, err := AdvSimDiagnose(sc.faulty, sc.tests, AdvSimOptions{K: sc.k})
		if err != nil {
			t.Fatal(err)
		}
		bsat, err := BSAT(sc.faulty, sc.tests, BSATOptions{K: sc.k})
		if err != nil {
			t.Fatal(err)
		}
		if !bsat.Complete {
			return true
		}
		for _, sol := range adv.Solutions {
			if !bsat.ContainsKey(sol) {
				t.Logf("seed %d: advsim %v not in BSAT %v", seed, sol, bsat.Solutions)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 20}
	if testing.Short() {
		cfg.MaxCount = 6
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestAdvSimRetraceStillSound: the retracing variant refines the pool
// but must keep returning only valid corrections.
func TestAdvSimRetraceStillSound(t *testing.T) {
	f := func(seed int64) bool {
		sc := makeScenario(t, seed%5000, 2, 4)
		if sc == nil {
			return true
		}
		adv, err := AdvSimDiagnose(sc.faulty, sc.tests, AdvSimOptions{K: 2, Retrace: true, MaxSolutions: 50})
		if err != nil {
			t.Fatal(err)
		}
		for _, sol := range adv.Solutions {
			if !Validate(sc.faulty, sc.tests, sol.Gates) {
				t.Logf("seed %d: invalid %v", seed, sol)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 15}
	if testing.Short() {
		cfg.MaxCount = 5
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestAdvSimOptionsValidation(t *testing.T) {
	c, test, _ := fig5a(t)
	if _, err := AdvSimDiagnose(c, circuit.TestSet{test}, AdvSimOptions{K: 0}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := AdvSimDiagnose(c, nil, AdvSimOptions{K: 1}); err == nil {
		t.Fatal("empty tests accepted")
	}
}

func TestAdvSimMaxSolutionsCap(t *testing.T) {
	c, test, _ := fig5a(t)
	res, err := AdvSimDiagnose(c, circuit.TestSet{test}, AdvSimOptions{K: 1, MaxSolutions: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 1 || res.Complete {
		t.Fatalf("cap broken: %d solutions complete=%v", len(res.Solutions), res.Complete)
	}
}
