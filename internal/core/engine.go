package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/sat"
	"repro/internal/trace"
)

// Request is the unified diagnosis request served by Diagnose: one
// struct naming the engine and carrying the inputs every procedure
// shares — the faulty circuit, the failing test-set, the correction
// size ladder, the shard count, budgets — plus the per-family extras.
// Fields an engine does not use are ignored (e.g. Shards for bsim/cov,
// PT for bsat/cegar).
type Request struct {
	// Engine names the registered procedure: "bsim", "cov", "bsat",
	// "cegar" or "hybrid" (RegisterEngine adds more). "" means "bsat".
	Engine string

	// Circuit is the faulty implementation; Tests the failing triples
	// (Definition 1). Both are required.
	Circuit *circuit.Circuit
	Tests   circuit.TestSet

	// K is the correction-size ladder bound (limits 1..K); minimum and
	// default 1. Ignored by bsim.
	K int

	// Shards > 1 runs the SAT enumeration (bsat/cegar/hybrid) on that
	// many disjoint candidate shards concurrently; the solution set and
	// its canonical order are shard-count invariant. ShardSample bounds
	// the sequential sample stage that warms the solver and plans the
	// balanced cubes (0 = default).
	Shards      int
	ShardSample int

	// Budgets; zero values mean unlimited.
	MaxSolutions int
	MaxConflicts int64
	Timeout      time.Duration

	// SAT-engine extras (ignored by bsim/cov).
	Candidates []int
	Encoding   cnf.CardEncoding
	ForceZero  bool
	ConeOnly   bool

	// Solver names the SAT search configuration ("default", "gen2";
	// "" = default). Trajectory-only: the solution set and its canonical
	// order are configuration-invariant. Ignored by bsim/cov.
	Solver string

	// Enum names the enumeration mode ("legacy", "projected"; "" =
	// legacy). Trajectory-only under the ladder discipline: the solution
	// set and its canonical order are mode-invariant. Ignored by
	// bsim/cov.
	Enum string

	// PT configures the path-tracing stage of bsim, cov and hybrid.
	PT PTOptions
	// CovEngine selects the covering enumerator of cov.
	CovEngine CovEngine
}

// Report is the unified diagnosis response: the canonical solution set
// plus everything the engines know about how it was obtained. Fields an
// engine cannot fill stay zero (e.g. Vars for bsim, Copies for cov).
type Report struct {
	// Engine echoes the resolved engine name.
	Engine string

	// SolutionSet holds the corrections in canonical order (by size,
	// then lexicographically) regardless of engine, worker or shard
	// count; Complete reports whether enumeration exhausted the space
	// within the budgets (cancellation surfaces here too).
	SolutionSet

	// Guaranteed reports whether every solution is a valid correction
	// containing only essential candidates (Lemmas 1 and 3) — true for
	// the SAT engines, false for bsim/cov (Lemma 2).
	Guaranteed bool

	// Timings are the Table 2 columns (instance construction, first
	// solution, exhaustion). Vars/Clauses/Copies size the SAT instance;
	// Stats counts solver work; Refinements counts CEGAR refinement
	// steps and Checked the candidates its simulation oracle validated.
	// PerShard carries the per-shard breakdown of sharded runs.
	Timings     Timings
	Vars        int
	Clauses     int
	Copies      int
	Refinements int
	Checked     int
	Stats       sat.Stats
	PerShard    []cnf.ShardStats

	// Elapsed is the end-to-end wall time inside Diagnose.
	Elapsed time.Duration
}

// EngineFunc is a registered diagnosis procedure. It must return the
// solutions in canonical order (SolutionSet.Canonicalize) and respect
// ctx cancellation by reporting an incomplete result promptly. Engines
// whose stages are non-interruptible (bsim's millisecond-scale path
// tracing) must at least check ctx between stages and on entry.
type EngineFunc func(ctx context.Context, req Request) (*Report, error)

var (
	engineMu  sync.RWMutex
	engineReg = make(map[string]EngineFunc)
)

// RegisterEngine adds a diagnosis procedure to the registry under the
// given name. The five built-in engines are registered at package
// initialization; external packages can add their own (the name must be
// new). RegisterEngine is safe for concurrent use.
func RegisterEngine(name string, fn EngineFunc) {
	if name == "" || fn == nil {
		panic("core: RegisterEngine requires a name and a function")
	}
	engineMu.Lock()
	defer engineMu.Unlock()
	if _, dup := engineReg[name]; dup {
		panic("core: engine " + name + " registered twice")
	}
	engineReg[name] = fn
}

// EngineNames lists the registered engines, sorted.
func EngineNames() []string {
	engineMu.RLock()
	defer engineMu.RUnlock()
	names := make([]string, 0, len(engineReg))
	for name := range engineReg {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Diagnose runs the requested engine and returns its unified report.
// It is the single entry point over the five per-procedure functions
// (BSIM, COV, BSAT, CEGARDiagnose, HybridBSAT): same request shape,
// same report shape, same cancellation and sharding semantics. A nil
// ctx is treated as context.Background().
func Diagnose(ctx context.Context, req Request) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if req.Circuit == nil {
		return nil, fmt.Errorf("core: Diagnose requires a circuit")
	}
	if len(req.Tests) == 0 {
		return nil, fmt.Errorf("core: Diagnose requires a non-empty test-set")
	}
	name := req.Engine
	if name == "" {
		name = "bsat"
	}
	engineMu.RLock()
	fn := engineReg[name]
	engineMu.RUnlock()
	if fn == nil {
		return nil, fmt.Errorf("core: unknown engine %q (registered: %v)", name, EngineNames())
	}
	// A traced request groups the engine's whole execution (session
	// build, rounds, cubes) under one "engine:<name>" child span.
	if span := trace.FromContext(ctx).Child("engine:" + name); span != nil {
		ctx = trace.NewContext(ctx, span)
		defer span.End()
	}
	start := time.Now()
	rep, err := fn(ctx, req)
	if err != nil {
		return nil, fmt.Errorf("core: engine %s: %w", name, err)
	}
	rep.Engine = name
	rep.Elapsed = time.Since(start)
	return rep, nil
}

func (req Request) k() int {
	if req.K < 1 {
		return 1
	}
	return req.K
}

// bsatOptions translates the request into the option struct the SAT
// drivers share, threading ctx through.
func (req Request) bsatOptions(ctx context.Context) BSATOptions {
	return BSATOptions{
		K:            req.k(),
		Candidates:   req.Candidates,
		Encoding:     req.Encoding,
		ForceZero:    req.ForceZero,
		ConeOnly:     req.ConeOnly,
		Solver:       req.Solver,
		Enum:         req.Enum,
		MaxSolutions: req.MaxSolutions,
		MaxConflicts: req.MaxConflicts,
		Timeout:      req.Timeout,
		Shards:       req.Shards,
		ShardSample:  req.ShardSample,
		Ctx:          ctx,
	}
}

func bsatReport(res *BSATResult, copies int) *Report {
	return &Report{
		SolutionSet: res.SolutionSet,
		Guaranteed:  true,
		Timings:     res.Timings,
		Vars:        res.Vars,
		Clauses:     res.Clauses,
		Copies:      copies,
		Stats:       res.Stats,
		PerShard:    res.PerShard,
	}
}

func init() {
	RegisterEngine("bsim", func(ctx context.Context, req Request) (*Report, error) {
		// Path tracing runs in milliseconds and has no interruption
		// point; honor an already-cancelled context up front.
		if ctx.Err() != nil {
			return &Report{}, nil
		}
		res := BSIM(req.Circuit, req.Tests, req.PT)
		rep := &Report{Timings: Timings{All: res.Elapsed}}
		// BSIM yields candidate regions, not corrections: report each
		// per-test candidate set Ci as one (unguaranteed) entry.
		rep.Solutions = make([]Correction, len(res.Sets))
		for i, ci := range res.Sets {
			rep.Solutions[i] = NewCorrection(ci)
		}
		rep.Complete = true
		rep.Canonicalize()
		return rep, nil
	})
	RegisterEngine("cov", func(ctx context.Context, req Request) (*Report, error) {
		// The BSIM stage has no interruption point; honor an
		// already-cancelled context before it (the covering enumeration
		// itself polls ctx). The covering layer has no native wall-clock
		// budget, so Request.Timeout is enforced through the context.
		if ctx.Err() != nil {
			return &Report{}, nil
		}
		if req.Timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, req.Timeout)
			defer cancel()
		}
		res, err := COV(req.Circuit, req.Tests, CovOptions{
			K:            req.k(),
			PT:           req.PT,
			Engine:       req.CovEngine,
			MaxSolutions: req.MaxSolutions,
			MaxConflicts: req.MaxConflicts,
			Ctx:          ctx,
		})
		if err != nil {
			return nil, err
		}
		rep := &Report{SolutionSet: res.SolutionSet, Timings: res.Timings}
		rep.Canonicalize()
		return rep, nil
	})
	RegisterEngine("bsat", func(ctx context.Context, req Request) (*Report, error) {
		res, err := BSAT(req.Circuit, req.Tests, req.bsatOptions(ctx))
		if err != nil {
			return nil, err
		}
		return bsatReport(res, len(req.Tests)), nil
	})
	RegisterEngine("cegar", func(ctx context.Context, req Request) (*Report, error) {
		res, err := CEGARDiagnose(req.Circuit, req.Tests, req.bsatOptions(ctx))
		if err != nil {
			return nil, err
		}
		rep := bsatReport(&res.BSATResult, res.Copies)
		rep.Refinements = res.Refinements
		rep.Checked = res.Checked
		return rep, nil
	})
	RegisterEngine("hybrid", func(ctx context.Context, req Request) (*Report, error) {
		res, _, err := HybridBSAT(req.Circuit, req.Tests, req.bsatOptions(ctx), req.PT)
		if err != nil {
			return nil, err
		}
		return bsatReport(res, len(req.Tests)), nil
	})
}
