package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/sat"
)

// CEGARResult is the outcome of CEGARDiagnose. The embedded BSATResult
// carries the solution set (provably identical to monolithic BSAT), the
// timings and the final — lazily grown — instance size; the extra
// fields quantify the abstraction. Queries against the live session
// see only the encoded copies: ExtractFunctions reconstructs Care
// tables from Copies of the m tests, a subset of what the monolithic
// result would yield.
type CEGARResult struct {
	BSATResult
	// Copies is the number of test copies actually encoded; the
	// monolithic instance always encodes len(tests). For sharded runs it
	// is the largest per-shard abstraction (each shard refines its clone
	// independently).
	Copies int
	// Refinements counts counterexample tests added after seeding
	// (summed across shards for sharded runs).
	Refinements int
	// Checked counts candidate corrections validated against the full
	// test-set by the simulation oracle.
	Checked int
}

// cegarOutcome is the raw result of one CEGAR enumeration loop (the
// whole run for the monolithic driver, one shard's slice otherwise).
type cegarOutcome struct {
	solutions   [][]int // sorted gate sets, confirmation order
	refinements int
	checked     int
	complete    bool
	copies      int
	encodeTime  time.Duration // refinement encoding time on this session
	elapsed     time.Duration // pure enumeration wall time
	firstAt     time.Duration // pure enumeration time to first solution
	stats       sat.Stats
}

// cegarLoop runs the counterexample-guided enumeration inside a
// caller-managed round on one session: enumerate candidate corrections
// of size 1..K on the abstraction, refute spurious ones with the
// simulation oracle (growing the abstraction by the refuting test),
// block confirmed ones through the round. The round is not retired
// here, so its blocking survives for forked clones; extra assumptions
// (a shard's cube plus the sample round's guard) confine the slice.
// maxSols caps the confirmed solutions (0 = unlimited); encoded marks
// the tests present as copies; oracle must be dedicated to this call
// (a Validator is not safe for concurrent use).
func cegarLoop(sess *cnf.DiagSession, tests circuit.TestSet, encoded []bool, oracle *Validator, opts BSATOptions, round *cnf.Round, extra []sat.Lit, maxSols int) cegarOutcome {
	solver := sess.Solver
	solver.SetBudget(opts.MaxConflicts, opts.Timeout)

	// Timing discipline matches BSAT: encoding time (seed plus
	// refinements) stays out of the enumeration columns, so the Table 2
	// columns remain comparable across engines.
	buildBase := sess.BuildTime
	statsBase := solver.Statistics()
	start := time.Now()
	enumTime := func() time.Duration { return time.Since(start) - (sess.BuildTime - buildBase) }
	out := cegarOutcome{complete: true}
	base := append([]sat.Lit{round.Guard()}, extra...)
enumerate:
	for k := 1; k <= opts.K; k++ {
		for {
			if maxSols > 0 && len(out.solutions) >= maxSols {
				out.complete = false
				break enumerate
			}
			assumps := append(append([]sat.Lit(nil), base...), sess.AtMost(k)...)
			switch solver.SolveContext(opts.Ctx, assumps...) {
			case sat.StatusUnknown:
				out.complete = false
				break enumerate
			case sat.StatusUnsat:
				continue enumerate // next limit
			}
			gates := sess.ModelGates()
			out.checked++
			if refuter := oracle.FirstRefuting(gates, encoded); refuter >= 0 {
				// Spurious under the full test-set: grow the abstraction
				// with the counterexample and re-enumerate. No blocking —
				// a superset of a spurious set can still be genuine.
				encoded[refuter] = true
				sess.AddTest(tests[refuter])
				out.refinements++
				continue
			}
			// Confirmed against every test: a genuine solution. Block it
			// and its supersets for the rest of the round (Lemma 3).
			if len(out.solutions) == 0 {
				out.firstAt = enumTime()
			}
			g := append([]int(nil), gates...)
			sort.Ints(g)
			out.solutions = append(out.solutions, g)
			round.BlockSubset(gates)
		}
	}
	out.elapsed = enumTime()
	out.encodeTime = sess.BuildTime - buildBase
	out.copies = sess.NumTests()
	out.stats = solver.Statistics().Sub(statsBase)
	return out
}

// CEGARDiagnose is the counterexample-guided form of BasicSATDiagnose:
// instead of encoding one constrained circuit copy per test up front
// (the Θ(|I|·m) instance of Table 1), it seeds a cnf.DiagSession with
// one test per distinct erroneous output and enumerates candidate
// corrections on that abstraction. Each candidate is validated against
// the full test-set by the incremental simulation oracle (Validator,
// O(affected cone) per test rather than a SAT copy); a refuted candidate
// contributes its refuting test as a new copy (AddTest) and enumeration
// continues, while a confirmed candidate is recorded and blocked. The
// loop is the paper's thesis made operational: the simulation engine and
// the SAT engine answer the same validity question, so the cheap one can
// serve as the oracle that lazily grows the expensive one.
//
// The returned solution set is identical to monolithic BSAT with the
// same options (oracle-checked in the equivalence property suite):
// the abstraction over-approximates — every genuine correction is a
// model of every abstraction — and a candidate is only recorded once no
// test refutes it, so enumeration per limit k terminates exactly when
// the genuine size-≤k solutions are exhausted.
//
// Options mirror BSATOptions, including Shards: with Shards > 1 the
// seeded abstraction is forked into disjoint candidate shards
// (cnf.DiagSession.Fork), each running its own refinement loop on a
// cloned backend concurrently with a dedicated oracle and an
// independently grown copy set; the canonical merge restores exactly
// the monolithic solution set. Groups and Golden are rejected: their
// validity semantics (shared select lines across frame instances;
// all-output constraints) are not what the simulation oracle checks.
func CEGARDiagnose(c *circuit.Circuit, tests circuit.TestSet, opts BSATOptions) (*CEGARResult, error) {
	if opts.K < 1 {
		return nil, fmt.Errorf("core: CEGARDiagnose requires K >= 1, got %d", opts.K)
	}
	if len(tests) == 0 {
		return nil, fmt.Errorf("core: CEGARDiagnose requires a non-empty test-set")
	}
	if opts.Groups != nil {
		return nil, fmt.Errorf("core: CEGARDiagnose does not support grouped select lines; use BSAT")
	}
	if opts.Golden != nil {
		return nil, fmt.Errorf("core: CEGARDiagnose does not support golden all-output constraints; use BSAT")
	}
	if opts.K > maxValidateGates {
		return nil, fmt.Errorf("core: CEGARDiagnose requires K <= %d (simulation oracle bound), got %d", maxValidateGates, opts.K)
	}

	diagOpts, err := opts.diagOptions()
	if err != nil {
		return nil, err
	}
	sess := cnf.NewSession(c, diagOpts)

	// Seed the abstraction with one test per distinct erroneous output:
	// the cheapest subset that still constrains every failing observable.
	encoded := make([]bool, len(tests))
	seenOut := make(map[int]bool)
	for i, t := range tests {
		if !seenOut[t.Output] {
			seenOut[t.Output] = true
			encoded[i] = true
			sess.AddTest(t)
		}
	}
	seeds := sess.NumTests()
	if opts.Steer != nil {
		opts.Steer(sess)
	}

	if opts.Shards > 1 {
		return cegarSharded(c, tests, opts, sess, encoded)
	}

	// The oracle: per-test resident baselines, one effect analysis per
	// candidate×test in O(affected cone).
	round := sess.NewRound()
	out := func() cegarOutcome {
		defer round.Retire()
		return cegarLoop(sess, tests, encoded, NewValidator(c, tests), opts, round, nil, opts.MaxSolutions)
	}()

	res := &CEGARResult{BSATResult: BSATResult{sess: sess}}
	cegarFinish(res, sess, out)
	if res.Copies != seeds+res.Refinements {
		panic("core: CEGAR copy accounting out of sync")
	}
	return res, nil
}

// cegarFinish fills a CEGARResult from a single-loop outcome: the
// monolithic run, or a sharded run its sample stage already settled.
// It reports the encoding's size, not the enumeration round's
// artifacts: the round contributes one guard variable and one guarded
// blocking clause per confirmed solution, which mono BSAT's
// Vars/Clauses (read before its round) never count. The clause figure
// is a close approximation — level-0 simplification during search may
// already have dropped a few satisfied clauses from the count.
func cegarFinish(res *CEGARResult, sess *cnf.DiagSession, out cegarOutcome) {
	for _, g := range out.solutions {
		res.Solutions = append(res.Solutions, NewCorrection(g))
	}
	res.Complete = out.complete
	res.Timings.One = out.firstAt
	res.Timings.All = out.elapsed
	res.Timings.CNF = sess.BuildTime
	res.Vars, res.Clauses = sess.Size()
	res.Vars--
	if res.Clauses -= len(res.Solutions); res.Clauses < 0 {
		res.Clauses = 0
	}
	res.Stats = out.stats
	res.Checked = out.checked
	res.Refinements = out.refinements
	res.Copies = out.copies
	res.Canonicalize()
}

// cegarSharded runs the counterexample-guided enumeration as a sample
// stage plus disjoint assumption-scoped shards: the first solutions are
// confirmed monolithically on the seeded session (warming the solver
// and measuring candidate frequencies), then the session is forked into
// balanced cubes (cnf.PlanCubes/ForkCubes) — each clone inheriting the
// sample's guarded blocking, the refined copies and the learnt clauses —
// and every shard runs its own refinement loop concurrently with a
// dedicated oracle and an independently grown copy set. Each shard
// converges to exactly the genuine solutions of its residual slice, so
// the canonical merge equals the monolithic result whenever every
// stage completes.
func cegarSharded(c *circuit.Circuit, tests circuit.TestSet, opts BSATOptions, sess *cnf.DiagSession, encoded []bool) (*CEGARResult, error) {
	res := &CEGARResult{BSATResult: BSATResult{sess: sess}}

	// Sample stage on the live session; its round is retired only after
	// the shards finish (clones must inherit the guarded blocking).
	// PerShard entries carry wall time (refinement encoding included),
	// matching the worker entries RunCubes produces, so the bench's
	// critical-path metric adds like units; the enumeration-only
	// discipline lives in Timings, as for the monolithic driver.
	sampleCap := cnf.EffectiveSampleCap(opts.ShardSample, opts.MaxSolutions)
	sampleRound := sess.NewRound()
	defer sampleRound.Retire()
	sampleOracle := NewValidator(c, tests)
	sample := cegarLoop(sess, tests, encoded, sampleOracle, opts, sampleRound, nil, sampleCap)
	sampleWall := sample.elapsed + sample.encodeTime
	res.PerShard = append(res.PerShard, cnf.ShardStats{
		Shard:     -1,
		Solutions: len(sample.solutions),
		Complete:  sample.complete,
		First:     sample.firstAt,
		Elapsed:   sampleWall,
		Stats:     sample.stats,
	})
	if cnf.SampleSettled(sample.complete, len(sample.solutions), sampleCap, opts.MaxSolutions) {
		cegarFinish(res, sess, sample)
		return res, nil
	}

	// Per-worker CEGAR state, initialized lazily from the worker's own
	// goroutine (RunCubes calls one worker's cubes sequentially): a
	// dedicated oracle, the inherited encoded-test markers, and the
	// aggregate counters. The clone inherits the parent's copies as
	// refined by the sample stage; refinements accumulate on the
	// worker's clone across its cubes — the abstraction only tightens,
	// which stays sound for later cubes.
	type workerState struct {
		oracle               *Validator
		enc                  []bool
		session              *cnf.DiagSession
		refinements, checked int
		copies               int
		encodeTime           time.Duration
	}
	states := make([]*workerState, opts.Shards)
	workersStart := time.Now()
	// The worker phase shares the caller's Timeout window with the
	// sample stage instead of opening a second one.
	workerTimeout := opts.Timeout
	if opts.Timeout > 0 {
		if workerTimeout = opts.Timeout - sampleWall; workerTimeout <= 0 {
			cegarFinish(res, sess, sample)
			res.Complete = false
			return res, nil
		}
	}
	groups, stats, drained := sess.RunCubes(opts.Shards, cnf.RoundOptions{
		MaxK:         opts.K,
		Ctx:          opts.Ctx,
		MaxSolutions: opts.MaxSolutions,
		MaxConflicts: opts.MaxConflicts,
		Timeout:      workerTimeout,
	}, sample.solutions, true, func(worker int, sh *cnf.Shard, cube cnf.Cube, budget cnf.RoundOptions) ([][]int, bool) {
		st := states[worker]
		if st == nil {
			st = &workerState{oracle: NewValidator(c, tests), enc: append([]bool(nil), encoded...), session: sh.Session}
			states[worker] = st
		}
		cubeOpts := opts
		cubeOpts.Timeout = budget.Timeout
		extra := append(append([]sat.Lit(nil), cube.Assumps...), sampleRound.Guard())
		round := sh.Session.NewRound()
		out := cegarLoop(sh.Session, tests, st.enc, st.oracle, cubeOpts, round, extra, budget.MaxSolutions)
		round.Retire()
		st.refinements += out.refinements
		st.checked += out.checked
		st.copies = out.copies
		st.encodeTime += out.encodeTime
		return out.solutions, out.complete
	})

	// drained: every planned cube was fully served despite any worker
	// faults; abandoned or stranded cubes degrade the run to incomplete.
	res.Complete = drained
	res.Checked = sample.checked
	res.Refinements = sample.refinements
	res.Stats = sample.stats
	res.Copies = sample.copies
	res.Timings.One = sample.firstAt
	var maxEncode time.Duration
	for i, wst := range stats {
		res.Complete = res.Complete && wst.Complete
		res.Stats = res.Stats.Add(wst.Stats)
		if sample.firstAt == 0 && wst.First > 0 {
			first := sample.elapsed + wst.First
			if res.Timings.One == 0 || first < res.Timings.One {
				res.Timings.One = first
			}
		}
		res.PerShard = append(res.PerShard, wst)
		st := states[i]
		if st == nil {
			continue
		}
		res.Checked += st.checked
		res.Refinements += st.refinements
		if st.copies > res.Copies {
			res.Copies = st.copies
		}
		if st.encodeTime > maxEncode {
			maxEncode = st.encodeTime
		}
		// The largest shard encoding approximates the instance size (the
		// mono-style guard/blocking adjustment is meaningless across
		// clones carrying shard-slice constraints).
		if v, cl := st.session.Size(); v > res.Vars {
			res.Vars, res.Clauses = v, cl
		}
	}
	// All is actual wall time (sample stage plus the concurrent worker
	// phase) minus the critical-path refinement encoding, matching the
	// sharded BSAT convention so the Table 2 "All" column compares like
	// with like; the per-worker critical path is in PerShard. CNF adds
	// the critical-path refinement encoding.
	res.Timings.All = sample.elapsed + time.Since(workersStart) - maxEncode
	if res.Timings.All < 0 {
		res.Timings.All = 0
	}
	res.Timings.CNF = sess.BuildTime + maxEncode

	merged, truncated := cnf.MergeTruncate(append([][][]int{sample.solutions}, groups...), opts.MaxSolutions)
	if truncated {
		res.Complete = false
	}
	for _, g := range merged {
		res.Solutions = append(res.Solutions, NewCorrection(g))
	}
	res.Canonicalize()
	return res, nil
}
