package core

import (
	"fmt"
	"time"

	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/sat"
)

// CEGARResult is the outcome of CEGARDiagnose. The embedded BSATResult
// carries the solution set (provably identical to monolithic BSAT), the
// timings and the final — lazily grown — instance size; the extra
// fields quantify the abstraction. Queries against the live session
// see only the encoded copies: ExtractFunctions reconstructs Care
// tables from Copies of the m tests, a subset of what the monolithic
// result would yield.
type CEGARResult struct {
	BSATResult
	// Copies is the number of test copies actually encoded; the
	// monolithic instance always encodes len(tests).
	Copies int
	// Refinements counts counterexample tests added after seeding.
	Refinements int
	// Checked counts candidate corrections validated against the full
	// test-set by the simulation oracle.
	Checked int
}

// CEGARDiagnose is the counterexample-guided form of BasicSATDiagnose:
// instead of encoding one constrained circuit copy per test up front
// (the Θ(|I|·m) instance of Table 1), it seeds a cnf.DiagSession with
// one test per distinct erroneous output and enumerates candidate
// corrections on that abstraction. Each candidate is validated against
// the full test-set by the incremental simulation oracle (Validator,
// O(affected cone) per test rather than a SAT copy); a refuted candidate
// contributes its refuting test as a new copy (AddTest) and enumeration
// continues, while a confirmed candidate is recorded and blocked. The
// loop is the paper's thesis made operational: the simulation engine and
// the SAT engine answer the same validity question, so the cheap one can
// serve as the oracle that lazily grows the expensive one.
//
// The returned solution set is identical to monolithic BSAT with the
// same options (oracle-checked in the equivalence property suite):
// the abstraction over-approximates — every genuine correction is a
// model of every abstraction — and a candidate is only recorded once no
// test refutes it, so enumeration per limit k terminates exactly when
// the genuine size-≤k solutions are exhausted.
//
// Options mirror BSATOptions. Groups and Golden are rejected: their
// validity semantics (shared select lines across frame instances;
// all-output constraints) are not what the simulation oracle checks.
func CEGARDiagnose(c *circuit.Circuit, tests circuit.TestSet, opts BSATOptions) (*CEGARResult, error) {
	if opts.K < 1 {
		return nil, fmt.Errorf("core: CEGARDiagnose requires K >= 1, got %d", opts.K)
	}
	if len(tests) == 0 {
		return nil, fmt.Errorf("core: CEGARDiagnose requires a non-empty test-set")
	}
	if opts.Groups != nil {
		return nil, fmt.Errorf("core: CEGARDiagnose does not support grouped select lines; use BSAT")
	}
	if opts.Golden != nil {
		return nil, fmt.Errorf("core: CEGARDiagnose does not support golden all-output constraints; use BSAT")
	}
	if opts.K > maxValidateGates {
		return nil, fmt.Errorf("core: CEGARDiagnose requires K <= %d (simulation oracle bound), got %d", maxValidateGates, opts.K)
	}

	// The oracle: per-test resident baselines, one effect analysis per
	// candidate×test in O(affected cone).
	oracle := NewValidator(c, tests)

	sess := cnf.NewSession(c, opts.diagOptions())
	res := &CEGARResult{BSATResult: BSATResult{sess: sess}}

	// Seed the abstraction with one test per distinct erroneous output:
	// the cheapest subset that still constrains every failing observable.
	encoded := make([]bool, len(tests))
	seenOut := make(map[int]bool)
	for i, t := range tests {
		if !seenOut[t.Output] {
			seenOut[t.Output] = true
			encoded[i] = true
			sess.AddTest(t)
		}
	}
	seeds := sess.NumTests()
	if opts.Steer != nil {
		opts.Steer(sess)
	}

	solver := sess.Solver
	solver.SetBudget(opts.MaxConflicts, opts.Timeout)
	round := sess.NewRound()
	defer round.Retire()

	// Timing discipline matches BSAT: CNF holds all encoding time (seed
	// plus refinements), All holds pure enumeration wall time, so the
	// Table 2 columns stay comparable across engines.
	encodedTime := sess.BuildTime
	start := time.Now()
	res.Complete = true
enumerate:
	for k := 1; k <= opts.K; k++ {
		for {
			if opts.MaxSolutions > 0 && len(res.Solutions) >= opts.MaxSolutions {
				res.Complete = false
				break enumerate
			}
			assumps := append([]sat.Lit{round.Guard()}, sess.AtMost(k)...)
			switch solver.Solve(assumps...) {
			case sat.StatusUnknown:
				res.Complete = false
				break enumerate
			case sat.StatusUnsat:
				continue enumerate // next limit
			}
			gates := sess.ModelGates()
			res.Checked++
			if refuter := oracle.FirstRefuting(gates, encoded); refuter >= 0 {
				// Spurious under the full test-set: grow the abstraction
				// with the counterexample and re-enumerate. No blocking —
				// a superset of a spurious set can still be genuine.
				encoded[refuter] = true
				sess.AddTest(tests[refuter])
				res.Refinements++
				continue
			}
			// Confirmed against every test: a genuine solution. Block it
			// and its supersets for the rest of the round (Lemma 3).
			if len(res.Solutions) == 0 {
				res.Timings.One = time.Since(start) - (sess.BuildTime - encodedTime)
			}
			res.Solutions = append(res.Solutions, NewCorrection(gates))
			round.BlockSubset(gates)
		}
	}
	res.Timings.All = time.Since(start) - (sess.BuildTime - encodedTime)
	res.Timings.CNF = sess.BuildTime
	// Report the encoding's size, not the enumeration round's artifacts:
	// the round contributes one guard variable and one guarded blocking
	// clause per confirmed solution, which mono BSAT's Vars/Clauses
	// (read before its round) never count. The clause figure is a close
	// approximation — level-0 simplification during search may already
	// have dropped a few satisfied clauses from the count.
	res.Vars, res.Clauses = sess.Size()
	res.Vars--
	if res.Clauses -= len(res.Solutions); res.Clauses < 0 {
		res.Clauses = 0
	}
	res.Stats = solver.Stats
	res.Copies = sess.NumTests()
	if res.Copies != seeds+res.Refinements {
		panic("core: CEGAR copy accounting out of sync")
	}
	return res, nil
}
