package core

import (
	"repro/internal/circuit"
	"repro/internal/sim"
)

// maxValidateGates bounds the exhaustive effect analysis (2^n forced
// assignments per test). Diagnosis limits k are small (the paper uses
// 1-4), so 20 is far beyond practical need while still guarding runtime.
const maxValidateGates = 20

// Validate performs exact effect analysis per Definition 3: it reports
// whether the gate set is a valid correction for the test-set, i.e. for
// every test some assignment of values to the gates' outputs produces
// the correct value at the test's erroneous output. Because the fanin
// values of a corrected gate are fixed within a single test, replacing a
// gate function by an arbitrary Boolean function is per test exactly a
// free output constant — the same semantics BSAT's per-test correction
// inputs c^i_g give a selected multiplexer.
//
// All 2^|gates| forced assignments of one test are packed into 64-wide
// simulation words, so corrections up to size 6 need a single
// simulation pass per test.
//
// Validate is the one-shot entry point (it re-simulates from scratch);
// hot loops issuing many queries against the same test-set should use a
// Validator, which answers each query from resident baselines in
// O(affected cone) instead of O(circuit).
func Validate(c *circuit.Circuit, tests circuit.TestSet, gates []int) bool {
	return ValidateSim(sim.New(c), tests, gates)
}

// Validator answers repeated Validate queries against a fixed
// (circuit, test-set) pair using the event-driven incremental engine:
// each test's unmodified 64-pattern evaluation stays resident in its
// own IncrementalSimulator, so one query costs only the propagation
// through the forced gates' fanout cones plus an O(touched) undo —
// never a whole-circuit re-simulation. A structural screen rejects
// assignments whose gates cannot reach the failing output at all.
//
// A Validator is not safe for concurrent use; create one per goroutine.
type Validator struct {
	c      *circuit.Circuit
	an     *circuit.Analysis
	tests  circuit.TestSet
	incs   []*sim.IncrementalSimulator // per test, baseline resident
	baseOK []bool                      // per test, baseline output already correct
	forced []sim.Forced                // reused force buffer
	redux  []int                       // reused reduced-gate buffer (Essential)
}

// NewValidator builds the per-test baselines (one full simulation per
// test, paid once).
func NewValidator(c *circuit.Circuit, tests circuit.TestSet) *Validator {
	v := &Validator{
		c:      c,
		an:     c.Analysis(),
		tests:  tests,
		incs:   make([]*sim.IncrementalSimulator, len(tests)),
		baseOK: make([]bool, len(tests)),
		forced: make([]sim.Forced, maxValidateGates),
	}
	for i, t := range tests {
		inc := sim.NewIncremental(c)
		inc.SetBaseline(sim.PackVector(t.Vector))
		v.incs[i] = inc
		v.baseOK[i] = inc.OutputBit(t.Output) == t.Want
	}
	return v
}

// Tests returns the validator's test-set.
func (v *Validator) Tests() circuit.TestSet { return v.tests }

// Validate reports whether gates is a valid correction for the
// validator's test-set — exactly ValidateSim's answer, computed
// incrementally.
func (v *Validator) Validate(gates []int) bool {
	return v.FirstRefuting(gates, nil) < 0
}

// FirstRefuting returns the index of the first test the gate set cannot
// rectify, or -1 when the set is a valid correction for every test.
// Tests whose index is marked in skip (nil = none) are not checked —
// the CEGAR driver passes the tests already encoded in its SAT
// abstraction, which the candidate satisfies by construction.
func (v *Validator) FirstRefuting(gates []int, skip []bool) int {
	n := len(gates)
	if n > maxValidateGates {
		panic("core: Validate over more than 20 gates")
	}
	for i := range v.tests {
		if skip != nil && skip[i] {
			continue
		}
		if !v.validTest(i, gates) {
			return i
		}
	}
	return -1
}

// validTest reports whether some assignment to the gates' outputs
// produces the correct value at test i's erroneous output (Definition 3
// for a single test), against the resident baseline.
func (v *Validator) validTest(i int, gates []int) bool {
	n := len(gates)
	if n == 0 {
		return v.baseOK[i]
	}
	t := v.tests[i]
	// Structural screen: a gate set with no path to the failing
	// output leaves it at its baseline value under every assignment.
	reach := false
	for _, g := range gates {
		if v.an.Reaches(g, t.Output) {
			reach = true
			break
		}
	}
	if !reach {
		return v.baseOK[i]
	}
	total := 1 << uint(n)
	forced := v.forced[:n]
	inc := v.incs[i]
	for base := 0; base < total; base += 64 {
		lanes := total - base
		if lanes > 64 {
			lanes = 64
		}
		for j, g := range gates {
			forced[j] = sim.Forced{Gate: g, Value: assignmentWord(base, j)}
		}
		inc.ForceMany(forced)
		out := inc.Value(t.Output)
		inc.Undo()
		if !t.Want {
			out = ^out
		}
		if lanes < 64 {
			out &= (1 << uint(lanes)) - 1
		}
		if out != 0 {
			return true
		}
	}
	return false
}

// Essential reports whether gates is valid and contains only essential
// candidates (Definition 4), like the package-level Essential but over
// the validator's resident baselines.
func (v *Validator) Essential(gates []int) bool {
	if !v.Validate(gates) {
		return false
	}
	if len(gates) == 1 {
		return true
	}
	for i := range gates {
		v.redux = v.redux[:0]
		v.redux = append(v.redux, gates[:i]...)
		v.redux = append(v.redux, gates[i+1:]...)
		if v.Validate(v.redux) {
			return false
		}
	}
	return true
}

// ValidateSim is Validate with a caller-supplied simulator (avoids
// re-allocation in hot loops).
func ValidateSim(s *sim.Simulator, tests circuit.TestSet, gates []int) bool {
	n := len(gates)
	if n > maxValidateGates {
		panic("core: Validate over more than 20 gates")
	}
	if n == 0 {
		// The empty correction is valid iff the circuit already passes.
		for _, t := range tests {
			s.RunVector(t.Vector)
			if s.OutputBit(t.Output) != t.Want {
				return false
			}
		}
		return true
	}
	total := 1 << uint(n)
	forced := make([]sim.Forced, n)
	for _, t := range tests {
		inputs := sim.PackVector(t.Vector)
		rectified := false
		for base := 0; base < total && !rectified; base += 64 {
			lanes := total - base
			if lanes > 64 {
				lanes = 64
			}
			for j, g := range gates {
				forced[j] = sim.Forced{Gate: g, Value: assignmentWord(base, j)}
			}
			s.RunForced(inputs, forced)
			out := s.Value(t.Output)
			if !t.Want {
				out = ^out
			}
			if lanes < 64 {
				out &= (1 << uint(lanes)) - 1
			}
			if out != 0 {
				rectified = true
			}
		}
		if !rectified {
			return false
		}
	}
	return true
}

// assignmentWord returns the 64-lane word of bit j over assignments
// base..base+63: lane l carries bit j of assignment number base+l.
func assignmentWord(base, j int) uint64 {
	if j >= 6 {
		// Within a 64-aligned chunk, bits >= 6 are constant.
		if base>>uint(j)&1 == 1 {
			return ^uint64(0)
		}
		return 0
	}
	// Standard basis words: j=0 -> 0xAAAA..., j=1 -> 0xCCCC..., etc.
	var w uint64
	for l := uint(0); l < 64; l++ {
		if (uint(base)+l)>>uint(j)&1 == 1 {
			w |= 1 << l
		}
	}
	return w
}

// Essential reports whether the correction is valid and contains only
// essential candidates (Definition 4): dropping any single gate breaks
// validity.
func Essential(c *circuit.Circuit, tests circuit.TestSet, gates []int) bool {
	s := sim.New(c)
	if !ValidateSim(s, tests, gates) {
		return false
	}
	if len(gates) == 1 {
		// A singleton is essential iff the circuit does not already pass;
		// every test fails by Definition 1, so it is.
		return true
	}
	reduced := make([]int, 0, len(gates)-1)
	for i := range gates {
		reduced = reduced[:0]
		reduced = append(reduced, gates[:i]...)
		reduced = append(reduced, gates[i+1:]...)
		if ValidateSim(s, tests, reduced) {
			return false
		}
	}
	return true
}
