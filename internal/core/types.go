// Package core implements the diagnosis procedures compared by the paper
// "On the Relation Between Simulation-based and SAT-based Diagnosis"
// (Fey, Safarpour, Veneris, Drechsler; DATE 2006):
//
//   - PathTrace and BasicSimDiagnose (BSIM), Figure 1,
//   - SCDiagnose over set covering (COV), Figure 4,
//   - BasicSATDiagnose (BSAT), Figures 2 and 3,
//
// together with the effect-analysis oracle (Definition 3 checked by
// forced-value simulation), corrected-function extraction, the advanced
// variants discussed in Sections 2.3 and 4 (force-zero clauses,
// cone-restricted copies, fanout-free-region two-pass, test-set
// partitioning), and the hybrid approaches sketched in Section 6.
package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/cnf"
)

// Correction is a set of candidate gates where changing the gate
// functions rectifies (or is proposed to rectify) the test-set — the
// C / C* / A of Definitions 2-4.
type Correction struct {
	Gates []int // sorted gate IDs
}

// NewCorrection copies and sorts the gate set.
func NewCorrection(gates []int) Correction {
	g := append([]int(nil), gates...)
	sort.Ints(g)
	return Correction{Gates: g}
}

// Size returns |C|.
func (c Correction) Size() int { return len(c.Gates) }

// Key returns a canonical map key for the correction.
func (c Correction) Key() string {
	parts := make([]string, len(c.Gates))
	for i, g := range c.Gates {
		parts[i] = fmt.Sprint(g)
	}
	return strings.Join(parts, ",")
}

// Contains reports whether gate g is part of the correction.
func (c Correction) Contains(g int) bool {
	i := sort.SearchInts(c.Gates, g)
	return i < len(c.Gates) && c.Gates[i] == g
}

// SubsetOf reports whether every gate of c is in o.
func (c Correction) SubsetOf(o Correction) bool {
	i := 0
	for _, g := range c.Gates {
		for i < len(o.Gates) && o.Gates[i] < g {
			i++
		}
		if i == len(o.Gates) || o.Gates[i] != g {
			return false
		}
	}
	return true
}

// String renders the correction as {g1,g2,...}.
func (c Correction) String() string { return "{" + c.Key() + "}" }

// Timings captures the three per-approach timing columns of Table 2:
// instance construction ("CNF"), time to the first solution ("One") and
// time to exhaust the solution space ("All").
type Timings struct {
	CNF time.Duration
	One time.Duration
	All time.Duration
}

// SolutionSet is an ordered list of corrections with completeness
// information (budgets can truncate enumeration).
type SolutionSet struct {
	Solutions []Correction
	Complete  bool
}

// Canonicalize sorts the solutions into the canonical order — by size,
// then lexicographically by gate IDs (cnf.LessSolution, the single
// definition of the order) — in place. Every merge point and every
// engine result passes through this, so diagnosis output is
// byte-identical regardless of worker or shard count.
func (ss *SolutionSet) Canonicalize() {
	sort.Slice(ss.Solutions, func(i, j int) bool {
		return cnf.LessSolution(ss.Solutions[i].Gates, ss.Solutions[j].Gates)
	})
}

// ContainsKey reports whether an identical correction is present.
func (ss *SolutionSet) ContainsKey(c Correction) bool {
	key := c.Key()
	for _, s := range ss.Solutions {
		if s.Key() == key {
			return true
		}
	}
	return false
}

// Keys returns the canonical keys of all solutions, sorted.
func (ss *SolutionSet) Keys() []string {
	keys := make([]string, len(ss.Solutions))
	for i, s := range ss.Solutions {
		keys[i] = s.Key()
	}
	sort.Strings(keys)
	return keys
}

// SameSolutions reports whether two solution sets contain exactly the
// same corrections (order-insensitive).
func SameSolutions(a, b *SolutionSet) bool {
	ka, kb := a.Keys(), b.Keys()
	if len(ka) != len(kb) {
		return false
	}
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}
