package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/logic"
	"repro/internal/sat"
	"repro/internal/trace"
)

// BSATOptions configures BasicSATDiagnose and its advanced variants.
type BSATOptions struct {
	K int // maximum correction size (required)

	// Candidates restricts multiplexer insertion (nil = every internal
	// gate, the basic approach).
	Candidates []int

	// Groups, with GroupLabels, makes several gate instances share one
	// select line (time-frame-expanded sequential diagnosis); see
	// cnf.DiagOptions. Overrides Candidates.
	Groups      [][]int
	GroupLabels []int

	// Encoding selects the cardinality encoding.
	Encoding cnf.CardEncoding

	// ForceZero adds the advanced clauses pinning unselected correction
	// inputs to 0 (Section 2.3's first heuristic).
	ForceZero bool

	// ConeOnly restricts each test copy to the erroneous output's fanin
	// cone (instance-size heuristic; solution space unchanged).
	ConeOnly bool

	// Solver names the search configuration the backend runs under
	// ("default", "gen2"; "" = default). Configurations change only the
	// search trajectory, never the solution set. Unknown names are
	// rejected (sat.ConfigByName).
	Solver string

	// Enum names the enumeration mode ("legacy", "projected"; "" =
	// legacy). The projected mode terminates each model at the
	// projection frontier and resumes search in place after blocking —
	// trajectory-only under the ladder discipline, so the solution set
	// and its canonical order are mode-invariant. Unknown names are
	// rejected (sat.EnumModeByName).
	Enum string

	// Golden, when set, constrains all outputs of every copy to the
	// specification values, not only the erroneous one.
	Golden *circuit.Circuit

	// MaxSolutions caps total enumerated corrections (0 = unlimited).
	MaxSolutions int

	// MaxConflicts is the per-Solve conflict budget (0 = unlimited).
	MaxConflicts int64

	// Timeout bounds the whole enumeration (0 = unlimited).
	Timeout time.Duration

	// Shards > 1 forks the enumeration into that many disjoint candidate
	// shards, each running concurrently on a cloned backend: a sequential
	// sample stage enumerates the first solutions monolithically, plans
	// balanced assumption cubes from their candidate frequencies
	// (cnf.DiagSession.PlanCubes), and the forked shards enumerate the
	// residual space in parallel. The solution set — canonical order
	// included — is identical to the monolithic enumeration when all
	// stages complete; budgets apply per stage. 0 or 1 enumerate
	// monolithically.
	Shards int

	// ShardSample bounds the sample stage of a sharded run (0 = the
	// default of 64 solutions). Ignored for monolithic runs.
	ShardSample int

	// Ctx, when non-nil, cancels the diagnosis cooperatively:
	// cancellation surfaces as an incomplete result (Complete == false),
	// promptly even mid-search.
	Ctx context.Context

	// Steer, when non-nil, is applied to the live session after instance
	// construction — the hook the hybrid approach uses to tune decision
	// heuristics from simulation results (Section 6). Steering carries
	// into forked shards: clones copy activities and saved phases.
	Steer func(inst *cnf.Instance)
}

func (o BSATOptions) diagOptions() (cnf.DiagOptions, error) {
	search, err := sat.ConfigByName(o.Solver)
	if err != nil {
		return cnf.DiagOptions{}, err
	}
	enum, err := sat.EnumModeByName(o.Enum)
	if err != nil {
		return cnf.DiagOptions{}, err
	}
	return cnf.DiagOptions{
		Candidates:  o.Candidates,
		Groups:      o.Groups,
		GroupLabels: o.GroupLabels,
		MaxK:        o.K,
		Encoding:    o.Encoding,
		ForceZero:   o.ForceZero,
		ConeOnly:    o.ConeOnly,
		Golden:      o.Golden,
		Search:      search,
		Enum:        enum,
		// Cold-path flight recording: a request that carries a recorder
		// on its context (the service's cold-build path) has it
		// installed on the session's backend at construction.
		Recorder: trace.RecorderFromContext(o.Ctx),
	}, nil
}

// BSATResult is the outcome of BasicSATDiagnose.
type BSATResult struct {
	SolutionSet
	Timings Timings
	Vars    int // SAT instance size (Θ(|I|·m) per Table 1)
	Clauses int
	Stats   sat.Stats
	// PerShard carries one entry per enumeration shard when the run was
	// sharded (Shards > 1); nil for monolithic runs.
	PerShard []cnf.ShardStats
	sess     *cnf.DiagSession
}

// Session exposes the live diagnosis session behind the result. Its
// enumeration rounds have been retired, so it can serve further queries
// (ExtractFunctions, CovGuidedRepairSession, additional rounds) without
// rebuilding the instance.
func (r *BSATResult) Session() *cnf.DiagSession { return r.sess }

// BSAT implements BasicSATDiagnose (Figure 3): build the instance F —
// one constrained circuit copy per test, correction multiplexers with
// select lines shared across copies, a cardinality ladder — then for
// limits i = 1..K enumerate all solutions, adding a blocking clause per
// solution. Every returned correction is valid (Lemma 1) and contains
// only essential candidates (Lemma 3), provided enumeration completed
// within the budgets (Complete reports this).
//
// The instance lives in a cnf.DiagSession and the enumeration runs as
// one retired round, so the returned result holds a reusable session
// instead of a solver poisoned by blocking clauses.
func BSAT(c *circuit.Circuit, tests circuit.TestSet, opts BSATOptions) (*BSATResult, error) {
	if opts.K < 1 {
		return nil, fmt.Errorf("core: BSAT requires K >= 1, got %d", opts.K)
	}
	if len(tests) == 0 {
		return nil, fmt.Errorf("core: BSAT requires a non-empty test-set")
	}
	diagOpts, err := opts.diagOptions()
	if err != nil {
		return nil, err
	}
	sess := cnf.NewSession(c, diagOpts)
	sess.AddTests(tests)
	if opts.Steer != nil {
		opts.Steer(sess)
	}
	res := &BSATResult{sess: sess}
	res.Timings.CNF = sess.BuildTime
	res.Vars, res.Clauses = sess.Size()

	start := time.Now()
	round := cnf.RoundOptions{
		MaxK:         opts.K,
		Ctx:          opts.Ctx,
		MaxSolutions: opts.MaxSolutions,
		MaxConflicts: opts.MaxConflicts,
		Timeout:      opts.Timeout,
		SampleCap:    opts.ShardSample,
	}
	if opts.Shards > 1 {
		sols, complete, perShard, err := sess.EnumerateSharded(opts.Shards, round)
		if err != nil {
			return nil, err
		}
		for _, gates := range sols {
			res.Solutions = append(res.Solutions, NewCorrection(gates))
		}
		res.Complete = complete
		res.PerShard = perShard
		res.Timings.All = time.Since(start)
		var sampleElapsed time.Duration
		for _, st := range perShard {
			res.Stats = res.Stats.Add(st.Stats)
			first := st.First
			if st.Shard == -1 {
				sampleElapsed = st.Elapsed
			} else if first > 0 {
				// Shard stages start after the sequential sample stage.
				first += sampleElapsed
			}
			if first > 0 && (res.Timings.One == 0 || first < res.Timings.One) {
				res.Timings.One = first
			}
		}
	} else {
		_, complete, err := sess.EnumerateRound(round, func(k int, gates []int) bool {
			if len(res.Solutions) == 0 {
				res.Timings.One = time.Since(start)
			}
			res.Solutions = append(res.Solutions, NewCorrection(gates))
			return true
		})
		if err != nil {
			return nil, err
		}
		res.Complete = complete
		res.Timings.All = time.Since(start)
		res.Stats = sess.Solver.Statistics()
	}
	res.Canonicalize()
	return res, nil
}

// GateFunction is a partial truth table reconstructed for a corrected
// gate: per test, the fanin minterm and the required output value. The
// paper (Section 4) notes BSAT supplies "a new value for each gate in
// the correction" per test, which "can be exploited to determine the
// 'correct' function of the gate".
type GateFunction struct {
	Gate   int
	Fanin  []int
	Care   map[int]bool // minterm -> required output value
	Agrees bool         // consistent across tests (no conflicting minterm)
}

// ExtractFunctions re-solves the live session with the given correction
// selected and reads back, for every corrected gate and every encoded
// test copy, the fanin values and the injected correction value —
// yielding the partial specification of the repaired gate functions.
// The correction must be one of the enumerated solutions (or at least a
// valid correction). Because the enumeration rounds are retired (their
// blocking clauses retracted), no fresh instance is built: the query is
// one Solve under select-line assumptions.
func (r *BSATResult) ExtractFunctions(corr Correction) ([]GateFunction, error) {
	sess := r.sess
	assumps := make([]sat.Lit, 0, len(sess.Sels)+len(sess.TestGuards))
	for j, g := range sess.Candidates {
		if corr.Contains(g) {
			assumps = append(assumps, sess.Sels[j])
		} else {
			assumps = append(assumps, sess.Sels[j].Neg())
		}
	}
	// Every encoded copy must bind during extraction.
	assumps = append(assumps, sess.ActivationAssumps(nil)...)
	sess.Solver.SetBudget(0, 0)
	if st := sess.Solver.Solve(assumps...); st != sat.StatusSat {
		return nil, fmt.Errorf("core: correction %v is not realizable (%v)", corr, st)
	}
	var out []GateFunction
	for _, g := range corr.Gates {
		gate := &sess.Circuit.Gates[g]
		gf := GateFunction{Gate: g, Fanin: append([]int(nil), gate.Fanin...), Care: make(map[int]bool), Agrees: true}
		for i := range sess.Tests {
			cv := sess.CorrVars[i][g]
			if cv == cnf.NoVar {
				continue
			}
			minterm := 0
			ok := true
			for bit, f := range gate.Fanin {
				fv := sess.GateVars[i][f]
				if fv == cnf.NoVar {
					ok = false
					break
				}
				if sess.Solver.Value(fv) == sat.LTrue {
					minterm |= 1 << uint(bit)
				}
			}
			if !ok {
				continue
			}
			val := sess.Solver.Value(cv) == sat.LTrue
			if prev, seen := gf.Care[minterm]; seen && prev != val {
				gf.Agrees = false
			}
			gf.Care[minterm] = val
		}
		out = append(out, gf)
	}
	return out, nil
}

// ffrCandidates computes the two candidate tiers of the dominator-style
// two-pass heuristic: the fanout-free-region roots, and (given the
// regions named by pass-1 solutions) the fine-grained members.
func ffrCandidates(c *circuit.Circuit) (roots []int, rootOf []int) {
	rootOf = c.FFRRoots()
	rootSet := make(map[int]bool)
	for g, r := range rootOf {
		if c.Gates[g].Kind != logic.Input {
			rootSet[r] = true
		}
	}
	for r := range rootSet {
		if c.Gates[r].Kind != logic.Input {
			roots = append(roots, r)
		}
	}
	sort.Ints(roots)
	return roots, rootOf
}

// FFRTwoPass is the dominator-style two-pass heuristic of the advanced
// SAT-based approach (Section 2.3): pass 1 inserts multiplexers only at
// fanout-free-region roots (every path from a region gate to an output
// passes through its root, so a root correction can emulate any region
// correction); pass 2 refines within the regions named by pass-1
// solutions. The result is sound (every solution is a valid correction)
// and non-empty whenever pass 1 finds solutions, but unlike the paper's
// exact claim for its heuristics it may omit fine-grained solutions
// whose region roots were redundant at the coarse level; see DESIGN.md.
//
// Both passes run on one shared DiagSession: the instance (with
// multiplexers at every internal gate) is encoded once, and each pass
// confines its candidate tier by select-line assumptions instead of
// rebuilding — the projected solution spaces are identical to the
// per-pass instances of the monolithic formulation. Accordingly both
// results report the shared instance's Vars/Clauses, the one-time
// build cost lands in pass 1's Timings.CNF (pass 2's is zero — that is
// the saving), and each Stats covers only its own pass's solver work.
//
// Trade-off of the shared instance: pass 1 solves over the full-mux
// encoding (selects at every internal gate, assumed off outside the
// root tier) instead of the old roots-only instance, so its per-Solve
// cost no longer shrinks with the root count — the price paid for
// eliminating the second build and sharing learnt clauses between the
// passes. Workloads that run pass 1 alone on huge circuits may prefer
// a plain BSAT call with Candidates set to the FFR roots.
func FFRTwoPass(c *circuit.Circuit, tests circuit.TestSet, opts BSATOptions) (*BSATResult, *BSATResult, error) {
	if opts.K < 1 {
		return nil, nil, fmt.Errorf("core: FFRTwoPass requires K >= 1, got %d", opts.K)
	}
	if len(tests) == 0 {
		return nil, nil, fmt.Errorf("core: FFRTwoPass requires a non-empty test-set")
	}
	rootCands, rootOf := ffrCandidates(c)

	sessOpts, err := opts.diagOptions()
	if err != nil {
		return nil, nil, err
	}
	sessOpts.Candidates = nil // every internal gate; passes restrict by assumptions
	sess := cnf.NewSession(c, sessOpts)
	sess.AddTests(tests)
	if opts.Steer != nil {
		opts.Steer(sess)
	}

	// Both passes report the shared instance's size as encoded, free of
	// any round artifacts (guard variables, blocking clauses).
	vars, clauses := sess.Size()
	runPass := func(cands []int) *BSATResult {
		res := &BSATResult{sess: sess}
		// Stats is this pass's own solver work.
		res.Vars, res.Clauses = vars, clauses
		before := sess.Solver.Statistics()
		start := time.Now()
		// The ladder-width error cannot fire: the session was built with
		// MaxK = opts.K, the same limit every pass enumerates under.
		_, complete, _ := sess.EnumerateRound(cnf.RoundOptions{
			MaxK:         opts.K,
			Ctx:          opts.Ctx,
			Restrict:     cands,
			MaxSolutions: opts.MaxSolutions,
			MaxConflicts: opts.MaxConflicts,
			Timeout:      opts.Timeout,
		}, func(k int, gates []int) bool {
			if len(res.Solutions) == 0 {
				res.Timings.One = time.Since(start)
			}
			res.Solutions = append(res.Solutions, NewCorrection(gates))
			return true
		})
		res.Complete = complete
		res.Timings.All = time.Since(start)
		res.Stats = sess.Solver.Statistics().Sub(before)
		res.Canonicalize()
		return res
	}

	pass1 := runPass(rootCands)
	pass1.Timings.CNF = sess.BuildTime

	// Pass 2 candidates: all members of every region named in pass 1.
	named := make(map[int]bool)
	for _, sol := range pass1.Solutions {
		for _, r := range sol.Gates {
			named[r] = true
		}
	}
	var fine []int
	for g, r := range rootOf {
		if named[r] && c.Gates[g].Kind != logic.Input {
			fine = append(fine, g)
		}
	}
	sort.Ints(fine)
	if len(fine) == 0 {
		return pass1, &BSATResult{SolutionSet: SolutionSet{Complete: pass1.Complete}, sess: sess}, nil
	}
	pass2 := runPass(fine)
	return pass1, pass2, nil
}

// PartitionedBSAT splits the test-set into partitions of the given size
// and diagnoses each independently — the test-set-splitting heuristic of
// Section 2.3. All partitions share one DiagSession built with per-test
// guard literals: every copy is encoded once, and each partition round
// activates only its own copies by assumptions, so no per-partition
// instance is ever rebuilt. Every correction proposed by any partition
// is then checked against the full test-set by exact effect analysis
// (one incremental Validator), and kept only if it is valid and
// essential there.
//
// The result is sound: every returned correction is a full-test-set BSAT
// solution. It may under-approximate the full solution list, because a
// correction essential for the whole test-set can be blocked inside a
// partition where a strict subset already suffices; the ablation
// benchmarks quantify this recall/size trade-off.
//
// Trade-off of the shared instance: a partition's models still assign
// the (unconstrained) variables of the deactivated copies, so per-model
// work scales with the total encoded copies rather than partitionSize —
// the price paid for zero rebuild cost and learnt clauses shared across
// partitions. Workloads dominated by very many tiny partitions over
// huge circuits may prefer per-partition BSAT calls.
func PartitionedBSAT(c *circuit.Circuit, tests circuit.TestSet, partitionSize int, opts BSATOptions) (*SolutionSet, error) {
	if partitionSize < 1 {
		return nil, fmt.Errorf("core: partition size must be >= 1")
	}
	if opts.K < 1 {
		return nil, fmt.Errorf("core: PartitionedBSAT requires K >= 1, got %d", opts.K)
	}
	if len(tests) == 0 {
		return nil, fmt.Errorf("core: PartitionedBSAT requires a non-empty test-set")
	}
	sessOpts, err := opts.diagOptions()
	if err != nil {
		return nil, err
	}
	sessOpts.GuardTests = true
	sess := cnf.NewSession(c, sessOpts)
	sess.AddTests(tests)
	if opts.Steer != nil {
		opts.Steer(sess)
	}

	byKey := make(map[string]Correction)
	complete := true
	for lo := 0; lo < len(tests); lo += partitionSize {
		hi := lo + partitionSize
		if hi > len(tests) {
			hi = len(tests)
		}
		active := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			active = append(active, i)
		}
		_, compl, _ := sess.EnumerateRound(cnf.RoundOptions{
			MaxK:         opts.K,
			Ctx:          opts.Ctx,
			ActiveTests:  active,
			MaxSolutions: opts.MaxSolutions,
			MaxConflicts: opts.MaxConflicts,
			Timeout:      opts.Timeout,
		}, func(k int, gates []int) bool {
			sol := NewCorrection(gates)
			byKey[sol.Key()] = sol
			return true
		})
		complete = complete && compl
	}
	candidates := &SolutionSet{}
	for _, sol := range byKey {
		candidates.Solutions = append(candidates.Solutions, sol)
	}
	candidates.Canonicalize()
	out := &SolutionSet{Complete: complete}
	if len(candidates.Solutions) > 0 {
		v := NewValidator(c, tests)
		for _, sol := range candidates.Solutions {
			if v.Essential(sol.Gates) {
				out.Solutions = append(out.Solutions, sol)
			}
		}
	}
	return out, nil
}
