package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/logic"
	"repro/internal/sat"
)

// BSATOptions configures BasicSATDiagnose and its advanced variants.
type BSATOptions struct {
	K int // maximum correction size (required)

	// Candidates restricts multiplexer insertion (nil = every internal
	// gate, the basic approach).
	Candidates []int

	// Groups, with GroupLabels, makes several gate instances share one
	// select line (time-frame-expanded sequential diagnosis); see
	// cnf.DiagOptions. Overrides Candidates.
	Groups      [][]int
	GroupLabels []int

	// Encoding selects the cardinality encoding.
	Encoding cnf.CardEncoding

	// ForceZero adds the advanced clauses pinning unselected correction
	// inputs to 0 (Section 2.3's first heuristic).
	ForceZero bool

	// ConeOnly restricts each test copy to the erroneous output's fanin
	// cone (instance-size heuristic; solution space unchanged).
	ConeOnly bool

	// Golden, when set, constrains all outputs of every copy to the
	// specification values, not only the erroneous one.
	Golden *circuit.Circuit

	// MaxSolutions caps total enumerated corrections (0 = unlimited).
	MaxSolutions int

	// MaxConflicts is the per-Solve conflict budget (0 = unlimited).
	MaxConflicts int64

	// Timeout bounds the whole enumeration (0 = unlimited).
	Timeout time.Duration

	// Steer, when non-nil, is applied to the solver after instance
	// construction — the hook the hybrid approach uses to tune decision
	// heuristics from simulation results (Section 6).
	Steer func(inst *cnf.Instance)
}

// BSATResult is the outcome of BasicSATDiagnose.
type BSATResult struct {
	SolutionSet
	Timings Timings
	Vars    int // SAT instance size (Θ(|I|·m) per Table 1)
	Clauses int
	Stats   sat.Stats
	inst    *cnf.Instance
}

// BSAT implements BasicSATDiagnose (Figure 3): build the instance F —
// one constrained circuit copy per test, correction multiplexers with
// select lines shared across copies, a cardinality ladder — then for
// limits i = 1..K enumerate all solutions, adding a blocking clause per
// solution. Every returned correction is valid (Lemma 1) and contains
// only essential candidates (Lemma 3), provided enumeration completed
// within the budgets (Complete reports this).
func BSAT(c *circuit.Circuit, tests circuit.TestSet, opts BSATOptions) (*BSATResult, error) {
	if opts.K < 1 {
		return nil, fmt.Errorf("core: BSAT requires K >= 1, got %d", opts.K)
	}
	if len(tests) == 0 {
		return nil, fmt.Errorf("core: BSAT requires a non-empty test-set")
	}
	inst := cnf.BuildDiag(c, tests, cnf.DiagOptions{
		Candidates:  opts.Candidates,
		Groups:      opts.Groups,
		GroupLabels: opts.GroupLabels,
		MaxK:        opts.K,
		Encoding:    opts.Encoding,
		ForceZero:   opts.ForceZero,
		ConeOnly:    opts.ConeOnly,
		Golden:      opts.Golden,
	})
	if opts.Steer != nil {
		opts.Steer(inst)
	}
	res := &BSATResult{inst: inst}
	res.Timings.CNF = inst.BuildTime
	res.Vars, res.Clauses = inst.Size()

	solver := inst.Solver
	solver.MaxConflicts = opts.MaxConflicts
	if opts.Timeout > 0 {
		solver.Deadline = time.Now().Add(opts.Timeout)
	}

	start := time.Now()
	res.Complete = true
	for k := 1; k <= opts.K; k++ {
		remaining := 0
		if opts.MaxSolutions > 0 {
			remaining = opts.MaxSolutions - len(res.Solutions)
			if remaining <= 0 {
				res.Complete = false
				break
			}
		}
		_, complete := solver.EnumerateProjected(inst.Sels, sat.EnumOptions{
			Assumptions:  inst.AtMost(k),
			MaxSolutions: remaining,
		}, func(trueLits []sat.Lit) bool {
			if len(res.Solutions) == 0 {
				res.Timings.One = time.Since(start)
			}
			gates := litsToGates(inst.Sels, inst.Candidates, trueLits)
			res.Solutions = append(res.Solutions, NewCorrection(gates))
			return true
		})
		if !complete {
			res.Complete = false
			break
		}
	}
	res.Timings.All = time.Since(start)
	res.Stats = solver.Stats
	return res, nil
}

// GateFunction is a partial truth table reconstructed for a corrected
// gate: per test, the fanin minterm and the required output value. The
// paper (Section 4) notes BSAT supplies "a new value for each gate in
// the correction" per test, which "can be exploited to determine the
// 'correct' function of the gate".
type GateFunction struct {
	Gate   int
	Fanin  []int
	Care   map[int]bool // minterm -> required output value
	Agrees bool         // consistent across tests (no conflicting minterm)
}

// ExtractFunctions re-solves the instance with the given correction
// selected and reads back, for every corrected gate and every test, the
// fanin values and the injected correction value — yielding the partial
// specification of the repaired gate functions. The correction must be
// one of the enumerated solutions (or at least a valid correction).
func (r *BSATResult) ExtractFunctions(corr Correction) ([]GateFunction, error) {
	inst := r.inst
	// The blocking clauses added during enumeration forbid re-deriving a
	// model for an already-enumerated correction, so extraction rebuilds a
	// fresh instance and assumes exactly this correction: its selects on,
	// all others off.
	fresh := cnf.BuildDiag(inst.Circuit, inst.Tests, cnf.DiagOptions{
		Candidates: inst.Candidates,
		MaxK:       corr.Size(),
	})
	freshAssumps := make([]sat.Lit, 0, len(fresh.Sels))
	for j, g := range fresh.Candidates {
		if corr.Contains(g) {
			freshAssumps = append(freshAssumps, fresh.Sels[j])
		} else {
			freshAssumps = append(freshAssumps, fresh.Sels[j].Neg())
		}
	}
	if st := fresh.Solver.Solve(freshAssumps...); st != sat.StatusSat {
		return nil, fmt.Errorf("core: correction %v is not realizable (%v)", corr, st)
	}
	var out []GateFunction
	for _, g := range corr.Gates {
		gate := &inst.Circuit.Gates[g]
		gf := GateFunction{Gate: g, Fanin: append([]int(nil), gate.Fanin...), Care: make(map[int]bool), Agrees: true}
		for i := range fresh.Tests {
			cv := fresh.CorrVars[i][g]
			if cv == cnf.NoVar {
				continue
			}
			minterm := 0
			ok := true
			for bit, f := range gate.Fanin {
				fv := fresh.GateVars[i][f]
				if fv == cnf.NoVar {
					ok = false
					break
				}
				if fresh.Solver.Value(fv) == sat.LTrue {
					minterm |= 1 << uint(bit)
				}
			}
			if !ok {
				continue
			}
			val := fresh.Solver.Value(cv) == sat.LTrue
			if prev, seen := gf.Care[minterm]; seen && prev != val {
				gf.Agrees = false
			}
			gf.Care[minterm] = val
		}
		out = append(out, gf)
	}
	return out, nil
}

// FFRTwoPass is the dominator-style two-pass heuristic of the advanced
// SAT-based approach (Section 2.3): pass 1 inserts multiplexers only at
// fanout-free-region roots (every path from a region gate to an output
// passes through its root, so a root correction can emulate any region
// correction); pass 2 refines within the regions named by pass-1
// solutions. The result is sound (every solution is a valid correction)
// and non-empty whenever pass 1 finds solutions, but unlike the paper's
// exact claim for its heuristics it may omit fine-grained solutions
// whose region roots were redundant at the coarse level; see DESIGN.md.
func FFRTwoPass(c *circuit.Circuit, tests circuit.TestSet, opts BSATOptions) (*BSATResult, *BSATResult, error) {
	roots := c.FFRRoots()
	rootSet := make(map[int]bool)
	for g, r := range roots {
		if c.Gates[g].Kind != logic.Input {
			rootSet[r] = true
		}
	}
	rootCands := make([]int, 0, len(rootSet))
	for r := range rootSet {
		if c.Gates[r].Kind != logic.Input {
			rootCands = append(rootCands, r)
		}
	}
	sort.Ints(rootCands)

	passOpts := opts
	passOpts.Candidates = rootCands
	pass1, err := BSAT(c, tests, passOpts)
	if err != nil {
		return nil, nil, fmt.Errorf("core: FFR pass 1: %w", err)
	}
	// Pass 2 candidates: all members of every region named in pass 1.
	named := make(map[int]bool)
	for _, sol := range pass1.Solutions {
		for _, r := range sol.Gates {
			named[r] = true
		}
	}
	var fine []int
	for g, r := range roots {
		if named[r] && c.Gates[g].Kind != logic.Input {
			fine = append(fine, g)
		}
	}
	sort.Ints(fine)
	if len(fine) == 0 {
		return pass1, &BSATResult{SolutionSet: SolutionSet{Complete: pass1.Complete}}, nil
	}
	fineOpts := opts
	fineOpts.Candidates = fine
	pass2, err := BSAT(c, tests, fineOpts)
	if err != nil {
		return nil, nil, fmt.Errorf("core: FFR pass 2: %w", err)
	}
	return pass1, pass2, nil
}

// PartitionedBSAT splits the test-set into partitions of the given size
// and diagnoses each independently over much smaller SAT instances — the
// test-set-splitting heuristic of Section 2.3. Every correction proposed
// by any partition is then checked against the full test-set by exact
// effect analysis, and kept only if it is valid and essential there.
//
// The result is sound: every returned correction is a full-test-set BSAT
// solution. It may under-approximate the full solution list, because a
// correction essential for the whole test-set can be blocked inside a
// partition where a strict subset already suffices; the ablation
// benchmarks quantify this recall/size trade-off.
func PartitionedBSAT(c *circuit.Circuit, tests circuit.TestSet, partitionSize int, opts BSATOptions) (*SolutionSet, error) {
	if partitionSize < 1 {
		return nil, fmt.Errorf("core: partition size must be >= 1")
	}
	byKey := make(map[string]Correction)
	parts := 0
	complete := true
	for lo := 0; lo < len(tests); lo += partitionSize {
		hi := lo + partitionSize
		if hi > len(tests) {
			hi = len(tests)
		}
		res, err := BSAT(c, tests[lo:hi], opts)
		if err != nil {
			return nil, fmt.Errorf("core: partition %d: %w", parts, err)
		}
		complete = complete && res.Complete
		for _, sol := range res.Solutions {
			byKey[sol.Key()] = sol
		}
		parts++
	}
	out := &SolutionSet{Complete: complete}
	keys := make([]string, 0, len(byKey))
	for key := range byKey {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		sol := byKey[key]
		if Essential(c, tests, sol.Gates) {
			out.Solutions = append(out.Solutions, sol)
		}
	}
	return out, nil
}
