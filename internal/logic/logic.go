// Package logic defines the Boolean gate vocabulary shared by the whole
// repository: gate kinds, their word-parallel evaluation, controlling
// values for path tracing, and arbitrary truth-table functions used to
// model design errors ("replacement of the function of a gate by another
// arbitrary Boolean function", Fey et al., DATE 2006, Section 2.1).
//
// All evaluation is 64-way bit-parallel: one uint64 word carries the value
// of a signal under 64 independent input patterns (bit i = pattern i).
package logic

import (
	"fmt"
	"strings"
)

// Kind identifies the function computed by a gate.
type Kind uint8

// The supported gate kinds. Input marks a primary (or pseudo-primary)
// input; it computes nothing. TableKind marks a gate with an explicit
// truth table (see Table), the error model for arbitrary function changes.
const (
	Input Kind = iota
	Const0
	Const1
	Buf
	Not
	And
	Nand
	Or
	Nor
	Xor
	Xnor
	TableKind

	numKinds
)

var kindNames = [...]string{
	Input:     "INPUT",
	Const0:    "CONST0",
	Const1:    "CONST1",
	Buf:       "BUF",
	Not:       "NOT",
	And:       "AND",
	Nand:      "NAND",
	Or:        "OR",
	Nor:       "NOR",
	Xor:       "XOR",
	Xnor:      "XNOR",
	TableKind: "TABLE",
}

// String returns the upper-case bench-style name of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// KindByName resolves a bench-style gate name (case-insensitive).
// It accepts the common aliases NOT/INV and BUF/BUFF.
func KindByName(name string) (Kind, bool) {
	switch strings.ToUpper(strings.TrimSpace(name)) {
	case "INPUT":
		return Input, true
	case "CONST0", "GND", "ZERO":
		return Const0, true
	case "CONST1", "VDD", "ONE":
		return Const1, true
	case "BUF", "BUFF", "WIRE":
		return Buf, true
	case "NOT", "INV":
		return Not, true
	case "AND":
		return And, true
	case "NAND":
		return Nand, true
	case "OR":
		return Or, true
	case "NOR":
		return Nor, true
	case "XOR":
		return Xor, true
	case "XNOR", "NXOR":
		return Xnor, true
	case "TABLE":
		return TableKind, true
	}
	return 0, false
}

// Valid reports whether k is a defined kind.
func (k Kind) Valid() bool { return k < numKinds }

// ArityOK reports whether a gate of kind k may have n fanins.
func (k Kind) ArityOK(n int) bool {
	switch k {
	case Input, Const0, Const1:
		return n == 0
	case Buf, Not:
		return n == 1
	case And, Nand, Or, Nor, Xor, Xnor:
		return n >= 1
	case TableKind:
		return n >= 0 && n <= MaxTableInputs
	}
	return false
}

// Inverting reports whether the kind complements the result of its
// base function (NAND/NOR/XNOR/NOT).
func (k Kind) Inverting() bool {
	switch k {
	case Not, Nand, Nor, Xnor:
		return true
	}
	return false
}

// Controlling returns the controlling input value of the kind and whether
// one exists. An input holding the controlling value determines the gate
// output regardless of the other inputs (e.g. 0 for AND, 1 for OR); this
// drives the marking rule of path tracing (Fig. 1 of the paper).
func (k Kind) Controlling() (value bool, ok bool) {
	switch k {
	case And, Nand:
		return false, true
	case Or, Nor:
		return true, true
	}
	return false, false
}

// EvalWord evaluates the kind over the fanin words in 64-way bit-parallel
// fashion. Words beyond the kind's arity are ignored per ArityOK rules;
// callers are expected to pass exactly the gate's fanin values.
// TableKind gates must be evaluated with Table.EvalWord instead.
func EvalWord(k Kind, in []uint64) uint64 {
	switch k {
	case Const0, Input:
		// Inputs carry externally assigned values; evaluating one is a
		// caller bug, but returning 0 keeps the simulator total.
		return 0
	case Const1:
		return ^uint64(0)
	case Buf:
		return in[0]
	case Not:
		return ^in[0]
	case And:
		v := in[0]
		for _, w := range in[1:] {
			v &= w
		}
		return v
	case Nand:
		v := in[0]
		for _, w := range in[1:] {
			v &= w
		}
		return ^v
	case Or:
		v := in[0]
		for _, w := range in[1:] {
			v |= w
		}
		return v
	case Nor:
		v := in[0]
		for _, w := range in[1:] {
			v |= w
		}
		return ^v
	case Xor:
		v := in[0]
		for _, w := range in[1:] {
			v ^= w
		}
		return v
	case Xnor:
		v := in[0]
		for _, w := range in[1:] {
			v ^= w
		}
		return ^v
	}
	panic(fmt.Sprintf("logic: EvalWord on kind %v", k))
}

// EvalBit evaluates the kind on single-bit inputs.
func EvalBit(k Kind, in []bool) bool {
	words := make([]uint64, len(in))
	for i, b := range in {
		if b {
			words[i] = 1
		}
	}
	if k == Const1 {
		return true
	}
	if k == Const0 || k == Input {
		return false
	}
	return EvalWord(k, words)&1 == 1
}

// MaxTableInputs bounds the fanin of truth-table gates. 2^12 table rows
// keep encoding and evaluation cheap while far exceeding realistic
// benchmark fanins.
const MaxTableInputs = 12

// Table is an explicit truth table over n ordered inputs. Bit m of the
// table (minterm m) is the output value when input i carries bit i of m.
// It models the paper's error definition: replacing a gate's function by
// an arbitrary Boolean function over the same fanins.
type Table struct {
	N    int      // number of inputs
	Bits []uint64 // ceil(2^N / 64) words of output values, minterm-indexed
}

// NewTable returns an all-zero table over n inputs.
func NewTable(n int) *Table {
	if n < 0 || n > MaxTableInputs {
		panic(fmt.Sprintf("logic: table with %d inputs", n))
	}
	rows := 1 << uint(n)
	return &Table{N: n, Bits: make([]uint64, (rows+63)/64)}
}

// TableOf builds the truth table of kind k at arity n.
func TableOf(k Kind, n int) *Table {
	t := NewTable(n)
	in := make([]bool, n)
	for m := 0; m < 1<<uint(n); m++ {
		for i := range in {
			in[i] = m>>uint(i)&1 == 1
		}
		t.Set(m, EvalBit(k, in))
	}
	return t
}

// Rows returns the number of minterms (2^N).
func (t *Table) Rows() int { return 1 << uint(t.N) }

// Get returns the output for minterm m.
func (t *Table) Get(m int) bool { return t.Bits[m/64]>>(uint(m)%64)&1 == 1 }

// Set assigns the output for minterm m.
func (t *Table) Set(m int, v bool) {
	if v {
		t.Bits[m/64] |= 1 << (uint(m) % 64)
	} else {
		t.Bits[m/64] &^= 1 << (uint(m) % 64)
	}
}

// Clone returns a deep copy.
func (t *Table) Clone() *Table {
	c := &Table{N: t.N, Bits: make([]uint64, len(t.Bits))}
	copy(c.Bits, t.Bits)
	return c
}

// Equal reports whether two tables define the same function.
func (t *Table) Equal(o *Table) bool {
	if t.N != o.N {
		return false
	}
	for i := range t.Bits {
		if t.Bits[i] != o.Bits[i] {
			return false
		}
	}
	return true
}

// EvalWord evaluates the table in 64-way bit-parallel fashion.
func (t *Table) EvalWord(in []uint64) uint64 {
	if len(in) != t.N {
		panic(fmt.Sprintf("logic: table arity %d evaluated with %d inputs", t.N, len(in)))
	}
	var out uint64
	for bit := 0; bit < 64; bit++ {
		m := 0
		for i, w := range in {
			m |= int(w>>uint(bit)&1) << uint(i)
		}
		if t.Get(m) {
			out |= 1 << uint(bit)
		}
	}
	return out
}

// EvalBit evaluates the table on single-bit inputs.
func (t *Table) EvalBit(in []bool) bool {
	if len(in) != t.N {
		panic(fmt.Sprintf("logic: table arity %d evaluated with %d inputs", t.N, len(in)))
	}
	m := 0
	for i, b := range in {
		if b {
			m |= 1 << uint(i)
		}
	}
	return t.Get(m)
}

// String renders the table as a 2^N-character minterm string (LSB first).
func (t *Table) String() string {
	var sb strings.Builder
	for m := 0; m < t.Rows(); m++ {
		if t.Get(m) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// Ternary value for 3-valued (0/1/X) simulation, used by the X-injection
// style of effect analysis the paper cites ([5], Boppana et al.).
type Ternary uint8

// Ternary constants.
const (
	T0 Ternary = iota
	T1
	TX
)

// String returns "0", "1" or "X".
func (v Ternary) String() string {
	switch v {
	case T0:
		return "0"
	case T1:
		return "1"
	default:
		return "X"
	}
}

// TernaryFromBool lifts a Boolean into the ternary domain.
func TernaryFromBool(b bool) Ternary {
	if b {
		return T1
	}
	return T0
}

// TWord is a 64-way parallel ternary word in (zero-mask, one-mask) form.
// Bit i set in Zero means pattern i is definitely 0; in One definitely 1;
// in neither, X. A bit must never be set in both masks.
type TWord struct {
	Zero, One uint64
}

// TWordConst returns a TWord holding v in all 64 lanes.
func TWordConst(v Ternary) TWord {
	switch v {
	case T0:
		return TWord{Zero: ^uint64(0)}
	case T1:
		return TWord{One: ^uint64(0)}
	default:
		return TWord{}
	}
}

// Get extracts the lane value at bit position i.
func (w TWord) Get(i uint) Ternary {
	switch {
	case w.Zero>>i&1 == 1:
		return T0
	case w.One>>i&1 == 1:
		return T1
	default:
		return TX
	}
}

// EvalTernaryWord evaluates kind k over ternary fanin words using the
// standard pessimistic 3-valued gate semantics.
func EvalTernaryWord(k Kind, in []TWord) TWord {
	switch k {
	case Const0:
		return TWordConst(T0)
	case Const1:
		return TWordConst(T1)
	case Input:
		return TWord{}
	case Buf:
		return in[0]
	case Not:
		return TWord{Zero: in[0].One, One: in[0].Zero}
	case And, Nand:
		zero, one := uint64(0), ^uint64(0)
		for _, w := range in {
			zero |= w.Zero
			one &= w.One
		}
		if k == Nand {
			zero, one = one, zero
		}
		return TWord{Zero: zero, One: one}
	case Or, Nor:
		zero, one := ^uint64(0), uint64(0)
		for _, w := range in {
			zero &= w.Zero
			one |= w.One
		}
		if k == Nor {
			zero, one = one, zero
		}
		return TWord{Zero: zero, One: one}
	case Xor, Xnor:
		// Known only where every input is known.
		known := ^uint64(0)
		parity := uint64(0)
		for _, w := range in {
			known &= w.Zero | w.One
			parity ^= w.One
		}
		if k == Xnor {
			parity = ^parity
		}
		return TWord{Zero: known &^ parity, One: known & parity}
	}
	panic(fmt.Sprintf("logic: EvalTernaryWord on kind %v", k))
}
