package logic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKindNamesRoundTrip(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		got, ok := KindByName(k.String())
		if !ok || got != k {
			t.Fatalf("round trip failed for %v: got %v ok=%v", k, got, ok)
		}
	}
}

func TestKindAliases(t *testing.T) {
	cases := map[string]Kind{
		"inv": Not, "INV": Not, "buff": Buf, "nxor": Xnor, " and ": And,
	}
	for name, want := range cases {
		got, ok := KindByName(name)
		if !ok || got != want {
			t.Fatalf("KindByName(%q) = %v ok=%v, want %v", name, got, ok, want)
		}
	}
	if _, ok := KindByName("frobnicate"); ok {
		t.Fatal("bogus name resolved")
	}
}

func TestArityRules(t *testing.T) {
	if Input.ArityOK(1) || !Input.ArityOK(0) {
		t.Fatal("Input arity")
	}
	if Not.ArityOK(2) || !Not.ArityOK(1) {
		t.Fatal("Not arity")
	}
	if !And.ArityOK(4) || And.ArityOK(0) {
		t.Fatal("And arity")
	}
}

func TestControllingValues(t *testing.T) {
	cases := []struct {
		kind Kind
		val  bool
		ok   bool
	}{
		{And, false, true}, {Nand, false, true},
		{Or, true, true}, {Nor, true, true},
		{Xor, false, false}, {Xnor, false, false},
		{Not, false, false}, {Buf, false, false},
	}
	for _, c := range cases {
		v, ok := c.kind.Controlling()
		if ok != c.ok || (ok && v != c.val) {
			t.Fatalf("%v: controlling=(%v,%v), want (%v,%v)", c.kind, v, ok, c.val, c.ok)
		}
	}
}

func TestInverting(t *testing.T) {
	for _, k := range []Kind{Not, Nand, Nor, Xnor} {
		if !k.Inverting() {
			t.Fatalf("%v should be inverting", k)
		}
	}
	for _, k := range []Kind{Buf, And, Or, Xor} {
		if k.Inverting() {
			t.Fatalf("%v should not be inverting", k)
		}
	}
}

// TestEvalWordMatchesEvalBit: bit-parallel evaluation agrees with the
// single-bit semantics on every lane, for all kinds and small arities.
func TestEvalWordMatchesEvalBit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	kinds := []Kind{Buf, Not, And, Nand, Or, Nor, Xor, Xnor}
	for _, k := range kinds {
		maxAr := 3
		if k == Buf || k == Not {
			maxAr = 1
		}
		for ar := 1; ar <= maxAr; ar++ {
			if !k.ArityOK(ar) {
				continue
			}
			words := make([]uint64, ar)
			for i := range words {
				words[i] = rng.Uint64()
			}
			out := EvalWord(k, words)
			for bit := uint(0); bit < 64; bit++ {
				in := make([]bool, ar)
				for i := range in {
					in[i] = words[i]>>bit&1 == 1
				}
				if want := EvalBit(k, in); want != (out>>bit&1 == 1) {
					t.Fatalf("%v arity %d lane %d: word=%v bit=%v", k, ar, bit, out>>bit&1 == 1, want)
				}
			}
		}
	}
}

func TestDeMorganProperty(t *testing.T) {
	// NAND(a,b) == OR(~a,~b) and NOR(a,b) == AND(~a,~b) on random words.
	f := func(a, b uint64) bool {
		nand := EvalWord(Nand, []uint64{a, b})
		or := EvalWord(Or, []uint64{^a, ^b})
		nor := EvalWord(Nor, []uint64{a, b})
		and := EvalWord(And, []uint64{^a, ^b})
		return nand == or && nor == and
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestXorChainProperty(t *testing.T) {
	// XNOR is the complement of XOR for any arity.
	f := func(a, b, c uint64) bool {
		x := EvalWord(Xor, []uint64{a, b, c})
		nx := EvalWord(Xnor, []uint64{a, b, c})
		return x == ^nx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTableOfMatchesKind(t *testing.T) {
	for _, k := range []Kind{And, Nand, Or, Nor, Xor, Xnor} {
		tab := TableOf(k, 2)
		for m := 0; m < 4; m++ {
			in := []bool{m&1 == 1, m&2 == 2}
			if tab.Get(m) != EvalBit(k, in) {
				t.Fatalf("%v minterm %d mismatch", k, m)
			}
		}
	}
}

func TestTableEvalWordMatchesGet(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for n := 0; n <= 7; n++ {
		tab := NewTable(n)
		for m := 0; m < tab.Rows(); m++ {
			tab.Set(m, rng.Intn(2) == 1)
		}
		words := make([]uint64, n)
		for i := range words {
			words[i] = rng.Uint64()
		}
		out := tab.EvalWord(words)
		for bit := uint(0); bit < 64; bit++ {
			in := make([]bool, n)
			for i := range in {
				in[i] = words[i]>>bit&1 == 1
			}
			if tab.EvalBit(in) != (out>>bit&1 == 1) {
				t.Fatalf("n=%d lane %d mismatch", n, bit)
			}
		}
	}
}

func TestTableCloneEqualString(t *testing.T) {
	tab := TableOf(Xor, 3)
	cl := tab.Clone()
	if !tab.Equal(cl) {
		t.Fatal("clone not equal")
	}
	cl.Set(0, !cl.Get(0))
	if tab.Equal(cl) {
		t.Fatal("mutated clone still equal")
	}
	if got := TableOf(And, 2).String(); got != "0001" {
		t.Fatalf("AND table = %q, want 0001", got)
	}
	if got := TableOf(Or, 2).String(); got != "0111" {
		t.Fatalf("OR table = %q, want 0111", got)
	}
}

func TestTernaryBasics(t *testing.T) {
	if T0.String() != "0" || T1.String() != "1" || TX.String() != "X" {
		t.Fatal("ternary names")
	}
	if TernaryFromBool(true) != T1 || TernaryFromBool(false) != T0 {
		t.Fatal("lift")
	}
	w := TWordConst(TX)
	if w.Get(0) != TX || w.Get(63) != TX {
		t.Fatal("X const")
	}
}

// TestTernaryRefinementProperty: if the 3-valued evaluation yields a
// definite value on a lane, then the 2-valued evaluation under any
// refinement of the X inputs must agree.
func TestTernaryRefinementProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	kinds := []Kind{Buf, Not, And, Nand, Or, Nor, Xor, Xnor}
	for iter := 0; iter < 500; iter++ {
		k := kinds[rng.Intn(len(kinds))]
		ar := 1
		if k != Buf && k != Not {
			ar = 1 + rng.Intn(3)
		}
		tin := make([]TWord, ar)
		vals := make([]Ternary, ar)
		for i := range tin {
			vals[i] = Ternary(rng.Intn(3))
			tin[i] = TWordConst(vals[i])
		}
		out := EvalTernaryWord(k, tin).Get(0)
		if out == TX {
			continue
		}
		// Enumerate all refinements of X inputs.
		nx := 0
		for _, v := range vals {
			if v == TX {
				nx++
			}
		}
		for m := 0; m < 1<<uint(nx); m++ {
			in := make([]bool, ar)
			xi := 0
			for i, v := range vals {
				switch v {
				case T1:
					in[i] = true
				case T0:
					in[i] = false
				default:
					in[i] = m>>uint(xi)&1 == 1
					xi++
				}
			}
			got := EvalBit(k, in)
			if TernaryFromBool(got) != out {
				t.Fatalf("%v %v: ternary says %v, refinement %v gives %v", k, vals, out, in, got)
			}
		}
	}
}

func TestEvalTernaryConsts(t *testing.T) {
	if EvalTernaryWord(Const0, nil).Get(5) != T0 {
		t.Fatal("const0")
	}
	if EvalTernaryWord(Const1, nil).Get(5) != T1 {
		t.Fatal("const1")
	}
}
