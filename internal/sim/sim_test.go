package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
	"repro/internal/gen"
	"repro/internal/logic"
)

func buildFullAdder(t *testing.T) *circuit.Circuit {
	t.Helper()
	b := circuit.NewBuilder("fa")
	a := b.Input("a")
	bi := b.Input("b")
	cin := b.Input("cin")
	s1 := b.Gate(logic.Xor, "s1", a, bi)
	sum := b.Gate(logic.Xor, "sum", s1, cin)
	c1 := b.Gate(logic.And, "c1", a, bi)
	c2 := b.Gate(logic.And, "c2", s1, cin)
	cout := b.Gate(logic.Or, "cout", c1, c2)
	b.Output(sum)
	b.Output(cout)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestFullAdderTruth(t *testing.T) {
	c := buildFullAdder(t)
	sum, _ := c.GateByName("sum")
	cout, _ := c.GateByName("cout")
	s := New(c)
	for m := 0; m < 8; m++ {
		vec := []bool{m&1 == 1, m&2 == 2, m&4 == 4}
		s.RunVector(vec)
		n := 0
		for _, v := range vec {
			if v {
				n++
			}
		}
		if s.OutputBit(sum) != (n%2 == 1) {
			t.Fatalf("sum(%v) = %v", vec, s.OutputBit(sum))
		}
		if s.OutputBit(cout) != (n >= 2) {
			t.Fatalf("cout(%v) = %v", vec, s.OutputBit(cout))
		}
	}
}

func TestBitParallelAgreesWithScalar(t *testing.T) {
	// 64 random vectors in one word must equal 64 scalar runs.
	c, err := gen.Generate(gen.Spec{Name: "r", Inputs: 8, Outputs: 4, Gates: 60, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	words := make([]uint64, len(c.Inputs))
	for i := range words {
		words[i] = rng.Uint64()
	}
	par := New(c)
	par.Run(words)
	scal := New(c)
	for lane := uint(0); lane < 64; lane++ {
		vec := make([]bool, len(c.Inputs))
		for i := range vec {
			vec[i] = words[i]>>lane&1 == 1
		}
		scal.RunVector(vec)
		for _, o := range c.Outputs {
			if scal.OutputBit(o) != par.Bit(o, lane) {
				t.Fatalf("lane %d gate %d: scalar %v parallel %v", lane, o, scal.OutputBit(o), par.Bit(o, lane))
			}
		}
	}
}

func TestBitParallelQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c, err := gen.Generate(gen.Spec{Name: "q", Inputs: 5, Outputs: 2, Gates: 25, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		words := make([]uint64, len(c.Inputs))
		for i := range words {
			words[i] = rng.Uint64()
		}
		s := New(c)
		s.Run(words)
		lane := uint(rng.Intn(64))
		vec := make([]bool, len(c.Inputs))
		for i := range vec {
			vec[i] = words[i]>>lane&1 == 1
		}
		s2 := New(c)
		s2.RunVector(vec)
		for _, o := range c.Outputs {
			if s2.OutputBit(o) != s.Bit(o, lane) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60}
	if testing.Short() {
		cfg.MaxCount = 15
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRunForcedOverrides(t *testing.T) {
	c := buildFullAdder(t)
	s1, _ := c.GateByName("s1")
	sum, _ := c.GateByName("sum")
	s := New(c)
	// a=1,b=0,cin=0: s1=1, sum=1. Force s1=0 -> sum=0.
	inputs := PackVector([]bool{true, false, false})
	s.RunForced(inputs, []Forced{{Gate: s1, Value: 0}})
	if s.OutputBit(s1) != false {
		t.Fatal("force ignored")
	}
	if s.OutputBit(sum) != false {
		t.Fatal("force did not propagate")
	}
	// Forcing an input overrides the vector.
	a, _ := c.GateByName("a")
	s.RunForced(inputs, []Forced{{Gate: a, Value: 0}})
	if s.OutputBit(sum) != false {
		t.Fatal("input force did not propagate")
	}
}

func TestPackVectors(t *testing.T) {
	vecs := [][]bool{{true, false}, {false, true}, {true, true}}
	words := PackVectors(vecs, 2)
	if words[0] != 0b101 || words[1] != 0b110 {
		t.Fatalf("packed %b %b", words[0], words[1])
	}
}

func TestEvalConvenience(t *testing.T) {
	c := buildFullAdder(t)
	outs := Eval(c, []bool{true, true, true})
	if !outs[0] || !outs[1] {
		t.Fatalf("1+1+1 = sum %v cout %v", outs[0], outs[1])
	}
}

func TestXSimDefiniteMatchesTwoValued(t *testing.T) {
	// Without X injection, the 3-valued simulator must agree with the
	// 2-valued one everywhere.
	c, err := gen.Generate(gen.Spec{Name: "x", Inputs: 6, Outputs: 3, Gates: 40, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	words := make([]uint64, len(c.Inputs))
	for i := range words {
		words[i] = rng.Uint64()
	}
	two := New(c)
	two.Run(words)
	three := NewX(c)
	three.RunForced(words, nil)
	for g := range c.Gates {
		w := three.Value(g)
		for lane := uint(0); lane < 64; lane++ {
			want := logic.TernaryFromBool(two.Bit(g, lane))
			if w.Get(lane) != want {
				t.Fatalf("gate %d lane %d: X-sim %v, 2-valued %v", g, lane, w.Get(lane), want)
			}
		}
	}
}

func TestXSimInjectionPropagates(t *testing.T) {
	c := buildFullAdder(t)
	s1, _ := c.GateByName("s1")
	sum, _ := c.GateByName("sum")
	x := NewX(c)
	inputs := PackVector([]bool{true, false, false})
	x.RunForced(inputs, []XForce{{Gate: s1, Lanes: ^uint64(0)}})
	if x.Value(s1).Get(0) != logic.TX {
		t.Fatal("X not injected")
	}
	// sum = s1 XOR cin: X propagates.
	if x.Value(sum).Get(0) != logic.TX {
		t.Fatal("X did not reach sum")
	}
	// cout = (a AND b) OR (s1 AND cin) = 0 OR (X AND 0) = 0: X masked.
	cout, _ := c.GateByName("cout")
	if x.Value(cout).Get(0) != logic.T0 {
		t.Fatalf("cout = %v, want 0 (X masked by controlling 0)", x.Value(cout).Get(0))
	}
}

func TestXSimRefinementProperty(t *testing.T) {
	// If X-sim reports a definite output value under X injection at a
	// gate, then 2-valued simulation with that gate forced to 0 and to 1
	// must both produce that value.
	f := func(seed int64) bool {
		c, err := gen.Generate(gen.Spec{Name: "xr", Inputs: 5, Outputs: 2, Gates: 30, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed ^ 7))
		vec := make([]bool, len(c.Inputs))
		for i := range vec {
			vec[i] = rng.Intn(2) == 1
		}
		internal := c.InternalGates()
		g := internal[rng.Intn(len(internal))]
		x := NewX(c)
		x.RunForced(PackVector(vec), []XForce{{Gate: g, Lanes: ^uint64(0)}})
		s := New(c)
		for _, o := range c.Outputs {
			v := x.Value(o).Get(0)
			if v == logic.TX {
				continue
			}
			want := v == logic.T1
			s.RunForced(PackVector(vec), []Forced{{Gate: g, Value: 0}})
			if s.OutputBit(o) != want {
				return false
			}
			s.RunForced(PackVector(vec), []Forced{{Gate: g, Value: ^uint64(0)}})
			if s.OutputBit(o) != want {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50}
	if testing.Short() {
		cfg.MaxCount = 15
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestTableGateSimulation(t *testing.T) {
	// A table gate implementing a 2-input majority-of-inverted function.
	tab := logic.NewTable(2)
	tab.Set(0, true) // f(0,0)=1
	b := circuit.NewBuilder("tg")
	a := b.Input("a")
	bi := b.Input("b")
	g := b.TableGate("g", tab, a, bi)
	b.Output(g)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := New(c)
	s.RunVector([]bool{false, false})
	if !s.OutputBit(g) {
		t.Fatal("f(0,0) != 1")
	}
	s.RunVector([]bool{true, false})
	if s.OutputBit(g) {
		t.Fatal("f(1,0) != 0")
	}
}
