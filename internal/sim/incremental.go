package sim

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/logic"
)

// IncrementalSimulator answers forced-gate "what-if" queries against a
// resident 64-pattern baseline by event-driven propagation: a Force
// touches only the forced gate's fanout cone, processed level-by-level
// with early termination wherever a recomputed word is unchanged, and
// Undo restores the touched gates from the baseline in O(touched).
//
// This replaces whole-circuit RunForced re-simulation in the diagnosis
// hot loops (effect analysis, candidate sweeps), cutting a what-if query
// from O(|gates|) to O(|affected cone|). Simulator.RunForced remains the
// reference oracle; the two are equivalence-tested against each other.
//
// After the first few queries warm up the internal event queues, Force
// and Undo perform no allocations. An IncrementalSimulator is not safe
// for concurrent use; create one per goroutine.
type IncrementalSimulator struct {
	c      *circuit.Circuit
	levels []int
	base   []uint64 // baseline value per gate (last SetBaseline)
	vals   []uint64 // current value per gate
	fan    []uint64 // scratch fanin buffer

	// Event machinery, all reused across queries.
	buckets  [][]int32 // pending gate IDs per level
	queued   []bool    // gate is sitting in a bucket
	pendMin  int       // lowest level with pending events
	forced   []bool    // gate output is currently forced
	touched  []bool    // vals[g] has (or had) diverged from base[g]
	touchedL []int32   // gates to restore on Undo
	forcedL  []int32   // gates to unforce on Undo
}

// NewIncremental returns an incremental simulator for c with an all-zero
// input baseline. Call SetBaseline before issuing queries.
func NewIncremental(c *circuit.Circuit) *IncrementalSimulator {
	an := c.Analysis()
	maxFanin := 1
	for i := range c.Gates {
		if n := len(c.Gates[i].Fanin); n > maxFanin {
			maxFanin = n
		}
	}
	n := len(c.Gates)
	return &IncrementalSimulator{
		c:       c,
		levels:  an.Levels,
		base:    make([]uint64, n),
		vals:    make([]uint64, n),
		fan:     make([]uint64, maxFanin),
		buckets: make([][]int32, an.MaxLevel+1),
		queued:  make([]bool, n),
		pendMin: an.MaxLevel + 1,
		forced:  make([]bool, n),
		touched: make([]bool, n),
	}
}

// Circuit returns the simulated circuit.
func (s *IncrementalSimulator) Circuit() *circuit.Circuit { return s.c }

// SetBaseline fully evaluates the circuit on the input words (one per
// Circuit.Inputs position, as in Simulator.Run) and makes the result the
// resident baseline that Force queries perturb and Undo restores. Any
// outstanding forces are discarded.
func (s *IncrementalSimulator) SetBaseline(inputs []uint64) {
	c := s.c
	if len(inputs) != len(c.Inputs) {
		panic(fmt.Sprintf("sim: %d input words for %d inputs", len(inputs), len(c.Inputs)))
	}
	s.Undo()
	for pos, id := range c.Inputs {
		s.vals[id] = inputs[pos]
	}
	for i := range c.Gates {
		g := &c.Gates[i]
		if g.Kind != logic.Input {
			fan := s.fan[:len(g.Fanin)]
			for j, f := range g.Fanin {
				fan[j] = s.vals[f]
			}
			s.vals[i] = g.Eval(fan)
		}
	}
	copy(s.base, s.vals)
}

// Force overrides the output of one gate with the given word and
// propagates the change through its fanout cone. Forcing an input gate
// overrides the corresponding input word, mirroring RunForced. Forces
// accumulate until Undo; re-forcing a gate replaces its word.
func (s *IncrementalSimulator) Force(gate int, word uint64) {
	s.applyForce(gate, word)
	s.propagate()
}

// ForceMany applies several simultaneous forces (the multi-gate effect
// analysis of Validate) and propagates once. The slice is not retained.
func (s *IncrementalSimulator) ForceMany(forces []Forced) {
	for _, f := range forces {
		s.applyForce(f.Gate, f.Value)
	}
	s.propagate()
}

func (s *IncrementalSimulator) applyForce(gate int, word uint64) {
	if !s.forced[gate] {
		s.forced[gate] = true
		s.forcedL = append(s.forcedL, int32(gate))
	}
	s.setValue(gate, word)
}

// setValue updates a gate's current word, recording it for Undo and
// scheduling its fanouts when the word actually changed.
func (s *IncrementalSimulator) setValue(gate int, word uint64) {
	if s.vals[gate] == word {
		return // early termination: no downstream effect
	}
	if !s.touched[gate] {
		s.touched[gate] = true
		s.touchedL = append(s.touchedL, int32(gate))
	}
	s.vals[gate] = word
	for _, f := range s.c.Gates[gate].Fanout {
		if !s.queued[f] {
			s.queued[f] = true
			l := s.levels[f]
			s.buckets[l] = append(s.buckets[l], int32(f))
			if l < s.pendMin {
				s.pendMin = l
			}
		}
	}
}

// propagate drains the level buckets in ascending order. A gate's
// fanouts sit on strictly higher levels, so a bucket never grows while
// it is being drained and every gate is recomputed after all its fanins.
func (s *IncrementalSimulator) propagate() {
	c := s.c
	for l := s.pendMin; l < len(s.buckets); l++ {
		b := s.buckets[l]
		for i := 0; i < len(b); i++ {
			id := int(b[i])
			s.queued[id] = false
			if s.forced[id] {
				continue // forced output shadows the recomputed value
			}
			g := &c.Gates[id]
			fan := s.fan[:len(g.Fanin)]
			for j, f := range g.Fanin {
				fan[j] = s.vals[f]
			}
			s.setValue(id, g.Eval(fan))
		}
		s.buckets[l] = b[:0]
	}
	s.pendMin = len(s.buckets)
}

// Undo removes all outstanding forces and restores every touched gate
// from the baseline, in O(touched gates).
func (s *IncrementalSimulator) Undo() {
	for _, g := range s.touchedL {
		s.vals[g] = s.base[g]
		s.touched[g] = false
	}
	for _, g := range s.forcedL {
		s.forced[g] = false
	}
	s.touchedL = s.touchedL[:0]
	s.forcedL = s.forcedL[:0]
}

// Touched returns the number of gates whose words currently differ (or
// have differed) from the baseline — the cost of the pending Undo.
func (s *IncrementalSimulator) Touched() int { return len(s.touchedL) }

// Value returns the current 64-pattern word of gate id.
func (s *IncrementalSimulator) Value(id int) uint64 { return s.vals[id] }

// BaselineValue returns the baseline word of gate id.
func (s *IncrementalSimulator) BaselineValue(id int) uint64 { return s.base[id] }

// Bit returns the current value of gate id under pattern (bit lane) i.
func (s *IncrementalSimulator) Bit(id int, i uint) bool { return s.vals[id]>>i&1 == 1 }

// OutputBit returns the single-pattern value of gate id (lane 0),
// matching Simulator.OutputBit for broadcast baselines.
func (s *IncrementalSimulator) OutputBit(id int) bool { return s.vals[id]&1 == 1 }

// Values returns the current value words of all gates. The returned
// slice aliases internal state and is invalidated by the next query.
func (s *IncrementalSimulator) Values() []uint64 { return s.vals }
