// Package sim provides the fast simulation engines the simulation-based
// diagnosis approaches rely on: a 64-way bit-parallel two-valued
// simulator, forced-value simulation (the what-if engine behind effect
// analysis), an event-driven IncrementalSimulator that answers
// forced-gate queries by resimulating only the affected fanout cone
// against a resident baseline, and a three-valued X simulator in the
// style of the X-injection diagnosis the paper cites.
package sim

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/logic"
)

// Simulator evaluates a circuit over 64 patterns at a time. The zero
// value is not usable; construct with New. A Simulator is not safe for
// concurrent use; create one per goroutine.
type Simulator struct {
	c    *circuit.Circuit
	vals []uint64
	fan  []uint64 // scratch fanin buffer
}

// New returns a simulator for c.
func New(c *circuit.Circuit) *Simulator {
	maxFanin := 1
	for i := range c.Gates {
		if n := len(c.Gates[i].Fanin); n > maxFanin {
			maxFanin = n
		}
	}
	return &Simulator{
		c:    c,
		vals: make([]uint64, len(c.Gates)),
		fan:  make([]uint64, maxFanin),
	}
}

// Circuit returns the simulated circuit.
func (s *Simulator) Circuit() *circuit.Circuit { return s.c }

// Run evaluates the circuit on up to 64 patterns. inputs holds one word
// per circuit input (by position in Circuit.Inputs); bit i of each word is
// the value of that input under pattern i.
func (s *Simulator) Run(inputs []uint64) {
	s.RunForced(inputs, nil)
}

// Forced assigns an overriding value word to a gate output; used to
// inject corrections ("what-if" effect analysis) and error models at the
// value level without rebuilding the circuit.
type Forced struct {
	Gate  int
	Value uint64
}

// RunForced evaluates the circuit with the outputs of the forced gates
// overridden by the given words. Forcing an input gate overrides the
// corresponding word in inputs.
func (s *Simulator) RunForced(inputs []uint64, forced []Forced) {
	c := s.c
	if len(inputs) != len(c.Inputs) {
		panic(fmt.Sprintf("sim: %d input words for %d inputs", len(inputs), len(c.Inputs)))
	}
	var force map[int]uint64
	if len(forced) > 0 {
		force = make(map[int]uint64, len(forced))
		for _, f := range forced {
			force[f.Gate] = f.Value
		}
	}
	for pos, id := range c.Inputs {
		s.vals[id] = inputs[pos]
	}
	for i := range c.Gates {
		g := &c.Gates[i]
		if g.Kind != logic.Input {
			fan := s.fan[:len(g.Fanin)]
			for j, f := range g.Fanin {
				fan[j] = s.vals[f]
			}
			s.vals[i] = g.Eval(fan)
		}
		if force != nil {
			if v, ok := force[i]; ok {
				s.vals[i] = v
			}
		}
	}
}

// RunCone evaluates only the gates whose IDs are in cone, which must be
// closed under fanin (a union of fanin cones, as produced by
// circuit.Analysis.FaninConeBits). Words of gates outside the cone are
// left stale; within the cone the result equals a full Run. Restricting
// evaluation to the observed outputs' fanin cones is the simulation-side
// counterpart of the cone-reduced CNF copies of the SAT approach.
func (s *Simulator) RunCone(inputs []uint64, cone circuit.Bitset) {
	c := s.c
	if len(inputs) != len(c.Inputs) {
		panic(fmt.Sprintf("sim: %d input words for %d inputs", len(inputs), len(c.Inputs)))
	}
	for pos, id := range c.Inputs {
		s.vals[id] = inputs[pos]
	}
	for i := range c.Gates {
		if !cone.Has(i) {
			continue
		}
		g := &c.Gates[i]
		if g.Kind == logic.Input {
			continue
		}
		fan := s.fan[:len(g.Fanin)]
		for j, f := range g.Fanin {
			fan[j] = s.vals[f]
		}
		s.vals[i] = g.Eval(fan)
	}
}

// Value returns the 64-pattern value word of gate id from the last run.
func (s *Simulator) Value(id int) uint64 { return s.vals[id] }

// Bit returns the value of gate id under pattern (bit position) i.
func (s *Simulator) Bit(id int, i uint) bool { return s.vals[id]>>i&1 == 1 }

// Values returns the value words of all gates from the last run. The
// returned slice aliases internal state and is valid until the next run.
func (s *Simulator) Values() []uint64 { return s.vals }

// PackVector broadcasts a single test vector into input words (all 64
// lanes equal).
func PackVector(vec []bool) []uint64 {
	words := make([]uint64, len(vec))
	for i, b := range vec {
		if b {
			words[i] = ^uint64(0)
		}
	}
	return words
}

// PackVectors packs up to 64 test vectors into input words; vector j
// occupies bit lane j.
func PackVectors(vecs [][]bool, numInputs int) []uint64 {
	if len(vecs) > 64 {
		panic("sim: more than 64 vectors in one word batch")
	}
	words := make([]uint64, numInputs)
	for j, vec := range vecs {
		if len(vec) != numInputs {
			panic(fmt.Sprintf("sim: vector %d has %d values for %d inputs", j, len(vec), numInputs))
		}
		for i, b := range vec {
			if b {
				words[i] |= 1 << uint(j)
			}
		}
	}
	return words
}

// RunVector evaluates a single test vector (convenience wrapper; all
// lanes carry the same pattern).
func (s *Simulator) RunVector(vec []bool) {
	s.Run(PackVector(vec))
}

// OutputBit returns the single-pattern value of gate id after RunVector.
func (s *Simulator) OutputBit(id int) bool { return s.vals[id]&1 == 1 }

// Eval is a one-shot convenience: evaluate vec and return the values of
// the circuit outputs in Circuit.Outputs order.
func Eval(c *circuit.Circuit, vec []bool) []bool {
	s := New(c)
	s.RunVector(vec)
	outs := make([]bool, len(c.Outputs))
	for i, o := range c.Outputs {
		outs[i] = s.OutputBit(o)
	}
	return outs
}

// XSimulator is a three-valued (0/1/X) bit-parallel simulator. Injecting
// X at candidate locations and observing whether the X reaches an output
// is the forward-implication style of effect analysis cited by the paper
// (Boppana et al.'s X-lists).
type XSimulator struct {
	c    *circuit.Circuit
	vals []logic.TWord
	fan  []logic.TWord
}

// NewX returns a three-valued simulator for c.
func NewX(c *circuit.Circuit) *XSimulator {
	maxFanin := 1
	for i := range c.Gates {
		if n := len(c.Gates[i].Fanin); n > maxFanin {
			maxFanin = n
		}
	}
	return &XSimulator{
		c:    c,
		vals: make([]logic.TWord, len(c.Gates)),
		fan:  make([]logic.TWord, maxFanin),
	}
}

// XForce injects X at a gate's output in the given lanes; lanes not set
// keep the computed two-valued result. Injecting different gates in
// different lanes examines 64 what-if scenarios per pass (the X-list
// style of candidate screening).
type XForce struct {
	Gate  int
	Lanes uint64
}

// RunForced evaluates the circuit on two-valued input words with X
// injected per the forces. Truth-table gates are evaluated
// pessimistically: any X input makes the output X unless the table is
// constant.
func (x *XSimulator) RunForced(inputs []uint64, forces []XForce) {
	c := x.c
	if len(inputs) != len(c.Inputs) {
		panic(fmt.Sprintf("sim: %d input words for %d inputs", len(inputs), len(c.Inputs)))
	}
	var forceX map[int]uint64
	if len(forces) > 0 {
		forceX = make(map[int]uint64, len(forces))
		for _, f := range forces {
			forceX[f.Gate] |= f.Lanes
		}
	}
	for pos, id := range c.Inputs {
		w := inputs[pos]
		x.vals[id] = logic.TWord{Zero: ^w, One: w}
	}
	for i := range c.Gates {
		g := &c.Gates[i]
		if g.Kind != logic.Input {
			fan := x.fan[:len(g.Fanin)]
			for j, f := range g.Fanin {
				fan[j] = x.vals[f]
			}
			if g.Kind == logic.TableKind {
				x.vals[i] = evalTableTernary(g.Table, fan)
			} else {
				x.vals[i] = logic.EvalTernaryWord(g.Kind, fan)
			}
		}
		if lanes, ok := forceX[i]; ok {
			v := x.vals[i]
			v.Zero &^= lanes
			v.One &^= lanes
			x.vals[i] = v
		}
	}
}

// Value returns the ternary word of gate id from the last run.
func (x *XSimulator) Value(id int) logic.TWord { return x.vals[id] }

func evalTableTernary(t *logic.Table, in []logic.TWord) logic.TWord {
	// Lanes where every input is known evaluate exactly; others are X
	// unless the table is constant.
	known := ^uint64(0)
	words := make([]uint64, len(in))
	for i, w := range in {
		known &= w.Zero | w.One
		words[i] = w.One
	}
	exact := t.EvalWord(words)
	res := logic.TWord{Zero: known &^ exact, One: known & exact}
	allOne := true
	allZero := true
	for m := 0; m < t.Rows(); m++ {
		if t.Get(m) {
			allZero = false
		} else {
			allOne = false
		}
	}
	if allOne {
		res = logic.TWordConst(logic.T1)
	} else if allZero {
		res = logic.TWordConst(logic.T0)
	}
	return res
}
