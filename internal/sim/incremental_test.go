package sim

import (
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/gen"
	"repro/internal/logic"
)

// randCircuit draws a reproducible random circuit from the synthetic
// generator.
func randCircuit(t *testing.T, seed int64, inputs, outputs, gates int) *circuit.Circuit {
	t.Helper()
	c, err := gen.Generate(gen.Spec{
		Name:   "inc-prop",
		Inputs: inputs, Outputs: outputs, Gates: gates,
		Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func randWords(rng *rand.Rand, n int) []uint64 {
	w := make([]uint64, n)
	for i := range w {
		w[i] = rng.Uint64()
	}
	return w
}

// TestIncrementalEquivalenceRandom is the randomized oracle check of the
// event-driven engine: on random circuits x random 64-pattern inputs,
// forced-gate queries through IncrementalSimulator must match the full
// RunForced re-simulation exactly, on every gate word, and Undo must
// restore the exact baseline. Well over 1000 single- and multi-gate
// queries are exercised.
func TestIncrementalEquivalenceRandom(t *testing.T) {
	queries := 0
	for _, size := range []struct{ in, out, gates int }{
		{4, 2, 24},
		{6, 3, 60},
		{10, 5, 220},
	} {
		for seed := int64(1); seed <= 6; seed++ {
			c := randCircuit(t, seed*101+int64(size.gates), size.in, size.out, size.gates)
			rng := rand.New(rand.NewSource(seed * 7919))
			full := New(c)
			inc := NewIncremental(c)
			for round := 0; round < 5; round++ {
				inputs := randWords(rng, len(c.Inputs))
				inc.SetBaseline(inputs)
				full.Run(inputs)
				baseline := append([]uint64(nil), full.Values()...)
				for i, w := range baseline {
					if got := inc.Value(i); got != w {
						t.Fatalf("size %v seed %d: baseline gate %d: inc %x full %x", size, seed, i, got, w)
					}
				}
				for q := 0; q < 16; q++ {
					// 1..3 simultaneously forced gates, occasionally inputs.
					n := 1 + rng.Intn(3)
					forces := make([]Forced, n)
					for j := range forces {
						forces[j] = Forced{Gate: rng.Intn(len(c.Gates)), Value: rng.Uint64()}
					}
					inc.ForceMany(forces)
					full.RunForced(inputs, forces)
					queries++
					for i := range c.Gates {
						if inc.Value(i) != full.Value(i) {
							t.Fatalf("size %v seed %d query %d: gate %d (%v): inc %x full %x (forces %v)",
								size, seed, q, i, c.Gates[i].Kind, inc.Value(i), full.Value(i), forces)
						}
					}
					inc.Undo()
					for i, w := range baseline {
						if inc.Value(i) != w {
							t.Fatalf("size %v seed %d query %d: Undo left gate %d at %x, baseline %x",
								size, seed, q, i, inc.Value(i), w)
						}
					}
					if inc.Touched() != 0 {
						t.Fatalf("Undo left %d touched gates", inc.Touched())
					}
				}
			}
		}
	}
	if queries < 1000 {
		t.Fatalf("only %d equivalence queries exercised, want >= 1000", queries)
	}
}

// TestIncrementalStackedForces checks that forces accumulate across
// Force calls (the incremental discipline of the diagnosis search) and
// that one Undo removes them all.
func TestIncrementalStackedForces(t *testing.T) {
	c := randCircuit(t, 42, 6, 3, 80)
	rng := rand.New(rand.NewSource(99))
	inputs := randWords(rng, len(c.Inputs))
	inc := NewIncremental(c)
	inc.SetBaseline(inputs)
	full := New(c)

	var acc []Forced
	for step := 0; step < 8; step++ {
		g := rng.Intn(len(c.Gates))
		w := rng.Uint64()
		acc = append(acc, Forced{Gate: g, Value: w})
		inc.Force(g, w)
		full.RunForced(inputs, acc)
		for i := range c.Gates {
			if inc.Value(i) != full.Value(i) {
				t.Fatalf("step %d: gate %d: inc %x full %x", step, i, inc.Value(i), full.Value(i))
			}
		}
	}
	inc.Undo()
	full.Run(inputs)
	for i := range c.Gates {
		if inc.Value(i) != full.Value(i) {
			t.Fatalf("after Undo: gate %d: inc %x full %x", i, inc.Value(i), full.Value(i))
		}
	}
}

// TestIncrementalForcedInput mirrors RunForced's rule that forcing an
// input gate overrides the corresponding input word.
func TestIncrementalForcedInput(t *testing.T) {
	b := circuit.NewBuilder("forced-input")
	a := b.Input("a")
	x := b.Input("b")
	g := b.Gate(logic.And, "g", a, x)
	o := b.Gate(logic.Not, "o", g)
	b.Output(o)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	inc := NewIncremental(c)
	inc.SetBaseline([]uint64{0, ^uint64(0)})
	inc.Force(a, ^uint64(0))
	if inc.Value(g) != ^uint64(0) || inc.Value(o) != 0 {
		t.Fatalf("forced input did not propagate: g=%x o=%x", inc.Value(g), inc.Value(o))
	}
	inc.Undo()
	if inc.Value(g) != 0 || inc.Value(o) != ^uint64(0) {
		t.Fatalf("Undo did not restore: g=%x o=%x", inc.Value(g), inc.Value(o))
	}
}
