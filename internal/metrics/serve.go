// Serving-side metrics: lock-free counters, gauges and latency
// histograms for the long-running diagnosis server (internal/service),
// plus a minimal Prometheus-style text exposition. These complement the
// diagnosis-quality measures in this package: quality metrics describe
// what was diagnosed, serving metrics describe how the service behaved
// while doing it.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the exposition to stay meaningful).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (queue depths, in-flight
// requests, pool bytes).
type Gauge struct{ v atomic.Int64 }

// Set stores the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets are the upper bounds (inclusive) of the latency histogram
// in seconds: exponential from 100µs to ~200s, enough resolution for
// p50/p99 on both millisecond warm hits and multi-minute cold SAT runs.
var histBuckets = func() []float64 {
	b := make([]float64, 22)
	v := 100e-6
	for i := range b {
		b[i] = v
		v *= 2
	}
	return b
}()

// Histogram is a fixed-bucket latency histogram safe for concurrent
// observation. The zero value is ready to use.
type Histogram struct {
	counts [23]atomic.Int64 // one per bucket + overflow
	sum    atomic.Int64     // nanoseconds
	total  atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	s := d.Seconds()
	i := sort.SearchFloat64s(histBuckets, s)
	h.counts[i].Add(1)
	h.sum.Add(int64(d))
	h.total.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Sum returns the total observed time.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// inside the owning bucket; NaN when empty. Estimates are within one
// bucket's resolution — adequate for the p50/p99 the server and load
// generator report.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.total.Load()
	if total == 0 {
		return math.NaN()
	}
	rank := q * float64(total)
	var cum int64
	lower := 0.0
	for i, upper := range histBuckets {
		n := h.counts[i].Load()
		if n > 0 && float64(cum+n) >= rank {
			frac := (rank - float64(cum)) / float64(n)
			return lower + frac*(upper-lower)
		}
		cum += n
		lower = upper
	}
	// Overflow bucket: report the last finite bound.
	return histBuckets[len(histBuckets)-1]
}

// WriteProm renders the histogram in Prometheus text format under the
// given metric name (…_bucket/_sum/_count series).
func (h *Histogram) WriteProm(w io.Writer, name string, labels string) {
	var cum int64
	for i, upper := range histBuckets {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", name, labelPrefix(labels), fmtBound(upper), cum)
	}
	cum += h.counts[len(histBuckets)].Load()
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, labelPrefix(labels), cum)
	fmt.Fprintf(w, "%s_sum%s %g\n", name, wrapLabels(labels), h.Sum().Seconds())
	fmt.Fprintf(w, "%s_count%s %d\n", name, wrapLabels(labels), h.Count())
}

func labelPrefix(labels string) string {
	if labels == "" {
		return ""
	}
	return labels + ","
}

// wrapLabels braces a non-empty label set. An unlabeled series renders
// as a bare name — `name_sum 3` — never `name_sum{}`, which some
// Prometheus parsers reject.
func wrapLabels(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

func fmtBound(v float64) string {
	s := fmt.Sprintf("%g", v)
	return s
}

// WritePromValue renders one plain counter/gauge sample line.
func WritePromValue(w io.Writer, name, labels string, value int64) {
	if labels != "" {
		labels = "{" + labels + "}"
	}
	fmt.Fprintf(w, "%s%s %d\n", name, labels, value)
}

// Escape sanitizes a label value for the text exposition.
func Escape(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}
