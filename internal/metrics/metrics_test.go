package metrics

import (
	"math"
	"testing"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/logic"
)

// chain builds i -> g0 -> g1 -> g2 -> g3 (output).
func chain(t *testing.T) *circuit.Circuit {
	t.Helper()
	b := circuit.NewBuilder("chain")
	in := b.Input("i")
	g0 := b.Gate(logic.Not, "g0", in)
	g1 := b.Gate(logic.Not, "g1", g0)
	g2 := b.Gate(logic.Not, "g2", g1)
	g3 := b.Gate(logic.Not, "g3", g2)
	b.Output(g3)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDistanceMap(t *testing.T) {
	c := chain(t)
	g1, _ := c.GateByName("g1")
	g3, _ := c.GateByName("g3")
	d := NewDistanceMap(c, []int{g1})
	if d.Of(g1) != 0 || d.Of(g3) != 2 {
		t.Fatalf("distances: g1=%d g3=%d", d.Of(g1), d.Of(g3))
	}
}

func TestMeasureBSIM(t *testing.T) {
	c := chain(t)
	g0, _ := c.GateByName("g0")
	g1, _ := c.GateByName("g1")
	g2, _ := c.GateByName("g2")
	g3, _ := c.GateByName("g3")
	res := &core.BSIMResult{
		Sets:      [][]int{{g2, g3}, {g1, g2, g3}},
		MarkCount: make([]int, c.NumGates()),
	}
	for _, set := range res.Sets {
		for _, g := range set {
			res.MarkCount[g]++
		}
	}
	q := MeasureBSIM(c, res, []int{g0})
	if q.UnionSize != 3 {
		t.Fatalf("union = %d", q.UnionSize)
	}
	// distances from g0: g1=1, g2=2, g3=3 -> avgA = 2.
	if q.AvgAll != 2 {
		t.Fatalf("avgA = %v", q.AvgAll)
	}
	// Gmax = {g2, g3} (marked twice): distances 2,3.
	if q.GmaxSize != 2 || q.GminDist != 2 || q.GmaxDist != 3 || q.GavgDist != 2.5 {
		t.Fatalf("Gmax stats %+v", q)
	}
}

func TestMeasureSolutions(t *testing.T) {
	c := chain(t)
	g0, _ := c.GateByName("g0")
	g1, _ := c.GateByName("g1")
	g3, _ := c.GateByName("g3")
	ss := &core.SolutionSet{
		Solutions: []core.Correction{
			core.NewCorrection([]int{g0}),     // avg 0
			core.NewCorrection([]int{g1, g3}), // avg (1+3)/2 = 2
		},
		Complete: true,
	}
	q := MeasureSolutions(c, ss, []int{g0})
	if q.NumSolutions != 2 || !q.Complete {
		t.Fatalf("%+v", q)
	}
	if q.MinAvg != 0 || q.MaxAvg != 2 || q.AvgAvg != 1 {
		t.Fatalf("min/max/avg = %v/%v/%v", q.MinAvg, q.MaxAvg, q.AvgAvg)
	}
}

func TestMeasureSolutionsEmpty(t *testing.T) {
	c := chain(t)
	g0, _ := c.GateByName("g0")
	q := MeasureSolutions(c, &core.SolutionSet{}, []int{g0})
	if q.NumSolutions != 0 || !math.IsNaN(q.MinAvg) {
		t.Fatalf("%+v", q)
	}
}

func TestHitRate(t *testing.T) {
	c := chain(t)
	g0, _ := c.GateByName("g0")
	g1, _ := c.GateByName("g1")
	g2, _ := c.GateByName("g2")
	ss := &core.SolutionSet{Solutions: []core.Correction{
		core.NewCorrection([]int{g0}),
		core.NewCorrection([]int{g1}),
		core.NewCorrection([]int{g0, g2}),
		core.NewCorrection([]int{g2}),
	}}
	if got := HitRate(ss, []int{g0}); got != 0.5 {
		t.Fatalf("hit rate %v, want 0.5", got)
	}
	if !math.IsNaN(HitRate(&core.SolutionSet{}, []int{g0})) {
		t.Fatal("empty hit rate should be NaN")
	}
}

func TestFmt(t *testing.T) {
	if Fmt(math.NaN()) != "-" {
		t.Fatal("NaN formatting")
	}
	if Fmt(1.234) != "1.23" {
		t.Fatalf("got %q", Fmt(1.234))
	}
}
