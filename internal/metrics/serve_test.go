package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	var g Gauge
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter %d, want 8000", c.Value())
	}
	if g.Value() != 0 {
		t.Fatalf("gauge %d, want 0", g.Value())
	}
	g.Set(42)
	if g.Value() != 42 {
		t.Fatalf("gauge %d, want 42", g.Value())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("empty histogram should report NaN")
	}
	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100 * time.Millisecond)
	}
	if h.Count() != 110 {
		t.Fatalf("count %d", h.Count())
	}
	p50 := h.Quantile(0.5)
	if p50 < 0.0004 || p50 > 0.004 {
		t.Fatalf("p50 %.6fs not near 1ms", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 0.05 || p99 > 0.3 {
		t.Fatalf("p99 %.6fs not near 100ms", p99)
	}
	if h.Sum() < 1*time.Second || h.Sum() > 1200*time.Millisecond {
		t.Fatalf("sum %v", h.Sum())
	}
}

func TestHistogramOverflowAndProm(t *testing.T) {
	var h Histogram
	h.Observe(10 * time.Minute) // beyond the last bucket
	h.Observe(time.Millisecond)
	if v := h.Quantile(0.99); v <= 0 {
		t.Fatalf("overflow quantile %v", v)
	}
	var sb strings.Builder
	h.WriteProm(&sb, "req_seconds", `mode="warm"`)
	out := sb.String()
	for _, want := range []string{
		`req_seconds_bucket{mode="warm",le="+Inf"} 2`,
		`req_seconds_count{mode="warm"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	var sb2 strings.Builder
	WritePromValue(&sb2, "pool_hits", "", 7)
	if got := sb2.String(); got != "pool_hits 7\n" {
		t.Fatalf("plain sample %q", got)
	}
	if Escape("a\"b\nc") != `a\"b\nc` {
		t.Fatalf("escape: %q", Escape("a\"b\nc"))
	}
}
