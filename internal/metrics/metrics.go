// Package metrics computes the diagnosis-quality measures of the paper's
// Table 3: for BSIM the size of the marked set, the average distance of
// marked gates to the nearest actual error, and the statistics of the
// maximally marked gates Gmax; for COV and BSAT the number of solutions
// and the minimum/maximum/average over solutions of the per-solution
// average distance to the nearest error. "Distance" is the length of a
// shortest path in the gate connection graph to any error site — the
// depth a designer must inspect starting from a reported candidate.
package metrics

import (
	"fmt"
	"math"

	"repro/internal/circuit"
	"repro/internal/core"
)

// DistanceMap holds per-gate distances to the nearest error site.
type DistanceMap struct {
	Dist []int
}

// NewDistanceMap computes distances from every gate to the nearest of
// the given error sites (BFS over the undirected gate graph).
func NewDistanceMap(c *circuit.Circuit, sites []int) *DistanceMap {
	return &DistanceMap{Dist: c.Distances(sites)}
}

// Of returns the distance of gate g (-1 if unreachable).
func (d *DistanceMap) Of(g int) int { return d.Dist[g] }

// avg returns the mean of the distances of the given gates; unreachable
// gates are ignored. Returns NaN for an empty effective set.
func (d *DistanceMap) avg(gates []int) float64 {
	sum, n := 0, 0
	for _, g := range gates {
		if d.Dist[g] >= 0 {
			sum += d.Dist[g]
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return float64(sum) / float64(n)
}

// minMax returns the extrema of the distances of the gates (-1/-1 when
// empty); unreachable gates are ignored.
func (d *DistanceMap) minMax(gates []int) (min, max int) {
	min, max = -1, -1
	for _, g := range gates {
		dist := d.Dist[g]
		if dist < 0 {
			continue
		}
		if min == -1 || dist < min {
			min = dist
		}
		if dist > max {
			max = dist
		}
	}
	return min, max
}

// BSIMQuality holds the BSIM columns of Table 3.
type BSIMQuality struct {
	UnionSize int     // |∪ Ci|: total gates marked by PT
	AvgAll    float64 // avgA: mean distance of all marked gates to the nearest error
	GmaxSize  int     // number of gates marked by the maximal number of tests
	GminDist  int     // min distance among Gmax gates (> 0 means no actual site has max marks)
	GmaxDist  int     // max distance among Gmax gates
	GavgDist  float64 // avgG: mean distance among Gmax gates
}

// MeasureBSIM computes the BSIM quality statistics.
func MeasureBSIM(c *circuit.Circuit, res *core.BSIMResult, sites []int) BSIMQuality {
	d := NewDistanceMap(c, sites)
	union := res.Union()
	gmax := res.MaxMarked()
	min, max := d.minMax(gmax)
	return BSIMQuality{
		UnionSize: len(union),
		AvgAll:    d.avg(union),
		GmaxSize:  len(gmax),
		GminDist:  min,
		GmaxDist:  max,
		GavgDist:  d.avg(gmax),
	}
}

// SolutionQuality holds the COV/BSAT columns of Table 3: per solution,
// the average distance a of its gates to the nearest error is computed;
// reported are the number of solutions and min/max/avg of a.
type SolutionQuality struct {
	NumSolutions int
	MinAvg       float64
	MaxAvg       float64
	AvgAvg       float64
	Complete     bool
}

// MeasureSolutions computes the solution quality statistics.
func MeasureSolutions(c *circuit.Circuit, ss *core.SolutionSet, sites []int) SolutionQuality {
	d := NewDistanceMap(c, sites)
	q := SolutionQuality{NumSolutions: len(ss.Solutions), Complete: ss.Complete,
		MinAvg: math.NaN(), MaxAvg: math.NaN(), AvgAvg: math.NaN()}
	if len(ss.Solutions) == 0 {
		return q
	}
	sum := 0.0
	n := 0
	for _, sol := range ss.Solutions {
		a := d.avg(sol.Gates)
		if math.IsNaN(a) {
			continue
		}
		if n == 0 || a < q.MinAvg {
			q.MinAvg = a
		}
		if n == 0 || a > q.MaxAvg {
			q.MaxAvg = a
		}
		sum += a
		n++
	}
	if n > 0 {
		q.AvgAvg = sum / float64(n)
	}
	return q
}

// HitRate reports the fraction of solutions containing at least one
// actual error site — an additional resolution measure used in
// EXPERIMENTS.md beyond the paper's distance columns.
func HitRate(ss *core.SolutionSet, sites []int) float64 {
	if len(ss.Solutions) == 0 {
		return math.NaN()
	}
	siteSet := make(map[int]bool, len(sites))
	for _, s := range sites {
		siteSet[s] = true
	}
	hits := 0
	for _, sol := range ss.Solutions {
		for _, g := range sol.Gates {
			if siteSet[g] {
				hits++
				break
			}
		}
	}
	return float64(hits) / float64(len(ss.Solutions))
}

// Fmt renders a float stat with two decimals, or "-" for NaN.
func Fmt(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.2f", v)
}
