// Package seq extends the combinational diagnosis engines to sequential
// circuits by time-frame expansion, the application the paper points to
// with "[BSAT] has also been applied to diagnose sequential errors
// efficiently [4]" (Ali, Veneris, Safarpour, Drechsler, Smith, Abadir,
// ICCAD 2004).
//
// A sequential design in the full-scan model (circuit.Latches pairing
// each flip-flop's present-state pseudo-input Q with its next-state
// pseudo-output D) is unrolled over T frames: frame f's Q signals are
// driven by frame f-1's D instances, frame 0's by free initial-state
// inputs. Every physical gate then has T instances sharing one select
// line — a correction toggles the gate in all frames and all tests
// simultaneously, while the injected correction values remain free per
// frame, exactly the semantics of the sequential SAT diagnosis paper.
package seq

import (
	"fmt"
	"math/rand"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/sim"
)

// Unrolled is a time-frame expansion of a sequential circuit.
type Unrolled struct {
	Seq    *circuit.Circuit // original (full-scan) circuit
	Comb   *circuit.Circuit // expanded combinational circuit
	Frames int

	gateAt  [][]int // [frame][orig gate] -> unrolled gate ID
	initIn  []int   // unrolled input IDs of the initial state, Latches order
	frameIn [][]int // [frame][pi index] -> unrolled input ID (primary inputs only)
	pis     []int   // original primary (non-latch) input IDs
}

// Unroll expands c over the given number of frames (>= 1).
func Unroll(c *circuit.Circuit, frames int) (*Unrolled, error) {
	if frames < 1 {
		return nil, fmt.Errorf("seq: frames must be >= 1")
	}
	isLatchQ := make(map[int]bool, len(c.Latches))
	for _, l := range c.Latches {
		isLatchQ[l.Q] = true
	}
	u := &Unrolled{
		Seq:     c,
		Frames:  frames,
		gateAt:  make([][]int, frames),
		frameIn: make([][]int, frames),
	}
	for _, in := range c.Inputs {
		if !isLatchQ[in] {
			u.pis = append(u.pis, in)
		}
	}

	b := circuit.NewBuilder(fmt.Sprintf("%s_x%d", c.Name, frames))
	// Initial state inputs, in latch order.
	for _, l := range c.Latches {
		u.initIn = append(u.initIn, b.Input(c.Gates[l.Q].Name+"@init"))
	}
	for f := 0; f < frames; f++ {
		u.gateAt[f] = make([]int, len(c.Gates))
		for i := range u.gateAt[f] {
			u.gateAt[f][i] = -1
		}
		// Wire latch outputs: frame 0 from the initial state, later
		// frames from the previous frame's D instance.
		for li, l := range c.Latches {
			if f == 0 {
				u.gateAt[f][l.Q] = u.initIn[li]
			} else {
				u.gateAt[f][l.Q] = u.gateAt[f-1][l.D]
			}
		}
		// Fresh primary inputs for this frame.
		u.frameIn[f] = make([]int, len(u.pis))
		for pi, in := range u.pis {
			id := b.Input(fmt.Sprintf("%s@%d", c.Gates[in].Name, f))
			u.frameIn[f][pi] = id
			u.gateAt[f][in] = id
		}
		// Gate instances in topological order.
		for g := range c.Gates {
			gate := &c.Gates[g]
			if gate.Kind == logic.Input {
				continue
			}
			fanin := make([]int, len(gate.Fanin))
			for j, fi := range gate.Fanin {
				fanin[j] = u.gateAt[f][fi]
			}
			name := fmt.Sprintf("%s@%d", gate.Name, f)
			if gate.Table != nil {
				u.gateAt[f][g] = b.TableGate(name, gate.Table.Clone(), fanin...)
			} else {
				u.gateAt[f][g] = b.Gate(gate.Kind, name, fanin...)
			}
		}
	}
	// Observable outputs: the real primary outputs of every frame.
	for f := 0; f < frames; f++ {
		for _, o := range u.RealOutputs() {
			b.Output(u.gateAt[f][o])
		}
	}
	comb, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("seq: unroll: %w", err)
	}
	u.Comb = comb
	return u, nil
}

// RealOutputs returns the original observable outputs: declared outputs
// that are not next-state pseudo-outputs.
func (u *Unrolled) RealOutputs() []int {
	isD := make(map[int]bool, len(u.Seq.Latches))
	for _, l := range u.Seq.Latches {
		isD[l.D] = true
	}
	var outs []int
	for _, o := range u.Seq.Outputs {
		if !isD[o] {
			outs = append(outs, o)
		}
	}
	return outs
}

// GateAt returns the unrolled instance of an original gate in a frame.
func (u *Unrolled) GateAt(frame, gate int) int { return u.gateAt[frame][gate] }

// Groups returns, per original internal gate, the IDs of its frame
// instances (the select-line sharing groups), plus the original gate IDs
// as labels.
func (u *Unrolled) Groups() (groups [][]int, labels []int) {
	for _, g := range u.Seq.InternalGates() {
		grp := make([]int, 0, u.Frames)
		for f := 0; f < u.Frames; f++ {
			grp = append(grp, u.gateAt[f][g])
		}
		groups = append(groups, grp)
		labels = append(labels, g)
	}
	return groups, labels
}

// Test is a sequential diagnosis stimulus: an input sequence from a
// known initial state, with an erroneous observable output at one frame.
type Test struct {
	Initial []bool   // initial state, Latches order
	Vectors [][]bool // per frame, primary-input values (non-latch inputs)
	Frame   int      // frame of the observed error
	Output  int      // ORIGINAL observable output gate ID
	Want    bool     // correct value
}

// CombTest lowers a sequential test onto the unrolled circuit.
func (u *Unrolled) CombTest(t Test) (circuit.Test, error) {
	if len(t.Vectors) != u.Frames {
		return circuit.Test{}, fmt.Errorf("seq: test has %d vectors for %d frames", len(t.Vectors), u.Frames)
	}
	if t.Frame < 0 || t.Frame >= u.Frames {
		return circuit.Test{}, fmt.Errorf("seq: frame %d out of range", t.Frame)
	}
	vec := make([]bool, len(u.Comb.Inputs))
	pos := func(id int) int {
		p := u.Comb.InputPos(id)
		if p < 0 {
			panic("seq: unrolled input lost")
		}
		return p
	}
	for li := range u.Seq.Latches {
		vec[pos(u.initIn[li])] = t.Initial[li]
	}
	for f := 0; f < u.Frames; f++ {
		if len(t.Vectors[f]) != len(u.pis) {
			return circuit.Test{}, fmt.Errorf("seq: frame %d vector has %d values for %d inputs", f, len(t.Vectors[f]), len(u.pis))
		}
		for pi, v := range t.Vectors[f] {
			vec[pos(u.frameIn[f][pi])] = v
		}
	}
	return circuit.Test{Vector: vec, Output: u.gateAt[t.Frame][t.Output], Want: t.Want}, nil
}

// Simulate runs the sequential circuit over an input sequence from the
// initial state and returns, per frame, the observable output values (in
// RealOutputs order of the unrolled view: Seq outputs minus latch Ds).
func Simulate(c *circuit.Circuit, initial []bool, vectors [][]bool) ([][]bool, error) {
	if len(initial) != len(c.Latches) {
		return nil, fmt.Errorf("seq: %d initial values for %d latches", len(initial), len(c.Latches))
	}
	isD := make(map[int]bool, len(c.Latches))
	for _, l := range c.Latches {
		isD[l.D] = true
	}
	var realOuts []int
	for _, o := range c.Outputs {
		if !isD[o] {
			realOuts = append(realOuts, o)
		}
	}
	state := append([]bool(nil), initial...)
	s := sim.New(c)
	var results [][]bool
	for f, pis := range vectors {
		// Assemble the full-scan input vector: PIs + state.
		vec := make([]bool, len(c.Inputs))
		latchPos := make(map[int]int, len(c.Latches))
		for li, l := range c.Latches {
			latchPos[l.Q] = li
		}
		pi := 0
		for pos, in := range c.Inputs {
			if li, isQ := latchPos[in]; isQ {
				vec[pos] = state[li]
				continue
			}
			if pi >= len(pis) {
				return nil, fmt.Errorf("seq: frame %d vector too short", f)
			}
			vec[pos] = pis[pi]
			pi++
		}
		s.RunVector(vec)
		outs := make([]bool, len(realOuts))
		for i, o := range realOuts {
			outs[i] = s.OutputBit(o)
		}
		results = append(results, outs)
		for li, l := range c.Latches {
			state[li] = s.OutputBit(l.D)
		}
	}
	return results, nil
}

// GenOptions configures sequential test generation.
type GenOptions struct {
	Count        int   // number of failing sequential tests
	Frames       int   // sequence length
	Seed         int64 // RNG seed
	MaxSequences int   // budget (default 4096)
}

// GenerateTests derives failing sequential tests by simulating random
// input sequences from the all-zero initial state on the golden and
// faulty circuits and collecting frame/output disagreements.
func GenerateTests(golden, faulty *circuit.Circuit, opts GenOptions) ([]Test, error) {
	if opts.Frames < 1 {
		return nil, fmt.Errorf("seq: Frames must be >= 1")
	}
	count := opts.Count
	if count <= 0 {
		count = 1
	}
	budget := opts.MaxSequences
	if budget <= 0 {
		budget = 4096
	}
	nLatch := len(golden.Latches)
	nPI := len(golden.Inputs) - nLatch
	isD := make(map[int]bool, nLatch)
	for _, l := range golden.Latches {
		isD[l.D] = true
	}
	var realOuts []int
	for _, o := range golden.Outputs {
		if !isD[o] {
			realOuts = append(realOuts, o)
		}
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	var tests []Test
	initial := make([]bool, nLatch)
	for seqNo := 0; seqNo < budget && len(tests) < count; seqNo++ {
		vectors := make([][]bool, opts.Frames)
		for f := range vectors {
			v := make([]bool, nPI)
			for i := range v {
				v[i] = rng.Intn(2) == 1
			}
			vectors[f] = v
		}
		gOut, err := Simulate(golden, initial, vectors)
		if err != nil {
			return nil, err
		}
		fOut, err := Simulate(faulty, initial, vectors)
		if err != nil {
			return nil, err
		}
		for f := range gOut {
			for i, o := range realOuts {
				if gOut[f][i] != fOut[f][i] {
					tests = append(tests, Test{
						Initial: append([]bool(nil), initial...),
						Vectors: vectors,
						Frame:   f,
						Output:  o,
						Want:    gOut[f][i],
					})
					if len(tests) >= count {
						return tests, nil
					}
				}
			}
		}
	}
	if len(tests) == 0 {
		return nil, fmt.Errorf("seq: no failing sequence found within budget")
	}
	return tests, nil
}

// BSAT diagnoses a sequential circuit: the tests are lowered onto a
// time-frame expansion and BasicSATDiagnose runs with one shared select
// line per physical gate. Reported corrections name original gate IDs.
// All frame counts of the tests must equal frames.
func BSAT(c *circuit.Circuit, tests []Test, frames int, opts core.BSATOptions) (*core.BSATResult, *Unrolled, error) {
	u, err := Unroll(c, frames)
	if err != nil {
		return nil, nil, err
	}
	combTests := make(circuit.TestSet, len(tests))
	for i, t := range tests {
		ct, err := u.CombTest(t)
		if err != nil {
			return nil, nil, err
		}
		combTests[i] = ct
	}
	groups, labels := u.Groups()
	opts.Groups = groups
	opts.GroupLabels = labels
	opts.Candidates = nil
	res, err := core.BSAT(u.Comb, combTests, opts)
	if err != nil {
		return nil, nil, err
	}
	return res, u, nil
}

// Validate checks a sequential correction by exact effect analysis on
// the unrolled circuit: per test, some assignment to all frame instances
// of the corrected gates must produce the correct value at the observed
// output.
func Validate(u *Unrolled, tests []Test, gates []int) (bool, error) {
	var unrolledGates []int
	for _, g := range gates {
		for f := 0; f < u.Frames; f++ {
			unrolledGates = append(unrolledGates, u.gateAt[f][g])
		}
	}
	combTests := make(circuit.TestSet, len(tests))
	for i, t := range tests {
		ct, err := u.CombTest(t)
		if err != nil {
			return false, err
		}
		combTests[i] = ct
	}
	return core.Validate(u.Comb, combTests, unrolledGates), nil
}
