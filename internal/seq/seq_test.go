package seq

import (
	"strings"
	"testing"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/sim"
)

// counterBench is a 2-bit counter with enable: on each clock, if en then
// (b1,b0) increments; out flags state 11.
const counterBench = `# 2-bit counter
INPUT(en)
OUTPUT(out)
b0 = DFF(n0)
b1 = DFF(n1)
n0 = XOR(b0, en)
carry = AND(b0, en)
n1 = XOR(b1, carry)
out = AND(b0, b1)
`

func counter(t *testing.T) *circuit.Circuit {
	t.Helper()
	c, err := circuit.ParseBench("counter", strings.NewReader(counterBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Latches) != 2 {
		t.Fatalf("latches = %d, want 2", len(c.Latches))
	}
	return c
}

func TestSimulateCounter(t *testing.T) {
	c := counter(t)
	// Enable for 4 cycles from 00: states 01, 10, 11, 00; out flags the
	// state *before* the clock edge, so out = state==11 at each frame.
	vectors := [][]bool{{true}, {true}, {true}, {true}}
	outs, err := Simulate(c, []bool{false, false}, vectors)
	if err != nil {
		t.Fatal(err)
	}
	// out observes the current state: 00,01,10,11 -> false,false,false,true.
	want := []bool{false, false, false, true}
	for f := range want {
		if outs[f][0] != want[f] {
			t.Fatalf("frame %d: out=%v want %v (outs=%v)", f, outs[f][0], want[f], outs)
		}
	}
	// Disabled: state never changes.
	outs2, err := Simulate(c, []bool{true, true}, [][]bool{{false}, {false}})
	if err != nil {
		t.Fatal(err)
	}
	if !outs2[0][0] || !outs2[1][0] {
		t.Fatalf("disabled counter drifted: %v", outs2)
	}
}

func TestUnrollMatchesSequentialSimulation(t *testing.T) {
	c := counter(t)
	const frames = 5
	u, err := Unroll(c, frames)
	if err != nil {
		t.Fatal(err)
	}
	if got := u.Comb.CheckTopological(); got != -1 {
		t.Fatal("unrolled circuit not topological")
	}
	// Unrolled input count: 2 initial + 1 PI per frame.
	if len(u.Comb.Inputs) != 2+frames {
		t.Fatalf("unrolled inputs = %d", len(u.Comb.Inputs))
	}
	// Compare unrolled combinational outputs with sequential simulation
	// for all 2^5 enable patterns and all 4 initial states.
	for init := 0; init < 4; init++ {
		initial := []bool{init&1 == 1, init&2 == 2}
		for m := 0; m < 1<<frames; m++ {
			vectors := make([][]bool, frames)
			for f := range vectors {
				vectors[f] = []bool{m>>uint(f)&1 == 1}
			}
			seqOuts, err := Simulate(c, initial, vectors)
			if err != nil {
				t.Fatal(err)
			}
			for f := 0; f < frames; f++ {
				test := Test{Initial: initial, Vectors: vectors, Frame: f,
					Output: u.RealOutputs()[0], Want: seqOuts[f][0]}
				ct, err := u.CombTest(test)
				if err != nil {
					t.Fatal(err)
				}
				got := evalComb(t, u, ct)
				if got != seqOuts[f][0] {
					t.Fatalf("init=%d m=%b frame=%d: unrolled %v, sequential %v", init, m, f, got, seqOuts[f][0])
				}
			}
		}
	}
}

func evalComb(t *testing.T, u *Unrolled, ct circuit.Test) bool {
	t.Helper()
	s := sim.New(u.Comb)
	s.RunVector(ct.Vector)
	return s.OutputBit(ct.Output)
}

func TestGenerateTestsFindsFailures(t *testing.T) {
	c := counter(t)
	faulty := c.Clone()
	carry, _ := faulty.GateByName("carry")
	faulty.Gates[carry].Kind = logic.Or // counter now skips states
	tests, err := GenerateTests(c, faulty, GenOptions{Count: 6, Frames: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tests) == 0 {
		t.Fatal("no failing sequences")
	}
	// Every test must actually fail on the faulty circuit.
	for i, test := range tests {
		fOuts, err := Simulate(faulty, test.Initial, test.Vectors)
		if err != nil {
			t.Fatal(err)
		}
		gOuts, err := Simulate(c, test.Initial, test.Vectors)
		if err != nil {
			t.Fatal(err)
		}
		// Output index 0 is the only real PO here.
		if gOuts[test.Frame][0] != test.Want || fOuts[test.Frame][0] == test.Want {
			t.Fatalf("test %d is not a failing test", i)
		}
	}
}

func TestSequentialBSATFindsInjectedError(t *testing.T) {
	c := counter(t)
	faulty := c.Clone()
	site, _ := faulty.GateByName("carry")
	faulty.Gates[site].Kind = logic.Or
	const frames = 4
	tests, err := GenerateTests(c, faulty, GenOptions{Count: 6, Frames: frames, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, u, err := BSAT(faulty, tests, frames, core.BSATOptions{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete || len(res.Solutions) == 0 {
		t.Fatalf("no solutions (complete=%v)", res.Complete)
	}
	foundSite := false
	for _, sol := range res.Solutions {
		// Labels are original gate IDs.
		for _, g := range sol.Gates {
			if g == site {
				foundSite = true
			}
		}
		// Every solution must validate on the unrolled circuit.
		ok, err := Validate(u, tests, sol.Gates)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("solution %v failed sequential effect analysis", sol)
		}
	}
	if !foundSite {
		t.Fatalf("actual error site %d not among solutions %v", site, res.Solutions)
	}
}

func TestSequentialBSATOnEmbeddedS27x(t *testing.T) {
	c, err := gen.S27X()
	if err != nil {
		t.Fatal(err)
	}
	faulty, fs, err := faults.Inject(c, faults.Options{Count: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	const frames = 3
	tests, err := GenerateTests(c, faulty, GenOptions{Count: 4, Frames: frames, Seed: 3})
	if err != nil {
		t.Skipf("fault not observable sequentially: %v", err)
	}
	res, u, err := BSAT(faulty, tests, frames, core.BSATOptions{K: 1, MaxSolutions: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) == 0 {
		t.Fatal("no sequential solutions")
	}
	for _, sol := range res.Solutions {
		ok, err := Validate(u, tests, sol.Gates)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("solution %v invalid", sol)
		}
	}
	// The real site should be among the solutions (k=1, complete).
	if res.Complete {
		found := false
		for _, sol := range res.Solutions {
			if sol.Contains(fs.Sites()[0]) {
				found = true
			}
		}
		if !found {
			t.Fatalf("site %v missing from %v", fs.Sites(), res.Solutions)
		}
	}
}

func TestUnrollErrors(t *testing.T) {
	c := counter(t)
	if _, err := Unroll(c, 0); err == nil {
		t.Fatal("frames=0 accepted")
	}
	u, err := Unroll(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := u.CombTest(Test{Initial: []bool{false, false}, Vectors: [][]bool{{true}}}); err == nil {
		t.Fatal("wrong vector count accepted")
	}
	if _, err := u.CombTest(Test{Initial: []bool{false, false}, Vectors: [][]bool{{true}, {true}}, Frame: 5}); err == nil {
		t.Fatal("bad frame accepted")
	}
}

func TestSimulateErrors(t *testing.T) {
	c := counter(t)
	if _, err := Simulate(c, []bool{false}, [][]bool{{true}}); err == nil {
		t.Fatal("wrong initial-state width accepted")
	}
	if _, err := Simulate(c, []bool{false, false}, [][]bool{{}}); err == nil {
		t.Fatal("short vector accepted")
	}
}
