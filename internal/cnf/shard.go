package cnf

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/circuit"
	"repro/internal/failpoint"
	"repro/internal/sat"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Cube is one assumption-scoped slice of the solution space: the
// assumptions confine enumeration to the corrections satisfying them,
// and Weight estimates the slice's load (sampled solutions inside it)
// for scheduling. A nil Assumps cube is unconstrained.
type Cube struct {
	Assumps []sat.Lit
	Weight  int
}

// Shard is one worker of a forked enumeration: an independent session
// over a cloned backend plus the assumption cubes it serves
// sequentially. The cubes of one fork partition the projected solution
// space — every correction satisfies exactly one cube — so the workers
// never repeat a solution, and the canonical merge of their outputs
// equals the monolithic enumeration.
//
// Slices are scoped purely by assumptions, never by asserted clauses:
// the forked backend stays an unconstrained copy of the parent
// encoding, assumptions propagate from decision level 0 (no auxiliary
// encoding taxing every solve), and one clone serves any number of
// cubes in turn.
type Shard struct {
	// Session is the forked session: cloned backend plus copied per-copy
	// tables, so AddTest and enumeration on the shard never touch the
	// parent (or the sibling shards).
	Session *DiagSession
	// Index and Of identify the worker within its fork.
	Index, Of int
	// Cubes lists the assumption cubes this worker enumerates, in order.
	Cubes []Cube
}

// PlanCubes derives disjoint assumption cubes that together cover the
// whole solution space, at most n of them. With a sample of
// already-known solutions (each a sorted candidate-label set) the
// planner builds a balanced binary decision tree: it repeatedly splits
// the leaf holding the most sampled solutions on the candidate whose
// membership frequency inside that leaf is closest to one half — the
// pivot that best halves the leaf's expected load. Without a sample it
// falls back to a deterministic staircase over the lowest candidate
// positions. Fewer than n cubes are returned when no splittable pivot
// remains.
func (sess *DiagSession) PlanCubes(sample [][]int, n int) []Cube {
	if n > len(sess.Sels) {
		n = len(sess.Sels)
	}
	if n < 2 {
		return []Cube{{Weight: len(sample)}}
	}
	// Sample solutions carry candidate LABELS (group labels for grouped
	// sessions), which are not selIndex keys; map them to select
	// positions explicitly.
	labelPos := make(map[int]int, len(sess.Candidates))
	for j, lbl := range sess.Candidates {
		labelPos[lbl] = j
	}
	type leaf struct {
		cube  []sat.Lit
		sols  [][]int
		fixed map[int]bool // candidate labels already pivoted on this path
	}
	leaves := []leaf{{nil, sample, map[int]bool{}}}
	for len(leaves) < n {
		// Split the heaviest leaf that still has a usable pivot: a
		// candidate present in some but not all of its solutions.
		best, bestPivot, bestScore := -1, -1, 1<<30
		for i := range leaves {
			l := &leaves[i]
			if len(l.sols) < 2 {
				continue
			}
			freq := make(map[int]int)
			for _, s := range l.sols {
				for _, g := range s {
					freq[g]++
				}
			}
			pivots := make([]int, 0, len(freq))
			for g := range freq {
				pivots = append(pivots, g)
			}
			sort.Ints(pivots) // deterministic tie-breaking
			for _, g := range pivots {
				c := freq[g]
				if _, known := labelPos[g]; !known {
					continue
				}
				if l.fixed[g] || c == 0 || c == len(l.sols) {
					continue
				}
				d := len(l.sols) - 2*c
				if d < 0 {
					d = -d
				}
				// Prefer the heaviest leaf; within it, the most balanced
				// pivot.
				score := d - len(l.sols)*4
				if score < bestScore {
					best, bestPivot, bestScore = i, g, score
				}
			}
		}
		if best < 0 {
			break // no leaf can be split further on sample evidence
		}
		l := leaves[best]
		lit := sess.Sels[labelPos[bestPivot]]
		var in, out [][]int
		for _, s := range l.sols {
			if containsSorted(s, bestPivot) {
				in = append(in, s)
			} else {
				out = append(out, s)
			}
		}
		fixed := make(map[int]bool, len(l.fixed)+1)
		for g := range l.fixed {
			fixed[g] = true
		}
		fixed[bestPivot] = true
		leaves[best] = leaf{append(append([]sat.Lit(nil), l.cube...), lit), in, fixed}
		leaves = append(leaves, leaf{append(append([]sat.Lit(nil), l.cube...), lit.Neg()), out, fixed})
	}
	if len(leaves) == 1 {
		// No sample signal at all: deterministic staircase over the
		// lowest candidate positions. Cube i selects pivot i with all
		// earlier pivots off; the last cube has every pivot off.
		cubes := make([]Cube, n)
		for i := 0; i < n; i++ {
			var cube []sat.Lit
			for j := 0; j < i; j++ {
				cube = append(cube, sess.Sels[j].Neg())
			}
			if i < n-1 {
				cube = append(cube, sess.Sels[i])
			}
			cubes[i] = Cube{Assumps: cube}
		}
		return cubes
	}
	cubes := make([]Cube, len(leaves))
	for i, l := range leaves {
		cubes[i] = Cube{Assumps: l.cube, Weight: len(l.sols)}
	}
	return cubes
}

func containsSorted(s []int, g int) bool {
	i := sort.SearchInts(s, g)
	return i < len(s) && s[i] == g
}

// ScheduleCubes distributes cubes onto n workers by longest-processing-
// time-first over the sampled weights: cubes sorted by descending
// weight (ties by planning order) each go to the least-loaded worker.
// Deterministic; returns at most n non-empty worker loads.
func ScheduleCubes(cubes []Cube, n int) [][]Cube {
	if n < 1 {
		n = 1
	}
	if n > len(cubes) {
		n = len(cubes)
	}
	order := make([]int, len(cubes))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return cubes[order[a]].Weight > cubes[order[b]].Weight })
	workers := make([][]Cube, n)
	loads := make([]int, n)
	for _, ci := range order {
		best := 0
		for w := 1; w < n; w++ {
			if loads[w] < loads[best] {
				best = w
			}
		}
		workers[best] = append(workers[best], cubes[ci])
		loads[best] += cubes[ci].Weight + 1 // +1 so zero-weight cubes spread too
	}
	return workers
}

// ForkSession clones the session into an independent twin: the backend
// is Cloned (keepLearnts forwards to sat.Backend.Clone) and the
// per-copy tables are copied, so AddTest and enumeration on the fork
// never touch the parent. Both the sharded workers (ForkWorkers) and
// the portfolio racer in the service layer fork through here.
func (sess *DiagSession) ForkSession(keepLearnts bool) *DiagSession {
	forked := &DiagSession{
		Solver:     sess.Solver.Clone(keepLearnts),
		Circuit:    sess.Circuit,
		Tests:      append(circuit.TestSet(nil), sess.Tests...),
		Candidates: sess.Candidates,
		Sels:       sess.Sels,
		Ladder:     sess.Ladder,
		GateVars:   append([][]sat.Var(nil), sess.GateVars...),
		CorrVars:   append([][]sat.Var(nil), sess.CorrVars...),
		TestGuards: append([]sat.Lit(nil), sess.TestGuards...),
		selIndex:   sess.selIndex,
		opts:       sess.opts,
	}
	if sess.opts.Golden != nil {
		// The golden simulator is stateful; every fork that may AddTest
		// needs its own.
		forked.golden = sim.New(sess.opts.Golden)
	}
	return forked
}

// ForkWorkers clones the session once per worker load (keepLearnts
// forwards to sat.Backend.Clone) and couples each clone with its cubes.
// The parent session stays untouched and fully usable.
func (sess *DiagSession) ForkWorkers(workers [][]Cube, keepLearnts bool) []*Shard {
	shards := make([]*Shard, len(workers))
	for i, cubes := range workers {
		shards[i] = &Shard{Session: sess.ForkSession(keepLearnts), Index: i, Of: len(workers), Cubes: cubes}
	}
	return shards
}

// Release drops the shard's references to its cloned session (and hence
// the cloned solver's clause database) so a finished or cancelled worker
// frees its clone for collection immediately, instead of keeping every
// clone alive until the whole sharded run returns. Idempotent; the shard
// must not be used for enumeration afterwards.
func (sh *Shard) Release() {
	sh.Session = nil
	sh.Cubes = nil
}

// Fork splits the session's solution space into up to n disjoint
// assumption-scoped shards, each on a Clone of the backend, one cube
// per shard. Without sample information the cubes come from the
// deterministic staircase plan; callers that already hold known
// solutions (a sample round) should PlanCubes from them and
// ForkWorkers over a ScheduleCubes assignment for balanced loads.
func (sess *DiagSession) Fork(n int, keepLearnts bool) []*Shard {
	cubes := sess.PlanCubes(nil, n)
	workers := make([][]Cube, len(cubes))
	for i, c := range cubes {
		workers[i] = []Cube{c}
	}
	return sess.ForkWorkers(workers, keepLearnts)
}

// ShardStats records one stage's contribution to a sharded enumeration:
// the sequential sample stage (Shard == -1) or one parallel worker.
type ShardStats struct {
	Shard     int // -1 for the sample stage
	Cubes     int // assumption cubes served by this stage
	Solutions int
	Complete  bool
	First     time.Duration // time to the stage's first solution (0 when none)
	Elapsed   time.Duration
	Stats     sat.Stats // this stage's solver work (clones start at zero)

	// Fault-tolerance counters. A worker that panics is presumed to hold
	// a corrupted clone and exits (Panics counts the recovered panic);
	// the cube it was serving is requeued for a surviving worker
	// (Retries) until its attempt budget runs out (Abandoned). Steals
	// counts cubes this worker pulled from another worker's pending list
	// — load balancing around stragglers and replacing dead workers.
	Panics    int
	Retries   int
	Steals    int
	Abandoned int
}

// DefaultSampleCap bounds the sequential sample stage of a sharded
// enumeration: enough solutions to estimate candidate frequencies for
// balanced cube planning, few enough that the stage stays a small
// fraction of the run. Both sharded drivers (BSAT rounds here and the
// CEGAR loops in core) share this default.
const DefaultSampleCap = 64

// CubeOversubscription is how many cubes a sharded enumeration plans
// per worker: finer slices let the longest-processing-time-first
// schedule even out the load imbalance that a one-cube-per-worker
// split cannot.
const CubeOversubscription = 4

// EnumerateSharded runs one enumeration round as a sample stage plus
// disjoint assumption-scoped cubes spread over `shards` concurrent
// workers, and returns the canonically merged solution list: every
// solution's gates sorted ascending, solutions ordered by size then
// lexicographically, and strict supersets dropped across stages so the
// merged set satisfies the essential-only discipline of Lemma 3 — for a
// completed run it is exactly the monolithic EnumerateRound solution
// set, independent of the shard count.
//
// The sample stage enumerates the first solutions (up to
// RoundOptions.SampleCap, default 64) monolithically on the live
// session inside a guarded round that is NOT retired until the workers
// finish: the forked clones inherit its guarded blocking clauses (and
// the learnt clauses warmed up by the stage) and assume its guard, so
// they enumerate exactly the residual space. The sampled solutions
// drive PlanCubes/ScheduleCubes toward balanced worker loads. If the
// sample stage already exhausts the space, no forking happens at all.
//
// Worker goroutines are additionally bounded by GOMAXPROCS so a
// saturated machine runs them back to back instead of thrashing.
//
// complete reports whether every stage exhausted its slice within the
// budgets (opts.MaxConflicts/Timeout/MaxSolutions apply per stage) and
// no post-merge truncation occurred. perShard carries one entry for
// the sample stage (Shard == -1) plus one per worker.
//
// shards <= 1 runs a plain round on the live session (no clone); the
// output discipline is identical.
//
// The worker phase is fault tolerant: a panicking worker is recovered
// (its clone presumed corrupted, the worker retired), the cube it was
// serving is requeued for a surviving worker, and idle workers steal
// pending cubes from loaded or dead ones. A cube that exhausts its
// retry budget (RoundOptions.MaxCubeRetries) is abandoned and the run
// reports complete=false — a degraded answer, never a wrong one: a
// completed run's merge stays byte-identical to the fault-free
// monolithic enumeration under any failure schedule. err is non-nil
// only when the round cannot start at all (ErrLadderWidth).
func (sess *DiagSession) EnumerateSharded(shards int, opts RoundOptions) (sols [][]int, complete bool, perShard []ShardStats, err error) {
	if shards <= 1 {
		start := time.Now()
		before := sess.Solver.Statistics()
		st := ShardStats{Shard: 0, Cubes: 1}
		_, complete, err = sess.EnumerateRound(opts, func(k int, gates []int) bool {
			if len(sols) == 0 {
				st.First = time.Since(start)
			}
			sols = append(sols, sortedCopy(gates))
			return true
		})
		if err != nil {
			return nil, false, nil, err
		}
		SortSolutions(sols)
		st.Solutions = len(sols)
		st.Complete = complete
		st.Elapsed = time.Since(start)
		st.Stats = sess.Solver.Statistics().Sub(before)
		return sols, complete, []ShardStats{st}, nil
	}

	// Sample stage: a guarded, not-yet-retired round on the live session.
	sampleCap := EffectiveSampleCap(opts.SampleCap, opts.MaxSolutions)
	sampleRound := sess.NewRound()
	defer sampleRound.Retire()
	sampleOpts := opts
	sampleOpts.MaxSolutions = sampleCap
	// A traced sharded run groups the sample stage's round under its
	// own child span, so a request trace distinguishes the monolithic
	// warm-up from the forked cube work that follows.
	sampleSpan := trace.FromContext(opts.Ctx).Child("sample")
	if sampleSpan != nil {
		sampleOpts.Ctx = trace.NewContext(opts.Ctx, sampleSpan)
	}
	sampleStart := time.Now()
	sampleBefore := sess.Solver.Statistics()
	sampleStat := ShardStats{Shard: -1, Cubes: 1}
	var sample [][]int
	_, sampleComplete, err := sess.enumerateInRound(sampleRound, sampleOpts, func(k int, gates []int) bool {
		if len(sample) == 0 {
			sampleStat.First = time.Since(sampleStart)
		}
		sample = append(sample, sortedCopy(gates))
		return true
	})
	sampleSpan.End()
	if err != nil {
		return nil, false, nil, err
	}
	sampleStat.Solutions = len(sample)
	sampleStat.Complete = sampleComplete
	sampleStat.Elapsed = time.Since(sampleStart)
	sampleStat.Stats = sess.Solver.Statistics().Sub(sampleBefore)
	perShard = append(perShard, sampleStat)
	if SampleSettled(sampleComplete, len(sample), sampleCap, opts.MaxSolutions) {
		SortSolutions(sample)
		return sample, sampleComplete, perShard, nil
	}

	// The worker phase shares the caller's Timeout window with the
	// sample stage instead of opening a second one.
	workerOpts := opts
	if opts.Timeout > 0 {
		if workerOpts.Timeout = opts.Timeout - sampleStat.Elapsed; workerOpts.Timeout <= 0 {
			SortSolutions(sample)
			return sample, false, perShard, nil
		}
	}
	guard := sampleRound.Guard()
	groups, stats, drained := sess.RunCubes(shards, workerOpts, sample, true,
		func(_ int, sh *Shard, cube Cube, budget RoundOptions) ([][]int, bool) {
			// Caller restrictions stay in force; the cube and the sample
			// guard are appended to them. The ladder-width error cannot
			// fire here — the sample stage validated the same limit.
			budget.ExtraAssumps = append(append(append([]sat.Lit(nil),
				opts.ExtraAssumps...), cube.Assumps...), guard)
			var local [][]int
			_, c, _ := sh.Session.EnumerateRound(budget, func(k int, gates []int) bool {
				local = append(local, sortedCopy(gates))
				return true
			})
			return local, c
		})

	complete = drained
	for _, st := range stats {
		complete = complete && st.Complete
	}
	perShard = append(perShard, stats...)
	sols, truncated := MergeTruncate(append([][][]int{sample}, groups...), opts.MaxSolutions)
	return sols, complete && !truncated, perShard, nil
}

// DefaultCubeRetries is the default per-cube retry budget of a sharded
// run: how often one cube may be requeued after a worker panic or an
// injected transient failure before it is abandoned.
const DefaultCubeRetries = 3

// FailpointCube is the failpoint evaluated before every cube attempt of
// a sharded run. An injected error or cancellation fails the attempt
// without executing it; an injected panic unwinds through the worker's
// recover barrier and retires the worker.
const FailpointCube = "cnf/cube"

// cubeAttempt tracks one planned cube through the work queue: its
// scheduling home (the worker whose pending list it starts on) and how
// many attempts have failed so far.
type cubeAttempt struct {
	cube  Cube
	home  int
	tries int
}

// cubeQueue is the shared work queue of a fault-tolerant worker phase.
// Every worker owns a pending list (its LPT schedule), pops from it
// first, and steals from the longest other list when its own runs dry —
// which both balances stragglers and reassigns the load of a dead
// worker. A popped attempt counts as inflight until it is served
// (done), returned for retry (requeue), or given up (forfeit); next
// blocks while cubes are inflight because a failing one may come back.
type cubeQueue struct {
	mu       sync.Mutex
	cond     *sync.Cond
	pending  [][]*cubeAttempt
	inflight int
	unserved int
	closed   bool
}

func newCubeQueue(loads [][]Cube) *cubeQueue {
	q := &cubeQueue{pending: make([][]*cubeAttempt, len(loads))}
	q.cond = sync.NewCond(&q.mu)
	for w, cubes := range loads {
		list := make([]*cubeAttempt, len(cubes))
		for i := range cubes {
			list[i] = &cubeAttempt{cube: cubes[i], home: w}
		}
		q.pending[w] = list
	}
	return q
}

// next blocks until an attempt is available for the worker (own list
// first, then stolen from the longest other list — lowest index on
// ties, deterministically), every cube is served, or the queue is
// closed. A nil attempt means the worker is finished.
func (q *cubeQueue) next(worker int) (att *cubeAttempt, stolen bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.closed {
			return nil, false
		}
		if own := q.pending[worker]; len(own) > 0 {
			q.pending[worker] = own[1:]
			q.inflight++
			return own[0], false
		}
		victim := -1
		for w := range q.pending {
			if len(q.pending[w]) > 0 && (victim < 0 || len(q.pending[w]) > len(q.pending[victim])) {
				victim = w
			}
		}
		if victim >= 0 {
			att = q.pending[victim][0]
			q.pending[victim] = q.pending[victim][1:]
			q.inflight++
			return att, true
		}
		if q.inflight == 0 {
			return nil, false
		}
		q.cond.Wait()
	}
}

// done marks an inflight attempt as served.
func (q *cubeQueue) done() {
	q.mu.Lock()
	q.inflight--
	q.mu.Unlock()
	q.cond.Broadcast()
}

// requeue returns a failed attempt to its home list for another try;
// the home list stays stealable even when its owner has died.
func (q *cubeQueue) requeue(att *cubeAttempt) {
	q.mu.Lock()
	q.pending[att.home] = append(q.pending[att.home], att)
	q.inflight--
	q.mu.Unlock()
	q.cond.Broadcast()
}

// forfeit drops an inflight attempt without serving it (retry budget
// exhausted, or the shared deadline passed after the pop); the phase
// can no longer drain.
func (q *cubeQueue) forfeit() {
	q.mu.Lock()
	q.unserved++
	q.inflight--
	q.mu.Unlock()
	q.cond.Broadcast()
}

// close aborts the phase: blocked workers return immediately and the
// remaining cubes stay unserved.
func (q *cubeQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// drained reports whether every planned cube was fully served.
func (q *cubeQueue) drained() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.unserved > 0 || q.inflight > 0 {
		return false
	}
	for _, list := range q.pending {
		if len(list) > 0 {
			return false
		}
	}
	return true
}

// cubePanic wraps a value recovered from a panicking cube attempt.
type cubePanic struct{ val any }

func (p cubePanic) Error() string { return fmt.Sprintf("cnf: cube worker panicked: %v", p.val) }

// runCube executes one cube attempt behind a recover barrier and the
// FailpointCube injection point. A recovered panic comes back as a
// cubePanic failure; an injected transient failure fails the attempt
// before run executes, so the clone stays clean for the retry.
func runCube(worker int, sh *Shard, cube Cube, budget RoundOptions,
	run func(int, *Shard, Cube, RoundOptions) ([][]int, bool)) (sols [][]int, compl bool, failure error) {
	defer func() {
		if v := recover(); v != nil {
			sols, compl, failure = nil, false, cubePanic{val: v}
		}
	}()
	if err := failpoint.Inject(FailpointCube); err != nil {
		return nil, false, err
	}
	sols, compl = run(worker, sh, cube, budget)
	return sols, compl, nil
}

// RunCubes is the worker harness both sharded drivers (the BSAT rounds
// above and the CEGAR loops in core) execute their cubes on: it plans
// balanced cubes from the sample, LPT-schedules them onto `shards`
// cloned workers as per-worker pending lists of a shared work queue,
// and drives `run` once per served (worker, cube) — calls for one
// worker are sequential, in its own goroutine — with stage-scoped
// budgets: each cube receives the worker's remaining Timeout window and
// remaining MaxSolutions allowance (the sample's finds count against
// it), so a stage can never exceed the budgets the caller configured.
// Worker goroutines are bounded by GOMAXPROCS so a saturated machine
// runs them back to back instead of thrashing.
//
// The harness is fault tolerant. Each attempt runs behind a recover
// barrier and the FailpointCube injection point; a failed attempt's
// partial output is discarded (a retry re-enumerates the cube from
// scratch — the canonical merge drops supersets, not duplicates) and
// the cube is requeued up to opts.MaxCubeRetries times before it is
// abandoned. A recovered panic additionally retires the worker — its
// clone is presumed corrupted — and idle workers steal the pending
// cubes of dead or lagging ones. The per-worker ShardStats account
// every fault: Panics, Retries, Steals, Abandoned.
//
// run returns the cube's solutions (each a sorted gate set) and whether
// the cube's slice was exhausted. RunCubes returns the per-worker
// solution groups and stats (First is cube-granular; the sample stage
// owns the true first-solution time), plus drained: whether every
// planned cube was fully served. Abandoned cubes, cubes stranded by
// dead workers, and deadline leftovers all clear drained, so callers
// must report complete = drained && every stat Complete. opts.Timeout
// bounds the whole worker phase with one shared deadline.
func (sess *DiagSession) RunCubes(shards int, opts RoundOptions, sample [][]int, keepLearnts bool,
	run func(worker int, sh *Shard, cube Cube, budget RoundOptions) ([][]int, bool)) (groups [][][]int, stats []ShardStats, drained bool) {

	loads := ScheduleCubes(sess.PlanCubes(sample, shards*CubeOversubscription), shards)
	forks := sess.ForkWorkers(loads, keepLearnts)
	if len(opts.WorkerConfigs) > 0 {
		// Mixed-config sharding: worker i searches under WorkerConfigs[i %
		// len]. Trajectories differ per worker; the canonical merge does
		// not.
		for i, sh := range forks {
			sh.Session.Solver.SetSearchConfig(opts.WorkerConfigs[i%len(opts.WorkerConfigs)])
		}
	}
	queue := newCubeQueue(loads)
	maxRetries := opts.MaxCubeRetries
	if maxRetries == 0 {
		maxRetries = DefaultCubeRetries
	} else if maxRetries < 0 {
		maxRetries = 0
	}
	groups = make([][][]int, len(forks))
	stats = make([]ShardStats, len(forks))
	// A traced run attaches one child span per served cube to the
	// request span; Span methods are goroutine-safe, so every worker
	// attaches to the same parent concurrently.
	span := trace.FromContext(opts.Ctx)
	spanCtx := opts.Ctx
	if spanCtx == nil {
		spanCtx = context.Background()
	}
	// One deadline covers the whole worker phase — not one window per
	// worker — so a saturated machine serializing the workers still
	// honors the caller's Timeout instead of multiplying it.
	var deadline time.Time
	if opts.Timeout > 0 {
		deadline = time.Now().Add(opts.Timeout)
	}
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	wg.Add(len(forks))
	for i, sh := range forks {
		go func(i int, sh *Shard) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			start := time.Now()
			st := ShardStats{Shard: i, Complete: true}
			var local [][]int
			var first time.Duration
			for alive := true; alive; {
				// A cancelled run must not pop further cubes: close the
				// queue so blocked siblings exit too. The cubes already
				// popped abort promptly through the same ctx.
				if opts.Ctx != nil && opts.Ctx.Err() != nil {
					st.Complete = false
					queue.close()
					break
				}
				if opts.MaxSolutions > 0 && opts.MaxSolutions-len(sample)-len(local) <= 0 {
					st.Complete = false
					break
				}
				att, stolen := queue.next(i)
				if att == nil {
					break
				}
				budget := opts
				if !deadline.IsZero() {
					if budget.Timeout = time.Until(deadline); budget.Timeout <= 0 {
						st.Complete = false
						queue.forfeit()
						break
					}
				}
				if opts.MaxSolutions > 0 {
					budget.MaxSolutions = opts.MaxSolutions - len(sample) - len(local)
				}
				if stolen {
					st.Steals++
				}
				var cubeSpan *trace.Span
				if span != nil {
					cubeSpan = span.Child(fmt.Sprintf("cube.w%d", i))
					if stolen {
						cubeSpan.SetDetail("stolen")
					}
					budget.Ctx = trace.NewContext(spanCtx, cubeSpan)
				}
				sols, compl, failure := runCube(i, sh, att.cube, budget, run)
				if cubeSpan != nil {
					cubeSpan.Counter("solutions", int64(len(sols)))
					if failure != nil {
						cubeSpan.SetDetail("failed")
					}
					cubeSpan.End()
				}
				if failure == nil {
					st.Cubes++ // Cubes counts served attempts, not failed ones
					if len(local) == 0 && len(sols) > 0 {
						first = time.Since(start)
					}
					local = append(local, sols...)
					st.Complete = st.Complete && compl
					queue.done()
					continue
				}
				if _, isPanic := failure.(cubePanic); isPanic {
					st.Panics++
					alive = false // clone presumed corrupted; worker retires
				}
				if att.tries++; att.tries > maxRetries {
					st.Abandoned++
					st.Complete = false
					queue.forfeit()
				} else {
					st.Retries++
					queue.requeue(att)
				}
			}
			groups[i] = local
			st.Solutions = len(local)
			st.First = first
			st.Elapsed = time.Since(start)
			st.Stats = sh.Session.Solver.Statistics()
			stats[i] = st
			// The clone's work counters are captured above; drop the
			// clone itself now so cancelled runs release solver memory
			// as each worker exits rather than at wg.Wait.
			sh.Release()
		}(i, sh)
	}
	wg.Wait()
	return groups, stats, queue.drained()
}

// EffectiveSampleCap resolves a sharded run's sample-stage bound:
// sampleCap (0 = DefaultSampleCap) clamped to the caller's solution cap
// when one is set. Both sharded drivers clamp through this.
func EffectiveSampleCap(sampleCap, maxSolutions int) int {
	if sampleCap <= 0 {
		sampleCap = DefaultSampleCap
	}
	if maxSolutions > 0 && maxSolutions < sampleCap {
		sampleCap = maxSolutions
	}
	return sampleCap
}

// SampleSettled reports whether a sharded run's sample stage already
// settled the request so no cubes need to run: the space is exhausted
// (complete), the stage stopped on a budget or cancellation rather
// than the sample cap (found < sampleCap), or the caller's solution
// cap is already full — forking would only enumerate residual space
// the merge must discard. Both sharded drivers (BSAT rounds and CEGAR
// loops) decide through this, so the stop discrimination cannot
// diverge between them.
func SampleSettled(complete bool, found, sampleCap, maxSolutions int) bool {
	return complete || found < sampleCap || (maxSolutions > 0 && found >= maxSolutions)
}

// MergeTruncate merges per-stage solution lists canonically and caps
// the result at max (0 = no cap), reporting whether the cap cut
// anything. Both sharded drivers (BSAT rounds and CEGAR loops) finish
// through this, so the merge discipline cannot diverge between them.
func MergeTruncate(groups [][][]int, max int) (sols [][]int, truncated bool) {
	sols = MergeShardSolutions(groups)
	if max > 0 && len(sols) > max {
		return sols[:max], true
	}
	return sols, false
}

func sortedCopy(gates []int) []int {
	g := append([]int(nil), gates...)
	sort.Ints(g)
	return g
}

// MergeShardSolutions merges per-stage solution lists (each solution a
// sorted gate set) into the canonical order and drops strict supersets
// across stages. Stage-local enumeration already blocks supersets
// within a stage; a superset surviving in one cube because its witness
// subset lives in another is exactly what the cross-stage pass removes.
func MergeShardSolutions(groups [][][]int) [][]int {
	var all [][]int
	for _, g := range groups {
		all = append(all, g...)
	}
	SortSolutions(all)
	return DropSupersets(all)
}

// SortSolutions orders solutions canonically: by size, then
// lexicographically by gate IDs. Every merge point sorts with this so
// diagnosis output is byte-identical regardless of shard or worker
// count. The per-solution gate slices must already be sorted.
func SortSolutions(sols [][]int) {
	sort.Slice(sols, func(i, j int) bool { return LessSolution(sols[i], sols[j]) })
}

// LessSolution is the canonical solution order — size first, then
// lexicographic over the gate IDs. It is the single definition every
// layer sorts by (core.SolutionSet.Canonicalize delegates here), so
// sharded merges and engine reports can never disagree on order.
func LessSolution(a, b []int) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// DropSupersets removes every solution that strictly contains an
// earlier (hence no larger) one. The input must be canonically sorted;
// the relative order of the survivors is preserved.
func DropSupersets(sols [][]int) [][]int {
	kept := sols[:0]
	for _, s := range sols {
		dominated := false
		for _, k := range kept {
			if len(k) < len(s) && subsetOfSorted(k, s) {
				dominated = true
				break
			}
		}
		if !dominated {
			kept = append(kept, s)
		}
	}
	return kept
}

// subsetOfSorted reports a ⊆ b for ascending-sorted int slices.
func subsetOfSorted(a, b []int) bool {
	i := 0
	for _, x := range a {
		for i < len(b) && b[i] < x {
			i++
		}
		if i == len(b) || b[i] != x {
			return false
		}
		i++
	}
	return true
}
