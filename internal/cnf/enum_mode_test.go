package cnf_test

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/cnf"
	"repro/internal/sat"
)

// TestEnumModeMatchesLegacy: a projected-mode round must enumerate the
// exact same solution set as the legacy round on the same session — the
// ladder discipline makes each k-pass an antichain, so early termination
// and blocked-continue change only the trajectory. The projected run
// must also actually engage (non-zero early-termination counter).
func TestEnumModeMatchesLegacy(t *testing.T) {
	for _, start := range []int64{1, 40, 80} {
		c, tests := shardScenario(t, start, 6)
		sess := cnf.BuildDiag(c, tests, cnf.DiagOptions{MaxK: 2})

		legacy := roundKeys(t, sess, cnf.RoundOptions{MaxK: 2})
		before := sess.Solver.Statistics()
		projected := roundKeys(t, sess, cnf.RoundOptions{MaxK: 2, Enum: sat.EnumProjected})
		delta := sess.Solver.Statistics().Sub(before)

		if !sameKeys(projected, legacy) {
			t.Fatalf("start %d: projected %v != legacy %v", start, projected, legacy)
		}
		if len(legacy) > 0 && delta.EarlyTerms == 0 {
			t.Fatalf("start %d: projected round never early-terminated (%d solutions)", start, len(legacy))
		}
		if len(legacy) > 0 && delta.ContinueBackjumps == 0 {
			t.Fatalf("start %d: projected round never blocked-continued", start)
		}
	}
}

// TestEnumModeSessionDefault: DiagOptions.Enum sets the session-wide
// default a zero-valued RoundOptions.Enum falls back to, and an explicit
// per-round mode is honored regardless.
func TestEnumModeSessionDefault(t *testing.T) {
	c, tests := shardScenario(t, 1, 6)
	reference := roundKeys(t, cnf.BuildDiag(c, tests, cnf.DiagOptions{MaxK: 2}),
		cnf.RoundOptions{MaxK: 2})

	sess := cnf.BuildDiag(c, tests, cnf.DiagOptions{MaxK: 2, Enum: sat.EnumProjected})
	before := sess.Solver.Statistics()
	got := roundKeys(t, sess, cnf.RoundOptions{MaxK: 2})
	delta := sess.Solver.Statistics().Sub(before)
	if !sameKeys(got, reference) {
		t.Fatalf("session-default projected %v != legacy %v", got, reference)
	}
	if len(reference) > 0 && delta.EarlyTerms == 0 {
		t.Fatal("session default did not reach the solver (no early terminations)")
	}
}

// TestShardedProjectedMatchesMonolithic: the merged output of a sharded
// projected enumeration must be byte-identical (order included) to the
// single-shard legacy run — the mode flows into the sample stage and
// every cube worker through the copied RoundOptions.
func TestShardedProjectedMatchesMonolithic(t *testing.T) {
	for _, start := range []int64{1, 40} {
		c, tests := shardScenario(t, start, 6)
		sess := cnf.BuildDiag(c, tests, cnf.DiagOptions{MaxK: 2})

		base := shardedKeys(t, sess, 1, cnf.RoundOptions{MaxK: 2})
		mono := roundKeys(t, sess, cnf.RoundOptions{MaxK: 2})
		for _, n := range []int{2, 3, 4} {
			got := shardedKeys(t, sess, n, cnf.RoundOptions{MaxK: 2, SampleCap: 1, Enum: sat.EnumProjected})
			if !reflect.DeepEqual(got, base) {
				t.Fatalf("start %d shards %d projected: %v != legacy shards 1 %v", start, n, got, base)
			}
			asSet := append([]string(nil), got...)
			sort.Strings(asSet)
			if !sameKeys(asSet, mono) {
				t.Fatalf("start %d shards %d projected set %v != monolithic %v", start, n, asSet, mono)
			}
		}
	}
}
