package cnf

import (
	"repro/internal/circuit"
	"repro/internal/sat"
	"repro/internal/trace"
)

// DiagOptions configures the diagnosis SAT instance of Figure 2/3.
type DiagOptions struct {
	// Candidates lists the gate IDs eligible for correction (multiplexer
	// insertion). Nil means every internal (non-input) gate, the basic
	// BSAT configuration. The advanced two-pass approach passes the
	// fanout-free-region roots here first.
	Candidates []int

	// Groups, when non-nil, overrides Candidates: each group is a set of
	// gate IDs sharing a single select line. Time-frame-expanded
	// sequential diagnosis uses one group per physical gate (all its
	// frame instances switch together, while the injected correction
	// values stay free per instance and per test, exactly as in the
	// sequential SAT diagnosis of Ali et al. that the paper cites).
	Groups [][]int

	// GroupLabels names each group in reported corrections (e.g. the
	// original gate ID of a time-frame group). Defaults to the smallest
	// member ID.
	GroupLabels []int

	// MaxK is the largest correction size the instance must support; the
	// cardinality ladder is built to width MaxK+1 so every limit
	// 1..MaxK is available as an assumption (incremental usage).
	MaxK int

	// Encoding selects the cardinality encoding (default SeqCounter).
	Encoding CardEncoding

	// ForceZero adds the advanced-approach clauses forcing the free
	// correction value c to 0 while the select line is 0, removing up to
	// |I| pointless decisions per copy (Section 2.3).
	ForceZero bool

	// ConeOnly restricts each test copy to the fanin cone of its
	// constrained output(s) instead of copying the whole circuit. The
	// projected solution space is unchanged; instance size shrinks.
	ConeOnly bool

	// Golden, when non-nil, supplies a reference implementation used to
	// constrain all primary outputs (not only the erroneous one) to their
	// correct values — the generalization discussed with Table 3 ("when
	// additional outputs are introduced into the diagnosis problem").
	Golden *circuit.Circuit

	// GuardTests attaches each test copy's input/output constraints to a
	// per-copy guard literal instead of asserting them, so enumeration
	// rounds can scope the active test-set by assumptions
	// (DiagSession.ActivationAssumps) — the session form of the paper's
	// test-set-splitting heuristic. Guarded copies cannot be constant-
	// folded at level 0, so monolithic single-shot instances should
	// leave this off.
	GuardTests bool

	// Backend, when non-nil, supplies the SAT backend the session encodes
	// into instead of the built-in CDCL solver (sat.New). The encoders
	// only require the sat.Builder surface, so any sat.Backend
	// implementation slots in here.
	Backend sat.Backend

	// Search, when non-zero, selects the solver's search configuration
	// (sat.DefaultConfig / sat.Gen2Config). Configurations change the
	// search trajectory, never the solution set, so any configuration —
	// including a different one per shard worker — yields the same
	// canonical diagnosis sets.
	Search sat.SearchConfig

	// Enum is the session's default enumeration mode for rounds that do
	// not set RoundOptions.Enum themselves (sat.EnumProjected enables
	// early model termination and blocked-continue search). Under the
	// ladder discipline every pass enumerates an antichain of size-k
	// solutions, so the mode changes the trajectory, never the canonical
	// solution set.
	Enum sat.EnumMode

	// Recorder, when non-nil, is installed on the backend as its flight
	// recorder: the solver's rare search events (restarts, reductions,
	// models, budget exits) land in its ring, and clones forked for
	// sharded or portfolio runs inherit it. Observation-only — the
	// search trajectory is identical with or without it.
	Recorder *trace.Recorder
}

// Instance is a built diagnosis SAT instance. It is the same object as
// the incremental DiagSession; BuildDiag is simply NewSession followed
// by AddTests.
type Instance = DiagSession

// NoVar marks an absent variable in cone-restricted copies.
const NoVar sat.Var = -1

// BuildDiag constructs the SAT instance F of the paper's Figure 2(b):
// one constrained copy of the circuit per test, a correction multiplexer
// per candidate gate whose select line is shared across copies, and a
// cardinality ladder over the select lines.
func BuildDiag(c *circuit.Circuit, tests circuit.TestSet, opts DiagOptions) *Instance {
	sess := NewSession(c, opts)
	sess.AddTests(tests)
	return sess
}

// coneFor returns the gate set to encode for one test copy, or nil for
// the full circuit.
func coneFor(c *circuit.Circuit, t circuit.Test, opts DiagOptions, allOutputs bool) []bool {
	if !opts.ConeOnly {
		return nil
	}
	if allOutputs {
		// All outputs constrained: the union cone is the whole circuit in
		// all but degenerate cases; encode everything reachable backward
		// from any output.
		cone := make([]bool, len(c.Gates))
		for _, o := range c.Outputs {
			for g, in := range c.FaninCone(o) {
				if in {
					cone[g] = true
				}
			}
		}
		return cone
	}
	return c.FaninCone(t.Output)
}
