package cnf

import (
	"sort"
	"time"

	"repro/internal/circuit"
	"repro/internal/logic"
	"repro/internal/sat"
	"repro/internal/sim"
)

// DiagOptions configures the diagnosis SAT instance of Figure 2/3.
type DiagOptions struct {
	// Candidates lists the gate IDs eligible for correction (multiplexer
	// insertion). Nil means every internal (non-input) gate, the basic
	// BSAT configuration. The advanced two-pass approach passes the
	// fanout-free-region roots here first.
	Candidates []int

	// Groups, when non-nil, overrides Candidates: each group is a set of
	// gate IDs sharing a single select line. Time-frame-expanded
	// sequential diagnosis uses one group per physical gate (all its
	// frame instances switch together, while the injected correction
	// values stay free per instance and per test, exactly as in the
	// sequential SAT diagnosis of Ali et al. that the paper cites).
	Groups [][]int

	// GroupLabels names each group in reported corrections (e.g. the
	// original gate ID of a time-frame group). Defaults to the smallest
	// member ID.
	GroupLabels []int

	// MaxK is the largest correction size the instance must support; the
	// cardinality ladder is built to width MaxK+1 so every limit
	// 1..MaxK is available as an assumption (incremental usage).
	MaxK int

	// Encoding selects the cardinality encoding (default SeqCounter).
	Encoding CardEncoding

	// ForceZero adds the advanced-approach clauses forcing the free
	// correction value c to 0 while the select line is 0, removing up to
	// |I| pointless decisions per copy (Section 2.3).
	ForceZero bool

	// ConeOnly restricts each test copy to the fanin cone of its
	// constrained output(s) instead of copying the whole circuit. The
	// projected solution space is unchanged; instance size shrinks.
	ConeOnly bool

	// Golden, when non-nil, supplies a reference implementation used to
	// constrain all primary outputs (not only the erroneous one) to their
	// correct values — the generalization discussed with Table 3 ("when
	// additional outputs are introduced into the diagnosis problem").
	Golden *circuit.Circuit
}

// Instance is a built diagnosis SAT instance.
type Instance struct {
	Solver  *sat.Solver
	Circuit *circuit.Circuit
	Tests   circuit.TestSet
	// Candidates labels the selection units reported in corrections: one
	// entry per select line. For plain diagnosis these are the candidate
	// gate IDs; for grouped (sequential) diagnosis, the group labels.
	Candidates []int
	Sels       []sat.Lit // select literal per candidate/group
	Ladder     *Ladder

	// GateVars[i][g] is the output variable of gate g in test copy i, or
	// NoVar when the gate is outside the encoded cone of copy i.
	GateVars [][]sat.Var
	// CorrVars[i][g] is the free correction value injected at gate g in
	// test copy i, or NoVar when g has no multiplexer in that copy.
	CorrVars [][]sat.Var

	selIndex  map[int]int // gate ID -> select position
	BuildTime time.Duration
}

// NoVar marks an absent variable in cone-restricted copies.
const NoVar sat.Var = -1

// BuildDiag constructs the SAT instance F of the paper's Figure 2(b):
// one constrained copy of the circuit per test, a correction multiplexer
// per candidate gate whose select line is shared across copies, and a
// cardinality ladder over the select lines.
func BuildDiag(c *circuit.Circuit, tests circuit.TestSet, opts DiagOptions) *Instance {
	start := time.Now()
	s := sat.New()

	// Normalize the selection units to groups with labels.
	groups := opts.Groups
	labels := opts.GroupLabels
	if groups == nil {
		cands := opts.Candidates
		if cands == nil {
			cands = c.InternalGates()
		} else {
			cands = append([]int(nil), cands...)
			sort.Ints(cands)
		}
		groups = make([][]int, len(cands))
		for j, g := range cands {
			groups[j] = []int{g}
		}
		labels = cands
	} else if labels == nil {
		labels = make([]int, len(groups))
		for j, grp := range groups {
			min := grp[0]
			for _, g := range grp {
				if g < min {
					min = g
				}
			}
			labels[j] = min
		}
	}
	inst := &Instance{
		Solver:     s,
		Circuit:    c,
		Tests:      tests,
		Candidates: labels,
		Sels:       make([]sat.Lit, len(groups)),
		GateVars:   make([][]sat.Var, len(tests)),
		CorrVars:   make([][]sat.Var, len(tests)),
		selIndex:   make(map[int]int),
	}
	for j, grp := range groups {
		inst.Sels[j] = sat.PosLit(s.NewVar())
		for _, g := range grp {
			inst.selIndex[g] = j
		}
	}

	var golden *sim.Simulator
	if opts.Golden != nil {
		golden = sim.New(opts.Golden)
	}

	for i, t := range tests {
		inCone := coneFor(c, t, opts, golden != nil)
		gateVars := make([]sat.Var, len(c.Gates))
		corrVars := make([]sat.Var, len(c.Gates))
		for g := range gateVars {
			gateVars[g] = NoVar
			corrVars[g] = NoVar
		}
		for g := range c.Gates {
			if inCone != nil && !inCone[g] {
				continue
			}
			gate := &c.Gates[g]
			y := s.NewVar()
			gateVars[g] = y
			if gate.Kind == logic.Input {
				// Constrain to the test-vector value.
				pos := c.InputPos(g)
				s.AddClause(sat.MkLit(y, !t.Vector[pos]))
				continue
			}
			fan := make([]sat.Lit, len(gate.Fanin))
			for fi, f := range gate.Fanin {
				fan[fi] = sat.PosLit(gateVars[f])
			}
			if j, isCand := inst.selIndex[g]; isCand {
				z := sat.PosLit(s.NewVar())
				EncodeGate(s, gate, z, fan)
				cv := s.NewVar()
				corrVars[g] = cv
				EncodeMux(s, sat.PosLit(y), inst.Sels[j], sat.PosLit(cv), z)
				if opts.ForceZero {
					// ¬sel -> ¬c
					s.AddClause(inst.Sels[j], sat.NegLit(cv))
				}
			} else {
				EncodeGate(s, gate, sat.PosLit(y), fan)
			}
		}
		inst.GateVars[i] = gateVars
		inst.CorrVars[i] = corrVars

		// Constrain the erroneous output to its correct value.
		s.AddClause(sat.MkLit(gateVars[t.Output], !t.Want))

		// Optionally constrain every other output to the golden value.
		if golden != nil {
			golden.RunVector(t.Vector)
			for _, o := range opts.Golden.Outputs {
				if o == t.Output || gateVars[o] == NoVar {
					continue
				}
				s.AddClause(sat.MkLit(gateVars[o], !golden.OutputBit(o)))
			}
		}
	}

	enc := opts.Encoding
	maxK := opts.MaxK
	if maxK <= 0 {
		maxK = 1
	}
	inst.Ladder = AddLadder(s, inst.Sels, maxK, enc)
	inst.BuildTime = time.Since(start)
	return inst
}

// coneFor returns the gate set to encode for one test copy, or nil for
// the full circuit.
func coneFor(c *circuit.Circuit, t circuit.Test, opts DiagOptions, allOutputs bool) []bool {
	if !opts.ConeOnly {
		return nil
	}
	if allOutputs {
		// All outputs constrained: the union cone is the whole circuit in
		// all but degenerate cases; encode everything reachable backward
		// from any output.
		cone := make([]bool, len(c.Gates))
		for _, o := range c.Outputs {
			for g, in := range c.FaninCone(o) {
				if in {
					cone[g] = true
				}
			}
		}
		return cone
	}
	return c.FaninCone(t.Output)
}

// SelLit returns the select literal of the given candidate gate.
func (inst *Instance) SelLit(gate int) (sat.Lit, bool) {
	j, ok := inst.selIndex[gate]
	if !ok {
		return sat.LitUndef, false
	}
	return inst.Sels[j], true
}

// CandidateIndex returns the candidate position of a gate ID.
func (inst *Instance) CandidateIndex(gate int) (int, bool) {
	j, ok := inst.selIndex[gate]
	return j, ok
}

// AtMost returns the assumption slice enforcing that at most k
// corrections are selected (empty when no constraint is needed).
func (inst *Instance) AtMost(k int) []sat.Lit {
	l := inst.Ladder.AtMost(k)
	if l == sat.LitUndef {
		return nil
	}
	return []sat.Lit{l}
}

// Size reports instance dimensions for the Table 1/Table 2 "CNF" columns.
func (inst *Instance) Size() (vars, clauses int) {
	return inst.Solver.NumVars(), inst.Solver.NumClauses()
}
