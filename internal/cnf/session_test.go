package cnf_test

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/sat"
	"repro/internal/tgen"
)

// sessionScenario builds a reproducible faulty circuit with a failing
// test-set, skipping seeds whose injected fault is undetectable.
func sessionScenario(t *testing.T, seed int64, m int) (*circuit.Circuit, circuit.TestSet) {
	t.Helper()
	golden, err := gen.Generate(gen.Spec{Name: "sess", Inputs: 6, Outputs: 3, Gates: 40, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	faulty, _, err := faults.Inject(golden, faults.Options{Count: 1, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	tests, err := tgen.Random(golden, faulty, tgen.Options{Count: m, Seed: seed, MaxPatterns: 1 << 12})
	if err == tgen.ErrUndetected {
		t.Skipf("seed %d: fault undetectable", seed)
	}
	if err != nil {
		t.Fatal(err)
	}
	return faulty, tests
}

// roundKeys enumerates one round to completion and returns the solution
// keys, sorted.
func roundKeys(t *testing.T, sess *cnf.DiagSession, opts cnf.RoundOptions) []string {
	t.Helper()
	var keys []string
	_, complete, err := sess.EnumerateRound(opts, func(_ int, gates []int) bool {
		keys = append(keys, fmt.Sprint(gates))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if !complete {
		t.Fatal("enumeration incomplete without budgets")
	}
	sort.Strings(keys)
	return keys
}

func sameKeys(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSessionIncrementalMatchesMonolithic: appending test copies one by
// one must yield the same solution space as the one-shot cnf.BuildDiag.
func TestSessionIncrementalMatchesMonolithic(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		c, tests := sessionScenario(t, seed, 6)
		mono := cnf.BuildDiag(c, tests, cnf.DiagOptions{MaxK: 2})
		monoKeys := roundKeys(t, mono, cnf.RoundOptions{MaxK: 2})

		sess := cnf.NewSession(c, cnf.DiagOptions{MaxK: 2})
		for _, tc := range tests {
			sess.AddTest(tc)
		}
		if sess.NumTests() != len(tests) {
			t.Fatalf("seed %d: %d copies for %d tests", seed, sess.NumTests(), len(tests))
		}
		if got := roundKeys(t, sess, cnf.RoundOptions{MaxK: 2}); !sameKeys(got, monoKeys) {
			t.Fatalf("seed %d: incremental %v != monolithic %v", seed, got, monoKeys)
		}
	}
}

// TestSessionRoundsAreIndependent: retiring a round must retract its
// blocking clauses, so consecutive rounds on one session enumerate the
// same solutions, and plain Solve queries still work in between.
func TestSessionRoundsAreIndependent(t *testing.T) {
	c, tests := sessionScenario(t, 3, 6)
	sess := cnf.BuildDiag(c, tests, cnf.DiagOptions{MaxK: 2})
	first := roundKeys(t, sess, cnf.RoundOptions{MaxK: 2})
	if len(first) == 0 {
		t.Skip("no solutions for this scenario")
	}
	// A direct query between rounds: assuming every select off must be
	// UNSAT (the tests fail by definition), and the session must survive.
	off := make([]sat.Lit, len(sess.Sels))
	for j, l := range sess.Sels {
		off[j] = l.Neg()
	}
	if st := sess.Solver.Solve(off...); st != sat.StatusUnsat {
		t.Fatalf("all-selects-off should be UNSAT, got %v", st)
	}
	for round := 2; round <= 3; round++ {
		if got := roundKeys(t, sess, cnf.RoundOptions{MaxK: 2}); !sameKeys(got, first) {
			t.Fatalf("round %d: %v != round 1 %v", round, got, first)
		}
	}
}

// TestSessionRestrictMatchesRebuild: confining candidates by assumptions
// must equal an instance built with that candidate list.
func TestSessionRestrictMatchesRebuild(t *testing.T) {
	c, tests := sessionScenario(t, 5, 6)
	all := c.InternalGates()
	if len(all) < 4 {
		t.Skip("circuit too small")
	}
	subset := append([]int(nil), all[:len(all)/2]...)

	sess := cnf.BuildDiag(c, tests, cnf.DiagOptions{MaxK: 2})
	restricted := roundKeys(t, sess, cnf.RoundOptions{MaxK: 2, Restrict: subset})

	rebuilt := cnf.BuildDiag(c, tests, cnf.DiagOptions{MaxK: 2, Candidates: subset})
	want := roundKeys(t, rebuilt, cnf.RoundOptions{MaxK: 2})
	if !sameKeys(restricted, want) {
		t.Fatalf("restricted %v != rebuilt %v", restricted, want)
	}
}

// TestSessionGuardedActivationMatchesRebuild: scoping a guarded session
// to a test subset by assumptions must equal an instance built over just
// that subset.
func TestSessionGuardedActivationMatchesRebuild(t *testing.T) {
	for seed := int64(2); seed <= 5; seed++ {
		c, tests := sessionScenario(t, seed, 8)
		if len(tests) < 4 {
			continue
		}
		sess := cnf.NewSession(c, cnf.DiagOptions{MaxK: 2, GuardTests: true})
		sess.AddTests(tests)
		if len(sess.TestGuards) != len(tests) {
			t.Fatalf("seed %d: %d guards for %d tests", seed, len(sess.TestGuards), len(tests))
		}
		for lo := 0; lo < len(tests); lo += 2 {
			hi := lo + 2
			if hi > len(tests) {
				hi = len(tests)
			}
			active := make([]int, 0, hi-lo)
			for i := lo; i < hi; i++ {
				active = append(active, i)
			}
			scoped := roundKeys(t, sess, cnf.RoundOptions{MaxK: 2, ActiveTests: active})
			rebuilt := cnf.BuildDiag(c, tests[lo:hi], cnf.DiagOptions{MaxK: 2})
			want := roundKeys(t, rebuilt, cnf.RoundOptions{MaxK: 2})
			if !sameKeys(scoped, want) {
				t.Fatalf("seed %d partition [%d,%d): scoped %v != rebuilt %v", seed, lo, hi, scoped, want)
			}
		}
	}
}

// TestSessionRoundBudgetsAreFresh: a round whose timeout expired must
// not poison the next round — EnumerateRound installs budgets per round.
func TestSessionRoundBudgetsAreFresh(t *testing.T) {
	c, tests := sessionScenario(t, 3, 6)
	sess := cnf.BuildDiag(c, tests, cnf.DiagOptions{MaxK: 2})
	want := roundKeys(t, sess, cnf.RoundOptions{MaxK: 2})

	// A nanosecond round times out immediately (fast-fail deadline check).
	n, complete, _ := sess.EnumerateRound(cnf.RoundOptions{MaxK: 2, Timeout: 1}, nil)
	if complete {
		t.Skipf("nanosecond round completed anyway (%d solutions)", n)
	}
	// The next unbudgeted round must be unaffected by the stale deadline.
	if got := roundKeys(t, sess, cnf.RoundOptions{MaxK: 2}); !sameKeys(got, want) {
		t.Fatalf("round after timeout: %v != %v", got, want)
	}
}

// TestSessionStats: the Stats snapshot must track copies, rounds and
// solver work as the session is used, without disturbing it.
func TestSessionStats(t *testing.T) {
	c, tests := sessionScenario(t, 3, 6)
	sess := cnf.NewSession(c, cnf.DiagOptions{MaxK: 2})
	st := sess.Stats()
	if st.Copies != 0 || st.Rounds != 0 || st.Candidates == 0 {
		t.Fatalf("fresh session stats: %+v", st)
	}
	sess.AddTests(tests)
	st = sess.Stats()
	if st.Copies != len(tests) {
		t.Fatalf("copies %d after %d AddTests", st.Copies, len(tests))
	}
	if st.Vars == 0 || st.Clauses == 0 || st.BuildTime <= 0 {
		t.Fatalf("instance size not reported: %+v", st)
	}

	roundKeys(t, sess, cnf.RoundOptions{MaxK: 2})
	st = sess.Stats()
	if st.Rounds != 1 || st.RetiredRounds != 1 {
		t.Fatalf("after one retired round: rounds=%d retired=%d", st.Rounds, st.RetiredRounds)
	}
	if st.BudgetedRounds != 0 {
		t.Fatalf("unbudgeted round counted as budgeted: %+v", st)
	}
	if st.Solver.Decisions == 0 && st.Solver.Propagations == 0 {
		t.Fatalf("no solver work recorded: %+v", st.Solver)
	}

	sess.EnumerateRound(cnf.RoundOptions{MaxK: 2, MaxConflicts: 1000}, nil)
	st = sess.Stats()
	if st.Rounds != 2 || st.BudgetedRounds != 1 {
		t.Fatalf("after budgeted round: rounds=%d budgeted=%d", st.Rounds, st.BudgetedRounds)
	}
}
