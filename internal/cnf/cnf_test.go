package cnf

import (
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/sat"
	"repro/internal/sim"
)

// TestGateEncodingsExhaustive checks every gate kind at arities 1-3
// against the truth table: the CNF with inputs fixed must force the
// output variable to the function value.
func TestGateEncodingsExhaustive(t *testing.T) {
	kinds := []logic.Kind{logic.Buf, logic.Not, logic.And, logic.Nand, logic.Or, logic.Nor, logic.Xor, logic.Xnor}
	for _, k := range kinds {
		maxAr := 3
		if k == logic.Buf || k == logic.Not {
			maxAr = 1
		}
		for ar := 1; ar <= maxAr; ar++ {
			for m := 0; m < 1<<uint(ar); m++ {
				s := sat.New()
				fan := make([]sat.Lit, ar)
				in := make([]bool, ar)
				for i := range fan {
					fan[i] = sat.PosLit(s.NewVar())
					in[i] = m>>uint(i)&1 == 1
				}
				out := sat.PosLit(s.NewVar())
				g := &circuit.Gate{Kind: k}
				EncodeGate(s, g, out, fan)
				for i, f := range fan {
					if in[i] {
						s.AddClause(f)
					} else {
						s.AddClause(f.Neg())
					}
				}
				if st := s.Solve(); st != sat.StatusSat {
					t.Fatalf("%v/%d minterm %d: %v", k, ar, m, st)
				}
				want := logic.EvalBit(k, in)
				if got := s.ValueLit(out) == sat.LTrue; got != want {
					t.Fatalf("%v/%d minterm %d: CNF %v, truth %v", k, ar, m, got, want)
				}
				// The opposite output value must be unsatisfiable.
				s.AddClause(sat.MkLit(out.Var(), want))
				if st := s.Solve(); st != sat.StatusUnsat {
					t.Fatalf("%v/%d minterm %d: output not forced", k, ar, m)
				}
			}
		}
	}
}

func TestConstAndTableEncodings(t *testing.T) {
	s := sat.New()
	out0 := sat.PosLit(s.NewVar())
	out1 := sat.PosLit(s.NewVar())
	EncodeGate(s, &circuit.Gate{Kind: logic.Const0}, out0, nil)
	EncodeGate(s, &circuit.Gate{Kind: logic.Const1}, out1, nil)
	if s.Solve() != sat.StatusSat || s.ValueLit(out0) != sat.LFalse || s.ValueLit(out1) != sat.LTrue {
		t.Fatal("const encodings wrong")
	}

	// Random 3-input table, all minterms.
	rng := rand.New(rand.NewSource(4))
	tab := logic.NewTable(3)
	for m := 0; m < 8; m++ {
		tab.Set(m, rng.Intn(2) == 1)
	}
	for m := 0; m < 8; m++ {
		s := sat.New()
		fan := []sat.Lit{sat.PosLit(s.NewVar()), sat.PosLit(s.NewVar()), sat.PosLit(s.NewVar())}
		out := sat.PosLit(s.NewVar())
		EncodeGate(s, &circuit.Gate{Kind: logic.TableKind, Table: tab}, out, fan)
		for i, f := range fan {
			if m>>uint(i)&1 == 1 {
				s.AddClause(f)
			} else {
				s.AddClause(f.Neg())
			}
		}
		if s.Solve() != sat.StatusSat {
			t.Fatalf("minterm %d unsat", m)
		}
		if got := s.ValueLit(out) == sat.LTrue; got != tab.Get(m) {
			t.Fatalf("minterm %d: got %v want %v", m, got, tab.Get(m))
		}
	}
}

// TestEncodeCopyMatchesSimulation: for random circuits and vectors, the
// Tseitin copy with input units must be satisfiable with every gate
// variable equal to the simulated value.
func TestEncodeCopyMatchesSimulation(t *testing.T) {
	f := func(seed int64) bool {
		c, err := gen.Generate(gen.Spec{Name: "enc", Inputs: 6, Outputs: 3, Gates: 35, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed ^ 0x5a))
		vec := make([]bool, len(c.Inputs))
		for i := range vec {
			vec[i] = rng.Intn(2) == 1
		}
		s := sat.New()
		vars := EncodeCopy(s, c)
		for pos, id := range c.Inputs {
			s.AddClause(sat.MkLit(vars[id], !vec[pos]))
		}
		if s.Solve() != sat.StatusSat {
			t.Logf("seed %d: UNSAT", seed)
			return false
		}
		simul := sim.New(c)
		simul.RunVector(vec)
		for g := range c.Gates {
			want := simul.OutputBit(g)
			if got := s.Value(vars[g]) == sat.LTrue; got != want {
				t.Logf("seed %d gate %d: CNF %v sim %v", seed, g, got, want)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if testing.Short() {
		cfg.MaxCount = 10
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeMuxSemantics(t *testing.T) {
	for m := 0; m < 8; m++ {
		s := sat.New()
		y := sat.PosLit(s.NewVar())
		sel := sat.PosLit(s.NewVar())
		c := sat.PosLit(s.NewVar())
		z := sat.PosLit(s.NewVar())
		EncodeMux(s, y, sel, c, z)
		selV, cV, zV := m&1 == 1, m&2 == 2, m&4 == 4
		unit := func(l sat.Lit, v bool) {
			if v {
				s.AddClause(l)
			} else {
				s.AddClause(l.Neg())
			}
		}
		unit(sel, selV)
		unit(c, cV)
		unit(z, zV)
		if s.Solve() != sat.StatusSat {
			t.Fatalf("m=%d unsat", m)
		}
		want := zV
		if selV {
			want = cV
		}
		if got := s.ValueLit(y) == sat.LTrue; got != want {
			t.Fatalf("m=%d: y=%v want %v", m, got, want)
		}
	}
}

// popLadderCheck verifies a ladder against direct popcounts for every
// assignment of n inputs.
func popLadderCheck(t *testing.T, enc CardEncoding, n, maxBound int) {
	t.Helper()
	for m := 0; m < 1<<uint(n); m++ {
		for bound := 0; bound <= maxBound; bound++ {
			s := sat.New()
			lits := make([]sat.Lit, n)
			for i := range lits {
				lits[i] = sat.PosLit(s.NewVar())
			}
			ladder, err := AddLadder(s, lits, maxBound, enc)
			if err != nil {
				t.Fatal(err)
			}
			for i, l := range lits {
				if m>>uint(i)&1 == 1 {
					s.AddClause(l)
				} else {
					s.AddClause(l.Neg())
				}
			}
			var assumps []sat.Lit
			if a := ladder.AtMost(bound); a != sat.LitUndef {
				assumps = append(assumps, a)
			}
			st := s.Solve(assumps...)
			want := sat.StatusSat
			if bits.OnesCount(uint(m)) > bound {
				want = sat.StatusUnsat
			}
			if st != want {
				t.Fatalf("%v n=%d m=%b bound=%d: got %v want %v", enc, n, m, bound, st, want)
			}
		}
	}
}

func TestSeqCounterExhaustive(t *testing.T) {
	popLadderCheck(t, SeqCounter, 5, 4)
}

func TestTotalizerExhaustive(t *testing.T) {
	popLadderCheck(t, Totalizer, 5, 4)
}

func TestPairwiseExhaustive(t *testing.T) {
	popLadderCheck(t, Pairwise, 5, 2)
}

func TestLadderEdgeCases(t *testing.T) {
	s := sat.New()
	// Empty input set.
	l, err := AddLadder(s, nil, 3, SeqCounter)
	if err != nil {
		t.Fatal(err)
	}
	if l.AtMost(0) != sat.LitUndef {
		t.Fatal("empty ladder should not constrain")
	}
	// Bound >= n needs no constraint.
	lits := []sat.Lit{sat.PosLit(s.NewVar()), sat.PosLit(s.NewVar())}
	l2, err := AddLadder(s, lits, 5, SeqCounter)
	if err != nil {
		t.Fatal(err)
	}
	if l2.AtMost(2) != sat.LitUndef || l2.AtMost(7) != sat.LitUndef {
		t.Fatal("bound >= n should be unconstrained")
	}
	if l2.AtMost(1) == sat.LitUndef {
		t.Fatal("bound 1 of 2 must constrain")
	}
	// A negative maxBound clamps to a width-1 ladder and a negative
	// AtMost bound clamps to 0 — both total, neither may panic.
	l3, err := AddLadder(s, lits, -2, SeqCounter)
	if err != nil {
		t.Fatal(err)
	}
	if l3.AtMost(-1) == sat.LitUndef {
		t.Fatal("AtMost(-1) on a width-1 ladder must constrain like AtMost(0)")
	}
	// An out-of-range encoding is a returned error, not a panic.
	if _, err := AddLadder(s, lits, 2, CardEncoding(99)); err == nil {
		t.Fatal("unknown encoding must error")
	}
}

func TestAtMostDirect(t *testing.T) {
	s := sat.New()
	lits := []sat.Lit{sat.PosLit(s.NewVar()), sat.PosLit(s.NewVar()), sat.PosLit(s.NewVar())}
	AtMostDirect(s, lits)
	s.AddClause(lits[0])
	s.AddClause(lits[1])
	if s.Solve() != sat.StatusUnsat {
		t.Fatal("two selected under at-most-one")
	}
}

// TestBuildDiagInstanceSize verifies the Θ(|I|·m) scaling claim of
// Table 1: variables grow linearly in both circuit size and test count.
func TestBuildDiagInstanceSize(t *testing.T) {
	c, err := gen.Generate(gen.Spec{Name: "sz", Inputs: 8, Outputs: 4, Gates: 80, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	mkTests := func(m int) circuit.TestSet {
		var ts circuit.TestSet
		for i := 0; i < m; i++ {
			vec := make([]bool, len(c.Inputs))
			ts = append(ts, circuit.Test{Vector: vec, Output: c.Outputs[i%len(c.Outputs)], Want: true})
		}
		return ts
	}
	v1, _ := BuildDiag(c, mkTests(2), DiagOptions{MaxK: 2}).Size()
	v2, _ := BuildDiag(c, mkTests(4), DiagOptions{MaxK: 2}).Size()
	v4, _ := BuildDiag(c, mkTests(8), DiagOptions{MaxK: 2}).Size()
	// Doubling m should roughly double the copy variables (selector and
	// ladder variables are shared, so growth is slightly sublinear).
	g1, g2 := v2-v1, v4-v2
	if g2 < g1*18/10 || g2 > g1*22/10 {
		t.Fatalf("variable growth not linear in m: %d, %d, %d (deltas %d, %d)", v1, v2, v4, g1, g2)
	}
}

func TestBuildDiagConeOnlyShrinks(t *testing.T) {
	c, err := gen.Generate(gen.Spec{Name: "cone", Inputs: 10, Outputs: 6, Gates: 120, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	vec := make([]bool, len(c.Inputs))
	tests := circuit.TestSet{{Vector: vec, Output: c.Outputs[0], Want: true}}
	full, _ := BuildDiag(c, tests, DiagOptions{MaxK: 1}).Size()
	cone, _ := BuildDiag(c, tests, DiagOptions{MaxK: 1, ConeOnly: true}).Size()
	if cone >= full {
		t.Fatalf("cone restriction did not shrink: %d vs %d", cone, full)
	}
}

func TestBuildDiagGoldenConstrainsAllOutputs(t *testing.T) {
	// With a golden reference, a model must reproduce the golden values
	// on every output, not only the erroneous one.
	golden, err := gen.Generate(gen.Spec{Name: "g", Inputs: 5, Outputs: 3, Gates: 30, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	vec := []bool{true, false, true, false, true}
	outs := sim.Eval(golden, vec)
	// "Faulty" = golden here; want an impossible value at output 0 to
	// force a correction; other outputs must stay pinned.
	tests := circuit.TestSet{{Vector: vec, Output: golden.Outputs[0], Want: !outs[0]}}
	inst := BuildDiag(golden, tests, DiagOptions{MaxK: 1, Golden: golden})
	st := inst.Solver.Solve(inst.AtMost(1)...)
	if st != sat.StatusSat {
		t.Fatalf("no single-gate correction found: %v", st)
	}
	for i, o := range golden.Outputs {
		if i == 0 {
			continue
		}
		v := inst.GateVars[0][o]
		if got := inst.Solver.Value(v) == sat.LTrue; got != outs[i] {
			t.Fatalf("output %d drifted under correction: got %v want %v", i, got, outs[i])
		}
	}
}

func TestSelLitLookup(t *testing.T) {
	c, err := gen.Generate(gen.Spec{Name: "sel", Inputs: 4, Outputs: 2, Gates: 12, Seed: 37})
	if err != nil {
		t.Fatal(err)
	}
	vec := make([]bool, len(c.Inputs))
	tests := circuit.TestSet{{Vector: vec, Output: c.Outputs[0], Want: true}}
	inst := BuildDiag(c, tests, DiagOptions{MaxK: 1})
	for _, g := range c.InternalGates() {
		if _, ok := inst.SelLit(g); !ok {
			t.Fatalf("no select for internal gate %d", g)
		}
	}
	for _, g := range c.Inputs {
		if _, ok := inst.SelLit(g); ok {
			t.Fatalf("select exists for input %d", g)
		}
	}
}
