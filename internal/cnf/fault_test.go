package cnf_test

import (
	"reflect"
	"runtime"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/failpoint"
)

// faultScenario returns a shard scenario whose fault-free solution
// space has at least min solutions, so a SampleCap-1 sharded run always
// reaches the worker phase (where the failpoints live).
func faultScenario(t *testing.T, min int) (*circuit.Circuit, circuit.TestSet, [][]int) {
	t.Helper()
	for start := int64(1); start < 200; start += 20 {
		c, tests := shardScenario(t, start, 6)
		sess := cnf.BuildDiag(c, tests, cnf.DiagOptions{MaxK: 2})
		sols, complete, _, err := sess.EnumerateSharded(1, cnf.RoundOptions{MaxK: 2})
		if err != nil {
			t.Fatal(err)
		}
		if complete && len(sols) >= min {
			return c, tests, sols
		}
	}
	t.Skipf("no scenario with >= %d solutions found", min)
	return nil, nil, nil
}

// faultCounters sums the fault-tolerance counters across stages.
func faultCounters(per []cnf.ShardStats) (panics, retries, steals, abandoned int) {
	for _, st := range per {
		panics += st.Panics
		retries += st.Retries
		steals += st.Steals
		abandoned += st.Abandoned
	}
	return
}

// TestShardedFaultScheduleInvariance is the randomized fault-schedule
// extension of the shard-count-invariance property: under injected
// worker panics, transient cube errors, cancellations, and straggler
// delays, a sharded enumeration that reports complete=true must stay
// byte-identical to the fault-free Shards=1 run, every injected cube
// failure must be observable in the retry/abandon counters, every
// injected panic in the panic counters, and the parent session must
// survive any schedule unharmed.
func TestShardedFaultScheduleInvariance(t *testing.T) {
	defer failpoint.Disable()
	c, tests, baseline := faultScenario(t, 3)
	sess := cnf.BuildDiag(c, tests, cnf.DiagOptions{MaxK: 2})

	schedules := []string{
		"cnf/cube=error(1)x1",
		"cnf/cube=cancel(1)x2",
		"cnf/cube=panic(1)x1",
		"cnf/cube=panic(1)x2",
		"cnf/cube=error(0.4)x4;cnf/cube=delay(1ms,0.3)",
		"cnf/cube=panic(0.3)x2;cnf/cube=error(0.3)x3",
		"cnf/cube=cancel(0.5)x3;cnf/cube=panic(0.2)x1",
		"cnf/cube=panic(1)x8", // can kill every worker: must degrade, not corrupt
	}
	completed, degraded := 0, 0
	for _, spec := range schedules {
		for seed := int64(1); seed <= 4; seed++ {
			if err := failpoint.Enable(spec, seed); err != nil {
				t.Fatal(err)
			}
			sols, complete, per, err := sess.EnumerateSharded(4, cnf.RoundOptions{MaxK: 2, SampleCap: 1})
			hits := failpoint.Hits(cnf.FailpointCube)
			failpoint.Disable()
			if err != nil {
				t.Fatalf("%s seed %d: %v", spec, seed, err)
			}
			panics, retries, _, abandoned := faultCounters(per)
			if panics != hits.Panics {
				t.Fatalf("%s seed %d: %d panics recovered, %d injected", spec, seed, panics, hits.Panics)
			}
			if retries+abandoned != hits.Failures() {
				t.Fatalf("%s seed %d: retries %d + abandoned %d != injected failures %d",
					spec, seed, retries, abandoned, hits.Failures())
			}
			if abandoned > 0 && complete {
				t.Fatalf("%s seed %d: complete=true with %d abandoned cubes", spec, seed, abandoned)
			}
			if complete {
				completed++
				if !reflect.DeepEqual(sols, baseline) {
					t.Fatalf("%s seed %d: complete run diverged from fault-free baseline:\n got %v\nwant %v",
						spec, seed, sols, baseline)
				}
			} else {
				degraded++
			}
		}
	}
	// The suite must exercise both outcomes: runs that complete despite
	// faults (retry/steal recovered them) and runs that degrade.
	if completed == 0 {
		t.Fatal("no faulted run completed — retry/requeue never recovered")
	}
	if degraded == 0 {
		t.Log("note: every faulted run completed (no degradation exercised)")
	}

	// The parent session survives any schedule: a fault-free run on the
	// same session is still byte-identical to the baseline.
	after, complete, _, err := sess.EnumerateSharded(1, cnf.RoundOptions{MaxK: 2})
	if err != nil || !complete {
		t.Fatalf("parent session unusable after fault schedules: complete=%v err=%v", complete, err)
	}
	if !reflect.DeepEqual(after, baseline) {
		t.Fatalf("parent session corrupted by fault schedules:\n got %v\nwant %v", after, baseline)
	}
}

// TestRunCubesRetriesTransientFailures: with a single worker and two
// injected transient failures, the failed attempts are requeued to the
// same worker and the phase still drains — deterministically.
func TestRunCubesRetriesTransientFailures(t *testing.T) {
	defer failpoint.Disable()
	c, tests, sample := faultScenario(t, 2)
	sess := cnf.BuildDiag(c, tests, cnf.DiagOptions{MaxK: 2})
	if err := failpoint.Enable("cnf/cube=error(1)x2", 7); err != nil {
		t.Fatal(err)
	}
	ran := 0
	_, stats, drained := sess.RunCubes(1, cnf.RoundOptions{MaxK: 2}, sample, true,
		func(_ int, _ *cnf.Shard, _ cnf.Cube, _ cnf.RoundOptions) ([][]int, bool) {
			ran++
			return nil, true
		})
	if !drained {
		t.Fatalf("phase did not drain: %+v", stats)
	}
	if stats[0].Retries != 2 || stats[0].Abandoned != 0 || stats[0].Panics != 0 {
		t.Fatalf("counters: %+v, want exactly 2 retries", stats[0])
	}
	if !stats[0].Complete {
		t.Fatal("retried worker reported incomplete")
	}
	if ran != stats[0].Cubes {
		t.Fatalf("run executed %d times but %d cubes served", ran, stats[0].Cubes)
	}
}

// TestRunCubesAbandonsAfterRetryBudget: with retries disabled
// (MaxCubeRetries < 0), a single injected failure abandons its cube
// immediately and the phase reports not drained.
func TestRunCubesAbandonsAfterRetryBudget(t *testing.T) {
	defer failpoint.Disable()
	c, tests, sample := faultScenario(t, 2)
	sess := cnf.BuildDiag(c, tests, cnf.DiagOptions{MaxK: 2})
	if err := failpoint.Enable("cnf/cube=error(1)x1", 7); err != nil {
		t.Fatal(err)
	}
	_, stats, drained := sess.RunCubes(1, cnf.RoundOptions{MaxK: 2, MaxCubeRetries: -1}, sample, true,
		func(_ int, _ *cnf.Shard, _ cnf.Cube, _ cnf.RoundOptions) ([][]int, bool) {
			return nil, true
		})
	if drained {
		t.Fatal("phase drained despite an abandoned cube")
	}
	if stats[0].Retries != 0 || stats[0].Abandoned != 1 {
		t.Fatalf("counters: %+v, want 0 retries + 1 abandoned", stats[0])
	}
	if stats[0].Complete {
		t.Fatal("worker with an abandoned cube reported complete")
	}
}

// TestRunCubesPanicKillsWorkerAndSurvivorsDrain: with two workers and
// exactly one injected panic, the dying worker requeues its cube and
// the survivor steals and drains everything. This holds even on a
// single-core run where the GOMAXPROCS semaphore serializes the
// workers: the survivor simply runs after the victim has died.
func TestRunCubesPanicKillsWorkerAndSurvivorsDrain(t *testing.T) {
	defer failpoint.Disable()
	c, tests, sample := faultScenario(t, 2)
	sess := cnf.BuildDiag(c, tests, cnf.DiagOptions{MaxK: 2})
	if err := failpoint.Enable("cnf/cube=panic(1)x1", 7); err != nil {
		t.Fatal(err)
	}
	_, stats, drained := sess.RunCubes(2, cnf.RoundOptions{MaxK: 2}, sample, true,
		func(_ int, _ *cnf.Shard, _ cnf.Cube, _ cnf.RoundOptions) ([][]int, bool) {
			return nil, true
		})
	if !drained {
		t.Fatalf("survivor did not drain the dead worker's cubes: %+v", stats)
	}
	panics, retries, _, abandoned := faultCounters(stats)
	if panics != 1 || retries != 1 || abandoned != 0 {
		t.Fatalf("counters: panics=%d retries=%d abandoned=%d, want 1/1/0", panics, retries, abandoned)
	}
	for _, st := range stats {
		if !st.Complete {
			t.Fatalf("worker %d incomplete after recovered panic: %+v", st.Shard, st)
		}
	}
}

// TestRunCubesAllWorkersDead: when every worker dies the leftover cubes
// are stranded and the phase must report not drained — the all-dead
// case per-worker Complete flags alone cannot detect.
func TestRunCubesAllWorkersDead(t *testing.T) {
	defer failpoint.Disable()
	c, tests, sample := faultScenario(t, 2)
	sess := cnf.BuildDiag(c, tests, cnf.DiagOptions{MaxK: 2})
	// Unlimited panics: every attempt panics until both workers are dead.
	if err := failpoint.Enable("cnf/cube=panic(1)", 7); err != nil {
		t.Fatal(err)
	}
	_, stats, drained := sess.RunCubes(2, cnf.RoundOptions{MaxK: 2}, sample, true,
		func(_ int, _ *cnf.Shard, _ cnf.Cube, _ cnf.RoundOptions) ([][]int, bool) {
			return nil, true
		})
	if drained {
		t.Fatal("phase drained with every worker dead")
	}
	panics, _, _, _ := faultCounters(stats)
	if panics != len(stats) {
		t.Fatalf("%d panics across %d workers, want one each", panics, len(stats))
	}
}

// TestRunCubesStealsFromStraggler: a worker stuck on a slow cube has
// its pending cubes stolen by the idle sibling. GOMAXPROCS is raised to
// 2 for the duration so both workers hold semaphore slots concurrently
// even on a single-core machine.
func TestRunCubesStealsFromStraggler(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(2))
	c, tests, _ := faultScenario(t, 2)
	sess := cnf.BuildDiag(c, tests, cnf.DiagOptions{MaxK: 2})
	// A synthetic sample with a balanced pivot so PlanCubes yields
	// several cubes spread over both workers.
	cands := sess.Candidates
	if len(cands) < 4 {
		t.Skip("too few candidates")
	}
	var sample [][]int
	for i := 0; i < 8; i++ {
		s := []int{cands[i%4], cands[4+i%(len(cands)-4)]}
		sort.Ints(s)
		sample = append(sample, s)
	}
	var straggled atomic.Bool
	_, stats, drained := sess.RunCubes(2, cnf.RoundOptions{MaxK: 2}, sample, true,
		func(_ int, _ *cnf.Shard, _ cnf.Cube, _ cnf.RoundOptions) ([][]int, bool) {
			if straggled.CompareAndSwap(false, true) {
				// Only the very first served cube straggles.
				time.Sleep(150 * time.Millisecond)
			}
			return nil, true
		})
	if !drained {
		t.Fatalf("straggler phase did not drain: %+v", stats)
	}
	if _, _, steals, _ := faultCounters(stats); steals == 0 {
		t.Skip("no steal occurred (scheduler served the straggler last)")
	}
}
