package cnf_test

import (
	"context"
	"fmt"
	"reflect"
	"runtime"
	"sort"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/sat"
	"repro/internal/tgen"
)

// shardScenario is sessionScenario without skipping: it scans seeds for
// a detectable fault so table-driven shard tests always run.
func shardScenario(t *testing.T, start int64, m int) (*circuit.Circuit, circuit.TestSet) {
	t.Helper()
	for seed := start; seed < start+30; seed++ {
		golden, err := gen.Generate(gen.Spec{Name: "shard", Inputs: 6, Outputs: 3, Gates: 40, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		faulty, _, err := faults.Inject(golden, faults.Options{Count: 2, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		tests, err := tgen.Random(golden, faulty, tgen.Options{Count: m, Seed: seed, MaxPatterns: 1 << 12})
		if err == tgen.ErrUndetected {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		return faulty, tests
	}
	t.Fatalf("no detectable scenario from seed %d", start)
	return nil, nil
}

// shardedKeys enumerates a sharded round to completion and returns the
// merged solutions as canonical key strings (preserving merge order).
// SampleCap 1 forces the fork path even on small solution spaces.
func shardedKeys(t *testing.T, sess *cnf.DiagSession, shards int, opts cnf.RoundOptions) []string {
	t.Helper()
	sols, complete, per, err := sess.EnumerateSharded(shards, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !complete {
		t.Fatalf("sharded enumeration (%d shards) incomplete without budgets", shards)
	}
	if len(per) == 0 {
		t.Fatalf("no per-stage stats for %d shards", shards)
	}
	keys := make([]string, len(sols))
	for i, s := range sols {
		keys[i] = fmt.Sprint(s)
	}
	return keys
}

// TestShardedMatchesMonolithic: for any shard count, the merged sharded
// enumeration must equal the monolithic round's solution set — and the
// output order must be identical across shard counts (canonical merge).
// SampleCap 1 forces real forking even on small spaces.
func TestShardedMatchesMonolithic(t *testing.T) {
	for _, start := range []int64{1, 40, 80} {
		c, tests := shardScenario(t, start, 6)
		sess := cnf.BuildDiag(c, tests, cnf.DiagOptions{MaxK: 2})

		mono := roundKeys(t, sess, cnf.RoundOptions{MaxK: 2})
		base := shardedKeys(t, sess, 1, cnf.RoundOptions{MaxK: 2})
		asSet := append([]string(nil), base...)
		sort.Strings(asSet)
		if !sameKeys(asSet, mono) {
			t.Fatalf("start %d: sharded(1) %v != monolithic %v", start, asSet, mono)
		}
		for _, n := range []int{2, 3, 4, 7} {
			for _, sample := range []int{1, 2, 64} {
				got := shardedKeys(t, sess, n, cnf.RoundOptions{MaxK: 2, SampleCap: sample})
				if !reflect.DeepEqual(got, base) {
					t.Fatalf("start %d shards %d sample %d: %v != shards 1 %v", start, n, sample, got, base)
				}
			}
		}
	}
}

// TestShardedMixedConfigs: shard workers running different search
// configurations (cyclically assigned via RoundOptions.WorkerConfigs)
// must produce the exact same merged solution list as the single-shard
// default run — configurations are trajectory-only, so a heterogeneous
// worker fleet cannot change what is enumerated, only how fast.
func TestShardedMixedConfigs(t *testing.T) {
	mixes := map[string][]sat.SearchConfig{
		"default+gen2": {sat.DefaultConfig(), sat.Gen2Config()},
		"all-gen2":     {sat.Gen2Config()},
	}
	for _, start := range []int64{1, 40} {
		c, tests := shardScenario(t, start, 6)
		sess := cnf.BuildDiag(c, tests, cnf.DiagOptions{MaxK: 2})
		base := shardedKeys(t, sess, 1, cnf.RoundOptions{MaxK: 2})
		for name, cfgs := range mixes {
			for _, n := range []int{2, 3, 5} {
				got := shardedKeys(t, sess, n, cnf.RoundOptions{MaxK: 2, SampleCap: 1, WorkerConfigs: cfgs})
				if !reflect.DeepEqual(got, base) {
					t.Fatalf("start %d mix %s shards %d: %v != default %v", start, name, n, got, base)
				}
			}
		}
	}
}

// TestShardedParentUnaffected: forking and running shards must leave the
// parent session fully usable with an unchanged solution space.
func TestShardedParentUnaffected(t *testing.T) {
	c, tests := shardScenario(t, 3, 6)
	sess := cnf.BuildDiag(c, tests, cnf.DiagOptions{MaxK: 2})
	before := roundKeys(t, sess, cnf.RoundOptions{MaxK: 2})
	if _, complete, _, err := sess.EnumerateSharded(3, cnf.RoundOptions{MaxK: 2, SampleCap: 1}); err != nil || !complete {
		t.Fatal("sharded run incomplete")
	}
	after := roundKeys(t, sess, cnf.RoundOptions{MaxK: 2})
	if !sameKeys(before, after) {
		t.Fatalf("parent session changed by sharded run: %v != %v", after, before)
	}
}

// TestShardCubesAreDisjoint: no solution may be reported by two shards
// of one fork — the cubes partition the projected solution space.
func TestShardCubesAreDisjoint(t *testing.T) {
	c, tests := shardScenario(t, 5, 6)
	sess := cnf.BuildDiag(c, tests, cnf.DiagOptions{MaxK: 2})

	// Collect the full space once to plan cubes from real frequencies.
	var sample [][]int
	sess.EnumerateRound(cnf.RoundOptions{MaxK: 2}, func(_ int, gates []int) bool {
		g := append([]int(nil), gates...)
		sort.Ints(g)
		sample = append(sample, g)
		return true
	})

	for _, plan := range [][][]int{nil, sample} { // staircase and sampled cubes
		seen := make(map[string]int)
		total := 0
		cubes := sess.PlanCubes(plan, 3)
		for i, sh := range sess.ForkWorkers(cnf.ScheduleCubes(cubes, 3), true) {
			for _, cube := range sh.Cubes {
				_, complete, _ := sh.Session.EnumerateRound(cnf.RoundOptions{MaxK: 2, ExtraAssumps: cube.Assumps}, func(_ int, gates []int) bool {
					g := append([]int(nil), gates...)
					sort.Ints(g)
					key := fmt.Sprint(g)
					if prev, dup := seen[key]; dup {
						t.Fatalf("solution %s found by shards %d and %d", key, prev, i)
					}
					seen[key] = i
					total++
					return true
				})
				if !complete {
					t.Fatalf("shard %d incomplete without budgets", i)
				}
			}
		}
		if total < len(sample) {
			t.Fatalf("cubes cover %d of %d solutions", total, len(sample))
		}
	}
}

// TestShardedExtraAssumpsHonored: caller-supplied ExtraAssumps must
// confine the workers' residual enumeration, not just the sample stage.
func TestShardedExtraAssumpsHonored(t *testing.T) {
	c, tests := shardScenario(t, 9, 6)
	sess := cnf.BuildDiag(c, tests, cnf.DiagOptions{MaxK: 2})
	// Restrict to solutions avoiding the first candidate's select line.
	extra := []sat.Lit{sess.Sels[0].Neg()}
	mono := roundKeys(t, sess, cnf.RoundOptions{MaxK: 2, ExtraAssumps: extra})
	got := shardedKeys(t, sess, 3, cnf.RoundOptions{MaxK: 2, ExtraAssumps: extra, SampleCap: 1})
	asSet := append([]string(nil), got...)
	sort.Strings(asSet)
	if !sameKeys(asSet, mono) {
		t.Fatalf("sharded with ExtraAssumps %v != monolithic %v", asSet, mono)
	}
}

// TestShardedCancellation: a cancelled context surfaces as an incomplete
// sharded round.
func TestShardedCancellation(t *testing.T) {
	c, tests := shardScenario(t, 3, 6)
	sess := cnf.BuildDiag(c, tests, cnf.DiagOptions{MaxK: 2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sols, complete, _, err := sess.EnumerateSharded(2, cnf.RoundOptions{MaxK: 2, Ctx: ctx, SampleCap: 1})
	if err != nil {
		t.Fatal(err)
	}
	if complete || len(sols) != 0 {
		t.Fatalf("cancelled sharded round: complete=%v solutions=%d", complete, len(sols))
	}
}

// TestMergeHelpers: canonical sort and cross-shard superset removal.
func TestMergeHelpers(t *testing.T) {
	merged := cnf.MergeShardSolutions([][][]int{
		{{4, 9}, {3}},
		{{2, 7}, {3, 5}, {1, 2, 7}},
	})
	want := [][]int{{3}, {2, 7}, {4, 9}}
	if !reflect.DeepEqual(merged, want) {
		t.Fatalf("merged %v, want %v", merged, want)
	}
}

// TestPlanCubesBalanced: with a skewed sample the planner must split on
// the dominant candidate instead of staircasing blindly.
func TestPlanCubesBalanced(t *testing.T) {
	c, tests := shardScenario(t, 7, 6)
	sess := cnf.BuildDiag(c, tests, cnf.DiagOptions{MaxK: 2})
	cands := sess.Candidates
	if len(cands) < 4 {
		t.Skip("too few candidates")
	}
	hot := cands[len(cands)/2]
	var sample [][]int
	for i := 0; i < 10; i++ {
		s := []int{hot, cands[i%3]}
		sort.Ints(s)
		sample = append(sample, s)
	}
	sample = append(sample, []int{cands[3]})
	cubes := sess.PlanCubes(sample, 2)
	if len(cubes) != 2 {
		t.Fatalf("%d cubes for n=2", len(cubes))
	}
	// One cube must pivot on a sampled candidate (positive literal), the
	// other on its negation, with the sampled loads recorded as weights.
	a, b := cubes[0].Assumps, cubes[1].Assumps
	if len(a) != 1 || len(b) != 1 || a[0] != b[0].Neg() {
		t.Fatalf("unexpected cube shapes: %v / %v", a, b)
	}
	if cubes[0].Weight+cubes[1].Weight != len(sample) {
		t.Fatalf("cube weights %d+%d != sample %d", cubes[0].Weight, cubes[1].Weight, len(sample))
	}
}

// TestScheduleCubes: longest-first assignment onto the least-loaded
// worker, deterministic.
func TestScheduleCubes(t *testing.T) {
	cubes := []cnf.Cube{{Weight: 10}, {Weight: 1}, {Weight: 7}, {Weight: 3}, {Weight: 2}}
	workers := cnf.ScheduleCubes(cubes, 2)
	if len(workers) != 2 {
		t.Fatalf("%d workers", len(workers))
	}
	sum := func(cs []cnf.Cube) int {
		n := 0
		for _, c := range cs {
			n += c.Weight
		}
		return n
	}
	a, b := sum(workers[0]), sum(workers[1])
	if a+b != 23 || a < 10 || b < 10 {
		t.Fatalf("unbalanced schedule: %d vs %d", a, b)
	}
}

// TestShardedCancellationReleasesWorkers is the goleak-style hygiene
// check for the worker paths: a cancelled sharded enumeration must not
// strand worker goroutines (they all drain through wg.Wait) and must
// drop every cloned solver promptly (Shard.Release nils the references
// as each worker exits). Goroutines are counted before and after with a
// settle loop, so unrelated runtime goroutines do not flake the test.
func TestShardedCancellationReleasesWorkers(t *testing.T) {
	c, tests := shardScenario(t, 5, 6)
	sess := cnf.BuildDiag(c, tests, cnf.DiagOptions{MaxK: 2})

	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, complete, _, _ := sess.EnumerateSharded(4, cnf.RoundOptions{MaxK: 2, Ctx: ctx, SampleCap: 1})
		if complete {
			t.Fatalf("iteration %d: cancelled run reported complete", i)
		}
	}
	// Workers exit through wg.Wait before EnumerateSharded returns; give
	// the runtime a few scheduling rounds to reap the exited goroutines.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.Gosched()
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after cancelled sharded runs",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestShardReleaseDropsClone: Release must clear the cloned session so
// a worker's solver memory is collectable independent of the fork slice.
func TestShardReleaseDropsClone(t *testing.T) {
	c, tests := shardScenario(t, 11, 4)
	sess := cnf.BuildDiag(c, tests, cnf.DiagOptions{MaxK: 2})
	shards := sess.Fork(2, true)
	for _, sh := range shards {
		if sh.Session == nil {
			t.Fatal("fresh shard has no session")
		}
		sh.Release()
		sh.Release() // idempotent
		if sh.Session != nil || sh.Cubes != nil {
			t.Fatal("Release left references behind")
		}
	}
	// The parent session must stay fully usable.
	if got := roundKeys(t, sess, cnf.RoundOptions{MaxK: 2}); got == nil {
		t.Log("no solutions (fine) — session still usable")
	}
}
