package cnf

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/circuit"
	"repro/internal/logic"
	"repro/internal/sat"
	"repro/internal/sim"
	"repro/internal/trace"
)

// DiagSession is a long-lived diagnosis SAT instance: one solver that
// accumulates constrained circuit copies incrementally (AddTest) while
// the select lines and the cardinality ladder are shared across all
// copies. Everything that used to force a rebuild is an assumption
// instead:
//
//   - size limits come from the ladder (AtMost),
//   - candidate restriction from RestrictAssumps (select lines of
//     excluded candidates assumed off),
//   - test-set scoping, for sessions built with GuardTests, from
//     ActivationAssumps (per-copy guard literals),
//   - and enumeration blocking clauses carry a per-round guard literal,
//     so retiring the round (Round.Retire) retracts them all and leaves
//     the solver reusable for the next query.
//
// BuildDiag remains as the monolithic constructor (NewSession + AddTests
// in one call); Instance is an alias of DiagSession, so the two views
// are the same object. A DiagSession is not safe for concurrent use.
type DiagSession struct {
	// Solver is the SAT backend behind the session. It is the built-in
	// CDCL solver by default; DiagOptions.Backend swaps in another
	// implementation, and Fork clones it per enumeration shard.
	Solver  sat.Backend
	Circuit *circuit.Circuit
	// Tests lists the encoded test copies in AddTest order.
	Tests circuit.TestSet
	// Candidates labels the selection units reported in corrections: one
	// entry per select line. For plain diagnosis these are the candidate
	// gate IDs; for grouped (sequential) diagnosis, the group labels.
	Candidates []int
	Sels       []sat.Lit // select literal per candidate/group
	Ladder     *Ladder

	// GateVars[i][g] is the output variable of gate g in test copy i, or
	// NoVar when the gate is outside the encoded cone of copy i.
	GateVars [][]sat.Var
	// CorrVars[i][g] is the free correction value injected at gate g in
	// test copy i, or NoVar when g has no multiplexer in that copy.
	CorrVars [][]sat.Var
	// TestGuards holds the per-copy activation literal of sessions built
	// with DiagOptions.GuardTests (nil otherwise): a copy's input/output
	// constraints only bind while its guard is assumed true.
	TestGuards []sat.Lit

	selIndex map[int]int // gate ID -> select position
	opts     DiagOptions
	golden   *sim.Simulator
	// BuildTime accumulates the encoding time across NewSession and
	// every AddTest (the Table 1/2 "CNF" column for monolithic builds).
	BuildTime time.Duration

	// Lifetime counters behind Stats(): enumeration rounds opened and
	// retired on this session, and how many of those rounds installed a
	// finite solver budget (conflict cap or deadline).
	rounds, retiredRounds, budgetedRounds int
}

// SessionStats is a point-in-time snapshot of a session's accumulated
// SAT cost, exposed so long-lived holders (the diagnosis server's
// /metrics endpoint in particular) can report per-session work without
// reaching into session or solver internals.
type SessionStats struct {
	// Vars and Clauses size the live instance (select lines, ladder,
	// every encoded copy, plus round guards and blocking clauses).
	Vars, Clauses int
	// Copies is the number of encoded test copies; Candidates the number
	// of select lines; LadderWidth the largest enforceable "at most k"
	// plus one (0 when the ladder is degenerate).
	Copies, Candidates, LadderWidth int
	// BuildTime is the total encoding time (NewSession + every AddTest).
	BuildTime time.Duration
	// Rounds counts enumeration rounds opened; RetiredRounds those whose
	// blocking clauses have been retracted; BudgetedRounds the rounds
	// that ran under a finite conflict or wall-clock budget.
	Rounds, RetiredRounds, BudgetedRounds int
	// Solver holds the backend's accumulated work counters.
	Solver sat.Stats
}

// Stats snapshots the session's size and cost counters. Like every
// other session method it must not race with concurrent session use.
func (sess *DiagSession) Stats() SessionStats {
	vars, clauses := sess.Size()
	return SessionStats{
		Vars:           vars,
		Clauses:        clauses,
		Copies:         len(sess.Tests),
		Candidates:     len(sess.Sels),
		LadderWidth:    sess.Ladder.Width(),
		BuildTime:      sess.BuildTime,
		Rounds:         sess.rounds,
		RetiredRounds:  sess.retiredRounds,
		BudgetedRounds: sess.budgetedRounds,
		Solver:         sess.Solver.Statistics(),
	}
}

// NewSession creates an empty diagnosis session: select lines and the
// cardinality ladder are encoded up front (they only depend on the
// candidate set and MaxK), test copies are appended later with AddTest.
func NewSession(c *circuit.Circuit, opts DiagOptions) *DiagSession {
	start := time.Now()
	var s sat.Backend = opts.Backend
	if s == nil {
		s = sat.New()
	}
	if opts.Search != (sat.SearchConfig{}) {
		s.SetSearchConfig(opts.Search)
	}
	if opts.Recorder != nil {
		s.SetRecorder(opts.Recorder)
	}

	// Normalize the selection units to groups with labels.
	groups := opts.Groups
	labels := opts.GroupLabels
	if groups == nil {
		cands := opts.Candidates
		if cands == nil {
			cands = c.InternalGates()
		} else {
			cands = append([]int(nil), cands...)
			sort.Ints(cands)
		}
		groups = make([][]int, len(cands))
		for j, g := range cands {
			groups[j] = []int{g}
		}
		labels = cands
	} else if labels == nil {
		labels = make([]int, len(groups))
		for j, grp := range groups {
			min := grp[0]
			for _, g := range grp {
				if g < min {
					min = g
				}
			}
			labels[j] = min
		}
	}
	sess := &DiagSession{
		Solver:     s,
		Circuit:    c,
		Candidates: labels,
		Sels:       make([]sat.Lit, len(groups)),
		selIndex:   make(map[int]int),
		opts:       opts,
	}
	// Select variables are allocated consecutively; gatesOf relies on it.
	for j, grp := range groups {
		sess.Sels[j] = sat.PosLit(s.NewVar())
		for _, g := range grp {
			sess.selIndex[g] = j
		}
	}
	if opts.Golden != nil {
		sess.golden = sim.New(opts.Golden)
	}
	maxK := opts.MaxK
	if maxK <= 0 {
		maxK = 1
	}
	ladder, err := AddLadder(s, sess.Sels, maxK, opts.Encoding)
	if err != nil {
		// An out-of-range encoding value is a programming error (the HTTP
		// layer validates encoding names before building DiagOptions), but
		// a shared server must degrade, not crash: fall back to the
		// default encoding, which is valid for every ladder shape.
		ladder, _ = AddLadder(s, sess.Sels, maxK, SeqCounter)
	}
	sess.Ladder = ladder
	sess.BuildTime += time.Since(start)
	return sess
}

// AddTest appends one constrained circuit copy for the test and returns
// its copy index. The copy shares the session's select lines; only its
// gate and correction-value variables are fresh. Sessions with
// GuardTests attach the copy's constraints to a fresh guard literal
// instead of asserting them, so the copy can be scoped per round.
func (sess *DiagSession) AddTest(t circuit.Test) int {
	start := time.Now()
	s := sess.Solver
	c := sess.Circuit

	var guard sat.Lit
	constrain := func(l sat.Lit) {
		if sess.opts.GuardTests {
			s.AddClause(guard.Neg(), l)
		} else {
			s.AddClause(l)
		}
	}
	if sess.opts.GuardTests {
		guard = sat.PosLit(s.NewVar())
		sess.TestGuards = append(sess.TestGuards, guard)
	}

	inCone := coneFor(c, t, sess.opts, sess.golden != nil)
	gateVars := make([]sat.Var, len(c.Gates))
	corrVars := make([]sat.Var, len(c.Gates))
	for g := range gateVars {
		gateVars[g] = NoVar
		corrVars[g] = NoVar
	}
	for g := range c.Gates {
		if inCone != nil && !inCone[g] {
			continue
		}
		gate := &c.Gates[g]
		y := s.NewVar()
		gateVars[g] = y
		if gate.Kind == logic.Input {
			// Constrain to the test-vector value.
			pos := c.InputPos(g)
			constrain(sat.MkLit(y, !t.Vector[pos]))
			continue
		}
		fan := make([]sat.Lit, len(gate.Fanin))
		for fi, f := range gate.Fanin {
			fan[fi] = sat.PosLit(gateVars[f])
		}
		if j, isCand := sess.selIndex[g]; isCand {
			z := sat.PosLit(s.NewVar())
			EncodeGate(s, gate, z, fan)
			cv := s.NewVar()
			corrVars[g] = cv
			EncodeMux(s, sat.PosLit(y), sess.Sels[j], sat.PosLit(cv), z)
			if sess.opts.ForceZero {
				// ¬sel -> ¬c
				s.AddClause(sess.Sels[j], sat.NegLit(cv))
			}
		} else {
			EncodeGate(s, gate, sat.PosLit(y), fan)
		}
	}
	i := len(sess.Tests)
	sess.Tests = append(sess.Tests, t)
	sess.GateVars = append(sess.GateVars, gateVars)
	sess.CorrVars = append(sess.CorrVars, corrVars)

	// Constrain the erroneous output to its correct value.
	constrain(sat.MkLit(gateVars[t.Output], !t.Want))

	// Optionally constrain every other output to the golden value.
	if sess.golden != nil {
		sess.golden.RunVector(t.Vector)
		for _, o := range sess.opts.Golden.Outputs {
			if o == t.Output || gateVars[o] == NoVar {
				continue
			}
			constrain(sat.MkLit(gateVars[o], !sess.golden.OutputBit(o)))
		}
	}
	sess.BuildTime += time.Since(start)
	return i
}

// AddTests appends one copy per test.
func (sess *DiagSession) AddTests(tests circuit.TestSet) {
	for _, t := range tests {
		sess.AddTest(t)
	}
}

// NumTests returns the number of encoded test copies.
func (sess *DiagSession) NumTests() int { return len(sess.Tests) }

// SelLit returns the select literal of the given candidate gate.
func (sess *DiagSession) SelLit(gate int) (sat.Lit, bool) {
	j, ok := sess.selIndex[gate]
	if !ok {
		return sat.LitUndef, false
	}
	return sess.Sels[j], true
}

// CandidateIndex returns the candidate position of a gate ID.
func (sess *DiagSession) CandidateIndex(gate int) (int, bool) {
	j, ok := sess.selIndex[gate]
	return j, ok
}

// AtMost returns the assumption slice enforcing that at most k
// corrections are selected (empty when no constraint is needed).
func (sess *DiagSession) AtMost(k int) []sat.Lit {
	l := sess.Ladder.AtMost(k)
	if l == sat.LitUndef {
		return nil
	}
	return []sat.Lit{l}
}

// CanBound reports whether the session can enforce "at most k": either
// the ladder was built wide enough (MaxK >= k at NewSession), or k
// meets or exceeds the number of select lines so no constraint is
// needed. Reusing a session with a larger k than it was built for
// would silently drop the bound; callers must check.
func (sess *DiagSession) CanBound(k int) bool {
	return k >= len(sess.Sels) || k < sess.Ladder.Width()
}

// RestrictAssumps returns the assumptions confining corrections to the
// given candidate labels: the select line of every other candidate is
// assumed off. This replaces the per-subset instance rebuilds of the
// two-pass and scoped heuristics — the solution space over the restricted
// selects is identical to an instance built with Candidates = cands,
// because an unselected multiplexer passes its gate function through.
func (sess *DiagSession) RestrictAssumps(cands []int) []sat.Lit {
	allowed := make(map[int]bool, len(cands))
	for _, g := range cands {
		allowed[g] = true
	}
	var out []sat.Lit
	for j, label := range sess.Candidates {
		if !allowed[label] {
			out = append(out, sess.Sels[j].Neg())
		}
	}
	return out
}

// ActivationAssumps returns the assumptions activating exactly the given
// test copies (by index; nil = all copies) of a GuardTests session:
// active guards assumed true, all others assumed false so their
// constraint clauses are satisfied and the copies become don't-cares.
func (sess *DiagSession) ActivationAssumps(active []int) []sat.Lit {
	if sess.TestGuards == nil {
		return nil
	}
	out := make([]sat.Lit, len(sess.TestGuards))
	if active == nil {
		copy(out, sess.TestGuards)
		return out
	}
	on := make([]bool, len(sess.TestGuards))
	for _, i := range active {
		on[i] = true
	}
	for i, g := range sess.TestGuards {
		if on[i] {
			out[i] = g
		} else {
			out[i] = g.Neg()
		}
	}
	return out
}

// ModelGates returns the candidate labels whose select lines are true in
// the solver's current model (valid after a StatusSat Solve).
func (sess *DiagSession) ModelGates() []int {
	var gates []int
	for j, l := range sess.Sels {
		if sess.Solver.ValueLit(l) == sat.LTrue {
			gates = append(gates, sess.Candidates[j])
		}
	}
	return gates
}

// gatesOf maps projected select literals back to candidate labels.
func (sess *DiagSession) gatesOf(trueLits []sat.Lit) []int {
	base := sess.Sels[0].Var()
	gates := make([]int, len(trueLits))
	for i, l := range trueLits {
		gates[i] = sess.Candidates[int(l.Var()-base)]
	}
	return gates
}

// Size reports instance dimensions for the Table 1/Table 2 "CNF" columns.
func (sess *DiagSession) Size() (vars, clauses int) {
	return sess.Solver.NumVars(), sess.Solver.NumClauses()
}

// Round scopes one enumeration episode on a live session. Blocking
// clauses added through the round carry the negation of its guard
// literal; Retire asserts the guard false, retracting them all so the
// session can serve the next round (or direct Solve queries) with a
// clean solution space.
type Round struct {
	sess    *DiagSession
	guard   sat.Lit
	retired bool
}

// NewRound opens an enumeration round.
func (sess *DiagSession) NewRound() *Round {
	sess.rounds++
	return &Round{sess: sess, guard: sat.PosLit(sess.Solver.NewVar())}
}

// Guard returns the round's activation literal; pass it as an assumption
// to every Solve of the round.
func (r *Round) Guard() sat.Lit { return r.guard }

// BlockSubset adds a guarded blocking clause forbidding the given gate
// set and all its supersets for the remainder of the round.
func (r *Round) BlockSubset(gates []int) {
	clause := make([]sat.Lit, 0, len(gates)+1)
	clause = append(clause, r.guard.Neg())
	for _, g := range gates {
		if l, ok := r.sess.SelLit(g); ok {
			clause = append(clause, l.Neg())
		}
	}
	r.sess.Solver.AddClause(clause...)
}

// Retire ends the round, retracting its blocking clauses. Idempotent.
func (r *Round) Retire() {
	if r.retired {
		return
	}
	r.retired = true
	r.sess.retiredRounds++
	r.sess.Solver.AddClause(r.guard.Neg())
}

// RoundOptions configures one EnumerateRound episode.
type RoundOptions struct {
	// MaxK runs the Figure 3 limit loop for k = 1..MaxK (minimum 1).
	MaxK int
	// Ctx, when non-nil, cancels the round cooperatively: cancellation
	// surfaces as an incomplete round, promptly even mid-search.
	Ctx context.Context
	// ExtraAssumps are appended to every Solve of the round. Sharded
	// enumeration passes the shard's cube and the sample round's guard
	// here — the assumption-scoped slice restriction.
	ExtraAssumps []sat.Lit
	// SampleCap bounds the sequential sample stage of EnumerateSharded
	// (0 = the default of 64 solutions). Ignored by EnumerateRound.
	SampleCap int
	// Restrict confines corrections to these candidate labels via
	// assumptions (nil = all session candidates).
	Restrict []int
	// ActiveTests scopes a GuardTests session to these copy indices
	// (nil = all copies). Ignored for unguarded sessions.
	ActiveTests []int
	// MaxSolutions caps total enumerated corrections (0 = unlimited).
	MaxSolutions int
	// MaxConflicts is the per-Solve conflict budget (0 = unlimited).
	MaxConflicts int64
	// Timeout bounds the whole round (0 = unlimited).
	Timeout time.Duration
	// MaxCubeRetries bounds how often one cube of a sharded run may be
	// retried after a worker panic or an injected transient failure
	// (0 = DefaultCubeRetries, negative = no retries). Ignored by
	// EnumerateRound. A cube that exhausts its retries is abandoned and
	// the run reports complete=false.
	MaxCubeRetries int
	// WorkerConfigs, when non-empty, assigns search configurations to the
	// forked shard workers cyclically (worker i runs WorkerConfigs[i %
	// len]). Configurations change only the search trajectory, never the
	// solution set, so a mixed-config sharded run still merges to the
	// canonical monolithic answer. Ignored by EnumerateRound.
	WorkerConfigs []sat.SearchConfig
	// Enum selects the enumeration mode of every EnumerateProjected call
	// in the round (sat.EnumLegacy or sat.EnumProjected). The zero value
	// falls back to the session default (DiagOptions.Enum). Like search
	// configurations, the mode is trajectory-only under the ladder
	// discipline: the canonical solution set is identical.
	Enum sat.EnumMode
}

// ErrLadderWidth reports a round limit the session's ladder cannot
// enforce. It used to be a panic; as user input (a request's K) reaches
// this check through the diagnosis service, it is a returned error the
// HTTP layer maps to a 400.
var ErrLadderWidth = errors.New("cnf: round limit exceeds the session's ladder width (rebuild the session with a larger MaxK)")

// EnumerateRound runs the paper's Figure 3 enumeration as one guarded
// round on the live session: for limits k = 1..MaxK it enumerates all
// solutions projected onto the select lines, blocking each solution
// (and its supersets) for the rest of the round. fn receives the limit
// and the candidate labels of each solution and may stop the round by
// returning false. The round's budgets are installed fresh via
// Solver.SetBudget, and its blocking clauses are retracted before
// returning, so consecutive rounds are independent.
//
// complete is true iff every limit's solution space was exhausted. err
// is non-nil only when the round cannot start at all (ErrLadderWidth);
// budget and cancellation stops are incomplete rounds, not errors.
func (sess *DiagSession) EnumerateRound(opts RoundOptions, fn func(k int, gates []int) bool) (n int, complete bool, err error) {
	r := sess.NewRound()
	defer r.Retire()
	return sess.enumerateInRound(r, opts, fn)
}

// enumerateInRound is EnumerateRound running inside a caller-managed
// round: the round is neither created nor retired here, so its guarded
// blocking clauses survive the call. Sharded enumeration relies on this
// for the sample stage — clones forked afterwards inherit the blocking
// and enumerate exactly the residual space while the guard is assumed.
func (sess *DiagSession) enumerateInRound(r *Round, opts RoundOptions, fn func(k int, gates []int) bool) (n int, complete bool, err error) {
	maxK := opts.MaxK
	if maxK < 1 {
		maxK = 1
	}
	if !sess.CanBound(maxK) {
		return 0, false, fmt.Errorf("%w (limit %d, ladder width %d)", ErrLadderWidth, maxK, sess.Ladder.Width())
	}
	sess.Solver.SetBudget(opts.MaxConflicts, opts.Timeout)
	if opts.MaxConflicts > 0 || opts.Timeout > 0 {
		sess.budgetedRounds++
	}

	// A traced round gets its own child span with per-k phases and the
	// solver's Stats delta captured at the round boundary. Untraced
	// rounds (span == nil) skip even the Statistics snapshot.
	span := trace.FromContext(opts.Ctx).Child("round")
	if span != nil {
		before := sess.Solver.Statistics()
		defer func() {
			spanStats(span, sess.Solver.Statistics().Sub(before))
			span.Counter("solutions", int64(n))
			span.End()
		}()
	}

	base := []sat.Lit{r.Guard()}
	base = append(base, opts.ExtraAssumps...)
	if opts.Restrict != nil {
		base = append(base, sess.RestrictAssumps(opts.Restrict)...)
	}
	base = append(base, sess.ActivationAssumps(opts.ActiveTests)...)

	mode := opts.Enum
	if mode == sat.EnumLegacy {
		mode = sess.opts.Enum
	}

	total := 0
	for k := 1; k <= maxK; k++ {
		remaining := 0
		if opts.MaxSolutions > 0 {
			remaining = opts.MaxSolutions - total
			if remaining <= 0 {
				return total, false, nil
			}
		}
		kStart := time.Now()
		assumps := append(append([]sat.Lit(nil), base...), sess.AtMost(k)...)
		cnt, compl := sess.Solver.EnumerateProjected(sess.Sels, sat.EnumOptions{
			Assumptions:  assumps,
			Ctx:          opts.Ctx,
			MaxSolutions: remaining,
			BlockExtra:   []sat.Lit{r.Guard().Neg()},
			Mode:         mode,
		}, func(trueLits []sat.Lit) bool {
			return fn == nil || fn(k, sess.gatesOf(trueLits))
		})
		total += cnt
		span.PhaseSince(fmt.Sprintf("k=%d", k), kStart)
		if !compl {
			return total, false, nil
		}
	}
	return total, true, nil
}

// spanStats publishes a solver Stats delta as counters on a span — the
// per-round work attribution the request trace reports. Nil-safe.
func spanStats(span *trace.Span, d sat.Stats) {
	if span == nil {
		return
	}
	span.Counter("conflicts", d.Conflicts)
	span.Counter("decisions", d.Decisions)
	span.Counter("propagations", d.Propagations)
	span.Counter("restarts", d.Restarts+d.LBDRestarts)
	span.Counter("learnt", d.Learnt)
}
