// Package cnf translates circuits into CNF: Tseitin encodings of gate
// functions, the diagnosis instance of the paper's Figure 2/3 (one circuit
// copy per test, a correction multiplexer per candidate gate with a select
// line shared across copies, and a cardinality bound over the selects),
// and cardinality encodings (pairwise, sequential counter, totalizer).
package cnf

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/logic"
	"repro/internal/sat"
)

// EncodeCopy adds one Tseitin copy of the circuit to the solver and
// returns the variable of every gate output, indexed by gate ID.
func EncodeCopy(s sat.Builder, c *circuit.Circuit) []sat.Var {
	return EncodeCopyWithInputs(s, c, nil)
}

// EncodeCopyWithInputs encodes a circuit copy reusing the given input
// variables (indexed by input position); nil allocates fresh ones. Shared
// input variables are how miters (e.g. distinguishing-test ATPG) tie two
// circuits to the same stimulus.
func EncodeCopyWithInputs(s sat.Builder, c *circuit.Circuit, inputs []sat.Var) []sat.Var {
	vars := make([]sat.Var, len(c.Gates))
	for i := range c.Gates {
		if pos := c.InputPos(i); pos >= 0 && inputs != nil {
			vars[i] = inputs[pos]
			continue
		}
		vars[i] = s.NewVar()
	}
	for i := range c.Gates {
		g := &c.Gates[i]
		if g.Kind == logic.Input {
			continue
		}
		fan := make([]sat.Lit, len(g.Fanin))
		for j, f := range g.Fanin {
			fan[j] = sat.PosLit(vars[f])
		}
		EncodeGate(s, g, sat.PosLit(vars[i]), fan)
	}
	return vars
}

// EncodeGate adds the Tseitin clauses tying literal out to the gate
// function over the fanin literals.
func EncodeGate(s sat.Builder, g *circuit.Gate, out sat.Lit, fan []sat.Lit) {
	switch g.Kind {
	case logic.Const0:
		s.AddClause(out.Neg())
	case logic.Const1:
		s.AddClause(out)
	case logic.Buf:
		encodeEq(s, out, fan[0])
	case logic.Not:
		encodeEq(s, out, fan[0].Neg())
	case logic.And:
		encodeAnd(s, out, fan)
	case logic.Nand:
		encodeAnd(s, out.Neg(), fan)
	case logic.Or:
		encodeOr(s, out, fan)
	case logic.Nor:
		encodeOr(s, out.Neg(), fan)
	case logic.Xor:
		encodeXorChain(s, out, fan)
	case logic.Xnor:
		encodeXorChain(s, out.Neg(), fan)
	case logic.TableKind:
		encodeTable(s, g.Table, out, fan)
	default:
		panic(fmt.Sprintf("cnf: cannot encode gate kind %v", g.Kind))
	}
}

func encodeEq(s sat.Builder, a, b sat.Lit) {
	s.AddClause(a.Neg(), b)
	s.AddClause(a, b.Neg())
}

// encodeAnd: out <-> AND(fan).
func encodeAnd(s sat.Builder, out sat.Lit, fan []sat.Lit) {
	long := make([]sat.Lit, 0, len(fan)+1)
	for _, f := range fan {
		s.AddClause(out.Neg(), f)
		long = append(long, f.Neg())
	}
	long = append(long, out)
	s.AddClause(long...)
}

// encodeOr: out <-> OR(fan).
func encodeOr(s sat.Builder, out sat.Lit, fan []sat.Lit) {
	long := make([]sat.Lit, 0, len(fan)+1)
	for _, f := range fan {
		s.AddClause(out, f.Neg())
		long = append(long, f)
	}
	long = append(long, out.Neg())
	s.AddClause(long...)
}

// encodeXor2: out <-> a XOR b.
func encodeXor2(s sat.Builder, out, a, b sat.Lit) {
	s.AddClause(out.Neg(), a, b)
	s.AddClause(out.Neg(), a.Neg(), b.Neg())
	s.AddClause(out, a.Neg(), b)
	s.AddClause(out, a, b.Neg())
}

// encodeXorChain ties out to the parity of the fanins via fresh chain
// variables (linear clauses instead of the exponential direct encoding).
func encodeXorChain(s sat.Builder, out sat.Lit, fan []sat.Lit) {
	switch len(fan) {
	case 1:
		encodeEq(s, out, fan[0])
		return
	case 2:
		encodeXor2(s, out, fan[0], fan[1])
		return
	}
	acc := fan[0]
	for i := 1; i < len(fan)-1; i++ {
		t := sat.PosLit(s.NewVar())
		encodeXor2(s, t, acc, fan[i])
		acc = t
	}
	encodeXor2(s, out, acc, fan[len(fan)-1])
}

// encodeTable enumerates minterms: for every input assignment, a clause
// forces the tabulated output value. Exponential in fanin, which is
// bounded by logic.MaxTableInputs.
func encodeTable(s sat.Builder, t *logic.Table, out sat.Lit, fan []sat.Lit) {
	if len(fan) != t.N {
		panic("cnf: table arity mismatch")
	}
	if t.N == 0 {
		if t.Get(0) {
			s.AddClause(out)
		} else {
			s.AddClause(out.Neg())
		}
		return
	}
	clause := make([]sat.Lit, 0, t.N+1)
	for m := 0; m < t.Rows(); m++ {
		clause = clause[:0]
		for i, f := range fan {
			if m>>uint(i)&1 == 1 {
				clause = append(clause, f.Neg())
			} else {
				clause = append(clause, f)
			}
		}
		if t.Get(m) {
			clause = append(clause, out)
		} else {
			clause = append(clause, out.Neg())
		}
		s.AddClause(clause...)
	}
}

// EncodeMux adds y <-> (s ? c : z), the correction multiplexer of the
// paper's Figure 2(a).
func EncodeMux(solver sat.Builder, y, sel, c, z sat.Lit) {
	solver.AddClause(sel, y.Neg(), z)
	solver.AddClause(sel, y, z.Neg())
	solver.AddClause(sel.Neg(), y.Neg(), c)
	solver.AddClause(sel.Neg(), y, c.Neg())
}
