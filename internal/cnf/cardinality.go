package cnf

import (
	"errors"
	"fmt"

	"repro/internal/sat"
)

// CardEncoding selects a cardinality-constraint encoding.
type CardEncoding int

// Available encodings. SeqCounter (Sinz's sequential unary counter) is
// the default: it exposes an "at least j" ladder, so the paper's
// incremental limit loop (Figure 3, line 2) becomes one assumption
// literal per stage. Pairwise suits tiny bounds; Totalizer is the
// tree-shaped alternative used for the encoding ablation.
const (
	SeqCounter CardEncoding = iota
	Totalizer
	Pairwise
)

// String names the encoding.
func (e CardEncoding) String() string {
	switch e {
	case SeqCounter:
		return "seqcounter"
	case Totalizer:
		return "totalizer"
	case Pairwise:
		return "pairwise"
	default:
		return fmt.Sprintf("CardEncoding(%d)", int(e))
	}
}

// Ladder exposes unary counter outputs over a literal set: AtLeast[j]
// (1-based) is implied true whenever at least j of the inputs are true.
// Assuming its negation therefore enforces "at most j-1". The ladder is
// one-way (inputs imply counters), which is sufficient and cheapest for
// bounding.
type Ladder struct {
	atLeast []sat.Lit // index j-1 holds the "≥ j" literal
	n       int       // number of input literals
}

// Width returns the highest representable count.
func (l *Ladder) Width() int { return len(l.atLeast) }

// AtMost returns an assumption literal enforcing that at most bound of
// the inputs are true. Bounds at or above the ladder width (or the input
// count) need no constraint and yield LitUndef, which Solve treats as an
// absent assumption when filtered by the caller. A negative bound is
// clamped to 0, the tightest enforceable constraint — AtMost is total so
// no caller-supplied bound can crash a shared server.
func (l *Ladder) AtMost(bound int) sat.Lit {
	if bound < 0 {
		bound = 0
	}
	if bound >= l.n || bound >= len(l.atLeast) {
		return sat.LitUndef
	}
	return l.atLeast[bound].Neg() // ¬(≥ bound+1)
}

// ErrBadEncoding reports an out-of-range CardEncoding value. It is a
// returned error (not a panic) so a malformed request that slips past
// the HTTP layer's encoding validation degrades to a 4xx, never a crash.
var ErrBadEncoding = errors.New("cnf: unknown cardinality encoding")

// AddLadder builds a cardinality ladder over lits able to bound up to
// maxBound (counter width maxBound+1), using the requested encoding.
// A negative maxBound is clamped to 0 (a width-1 ladder that can still
// enforce AtMost(0)); an unknown encoding is ErrBadEncoding.
func AddLadder(s sat.Builder, lits []sat.Lit, maxBound int, enc CardEncoding) (*Ladder, error) {
	if maxBound < 0 {
		maxBound = 0
	}
	width := maxBound + 1
	if width > len(lits) {
		width = len(lits)
	}
	switch enc {
	case SeqCounter:
		return addSeqCounter(s, lits, width), nil
	case Totalizer:
		return addTotalizer(s, lits, width), nil
	case Pairwise:
		return addPairwiseLadder(s, lits, width), nil
	default:
		return nil, fmt.Errorf("%w: %v", ErrBadEncoding, enc)
	}
}

// addSeqCounter builds Sinz's sequential counter of the given width.
// reg[i][j] = "at least j+1 of lits[0..i] are true" (one-way).
func addSeqCounter(s sat.Builder, lits []sat.Lit, width int) *Ladder {
	n := len(lits)
	if n == 0 || width == 0 {
		return &Ladder{n: n}
	}
	prev := make([]sat.Lit, 0, width)
	for i := 0; i < n; i++ {
		rows := i + 1
		if rows > width {
			rows = width
		}
		cur := make([]sat.Lit, rows)
		for j := range cur {
			cur[j] = sat.PosLit(s.NewVar())
		}
		// lits[i] -> cur[0]
		s.AddClause(lits[i].Neg(), cur[0])
		for j := 0; j < len(prev); j++ {
			// prev[j] -> cur[j] (count carries over)
			s.AddClause(prev[j].Neg(), cur[j])
			// prev[j] & lits[i] -> cur[j+1]
			if j+1 < rows {
				s.AddClause(prev[j].Neg(), lits[i].Neg(), cur[j+1])
			}
		}
		prev = cur
	}
	return &Ladder{atLeast: prev, n: n}
}

// addTotalizer builds a (one-way) totalizer tree truncated to width.
func addTotalizer(s sat.Builder, lits []sat.Lit, width int) *Ladder {
	n := len(lits)
	if n == 0 || width == 0 {
		return &Ladder{n: n}
	}
	var build func(ls []sat.Lit) []sat.Lit
	build = func(ls []sat.Lit) []sat.Lit {
		if len(ls) == 1 {
			return []sat.Lit{ls[0]}
		}
		mid := len(ls) / 2
		left := build(ls[:mid])
		right := build(ls[mid:])
		outN := len(left) + len(right)
		if outN > width {
			outN = width
		}
		out := make([]sat.Lit, outN)
		for i := range out {
			out[i] = sat.PosLit(s.NewVar())
		}
		// sum: left_i & right_j -> out_{i+j+1}; left_i -> out_i; right_j -> out_j.
		for i := 0; i <= len(left); i++ {
			for j := 0; j <= len(right); j++ {
				k := i + j
				if k == 0 || k > len(out) {
					continue
				}
				clause := make([]sat.Lit, 0, 3)
				if i > 0 {
					clause = append(clause, left[i-1].Neg())
				}
				if j > 0 {
					clause = append(clause, right[j-1].Neg())
				}
				clause = append(clause, out[k-1])
				s.AddClause(clause...)
			}
		}
		return out
	}
	return &Ladder{atLeast: build(lits), n: n}
}

// addPairwiseLadder layers the classic pairwise clauses on top of the
// sequential counter: every pair of true inputs directly implies the
// "at least 2" counter output, so an AtMost(1) assumption propagates
// pairwise (any decided true literal immediately falsifies all others).
// Quadratic in len(lits); intended for k = 1 diagnosis on small cones.
func addPairwiseLadder(s sat.Builder, lits []sat.Lit, width int) *Ladder {
	l := addSeqCounter(s, lits, width)
	if len(l.atLeast) >= 2 {
		ge2 := l.atLeast[1]
		for i := 0; i < len(lits); i++ {
			for j := i + 1; j < len(lits); j++ {
				s.AddClause(lits[i].Neg(), lits[j].Neg(), ge2)
			}
		}
	}
	return l
}

// AtMostDirect adds a hard (non-assumable) pairwise at-most-one
// constraint; a convenience for small side conditions.
func AtMostDirect(s sat.Builder, lits []sat.Lit) {
	for i := 0; i < len(lits); i++ {
		for j := i + 1; j < len(lits); j++ {
			s.AddClause(lits[i].Neg(), lits[j].Neg())
		}
	}
}
