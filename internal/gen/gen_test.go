package gen

import (
	"strings"
	"testing"

	"repro/internal/circuit"
	"repro/internal/sim"
)

func TestGenerateDeterministic(t *testing.T) {
	spec := Spec{Name: "d", Inputs: 10, Outputs: 5, Gates: 100, Seed: 77}
	a, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	var sa, sb strings.Builder
	if err := circuit.WriteBench(&sa, a); err != nil {
		t.Fatal(err)
	}
	if err := circuit.WriteBench(&sb, b); err != nil {
		t.Fatal(err)
	}
	if sa.String() != sb.String() {
		t.Fatal("same spec produced different circuits")
	}
	spec.Seed = 78
	c, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	var sc strings.Builder
	if err := circuit.WriteBench(&sc, c); err != nil {
		t.Fatal(err)
	}
	if sa.String() == sc.String() {
		t.Fatal("different seeds produced identical circuits")
	}
}

func TestGenerateShape(t *testing.T) {
	spec := Spec{Name: "shape", Inputs: 20, Outputs: 10, Gates: 300, Seed: 5}
	c, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Inputs) != 20 || len(c.Outputs) != 10 || c.NumInternal() != 300 {
		t.Fatalf("shape mismatch: %v", c)
	}
	if c.CheckTopological() != -1 {
		t.Fatal("not topological")
	}
	if c.Stat().Levels < 5 {
		t.Fatalf("suspiciously shallow: depth %d", c.Stat().Levels)
	}
}

func TestGenerateRejectsBadSpec(t *testing.T) {
	if _, err := Generate(Spec{Name: "bad", Inputs: 0, Outputs: 1, Gates: 1}); err == nil {
		t.Fatal("zero inputs accepted")
	}
	if _, err := Generate(Spec{Name: "bad", Inputs: 1, Outputs: 0, Gates: 1}); err == nil {
		t.Fatal("zero outputs accepted")
	}
}

func TestSuiteGeneratesAll(t *testing.T) {
	for _, spec := range Suite() {
		if spec.Gates > 5000 && testing.Short() {
			continue
		}
		c, err := Generate(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if c.NumInternal() != spec.Gates {
			t.Fatalf("%s: %d gates, want %d", spec.Name, c.NumInternal(), spec.Gates)
		}
		// Simulate one vector to check evaluability.
		vec := make([]bool, len(c.Inputs))
		for i := range vec {
			vec[i] = i%3 == 0
		}
		_ = sim.Eval(c, vec)
	}
}

func TestByName(t *testing.T) {
	c, err := ByName("s298x")
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "s298x" {
		t.Fatalf("name %q", c.Name)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestPaperScaleSpec(t *testing.T) {
	s, ok := PaperScaleSpec("s38417x")
	if !ok || s.Gates != 22179 {
		t.Fatalf("paper-scale s38417x: %+v ok=%v", s, ok)
	}
	s2, ok := PaperScaleSpec("s1423x")
	if !ok || s2.Gates != 657 {
		t.Fatalf("paper-scale s1423x: %+v", s2)
	}
	if _, ok := PaperScaleSpec("zzz"); ok {
		t.Fatal("unknown circuit resolved")
	}
}

func TestEmbeddedC17(t *testing.T) {
	c, err := C17()
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Inputs) != 5 || len(c.Outputs) != 2 || c.NumInternal() != 6 {
		t.Fatalf("c17 shape: %v", c)
	}
	// Known c17 response: all-ones input gives G22=0? Compute ground
	// truth by hand: G10=NAND(1,1)=0, G11=NAND(1,1)=0, G16=NAND(1,0)=1,
	// G19=NAND(0,1)=1, G22=NAND(0,1)=1, G23=NAND(1,1)=0.
	outs := sim.Eval(c, []bool{true, true, true, true, true})
	g22, _ := c.GateByName("G22")
	g23, _ := c.GateByName("G23")
	want := map[int]bool{g22: true, g23: false}
	for i, o := range c.Outputs {
		if outs[i] != want[o] {
			t.Fatalf("c17 output %s = %v", c.Gates[o].Name, outs[i])
		}
	}
}

func TestEmbeddedS27X(t *testing.T) {
	c, err := S27X()
	if err != nil {
		t.Fatal(err)
	}
	// 4 PIs + 3 pseudo-PIs; 1 PO + 3 pseudo-POs after full scan.
	if len(c.Inputs) != 7 {
		t.Fatalf("inputs = %d, want 7", len(c.Inputs))
	}
	if len(c.Outputs) != 4 {
		t.Fatalf("outputs = %d, want 4", len(c.Outputs))
	}
}
