package gen

import (
	"strings"

	"repro/internal/circuit"
)

// C17Bench is the genuine ISCAS85 c17 netlist (public domain, six NAND
// gates) in .bench format, embedded for parser fidelity tests and tiny
// end-to-end demos.
const C17Bench = `# c17 — ISCAS85 benchmark
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
`

// S27XBench is a small sequential netlist in the style of ISCAS89 s27
// (three flip-flops, a handful of gates) used to exercise the full-scan
// DFF conversion of the .bench parser. It is a stand-in, not the
// original s27 netlist.
const S27XBench = `# s27x — small sequential circuit (s27-style stand-in)
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
G17 = NOT(G11)
`

// C17 parses the embedded c17 netlist.
func C17() (*circuit.Circuit, error) {
	return circuit.ParseBench("c17", strings.NewReader(C17Bench))
}

// S27X parses the embedded sequential stand-in (after full-scan
// conversion: 4+3 inputs, 1+3 outputs).
func S27X() (*circuit.Circuit, error) {
	return circuit.ParseBench("s27x", strings.NewReader(S27XBench))
}
