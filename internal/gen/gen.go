// Package gen generates seeded synthetic gate-level netlists with
// ISCAS89-like structure. The paper evaluates on ISCAS89 circuits
// (s1423, s6669, s38417); those netlists are not redistributable inside
// this offline repository, so the suite provides statistical analogs —
// same interface widths and gate-count profile, typical gate mix, deep
// reconvergent logic — under the names s1423x, s6669x, s38417x, plus a
// range of smaller circuits backing the Figure 6 scatter. DESIGN.md
// documents this substitution.
package gen

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/circuit"
	"repro/internal/logic"
)

// Spec parameterizes a synthetic circuit.
type Spec struct {
	Name    string
	Inputs  int // primary + pseudo-primary inputs
	Outputs int // primary + pseudo-primary outputs
	Gates   int // internal gate target (excluding inputs)
	Seed    int64
	// MaxFanin bounds gate arity (default 2; ISCAS circuits are mostly
	// 2-input with occasional wider gates).
	MaxFanin int
	// Locality biases fanin selection toward recently created signals,
	// producing deep circuits with local reconvergence (default 0.8).
	Locality float64
}

// gate kind mix approximating ISCAS89 profiles: heavy NAND/NOR/INV,
// some AND/OR, occasional XOR.
var kindMix = []struct {
	kind   logic.Kind
	weight int
}{
	{logic.Nand, 24},
	{logic.And, 18},
	{logic.Nor, 14},
	{logic.Or, 14},
	{logic.Not, 16},
	{logic.Buf, 4},
	{logic.Xor, 6},
	{logic.Xnor, 4},
}

// Generate builds the synthetic circuit for the spec. Identical specs
// yield identical circuits (the RNG is fully seeded).
func Generate(spec Spec) (*circuit.Circuit, error) {
	if spec.Inputs < 1 || spec.Outputs < 1 || spec.Gates < 1 {
		return nil, fmt.Errorf("gen: spec %q needs inputs/outputs/gates >= 1", spec.Name)
	}
	maxFanin := spec.MaxFanin
	if maxFanin < 2 {
		maxFanin = 2
	}
	locality := spec.Locality
	if locality <= 0 || locality > 1 {
		locality = 0.8
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	b := circuit.NewBuilder(spec.Name)

	signals := make([]int, 0, spec.Inputs+spec.Gates)
	fanoutCount := make(map[int]int)
	for i := 0; i < spec.Inputs; i++ {
		signals = append(signals, b.Input(fmt.Sprintf("pi%d", i)))
	}
	totalWeight := 0
	for _, km := range kindMix {
		totalWeight += km.weight
	}
	pick := func() int {
		// Prefer recent signals for depth; fall back to uniform for
		// reconvergence across the whole prefix.
		n := len(signals)
		if rng.Float64() < locality {
			window := n / 4
			if window < 8 {
				window = 8
			}
			if window > n {
				window = n
			}
			return signals[n-1-rng.Intn(window)]
		}
		return signals[rng.Intn(n)]
	}
	for i := 0; i < spec.Gates; i++ {
		w := rng.Intn(totalWeight)
		kind := kindMix[0].kind
		for _, km := range kindMix {
			if w < km.weight {
				kind = km.kind
				break
			}
			w -= km.weight
		}
		arity := 1
		if kind != logic.Not && kind != logic.Buf {
			arity = 2
			if maxFanin > 2 && rng.Intn(8) == 0 {
				arity = 2 + rng.Intn(maxFanin-1)
			}
		}
		fanin := make([]int, 0, arity)
		for len(fanin) < arity {
			f := pick()
			dup := false
			for _, x := range fanin {
				if x == f {
					dup = true
					break
				}
			}
			if !dup {
				fanin = append(fanin, f)
			} else if len(signals) <= arity {
				fanin = append(fanin, f) // tiny circuits: allow duplicates
			}
		}
		id := b.Gate(kind, fmt.Sprintf("g%d", i), fanin...)
		for _, f := range fanin {
			fanoutCount[f]++
		}
		signals = append(signals, id)
	}

	// Outputs: prefer sinks (fanout-free gates, newest first) so most of
	// the generated logic is observable; top up with random internal
	// gates when there are too few sinks.
	internal := signals[spec.Inputs:]
	var sinks []int
	for i := len(internal) - 1; i >= 0; i-- {
		if fanoutCount[internal[i]] == 0 {
			sinks = append(sinks, internal[i])
		}
	}
	outs := sinks
	if len(outs) > spec.Outputs {
		outs = outs[:spec.Outputs]
	}
	chosen := make(map[int]bool)
	for _, o := range outs {
		chosen[o] = true
	}
	for len(outs) < spec.Outputs && len(chosen) < len(internal) {
		g := internal[rng.Intn(len(internal))]
		if !chosen[g] {
			chosen[g] = true
			outs = append(outs, g)
		}
	}
	sort.Ints(outs)
	for _, o := range outs {
		b.Output(o)
	}
	return b.Build()
}

// Suite returns the named benchmark specs used by the experiment
// harness. The three paper circuits appear as *x analogs; smaller
// circuits back the Figure 6 sweep. s38417x is scaled to ~11k gates so
// that all-solutions BSAT enumeration stays tractable for a pure-Go
// CDCL solver (see DESIGN.md); PaperScaleSpec provides the full-size
// variant.
func Suite() []Spec {
	return []Spec{
		{Name: "s298x", Inputs: 17, Outputs: 20, Gates: 119, Seed: 298},
		{Name: "s400x", Inputs: 24, Outputs: 27, Gates: 162, Seed: 400},
		{Name: "s526x", Inputs: 24, Outputs: 27, Gates: 193, Seed: 526},
		{Name: "s838x", Inputs: 67, Outputs: 66, Gates: 390, Seed: 838},
		{Name: "s1196x", Inputs: 32, Outputs: 32, Gates: 529, Seed: 1196},
		{Name: "s1423x", Inputs: 91, Outputs: 79, Gates: 657, Seed: 1423},
		{Name: "s5378x", Inputs: 214, Outputs: 228, Gates: 2779, Seed: 5378},
		{Name: "s6669x", Inputs: 322, Outputs: 294, Gates: 3080, Seed: 6669},
		{Name: "s9234x", Inputs: 247, Outputs: 250, Gates: 5597, Seed: 9234},
		{Name: "s38417x", Inputs: 1664, Outputs: 1742, Gates: 11000, Seed: 38417},
	}
}

// PaperScaleSpec returns the full-size analog of a suite circuit (only
// s38417x differs from the default suite).
func PaperScaleSpec(name string) (Spec, bool) {
	for _, s := range Suite() {
		if s.Name == name {
			if name == "s38417x" {
				s.Gates = 22179
			}
			return s, true
		}
	}
	return Spec{}, false
}

// ByName generates a suite circuit by name.
func ByName(name string) (*circuit.Circuit, error) {
	for _, s := range Suite() {
		if s.Name == name {
			return Generate(s)
		}
	}
	return nil, fmt.Errorf("gen: unknown circuit %q (known: %v)", name, SuiteNames())
}

// SuiteNames lists the available synthetic circuits.
func SuiteNames() []string {
	specs := Suite()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}
