package trace

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestNilSpanIsSafe(t *testing.T) {
	var s *Span
	if c := s.Child("x"); c != nil {
		t.Fatalf("nil.Child = %v, want nil", c)
	}
	s.Phase("p", time.Millisecond)
	s.PhaseSince("q", time.Now())
	s.Counter("c", 3)
	s.SetDetail("d")
	s.End()
	if d := s.Duration(); d != 0 {
		t.Fatalf("nil.Duration = %v, want 0", d)
	}
	if b := s.Breakdown(); b != nil {
		t.Fatalf("nil.Breakdown = %v, want nil", b)
	}
	if m := s.PhaseDurations(); m != nil {
		t.Fatalf("nil.PhaseDurations = %v, want nil", m)
	}
}

func TestSpanLifecycle(t *testing.T) {
	root := New("request")
	root.SetDetail("warm-hit")
	root.Phase("queue", 2*time.Millisecond)
	root.Phase("encode", 3*time.Millisecond)
	root.Phase("encode", 1*time.Millisecond) // accumulates
	root.Counter("conflicts", 10)
	root.Counter("conflicts", 5)
	child := root.Child("round")
	child.Phase("solve", 4*time.Millisecond)
	child.End()
	root.End()
	root.End() // idempotent

	b := root.Breakdown()
	if b.Name != "request" || b.Detail != "warm-hit" {
		t.Fatalf("root = %+v", b)
	}
	if len(b.Phases) != 2 {
		t.Fatalf("phases = %+v, want 2", b.Phases)
	}
	if b.Phases[1].Name != "encode" || b.Phases[1].DurationMS != 4 {
		t.Fatalf("encode phase = %+v, want 4ms", b.Phases[1])
	}
	if b.Counters["conflicts"] != 15 {
		t.Fatalf("counters = %+v, want conflicts=15", b.Counters)
	}
	if len(b.Children) != 1 || b.Children[0].Name != "round" {
		t.Fatalf("children = %+v", b.Children)
	}
	if b.Children[0].Phases[0].DurationMS != 4 {
		t.Fatalf("child solve = %+v", b.Children[0].Phases)
	}
	m := root.PhaseDurations()
	if m["queue"] != 2*time.Millisecond || m["encode"] != 4*time.Millisecond {
		t.Fatalf("PhaseDurations = %v", m)
	}
}

func TestSpanContext(t *testing.T) {
	if s := FromContext(context.Background()); s != nil {
		t.Fatalf("FromContext(empty) = %v, want nil", s)
	}
	if s := FromContext(nil); s != nil { //nolint:staticcheck // nil ctx tolerance is the point
		t.Fatalf("FromContext(nil) = %v, want nil", s)
	}
	root := New("r")
	ctx := NewContext(context.Background(), root)
	if s := FromContext(ctx); s != root {
		t.Fatalf("FromContext = %v, want root", s)
	}
	rec := NewRecorder(16)
	ctx = WithRecorder(ctx, rec)
	if got := RecorderFromContext(ctx); got != rec {
		t.Fatalf("RecorderFromContext = %v, want rec", got)
	}
	if got := RecorderFromContext(context.Background()); got != nil {
		t.Fatalf("RecorderFromContext(empty) = %v, want nil", got)
	}
}

// Concurrent cube workers attach children and phases to one shared
// parent; run under -race this is the goroutine-safety proof.
func TestSpanConcurrentChildren(t *testing.T) {
	root := New("round")
	var wg sync.WaitGroup
	const workers, cubes = 8, 20
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := 0; c < cubes; c++ {
				cs := root.Child("cube")
				cs.Phase("solve", time.Microsecond)
				cs.Counter("solutions", 1)
				cs.End()
				root.Counter("cubes", 1)
			}
		}()
	}
	// Dump concurrently with the writers: Breakdown must be safe on a
	// live span tree.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			_ = root.Breakdown()
		}
	}()
	wg.Wait()
	<-done
	root.End()
	b := root.Breakdown()
	if len(b.Children) != workers*cubes {
		t.Fatalf("children = %d, want %d", len(b.Children), workers*cubes)
	}
	if b.Counters["cubes"] != workers*cubes {
		t.Fatalf("cubes counter = %d, want %d", b.Counters["cubes"], workers*cubes)
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Record(EvRestart, 1)
	if r.Len() != 0 || r.Cursor() != 0 {
		t.Fatal("nil recorder not empty")
	}
	if ev := r.Since(0); ev != nil {
		t.Fatalf("nil.Since = %v", ev)
	}
	if ev := r.Snapshot(); ev != nil {
		t.Fatalf("nil.Snapshot = %v", ev)
	}
}

func TestRecorderBasic(t *testing.T) {
	r := NewRecorder(16)
	r.Record(EvRestart, 5)
	r.Record(EvModel, 9)
	r.Record(EvUnsat, 12)
	ev := r.Snapshot()
	if len(ev) != 3 {
		t.Fatalf("snapshot = %v, want 3 events", ev)
	}
	want := []struct {
		kind string
		conf uint64
	}{{"restart", 5}, {"model", 9}, {"unsat", 12}}
	for i, w := range want {
		if ev[i].Kind != w.kind || ev[i].Conflicts != w.conf {
			t.Fatalf("event %d = %+v, want %+v", i, ev[i], w)
		}
	}
}

func TestRecorderCursorSince(t *testing.T) {
	r := NewRecorder(16)
	r.Record(EvRestart, 1)
	cur := r.Cursor()
	r.Record(EvModel, 2)
	r.Record(EvUnsat, 3)
	ev := r.Since(cur)
	if len(ev) != 2 || ev[0].Kind != "model" || ev[1].Kind != "unsat" {
		t.Fatalf("Since(cursor) = %v", ev)
	}
	if ev := r.Since(r.Cursor()); len(ev) != 0 {
		t.Fatalf("Since(now) = %v, want empty", ev)
	}
}

func TestRecorderWraparound(t *testing.T) {
	r := NewRecorder(8)
	for i := 0; i < 100; i++ {
		r.Record(EvRestart, uint64(i))
	}
	ev := r.Snapshot()
	if len(ev) != 8 {
		t.Fatalf("snapshot after wrap = %d events, want 8", len(ev))
	}
	for i, e := range ev {
		if want := uint64(92 + i); e.Conflicts != want {
			t.Fatalf("event %d conflicts = %d, want %d", i, e.Conflicts, want)
		}
	}
	// A stale cursor (further back than the ring holds) yields the
	// most recent ring-full, not garbage.
	if ev := r.Since(0); len(ev) != 8 || ev[0].Conflicts != 92 {
		t.Fatalf("Since(stale) = %v", ev)
	}
}

func TestRecorderSaturation(t *testing.T) {
	r := NewRecorder(4)
	r.Record(EvModel, 1<<40) // above the 36-bit conflict field
	ev := r.Snapshot()
	if len(ev) != 1 || ev[0].Conflicts != confMax {
		t.Fatalf("saturated event = %v, want conflicts=%d", ev, uint64(confMax))
	}
	if got := pack(EvModel, 1<<30, 0) >> wallShift & wallMax; got != wallMax {
		t.Fatalf("wall saturation = %d, want %d", got, uint64(wallMax))
	}
}

// Concurrent writers (cloned solvers sharing one ring) and a
// concurrent dumper; run under -race this is the dump-while-solving
// safety proof.
func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(64)
	var wg sync.WaitGroup
	const writers, events = 4, 500
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < events; i++ {
				r.Record(EvRestart, uint64(w*events+i))
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			for _, e := range r.Snapshot() {
				if e.Kind == "none" {
					t.Error("decoded an empty slot")
					return
				}
			}
		}
	}()
	wg.Wait()
	<-done
	if got := r.Len(); got != writers*events {
		t.Fatalf("Len = %d, want %d", got, writers*events)
	}
}

func TestEventKindStrings(t *testing.T) {
	for k := EvNone; k < evKinds; k++ {
		if k.String() == "" {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if got := EventKind(63).String(); got != "kind(63)" {
		t.Fatalf("unknown kind = %q", got)
	}
}

func BenchmarkRecorderRecord(b *testing.B) {
	r := NewRecorder(256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Record(EvRestart, uint64(i))
	}
}

func BenchmarkRecorderRecordNil(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Record(EvRestart, uint64(i))
	}
}
