// Package trace is the service's low-overhead tracing and
// flight-recorder layer. It is dependency-free (stdlib only) and safe
// to thread through every execution layer: sat, cnf, core, and service
// all import it, it imports none of them.
//
// The two halves are deliberately different shapes:
//
//   - Span is the request-side view: a mutex-guarded tree of named
//     phases and child spans carried on context.Context from the HTTP
//     handler down to individual enumeration cubes. Spans are built for
//     code that already allocates (handlers, round setup); every method
//     is nil-receiver safe so un-traced paths pay one pointer test.
//
//   - Recorder is the solver-side view: a fixed ring of packed uint64
//     events written with atomics from inside the search loop's rare
//     event points (restarts, reductions, models, exits). It allocates
//     nothing on the write path and tolerates concurrent writers
//     (cloned solvers share their parent's ring) and concurrent
//     readers (dump-while-solving).
package trace

import (
	"context"
	"sync"
	"time"
)

// Span is one timed region of a request: the whole request, one
// enumeration round, one cube, one portfolio fork. A span accumulates
// named phases (flat timings within the span), counters (e.g. solver
// Stats deltas captured at round boundaries), and child spans. All
// methods are safe on a nil receiver — hot paths guard tracing with a
// single nil test — and safe for concurrent use, so sharded cube
// workers may attach children to the same parent from many goroutines.
type Span struct {
	mu       sync.Mutex
	name     string
	detail   string
	start    time.Time
	end      time.Time
	phases   []phase
	counters []counter
	children []*Span
}

type phase struct {
	name string
	d    time.Duration
}

type counter struct {
	name string
	v    int64
}

// New starts a root span.
func New(name string) *Span {
	return &Span{name: name, start: time.Now()}
}

// Child starts and attaches a child span. Returns nil when s is nil,
// so the whole subtree of calls below an un-traced request no-ops.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// Phase records a named duration inside the span. Phases with the same
// name accumulate (a round executed k times shows one summed phase).
func (s *Span) Phase(name string, d time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	for i := range s.phases {
		if s.phases[i].name == name {
			s.phases[i].d += d
			s.mu.Unlock()
			return
		}
	}
	s.phases = append(s.phases, phase{name: name, d: d})
	s.mu.Unlock()
}

// PhaseSince records a phase as the elapsed time since start.
func (s *Span) PhaseSince(name string, start time.Time) {
	if s == nil {
		return
	}
	s.Phase(name, time.Since(start))
}

// Counter records (accumulating by name) a named integer — solver
// Stats deltas at round boundaries, solution counts, retry counts.
func (s *Span) Counter(name string, v int64) {
	if s == nil || v == 0 {
		return
	}
	s.mu.Lock()
	for i := range s.counters {
		if s.counters[i].name == name {
			s.counters[i].v += v
			s.mu.Unlock()
			return
		}
	}
	s.counters = append(s.counters, counter{name: name, v: v})
	s.mu.Unlock()
}

// SetDetail attaches a short free-form qualifier (e.g. the pool lookup
// outcome "warm-hit" | "cold-build" | "singleflight-wait").
func (s *Span) SetDetail(detail string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.detail = detail
	s.mu.Unlock()
}

// End closes the span. Idempotent; Breakdown on an unended span uses
// the current time.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.mu.Unlock()
}

// Duration is the span's elapsed (or so-far) time.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.end.IsZero() {
		return time.Since(s.start)
	}
	return s.end.Sub(s.start)
}

// SpanJSON is the wire/JSON form of a span tree — the "timings" field
// of a diagnosis response.
type SpanJSON struct {
	Name       string           `json:"name"`
	Detail     string           `json:"detail,omitempty"`
	DurationMS float64          `json:"durationMs"`
	Phases     []PhaseJSON      `json:"phases,omitempty"`
	Counters   map[string]int64 `json:"counters,omitempty"`
	Children   []*SpanJSON      `json:"children,omitempty"`
}

// PhaseJSON is one named timing inside a span.
type PhaseJSON struct {
	Name       string  `json:"name"`
	DurationMS float64 `json:"durationMs"`
}

// PhaseDurations returns the span's own phases as a name → duration
// map (children not included).
func (s *Span) PhaseDurations() map[string]time.Duration {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	m := make(map[string]time.Duration, len(s.phases))
	for _, p := range s.phases {
		m[p.name] = p.d
	}
	return m
}

// Breakdown renders the span tree for the wire. Safe to call while
// children are still being attached (each level locks independently).
func (s *Span) Breakdown() *SpanJSON {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	j := &SpanJSON{
		Name:       s.name,
		Detail:     s.detail,
		DurationMS: ms(s.durationLocked()),
	}
	phases := append([]phase(nil), s.phases...)
	counters := append([]counter(nil), s.counters...)
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, p := range phases {
		j.Phases = append(j.Phases, PhaseJSON{Name: p.name, DurationMS: ms(p.d)})
	}
	if len(counters) > 0 {
		j.Counters = make(map[string]int64, len(counters))
		for _, c := range counters {
			j.Counters[c.name] = c.v
		}
	}
	for _, c := range children {
		j.Children = append(j.Children, c.Breakdown())
	}
	return j
}

func (s *Span) durationLocked() time.Duration {
	if s.end.IsZero() {
		return time.Since(s.start)
	}
	return s.end.Sub(s.start)
}

func ms(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}

type spanKey struct{}

type recorderKey struct{}

// NewContext returns ctx carrying the span.
func NewContext(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, s)
}

// FromContext returns the span carried by ctx, or nil. The nil return
// composes with the nil-receiver methods: code below an un-traced
// context calls straight through no-ops.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// WithRecorder returns ctx carrying a flight recorder, for paths (cold
// builds) where the solver is constructed below the context rather
// than held in a warm pool entry.
func WithRecorder(ctx context.Context, r *Recorder) context.Context {
	return context.WithValue(ctx, recorderKey{}, r)
}

// RecorderFromContext returns the recorder carried by ctx, or nil.
func RecorderFromContext(ctx context.Context) *Recorder {
	if ctx == nil {
		return nil
	}
	r, _ := ctx.Value(recorderKey{}).(*Recorder)
	return r
}
