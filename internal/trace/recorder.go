package trace

import (
	"fmt"
	"sync/atomic"
	"time"
)

// EventKind tags one flight-recorder event. The kinds cover the rare
// control-flow points of the CDCL search — never per-propagation or
// per-decision work — so recording costs one atomic store per restart
// or model, not per conflict.
type EventKind uint8

const (
	// EvNone marks an empty ring slot.
	EvNone EventKind = iota
	// EvRestart is a Luby restart of the default search configuration
	// (or the per-model restart pacing of the enumeration loops).
	EvRestart
	// EvLBDRestart is a gen2 LBD-EMA triggered restart.
	EvLBDRestart
	// EvReduceDB is a learnt-clause database reduction.
	EvReduceDB
	// EvVivify is a level-0 vivification pass.
	EvVivify
	// EvChronoBT is a gen2 chronological backtrack.
	EvChronoBT
	// EvModel is a satisfying assignment found (one enumerated
	// solution, or the final model of a plain Solve).
	EvModel
	// EvEarlyTerm is a projected-mode model certified by the
	// all-clauses-satisfied scan before the assignment was total.
	EvEarlyTerm
	// EvBudgetExit is a search abandoned on the conflict budget.
	EvBudgetExit
	// EvDeadlineExit is a search abandoned on the wall-clock deadline.
	EvDeadlineExit
	// EvCtxExit is a search abandoned on context cancellation.
	EvCtxExit
	// EvUnsat is a search that exhausted its space (final UNSAT —
	// during enumeration this is the normal "round complete" event).
	EvUnsat
	evKinds
)

var kindNames = [evKinds]string{
	EvNone:         "none",
	EvRestart:      "restart",
	EvLBDRestart:   "lbd-restart",
	EvReduceDB:     "reduce-db",
	EvVivify:       "vivify",
	EvChronoBT:     "chrono-bt",
	EvModel:        "model",
	EvEarlyTerm:    "early-term",
	EvBudgetExit:   "budget-exit",
	EvDeadlineExit: "deadline-exit",
	EvCtxExit:      "ctx-exit",
	EvUnsat:        "unsat",
}

func (k EventKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event packing: one uint64 per event.
//
//	bits 63..58  kind        (6 bits)
//	bits 57..36  wall ms     (22 bits, saturating: ~70 min since epoch)
//	bits 35..0   conflicts   (36 bits, saturating: ~6.8e10 conflicts)
//
// Both clocks saturate instead of wrapping so a long-lived warm
// session degrades to "a long time in" rather than lying.
const (
	kindShift = 58
	wallShift = 36
	wallMax   = 1<<22 - 1
	confMax   = 1<<36 - 1
)

func pack(kind EventKind, wallMS uint64, conflicts uint64) uint64 {
	if wallMS > wallMax {
		wallMS = wallMax
	}
	if conflicts > confMax {
		conflicts = confMax
	}
	return uint64(kind)<<kindShift | wallMS<<wallShift | conflicts
}

// Event is one decoded flight-recorder entry.
type Event struct {
	// Kind is the event tag (EventKind.String()).
	Kind string `json:"kind"`
	// WallMS is coarse wall time in milliseconds since the recorder's
	// epoch (solver construction).
	WallMS uint32 `json:"wallMs"`
	// Conflicts is the solver's conflict clock at the event.
	Conflicts uint64 `json:"conflicts"`
}

// DefaultRecorderSize is the ring capacity used when NewRecorder is
// given a non-positive size. 256 packed events cover the full restart/
// reduce/model history of typical diagnosis rounds and cost 2KB.
const DefaultRecorderSize = 256

// Recorder is a fixed-size ring of packed solver events. Writes are
// one atomic add plus one atomic store, allocation-free, and safe from
// multiple goroutines — cloned solvers (shard workers, portfolio
// forks) share their parent's recorder, interleaving their events on
// the same conflict-stamped timeline. Reads (Snapshot, Since) are safe
// concurrently with writes: each slot is a single word, so a dump
// taken mid-solve sees a consistent recent window, never a torn event.
type Recorder struct {
	ring  []atomic.Uint64
	next  atomic.Uint64 // total events ever written
	epoch time.Time
}

// NewRecorder returns a recorder with capacity size (rounded up to a
// power of two; <=0 selects DefaultRecorderSize).
func NewRecorder(size int) *Recorder {
	if size <= 0 {
		size = DefaultRecorderSize
	}
	n := 1
	for n < size {
		n <<= 1
	}
	return &Recorder{ring: make([]atomic.Uint64, n), epoch: time.Now()}
}

// Record appends one event stamped with the conflict clock and coarse
// wall time. Nil-safe: recording into a nil recorder is a no-op, so
// solver code guards with a single nil test.
func (r *Recorder) Record(kind EventKind, conflicts uint64) {
	if r == nil {
		return
	}
	w := pack(kind, uint64(time.Since(r.epoch)/time.Millisecond), conflicts)
	i := r.next.Add(1) - 1
	r.ring[i&uint64(len(r.ring)-1)].Store(w)
}

// Len reports how many events have ever been recorded (not capped at
// the ring size).
func (r *Recorder) Len() uint64 {
	if r == nil {
		return 0
	}
	return r.next.Load()
}

// Cursor marks the current write position. A caller serving requests
// on a long-lived solver takes a cursor before the run and passes it
// to Since afterwards to extract just that request's events.
func (r *Recorder) Cursor() uint64 {
	if r == nil {
		return 0
	}
	return r.next.Load()
}

// Since decodes the events written at or after cursor, oldest first.
// When more than a ring's worth of events were written since the
// cursor, only the most recent ring-full survives (it is a flight
// recorder, not a log). Safe concurrently with writers.
func (r *Recorder) Since(cursor uint64) []Event {
	if r == nil {
		return nil
	}
	hi := r.next.Load()
	lo := cursor
	if hi-lo > uint64(len(r.ring)) {
		lo = hi - uint64(len(r.ring))
	}
	if lo >= hi {
		return nil
	}
	out := make([]Event, 0, hi-lo)
	for i := lo; i < hi; i++ {
		w := r.ring[i&uint64(len(r.ring)-1)].Load()
		kind := EventKind(w >> kindShift)
		if kind == EvNone {
			continue
		}
		out = append(out, Event{
			Kind:      kind.String(),
			WallMS:    uint32(w >> wallShift & wallMax),
			Conflicts: w & confMax,
		})
	}
	return out
}

// Snapshot decodes the most recent ring-full of events, oldest first.
func (r *Recorder) Snapshot() []Event {
	if r == nil {
		return nil
	}
	hi := r.next.Load()
	lo := uint64(0)
	if hi > uint64(len(r.ring)) {
		lo = hi - uint64(len(r.ring))
	}
	return r.Since(lo)
}
