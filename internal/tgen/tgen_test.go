package tgen

import (
	"testing"
	"testing/quick"

	"repro/internal/circuit"
	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/logic"
)

func scenario(t *testing.T, seed int64, p int) (*circuit.Circuit, *circuit.Circuit) {
	t.Helper()
	golden, err := gen.Generate(gen.Spec{Name: "tg", Inputs: 7, Outputs: 3, Gates: 50, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	// Resample the injection seed until the fault is actually detectable
	// (a masked mutation would make the tests vacuous).
	for attempt := int64(0); attempt < 20; attempt++ {
		faulty, _, err := faults.Inject(golden, faults.Options{Count: p, Seed: seed + attempt*31})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Random(golden, faulty, Options{Count: 1, Seed: seed, MaxPatterns: 1 << 12}); err == nil {
			return golden, faulty
		}
	}
	t.Fatal("no detectable fault found")
	return nil, nil
}

func TestRandomProducesFailingTests(t *testing.T) {
	golden, faulty := scenario(t, 11, 1)
	tests, err := Random(golden, faulty, Options{Count: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tests) == 0 {
		t.Fatal("no tests")
	}
	if bad := Verify(golden, faulty, tests); bad >= 0 {
		t.Fatalf("test %d violates the invariant", bad)
	}
}

func TestRandomDeterministic(t *testing.T) {
	golden, faulty := scenario(t, 12, 1)
	a, err := Random(golden, faulty, Options{Count: 6, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Random(golden, faulty, Options{Count: 6, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("nondeterministic count")
	}
	for i := range a {
		if a[i].Output != b[i].Output || a[i].Want != b[i].Want {
			t.Fatal("nondeterministic tests")
		}
		for j := range a[i].Vector {
			if a[i].Vector[j] != b[i].Vector[j] {
				t.Fatal("nondeterministic vectors")
			}
		}
	}
}

func TestRandomAllOutputsPolicy(t *testing.T) {
	golden, faulty := scenario(t, 13, 2)
	one, err := Random(golden, faulty, Options{Count: 32, Seed: 2, PerVector: FirstOutput})
	if err != nil {
		t.Fatal(err)
	}
	all, err := Random(golden, faulty, Options{Count: 32, Seed: 2, PerVector: AllOutputs})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < len(one) {
		t.Fatalf("AllOutputs yielded fewer tests (%d < %d)", len(all), len(one))
	}
	if bad := Verify(golden, faulty, all); bad >= 0 {
		t.Fatalf("test %d invalid", bad)
	}
}

func TestRandomUndetectedFault(t *testing.T) {
	// A fault on a gate whose output is masked everywhere: build
	// y = AND(a, 0-const via a AND NOT a). Changing the masked gate can
	// never be observed.
	b := circuit.NewBuilder("masked")
	a := b.Input("a")
	na := b.Gate(logic.Not, "na", a)
	zero := b.Gate(logic.And, "zero", a, na) // constant 0
	buried := b.Gate(logic.Buf, "buried", zero)
	y := b.Gate(logic.And, "y", a, zero)
	_ = buried
	b.Output(y)
	golden, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	faulty := golden.Clone()
	bg, _ := faulty.GateByName("buried")
	faulty.Gates[bg].Kind = logic.Not // unobservable change (no fanout)
	if _, err := Random(golden, faulty, Options{Count: 4, Seed: 3, MaxPatterns: 256}); err != ErrUndetected {
		t.Fatalf("want ErrUndetected, got %v", err)
	}
	// ATPG must agree: the circuits are functionally equivalent.
	if _, err := ATPG(golden, faulty, ATPGOptions{Count: 1}); err != ErrUndetected {
		t.Fatalf("ATPG: want ErrUndetected, got %v", err)
	}
}

func TestATPGFindsDistinguishingVectors(t *testing.T) {
	golden, faulty := scenario(t, 14, 1)
	tests, err := ATPG(golden, faulty, ATPGOptions{Count: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(tests) == 0 {
		t.Fatal("no tests")
	}
	if bad := Verify(golden, faulty, tests); bad >= 0 {
		t.Fatalf("test %d invalid", bad)
	}
	// Distinct vectors.
	seen := make(map[string]bool)
	for _, ts := range tests {
		key := ""
		for _, v := range ts.Vector {
			if v {
				key += "1"
			} else {
				key += "0"
			}
		}
		seen[key] = true
	}
	if len(seen) < 2 {
		t.Fatalf("ATPG produced %d distinct vectors, want several", len(seen))
	}
}

// TestATPGAgreesWithRandomProperty: whenever random simulation finds a
// distinguishing vector, ATPG must find one too (and vice versa when the
// miter is UNSAT, random must fail).
func TestATPGAgreesWithRandomProperty(t *testing.T) {
	f := func(seed int64) bool {
		golden, err := gen.Generate(gen.Spec{Name: "agree", Inputs: 5, Outputs: 2, Gates: 20, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		faulty, _, err := faults.Inject(golden, faults.Options{Count: 1, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		_, randErr := Random(golden, faulty, Options{Count: 1, Seed: seed, MaxPatterns: 1 << 12})
		_, atpgErr := ATPG(golden, faulty, ATPGOptions{Count: 1})
		if randErr == nil {
			return atpgErr == nil
		}
		// Random exhausted its budget: with 5 inputs (32 vectors) and 4096
		// patterns, exhaustive coverage is certain, so ATPG must agree.
		return atpgErr == ErrUndetected
	}
	cfg := &quick.Config{MaxCount: 40}
	if testing.Short() {
		cfg.MaxCount = 10
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestInterfaceMismatch(t *testing.T) {
	golden, _ := scenario(t, 15, 1)
	other, err := gen.Generate(gen.Spec{Name: "other", Inputs: 3, Outputs: 1, Gates: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Random(golden, other, Options{Count: 1}); err == nil {
		t.Fatal("interface mismatch not detected")
	}
	if _, err := ATPG(golden, other, ATPGOptions{}); err == nil {
		t.Fatal("interface mismatch not detected by ATPG")
	}
}

func TestVerifyCatchesBadTests(t *testing.T) {
	golden, faulty := scenario(t, 16, 1)
	tests, err := Random(golden, faulty, Options{Count: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	bad := tests[0].Clone()
	bad.Want = !bad.Want
	if Verify(golden, faulty, circuit.TestSet{bad}) != 0 {
		t.Fatal("corrupted test not flagged")
	}
}
