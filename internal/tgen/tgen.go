// Package tgen generates the diagnosis test-sets (Definition 1/2 of the
// paper): triples (t, o, v) of an input vector, an output where the
// faulty implementation disagrees with the specification, and the correct
// value. Two engines are provided: fast random bit-parallel simulation of
// the golden/faulty pair, and a SAT-based distinguishing-vector ATPG
// (miter construction in the tradition of Larrabee's SAT test
// generation), used when random patterns fail to expose a fault.
package tgen

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/sat"
	"repro/internal/sim"
)

// PerVector selects how many tests one failing vector contributes.
type PerVector int

// PerVector policies: FirstOutput emits a single test per failing vector
// (at its first failing output, in circuit output order); AllOutputs
// emits one test per failing output, so additional tests can introduce
// additional outputs into the diagnosis problem (cf. the paper's Table 3
// discussion).
const (
	FirstOutput PerVector = iota
	AllOutputs
)

// Options configures random test generation.
type Options struct {
	Count       int       // number of tests m to produce (required)
	Seed        int64     // RNG seed
	MaxPatterns int       // random-vector budget (default 1 << 16)
	PerVector   PerVector // tests per failing vector (default FirstOutput)
}

// ErrUndetected reports that no test could be produced within the
// budget: the injected fault may be untestable or extremely hard to hit
// randomly; use ATPG in that case.
var ErrUndetected = errors.New("tgen: no distinguishing vector found")

// Random produces up to opts.Count tests by simulating random vectors on
// the golden and faulty circuits in 64-wide batches and collecting
// (vector, output, correct value) triples where they disagree. The
// result is deterministic in the seed. It returns ErrUndetected if not a
// single test was found within the pattern budget; a short (non-empty)
// test-set is returned without error.
func Random(golden, faulty *circuit.Circuit, opts Options) (circuit.TestSet, error) {
	if err := compatible(golden, faulty); err != nil {
		return nil, err
	}
	count := opts.Count
	if count <= 0 {
		count = 1
	}
	maxPatterns := opts.MaxPatterns
	if maxPatterns <= 0 {
		maxPatterns = 1 << 16
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	gSim := sim.New(golden)
	fSim := sim.New(faulty)
	nIn := len(golden.Inputs)
	words := make([]uint64, nIn)
	var tests circuit.TestSet
	for done := 0; done < maxPatterns && len(tests) < count; done += 64 {
		for i := range words {
			words[i] = rng.Uint64()
		}
		gSim.Run(words)
		fSim.Run(words)
		// Lanes where any output differs.
		var differs uint64
		for _, o := range golden.Outputs {
			differs |= gSim.Value(o) ^ fSim.Value(o)
		}
		if differs == 0 {
			continue
		}
		for lane := uint(0); lane < 64 && len(tests) < count; lane++ {
			if differs>>lane&1 == 0 {
				continue
			}
			vec := make([]bool, nIn)
			for i := range vec {
				vec[i] = words[i]>>lane&1 == 1
			}
			for _, o := range golden.Outputs {
				if (gSim.Value(o)^fSim.Value(o))>>lane&1 == 0 {
					continue
				}
				tests = append(tests, circuit.Test{
					Vector: vec,
					Output: o,
					Want:   gSim.Bit(o, lane),
				})
				if opts.PerVector == FirstOutput || len(tests) >= count {
					break
				}
			}
		}
	}
	if len(tests) == 0 {
		return nil, ErrUndetected
	}
	return tests, nil
}

// ATPGOptions configures SAT-based distinguishing-vector generation.
type ATPGOptions struct {
	Count        int   // number of distinct vectors to derive (default 1)
	MaxConflicts int64 // per-solve budget (0 = unlimited)
	PerVector    PerVector
}

// ATPG derives distinguishing input vectors with a miter: both circuits
// share input variables and at least one output pair must differ. Each
// model yields a vector, which is then simulated to emit tests exactly
// like Random. Distinct vectors are enforced by exact blocking clauses
// over the inputs. Returns ErrUndetected when the miter is
// unsatisfiable, i.e. the two circuits are equivalent.
func ATPG(golden, faulty *circuit.Circuit, opts ATPGOptions) (circuit.TestSet, error) {
	if err := compatible(golden, faulty); err != nil {
		return nil, err
	}
	count := opts.Count
	if count <= 0 {
		count = 1
	}
	s := sat.New()
	s.MaxConflicts = opts.MaxConflicts
	inputs := make([]sat.Var, len(golden.Inputs))
	for i := range inputs {
		inputs[i] = s.NewVar()
	}
	gVars := cnf.EncodeCopyWithInputs(s, golden, inputs)
	fVars := cnf.EncodeCopyWithInputs(s, faulty, inputs)
	diff := make([]sat.Lit, len(golden.Outputs))
	for i := range golden.Outputs {
		d := sat.PosLit(s.NewVar())
		g := sat.PosLit(gVars[golden.Outputs[i]])
		f := sat.PosLit(fVars[faulty.Outputs[i]])
		// d <-> g XOR f
		s.AddClause(d.Neg(), g, f)
		s.AddClause(d.Neg(), g.Neg(), f.Neg())
		s.AddClause(d, g.Neg(), f)
		s.AddClause(d, g, f.Neg())
		diff[i] = d
	}
	s.AddClause(diff...)

	proj := make([]sat.Lit, len(inputs))
	for i, v := range inputs {
		proj[i] = sat.PosLit(v)
	}
	gSim := sim.New(golden)
	fSim := sim.New(faulty)
	var tests circuit.TestSet
	n, complete := s.EnumerateProjected(proj, sat.EnumOptions{MaxSolutions: count, ExactBlocking: true}, func([]sat.Lit) bool {
		vec := make([]bool, len(inputs))
		for i, v := range inputs {
			vec[i] = s.Value(v) == sat.LTrue
		}
		gSim.RunVector(vec)
		fSim.RunVector(vec)
		for _, o := range golden.Outputs {
			if gSim.OutputBit(o) == fSim.OutputBit(o) {
				continue
			}
			tests = append(tests, circuit.Test{Vector: vec, Output: o, Want: gSim.OutputBit(o)})
			if opts.PerVector == FirstOutput {
				break
			}
		}
		return true
	})
	if n == 0 {
		if complete {
			return nil, ErrUndetected
		}
		return nil, fmt.Errorf("tgen: ATPG budget exhausted before a verdict")
	}
	return tests, nil
}

// Verify checks the test-set invariant: every test fails on the faulty
// circuit (it produces !Want at Output) and Want matches the golden
// circuit. It returns the index of the first violating test, or -1.
func Verify(golden, faulty *circuit.Circuit, tests circuit.TestSet) int {
	gSim := sim.New(golden)
	fSim := sim.New(faulty)
	for i, t := range tests {
		gSim.RunVector(t.Vector)
		fSim.RunVector(t.Vector)
		if gSim.OutputBit(t.Output) != t.Want || fSim.OutputBit(t.Output) == t.Want {
			return i
		}
	}
	return -1
}

func compatible(golden, faulty *circuit.Circuit) error {
	if len(golden.Inputs) != len(faulty.Inputs) || len(golden.Outputs) != len(faulty.Outputs) {
		return fmt.Errorf("tgen: interface mismatch: golden %d/%d vs faulty %d/%d inputs/outputs",
			len(golden.Inputs), len(golden.Outputs), len(faulty.Inputs), len(faulty.Outputs))
	}
	return nil
}
