package sat

// watchSlab stores every literal's watch list in one flat []watch,
// addressed by per-literal {off, n, cap} ranges — the watch-side twin
// of the clause arena. Propagation walks one contiguous region per
// literal instead of chasing [][]watch headers, and Clone copies the
// whole structure with two bulk copies instead of carving a slice per
// literal.
//
// A push into a full range relocates that list to the end of the slab
// (doubling its capacity, amortized O(1)); the abandoned words are
// counted in wasted and reclaimed by the next rebuild, which lays all
// lists back out contiguously with exact capacities. Ranges never
// overlap, so in-place filtering during propagation cannot clobber a
// neighbour, and growing the backing array leaves offsets valid.
type watchSlab struct {
	rng    []watchRange // indexed by Lit, two per variable
	data   []watch
	wasted uint32 // words abandoned by relocations since the last rebuild
}

// watchRange addresses one literal's watch list inside the slab.
type watchRange struct {
	off uint32 // first element in data
	n   uint32 // live entries
	cap uint32 // reserved entries
}

// newVar reserves the two (empty) watch lists of a fresh variable.
func (sl *watchSlab) newVar() {
	sl.rng = append(sl.rng, watchRange{}, watchRange{})
}

// push appends w to literal p's watch list, relocating the list to the
// slab's end when it is full.
func (sl *watchSlab) push(p Lit, w watch) {
	r := &sl.rng[p]
	if r.n == r.cap {
		sl.relocate(r)
	}
	sl.data[r.off+r.n] = w
	r.n++
}

// relocate moves r's list to the end of the slab with doubled capacity.
// The old region is abandoned (counted in wasted) until the next
// rebuild compacts the slab.
func (sl *watchSlab) relocate(r *watchRange) {
	newCap := r.cap * 2
	if newCap < 4 {
		newCap = 4
	}
	off := uint32(len(sl.data))
	sl.data = append(sl.data, make([]watch, newCap)...)
	copy(sl.data[off:off+r.n], sl.data[r.off:r.off+r.n])
	sl.wasted += r.cap
	r.off = off
	r.cap = newCap
}

// remove deletes the first watch for clause cr from literal p's list by
// swapping in the last entry (order is not preserved; only the gen2
// vivifier uses this, and gen2 has its own golden recording).
func (sl *watchSlab) remove(p Lit, cr CRef) {
	r := &sl.rng[p]
	for i := uint32(0); i < r.n; i++ {
		if sl.data[r.off+i].cref() == cr {
			r.n--
			sl.data[r.off+i] = sl.data[r.off+r.n]
			return
		}
	}
}
