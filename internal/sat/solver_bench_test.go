package sat

import (
	"testing"
)

// layeredInstance encodes a random Tseitin circuit — free inputs plus
// AND/OR/XOR gate definitions over earlier variables — which is exactly
// the shape of the diagnosis CNFs (gate cones + correction muxes):
// trivially satisfiable, binary-clause-rich, and propagation-heavy.
func layeredInstance(inputs, gates int, seed uint64) (*Solver, []Var) {
	s := New()
	all := make([]Var, 0, inputs+gates)
	for i := 0; i < inputs; i++ {
		all = append(all, s.NewVar())
	}
	rng := xorshift(seed)
	for g := 0; g < gates; g++ {
		a := MkLit(all[rng.next(len(all))], rng.next(2) == 1)
		b := MkLit(all[rng.next(len(all))], rng.next(2) == 1)
		x := s.NewVar()
		switch rng.next(3) {
		case 0: // x <-> a & b
			s.AddClause(NegLit(x), a)
			s.AddClause(NegLit(x), b)
			s.AddClause(PosLit(x), a.Neg(), b.Neg())
		case 1: // x <-> a | b
			s.AddClause(PosLit(x), a.Neg())
			s.AddClause(PosLit(x), b.Neg())
			s.AddClause(NegLit(x), a, b)
		default: // x <-> a ^ b
			s.AddClause(NegLit(x), a, b)
			s.AddClause(NegLit(x), a.Neg(), b.Neg())
			s.AddClause(PosLit(x), a.Neg(), b)
			s.AddClause(PosLit(x), a, b.Neg())
		}
		all = append(all, x)
	}
	return s, all
}

// BenchmarkPropagateHot measures the steady-state cost of the CDCL inner
// loop: the instance is solved once (filling learnt clauses and saved
// phases), then every iteration re-solves under a single assumption that
// agrees with the saved model. Phase saving replays the model without
// conflicts, so the timed region is pure decide + propagate over the
// full clause database — the hot loop every diagnosis engine bottlenecks
// on. Must report 0 allocs/op: watch lists, trail and model buffers are
// all resident.
func BenchmarkPropagateHot(b *testing.B) {
	run := func(b *testing.B, s *Solver, vars []Var) {
		if st := s.Solve(); st != StatusSat {
			b.Skipf("instance not SAT: %v", st)
		}
		assumps := make([]Lit, 1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v := vars[i%len(vars)]
			assumps[0] = MkLit(v, s.Value(v) == LFalse)
			if s.Solve(assumps...) != StatusSat {
				b.Fatal("model replay hit a conflict")
			}
		}
		b.ReportMetric(float64(s.Stats.Propagations)/float64(b.N), "props/op")
	}
	b.Run("rand3sat/nv1000", func(b *testing.B) {
		s, vars := randomInstance(1000, 0x2545F4914F6CDD1D)
		run(b, s, vars)
	})
	b.Run("circuit/g20000", func(b *testing.B) {
		s, vars := layeredInstance(64, 20000, 0x9E3779B97F4A7C15)
		run(b, s, vars)
	})
}

// BenchmarkAnalyzeHot drives the conflict-analysis path: a bounded solve
// on an unsatisfiable core keeps the solver learning (and, with the low
// learnt cap, reducing) forever. Pre-arena this allocated one clause
// object plus one literal slice per learnt; with the arena, steady-state
// allocations come only from arena growth, which compaction bounds.
func BenchmarkAnalyzeHot(b *testing.B) {
	s := pigeonhole(10, 9)
	s.maxLearnts = 200
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.MaxConflicts = 200
		if st := s.Solve(); st == StatusSat {
			b.Fatal("PHP cannot be SAT")
		}
		if !s.ok {
			b.Fatal("bounded solve decided the instance") // keep it running forever
		}
	}
	b.ReportMetric(float64(s.Stats.Learnt)/float64(b.N), "learnts/op")
}

// BenchmarkCloneMicro isolates Clone on bare (circuit-free) instances;
// the end-to-end diagnosis clone cost is BenchmarkSolverClone at the
// repository root.
func BenchmarkCloneMicro(b *testing.B) {
	instances := []struct {
		name  string
		build func() *Solver
	}{
		{"rand3sat/nv1000", func() *Solver { s, _ := randomInstance(1000, 0x9E3779B97F4A7C15); return s }},
		{"circuit/g20000", func() *Solver { s, _ := layeredInstance(64, 20000, 0x2545F4914F6CDD1D); return s }},
	}
	for _, inst := range instances {
		s := inst.build()
		if st := s.Solve(); st == StatusUnknown {
			b.Fatal("budget hit")
		}
		for _, keep := range []bool{true, false} {
			name := inst.name + "/bare"
			if keep {
				name = inst.name + "/keepLearnts"
			}
			b.Run(name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if c := s.Clone(keep); c == nil {
						b.Fatal("nil clone")
					}
				}
			})
		}
	}
}
