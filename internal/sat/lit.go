// Package sat implements a complete incremental CDCL SAT solver in the
// lineage of GRASP/Chaff/MiniSat: two-literal watching, first-UIP conflict
// learning with clause minimization, VSIDS decision heuristics with phase
// saving, Luby restarts, activity/LBD-based learnt-clause reduction,
// solving under assumptions, and level-0 database simplification.
//
// The paper under reproduction ran zchaff both for the SAT-based diagnosis
// instances and for the set-covering instances; this package plays that
// role here. All-solutions enumeration with blocking clauses (the
// engine of both COV and BSAT) is provided by EnumerateProjected.
package sat

import "fmt"

// Var is a 0-based propositional variable index.
type Var int32

// Lit is a literal: variable times two, plus one if negated.
type Lit int32

// LitUndef is the absent literal.
const LitUndef Lit = -1

// MkLit builds a literal over v, negated if neg.
func MkLit(v Var, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// PosLit returns the positive literal of v.
func PosLit(v Var) Lit { return Lit(v << 1) }

// NegLit returns the negative literal of v.
func NegLit(v Var) Lit { return Lit(v<<1) | 1 }

// Var returns the literal's variable.
func (l Lit) Var() Var { return Var(l >> 1) }

// Neg returns the complement literal.
func (l Lit) Neg() Lit { return l ^ 1 }

// Sign reports whether the literal is negated.
func (l Lit) Sign() bool { return l&1 == 1 }

// String renders the literal in DIMACS style (variables 1-based).
func (l Lit) String() string {
	if l == LitUndef {
		return "undef"
	}
	if l.Sign() {
		return fmt.Sprintf("-%d", int(l.Var())+1)
	}
	return fmt.Sprintf("%d", int(l.Var())+1)
}

// LBool is a lifted Boolean: true, false or undefined.
type LBool int8

// LBool constants.
const (
	LUndef LBool = 0
	LTrue  LBool = 1
	LFalse LBool = -1
)

// String renders the lifted Boolean.
func (b LBool) String() string {
	switch b {
	case LTrue:
		return "true"
	case LFalse:
		return "false"
	default:
		return "undef"
	}
}

// xorSign flips the polarity of an assignment for a negated literal.
func (b LBool) xorSign(neg bool) LBool {
	if neg {
		return -b
	}
	return b
}

// Status is the outcome of a Solve call.
type Status int

// Solve outcomes. StatusUnknown means a budget (conflicts, deadline or
// user stop) expired before a verdict.
const (
	StatusUnknown Status = iota
	StatusSat
	StatusUnsat
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusSat:
		return "SAT"
	case StatusUnsat:
		return "UNSAT"
	default:
		return "UNKNOWN"
	}
}

// Stats counts solver work; useful for the paper's performance analysis
// and the hybrid experiments.
type Stats struct {
	Decisions    int64
	Propagations int64
	Conflicts    int64
	Restarts     int64
	Learnt       int64
	LearntLits   int64
	MinimizedLit int64
	Simplifies   int64
	Reduces      int64
	// Gen2 search counters (zero under the default configuration).
	LBDRestarts      int64 // restarts fired by the LBD-EMA trigger
	VivifiedLits     int64 // literals removed by clause vivification
	ChronoBacktracks int64 // deep backjumps converted to one-level backtracks
	// Projected-enumeration counters (zero under the legacy mode).
	EarlyTerms        int64 // models declared before the free suffix was assigned
	ContinueBackjumps int64 // blocked-continue backjumps (re-solves avoided)
	SkippedDecisions  int64 // variables left unassigned at early termination
}

// Add returns the field-wise sum s + o. Sharded enumeration uses it to
// aggregate the per-clone work counters into one report.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Decisions:    s.Decisions + o.Decisions,
		Propagations: s.Propagations + o.Propagations,
		Conflicts:    s.Conflicts + o.Conflicts,
		Restarts:     s.Restarts + o.Restarts,
		Learnt:       s.Learnt + o.Learnt,
		LearntLits:   s.LearntLits + o.LearntLits,
		MinimizedLit: s.MinimizedLit + o.MinimizedLit,
		Simplifies:   s.Simplifies + o.Simplifies,
		Reduces:      s.Reduces + o.Reduces,

		LBDRestarts:      s.LBDRestarts + o.LBDRestarts,
		VivifiedLits:     s.VivifiedLits + o.VivifiedLits,
		ChronoBacktracks: s.ChronoBacktracks + o.ChronoBacktracks,

		EarlyTerms:        s.EarlyTerms + o.EarlyTerms,
		ContinueBackjumps: s.ContinueBackjumps + o.ContinueBackjumps,
		SkippedDecisions:  s.SkippedDecisions + o.SkippedDecisions,
	}
}

// Sub returns the field-wise difference s - o: the work performed since
// the snapshot o was taken. Long-lived sessions use it to attribute
// solver work to individual enumeration rounds.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Decisions:    s.Decisions - o.Decisions,
		Propagations: s.Propagations - o.Propagations,
		Conflicts:    s.Conflicts - o.Conflicts,
		Restarts:     s.Restarts - o.Restarts,
		Learnt:       s.Learnt - o.Learnt,
		LearntLits:   s.LearntLits - o.LearntLits,
		MinimizedLit: s.MinimizedLit - o.MinimizedLit,
		Simplifies:   s.Simplifies - o.Simplifies,
		Reduces:      s.Reduces - o.Reduces,

		LBDRestarts:      s.LBDRestarts - o.LBDRestarts,
		VivifiedLits:     s.VivifiedLits - o.VivifiedLits,
		ChronoBacktracks: s.ChronoBacktracks - o.ChronoBacktracks,

		EarlyTerms:        s.EarlyTerms - o.EarlyTerms,
		ContinueBackjumps: s.ContinueBackjumps - o.ContinueBackjumps,
		SkippedDecisions:  s.SkippedDecisions - o.SkippedDecisions,
	}
}

// luby returns the i-th element (1-based) of the Luby restart sequence
// 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, ...
func luby(i int64) int64 {
	x := i - 1
	size, seq := int64(1), uint(0)
	for size < x+1 {
		seq++
		size = 2*size + 1
	}
	for size-1 != x {
		size = (size - 1) >> 1
		seq--
		x %= size
	}
	return 1 << seq
}
