package sat

import (
	"context"
	"testing"
	"time"
)

// randomInstance builds a deterministic below-phase-transition 3-SAT
// instance (same generator family as the solver benchmark).
func randomInstance(nVars int, seed uint64) (*Solver, []Var) {
	s := New()
	vars := make([]Var, nVars)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	state := seed
	next := func(mod int) int {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return int(state % uint64(mod))
	}
	for i := 0; i < 36*nVars/10; i++ {
		a, b, c := vars[next(nVars)], vars[next(nVars)], vars[next(nVars)]
		s.AddClause(MkLit(a, next(2) == 0), MkLit(b, next(2) == 0), MkLit(c, next(2) == 0))
	}
	return s, vars
}

func TestCloneAgreesWithOriginal(t *testing.T) {
	s, vars := randomInstance(120, 0x2545F4914F6CDD1D)
	clone := s.Clone(false).(*Solver)

	// Same verdict on the bare instance and under assumption probes.
	if a, b := s.Solve(), clone.Solve(); a != b {
		t.Fatalf("bare solve: original %v, clone %v", a, b)
	}
	for i := 0; i < 10; i++ {
		assumps := []Lit{MkLit(vars[i], i%2 == 0), MkLit(vars[i+20], i%3 == 0)}
		if a, b := s.Solve(assumps...), clone.Solve(assumps...); a != b {
			t.Fatalf("assumps %v: original %v, clone %v", assumps, a, b)
		}
	}
}

func TestCloneIsIndependent(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(PosLit(a), PosLit(b))
	clone := s.Clone(false).(*Solver)

	// Contradicting the clone must leave the original satisfiable.
	clone.AddClause(NegLit(a))
	clone.AddClause(NegLit(b))
	if st := clone.Solve(); st != StatusUnsat {
		t.Fatalf("clone should be UNSAT, got %v", st)
	}
	if st := s.Solve(); st != StatusSat {
		t.Fatalf("original should stay SAT, got %v", st)
	}
	// And fresh variables on the clone must not leak into the original.
	clone2 := s.Clone(false).(*Solver)
	clone2.NewVar()
	if clone2.NumVars() != s.NumVars()+1 {
		t.Fatalf("clone NewVar: %d vs original %d", clone2.NumVars(), s.NumVars())
	}
}

func TestCloneLearnts(t *testing.T) {
	s, _ := randomInstance(200, 0x9E3779B97F4A7C15)
	if st := s.Solve(); st == StatusUnknown {
		t.Fatal("unexpected budget expiry")
	}
	if s.NumLearnts() == 0 {
		t.Skip("instance solved without retained learnt clauses")
	}
	with := s.Clone(true).(*Solver)
	without := s.Clone(false).(*Solver)
	if with.NumLearnts() != s.NumLearnts() {
		t.Fatalf("keepLearnts clone has %d learnts, original %d", with.NumLearnts(), s.NumLearnts())
	}
	if without.NumLearnts() != 0 {
		t.Fatalf("bare clone carries %d learnt clauses", without.NumLearnts())
	}
	// Clone statistics start at zero for per-shard attribution.
	if with.Statistics() != (Stats{}) {
		t.Fatalf("clone statistics not fresh: %+v", with.Statistics())
	}
	// Both clones remain correct solvers.
	if a, b := with.Solve(), without.Solve(); a != StatusSat || b != StatusSat {
		t.Fatalf("clone verdicts after solve: %v / %v", a, b)
	}
}

func TestCloneAfterTopLevelFacts(t *testing.T) {
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	s.AddClause(PosLit(a))            // unit fact
	s.AddClause(NegLit(a), PosLit(b)) // propagates b at level 0
	s.AddClause(NegLit(b), PosLit(c))
	clone := s.Clone(false).(*Solver)
	if st := clone.Solve(); st != StatusSat {
		t.Fatalf("clone of top-level-propagated solver: %v", st)
	}
	for _, v := range []Var{a, b, c} {
		if clone.Value(v) != LTrue {
			t.Fatalf("var %d should be forced true in the clone", v)
		}
	}
	if st := clone.Solve(NegLit(c)); st != StatusUnsat {
		t.Fatal("clone lost the implication chain")
	}
}

func TestSolveContextCancelled(t *testing.T) {
	s, _ := randomInstance(120, 0xD1B54A32D192ED03)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if st := s.SolveContext(ctx); st != StatusUnknown {
		t.Fatalf("cancelled context: want StatusUnknown, got %v", st)
	}
	// The solver stays usable afterwards.
	if st := s.SolveContext(context.Background()); st == StatusUnknown {
		t.Fatal("solver unusable after cancelled solve")
	}
}

func TestEnumerateCancelMidEnumeration(t *testing.T) {
	// 8 free variables, no constraints: 256 exact-blocking models. Cancel
	// from inside the callback after the third; the enumeration must stop
	// at the next loop iteration and report incompleteness.
	s := New()
	proj := make([]Lit, 8)
	for i := range proj {
		proj[i] = PosLit(s.NewVar())
	}
	ctx, cancel := context.WithCancel(context.Background())
	start := time.Now()
	n, complete := s.EnumerateProjected(proj, EnumOptions{Ctx: ctx, ExactBlocking: true}, func([]Lit) bool {
		if time.Since(start) > time.Minute {
			t.Fatal("cancellation did not surface")
		}
		cancel()
		return true
	})
	if complete {
		t.Fatal("cancelled enumeration reported complete")
	}
	if n != 1 {
		t.Fatalf("enumeration continued after cancel: %d models", n)
	}
}
