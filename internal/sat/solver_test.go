package sat

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestEmptySolverIsSat(t *testing.T) {
	s := New()
	if got := s.Solve(); got != StatusSat {
		t.Fatalf("empty solver: got %v, want SAT", got)
	}
}

func TestSingleUnit(t *testing.T) {
	s := New()
	v := s.NewVar()
	if !s.AddClause(PosLit(v)) {
		t.Fatal("unit clause rejected")
	}
	if got := s.Solve(); got != StatusSat {
		t.Fatalf("got %v, want SAT", got)
	}
	if s.Value(v) != LTrue {
		t.Fatalf("v = %v, want true", s.Value(v))
	}
}

func TestContradictoryUnits(t *testing.T) {
	s := New()
	v := s.NewVar()
	s.AddClause(PosLit(v))
	if s.AddClause(NegLit(v)) {
		t.Fatal("contradicting unit accepted")
	}
	if got := s.Solve(); got != StatusUnsat {
		t.Fatalf("got %v, want UNSAT", got)
	}
}

func TestEmptyClauseIsUnsat(t *testing.T) {
	s := New()
	s.NewVar()
	if s.AddClause() {
		t.Fatal("empty clause accepted")
	}
	if got := s.Solve(); got != StatusUnsat {
		t.Fatalf("got %v, want UNSAT", got)
	}
}

func TestTautologyIgnored(t *testing.T) {
	s := New()
	v := s.NewVar()
	w := s.NewVar()
	if !s.AddClause(PosLit(v), NegLit(v)) {
		t.Fatal("tautology rejected")
	}
	if s.NumClauses() != 0 {
		t.Fatalf("tautology stored: %d clauses", s.NumClauses())
	}
	s.AddClause(PosLit(w))
	if got := s.Solve(); got != StatusSat {
		t.Fatalf("got %v, want SAT", got)
	}
}

func TestDuplicateLiteralsCollapse(t *testing.T) {
	s := New()
	v := s.NewVar()
	// (v | v) is a unit clause.
	s.AddClause(PosLit(v), PosLit(v))
	if got := s.Solve(); got != StatusSat || s.Value(v) != LTrue {
		t.Fatalf("got %v value %v", got, s.Value(v))
	}
}

func TestImplicationChain(t *testing.T) {
	// x0 & (x0->x1) & (x1->x2) ... forces all true.
	s := New()
	const n = 50
	vars := make([]Var, n)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	s.AddClause(PosLit(vars[0]))
	for i := 0; i+1 < n; i++ {
		s.AddClause(NegLit(vars[i]), PosLit(vars[i+1]))
	}
	if got := s.Solve(); got != StatusSat {
		t.Fatalf("got %v", got)
	}
	for i, v := range vars {
		if s.Value(v) != LTrue {
			t.Fatalf("x%d = %v, want true", i, s.Value(v))
		}
	}
}

// pigeonhole builds PHP(n+1, n): n+1 pigeons in n holes — classically UNSAT.
func pigeonhole(pigeons, holes int) *Solver {
	s := New()
	at := make([][]Var, pigeons)
	for p := range at {
		at[p] = make([]Var, holes)
		for h := range at[p] {
			at[p][h] = s.NewVar()
		}
	}
	for p := 0; p < pigeons; p++ {
		clause := make([]Lit, holes)
		for h := 0; h < holes; h++ {
			clause[h] = PosLit(at[p][h])
		}
		s.AddClause(clause...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(NegLit(at[p1][h]), NegLit(at[p2][h]))
			}
		}
	}
	return s
}

func TestPigeonholeUnsat(t *testing.T) {
	for n := 2; n <= 6; n++ {
		if got := pigeonhole(n+1, n).Solve(); got != StatusUnsat {
			t.Fatalf("PHP(%d,%d): got %v, want UNSAT", n+1, n, got)
		}
	}
}

func TestPigeonholeSatWhenEnoughHoles(t *testing.T) {
	for n := 2; n <= 6; n++ {
		if got := pigeonhole(n, n).Solve(); got != StatusSat {
			t.Fatalf("PHP(%d,%d): got %v, want SAT", n, n, got)
		}
	}
}

// bruteForceSat checks satisfiability of a clause list by enumeration.
func bruteForceSat(numVars int, clauses [][]Lit) bool {
	for m := 0; m < 1<<uint(numVars); m++ {
		ok := true
		for _, c := range clauses {
			sat := false
			for _, l := range c {
				bit := m>>uint(l.Var())&1 == 1
				if bit != l.Sign() {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func randomClauses(rng *rand.Rand, numVars, numClauses, width int) [][]Lit {
	cs := make([][]Lit, numClauses)
	for i := range cs {
		c := make([]Lit, width)
		for j := range c {
			c[j] = MkLit(Var(rng.Intn(numVars)), rng.Intn(2) == 1)
		}
		cs[i] = c
	}
	return cs
}

func TestRandom3SATAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := 300
	if testing.Short() {
		cases = 60
	}
	for i := 0; i < cases; i++ {
		nv := 4 + rng.Intn(9)
		nc := 2 + rng.Intn(6*nv)
		clauses := randomClauses(rng, nv, nc, 3)
		s := New()
		s.NewVars(nv)
		okDB := true
		for _, c := range clauses {
			if !s.AddClause(c...) {
				okDB = false
				break
			}
		}
		var got Status
		if okDB {
			got = s.Solve()
		} else {
			got = StatusUnsat
		}
		want := StatusSat
		if !bruteForceSat(nv, clauses) {
			want = StatusUnsat
		}
		if got != want {
			t.Fatalf("case %d (%d vars, %d clauses): got %v, want %v", i, nv, nc, got, want)
		}
		if got == StatusSat && okDB {
			// The reported model must satisfy every clause.
			for ci, c := range clauses {
				sat := false
				for _, l := range c {
					if s.ValueLit(l) == LTrue {
						sat = true
						break
					}
				}
				if !sat {
					t.Fatalf("case %d: model violates clause %d", i, ci)
				}
			}
		}
	}
}

func TestSolveUnderAssumptions(t *testing.T) {
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	// (a -> b), (b -> c)
	s.AddClause(NegLit(a), PosLit(b))
	s.AddClause(NegLit(b), PosLit(c))
	if got := s.Solve(PosLit(a), NegLit(c)); got != StatusUnsat {
		t.Fatalf("a & !c: got %v, want UNSAT", got)
	}
	if len(s.ConflictSet()) == 0 {
		t.Fatal("no failed-assumption core reported")
	}
	// The solver must remain usable and SAT without the bad assumption.
	if got := s.Solve(PosLit(a)); got != StatusSat {
		t.Fatalf("a alone: got %v, want SAT", got)
	}
	if s.Value(b) != LTrue || s.Value(c) != LTrue {
		t.Fatalf("implications not in model: b=%v c=%v", s.Value(b), s.Value(c))
	}
	// Assumptions must not persist.
	if got := s.Solve(NegLit(c)); got != StatusSat {
		t.Fatalf("!c alone: got %v, want SAT", got)
	}
	if s.Value(a) != LFalse {
		t.Fatalf("!c forces !a: a=%v", s.Value(a))
	}
}

func TestAssumptionAlreadyTrueAtLevel0(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(PosLit(a))
	s.AddClause(NegLit(a), PosLit(b))
	if got := s.Solve(PosLit(a), PosLit(b)); got != StatusSat {
		t.Fatalf("got %v, want SAT", got)
	}
	if got := s.Solve(NegLit(a)); got != StatusUnsat {
		t.Fatalf("got %v, want UNSAT under !a", got)
	}
}

func TestIncrementalAddBetweenSolves(t *testing.T) {
	s := New()
	vars := make([]Var, 4)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	s.AddClause(PosLit(vars[0]), PosLit(vars[1]))
	if got := s.Solve(); got != StatusSat {
		t.Fatalf("step 1: %v", got)
	}
	s.AddClause(NegLit(vars[0]))
	if got := s.Solve(); got != StatusSat {
		t.Fatalf("step 2: %v", got)
	}
	if s.Value(vars[1]) != LTrue {
		t.Fatalf("x1 = %v, want true", s.Value(vars[1]))
	}
	s.AddClause(NegLit(vars[1]))
	if got := s.Solve(); got != StatusUnsat {
		t.Fatalf("step 3: %v, want UNSAT", got)
	}
}

func TestConflictBudgetReturnsUnknown(t *testing.T) {
	s := pigeonhole(9, 8) // hard enough to exceed a tiny budget
	s.MaxConflicts = 5
	if got := s.Solve(); got != StatusUnknown {
		t.Fatalf("got %v, want UNKNOWN under 5-conflict budget", got)
	}
	// Budget removed: must finish and stay correct.
	s.MaxConflicts = 0
	if got := s.Solve(); got != StatusUnsat {
		t.Fatalf("got %v, want UNSAT after budget lifted", got)
	}
}

func TestEnumerateSubsetBlockingYieldsMinimalOnly(t *testing.T) {
	// Unconstrained variables: the empty true-set is a model and blocks
	// every superset, so subset-blocking enumeration yields exactly it.
	s := New()
	s.NewVars(3)
	proj := []Lit{PosLit(0), PosLit(1), PosLit(2)}
	n, complete := s.EnumerateProjected(proj, EnumOptions{}, func(trueLits []Lit) bool {
		if len(trueLits) != 0 {
			t.Fatalf("unexpected non-empty minimal projection %v", trueLits)
		}
		return true
	})
	if !complete || n != 1 {
		t.Fatalf("n=%d complete=%v, want 1 complete", n, complete)
	}
}

func TestEnumerateAllModels(t *testing.T) {
	// 3 free variables, no constraints: 8 full models under exact blocking.
	s := New()
	vars := []Var{s.NewVar(), s.NewVar(), s.NewVar()}
	proj := []Lit{PosLit(vars[0]), PosLit(vars[1]), PosLit(vars[2])}
	seen := map[string]bool{}
	n, complete := s.EnumerateProjected(proj, EnumOptions{ExactBlocking: true}, func(trueLits []Lit) bool {
		key := ""
		for _, l := range trueLits {
			key += l.String() + ","
		}
		if seen[key] {
			t.Fatalf("duplicate projection %q", key)
		}
		seen[key] = true
		return true
	})
	if !complete || n != 8 {
		t.Fatalf("n=%d complete=%v, want 8 complete", n, complete)
	}
}

func TestEnumerateBlocksSupersets(t *testing.T) {
	// Enumerating by increasing cardinality with blocking must yield only
	// inclusion-minimal sets: with clause (a|b), minimal sets {a},{b}.
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(PosLit(a), PosLit(b))
	proj := []Lit{PosLit(a), PosLit(b)}
	var solutions [][]Lit
	_, complete := s.EnumerateProjected(proj, EnumOptions{}, func(trueLits []Lit) bool {
		cp := append([]Lit(nil), trueLits...)
		solutions = append(solutions, cp)
		return true
	})
	if !complete {
		t.Fatal("enumeration incomplete")
	}
	for _, sol := range solutions {
		if len(sol) > 1 {
			t.Fatalf("non-minimal projection %v enumerated", sol)
		}
	}
	if len(solutions) != 2 {
		t.Fatalf("got %d solutions, want 2 ({a},{b})", len(solutions))
	}
}

func TestEnumerateMaxSolutions(t *testing.T) {
	s := New()
	s.NewVars(4)
	proj := []Lit{PosLit(0), PosLit(1), PosLit(2), PosLit(3)}
	n, complete := s.EnumerateProjected(proj, EnumOptions{MaxSolutions: 3, ExactBlocking: true}, nil)
	if n != 3 || complete {
		t.Fatalf("n=%d complete=%v, want 3 incomplete", n, complete)
	}
}

func TestPolarityAndActivitySteering(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(PosLit(a), PosLit(b)) // at least one true
	s.SetPolarity(a, true)
	s.SetPolarity(b, false)
	s.BumpActivity(a, 100)
	if got := s.Solve(); got != StatusSat {
		t.Fatalf("got %v", got)
	}
	if s.Value(a) != LTrue {
		t.Fatalf("steering ignored: a=%v", s.Value(a))
	}
	if s.Value(b) != LFalse {
		t.Fatalf("phase ignored: b=%v", s.Value(b))
	}
}

func TestLubySequence(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i + 1)); got != w {
			t.Fatalf("luby(%d) = %d, want %d", i+1, got, w)
		}
	}
}

func TestDIMACSRoundTrip(t *testing.T) {
	in := `c sample
p cnf 3 3
1 -2 0
2 3 0
-1 0
`
	s, err := ParseDIMACS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Solve(); got != StatusSat {
		t.Fatalf("got %v", got)
	}
	// x1 false -> first clause forces !x2 -> second forces x3.
	if s.Value(0) != LFalse || s.Value(1) != LFalse || s.Value(2) != LTrue {
		t.Fatalf("model %v %v %v", s.Value(0), s.Value(1), s.Value(2))
	}
	var sb strings.Builder
	if err := s.WriteDIMACS(&sb); err != nil {
		t.Fatal(err)
	}
	s2, err := ParseDIMACS(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Solve(); got != StatusSat {
		t.Fatalf("round-trip got %v", got)
	}
}

func TestParseDIMACSErrors(t *testing.T) {
	bad := []string{
		"p cnf x 3\n1 0\n",
		"p dnf 3 3\n1 0\n",
		"p cnf 2 1\n1 z 0\n",
	}
	for _, in := range bad {
		if _, err := ParseDIMACS(strings.NewReader(in)); err == nil {
			t.Fatalf("no error for %q", in)
		}
	}
}

// TestRandomEquivalenceQuick drives the solver with testing/quick-shaped
// random instances, comparing to brute force and checking incremental
// consistency: adding the negation of a model as a clause must not break
// correctness.
func TestRandomEquivalenceQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nv := 3 + rng.Intn(7)
		nc := 1 + rng.Intn(4*nv)
		clauses := randomClauses(rng, nv, nc, 2+rng.Intn(2))
		s := New()
		s.NewVars(nv)
		ok := true
		for _, c := range clauses {
			if !s.AddClause(c...) {
				ok = false
				break
			}
		}
		want := bruteForceSat(nv, clauses)
		if !ok {
			return !want
		}
		got := s.Solve() == StatusSat
		if got != want {
			return false
		}
		if got {
			// Block this model; solver must stay sound (model count drops by 1).
			var block []Lit
			for v := 0; v < nv; v++ {
				if s.Value(Var(v)) == LTrue {
					block = append(block, NegLit(Var(v)))
				} else {
					block = append(block, PosLit(Var(v)))
				}
			}
			s.AddClause(block...)
			again := s.Solve() == StatusSat
			count := countModels(nv, clauses)
			if again != (count > 1) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 150}
	if testing.Short() {
		cfg.MaxCount = 40
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func countModels(numVars int, clauses [][]Lit) int {
	count := 0
	for m := 0; m < 1<<uint(numVars); m++ {
		ok := true
		for _, c := range clauses {
			sat := false
			for _, l := range c {
				bit := m>>uint(l.Var())&1 == 1
				if bit != l.Sign() {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			count++
		}
	}
	return count
}

func TestStatsAccumulate(t *testing.T) {
	s := pigeonhole(6, 5)
	if got := s.Solve(); got != StatusUnsat {
		t.Fatalf("got %v", got)
	}
	if s.Stats.Conflicts == 0 || s.Stats.Decisions == 0 || s.Stats.Propagations == 0 {
		t.Fatalf("stats not collected: %+v", s.Stats)
	}
}

func TestLitHelpers(t *testing.T) {
	v := Var(5)
	p := PosLit(v)
	n := NegLit(v)
	if p.Var() != v || n.Var() != v {
		t.Fatal("Var round-trip failed")
	}
	if p.Sign() || !n.Sign() {
		t.Fatal("Sign wrong")
	}
	if p.Neg() != n || n.Neg() != p {
		t.Fatal("Neg wrong")
	}
	if MkLit(v, false) != p || MkLit(v, true) != n {
		t.Fatal("MkLit wrong")
	}
	if p.String() != "6" || n.String() != "-6" {
		t.Fatalf("String: %s %s", p, n)
	}
}

// TestSetBudgetResetsStaleDeadline: a deadline left over from an earlier
// enumeration round must fail fast, and SetBudget must clear it so the
// next round gets a fresh budget (the long-lived-session discipline).
func TestSetBudgetResetsStaleDeadline(t *testing.T) {
	s := New()
	v := s.NewVar()
	s.AddClause(PosLit(v))
	s.SetBudget(0, time.Nanosecond)
	time.Sleep(time.Millisecond)
	if got := s.Solve(); got != StatusUnknown {
		t.Fatalf("expired deadline: got %v, want UNKNOWN", got)
	}
	s.SetBudget(0, 0)
	if !s.Deadline.IsZero() {
		t.Fatal("SetBudget(0, 0) did not clear the deadline")
	}
	if got := s.Solve(); got != StatusSat {
		t.Fatalf("after budget reset: got %v, want SAT", got)
	}
	s.SetBudget(7, time.Hour)
	if s.MaxConflicts != 7 || s.Deadline.IsZero() {
		t.Fatal("SetBudget did not install the new budget")
	}
	if got := s.Solve(); got != StatusSat {
		t.Fatalf("with generous budget: got %v, want SAT", got)
	}
}

// TestEnumerateBlockExtraRetractsRounds: blocking clauses carrying a
// round-guard literal must stop constraining once the guard is asserted
// false, so a second round over the same projection sees the full
// solution space again.
func TestEnumerateBlockExtraRetractsRounds(t *testing.T) {
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	proj := []Lit{PosLit(a), PosLit(b), PosLit(c)}
	s.AddClause(proj...) // at least one true

	countRound := func() int {
		guard := PosLit(s.NewVar())
		n, complete := s.EnumerateProjected(proj, EnumOptions{
			Assumptions: []Lit{guard},
			BlockExtra:  []Lit{guard.Neg()},
		}, nil)
		if !complete {
			t.Fatal("round incomplete")
		}
		s.AddClause(guard.Neg()) // retire the round
		return n
	}
	first := countRound()
	if first != 3 {
		// Subset blocking over {a,b,c} with "at least one true" yields
		// exactly the three singletons.
		t.Fatalf("round 1: got %d solutions, want 3", first)
	}
	if second := countRound(); second != first {
		t.Fatalf("round 2 after retraction: got %d solutions, want %d", second, first)
	}
	// An unretracted round keeps blocking: a third round sharing round
	// 2's guard literal would see nothing — emulate by reusing blocking
	// without a guard.
	n, complete := s.EnumerateProjected(proj, EnumOptions{}, nil)
	if !complete || n != 3 {
		t.Fatalf("unguarded round: got %d (complete=%v), want 3", n, complete)
	}
	if n, _ = s.EnumerateProjected(proj, EnumOptions{}, nil); n != 0 {
		t.Fatalf("permanent blocking should persist: got %d solutions, want 0", n)
	}
}
