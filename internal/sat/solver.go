package sat

import (
	"context"
	"time"

	"repro/internal/trace"
)

// Solver is an incremental CDCL SAT solver. Construct with New; add
// variables with NewVar and clauses with AddClause; query with Solve,
// possibly under assumptions; read the model with Value. Clauses may be
// added between Solve calls (the incremental usage the diagnosis
// enumeration relies on). A Solver is not safe for concurrent use.
//
// Clauses live in a flat arena (see arena.go): clauses and learnts are
// CRef offsets, watch lists hold {CRef, blocker} pairs with binary
// clauses resolved inline, and reason is a []CRef — so the hot loops
// never chase heap pointers and Clone is a handful of bulk copies.
type Solver struct {
	ca      clauseArena
	clauses []CRef
	learnts []CRef
	wslab   watchSlab

	assigns  []LBool
	level    []int32
	reason   []CRef
	trail    []Lit
	trailLim []int
	qhead    int

	activity []float64
	varInc   float64
	order    varHeap
	polarity []bool
	decision []bool

	clauseInc float64

	seen      []byte
	toClear   []Var
	learntBuf []Lit
	redStack  []redFrame // litRedundant's explicit recursion stack

	// computeLBD's level-stamp buffer: stamp[level] == lbdGen marks a
	// level as already counted for the current learnt clause, replacing
	// the per-call map the pre-arena solver allocated.
	lbdStamp []int64
	lbdGen   int64

	// Compaction scratch (old/new offset maps), solver-resident so
	// steady-state reduceDB/simplify allocate nothing.
	relocOld []CRef
	relocNew []CRef

	ok          bool
	assumptions []Lit
	conflictSet []Lit // failed-assumption core after StatusUnsat under assumptions

	model []LBool

	// Budgets; zero values mean unlimited.
	MaxConflicts int64     // per-Solve conflict budget
	Deadline     time.Time // wall-clock cutoff, checked between restarts

	// Cooperative cancellation (SolveContext); polled between restarts
	// and every ctxPollConflicts conflicts inside the search.
	ctx     context.Context
	ctxNext int64 // Stats.Conflicts value at which to poll ctx next

	// Heuristic switches (enabled by default in New).
	ClauseMinimize bool
	PhaseSaving    bool

	// Search configuration (see config.go) and the gen2 restart state:
	// fast/slow EMAs of learnt-clause LBDs plus the warmup conflict
	// counter, deep-copied by Clone so a clone restarts exactly where
	// its parent would have. The counter is separate from
	// Stats.Conflicts deliberately: Clone zeroes Stats for per-clone
	// work attribution, and gating search behaviour on a reporting
	// counter would make a clone's search diverge from its fork point.
	cfg          SearchConfig
	emaFast      float64
	emaSlow      float64
	lbdConflicts int64
	// vivifyHead is the resumption cursor of the bounded vivification
	// batches (index into s.clauses, clamped modulo its length).
	vivifyHead int

	// Projected-enumeration state (enummode.go): the satisfaction
	// tracker behind EnumProjected, plus the reusable blocking-clause
	// and projection buffers that keep the enumeration loops
	// allocation-free in steady state. Clone starts these fresh — the
	// tracker is armed per EnumerateProjected call, never across forks.
	enum     enumTracker
	blockBuf []Lit
	projBuf  []Lit

	Stats Stats

	// rec, when non-nil, receives packed flight-recorder events at the
	// search's rare control-flow points (restarts, reductions, models,
	// exits — never per-propagation work). Clones inherit the pointer,
	// so shard workers and portfolio forks interleave their events on
	// one shared conflict-stamped timeline. Nil (the default) costs a
	// single pointer test per event site.
	rec *trace.Recorder

	maxLearnts    float64
	simpDBAssigns int
}

// New returns an empty solver.
func New() *Solver {
	return &Solver{
		ok:             true,
		varInc:         1,
		clauseInc:      1,
		ClauseMinimize: true,
		PhaseSaving:    true,
		simpDBAssigns:  -1,
	}
}

// NewVar introduces a fresh variable and returns it.
func (s *Solver) NewVar() Var {
	v := Var(len(s.assigns))
	s.assigns = append(s.assigns, LUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, CRefUndef)
	s.activity = append(s.activity, 0)
	s.polarity = append(s.polarity, true) // default phase: negative (MiniSat style)
	s.decision = append(s.decision, true)
	s.seen = append(s.seen, 0)
	s.wslab.newVar()
	s.order.insert(v, s.activity)
	return v
}

// NewVars introduces n fresh variables and returns the first.
func (s *Solver) NewVars(n int) Var {
	first := Var(len(s.assigns))
	for i := 0; i < n; i++ {
		s.NewVar()
	}
	return first
}

// NumVars returns the number of variables.
func (s *Solver) NumVars() int { return len(s.assigns) }

// NumClauses returns the number of problem clauses currently stored
// (level-0-satisfied clauses may have been simplified away).
func (s *Solver) NumClauses() int { return len(s.clauses) }

// NumLearnts returns the number of retained learnt clauses.
func (s *Solver) NumLearnts() int { return len(s.learnts) }

// Okay reports whether the clause database is not yet known unsatisfiable.
func (s *Solver) Okay() bool { return s.ok }

func (s *Solver) value(l Lit) LBool  { return s.assigns[l.Var()].xorSign(l.Sign()) }
func (s *Solver) decisionLevel() int { return len(s.trailLim) }
func (s *Solver) varLevel(v Var) int { return int(s.level[v]) }
func (s *Solver) abstractLevelOK(v Var, mask uint32) bool {
	return mask&(1<<uint(s.level[v]&31)) != 0
}

// SetRecorder installs (or, with nil, removes) the flight recorder
// receiving this solver's search events. Observation-only: recording
// never perturbs the search trajectory.
func (s *Solver) SetRecorder(r *trace.Recorder) { s.rec = r }

// FlightRecorder returns the installed flight recorder, or nil.
func (s *Solver) FlightRecorder() *trace.Recorder { return s.rec }

// record emits a flight-recorder event stamped with the conflict
// clock. The nil test is the entire disabled-path cost.
func (s *Solver) record(k trace.EventKind) {
	if s.rec != nil {
		s.rec.Record(k, uint64(s.Stats.Conflicts))
	}
}

// Value returns the model value of v after a StatusSat Solve.
func (s *Solver) Value(v Var) LBool {
	if int(v) < len(s.model) {
		return s.model[v]
	}
	return LUndef
}

// ValueLit returns the model value of a literal after StatusSat.
func (s *Solver) ValueLit(l Lit) LBool {
	return s.Value(l.Var()).xorSign(l.Sign())
}

// ConflictSet returns the subset of the assumptions under which the last
// Solve proved unsatisfiability (a failed-assumption core, negated form).
func (s *Solver) ConflictSet() []Lit { return s.conflictSet }

// Statistics returns the accumulated work counters (the Stats field,
// behind the Backend interface).
func (s *Solver) Statistics() Stats { return s.Stats }

// SetPolarity fixes the saved phase of v: the value the solver tries
// first when branching on v. Hybrid diagnosis uses this to steer the
// search toward simulation-derived candidate sets.
func (s *Solver) SetPolarity(v Var, val bool) { s.polarity[v] = !val }

// BumpActivity increases the VSIDS activity of v by amount times the
// current bump increment, so hot variables are branched on first.
func (s *Solver) BumpActivity(v Var, amount float64) {
	s.bumpVarBy(v, amount*s.varInc)
}

// SetBudget gives subsequent Solve calls a fresh budget: maxConflicts
// conflicts per Solve (0 = unlimited) and a wall-clock deadline of
// timeout from now (0 = none). Long-lived sessions call this at the
// start of every enumeration round so a stale deadline or conflict cap
// left over from an earlier round cannot poison later ones.
func (s *Solver) SetBudget(maxConflicts int64, timeout time.Duration) {
	s.MaxConflicts = maxConflicts
	if timeout > 0 {
		s.Deadline = time.Now().Add(timeout)
	} else {
		s.Deadline = time.Time{}
	}
}

// AddClause adds a clause over the given literals. It reports false if
// the database has become trivially unsatisfiable. The solver must be
// between Solve calls (decision level 0).
func (s *Solver) AddClause(lits ...Lit) bool {
	if s.decisionLevel() != 0 {
		panic("sat: AddClause above decision level 0")
	}
	if !s.ok {
		return false
	}
	// Sort, dedupe, drop false literals, detect satisfied/tautological.
	// The scratch is stored back so a growth here (possible while the
	// database is still conflict-free and analyze has never sized it)
	// happens once per session, not once per call.
	ls := append(s.learntBuf[:0], lits...)
	s.learntBuf = ls
	insertionSortLits(ls)
	out := ls[:0]
	var prev Lit = LitUndef
	for _, l := range ls {
		if l.Var() < 0 || int(l.Var()) >= len(s.assigns) {
			panic("sat: clause literal over undeclared variable")
		}
		switch {
		case s.value(l) == LTrue || l == prev.Neg():
			return true // satisfied or tautology
		case s.value(l) == LFalse || l == prev:
			continue // falsified at level 0, or duplicate
		}
		out = append(out, l)
		prev = l
	}
	switch len(out) {
	case 0:
		s.ok = false
		return false
	case 1:
		s.uncheckedEnqueue(out[0], CRefUndef)
		s.ok = s.propagate() == CRefUndef
		return s.ok
	}
	cr := s.ca.alloc(out, false)
	s.clauses = append(s.clauses, cr)
	s.attach(cr)
	return true
}

func insertionSortLits(ls []Lit) {
	for i := 1; i < len(ls); i++ {
		x := ls[i]
		j := i - 1
		for j >= 0 && ls[j] > x {
			ls[j+1] = ls[j]
			j--
		}
		ls[j+1] = x
	}
}

// attach installs the clause's two watches. Binary clauses get inline
// watches carrying the other literal, so propagating them never reads
// the arena.
func (s *Solver) attach(cr CRef) {
	lits := s.ca.lits(cr)
	l0, l1 := Lit(lits[0]), Lit(lits[1])
	if len(lits) == 2 {
		s.wslab.push(l0.Neg(), mkBinWatch(cr, l1))
		s.wslab.push(l1.Neg(), mkBinWatch(cr, l0))
		return
	}
	s.wslab.push(l0.Neg(), mkWatch(cr, l1))
	s.wslab.push(l1.Neg(), mkWatch(cr, l0))
}

// detach removes the clause's two watches (swap-removal; only the gen2
// vivifier detaches individual clauses, so watch-list order — which the
// default golden pins — is never perturbed under the default config).
func (s *Solver) detach(cr CRef) {
	lits := s.ca.lits(cr)
	s.wslab.remove(Lit(lits[0]).Neg(), cr)
	s.wslab.remove(Lit(lits[1]).Neg(), cr)
}

func (s *Solver) uncheckedEnqueue(l Lit, from CRef) {
	v := l.Var()
	if l.Sign() {
		s.assigns[v] = LFalse
	} else {
		s.assigns[v] = LTrue
	}
	s.level[v] = int32(s.decisionLevel())
	s.reason[v] = from
	s.trail = append(s.trail, l)
	if s.enum.active && s.enum.isProj[v] {
		s.enum.projUnassigned--
	}
}

// propagate performs unit propagation over the trail; it returns the
// conflicting clause or CRefUndef. It walks one contiguous slab region
// per trail literal, filtering kept watches in place exactly like the
// slice-per-literal version did — same per-literal order, so the
// default configuration stays byte-identical to the golden recording.
func (s *Solver) propagate() CRef {
	confl := CRefUndef
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.Stats.Propagations++
		r := &s.wslab.rng[p] // stable: rng only grows in NewVar
		off := r.off
		count := r.n
		data := s.wslab.data
		n := uint32(0)
	nextWatch:
		for i := uint32(0); i < count; i++ {
			w := data[off+i]
			if s.value(w.blocker) == LTrue {
				data[off+n] = w
				n++
				continue
			}
			if w.bin() {
				// blocker is the other literal and it is not true: the
				// clause is unit or conflicting, with no arena access.
				data[off+n] = w
				n++
				if s.value(w.blocker) == LFalse {
					confl = w.cref()
					s.qhead = len(s.trail)
					for i++; i < count; i++ {
						data[off+n] = data[off+i]
						n++
					}
					break
				}
				s.uncheckedEnqueue(w.blocker, w.cref())
				continue
			}
			cr := w.cref()
			lits := s.ca.lits(cr)
			// Ensure the falsified literal ~p sits at position 1.
			np := p.Neg()
			if Lit(lits[0]) == np {
				lits[0], lits[1] = lits[1], uint32(np)
			}
			first := Lit(lits[0])
			if first != w.blocker && s.value(first) == LTrue {
				data[off+n] = mkWatch(cr, first)
				n++
				continue
			}
			// Look for a non-false replacement watch.
			for k := 2; k < len(lits); k++ {
				if s.value(Lit(lits[k])) != LFalse {
					lits[1], lits[k] = lits[k], lits[1]
					nl := Lit(lits[1]).Neg()
					// The push may grow the slab's backing array or
					// relocate nl's list; p's own range is untouched (the
					// clause cannot contain both p and ~p, so nl != p) but
					// the array may have moved — re-cache it.
					s.wslab.push(nl, mkWatch(cr, first))
					data = s.wslab.data
					continue nextWatch
				}
			}
			// Clause is unit or conflicting.
			data[off+n] = mkWatch(cr, first)
			n++
			if s.value(first) == LFalse {
				confl = cr
				s.qhead = len(s.trail)
				// Keep remaining watches.
				for i++; i < count; i++ {
					data[off+n] = data[off+i]
					n++
				}
				break
			}
			s.uncheckedEnqueue(first, cr)
		}
		r.n = n
		if confl != CRefUndef {
			return confl
		}
	}
	return CRefUndef
}

func (s *Solver) newDecisionLevel() {
	s.trailLim = append(s.trailLim, len(s.trail))
}

func (s *Solver) cancelUntil(lvl int) {
	if s.decisionLevel() <= lvl {
		return
	}
	bound := s.trailLim[lvl]
	for i := len(s.trail) - 1; i >= bound; i-- {
		v := s.trail[i].Var()
		if s.PhaseSaving {
			s.polarity[v] = s.assigns[v] == LFalse
		}
		s.assigns[v] = LUndef
		s.reason[v] = CRefUndef
		if s.enum.active {
			if s.enum.isProj[v] {
				s.enum.projUnassigned++
				s.enum.projOrder.insert(v, s.activity)
			} else if s.enum.dampSkip {
				s.enum.damped++
				continue
			}
		}
		s.order.insert(v, s.activity)
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:lvl]
	s.qhead = len(s.trail)
}

func (s *Solver) bumpVarBy(v Var, inc float64) {
	s.activity[v] += inc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.update(v, s.activity)
	if s.enum.active {
		s.enum.projOrder.update(v, s.activity)
	}
}

func (s *Solver) bumpClause(cr CRef) {
	a := s.ca.act(cr) + float32(s.clauseInc)
	s.ca.setAct(cr, a)
	if a > 1e20 {
		for _, lr := range s.learnts {
			s.ca.setAct(lr, s.ca.act(lr)*1e-20)
		}
		s.clauseInc *= 1e-20
	}
}

const (
	varDecay    = 1 / 0.95
	clauseDecay = 1 / 0.999
)

// normReason returns cr's literals with lits[0] swapped to p, the
// literal the clause implied. Long clauses already satisfy the invariant
// (propagate swaps before enqueueing); only binary clauses can be out of
// order, because their fast path enqueues without touching the arena.
func (s *Solver) normReason(cr CRef, p Lit) []uint32 {
	lits := s.ca.lits(cr)
	if Lit(lits[0]) != p {
		lits[0], lits[1] = lits[1], lits[0]
	}
	return lits
}

// analyze performs first-UIP conflict analysis, returning the learnt
// clause (asserting literal first) and the backtrack level.
func (s *Solver) analyze(confl CRef) ([]Lit, int) {
	learnt := append(s.learntBuf[:0], LitUndef) // placeholder for the asserting literal
	pathC := 0
	p := LitUndef
	idx := len(s.trail) - 1

	for {
		s.bumpClause(confl)
		var lits []uint32
		start := 0
		if p != LitUndef {
			start = 1
			lits = s.normReason(confl, p)
		} else {
			lits = s.ca.lits(confl)
		}
		for _, qw := range lits[start:] {
			q := Lit(qw)
			v := q.Var()
			if s.seen[v] == 0 && s.level[v] > 0 {
				s.seen[v] = 1
				s.bumpVarBy(v, s.varInc)
				if int(s.level[v]) >= s.decisionLevel() {
					pathC++
				} else {
					learnt = append(learnt, q)
				}
			}
		}
		for s.seen[s.trail[idx].Var()] == 0 {
			idx--
		}
		p = s.trail[idx]
		idx--
		confl = s.reason[p.Var()]
		s.seen[p.Var()] = 0
		pathC--
		if pathC <= 0 {
			break
		}
	}
	learnt[0] = p.Neg()

	// Conflict-clause minimization: drop literals implied by the rest.
	s.toClear = s.toClear[:0]
	for _, l := range learnt {
		s.seen[l.Var()] = 1
		s.toClear = append(s.toClear, l.Var())
	}
	if s.ClauseMinimize {
		var mask uint32
		for _, l := range learnt[1:] {
			mask |= 1 << uint(s.level[l.Var()]&31)
		}
		n := 1
		for _, l := range learnt[1:] {
			if s.reason[l.Var()] == CRefUndef || !s.litRedundant(l, mask) {
				learnt[n] = l
				n++
			} else {
				s.Stats.MinimizedLit++
			}
		}
		learnt = learnt[:n]
	}
	for _, v := range s.toClear {
		s.seen[v] = 0
	}
	s.learntBuf = learnt

	// Backtrack level: highest level among the non-asserting literals.
	bt := 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		bt = int(s.level[learnt[1].Var()])
	}
	return learnt, bt
}

type redFrame struct {
	c CRef
	i int
}

// litRedundant checks (recursively, with an explicit solver-resident
// stack) whether l is implied by seen literals, so it can be removed
// from the learnt clause.
func (s *Solver) litRedundant(l Lit, mask uint32) bool {
	// Frames iterate reason clauses from position 1: normReason places
	// the implied literal at position 0 first (binary reasons are stored
	// unswapped by the fast path).
	s.normReason(s.reason[l.Var()], l.Neg())
	stack := append(s.redStack[:0], redFrame{s.reason[l.Var()], 1})
	top := len(s.toClear)
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		lits := s.ca.lits(f.c)
		if f.i >= len(lits) {
			stack = stack[:len(stack)-1]
			continue
		}
		q := Lit(lits[f.i])
		f.i++
		v := q.Var()
		if s.seen[v] != 0 || s.level[v] == 0 {
			continue
		}
		if s.reason[v] == CRefUndef || !s.abstractLevelOK(v, mask) {
			// Not removable: undo the tentative marks.
			for _, u := range s.toClear[top:] {
				s.seen[u] = 0
			}
			s.toClear = s.toClear[:top]
			s.redStack = stack[:0]
			return false
		}
		s.seen[v] = 1
		s.toClear = append(s.toClear, v)
		s.normReason(s.reason[v], MkLit(v, s.assigns[v] == LFalse))
		stack = append(stack, redFrame{s.reason[v], 1})
	}
	s.redStack = stack[:0]
	return true
}

// computeLBD counts the distinct decision levels among lits using a
// solver-resident stamp buffer — zero allocations per learnt clause
// (the pre-arena version built a map per call).
func (s *Solver) computeLBD(lits []Lit) int32 {
	s.lbdGen++
	var n int32
	for _, l := range lits {
		lev := int(s.level[l.Var()])
		for lev >= len(s.lbdStamp) {
			s.lbdStamp = append(s.lbdStamp, 0)
		}
		if s.lbdStamp[lev] != s.lbdGen {
			s.lbdStamp[lev] = s.lbdGen
			n++
		}
	}
	return n
}

// locked reports whether cr is the live reason of an assigned variable
// (reason clauses must survive reduceDB). Long clauses keep the implied
// literal at position 0 (propagate's swap), but binary clauses may not:
// their fast path enqueues without touching the arena and the lazy
// normalization only runs if the clause reaches conflict analysis — so
// for size-2 clauses both literals are checked. Today reduceDB also
// keeps every binary clause unconditionally; this check stays sound on
// its own so a future policy that deletes binaries cannot free a live
// reason.
func (s *Solver) locked(cr CRef) bool {
	lits := s.ca.lits(cr)
	l0 := Lit(lits[0])
	if s.value(l0) == LTrue && s.reason[l0.Var()] == cr {
		return true
	}
	if len(lits) == 2 {
		l1 := Lit(lits[1])
		return s.value(l1) == LTrue && s.reason[l1.Var()] == cr
	}
	return false
}

// reduceDB removes roughly half of the learnt clauses, preferring high
// LBD and low activity; reason clauses, glue clauses and binary clauses
// survive. The clause list is filtered in place and the arena garbage
// is reclaimed by compaction — no reallocation, unlike the pre-arena
// append([]*clause(nil), ...).
func (s *Solver) reduceDB() {
	s.Stats.Reduces++
	s.record(trace.EvReduceDB)
	sortClauseRefs(s.learnts, &s.ca)
	keep := s.learnts[:0]
	limit := len(s.learnts) / 2
	for i, cr := range s.learnts {
		if s.ca.lbd(cr) <= 2 || s.locked(cr) || s.ca.size(cr) == 2 || i >= limit {
			keep = append(keep, cr)
		} else {
			s.ca.free(cr)
		}
	}
	s.learnts = keep
	s.maybeCompact()
	s.rebuildWatches()
}

// rebuildWatches lays every watch list back out contiguously in the
// slab with exact capacities, reclaiming relocation waste. Three passes
// — count, prefix-sum, fill — in clause-list order, which reproduces
// the exact per-literal watch order the slice-per-literal rebuild
// produced (clauses then learnts, two pushes per clause). Steady-state
// zero-alloc: the backing array is reused once grown.
func (s *Solver) rebuildWatches() {
	sl := &s.wslab
	for i := range sl.rng {
		sl.rng[i] = watchRange{}
	}
	for _, cr := range s.clauses {
		lits := s.ca.lits(cr)
		sl.rng[Lit(lits[0]).Neg()].cap++
		sl.rng[Lit(lits[1]).Neg()].cap++
	}
	for _, cr := range s.learnts {
		lits := s.ca.lits(cr)
		sl.rng[Lit(lits[0]).Neg()].cap++
		sl.rng[Lit(lits[1]).Neg()].cap++
	}
	var total uint32
	for i := range sl.rng {
		sl.rng[i].off = total
		total += sl.rng[i].cap
	}
	if uint32(cap(sl.data)) < total {
		sl.data = make([]watch, total)
	} else {
		sl.data = sl.data[:total]
	}
	sl.wasted = 0
	for _, cr := range s.clauses {
		s.attach(cr)
	}
	for _, cr := range s.learnts {
		s.attach(cr)
	}
}

// simplify removes clauses satisfied at level 0. Called between restarts
// when new top-level facts arrived — the "unit literals are not further
// considered after preprocessing" effect the paper notes for BSAT
// instances.
func (s *Solver) simplify() {
	if s.decisionLevel() != 0 || !s.ok {
		return
	}
	if len(s.trail) == s.simpDBAssigns {
		return
	}
	s.Stats.Simplifies++
	s.clauses = s.removeSatisfied(s.clauses)
	s.learnts = s.removeSatisfied(s.learnts)
	s.maybeCompact()
	s.rebuildWatches()
	if s.cfg.Vivify && s.ok {
		// Gen2 only: probe a bounded batch of problem clauses now that
		// the watches are valid again. Shrunk clauses grow arena waste,
		// reclaimed by the next compaction.
		s.record(trace.EvVivify)
		s.vivifyRound()
	}
	s.simpDBAssigns = len(s.trail)
}

// removeSatisfied filters the clause list in place, freeing level-0
// satisfied clauses and shrinking level-0 falsified literals beyond the
// watched positions. Zero allocations: the list keeps its backing array
// and the arena absorbs the garbage until compaction.
func (s *Solver) removeSatisfied(cs []CRef) []CRef {
	keep := cs[:0]
outer:
	for _, cr := range cs {
		lits := s.ca.lits(cr)
		for _, qw := range lits {
			l := Lit(qw)
			if s.value(l) == LTrue && s.level[l.Var()] == 0 {
				s.ca.free(cr)
				continue outer
			}
		}
		// Drop level-0 falsified literals beyond the watched positions.
		n := 2
		for i := 2; i < len(lits); i++ {
			l := Lit(lits[i])
			if !(s.value(l) == LFalse && s.level[l.Var()] == 0) {
				lits[n] = lits[i]
				n++
			}
		}
		if n < len(lits) {
			s.ca.setSize(cr, n)
		}
		keep = append(keep, cr)
	}
	return keep
}

// ctxPollConflicts is how many conflicts may pass between cancellation
// polls inside search: frequent enough that ctx.Done() surfaces
// promptly, rare enough that the select never shows up in profiles.
const ctxPollConflicts = 64

// interrupted reports whether the active SolveContext was cancelled.
func (s *Solver) interrupted() bool {
	if s.ctx == nil {
		return false
	}
	select {
	case <-s.ctx.Done():
		return true
	default:
		return false
	}
}

// SolveContext is Solve under a cancellation context: when ctx is done
// the search winds down and returns StatusUnknown (the same verdict an
// expired budget produces), leaving the solver usable. A nil ctx makes
// SolveContext identical to Solve. The context is polled between
// restarts and every ctxPollConflicts conflicts, so cancellation
// surfaces promptly even inside a long search.
func (s *Solver) SolveContext(ctx context.Context, assumptions ...Lit) Status {
	if ctx == nil {
		return s.Solve(assumptions...)
	}
	if ctx.Err() != nil {
		return StatusUnknown
	}
	s.ctx = ctx
	s.ctxNext = s.Stats.Conflicts + ctxPollConflicts
	defer func() { s.ctx = nil }()
	return s.Solve(assumptions...)
}

// Solve determines satisfiability under the given assumptions. On
// StatusSat the model is available through Value; on StatusUnsat under
// assumptions, ConflictSet holds a failed-assumption core. StatusUnknown
// reports an expired budget; the solver remains usable.
func (s *Solver) Solve(assumptions ...Lit) Status {
	if !s.ok {
		return StatusUnsat
	}
	if !s.Deadline.IsZero() && !time.Now().Before(s.Deadline) {
		// An already-expired deadline fails fast instead of burning a
		// restart's worth of conflicts first (and lets callers detect a
		// stale budget deterministically).
		s.record(trace.EvDeadlineExit)
		return StatusUnknown
	}
	s.assumptions = append(s.assumptions[:0], assumptions...)
	s.conflictSet = s.conflictSet[:0]
	defer s.cancelUntil(0)

	if s.propagate() != CRefUndef {
		s.ok = false
		s.record(trace.EvUnsat)
		return StatusUnsat
	}

	startConflicts := s.Stats.Conflicts
	if s.maxLearnts == 0 {
		s.maxLearnts = float64(len(s.clauses)) / 3
		if s.maxLearnts < 5000 {
			s.maxLearnts = 5000
		}
	}
	for restart := int64(1); ; restart++ {
		budget := int64(-1)
		if s.MaxConflicts > 0 {
			budget = startConflicts + s.MaxConflicts - s.Stats.Conflicts
			if budget <= 0 {
				s.record(trace.EvBudgetExit)
				return StatusUnknown
			}
		}
		limit := luby(restart) * 100
		if budget >= 0 && limit > budget {
			limit = budget
		}
		st := s.search(int(limit))
		if st != StatusUnknown {
			if st == StatusUnsat {
				s.record(trace.EvUnsat)
			}
			return st
		}
		s.Stats.Restarts++
		s.record(trace.EvRestart)
		if !s.Deadline.IsZero() && time.Now().After(s.Deadline) {
			s.record(trace.EvDeadlineExit)
			return StatusUnknown
		}
		if s.interrupted() {
			s.record(trace.EvCtxExit)
			return StatusUnknown
		}
		if s.MaxConflicts > 0 && s.Stats.Conflicts-startConflicts >= s.MaxConflicts {
			s.record(trace.EvBudgetExit)
			return StatusUnknown
		}
	}
}

// search runs CDCL until a verdict, a restart (after nConflicts
// conflicts), or an expired budget.
func (s *Solver) search(nConflicts int) Status {
	conflicts := 0
	for {
		confl := s.propagate()
		if confl != CRefUndef {
			s.Stats.Conflicts++
			conflicts++
			if s.ctx != nil && s.Stats.Conflicts >= s.ctxNext {
				s.ctxNext = s.Stats.Conflicts + ctxPollConflicts
				if s.interrupted() {
					s.cancelUntil(0)
					return StatusUnknown
				}
			}
			if s.decisionLevel() == 0 {
				s.ok = false
				return StatusUnsat
			}
			learnt, bt := s.analyze(confl)
			chronoBT := s.cfg.ChronoBT
			if s.enum.active && (chronoBT == 0 || chronoBT > enumChronoBT) &&
				len(s.trail) >= enumFatLevel*s.decisionLevel() {
				// The projected mode compresses the search into few,
				// densely populated decision levels (the projection
				// prefix plus a clause-directed completion), so a
				// non-chronological backjump routinely unwinds — and
				// forces re-propagating — thousands of trail literals.
				// Backtracking chronologically past a modest distance
				// keeps that mass intact; the learnt clause stays
				// asserting one level down, so this is trajectory-only.
				// The density gate keeps the override away from
				// instances with ordinary thin levels, where limiting
				// backjumps only slows learning down.
				chronoBT = enumChronoBT
			}
			if chronoBT > 0 && len(learnt) > 1 && s.decisionLevel()-bt >= chronoBT {
				// Chronological backtracking: the backjump would unwind
				// ChronoBT+ levels; step back a single level instead. The
				// learnt clause is still asserting there (every
				// non-asserting literal has level <= bt), so the enqueue
				// below is sound and the trail stays level-ordered.
				bt = s.decisionLevel() - 1
				s.Stats.ChronoBacktracks++
				s.record(trace.EvChronoBT)
			}
			s.cancelUntil(bt)
			lbd := int32(1)
			if len(learnt) == 1 {
				s.uncheckedEnqueue(learnt[0], CRefUndef)
			} else {
				cr := s.ca.alloc(learnt, true)
				lbd = s.computeLBD(learnt)
				s.ca.setLBD(cr, lbd)
				s.learnts = append(s.learnts, cr)
				s.attach(cr)
				s.bumpClause(cr)
				s.uncheckedEnqueue(learnt[0], cr)
				s.Stats.Learnt++
				s.Stats.LearntLits += int64(len(learnt))
			}
			s.varInc *= varDecay
			s.clauseInc *= clauseDecay
			if s.cfg.LBDRestarts {
				s.lbdConflicts++
				s.emaFast += lbdEmaFastAlpha * (float64(lbd) - s.emaFast)
				s.emaSlow += lbdEmaSlowAlpha * (float64(lbd) - s.emaSlow)
				if conflicts >= lbdRestartMinInterval &&
					s.lbdConflicts >= lbdEmaWarmup &&
					s.emaFast > lbdRestartMargin*s.emaSlow {
					// Recent conflicts are markedly worse than the
					// session norm: restart now instead of waiting for
					// the Luby limit.
					s.Stats.LBDRestarts++
					s.record(trace.EvLBDRestart)
					s.cancelUntil(0)
					return StatusUnknown
				}
			}
			continue
		}

		// No conflict.
		if conflicts >= nConflicts {
			s.cancelUntil(0)
			return StatusUnknown
		}
		if s.decisionLevel() == 0 {
			s.simplify()
			if !s.ok {
				return StatusUnsat
			}
		}
		if float64(len(s.learnts))-float64(len(s.trail)) >= s.maxLearnts {
			s.maxLearnts *= 1.1
			s.reduceDB()
		}

		// Decide: assumptions first, then VSIDS.
		var next Lit = LitUndef
		for s.decisionLevel() < len(s.assumptions) {
			p := s.assumptions[s.decisionLevel()]
			switch s.value(p) {
			case LTrue:
				s.newDecisionLevel() // dummy level for satisfied assumption
			case LFalse:
				s.analyzeFinal(p.Neg())
				return StatusUnsat
			default:
				next = p
			}
			if next != LitUndef {
				break
			}
		}
		if next == LitUndef {
			if s.enum.active && s.enum.projUnassigned == 0 {
				pick, allSat := s.enumScan()
				if allSat {
					// Early model termination: every assumption is
					// decided, every projected variable is assigned, and
					// every problem clause has a true literal — any
					// completion of the free suffix is a model, so there
					// is nothing left to decide. Unassigned variables
					// stay LUndef in the model; the enumeration reads
					// only projected literals.
					s.Stats.EarlyTerms++
					s.Stats.SkippedDecisions += int64(len(s.assigns) - len(s.trail))
					s.model = append(s.model[:0], s.assigns...)
					s.record(trace.EvEarlyTerm)
					return StatusSat
				}
				// Clause-directed completion (see enumScan). LitUndef —
				// an unsatisfied clause with no unassigned decision
				// literal — falls through to the main heap.
				next = pick
			}
			if next == LitUndef && s.enum.active && s.enum.projUnassigned > 0 {
				// Projection-first decisions: while projected variables
				// remain unassigned, decide those before anything VSIDS
				// prefers globally. Decision order is free in CDCL, so
				// the solution set is unaffected; the payoff is that
				// early termination fires before the free suffix is
				// decided and the blocking literals land at shallow
				// levels the blocked-continue backjump can retain.
				// Polarity is the saved phase, as in the main heap:
				// after a blocked-continue backjump it replays the
				// previous model's projection up to the blocked
				// literal, so successive models differ minimally and
				// the conflict rate between models stays low. If the
				// projected heap runs dry (non-decision projection
				// variables), fall through to the main heap.
				for !s.enum.projOrder.empty() {
					v := s.enum.projOrder.removeMax(s.activity)
					if s.assigns[v] == LUndef && s.decision[v] {
						next = MkLit(v, s.polarity[v])
						break
					}
				}
			}
			if next == LitUndef {
				for !s.order.empty() {
					v := s.order.removeMax(s.activity)
					if s.assigns[v] == LUndef && s.decision[v] {
						next = MkLit(v, s.polarity[v])
						break
					}
				}
			}
			if next == LitUndef {
				if s.enum.active && s.enumRefillOrder() {
					// Order damping starved the heap before a model was
					// certified: return the damped variables and retry.
					continue
				}
				// All variables assigned: model found.
				s.model = append(s.model[:0], s.assigns...)
				s.record(trace.EvModel)
				return StatusSat
			}
		}
		s.Stats.Decisions++
		s.newDecisionLevel()
		s.uncheckedEnqueue(next, CRefUndef)
	}
}

// analyzeFinal computes the failed-assumption core when assumption p
// (negated form supplied) conflicts with the current state.
func (s *Solver) analyzeFinal(p Lit) {
	s.conflictSet = append(s.conflictSet[:0], p)
	if s.decisionLevel() == 0 {
		return
	}
	s.seen[p.Var()] = 1
	for i := len(s.trail) - 1; i >= s.trailLim[0]; i-- {
		v := s.trail[i].Var()
		if s.seen[v] == 0 {
			continue
		}
		if s.reason[v] == CRefUndef {
			if s.level[v] > 0 {
				s.conflictSet = append(s.conflictSet, s.trail[i].Neg())
			}
		} else {
			lits := s.normReason(s.reason[v], s.trail[i])
			for _, qw := range lits[1:] {
				l := Lit(qw)
				if s.level[l.Var()] > 0 {
					s.seen[l.Var()] = 1
				}
			}
		}
		s.seen[v] = 0
	}
	s.seen[p.Var()] = 0
}

// varHeap is an indexed max-heap over variable activity with
// deterministic tie-breaking (lower variable index wins).
type varHeap struct {
	heap []Var
	pos  []int32
}

func (h *varHeap) empty() bool { return len(h.heap) == 0 }

func (h *varHeap) contains(v Var) bool {
	return int(v) < len(h.pos) && h.pos[v] >= 0
}

func (h *varHeap) insert(v Var, act []float64) {
	for int(v) >= len(h.pos) {
		h.pos = append(h.pos, -1)
	}
	if h.pos[v] >= 0 {
		return
	}
	h.pos[v] = int32(len(h.heap))
	h.heap = append(h.heap, v)
	h.up(int(h.pos[v]), act)
}

func (h *varHeap) clear() {
	for _, v := range h.heap {
		h.pos[v] = -1
	}
	h.heap = h.heap[:0]
}

func (h *varHeap) update(v Var, act []float64) {
	if h.contains(v) {
		h.up(int(h.pos[v]), act)
	}
}

func (h *varHeap) removeMax(act []float64) Var {
	v := h.heap[0]
	last := h.heap[len(h.heap)-1]
	h.heap = h.heap[:len(h.heap)-1]
	h.pos[v] = -1
	if len(h.heap) > 0 {
		h.heap[0] = last
		h.pos[last] = 0
		h.down(0, act)
	}
	return v
}

func heapLess(a, b Var, act []float64) bool {
	if act[a] != act[b] {
		return act[a] > act[b]
	}
	return a < b
}

func (h *varHeap) up(i int, act []float64) {
	v := h.heap[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !heapLess(v, h.heap[parent], act) {
			break
		}
		h.heap[i] = h.heap[parent]
		h.pos[h.heap[i]] = int32(i)
		i = parent
	}
	h.heap[i] = v
	h.pos[v] = int32(i)
}

func (h *varHeap) down(i int, act []float64) {
	v := h.heap[i]
	for {
		l := 2*i + 1
		if l >= len(h.heap) {
			break
		}
		best := l
		if r := l + 1; r < len(h.heap) && heapLess(h.heap[r], h.heap[l], act) {
			best = r
		}
		if !heapLess(h.heap[best], v, act) {
			break
		}
		h.heap[i] = h.heap[best]
		h.pos[h.heap[i]] = int32(i)
		i = best
	}
	h.heap[i] = v
	h.pos[v] = int32(i)
}
