package sat

import (
	"context"
	"time"
)

// Solver is an incremental CDCL SAT solver. Construct with New; add
// variables with NewVar and clauses with AddClause; query with Solve,
// possibly under assumptions; read the model with Value. Clauses may be
// added between Solve calls (the incremental usage the diagnosis
// enumeration relies on). A Solver is not safe for concurrent use.
type Solver struct {
	clauses []*clause
	learnts []*clause
	watches [][]watch

	assigns  []LBool
	level    []int32
	reason   []*clause
	trail    []Lit
	trailLim []int
	qhead    int

	activity []float64
	varInc   float64
	order    varHeap
	polarity []bool
	decision []bool

	clauseInc float64

	seen      []byte
	toClear   []Var
	learntBuf []Lit

	ok          bool
	assumptions []Lit
	conflictSet []Lit // failed-assumption core after StatusUnsat under assumptions

	model []LBool

	// Budgets; zero values mean unlimited.
	MaxConflicts int64     // per-Solve conflict budget
	Deadline     time.Time // wall-clock cutoff, checked between restarts

	// Cooperative cancellation (SolveContext); polled between restarts
	// and every ctxPollConflicts conflicts inside the search.
	ctx     context.Context
	ctxNext int64 // Stats.Conflicts value at which to poll ctx next

	// Heuristic switches (enabled by default in New).
	ClauseMinimize bool
	PhaseSaving    bool

	Stats Stats

	maxLearnts    float64
	simpDBAssigns int
}

// New returns an empty solver.
func New() *Solver {
	return &Solver{
		ok:             true,
		varInc:         1,
		clauseInc:      1,
		ClauseMinimize: true,
		PhaseSaving:    true,
		simpDBAssigns:  -1,
	}
}

// NewVar introduces a fresh variable and returns it.
func (s *Solver) NewVar() Var {
	v := Var(len(s.assigns))
	s.assigns = append(s.assigns, LUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.activity = append(s.activity, 0)
	s.polarity = append(s.polarity, true) // default phase: negative (MiniSat style)
	s.decision = append(s.decision, true)
	s.seen = append(s.seen, 0)
	s.watches = append(s.watches, nil, nil)
	s.order.insert(v, s.activity)
	return v
}

// NewVars introduces n fresh variables and returns the first.
func (s *Solver) NewVars(n int) Var {
	first := Var(len(s.assigns))
	for i := 0; i < n; i++ {
		s.NewVar()
	}
	return first
}

// NumVars returns the number of variables.
func (s *Solver) NumVars() int { return len(s.assigns) }

// NumClauses returns the number of problem clauses currently stored
// (level-0-satisfied clauses may have been simplified away).
func (s *Solver) NumClauses() int { return len(s.clauses) }

// NumLearnts returns the number of retained learnt clauses.
func (s *Solver) NumLearnts() int { return len(s.learnts) }

// Okay reports whether the clause database is not yet known unsatisfiable.
func (s *Solver) Okay() bool { return s.ok }

func (s *Solver) value(l Lit) LBool  { return s.assigns[l.Var()].xorSign(l.Sign()) }
func (s *Solver) decisionLevel() int { return len(s.trailLim) }
func (s *Solver) varLevel(v Var) int { return int(s.level[v]) }
func (s *Solver) abstractLevelOK(v Var, mask uint32) bool {
	return mask&(1<<uint(s.level[v]&31)) != 0
}

// Value returns the model value of v after a StatusSat Solve.
func (s *Solver) Value(v Var) LBool {
	if int(v) < len(s.model) {
		return s.model[v]
	}
	return LUndef
}

// ValueLit returns the model value of a literal after StatusSat.
func (s *Solver) ValueLit(l Lit) LBool {
	return s.Value(l.Var()).xorSign(l.Sign())
}

// ConflictSet returns the subset of the assumptions under which the last
// Solve proved unsatisfiability (a failed-assumption core, negated form).
func (s *Solver) ConflictSet() []Lit { return s.conflictSet }

// Statistics returns the accumulated work counters (the Stats field,
// behind the Backend interface).
func (s *Solver) Statistics() Stats { return s.Stats }

// SetPolarity fixes the saved phase of v: the value the solver tries
// first when branching on v. Hybrid diagnosis uses this to steer the
// search toward simulation-derived candidate sets.
func (s *Solver) SetPolarity(v Var, val bool) { s.polarity[v] = !val }

// BumpActivity increases the VSIDS activity of v by amount times the
// current bump increment, so hot variables are branched on first.
func (s *Solver) BumpActivity(v Var, amount float64) {
	s.bumpVarBy(v, amount*s.varInc)
}

// SetBudget gives subsequent Solve calls a fresh budget: maxConflicts
// conflicts per Solve (0 = unlimited) and a wall-clock deadline of
// timeout from now (0 = none). Long-lived sessions call this at the
// start of every enumeration round so a stale deadline or conflict cap
// left over from an earlier round cannot poison later ones.
func (s *Solver) SetBudget(maxConflicts int64, timeout time.Duration) {
	s.MaxConflicts = maxConflicts
	if timeout > 0 {
		s.Deadline = time.Now().Add(timeout)
	} else {
		s.Deadline = time.Time{}
	}
}

// AddClause adds a clause over the given literals. It reports false if
// the database has become trivially unsatisfiable. The solver must be
// between Solve calls (decision level 0).
func (s *Solver) AddClause(lits ...Lit) bool {
	if s.decisionLevel() != 0 {
		panic("sat: AddClause above decision level 0")
	}
	if !s.ok {
		return false
	}
	// Sort, dedupe, drop false literals, detect satisfied/tautological.
	ls := append(s.learntBuf[:0], lits...)
	insertionSortLits(ls)
	out := ls[:0]
	var prev Lit = LitUndef
	for _, l := range ls {
		if l.Var() < 0 || int(l.Var()) >= len(s.assigns) {
			panic("sat: clause literal over undeclared variable")
		}
		switch {
		case s.value(l) == LTrue || l == prev.Neg():
			return true // satisfied or tautology
		case s.value(l) == LFalse || l == prev:
			continue // falsified at level 0, or duplicate
		}
		out = append(out, l)
		prev = l
	}
	switch len(out) {
	case 0:
		s.ok = false
		return false
	case 1:
		s.uncheckedEnqueue(out[0], nil)
		s.ok = s.propagate() == nil
		return s.ok
	}
	c := &clause{lits: append([]Lit(nil), out...)}
	s.clauses = append(s.clauses, c)
	s.attach(c)
	return true
}

func insertionSortLits(ls []Lit) {
	for i := 1; i < len(ls); i++ {
		x := ls[i]
		j := i - 1
		for j >= 0 && ls[j] > x {
			ls[j+1] = ls[j]
			j--
		}
		ls[j+1] = x
	}
}

func (s *Solver) attach(c *clause) {
	s.watches[c.lits[0].Neg()] = append(s.watches[c.lits[0].Neg()], watch{c, c.lits[1]})
	s.watches[c.lits[1].Neg()] = append(s.watches[c.lits[1].Neg()], watch{c, c.lits[0]})
}

func (s *Solver) uncheckedEnqueue(l Lit, from *clause) {
	v := l.Var()
	if l.Sign() {
		s.assigns[v] = LFalse
	} else {
		s.assigns[v] = LTrue
	}
	s.level[v] = int32(s.decisionLevel())
	s.reason[v] = from
	s.trail = append(s.trail, l)
}

// propagate performs unit propagation over the trail; it returns a
// conflicting clause or nil.
func (s *Solver) propagate() *clause {
	var confl *clause
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.Stats.Propagations++
		ws := s.watches[p]
		n := 0
	nextWatch:
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			if s.value(w.blocker) == LTrue {
				ws[n] = w
				n++
				continue
			}
			c := w.c
			lits := c.lits
			// Ensure the falsified literal ~p sits at position 1.
			np := p.Neg()
			if lits[0] == np {
				lits[0], lits[1] = lits[1], np
			}
			first := lits[0]
			if first != w.blocker && s.value(first) == LTrue {
				ws[n] = watch{c, first}
				n++
				continue
			}
			// Look for a non-false replacement watch.
			for k := 2; k < len(lits); k++ {
				if s.value(lits[k]) != LFalse {
					lits[1], lits[k] = lits[k], lits[1]
					s.watches[lits[1].Neg()] = append(s.watches[lits[1].Neg()], watch{c, first})
					continue nextWatch
				}
			}
			// Clause is unit or conflicting.
			ws[n] = watch{c, first}
			n++
			if s.value(first) == LFalse {
				confl = c
				s.qhead = len(s.trail)
				// Keep remaining watches.
				for i++; i < len(ws); i++ {
					ws[n] = ws[i]
					n++
				}
				break
			}
			s.uncheckedEnqueue(first, c)
		}
		s.watches[p] = ws[:n]
		if confl != nil {
			return confl
		}
	}
	return nil
}

func (s *Solver) newDecisionLevel() {
	s.trailLim = append(s.trailLim, len(s.trail))
}

func (s *Solver) cancelUntil(lvl int) {
	if s.decisionLevel() <= lvl {
		return
	}
	bound := s.trailLim[lvl]
	for i := len(s.trail) - 1; i >= bound; i-- {
		v := s.trail[i].Var()
		if s.PhaseSaving {
			s.polarity[v] = s.assigns[v] == LFalse
		}
		s.assigns[v] = LUndef
		s.reason[v] = nil
		s.order.insert(v, s.activity)
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:lvl]
	s.qhead = len(s.trail)
}

func (s *Solver) bumpVarBy(v Var, inc float64) {
	s.activity[v] += inc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.update(v, s.activity)
}

func (s *Solver) bumpClause(c *clause) {
	c.act += float32(s.clauseInc)
	if c.act > 1e20 {
		for _, l := range s.learnts {
			l.act *= 1e-20
		}
		s.clauseInc *= 1e-20
	}
}

const (
	varDecay    = 1 / 0.95
	clauseDecay = 1 / 0.999
)

// analyze performs first-UIP conflict analysis, returning the learnt
// clause (asserting literal first) and the backtrack level.
func (s *Solver) analyze(confl *clause) ([]Lit, int) {
	learnt := append(s.learntBuf[:0], LitUndef) // placeholder for the asserting literal
	pathC := 0
	p := LitUndef
	idx := len(s.trail) - 1

	for {
		s.bumpClause(confl)
		start := 0
		if p != LitUndef {
			start = 1
		}
		for _, q := range confl.lits[start:] {
			v := q.Var()
			if s.seen[v] == 0 && s.level[v] > 0 {
				s.seen[v] = 1
				s.bumpVarBy(v, s.varInc)
				if int(s.level[v]) >= s.decisionLevel() {
					pathC++
				} else {
					learnt = append(learnt, q)
				}
			}
		}
		for s.seen[s.trail[idx].Var()] == 0 {
			idx--
		}
		p = s.trail[idx]
		idx--
		confl = s.reason[p.Var()]
		s.seen[p.Var()] = 0
		pathC--
		if pathC <= 0 {
			break
		}
	}
	learnt[0] = p.Neg()

	// Conflict-clause minimization: drop literals implied by the rest.
	s.toClear = s.toClear[:0]
	for _, l := range learnt {
		s.seen[l.Var()] = 1
		s.toClear = append(s.toClear, l.Var())
	}
	if s.ClauseMinimize {
		var mask uint32
		for _, l := range learnt[1:] {
			mask |= 1 << uint(s.level[l.Var()]&31)
		}
		n := 1
		for _, l := range learnt[1:] {
			if s.reason[l.Var()] == nil || !s.litRedundant(l, mask) {
				learnt[n] = l
				n++
			} else {
				s.Stats.MinimizedLit++
			}
		}
		learnt = learnt[:n]
	}
	for _, v := range s.toClear {
		s.seen[v] = 0
	}
	s.learntBuf = learnt

	// Backtrack level: highest level among the non-asserting literals.
	bt := 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		bt = int(s.level[learnt[1].Var()])
	}
	return learnt, bt
}

// litRedundant checks (recursively, with an explicit stack) whether l is
// implied by seen literals, so it can be removed from the learnt clause.
func (s *Solver) litRedundant(l Lit, mask uint32) bool {
	type frame struct {
		c *clause
		i int
	}
	stack := []frame{{s.reason[l.Var()], 1}}
	top := len(s.toClear)
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.i >= len(f.c.lits) {
			stack = stack[:len(stack)-1]
			continue
		}
		q := f.c.lits[f.i]
		f.i++
		v := q.Var()
		if s.seen[v] != 0 || s.level[v] == 0 {
			continue
		}
		if s.reason[v] == nil || !s.abstractLevelOK(v, mask) {
			// Not removable: undo the tentative marks.
			for _, u := range s.toClear[top:] {
				s.seen[u] = 0
			}
			s.toClear = s.toClear[:top]
			return false
		}
		s.seen[v] = 1
		s.toClear = append(s.toClear, v)
		stack = append(stack, frame{s.reason[v], 1})
	}
	return true
}

func (s *Solver) computeLBD(lits []Lit) int32 {
	s2 := make(map[int32]struct{}, 8)
	for _, l := range lits {
		s2[s.level[l.Var()]] = struct{}{}
	}
	return int32(len(s2))
}

// reduceDB removes roughly half of the learnt clauses, preferring high
// LBD and low activity; reason clauses and glue clauses survive.
func (s *Solver) reduceDB() {
	s.Stats.Reduces++
	locked := func(c *clause) bool {
		return s.value(c.lits[0]) == LTrue && s.reason[c.lits[0].Var()] == c
	}
	sortClauses(s.learnts)
	keep := s.learnts[:0]
	limit := len(s.learnts) / 2
	for i, c := range s.learnts {
		if c.lbd <= 2 || locked(c) || len(c.lits) == 2 || i >= limit {
			keep = append(keep, c)
		}
	}
	s.learnts = append([]*clause(nil), keep...)
	s.rebuildWatches()
}

// sortClauses orders worst-first: high LBD then low activity.
func sortClauses(cs []*clause) {
	less := func(a, b *clause) bool {
		if a.lbd != b.lbd {
			return a.lbd > b.lbd
		}
		return a.act < b.act
	}
	// Simple binary-insertion-free heapless sort: use sort.Slice-alike via
	// plain quicksort to avoid reflection-heavy sort for hot path.
	quickSortClauses(cs, less)
}

func quickSortClauses(cs []*clause, less func(a, b *clause) bool) {
	for len(cs) > 12 {
		p := cs[len(cs)/2]
		i, j := 0, len(cs)-1
		for i <= j {
			for less(cs[i], p) {
				i++
			}
			for less(p, cs[j]) {
				j--
			}
			if i <= j {
				cs[i], cs[j] = cs[j], cs[i]
				i++
				j--
			}
		}
		if j > len(cs)-i {
			quickSortClauses(cs[i:], less)
			cs = cs[:j+1]
		} else {
			quickSortClauses(cs[:j+1], less)
			cs = cs[i:]
		}
	}
	for i := 1; i < len(cs); i++ {
		c := cs[i]
		j := i - 1
		for j >= 0 && less(c, cs[j]) {
			cs[j+1] = cs[j]
			j--
		}
		cs[j+1] = c
	}
}

func (s *Solver) rebuildWatches() {
	for i := range s.watches {
		s.watches[i] = s.watches[i][:0]
	}
	for _, c := range s.clauses {
		s.attach(c)
	}
	for _, c := range s.learnts {
		s.attach(c)
	}
}

// simplify removes clauses satisfied at level 0. Called between restarts
// when new top-level facts arrived — the "unit literals are not further
// considered after preprocessing" effect the paper notes for BSAT
// instances.
func (s *Solver) simplify() {
	if s.decisionLevel() != 0 || !s.ok {
		return
	}
	if len(s.trail) == s.simpDBAssigns {
		return
	}
	s.Stats.Simplifies++
	s.clauses = s.removeSatisfied(s.clauses)
	s.learnts = s.removeSatisfied(s.learnts)
	s.rebuildWatches()
	s.simpDBAssigns = len(s.trail)
}

func (s *Solver) removeSatisfied(cs []*clause) []*clause {
	keep := cs[:0]
outer:
	for _, c := range cs {
		for _, l := range c.lits {
			if s.value(l) == LTrue && s.level[l.Var()] == 0 {
				continue outer
			}
		}
		// Drop level-0 falsified literals beyond the watched positions.
		n := 2
		for i := 2; i < len(c.lits); i++ {
			l := c.lits[i]
			if !(s.value(l) == LFalse && s.level[l.Var()] == 0) {
				c.lits[n] = l
				n++
			}
		}
		c.lits = c.lits[:n]
		keep = append(keep, c)
	}
	return append([]*clause(nil), keep...)
}

// ctxPollConflicts is how many conflicts may pass between cancellation
// polls inside search: frequent enough that ctx.Done() surfaces
// promptly, rare enough that the select never shows up in profiles.
const ctxPollConflicts = 64

// interrupted reports whether the active SolveContext was cancelled.
func (s *Solver) interrupted() bool {
	if s.ctx == nil {
		return false
	}
	select {
	case <-s.ctx.Done():
		return true
	default:
		return false
	}
}

// SolveContext is Solve under a cancellation context: when ctx is done
// the search winds down and returns StatusUnknown (the same verdict an
// expired budget produces), leaving the solver usable. A nil ctx makes
// SolveContext identical to Solve. The context is polled between
// restarts and every ctxPollConflicts conflicts, so cancellation
// surfaces promptly even inside a long search.
func (s *Solver) SolveContext(ctx context.Context, assumptions ...Lit) Status {
	if ctx == nil {
		return s.Solve(assumptions...)
	}
	if ctx.Err() != nil {
		return StatusUnknown
	}
	s.ctx = ctx
	s.ctxNext = s.Stats.Conflicts + ctxPollConflicts
	defer func() { s.ctx = nil }()
	return s.Solve(assumptions...)
}

// Solve determines satisfiability under the given assumptions. On
// StatusSat the model is available through Value; on StatusUnsat under
// assumptions, ConflictSet holds a failed-assumption core. StatusUnknown
// reports an expired budget; the solver remains usable.
func (s *Solver) Solve(assumptions ...Lit) Status {
	if !s.ok {
		return StatusUnsat
	}
	if !s.Deadline.IsZero() && !time.Now().Before(s.Deadline) {
		// An already-expired deadline fails fast instead of burning a
		// restart's worth of conflicts first (and lets callers detect a
		// stale budget deterministically).
		return StatusUnknown
	}
	s.assumptions = append(s.assumptions[:0], assumptions...)
	s.conflictSet = s.conflictSet[:0]
	defer s.cancelUntil(0)

	if s.propagate() != nil {
		s.ok = false
		return StatusUnsat
	}

	startConflicts := s.Stats.Conflicts
	if s.maxLearnts == 0 {
		s.maxLearnts = float64(len(s.clauses)) / 3
		if s.maxLearnts < 5000 {
			s.maxLearnts = 5000
		}
	}
	for restart := int64(1); ; restart++ {
		budget := int64(-1)
		if s.MaxConflicts > 0 {
			budget = startConflicts + s.MaxConflicts - s.Stats.Conflicts
			if budget <= 0 {
				return StatusUnknown
			}
		}
		limit := luby(restart) * 100
		if budget >= 0 && limit > budget {
			limit = budget
		}
		st := s.search(int(limit))
		if st != StatusUnknown {
			return st
		}
		s.Stats.Restarts++
		if !s.Deadline.IsZero() && time.Now().After(s.Deadline) {
			return StatusUnknown
		}
		if s.interrupted() {
			return StatusUnknown
		}
		if s.MaxConflicts > 0 && s.Stats.Conflicts-startConflicts >= s.MaxConflicts {
			return StatusUnknown
		}
	}
}

// search runs CDCL until a verdict, a restart (after nConflicts
// conflicts), or an expired budget.
func (s *Solver) search(nConflicts int) Status {
	conflicts := 0
	for {
		confl := s.propagate()
		if confl != nil {
			s.Stats.Conflicts++
			conflicts++
			if s.ctx != nil && s.Stats.Conflicts >= s.ctxNext {
				s.ctxNext = s.Stats.Conflicts + ctxPollConflicts
				if s.interrupted() {
					s.cancelUntil(0)
					return StatusUnknown
				}
			}
			if s.decisionLevel() == 0 {
				s.ok = false
				return StatusUnsat
			}
			learnt, bt := s.analyze(confl)
			s.cancelUntil(bt)
			if len(learnt) == 1 {
				s.uncheckedEnqueue(learnt[0], nil)
			} else {
				c := &clause{lits: append([]Lit(nil), learnt...), learnt: true, lbd: s.computeLBD(learnt)}
				s.learnts = append(s.learnts, c)
				s.attach(c)
				s.bumpClause(c)
				s.uncheckedEnqueue(learnt[0], c)
				s.Stats.Learnt++
				s.Stats.LearntLits += int64(len(learnt))
			}
			s.varInc *= varDecay
			s.clauseInc *= clauseDecay
			continue
		}

		// No conflict.
		if conflicts >= nConflicts {
			s.cancelUntil(0)
			return StatusUnknown
		}
		if s.decisionLevel() == 0 {
			s.simplify()
			if !s.ok {
				return StatusUnsat
			}
		}
		if float64(len(s.learnts))-float64(len(s.trail)) >= s.maxLearnts {
			s.maxLearnts *= 1.1
			s.reduceDB()
		}

		// Decide: assumptions first, then VSIDS.
		var next Lit = LitUndef
		for s.decisionLevel() < len(s.assumptions) {
			p := s.assumptions[s.decisionLevel()]
			switch s.value(p) {
			case LTrue:
				s.newDecisionLevel() // dummy level for satisfied assumption
			case LFalse:
				s.analyzeFinal(p.Neg())
				return StatusUnsat
			default:
				next = p
			}
			if next != LitUndef {
				break
			}
		}
		if next == LitUndef {
			for !s.order.empty() {
				v := s.order.removeMax(s.activity)
				if s.assigns[v] == LUndef && s.decision[v] {
					next = MkLit(v, s.polarity[v])
					break
				}
			}
			if next == LitUndef {
				// All variables assigned: model found.
				s.model = append(s.model[:0], s.assigns...)
				return StatusSat
			}
		}
		s.Stats.Decisions++
		s.newDecisionLevel()
		s.uncheckedEnqueue(next, nil)
	}
}

// analyzeFinal computes the failed-assumption core when assumption p
// (negated form supplied) conflicts with the current state.
func (s *Solver) analyzeFinal(p Lit) {
	s.conflictSet = append(s.conflictSet[:0], p)
	if s.decisionLevel() == 0 {
		return
	}
	s.seen[p.Var()] = 1
	for i := len(s.trail) - 1; i >= s.trailLim[0]; i-- {
		v := s.trail[i].Var()
		if s.seen[v] == 0 {
			continue
		}
		if s.reason[v] == nil {
			if s.level[v] > 0 {
				s.conflictSet = append(s.conflictSet, s.trail[i].Neg())
			}
		} else {
			for _, l := range s.reason[v].lits[1:] {
				if s.level[l.Var()] > 0 {
					s.seen[l.Var()] = 1
				}
			}
		}
		s.seen[v] = 0
	}
	s.seen[p.Var()] = 0
}

// varHeap is an indexed max-heap over variable activity with
// deterministic tie-breaking (lower variable index wins).
type varHeap struct {
	heap []Var
	pos  []int32
}

func (h *varHeap) empty() bool { return len(h.heap) == 0 }

func (h *varHeap) contains(v Var) bool {
	return int(v) < len(h.pos) && h.pos[v] >= 0
}

func (h *varHeap) insert(v Var, act []float64) {
	for int(v) >= len(h.pos) {
		h.pos = append(h.pos, -1)
	}
	if h.pos[v] >= 0 {
		return
	}
	h.pos[v] = int32(len(h.heap))
	h.heap = append(h.heap, v)
	h.up(int(h.pos[v]), act)
}

func (h *varHeap) update(v Var, act []float64) {
	if h.contains(v) {
		h.up(int(h.pos[v]), act)
	}
}

func (h *varHeap) removeMax(act []float64) Var {
	v := h.heap[0]
	last := h.heap[len(h.heap)-1]
	h.heap = h.heap[:len(h.heap)-1]
	h.pos[v] = -1
	if len(h.heap) > 0 {
		h.heap[0] = last
		h.pos[last] = 0
		h.down(0, act)
	}
	return v
}

func heapLess(a, b Var, act []float64) bool {
	if act[a] != act[b] {
		return act[a] > act[b]
	}
	return a < b
}

func (h *varHeap) up(i int, act []float64) {
	v := h.heap[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !heapLess(v, h.heap[parent], act) {
			break
		}
		h.heap[i] = h.heap[parent]
		h.pos[h.heap[i]] = int32(i)
		i = parent
	}
	h.heap[i] = v
	h.pos[v] = int32(i)
}

func (h *varHeap) down(i int, act []float64) {
	v := h.heap[i]
	for {
		l := 2*i + 1
		if l >= len(h.heap) {
			break
		}
		best := l
		if r := l + 1; r < len(h.heap) && heapLess(h.heap[r], h.heap[l], act) {
			best = r
		}
		if !heapLess(h.heap[best], v, act) {
			break
		}
		h.heap[i] = h.heap[best]
		h.pos[h.heap[i]] = int32(i)
		i = best
	}
	h.heap[i] = v
	h.pos[v] = int32(i)
}
