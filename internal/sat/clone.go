package sat

// Clone returns an independent snapshot of the solver: the clause arena,
// the variable state (level-0 assignments, VSIDS activities, saved
// phases, decision flags) and the top-level trail are copied, so the
// clone and the original diverge freely afterwards. With keepLearnts the
// learnt-clause database comes along too, seeding the clone's search
// with everything the original has already deduced; without it the clone
// restarts learning from scratch on a smaller database.
//
// Because the clause store is a flat arena and every cross-reference is
// an offset, the whole clause database — problem clauses, learnts,
// activities, LBDs — transfers with a single bulk copy, and the watch
// lists transfer as one flat slab carved into per-literal views. Clone
// is a handful of memcpys: no per-clause allocation, no pointer
// remapping. That is what makes shard-worker forks and warm-session
// snapshots cheap enough to take per request.
//
// The clone starts with fresh budgets (no conflict cap, no deadline, no
// context) and zeroed Statistics, so per-clone work is attributable —
// sharded enumeration reads each shard's solver effort directly off its
// clone.
//
// Clone must be called between Solve calls (decision level 0). Level-0
// reason entries are dropped rather than carried: conflict analysis
// never dereferences the reason of a level-0 variable (every use is
// guarded by level > 0), and top-level trail entries are never undone.
// Dropping them also keeps reduceDB's locked() check from pinning
// clauses in the clone that the pre-arena Clone would not have pinned.
func (s *Solver) Clone(keepLearnts bool) Backend {
	if s.decisionLevel() != 0 {
		panic("sat: Clone above decision level 0")
	}
	n := &Solver{
		clauses:   append([]CRef(nil), s.clauses...),
		assigns:   append([]LBool(nil), s.assigns...),
		level:     append([]int32(nil), s.level...),
		reason:    make([]CRef, len(s.reason)),
		trail:     append([]Lit(nil), s.trail...),
		qhead:     s.qhead,
		activity:  append([]float64(nil), s.activity...),
		varInc:    s.varInc,
		polarity:  append([]bool(nil), s.polarity...),
		decision:  append([]bool(nil), s.decision...),
		clauseInc: s.clauseInc,
		seen:      make([]byte, len(s.seen)),
		ok:        s.ok,

		ClauseMinimize: s.ClauseMinimize,
		PhaseSaving:    s.PhaseSaving,

		maxLearnts:    s.maxLearnts,
		simpDBAssigns: s.simpDBAssigns,
	}
	n.ca.data = append([]uint32(nil), s.ca.data...)
	n.ca.wasted = s.ca.wasted
	for i := range n.reason {
		n.reason[i] = CRefUndef
	}
	n.order.heap = append([]Var(nil), s.order.heap...)
	n.order.pos = append([]int32(nil), s.order.pos...)
	if keepLearnts {
		n.learnts = append([]CRef(nil), s.learnts...)
	} else {
		// The learnt clauses stay behind as arena garbage in the clone;
		// compaction reclaims them once it is worth a pass.
		for _, cr := range s.learnts {
			n.ca.free(cr)
		}
	}

	// Watch lists: one flat slab, carved into capacity-bounded per-literal
	// views (three-index slices, so a list growing past its region
	// reallocates instead of stomping its neighbour). Keeping the
	// original's watch order also keeps its warm blockers.
	total := 0
	for i := range s.watches {
		total += len(s.watches[i])
	}
	flat := make([]watch, 0, total)
	n.watches = make([][]watch, len(s.watches))
	for i, ws := range s.watches {
		start := len(flat)
		if keepLearnts {
			flat = append(flat, ws...)
		} else {
			for _, w := range ws {
				if !n.ca.learnt(w.cref()) {
					flat = append(flat, w)
				}
			}
		}
		n.watches[i] = flat[start:len(flat):len(flat)]
	}
	return n
}
