package sat

// Clone returns an independent snapshot of the solver: the problem
// clause database, the variable state (level-0 assignments, VSIDS
// activities, saved phases, decision flags) and the top-level trail are
// deep-copied, so the clone and the original diverge freely afterwards.
// With keepLearnts the learnt-clause database comes along too, seeding
// the clone's search with everything the original has already deduced;
// without it the clone restarts learning from scratch on a smaller
// database.
//
// The clone starts with fresh budgets (no conflict cap, no deadline, no
// context) and zeroed Statistics, so per-clone work is attributable —
// sharded enumeration reads each shard's solver effort directly off its
// clone.
//
// Clone must be called between Solve calls (decision level 0). Level-0
// reason clauses are dropped rather than remapped: conflict analysis
// never dereferences the reason of a level-0 variable (every use is
// guarded by level > 0), and top-level trail entries are never undone.
func (s *Solver) Clone(keepLearnts bool) Backend {
	if s.decisionLevel() != 0 {
		panic("sat: Clone above decision level 0")
	}
	n := &Solver{
		assigns:   append([]LBool(nil), s.assigns...),
		level:     append([]int32(nil), s.level...),
		reason:    make([]*clause, len(s.reason)),
		trail:     append([]Lit(nil), s.trail...),
		qhead:     s.qhead,
		activity:  append([]float64(nil), s.activity...),
		varInc:    s.varInc,
		polarity:  append([]bool(nil), s.polarity...),
		decision:  append([]bool(nil), s.decision...),
		clauseInc: s.clauseInc,
		seen:      make([]byte, len(s.seen)),
		ok:        s.ok,

		ClauseMinimize: s.ClauseMinimize,
		PhaseSaving:    s.PhaseSaving,

		maxLearnts:    s.maxLearnts,
		simpDBAssigns: s.simpDBAssigns,
	}
	n.order.heap = append([]Var(nil), s.order.heap...)
	n.order.pos = append([]int32(nil), s.order.pos...)
	n.watches = make([][]watch, len(s.watches))
	n.clauses = make([]*clause, 0, len(s.clauses))
	for _, c := range s.clauses {
		nc := &clause{lits: append([]Lit(nil), c.lits...), act: c.act, lbd: c.lbd}
		n.clauses = append(n.clauses, nc)
		n.attach(nc)
	}
	if keepLearnts {
		n.learnts = make([]*clause, 0, len(s.learnts))
		for _, c := range s.learnts {
			nc := &clause{lits: append([]Lit(nil), c.lits...), act: c.act, lbd: c.lbd, learnt: true}
			n.learnts = append(n.learnts, nc)
			n.attach(nc)
		}
	}
	return n
}
