package sat

// Clone returns an independent snapshot of the solver: the clause arena,
// the variable state (level-0 assignments, VSIDS activities, saved
// phases, decision flags) and the top-level trail are copied, so the
// clone and the original diverge freely afterwards. With keepLearnts the
// learnt-clause database comes along too, seeding the clone's search
// with everything the original has already deduced; without it the clone
// restarts learning from scratch on a smaller database.
//
// Because the clause store is a flat arena and every cross-reference is
// an offset, the whole clause database — problem clauses, learnts,
// activities, LBDs — transfers with a single bulk copy, and the watch
// slab transfers with two (the per-literal range table and the flat
// data array). Clone is a handful of memcpys: no per-clause or
// per-literal allocation, no pointer remapping. That is what makes
// shard-worker forks and warm-session snapshots cheap enough to take
// per request.
//
// The clone starts with fresh budgets (no conflict cap, no deadline, no
// context) and zeroed Statistics, so per-clone work is attributable —
// sharded enumeration reads each shard's solver effort directly off its
// clone.
//
// Clone must be called between Solve calls (decision level 0). Level-0
// reason entries are dropped rather than carried: conflict analysis
// never dereferences the reason of a level-0 variable (every use is
// guarded by level > 0), and top-level trail entries are never undone.
// Dropping them also keeps reduceDB's locked() check from pinning
// clauses in the clone that the pre-arena Clone would not have pinned.
func (s *Solver) Clone(keepLearnts bool) Backend {
	if s.decisionLevel() != 0 {
		panic("sat: Clone above decision level 0")
	}
	n := &Solver{
		clauses:   append([]CRef(nil), s.clauses...),
		assigns:   append([]LBool(nil), s.assigns...),
		level:     append([]int32(nil), s.level...),
		reason:    make([]CRef, len(s.reason)),
		trail:     append([]Lit(nil), s.trail...),
		qhead:     s.qhead,
		activity:  append([]float64(nil), s.activity...),
		varInc:    s.varInc,
		polarity:  append([]bool(nil), s.polarity...),
		decision:  append([]bool(nil), s.decision...),
		clauseInc: s.clauseInc,
		seen:      make([]byte, len(s.seen)),
		ok:        s.ok,

		ClauseMinimize: s.ClauseMinimize,
		PhaseSaving:    s.PhaseSaving,

		// Search configuration and gen2 restart state: the LBD EMAs and
		// the vivification cursor come along, so a clone's search is
		// reproducible from the fork point — it restarts (and resumes
		// vivification) exactly where its parent would have.
		cfg:          s.cfg,
		emaFast:      s.emaFast,
		emaSlow:      s.emaSlow,
		lbdConflicts: s.lbdConflicts,
		vivifyHead:   s.vivifyHead,

		maxLearnts:    s.maxLearnts,
		simpDBAssigns: s.simpDBAssigns,

		// The flight recorder is shared, not copied: its ring is
		// written with atomics, so shard workers and portfolio forks
		// interleave their events on the parent's timeline and one dump
		// shows the whole fan-out.
		rec: s.rec,
	}
	n.ca.data = append([]uint32(nil), s.ca.data...)
	n.ca.wasted = s.ca.wasted
	for i := range n.reason {
		n.reason[i] = CRefUndef
	}
	n.order.heap = append([]Var(nil), s.order.heap...)
	n.order.pos = append([]int32(nil), s.order.pos...)
	if keepLearnts {
		n.learnts = append([]CRef(nil), s.learnts...)
	} else {
		// The learnt clauses stay behind as arena garbage in the clone;
		// compaction reclaims them once it is worth a pass.
		for _, cr := range s.learnts {
			n.ca.free(cr)
		}
	}

	// Watch lists: the slab transfers with two bulk copies (the range
	// table and the flat data array) — no per-literal work at all, the
	// last per-literal allocation Clone had. Keeping the original's
	// watch order also keeps its warm blockers. Without keepLearnts the
	// data array is re-laid per literal instead, filtering out watches
	// of the learnt clauses left behind as garbage.
	if keepLearnts {
		n.wslab.rng = append([]watchRange(nil), s.wslab.rng...)
		n.wslab.data = append([]watch(nil), s.wslab.data...)
		n.wslab.wasted = s.wslab.wasted
	} else {
		n.wslab.rng = make([]watchRange, len(s.wslab.rng))
		n.wslab.data = make([]watch, 0, len(s.wslab.data))
		for i := range s.wslab.rng {
			r := s.wslab.rng[i]
			start := uint32(len(n.wslab.data))
			for _, w := range s.wslab.data[r.off : r.off+r.n] {
				if !n.ca.learnt(w.cref()) {
					n.wslab.data = append(n.wslab.data, w)
				}
			}
			kept := uint32(len(n.wslab.data)) - start
			n.wslab.rng[i] = watchRange{off: start, n: kept, cap: kept}
		}
	}
	return n
}
