package sat

import (
	"testing"

	"repro/internal/trace"
)

// TestSolveZeroAllocTracing: the flight recorder must not disturb the
// solver's allocation discipline. With no recorder attached (the
// default — recording disabled), steady-state assumption solves stay at
// zero allocs/op exactly as TestPropagateZeroAlloc pins for the hot
// propagate/analyze loop; with a recorder attached, they STILL stay at
// zero allocs/op, because Record is one atomic add plus one atomic
// store into a preallocated ring.
func TestSolveZeroAllocTracing(t *testing.T) {
	for _, tc := range []struct {
		name string
		rec  *trace.Recorder
	}{
		{"disabled", nil},
		{"enabled", trace.NewRecorder(64)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s, vars := randomInstance(400, 0x9E3779B97F4A7C15)
			s.SetRecorder(tc.rec)
			if st := s.Solve(); st != StatusSat {
				t.Skipf("instance not SAT: %v", st)
			}
			assumps := make([]Lit, 1)
			i := 0
			for range vars {
				assumps[0] = MkLit(vars[i%len(vars)], s.Value(vars[i%len(vars)]) == LFalse)
				s.Solve(assumps...)
				i++
			}
			allocs := testing.AllocsPerRun(200, func() {
				v := vars[i%len(vars)]
				i++
				assumps[0] = MkLit(v, s.Value(v) == LFalse)
				if s.Solve(assumps...) != StatusSat {
					t.Fatal("replay conflicted")
				}
			})
			if allocs != 0 {
				t.Fatalf("steady-state solve with tracing %s allocated %v allocs/op, want 0", tc.name, allocs)
			}
			if tc.rec != nil && tc.rec.Len() == 0 {
				t.Fatal("enabled recorder saw no events across the warmup solves")
			}
		})
	}
}
