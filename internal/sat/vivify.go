package sat

// Clause vivification (gen2 only): at decision level 0, re-derive each
// problem clause by asserting the negations of its literals one at a
// time and propagating. Three outcomes strengthen the clause:
//
//   - propagation conflicts after asserting ~l1..~li: (l1 ∨ .. ∨ li) is
//     implied and subsumes the clause — truncate to the prefix;
//   - some later literal l is already true: (l1 ∨ .. ∨ l_{i} ∨ l) is
//     implied — truncate to the prefix plus l;
//   - some later literal l is already false: ~(l1 ∨ .. ∨ li) implies ~l,
//     so resolving removes l from the clause.
//
// The probed clause is detached first so it cannot propagate itself,
// and reattached (or freed, when it shrank to a unit or was found
// level-0 satisfied) afterwards. Probes never learn clauses; all probe
// assignments are unwound before the next clause.

// vivifyRound probes up to vivifyBatch problem clauses starting at the
// resumption cursor. Runs at decision level 0 with saturated
// propagation and valid watches (simplify calls it right after
// rebuildWatches). Sets s.ok = false if a derived unit conflicts.
func (s *Solver) vivifyRound() {
	if len(s.clauses) == 0 {
		return
	}
	if s.vivifyHead >= len(s.clauses) {
		s.vivifyHead = 0
	}
	end := s.vivifyHead + vivifyBatch
	if end > len(s.clauses) {
		end = len(s.clauses)
	}
	freed := false
	for idx := s.vivifyHead; idx < end; idx++ {
		if s.ca.size(s.clauses[idx]) <= 2 {
			continue // binaries propagate inline; nothing to shrink
		}
		dropped, ok := s.vivifyClause(idx)
		if dropped {
			freed = true
		}
		if !ok {
			s.ok = false
			break
		}
	}
	s.vivifyHead = end
	if freed {
		keep := s.clauses[:0]
		for _, cr := range s.clauses {
			if cr != CRefUndef {
				keep = append(keep, cr)
			}
		}
		s.clauses = keep
	}
}

// vivifyClause probes s.clauses[idx]. It reports whether the clause was
// freed (its slot set to CRefUndef) and whether the database is still
// consistent.
func (s *Solver) vivifyClause(idx int) (dropped, consistent bool) {
	cr := s.clauses[idx]
	s.detach(cr)
	lits := s.ca.lits(cr)

	kept := s.learntBuf[:0]
	satisfied := false // true literal at level 0: clause is redundant
	truncated := false // prefix implies the clause: stop here
	for _, qw := range lits {
		l := Lit(qw)
		switch s.value(l) {
		case LTrue:
			if s.varLevel(l.Var()) == 0 {
				satisfied = true
			} else {
				kept = append(kept, l)
				truncated = true
			}
		case LFalse:
			continue // implied false by the prefix (or at level 0): drop
		default:
			s.newDecisionLevel()
			s.uncheckedEnqueue(l.Neg(), CRefUndef)
			kept = append(kept, l)
			if s.propagate() != CRefUndef {
				truncated = true
			}
		}
		if satisfied || truncated {
			break
		}
	}
	s.cancelUntil(0)
	defer func() { s.learntBuf = kept[:0] }()

	if satisfied {
		s.ca.free(cr)
		s.clauses[idx] = CRefUndef
		s.Stats.VivifiedLits += int64(len(lits))
		return true, true
	}
	removed := len(lits) - len(kept)
	if removed == 0 {
		s.attach(cr)
		return false, true
	}
	s.Stats.VivifiedLits += int64(removed)
	switch len(kept) {
	case 0:
		// Every literal was false at level 0: the database is
		// unsatisfiable (cannot normally happen — level-0 propagation
		// is saturated on entry — but a derived unit mid-batch could
		// in principle expose it).
		s.ca.free(cr)
		s.clauses[idx] = CRefUndef
		return true, false
	case 1:
		s.ca.free(cr)
		s.clauses[idx] = CRefUndef
		if s.value(kept[0]) == LUndef {
			s.uncheckedEnqueue(kept[0], CRefUndef)
			if s.propagate() != CRefUndef {
				return true, false
			}
		}
		return true, true
	default:
		for i, l := range kept {
			lits[i] = uint32(l)
		}
		s.ca.setSize(cr, len(kept))
		s.attach(cr)
		return false, true
	}
}
