package sat

import "math"

// The clause store is a single flat []uint32 arena. A clause is a CRef —
// the word offset of its header — followed inline by its literals:
//
//	word 0: size<<1 | learnt
//	word 1: activity (float32 bits)
//	word 2: LBD
//	word 3..3+size: literals (Lit values)
//
// Everything the CDCL hot loops chase — watch targets, reasons, the
// learnt database — is a CRef into this one slice, so propagation walks
// cache-local memory instead of pointer-hopping across the heap, growth
// never invalidates references (offsets are stable where pointers would
// not be), and Clone copies the entire clause database with one memcpy.
//
// Binary clauses additionally never need dereferencing on the hot path:
// their watches embed the other literal directly (see watch below).

// CRef is a clause reference: the word offset of a clause header in the
// arena. CRefUndef is the absent clause (what a nil *clause used to be).
type CRef uint32

// CRefUndef marks "no clause" in reasons, watches and conflict returns.
const CRefUndef CRef = ^CRef(0)

const clauseHdr = 3 // header words before the literals

// maxArenaWords bounds the arena so a CRef always fits in 31 bits —
// watch entries pack the binary-clause flag into the low bit of a
// shifted CRef. 2^31 words is an 8 GiB clause database, far beyond any
// instance this system builds.
const maxArenaWords = 1 << 31

type clauseArena struct {
	data []uint32
	// wasted counts words owned by detached clauses (deleted by
	// reduceDB/removeSatisfied, or literals dropped by level-0
	// shrinking). Compaction reclaims them once a third of the arena is
	// garbage.
	wasted uint32
}

// alloc appends a clause and returns its reference. The literals are
// copied; the caller's slice is not retained.
func (ca *clauseArena) alloc(lits []Lit, learnt bool) CRef {
	base := len(ca.data)
	need := base + clauseHdr + len(lits)
	if need > maxArenaWords {
		panic("sat: clause arena exceeds 2^31 words")
	}
	if cap(ca.data) < need {
		grown := make([]uint32, base, grow(cap(ca.data), need))
		copy(grown, ca.data)
		ca.data = grown
	}
	ca.data = ca.data[:need]
	meta := uint32(len(lits)) << 1
	if learnt {
		meta |= 1
	}
	d := ca.data[base:need]
	d[0] = meta
	d[1] = 0 // activity
	d[2] = 0 // LBD
	for i, l := range lits {
		d[clauseHdr+i] = uint32(l)
	}
	return CRef(base)
}

func grow(cur, need int) int {
	if cur < 1024 {
		cur = 1024
	}
	for cur < need {
		cur *= 2
	}
	if cur > maxArenaWords {
		cur = maxArenaWords
	}
	return cur
}

func (ca *clauseArena) size(c CRef) int    { return int(ca.data[c] >> 1) }
func (ca *clauseArena) learnt(c CRef) bool { return ca.data[c]&1 != 0 }

// lits returns the clause's literal words — a live view into the arena;
// element writes (watch swaps, level-0 shrinking) update the clause in
// place exactly as mutating clause.lits used to.
func (ca *clauseArena) lits(c CRef) []uint32 {
	h := uint32(c)
	n := ca.data[h] >> 1
	return ca.data[h+clauseHdr : h+clauseHdr+n : h+clauseHdr+n]
}

func (ca *clauseArena) act(c CRef) float32 { return math.Float32frombits(ca.data[c+1]) }
func (ca *clauseArena) setAct(c CRef, a float32) {
	ca.data[c+1] = math.Float32bits(a)
}

func (ca *clauseArena) lbd(c CRef) int32         { return int32(ca.data[c+2]) }
func (ca *clauseArena) setLBD(c CRef, lbd int32) { ca.data[c+2] = uint32(lbd) }

// setSize shrinks the clause to its first n literals (level-0
// simplification); the freed tail words become garbage until compaction.
func (ca *clauseArena) setSize(c CRef, n int) {
	old := ca.size(c)
	ca.data[c] = uint32(n)<<1 | ca.data[c]&1
	if old > n {
		ca.wasted += uint32(old - n)
	}
}

// words is the footprint of the clause including its header.
func (ca *clauseArena) words(c CRef) uint32 { return clauseHdr + uint32(ca.size(c)) }

// free marks the clause as garbage (detached by the caller).
func (ca *clauseArena) free(c CRef) { ca.wasted += ca.words(c) }

// watch is one entry of a literal's watcher list. cw packs the CRef
// (shifted left) with a binary-clause flag in the low bit. For binary
// clauses blocker is the *other* literal of the clause, so propagation
// resolves skip/enqueue/conflict without ever touching the arena — the
// clause body is only read if the clause later appears in conflict
// analysis as a reason. Binary and long watches share one list per
// literal, preserving the pre-arena propagation order exactly (separate
// binary lists would reorder enqueues and change the whole search).
type watch struct {
	cw      uint32
	blocker Lit
}

func mkWatch(c CRef, blocker Lit) watch  { return watch{uint32(c) << 1, blocker} }
func mkBinWatch(c CRef, other Lit) watch { return watch{uint32(c)<<1 | 1, other} }

func (w watch) bin() bool  { return w.cw&1 != 0 }
func (w watch) cref() CRef { return CRef(w.cw >> 1) }

// maybeCompact compacts the arena once at least a third of it is
// garbage. Compaction is invisible to the search: clause contents and
// relative order are preserved, only offsets change, and behaviour never
// depends on offset values.
func (s *Solver) maybeCompact() {
	if s.ca.wasted == 0 || uint64(s.ca.wasted)*3 < uint64(len(s.ca.data)) {
		return
	}
	s.compact()
}

// compact slides every live clause down over the garbage in address
// order (destinations never overtake unmoved sources), then relocates
// the clause lists and reasons through the old→new offset map. Reasons
// whose clause was deleted (level-0 entries whose satisfied reason was
// simplified away — never dereferenced again, by the same argument that
// let Clone drop them) are cleared to CRefUndef, which also guarantees a
// stale reason can never collide with a live clause the way a reused
// offset could. Watch lists are NOT fixed up here: every caller rebuilds
// them from the clause lists afterwards, the same discipline the
// pre-arena solver used after reduceDB/simplify. The scratch buffers are
// solver-resident, so steady-state compaction allocates nothing.
func (s *Solver) compact() {
	live := append(s.relocOld[:0], s.clauses...)
	live = append(live, s.learnts...)
	sortCRefs(live)
	newRefs := s.relocNew[:0]
	var dst uint32
	for _, cr := range live {
		src := uint32(cr)
		n := clauseHdr + s.ca.data[src]>>1
		copy(s.ca.data[dst:dst+n], s.ca.data[src:src+n])
		newRefs = append(newRefs, CRef(dst))
		dst += n
	}
	s.ca.data = s.ca.data[:dst]
	s.ca.wasted = 0
	s.relocOld, s.relocNew = live, newRefs

	reloc := func(c CRef) (CRef, bool) {
		lo, hi := 0, len(live)
		for lo < hi {
			mid := (lo + hi) / 2
			if live[mid] < c {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(live) && live[lo] == c {
			return newRefs[lo], true
		}
		return CRefUndef, false
	}
	for i, cr := range s.clauses {
		s.clauses[i], _ = reloc(cr)
	}
	for i, cr := range s.learnts {
		s.learnts[i], _ = reloc(cr)
	}
	for v := range s.reason {
		if r := s.reason[v]; r != CRefUndef {
			if nr, ok := reloc(r); ok {
				s.reason[v] = nr
			} else {
				s.reason[v] = CRefUndef
			}
		}
	}
}

// sortCRefs sorts clause references ascending (allocation-free — the
// non-capturing closure does not escape; used on the compaction path).
func sortCRefs(cs []CRef) {
	quickSortClauseRefs(cs, func(a, b CRef) bool { return a < b })
}

// sortClauseRefs orders learnt clauses worst-first — high LBD, then low
// activity — with the exact pivot/partition structure the pre-arena
// sortClauses used, so the kept half (and hence the whole search) is
// identical.
func sortClauseRefs(cs []CRef, ca *clauseArena) {
	less := func(a, b CRef) bool {
		la, lb := ca.lbd(a), ca.lbd(b)
		if la != lb {
			return la > lb
		}
		return ca.act(a) < ca.act(b)
	}
	quickSortClauseRefs(cs, less)
}

func quickSortClauseRefs(cs []CRef, less func(a, b CRef) bool) {
	for len(cs) > 12 {
		p := cs[len(cs)/2]
		i, j := 0, len(cs)-1
		for i <= j {
			for less(cs[i], p) {
				i++
			}
			for less(p, cs[j]) {
				j--
			}
			if i <= j {
				cs[i], cs[j] = cs[j], cs[i]
				i++
				j--
			}
		}
		if j > len(cs)-i {
			quickSortClauseRefs(cs[i:], less)
			cs = cs[:j+1]
		} else {
			quickSortClauseRefs(cs[:j+1], less)
			cs = cs[i:]
		}
	}
	for i := 1; i < len(cs); i++ {
		c := cs[i]
		j := i - 1
		for j >= 0 && less(c, cs[j]) {
			cs[j+1] = cs[j]
			j--
		}
		cs[j+1] = c
	}
}
