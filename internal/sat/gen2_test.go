package sat

import (
	"fmt"
	"sort"
	"testing"
)

// The gen2 configuration is a deliberate search change: LBD-EMA
// restarts, clause vivification and chronological backtracking alter
// the trajectory, so it gets its own golden recording instead of the
// pre-arena one. Regenerate with
//
//	go test ./internal/sat -run TestDifferentialGoldenGen2 -update-golden
//
// What must NOT change, recording or not, is the solution space: gen2
// and default enumerate identical projected-solution sets on every
// instance (TestGen2SolutionSetEquivalence below), which is what makes
// portfolio racing across configurations sound.

const gen2GoldenPath = "testdata/gen2_golden.json"

// TestDifferentialGoldenGen2 replays the differential corpus under the
// gen2 configuration against its own recording.
func TestDifferentialGoldenGen2(t *testing.T) {
	runGoldenSuite(t, gen2GoldenPath, Gen2Config())
}

// TestConfigByName pins the config registry the wire formats rely on.
func TestConfigByName(t *testing.T) {
	for _, name := range []string{"", "default", "gen2"} {
		cfg, err := ConfigByName(name)
		if err != nil {
			t.Fatalf("ConfigByName(%q): %v", name, err)
		}
		if name == "gen2" && (!cfg.LBDRestarts || !cfg.Vivify || cfg.ChronoBT <= 0) {
			t.Fatalf("gen2 config missing heuristics: %+v", cfg)
		}
		if name != "gen2" && (cfg.LBDRestarts || cfg.Vivify || cfg.ChronoBT != 0) {
			t.Fatalf("default config has gen2 heuristics enabled: %+v", cfg)
		}
	}
	if _, err := ConfigByName("gen3"); err == nil {
		t.Fatal("ConfigByName accepted an unknown name")
	}
	if len(PortfolioConfigs()) < 2 {
		t.Fatal("portfolio needs at least two configurations to race")
	}
}

// minimalMasks reduces subset-blocked enumeration output to its minimal
// antichain (drop every solution that is a proper superset of another)
// — the canonicalization cnf.DropSupersets applies at the diagnosis
// layer. The raw output is trajectory-dependent (a non-minimal solution
// can surface before the subset that would have blocked it), but the
// minimal antichain of a complete enumeration is not.
func minimalMasks(masks []uint32) []uint32 {
	var out []uint32
	for _, m := range masks {
		keep := true
		for _, o := range masks {
			if o != m && o&m == o {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TestGen2SolutionSetEquivalence is the randomized property test: on
// random instances, complete subset-blocked enumeration under gen2
// yields exactly the default configuration's minimal solution set — the
// configs differ in trajectory only, which is what portfolio racing and
// mixed-config sharding rely on.
func TestGen2SolutionSetEquivalence(t *testing.T) {
	for seed := uint64(1); seed <= 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			sets := make(map[string][]uint32)
			for _, cfg := range PortfolioConfigs() {
				s := buildRandom(70, 70*3, 3, seed*0x9E3779B97F4A7C15, cfg)
				proj := make([]Lit, 12)
				for i := range proj {
					proj[i] = PosLit(Var(i))
				}
				var masks []uint32
				_, complete := s.EnumerateProjected(proj, EnumOptions{MaxSolutions: 100000}, func(trueLits []Lit) bool {
					var m uint32
					for _, l := range trueLits {
						m |= 1 << uint(l.Var())
					}
					masks = append(masks, m)
					return true
				})
				if !complete {
					t.Skipf("enumeration incomplete under %s; seed unusable", cfg.Name)
				}
				sets[cfg.Name] = minimalMasks(masks)
			}
			def, gen2 := sets["default"], sets["gen2"]
			if fmt.Sprint(def) != fmt.Sprint(gen2) {
				t.Fatalf("minimal solution sets differ:\n default: %v\n    gen2: %v", def, gen2)
			}
		})
	}
}

// TestGen2Verdicts checks the gen2 heuristics keep verdicts intact on
// structured UNSAT instances (the restarts/chrono/vivify combination
// must not lose soundness or completeness).
func TestGen2Verdicts(t *testing.T) {
	s := pigeonhole(8, 7)
	s.SetSearchConfig(Gen2Config())
	if st := s.Solve(); st != StatusUnsat {
		t.Fatalf("php(8,7) under gen2: %v, want UNSAT", st)
	}
	rs := buildRandom(120, int(120*3.6), 3, 0xD1B54A32D192ED03, Gen2Config())
	if st := rs.Solve(); st != StatusSat {
		t.Fatalf("rand/nv120/d3.6 under gen2: %v, want SAT", st)
	}
	// Re-solve after adding a blocking clause: incremental use.
	var block []Lit
	for v := 0; v < 10; v++ {
		if rs.Value(Var(v)) == LTrue {
			block = append(block, NegLit(Var(v)))
		} else {
			block = append(block, PosLit(Var(v)))
		}
	}
	rs.AddClause(block...)
	if st := rs.Solve(); st == StatusUnknown {
		t.Fatalf("incremental gen2 re-solve: %v", st)
	}
}

// TestChronoBTEquivalence lowers the chronological-backtracking
// threshold far below the production value so the conversion actually
// fires on small instances, and cross-checks every verdict against a
// default-config twin.
func TestChronoBTEquivalence(t *testing.T) {
	cfg := SearchConfig{Name: "chrono-test", ChronoBT: 3}
	fired := int64(0)
	for seed := uint64(11); seed <= 18; seed++ {
		a := buildRandom(110, int(110*4.2), 3, seed*0xA24BAED4963EE407, cfg)
		b := buildRandom(110, int(110*4.2), 3, seed*0xA24BAED4963EE407, DefaultConfig())
		sa, sb := a.Solve(), b.Solve()
		if sa != sb {
			t.Fatalf("seed %d: chrono solver says %v, default says %v", seed, sa, sb)
		}
		fired += a.Stats.ChronoBacktracks
	}
	if fired == 0 {
		t.Fatal("chronological backtracking never fired at threshold 3; test exercises nothing")
	}
}

// TestVivifyPreservesEquivalence drives vivification hard (many level-0
// simplify passes via incremental unit additions) and cross-checks
// every verdict against a default-config twin.
func TestVivifyPreservesEquivalence(t *testing.T) {
	cfg := Gen2Config()
	cfg.ChronoBT = 0
	cfg.LBDRestarts = false // isolate vivification
	for seed := uint64(3); seed <= 8; seed++ {
		a := buildRandom(90, 90*4, 3, seed*0x2545F4914F6CDD1D, cfg)
		b := buildRandom(90, 90*4, 3, seed*0x2545F4914F6CDD1D, DefaultConfig())
		if !a.Okay() || !b.Okay() {
			continue
		}
		rng := xorshift(seed)
		for round := 0; round < 8; round++ {
			assump := MkLit(Var(rng.next(90)), rng.next(2) == 1)
			sa, sb := a.Solve(assump), b.Solve(assump)
			if sa != sb {
				t.Fatalf("seed %d round %d: vivified solver says %v, default says %v", seed, round, sa, sb)
			}
			if round%3 == 2 {
				// Force a fresh top-level fact so simplify (and with it
				// vivifyRound) actually runs.
				unit := MkLit(Var(rng.next(90)), rng.next(2) == 1)
				oa, ob := a.AddClause(unit), b.AddClause(unit)
				if oa != ob {
					t.Fatalf("seed %d round %d: AddClause disagreement %v vs %v", seed, round, oa, ob)
				}
				if !oa {
					break
				}
			}
		}
		if a.Stats.VivifiedLits == 0 && seed == 3 {
			t.Log("note: no literals vivified on seed 3 (instance too easy)")
		}
	}
}
