package sat

import (
	"context"
	"time"

	"repro/internal/trace"
)

// Builder is the clause-construction surface of a SAT backend: fresh
// variables and clause addition. The CNF encoders (gate functions,
// correction multiplexers, cardinality ladders) are written against
// Builder, so any Backend — not just the built-in Solver — can be
// encoded into.
type Builder interface {
	// NewVar introduces a fresh variable and returns it.
	NewVar() Var
	// AddClause adds a clause over the given literals, reporting false
	// when the database has become trivially unsatisfiable.
	AddClause(lits ...Lit) bool
}

// Backend abstracts the CDCL solver behind a diagnosis session: the
// full incremental surface the cnf and core layers rely on — clause
// construction, (context-aware) solving under assumptions, model and
// failed-assumption access, budgets, decision-heuristic steering,
// projected model enumeration, and cloning for sharded search.
//
// The built-in Solver is the reference implementation. Alternative
// backends (a different CDCL engine, a remote solver) plug into
// cnf.DiagOptions.Backend; everything above the session — BSAT, CEGAR,
// sharded enumeration, the engine registry — is backend-agnostic.
type Backend interface {
	Builder

	// NumVars returns the number of declared variables.
	NumVars() int
	// NumClauses returns the number of stored problem clauses.
	NumClauses() int
	// Okay reports whether the database is not yet known unsatisfiable.
	Okay() bool

	// Solve determines satisfiability under the given assumptions.
	Solve(assumptions ...Lit) Status
	// SolveContext is Solve with cooperative cancellation: when ctx is
	// done the search returns StatusUnknown promptly. A nil ctx behaves
	// exactly like Solve.
	SolveContext(ctx context.Context, assumptions ...Lit) Status
	// Value returns the model value of v after a StatusSat solve.
	Value(v Var) LBool
	// ValueLit returns the model value of a literal after StatusSat.
	ValueLit(l Lit) LBool
	// ConflictSet returns the failed-assumption core after a StatusUnsat
	// solve under assumptions.
	ConflictSet() []Lit

	// SetBudget installs a fresh per-Solve conflict budget and wall-clock
	// deadline (zero values mean unlimited).
	SetBudget(maxConflicts int64, timeout time.Duration)
	// SetSearchConfig selects the search configuration (restart policy,
	// vivification, chronological backtracking) for subsequent solves.
	// Configurations change the search trajectory, never the solution
	// space, so they may be switched per request on a live session.
	SetSearchConfig(cfg SearchConfig)
	// SearchConfiguration returns the active search configuration.
	SearchConfiguration() SearchConfig
	// SetPolarity fixes the saved phase tried first when branching on v.
	SetPolarity(v Var, val bool)
	// BumpActivity boosts the decision activity of v (hybrid steering).
	BumpActivity(v Var, amount float64)
	// Statistics returns the accumulated solver work counters.
	Statistics() Stats
	// SetRecorder installs (or with nil removes) a flight recorder
	// receiving the backend's search events. Observation-only: a
	// recorder must never perturb the search trajectory. Clones share
	// their parent's recorder.
	SetRecorder(r *trace.Recorder)
	// FlightRecorder returns the installed flight recorder, or nil.
	FlightRecorder() *trace.Recorder

	// EnumerateProjected enumerates models projected onto proj with
	// subset blocking (the Figure 3/4 discipline).
	EnumerateProjected(proj []Lit, opts EnumOptions, fn func(trueLits []Lit) bool) (n int, complete bool)

	// Clone returns an independent snapshot of the backend — clause
	// database, variable state, saved phases and activities — optionally
	// carrying the learnt clauses. Sharded enumeration forks one clone
	// per shard so independent searches start from the shared encoding.
	Clone(keepLearnts bool) Backend
}

var _ Backend = (*Solver)(nil)
