package sat

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestArenaAllocAccessors(t *testing.T) {
	var ca clauseArena
	c1 := ca.alloc([]Lit{PosLit(0), NegLit(1), PosLit(2)}, false)
	c2 := ca.alloc([]Lit{NegLit(3), PosLit(4)}, true)
	if ca.size(c1) != 3 || ca.size(c2) != 2 {
		t.Fatalf("sizes: %d %d", ca.size(c1), ca.size(c2))
	}
	if ca.learnt(c1) || !ca.learnt(c2) {
		t.Fatalf("learnt flags: %v %v", ca.learnt(c1), ca.learnt(c2))
	}
	want := []Lit{PosLit(0), NegLit(1), PosLit(2)}
	for i, lw := range ca.lits(c1) {
		if Lit(lw) != want[i] {
			t.Fatalf("lit %d: %v != %v", i, Lit(lw), want[i])
		}
	}
	ca.setAct(c2, 3.5)
	ca.setLBD(c2, 7)
	if ca.act(c2) != 3.5 || ca.lbd(c2) != 7 {
		t.Fatalf("act/lbd round-trip: %v %v", ca.act(c2), ca.lbd(c2))
	}
	// Header writes on c2 must not disturb c1.
	if ca.size(c1) != 3 || ca.act(c1) != 0 || ca.lbd(c1) != 0 {
		t.Fatal("neighbour clause disturbed")
	}
	// Shrinking accounts the freed words as garbage.
	ca.setSize(c1, 2)
	if ca.size(c1) != 2 || ca.wasted != 1 {
		t.Fatalf("after shrink: size=%d wasted=%d", ca.size(c1), ca.wasted)
	}
	ca.free(c2)
	if ca.wasted != 1+clauseHdr+2 {
		t.Fatalf("after free: wasted=%d", ca.wasted)
	}
}

func TestWatchEncoding(t *testing.T) {
	w := mkWatch(CRef(12345), PosLit(7))
	if w.bin() || w.cref() != 12345 || w.blocker != PosLit(7) {
		t.Fatalf("long watch round-trip: %+v", w)
	}
	bw := mkBinWatch(CRef(98765), NegLit(3))
	if !bw.bin() || bw.cref() != 98765 || bw.blocker != NegLit(3) {
		t.Fatalf("binary watch round-trip: %+v", bw)
	}
}

// TestCompactionPreservesDatabase forces a compaction and checks the
// problem database is unchanged (same DIMACS rendering) and the solver
// still answers correctly afterwards.
func TestCompactionPreservesDatabase(t *testing.T) {
	s, vars := randomInstance(150, 0x2545F4914F6CDD1D)
	if st := s.Solve(); st != StatusSat {
		t.Skipf("instance not SAT: %v", st)
	}
	// Pin a few model facts so simplify deletes satisfied clauses.
	for i := 0; i < 40; i++ {
		v := vars[i]
		s.AddClause(MkLit(v, s.Value(v) == LFalse))
	}
	if st := s.Solve(); st != StatusSat {
		t.Fatalf("after pinning model facts: %v", st)
	}
	var before strings.Builder
	if err := s.WriteDIMACS(&before); err != nil {
		t.Fatal(err)
	}
	wastedBefore := s.ca.wasted
	lenBefore := len(s.ca.data)
	s.compact()
	if s.ca.wasted != 0 {
		t.Fatalf("compaction left wasted=%d", s.ca.wasted)
	}
	if len(s.ca.data) != lenBefore-int(wastedBefore) {
		t.Fatalf("compaction reclaimed %d words, want %d", lenBefore-len(s.ca.data), wastedBefore)
	}
	s.rebuildWatches()
	var after strings.Builder
	if err := s.WriteDIMACS(&after); err != nil {
		t.Fatal(err)
	}
	if before.String() != after.String() {
		t.Fatal("compaction changed the clause database")
	}
	if st := s.Solve(); st != StatusSat {
		t.Fatalf("solver broken after compaction: %v", st)
	}
	// And it keeps working under pressure.
	if st := s.Solve(MkLit(vars[50], s.Value(vars[50]) == LTrue)); st == StatusUnknown {
		t.Fatal("budget hit")
	}
}

// TestPropagateZeroAlloc: steady-state unit propagation must not touch
// the heap. The instance is solved once; replaying the saved model under
// one agreeing assumption then drives decide+propagate with zero
// allocations.
func TestPropagateZeroAlloc(t *testing.T) {
	s, vars := randomInstance(400, 0x9E3779B97F4A7C15)
	if st := s.Solve(); st != StatusSat {
		t.Skipf("instance not SAT: %v", st)
	}
	assumps := make([]Lit, 1)
	i := 0
	// Warm up every rotation target so watch lists reach steady state.
	for range vars {
		assumps[0] = MkLit(vars[i%len(vars)], s.Value(vars[i%len(vars)]) == LFalse)
		s.Solve(assumps...)
		i++
	}
	allocs := testing.AllocsPerRun(200, func() {
		v := vars[i%len(vars)]
		i++
		assumps[0] = MkLit(v, s.Value(v) == LFalse)
		if s.Solve(assumps...) != StatusSat {
			t.Fatal("replay conflicted")
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state propagate allocated %v allocs/op, want 0", allocs)
	}
}

// TestComputeLBDZeroAlloc: the level-stamp buffer replaces the per-call
// map — zero allocations per learnt clause.
func TestComputeLBDZeroAlloc(t *testing.T) {
	s := New()
	s.NewVars(64)
	lits := make([]Lit, 20)
	for i := range lits {
		lits[i] = PosLit(Var(i * 3))
		s.level[i*3] = int32(i % 7)
	}
	s.computeLBD(lits) // warm the stamp buffer
	if got := s.computeLBD(lits); got != 7 {
		t.Fatalf("computeLBD = %d, want 7", got)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if s.computeLBD(lits) != 7 {
			t.Fatal("wrong LBD")
		}
	})
	if allocs != 0 {
		t.Fatalf("computeLBD allocated %v allocs/op, want 0", allocs)
	}
}

// TestRemoveSatisfiedNoRealloc: level-0 simplification filters the
// clause list in place — no fresh slices, no per-clause copies (the
// pre-arena version reallocated both lists on every call).
func TestRemoveSatisfiedNoRealloc(t *testing.T) {
	s, _ := randomInstance(200, 0xD1B54A32D192ED03)
	if st := s.Solve(); st != StatusSat {
		t.Skipf("instance not SAT: %v", st)
	}
	s.clauses = s.removeSatisfied(s.clauses) // warm
	allocs := testing.AllocsPerRun(50, func() {
		s.clauses = s.removeSatisfied(s.clauses)
		s.learnts = s.removeSatisfied(s.learnts)
	})
	if allocs != 0 {
		t.Fatalf("removeSatisfied allocated %v allocs/op, want 0", allocs)
	}
}

// TestReduceDBNoRealloc: learnt-database reduction (sort, in-place keep
// filter, compaction, watch rebuild) runs allocation-free once the
// solver-resident scratch buffers are warm.
func TestReduceDBNoRealloc(t *testing.T) {
	s := pigeonhole(9, 8)
	s.MaxConflicts = 3000
	if st := s.Solve(); st == StatusSat {
		t.Fatal("PHP cannot be SAT")
	}
	if s.NumLearnts() < 50 {
		t.Skipf("only %d learnts retained", s.NumLearnts())
	}
	s.reduceDB() // warm scratch + compaction buffers
	allocs := testing.AllocsPerRun(20, func() {
		s.reduceDB()
	})
	if allocs != 0 {
		t.Fatalf("reduceDB allocated %v allocs/op, want 0", allocs)
	}
}

// TestCloneThenDiverge: a forked worker shares no mutable state with its
// origin. The original is driven through heavy post-fork work (solves,
// clause addition, database reduction, compaction); the clone must then
// behave exactly like a pristine twin that never forked.
func TestCloneThenDiverge(t *testing.T) {
	build := func() *Solver {
		s, _ := randomInstance(150, 0x165667B19E3779F9)
		return s
	}
	orig := build()
	twin := build()
	clone := orig.Clone(false).(*Solver)

	// Mutate the original hard: solve (learnts, saved phases), pin facts
	// (level-0 trail + simplify), reduce and compact (arena relocation).
	if st := orig.Solve(); st == StatusUnknown {
		t.Fatal("budget hit")
	}
	if orig.ok {
		var block []Lit
		for v := 0; v < 20; v++ {
			block = append(block, MkLit(Var(v), orig.Value(Var(v)) == LTrue))
		}
		orig.AddClause(block...)
		orig.Solve()
		orig.maxLearnts = 10
		orig.MaxConflicts = 500
		orig.Solve()
		if orig.ok {
			orig.compact()
			orig.rebuildWatches()
		}
	}

	// The clone must now replay exactly the pristine twin's search.
	a, b := clone.Solve(), twin.Solve()
	if a != b {
		t.Fatalf("clone %v vs pristine twin %v", a, b)
	}
	if clone.Stats != twin.Stats {
		t.Fatalf("clone search diverged from pristine twin:\n clone: %+v\n  twin: %+v", clone.Stats, twin.Stats)
	}
	if a == StatusSat {
		for v := 0; v < clone.NumVars(); v++ {
			if clone.Value(Var(v)) != twin.Value(Var(v)) {
				t.Fatalf("model differs at var %d", v)
			}
		}
	}
}

// TestCloneThenDivergeGen2: the gen2 restart state (LBD EMAs, warmup
// counter, vivification cursor) must be deep-copied, so a clone taken
// mid-session searches exactly as its parent would have from the fork
// point. The fork happens AFTER a solve — with the EMAs warm — and the
// clone is then compared against an identically-built twin that never
// forked.
func TestCloneThenDivergeGen2(t *testing.T) {
	build := func() *Solver {
		s, _ := randomInstance(150, 0x165667B19E3779F9)
		s.SetSearchConfig(Gen2Config())
		return s
	}
	orig, twin := build(), build()
	if a, b := orig.Solve(), twin.Solve(); a != b {
		t.Fatalf("identical builds diverged: %v vs %v", a, b)
	}
	clone := orig.Clone(true).(*Solver)
	if clone.cfg != orig.cfg || clone.emaFast != orig.emaFast ||
		clone.emaSlow != orig.emaSlow || clone.lbdConflicts != orig.lbdConflicts ||
		clone.vivifyHead != orig.vivifyHead {
		t.Fatalf("Clone dropped gen2 search state:\n clone: cfg=%+v ema=%v/%v warm=%d viv=%d\n  orig: cfg=%+v ema=%v/%v warm=%d viv=%d",
			clone.cfg, clone.emaFast, clone.emaSlow, clone.lbdConflicts, clone.vivifyHead,
			orig.cfg, orig.emaFast, orig.emaSlow, orig.lbdConflicts, orig.vivifyHead)
	}
	if orig.emaSlow == 0 {
		t.Fatal("EMAs never warmed before the fork; test exercises nothing")
	}

	// Mutate the original hard post-fork.
	var block []Lit
	for v := 0; v < 20; v++ {
		block = append(block, MkLit(Var(v), orig.Value(Var(v)) == LTrue))
	}
	orig.AddClause(block...)
	orig.MaxConflicts = 500
	orig.Solve()

	// Drive the clone and the twin through the identical incremental
	// workload: with the restart state carried over, their searches —
	// and so their work-counter deltas — must match exactly.
	workload := func(s *Solver) []Status {
		var sts []Status
		for round := 0; round < 5; round++ {
			st := s.Solve()
			sts = append(sts, st)
			if st != StatusSat || !s.Okay() {
				break
			}
			var bl []Lit
			for v := 0; v < 15; v++ {
				bl = append(bl, MkLit(Var(v), s.Value(Var(v)) == LTrue))
			}
			if !s.AddClause(bl...) {
				break
			}
		}
		return sts
	}
	twinBase := twin.Stats
	cs, ts := workload(clone), workload(twin)
	if fmt.Sprint(cs) != fmt.Sprint(ts) {
		t.Fatalf("status sequences diverged: clone %v vs twin %v", cs, ts)
	}
	if clone.Stats != twin.Stats.Sub(twinBase) {
		t.Fatalf("clone search diverged from the fork point:\n clone: %+v\n  twin: %+v",
			clone.Stats, twin.Stats.Sub(twinBase))
	}
}

// TestWatchSlabRebuildZeroAlloc: re-laying every watch list after a
// compaction pass must reuse the slab's backing array — strict zero
// allocations once warm.
func TestWatchSlabRebuildZeroAlloc(t *testing.T) {
	s := pigeonhole(9, 8)
	s.MaxConflicts = 3000
	if st := s.Solve(); st == StatusSat {
		t.Fatal("PHP cannot be SAT")
	}
	s.compact()
	s.rebuildWatches() // warm: slab data sized for the full database
	allocs := testing.AllocsPerRun(20, func() {
		s.compact()
		s.rebuildWatches()
	})
	if allocs != 0 {
		t.Fatalf("compact+rebuildWatches allocated %v allocs/op, want 0", allocs)
	}
	// The rebuild must reclaim all relocation waste.
	if s.wslab.wasted != 0 {
		t.Fatalf("rebuild left %d wasted watch words", s.wslab.wasted)
	}
}

// TestCloneConcurrentWorkers: shard-style forks solving concurrently
// must be fully independent — the race detector turns any shared mutable
// state into a failure.
func TestCloneConcurrentWorkers(t *testing.T) {
	s, vars := randomInstance(200, 0xC2B2AE3D27D4EB4F)
	if st := s.Solve(); st == StatusUnknown {
		t.Fatal("budget hit")
	}
	const workers = 8
	results := make([]Status, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		clone := s.Clone(w%2 == 0).(*Solver)
		wg.Add(1)
		go func(w int, c *Solver) {
			defer wg.Done()
			assump := MkLit(vars[w*3], w%2 == 0)
			results[w] = c.Solve(assump)
			// Keep mutating: add clauses, re-solve, reduce.
			c.AddClause(MkLit(vars[w+40], true), MkLit(vars[w+41], false))
			c.maxLearnts = 5
			c.MaxConflicts = 200
			c.Solve()
		}(w, clone)
	}
	wg.Wait()
	for w, st := range results {
		if st == StatusUnknown {
			t.Fatalf("worker %d hit a budget", w)
		}
	}
	// The original is untouched and still agrees with a fresh solve.
	if st := s.Solve(); st != StatusSat && st != StatusUnsat {
		t.Fatalf("original solver damaged: %v", st)
	}
}
