package sat

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseDIMACS reads a CNF formula in DIMACS format into a fresh solver.
// The header line ("p cnf <vars> <clauses>") is honoured for variable
// pre-allocation but clause counts are not enforced strictly.
func ParseDIMACS(r io.Reader) (*Solver, error) {
	s := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var clause []Lit
	declared := 0
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		if strings.HasPrefix(line, "p") {
			fields := strings.Fields(line)
			if len(fields) < 4 || fields[1] != "cnf" {
				return nil, fmt.Errorf("dimacs:%d: malformed problem line %q", lineno, line)
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("dimacs:%d: bad variable count", lineno)
			}
			declared = n
			for s.NumVars() < declared {
				s.NewVar()
			}
			continue
		}
		for _, tok := range strings.Fields(line) {
			v, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("dimacs:%d: bad literal %q", lineno, tok)
			}
			if v == 0 {
				s.AddClause(clause...)
				clause = clause[:0]
				continue
			}
			abs := v
			if abs < 0 {
				abs = -abs
			}
			for s.NumVars() < abs {
				s.NewVar()
			}
			clause = append(clause, MkLit(Var(abs-1), v < 0))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(clause) > 0 {
		s.AddClause(clause...)
	}
	return s, nil
}

// WriteDIMACS renders the solver's problem clauses (and level-0 unit
// facts) in DIMACS format.
func (s *Solver) WriteDIMACS(w io.Writer) error {
	bw := bufio.NewWriter(w)
	units := 0
	for _, l := range s.trail {
		if s.level[l.Var()] == 0 {
			units++
		}
	}
	fmt.Fprintf(bw, "p cnf %d %d\n", s.NumVars(), len(s.clauses)+units)
	for _, l := range s.trail {
		if s.level[l.Var()] == 0 {
			fmt.Fprintf(bw, "%s 0\n", l)
		}
	}
	for _, cr := range s.clauses {
		for _, lw := range s.ca.lits(cr) {
			fmt.Fprintf(bw, "%s ", Lit(lw))
		}
		fmt.Fprintln(bw, "0")
	}
	return bw.Flush()
}
