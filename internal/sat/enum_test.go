package sat

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"testing"
)

// This file pins and verifies the EnumProjected enumeration mode: its
// trajectory is recorded in testdata/enum_golden.json (regenerated
// deliberately via -update-golden, exactly like the prearena and gen2
// recordings), and its enumerated solution sets are proven equal to the
// legacy mode's on corpora where set-equality is order-independent
// (exact blocking always; subset blocking under the cardinality-ladder
// discipline the diagnosis engines use, covered in internal/cnf).

// enumHash canonicalizes one enumeration callback stream.
func enumHashInto(h interface{ Write([]byte) (int, error) }) func([]Lit) bool {
	return func(trueLits []Lit) bool {
		for _, l := range trueLits {
			fmt.Fprintf(h, "%d,", l)
		}
		h.Write([]byte{';'})
		return true
	}
}

// enumGoldenCorpus drives EnumProjected over the enumeration scenarios
// of the main corpus plus exact-blocking and budgeted variants. All
// stats land in the records, so the early-termination, blocked-continue
// and damping counters are pinned alongside the solution hashes.
func enumGoldenCorpus() []goldenCase {
	var cases []goldenCase

	// Subset-blocking enumeration at several sizes.
	for _, cfg := range []struct {
		nv, nc, projN int
		cap           int
		seed          uint64
	}{
		{60, 150, 14, 200, 0x13579BDF2468ACE0},
		{100, 330, 20, 150, 0x5DEECE66D},
		{200, 720, 24, 120, 0x9E6D62D06F6FE41B},
	} {
		cfg := cfg
		name := fmt.Sprintf("enum/subset/nv%d", cfg.nv)
		cases = append(cases, goldenCase{name, func() goldenRecord {
			s := buildRandom(cfg.nv, cfg.nc, 3, cfg.seed, DefaultConfig())
			proj := make([]Lit, cfg.projN)
			for i := range proj {
				proj[i] = PosLit(Var(i))
			}
			h := sha256.New()
			n, complete := s.EnumerateProjected(proj, EnumOptions{
				MaxSolutions: cfg.cap,
				Mode:         EnumProjected,
			}, enumHashInto(h))
			st := StatusSat
			if complete {
				st = StatusUnsat
			}
			rec := snapshot(name, s, st)
			rec.Model = ""
			rec.Models = n
			rec.SolHash = hex.EncodeToString(h.Sum(nil)[:12])
			return rec
		}})
	}

	// Exact-blocking enumeration (distinct projected assignments).
	cases = append(cases, goldenCase{"enum/exact", func() goldenRecord {
		s := buildRandom(80, 280, 3, 0x0B4711, DefaultConfig())
		proj := make([]Lit, 8)
		for i := range proj {
			proj[i] = PosLit(Var(i))
		}
		h := sha256.New()
		n, complete := s.EnumerateProjected(proj, EnumOptions{
			ExactBlocking: true,
			MaxSolutions:  300,
			Mode:          EnumProjected,
		}, enumHashInto(h))
		st := StatusSat
		if complete {
			st = StatusUnsat
		}
		rec := snapshot("enum/exact", s, st)
		rec.Model = ""
		rec.Models = n
		rec.SolHash = hex.EncodeToString(h.Sum(nil)[:12])
		return rec
	}})

	// Guarded round, then retire, then unguarded re-enumeration — the
	// session discipline.
	cases = append(cases, goldenCase{"enum/guarded", func() goldenRecord {
		s := buildRandom(40, 100, 3, 0xFEDCBA9876543210, DefaultConfig())
		guard := PosLit(s.NewVar())
		proj := make([]Lit, 10)
		for i := range proj {
			proj[i] = PosLit(Var(i))
		}
		h := sha256.New()
		n1, _ := s.EnumerateProjected(proj, EnumOptions{
			Assumptions:  []Lit{guard},
			BlockExtra:   []Lit{guard.Neg()},
			MaxSolutions: 50,
			Mode:         EnumProjected,
		}, enumHashInto(h))
		s.AddClause(guard.Neg())
		n2, complete := s.EnumerateProjected(proj, EnumOptions{
			MaxSolutions: 50,
			Mode:         EnumProjected,
		}, enumHashInto(h))
		st := StatusSat
		if complete {
			st = StatusUnsat
		}
		rec := snapshot("enum/guarded", s, st)
		rec.Model = ""
		rec.Models = n1*1000 + n2
		rec.SolHash = hex.EncodeToString(h.Sum(nil)[:12])
		return rec
	}})

	// Conflict-budgeted enumeration: must stop at the identical point.
	cases = append(cases, goldenCase{"enum/budget", func() goldenRecord {
		s := buildRandom(120, 552, 3, 0xA24BAED4963EE407, DefaultConfig())
		s.MaxConflicts = 40
		proj := make([]Lit, 16)
		for i := range proj {
			proj[i] = PosLit(Var(i))
		}
		h := sha256.New()
		n, complete := s.EnumerateProjected(proj, EnumOptions{
			MaxSolutions: 100,
			Mode:         EnumProjected,
		}, enumHashInto(h))
		st := StatusSat
		if complete {
			st = StatusUnsat
		}
		rec := snapshot("enum/budget", s, st)
		rec.Model = ""
		rec.Models = n
		rec.SolHash = hex.EncodeToString(h.Sum(nil)[:12])
		return rec
	}})

	return cases
}

const enumGoldenPath = "testdata/enum_golden.json"

// TestDifferentialGoldenEnum pins the EnumProjected trajectory the same
// way the prearena/gen2 recordings pin the search configurations.
func TestDifferentialGoldenEnum(t *testing.T) {
	runGoldenCases(t, enumGoldenPath, enumGoldenCorpus())
}

// collectExact enumerates with exact blocking and returns the sorted
// projection strings plus the completion flag.
func collectExact(s *Solver, proj []Lit, mode EnumMode) (sols []string, complete bool) {
	_, complete = s.EnumerateProjected(proj, EnumOptions{
		ExactBlocking: true,
		Mode:          mode,
	}, func(trueLits []Lit) bool {
		var sb strings.Builder
		for _, l := range proj {
			if s.ValueLit(l) == LTrue {
				sb.WriteByte('1')
			} else {
				sb.WriteByte('0')
			}
		}
		sols = append(sols, sb.String())
		return true
	})
	sort.Strings(sols)
	return sols, complete
}

// TestEnumModeEquivalenceExact: exact-blocking enumeration visits every
// distinct projected assignment exactly once, so the enumerated set is
// order-independent — both modes must produce the identical set.
func TestEnumModeEquivalenceExact(t *testing.T) {
	for _, seed := range []uint64{0x9E3779B97F4A7C15, 0x2545F4914F6CDD1D, 0xD1B54A32D192ED03, 0xBADC0FFEE} {
		legacy := buildRandom(60, 200, 3, seed, DefaultConfig())
		projected := buildRandom(60, 200, 3, seed, DefaultConfig())
		proj := make([]Lit, 9)
		for i := range proj {
			proj[i] = PosLit(Var(i))
		}
		wantSols, wantDone := collectExact(legacy, proj, EnumLegacy)
		gotSols, gotDone := collectExact(projected, proj, EnumProjected)
		if wantDone != gotDone {
			t.Fatalf("seed %x: complete legacy=%v projected=%v", seed, wantDone, gotDone)
		}
		if len(wantSols) != len(gotSols) {
			t.Fatalf("seed %x: %d solutions legacy vs %d projected", seed, len(wantSols), len(gotSols))
		}
		for i := range wantSols {
			if wantSols[i] != gotSols[i] {
				t.Fatalf("seed %x: solution %d differs: %s vs %s", seed, i, wantSols[i], gotSols[i])
			}
		}
		if projected.Stats.ContinueBackjumps == 0 && len(gotSols) > 1 {
			t.Fatalf("seed %x: projected mode never engaged blocked-continue", seed)
		}
	}
}

// TestEnumProjectedCounters: an instance with a large unconstrained
// free suffix must terminate each model early — the free variables are
// never decided, the skipped work is counted, and every model resumes
// via blocked-continue instead of a fresh solve.
func TestEnumProjectedCounters(t *testing.T) {
	s := New()
	s.NewVars(64) // vars 0..7 projected, 8..63 free and unconstrained
	s.AddClause(PosLit(0), PosLit(1), PosLit(2))
	proj := make([]Lit, 8)
	for i := range proj {
		proj[i] = PosLit(Var(i))
	}
	n, complete := s.EnumerateProjected(proj, EnumOptions{Mode: EnumProjected}, nil)
	if !complete || n == 0 {
		t.Fatalf("enumeration incomplete: n=%d complete=%v", n, complete)
	}
	if s.Stats.EarlyTerms != int64(n) {
		t.Errorf("EarlyTerms = %d, want %d (every model should early-terminate)", s.Stats.EarlyTerms, n)
	}
	if s.Stats.ContinueBackjumps != int64(n) {
		t.Errorf("ContinueBackjumps = %d, want %d (every model should continue in place)", s.Stats.ContinueBackjumps, n)
	}
	if s.Stats.SkippedDecisions < int64(n)*50 {
		t.Errorf("SkippedDecisions = %d, want >= %d (56 free vars per model)", s.Stats.SkippedDecisions, int64(n)*50)
	}
	// The solver must remain usable for ordinary solving afterwards.
	if st := s.Solve(); st != StatusUnsat {
		t.Errorf("post-enumeration Solve = %v, want UNSAT (projection space exhausted)", st)
	}
}

// TestEnumerateCtxPostModel: cancellation observed between model
// emission and blocking must stop the enumeration without growing the
// clause database past the cancellation point — in either mode.
func TestEnumerateCtxPostModel(t *testing.T) {
	for _, mode := range []EnumMode{EnumLegacy, EnumProjected} {
		s := buildRandom(40, 120, 3, 0x13579BDF2468ACE0, DefaultConfig())
		proj := make([]Lit, 8)
		for i := range proj {
			proj[i] = PosLit(Var(i))
		}
		ctx, cancel := context.WithCancel(context.Background())
		before := -1
		n, complete := s.EnumerateProjected(proj, EnumOptions{Ctx: ctx, Mode: mode}, func([]Lit) bool {
			before = s.NumClauses()
			cancel() // consumer observes shutdown mid-model but does not abort
			return true
		})
		if n != 1 || complete {
			t.Fatalf("mode %v: n=%d complete=%v, want n=1 incomplete", mode, n, complete)
		}
		if got := s.NumClauses(); got != before {
			t.Errorf("mode %v: clause DB grew after cancellation: %d -> %d", mode, before, got)
		}
	}
}

// TestExactBlockingBlockExtra: exact blocking combined with a guarded
// round must enumerate every distinct projected assignment exactly
// once, and retiring the guard must retract all of the round's blocking
// clauses — the same projections reappear in a fresh round.
func TestExactBlockingBlockExtra(t *testing.T) {
	for _, mode := range []EnumMode{EnumLegacy, EnumProjected} {
		s := New()
		s.NewVars(6)
		s.AddClause(PosLit(3), PosLit(4)) // keep the instance non-trivial
		proj := []Lit{PosLit(0), PosLit(1), PosLit(2)}
		guard := PosLit(s.NewVar())
		round := func(g Lit) map[string]int {
			seen := map[string]int{}
			n, complete := s.EnumerateProjected(proj, EnumOptions{
				Assumptions:   []Lit{g},
				BlockExtra:    []Lit{g.Neg()},
				ExactBlocking: true,
				Mode:          mode,
			}, func([]Lit) bool {
				var sb strings.Builder
				for _, l := range proj {
					if s.ValueLit(l) == LTrue {
						sb.WriteByte('1')
					} else {
						sb.WriteByte('0')
					}
				}
				seen[sb.String()]++
				return true
			})
			if !complete {
				t.Fatalf("mode %v: guarded exact round incomplete", mode)
			}
			if n != 8 {
				t.Fatalf("mode %v: enumerated %d projections, want all 8", mode, n)
			}
			return seen
		}
		first := round(guard)
		for p, c := range first {
			if c != 1 {
				t.Fatalf("mode %v: projection %s enumerated %d times", mode, p, c)
			}
		}
		s.AddClause(guard.Neg()) // retire: all 8 blocking clauses retract
		guard2 := PosLit(s.NewVar())
		second := round(guard2)
		if len(second) != 8 {
			t.Fatalf("mode %v: retired round still blocks: %d projections in round 2", mode, len(second))
		}
	}
}

// TestEnumerateEmptyProjection: a model whose projected true-set is
// empty yields an empty subset-blocking clause, which empties the
// solution space — the edge where enumeration must report complete with
// the solver left unsatisfiable. Both modes decide with the saved
// (initially negative) phase, so the very first model already has the
// empty true-set and the enumeration stops after one model.
func TestEnumerateEmptyProjection(t *testing.T) {
	for _, mode := range []EnumMode{EnumLegacy, EnumProjected} {
		s := New()
		s.NewVars(3)
		s.AddClause(PosLit(1), PosLit(2))
		n, complete := s.EnumerateProjected([]Lit{PosLit(0)}, EnumOptions{Mode: mode}, nil)
		if n != 1 || !complete {
			t.Fatalf("mode %v: n=%d complete=%v, want n=1 complete", mode, n, complete)
		}
		if s.Okay() {
			t.Errorf("mode %v: solver still ok after blocking the empty projection", mode)
		}
		if n2, c2 := s.EnumerateProjected([]Lit{PosLit(0)}, EnumOptions{Mode: mode}, nil); n2 != 0 || !c2 {
			t.Errorf("mode %v: re-enumeration after empty block: n=%d complete=%v, want 0,true", mode, n2, c2)
		}
	}
}

// TestEnumerateSteadyStateZeroAlloc: with the solver-resident blocking
// and projection buffers, a steady-state guarded enumeration round
// allocates nothing — the idiom of the propagate/analyze zero-alloc
// tests applied to the whole enumeration loop. Guards are pre-created
// and warm-up rounds grow the arena, watch slab, occurrence lists and
// buffers to capacity first.
func TestEnumerateSteadyStateZeroAlloc(t *testing.T) {
	for _, mode := range []EnumMode{EnumLegacy, EnumProjected} {
		s := buildRandom(40, 100, 3, 0xFEDCBA9876543210, DefaultConfig())
		proj := make([]Lit, 10)
		for i := range proj {
			proj[i] = PosLit(Var(i))
		}
		guards := make([]Lit, 12)
		for i := range guards {
			guards[i] = PosLit(s.NewVar())
		}
		next := 0
		assumps := make([]Lit, 1)
		blockExtra := make([]Lit, 1)
		keep := func([]Lit) bool { return true }
		round := func() {
			g := guards[next]
			next++
			assumps[0], blockExtra[0] = g, g.Neg()
			opts := EnumOptions{
				Assumptions:  assumps,
				BlockExtra:   blockExtra,
				MaxSolutions: 30,
				Mode:         mode,
			}
			s.EnumerateProjected(proj, opts, keep)
			s.AddClause(g.Neg()) // retire the round
		}
		for i := 0; i < 8; i++ { // warm every buffer to steady state
			round()
		}
		allocs := testing.AllocsPerRun(1, round)
		if allocs != 0 {
			t.Errorf("mode %v: steady-state enumeration allocated %v allocs/round, want 0", mode, allocs)
		}
	}
}
