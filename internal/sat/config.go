package sat

import "fmt"

// SearchConfig selects one of the solver's search configurations. The
// zero value (and the "default" name) is the MiniSat-style search every
// golden recording pins: Luby restarts, non-chronological backjumping,
// no vivification — byte-identical to the pre-arena solver on the
// differential corpus. The "gen2" configuration layers Glucose-style
// heuristics on the same arena storage; it is a deliberate search
// change with its own golden file (testdata/gen2_golden.json), and its
// solution sets are provably identical to the default's — only the
// trajectory differs — which is what makes portfolio racing sound.
//
// The configuration travels through Backend.SetSearchConfig and is
// deep-copied by Clone (together with the live restart-EMA state), so
// shard workers and portfolio racers search reproducibly from their
// fork point.
type SearchConfig struct {
	// Name identifies the configuration ("" reads as "default"); the
	// service reports portfolio winners and per-session metrics by it.
	Name string

	// LBDRestarts replaces the pure Luby policy with Glucose-style
	// dynamic restarts: an exponential moving average of recent learnt-
	// clause LBDs is compared against a long-horizon average, and the
	// search restarts as soon as recent conflicts look markedly worse
	// than the session's norm. The Luby limit remains as a fallback cap,
	// so a search that never trips the EMA trigger still restarts.
	LBDRestarts bool

	// Vivify enables clause vivification on the level-0 simplification
	// pass: problem clauses are probed literal by literal under
	// assumption propagation and shrunk in place when a prefix already
	// implies them. Runs in bounded batches behind a resumption cursor.
	Vivify bool

	// ChronoBT, when positive, enables chronological backtracking for
	// shallow conflicts: a conflict whose backjump would unwind at least
	// ChronoBT levels backtracks a single level instead (the learnt
	// clause is still asserting there), preserving most of the trail.
	// 0 disables.
	ChronoBT int
}

// DefaultConfig is the golden-pinned MiniSat-style search.
func DefaultConfig() SearchConfig { return SearchConfig{Name: "default"} }

// Gen2Config is the second-generation search: LBD-driven restarts,
// bounded clause vivification, and chronological backtracking for
// conflicts that would otherwise unwind 100+ levels.
func Gen2Config() SearchConfig {
	return SearchConfig{Name: "gen2", LBDRestarts: true, Vivify: true, ChronoBT: 100}
}

// ConfigByName resolves a configuration name ("" and "default" are the
// golden-pinned search, "gen2" the second generation).
func ConfigByName(name string) (SearchConfig, error) {
	switch name {
	case "", "default":
		return DefaultConfig(), nil
	case "gen2":
		return Gen2Config(), nil
	default:
		return SearchConfig{}, fmt.Errorf("sat: unknown search configuration %q (default, gen2)", name)
	}
}

// PortfolioConfigs lists the configurations a portfolio race runs, in
// reported order.
func PortfolioConfigs() []SearchConfig {
	return []SearchConfig{DefaultConfig(), Gen2Config()}
}

// Tuning constants of the gen2 heuristics.
const (
	// Fast/slow EMA smoothing of learnt-clause LBDs (Glucose lineage:
	// the fast average tracks the recent few dozen conflicts, the slow
	// one the whole search).
	lbdEmaFastAlpha = 1.0 / 32
	lbdEmaSlowAlpha = 1.0 / 4096
	// Restart when the recent average exceeds the global one by this
	// margin...
	lbdRestartMargin = 1.25
	// ...but only after the search has run this many conflicts since
	// the last restart, and the EMAs have globally warmed up.
	lbdRestartMinInterval = 50
	lbdEmaWarmup          = 100

	// vivifyBatch bounds how many problem clauses one simplify pass
	// probes; the cursor resumes where the last batch stopped.
	vivifyBatch = 500
)

// SetSearchConfig selects the search configuration for subsequent
// Solve calls. Must be called between Solve calls (decision level 0).
// Switching configurations never changes the solution space — only the
// search trajectory — so a long-lived session can serve requests with
// different configurations back to back.
func (s *Solver) SetSearchConfig(cfg SearchConfig) {
	if s.decisionLevel() != 0 {
		panic("sat: SetSearchConfig above decision level 0")
	}
	s.cfg = cfg
}

// SearchConfiguration returns the active search configuration.
func (s *Solver) SearchConfiguration() SearchConfig { return s.cfg }
