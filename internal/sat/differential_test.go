package sat

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The arena rewrite of the clause store must be behaviourally invisible:
// not just "same verdicts" but the same search — identical decisions,
// conflicts, propagations, models and failed-assumption cores on every
// instance. This file pins that down as a differential test against
// behaviour recorded from the pre-arena pointer-based solver
// (testdata/prearena_golden.json, written before the arena landed and
// never regenerated since). If a storage change alters the search
// trajectory, this test fails before any Table 2 artifact can drift.
//
// The golden file is refreshed only deliberately, via
//
//	go test ./internal/sat -run TestDifferentialGolden -update-golden
//
// which should only ever be done when the search behaviour is *meant*
// to change (a new heuristic), never for storage refactors.

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden recordings from the current solver")

type goldenRecord struct {
	Name         string `json:"name"`
	Status       string `json:"status"`
	Model        string `json:"model,omitempty"`    // 0/1/- per variable after the final solve
	Conflict     []int  `json:"conflict,omitempty"` // ConflictSet literal encodings
	Decisions    int64  `json:"decisions"`
	Conflicts    int64  `json:"conflicts"`
	Propagations int64  `json:"propagations"`
	Learnt       int64  `json:"learnt"`
	LearntLits   int64  `json:"learntLits"`
	Restarts     int64  `json:"restarts"`
	Minimized    int64  `json:"minimized"`
	Simplifies   int64  `json:"simplifies"`
	Reduces      int64  `json:"reduces"`
	Models       int    `json:"models,omitempty"`  // enumeration cases
	SolHash      string `json:"solhash,omitempty"` // hash over the enumerated projections
	NumClauses   int    `json:"numClauses"`
	NumLearnts   int    `json:"numLearnts"`
	// Gen2 counters (always zero under the default configuration, so the
	// pre-arena recording stays byte-identical).
	LBDRestarts int64 `json:"lbdRestarts,omitempty"`
	Vivified    int64 `json:"vivifiedLits,omitempty"`
	ChronoBTs   int64 `json:"chronoBacktracks,omitempty"`
	// Projected-enumeration counters (always zero under the legacy
	// enumeration mode, so the older recordings stay byte-identical).
	EarlyTerms int64 `json:"earlyTerms,omitempty"`
	ContinueBJ int64 `json:"continueBackjumps,omitempty"`
	Skipped    int64 `json:"skippedDecisions,omitempty"`
}

// goldenCase is one deterministic workload: build the instance, drive
// the solver, and summarize everything observable about the run.
type goldenCase struct {
	name string
	run  func() goldenRecord
}

// xorshift is the deterministic generator shared by every corpus case.
type xorshift uint64

func (x *xorshift) next(mod int) int {
	*x ^= *x << 13
	*x ^= *x >> 7
	*x ^= *x << 17
	return int(uint64(*x) % uint64(mod))
}

func snapshot(name string, s *Solver, st Status) goldenRecord {
	rec := goldenRecord{
		Name:         name,
		Status:       st.String(),
		Decisions:    s.Stats.Decisions,
		Conflicts:    s.Stats.Conflicts,
		Propagations: s.Stats.Propagations,
		Learnt:       s.Stats.Learnt,
		LearntLits:   s.Stats.LearntLits,
		Restarts:     s.Stats.Restarts,
		Minimized:    s.Stats.MinimizedLit,
		Simplifies:   s.Stats.Simplifies,
		Reduces:      s.Stats.Reduces,
		NumClauses:   s.NumClauses(),
		NumLearnts:   s.NumLearnts(),
		LBDRestarts:  s.Stats.LBDRestarts,
		Vivified:     s.Stats.VivifiedLits,
		ChronoBTs:    s.Stats.ChronoBacktracks,
		EarlyTerms:   s.Stats.EarlyTerms,
		ContinueBJ:   s.Stats.ContinueBackjumps,
		Skipped:      s.Stats.SkippedDecisions,
	}
	if st == StatusSat {
		var sb strings.Builder
		for v := 0; v < s.NumVars(); v++ {
			switch s.Value(Var(v)) {
			case LTrue:
				sb.WriteByte('1')
			case LFalse:
				sb.WriteByte('0')
			default:
				sb.WriteByte('-')
			}
		}
		rec.Model = sb.String()
	}
	if st == StatusUnsat {
		for _, l := range s.ConflictSet() {
			rec.Conflict = append(rec.Conflict, int(l))
		}
	}
	return rec
}

func buildRandom(nVars, nClauses, width int, seed uint64, cfg SearchConfig) *Solver {
	s := New()
	s.SetSearchConfig(cfg)
	s.NewVars(nVars)
	rng := xorshift(seed)
	for i := 0; i < nClauses; i++ {
		lits := make([]Lit, width)
		for j := range lits {
			lits[j] = MkLit(Var(rng.next(nVars)), rng.next(2) == 1)
		}
		if !s.AddClause(lits...) {
			break
		}
	}
	return s
}

func goldenCorpus(sc SearchConfig) []goldenCase {
	var cases []goldenCase

	// Random k-SAT at several densities: bare solves.
	for _, cfg := range []struct {
		nv, width int
		density   float64
		seed      uint64
	}{
		{20, 3, 3.0, 0x9E3779B97F4A7C15},
		{60, 3, 3.6, 0x2545F4914F6CDD1D},
		{120, 3, 3.6, 0xD1B54A32D192ED03},
		{120, 3, 4.6, 0xA24BAED4963EE407}, // above phase transition, likely UNSAT
		{200, 3, 3.6, 0x9E6D62D06F6FE41B},
		{200, 4, 8.0, 0xC2B2AE3D27D4EB4F},
		{350, 3, 3.4, 0x165667B19E3779F9},
	} {
		cfg := cfg
		name := fmt.Sprintf("rand/nv%d/w%d/d%.1f", cfg.nv, cfg.width, cfg.density)
		cases = append(cases, goldenCase{name, func() goldenRecord {
			s := buildRandom(cfg.nv, int(float64(cfg.nv)*cfg.density), cfg.width, cfg.seed, sc)
			return snapshot(name, s, s.Solve())
		}})
	}

	// Random instances solved under assumptions (conflict-set path).
	for _, seed := range []uint64{0x0B4711, 0x1CAFE5, 0x2BEEF9} {
		seed := seed
		name := fmt.Sprintf("assume/%x", seed)
		cases = append(cases, goldenCase{name, func() goldenRecord {
			s := buildRandom(80, 280, 3, seed, sc)
			rng := xorshift(seed ^ 0xFFFF)
			var st Status
			for round := 0; round < 6; round++ {
				assumps := []Lit{
					MkLit(Var(rng.next(80)), rng.next(2) == 1),
					MkLit(Var(rng.next(80)), rng.next(2) == 1),
					MkLit(Var(rng.next(80)), rng.next(2) == 1),
				}
				st = s.Solve(assumps...)
			}
			return snapshot(name, s, st)
		}})
	}

	// Pigeonhole: systematically UNSAT with deep conflict analysis.
	for n := 5; n <= 7; n++ {
		n := n
		name := fmt.Sprintf("php/%d", n)
		cases = append(cases, goldenCase{name, func() goldenRecord {
			s := pigeonhole(n+1, n)
			s.SetSearchConfig(sc)
			return snapshot(name, s, s.Solve())
		}})
	}

	// Incremental clause addition between solves (the session usage).
	cases = append(cases, goldenCase{"incremental", func() goldenRecord {
		s := buildRandom(100, 330, 3, 0x5DEECE66D, sc)
		rng := xorshift(0x5DEECE66D ^ 0xABCDEF)
		var st Status
		for round := 0; round < 8; round++ {
			st = s.Solve()
			if st != StatusSat {
				break
			}
			// Block the projection of the first 12 variables.
			var block []Lit
			for v := 0; v < 12; v++ {
				if s.Value(Var(v)) == LTrue {
					block = append(block, NegLit(Var(v)))
				}
			}
			if len(block) == 0 {
				block = append(block, MkLit(Var(rng.next(100)), true))
			}
			if !s.AddClause(block...) {
				break
			}
		}
		return snapshot("incremental", s, st)
	}})

	// Conflict-budgeted solve: must stop at the identical point.
	cases = append(cases, goldenCase{"budget", func() goldenRecord {
		s := pigeonhole(9, 8)
		s.SetSearchConfig(sc)
		s.MaxConflicts = 64
		st := s.Solve()
		return snapshot("budget", s, st)
	}})

	// Learnt-database reduction: an artificially low learnt cap forces
	// reduceDB (sort, keep set, watch rebuild) many times mid-search, so
	// the golden run pins the exact reduction behaviour the big Table 2
	// instances rely on.
	cases = append(cases, goldenCase{"reducedb", func() goldenRecord {
		s := buildRandom(150, 540, 3, 0x7F4A7C159E3779B9, sc)
		s.maxLearnts = 25
		return snapshot("reducedb", s, s.Solve())
	}})
	cases = append(cases, goldenCase{"reducedb/unsat", func() goldenRecord {
		s := pigeonhole(8, 7)
		s.SetSearchConfig(sc)
		s.maxLearnts = 20
		return snapshot("reducedb/unsat", s, s.Solve())
	}})

	// Binary-heavy instances: random 2-SAT plus mixed widths, driving the
	// binary watch path through propagation, conflicts, learning and
	// level-0 simplification.
	for _, cfg := range []struct {
		nv      int
		density float64
		seed    uint64
	}{
		{80, 1.8, 0x41C64E6D12345}, {140, 2.2, 0x5851F42D4C957}, {200, 1.9, 0x14057B7EF767814F},
	} {
		cfg := cfg
		name := fmt.Sprintf("binary/nv%d/d%.1f", cfg.nv, cfg.density)
		cases = append(cases, goldenCase{name, func() goldenRecord {
			s := buildRandom(cfg.nv, int(float64(cfg.nv)*cfg.density), 2, cfg.seed, sc)
			var st Status
			if s.Okay() {
				st = s.Solve()
			} else {
				st = StatusUnsat
			}
			return snapshot(name, s, st)
		}})
	}
	cases = append(cases, goldenCase{"binary/mixed", func() goldenRecord {
		s := New()
		s.SetSearchConfig(sc)
		s.NewVars(120)
		rng := xorshift(0x6C62272E07BB0142)
		ok := true
		for i := 0; i < 420 && ok; i++ {
			w := 2 + rng.next(3) // widths 2..4, binary-rich
			lits := make([]Lit, w)
			for j := range lits {
				lits[j] = MkLit(Var(rng.next(120)), rng.next(2) == 1)
			}
			ok = s.AddClause(lits...)
		}
		var st Status
		if ok {
			st = s.Solve()
			if st == StatusSat {
				// Force level-0 facts and re-solve: simplify must remove the
				// same satisfied clauses and shrink the same long clauses.
				s.AddClause(MkLit(Var(3), s.Value(Var(3)) == LTrue))
				st = s.Solve()
			}
		} else {
			st = StatusUnsat
		}
		return snapshot("binary/mixed", s, st)
	}})

	// Subset-blocking enumeration (the COV/BSAT discipline).
	cases = append(cases, goldenCase{"enumerate/subset", func() goldenRecord {
		s := buildRandom(60, 150, 3, 0x13579BDF2468ACE0, sc)
		proj := make([]Lit, 14)
		for i := range proj {
			proj[i] = PosLit(Var(i))
		}
		h := sha256.New()
		n, complete := s.EnumerateProjected(proj, EnumOptions{MaxSolutions: 200}, func(trueLits []Lit) bool {
			for _, l := range trueLits {
				fmt.Fprintf(h, "%d,", l)
			}
			h.Write([]byte{';'})
			return true
		})
		st := StatusSat
		if complete {
			st = StatusUnsat
		}
		rec := snapshot("enumerate/subset", s, st)
		rec.Model = "" // last model is incidental here; the hash pins all of them
		rec.Models = n
		rec.SolHash = hex.EncodeToString(h.Sum(nil)[:12])
		return rec
	}})

	// Exact-blocking enumeration with guarded blocking literals.
	cases = append(cases, goldenCase{"enumerate/guarded", func() goldenRecord {
		s := buildRandom(40, 100, 3, 0xFEDCBA9876543210, sc)
		guard := PosLit(s.NewVar())
		proj := make([]Lit, 10)
		for i := range proj {
			proj[i] = PosLit(Var(i))
		}
		h := sha256.New()
		n1, _ := s.EnumerateProjected(proj, EnumOptions{
			Assumptions:  []Lit{guard},
			BlockExtra:   []Lit{guard.Neg()},
			MaxSolutions: 50,
		}, func(trueLits []Lit) bool {
			for _, l := range trueLits {
				fmt.Fprintf(h, "%d,", l)
			}
			h.Write([]byte{';'})
			return true
		})
		s.AddClause(guard.Neg()) // retire the round
		n2, complete := s.EnumerateProjected(proj, EnumOptions{MaxSolutions: 50}, func(trueLits []Lit) bool {
			for _, l := range trueLits {
				fmt.Fprintf(h, "%d,", l)
			}
			h.Write([]byte{'|'})
			return true
		})
		st := StatusSat
		if complete {
			st = StatusUnsat
		}
		rec := snapshot("enumerate/guarded", s, st)
		rec.Model = ""
		rec.Models = n1*1000 + n2
		rec.SolHash = hex.EncodeToString(h.Sum(nil)[:12])
		return rec
	}})

	// DIMACS corpus: parse + solve each testdata/dimacs file.
	files, _ := filepath.Glob(filepath.Join("testdata", "dimacs", "*.cnf"))
	for _, f := range files {
		f := f
		name := "dimacs/" + filepath.Base(f)
		cases = append(cases, goldenCase{name, func() goldenRecord {
			data, err := os.ReadFile(f)
			if err != nil {
				panic(err)
			}
			s, err := ParseDIMACS(strings.NewReader(string(data)))
			if err != nil {
				panic(err)
			}
			s.SetSearchConfig(sc)
			return snapshot(name, s, s.Solve())
		}})
	}

	return cases
}

const goldenPath = "testdata/prearena_golden.json"

// TestDifferentialGolden replays the corpus under the default search
// configuration and compares every observable of every run against the
// recorded pre-arena behaviour.
func TestDifferentialGolden(t *testing.T) {
	runGoldenSuite(t, goldenPath, DefaultConfig())
}

// runGoldenSuite replays the corpus under one search configuration
// against one golden recording (shared by the pre-arena/default and the
// gen2 suites; -update-golden rewrites whichever recordings run).
func runGoldenSuite(t *testing.T, goldenPath string, sc SearchConfig) {
	runGoldenCases(t, goldenPath, goldenCorpus(sc))
}

// runGoldenCases replays an explicit case list against one golden
// recording (the projected-enumeration suite supplies its own corpus).
func runGoldenCases(t *testing.T, goldenPath string, cases []goldenCase) {
	var got []goldenRecord
	for _, c := range cases {
		got = append(got, c.run())
	}
	if *updateGolden {
		buf, err := json.MarshalIndent(got, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d records to %s", len(got), goldenPath)
		return
	}
	buf, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden once): %v", err)
	}
	var want []goldenRecord
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("corpus size changed: golden has %d records, run produced %d", len(want), len(got))
	}
	for i, w := range want {
		g := got[i]
		if w.Name != g.Name {
			t.Fatalf("case %d: name %q vs golden %q", i, g.Name, w.Name)
		}
		if fmt.Sprintf("%+v", w) != fmt.Sprintf("%+v", g) {
			t.Errorf("%s: behaviour diverged from recording %s\n golden: %+v\n    got: %+v", w.Name, goldenPath, w, g)
		}
	}
}
