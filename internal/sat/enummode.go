package sat

import "fmt"

// EnumMode selects the enumeration strategy of EnumerateProjected.
//
// The legacy mode re-solves from scratch after every blocking clause and
// only declares a model once every variable is assigned. The projected
// mode is structurally different — it terminates each model early and
// resumes the search in place after blocking — so, like the gen2 search
// configuration, it is gated behind an explicit opt-in and pinned by its
// own differential golden (testdata/enum_golden.json); the default
// goldens never see it.
type EnumMode int

const (
	// EnumLegacy is the historical enumeration loop: one full Solve per
	// model, blocking clause added at level 0, search restarted from
	// scratch. This is the mode the default differential goldens pin.
	EnumLegacy EnumMode = iota
	// EnumProjected is the projection-aware loop: search declares a
	// model as soon as every projected variable is assigned and every
	// problem clause is satisfied (early model termination), the
	// blocking clause is attached in place with a backjump to the level
	// where it becomes unit (blocked-continue), and free variables
	// unwound by that backjump are withheld from the VSIDS heap
	// (order damping). The enumerated solution set is identical for the
	// diagnosis ladder discipline; only the trajectory differs.
	EnumProjected
)

// String names the mode using its wire spelling.
func (m EnumMode) String() string {
	if m == EnumProjected {
		return "projected"
	}
	return "legacy"
}

// EnumModeByName resolves a wire name to an enumeration mode. The empty
// string selects the legacy mode, so absent request fields keep today's
// behaviour. Unknown names are rejected here once, which lets the
// service turn them into a 400 before any session work happens.
func EnumModeByName(name string) (EnumMode, error) {
	switch name {
	case "", "legacy":
		return EnumLegacy, nil
	case "projected":
		return EnumProjected, nil
	default:
		return EnumLegacy, fmt.Errorf("sat: unknown enumeration mode %q (valid: legacy, projected)", name)
	}
}

// enumChronoBT is the chronological-backtracking distance the projected
// mode enforces while the tracker is active (tighter of this and the
// search configuration's own ChronoBT), and enumFatLevel is the average
// trail-literals-per-level density above which it applies. See the
// conflict branch of search for rationale.
const (
	enumChronoBT = 32
	enumFatLevel = 32
)

// enumTracker is the solver-resident state behind EnumProjected. A
// model is certified as soon as every projected variable is assigned
// (projUnassigned, maintained incrementally by the uncheckedEnqueue and
// cancelUntil hooks, hits zero) and every problem clause has a true
// literal — regardless of how many free variables remain unassigned
// (any completion satisfies the problem clauses, and every learnt is
// implied by them).
//
// Clause satisfaction is checked lazily by enumScan rather than
// maintained incrementally: an earlier design stamped each clause with
// the trail position of its first satisfying literal via per-literal
// occurrence lists, and profiling showed the stamp upkeep — one
// occurrence-list walk with a random arena load per entry on every
// enqueue and every unwind — dominating the whole enumeration (over
// 60% of CPU). The lazy scan touches clauses sequentially, only at
// decide points after the projection is complete, and costs the hot
// propagate/backtrack loops nothing. It also needs no invalidation
// protocol when simplify/reduceDB shrink, free, or relocate clauses:
// the scan reads the live clause list and assignment directly.
type enumTracker struct {
	active bool

	isProj         []bool // per-var projection membership
	projUnassigned int

	// Order damping: dampSkip makes cancelUntil withhold non-projection
	// variables from the VSIDS heap (set only around blocked-continue
	// backjumps); damped counts the withheld variables so the decide
	// loop can refill the heap if it runs dry before a model is
	// certified.
	dampSkip bool
	damped   int

	// projOrder is a secondary VSIDS heap holding only projection
	// variables. While projUnassigned > 0 the decide loop drains it
	// before the main heap, so every model is certified over a short
	// projected prefix and the free suffix is never decided at all —
	// early termination then skips it wholesale, and the blocking
	// clause's literals land at shallow levels the blocked-continue
	// backjump can retain. Variables may sit in both heaps at once;
	// the pop side skips assigned variables, so stale entries are
	// harmless (same discipline as the main heap).
	projOrder varHeap

	// scan is the circular cursor of enumScan over s.clauses. It marks
	// where the last scan stopped, so successive completion decisions
	// resume at the clause they were steering toward instead of
	// re-walking the satisfied prefix. Backtracking can unsatisfy
	// clauses behind the cursor; correctness is unaffected because a
	// certification always requires a full satisfied circle.
	scan int
}

// enumActivate arms the tracker for an enumeration over proj. Must be
// called at decision level 0.
func (s *Solver) enumActivate(proj []Lit) {
	t := &s.enum
	if len(t.isProj) < len(s.assigns) {
		t.isProj = make([]bool, len(s.assigns))
	}
	for i := range t.isProj {
		t.isProj[i] = false
	}
	for _, l := range proj {
		t.isProj[l.Var()] = true
	}
	t.active = true
	t.dampSkip = false
	t.damped = 0
	t.scan = 0
	t.projOrder.clear()
	t.projUnassigned = 0
	for v, p := range t.isProj {
		if p && s.assigns[v] == LUndef {
			t.projUnassigned++
			if s.decision[v] {
				t.projOrder.insert(Var(v), s.activity)
			}
		}
	}
}

// enumDeactivate disarms the tracker and returns every unassigned
// decision variable to the heap (damped variables are no longer on the
// trail, so cancelUntil alone would never reinsert them).
func (s *Solver) enumDeactivate() {
	t := &s.enum
	if !t.active {
		return
	}
	t.active = false
	t.dampSkip = false
	t.damped = 0
	t.projOrder.clear()
	for v := range s.assigns {
		if s.assigns[v] == LUndef && s.decision[v] {
			s.order.insert(Var(v), s.activity)
		}
	}
}

// enumScan walks the problem clauses circularly from the cursor looking
// for one with no true literal. All-satisfied (a full circle) certifies
// a model: allSat is true and the caller may terminate early. Otherwise
// the first unsatisfied clause steers the completion: pick is its first
// unassigned decision variable with the saved polarity, or LitUndef if
// the clause has none (the caller falls back to the main heap).
//
// Steering decisions toward unsatisfied clauses makes the
// post-projection completion converge in a few dozen decisions instead
// of wandering the global VSIDS order through thousands of variables no
// unsatisfied clause mentions; keeping the saved polarity (rather than
// forcing the clause's own literal true) lets the phase memory of the
// previous model replay, which measurably lowers the conflict rate
// between models.
//
// Blocking clauses added by blockAndContinue are scanned like any other
// problem clause but can never be picked from: their literals are all
// over projected variables (plus guard literals pinned through the
// assumptions), so once the projection is complete they are either
// satisfied or have already conflicted.
func (s *Solver) enumScan() (pick Lit, allSat bool) {
	t := &s.enum
	for n := len(s.clauses); n > 0; n-- {
		if t.scan >= len(s.clauses) {
			t.scan = 0
		}
		sat := false
		pick = LitUndef
		for _, qw := range s.ca.lits(s.clauses[t.scan]) {
			l := Lit(qw)
			if s.value(l) == LTrue {
				sat = true
				break
			}
			if pick == LitUndef {
				if v := l.Var(); s.assigns[v] == LUndef && s.decision[v] {
					pick = MkLit(v, s.polarity[v])
				}
			}
		}
		if !sat {
			return pick, false
		}
		t.scan++
	}
	return LitUndef, true
}

// enumRefillOrder returns the damped variables to the heap. The decide
// loop calls it when the heap runs dry while clauses remain unsatisfied
// — the correctness escape hatch of order damping.
func (s *Solver) enumRefillOrder() bool {
	t := &s.enum
	if t.damped == 0 {
		return false
	}
	t.damped = 0
	refilled := false
	for v := range s.assigns {
		if s.assigns[v] == LUndef && s.decision[v] && !s.order.contains(Var(v)) {
			s.order.insert(Var(v), s.activity)
			refilled = true
		}
	}
	return refilled
}
