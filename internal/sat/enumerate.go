package sat

import (
	"context"
	"time"

	"repro/internal/trace"
)

// EnumOptions configures projected model enumeration.
type EnumOptions struct {
	// Assumptions are passed to every Solve call (e.g. the cardinality
	// bound of the current diagnosis stage).
	Assumptions []Lit
	// Ctx, when non-nil, cancels the enumeration cooperatively: it is
	// polled before every Solve, inside the search (SolveContext), and
	// after every model emission, so ctx.Done() surfaces as an
	// incomplete enumeration promptly and without growing the clause DB
	// past the cancellation point.
	Ctx context.Context
	// MaxSolutions stops enumeration after this many models (0 = no cap).
	MaxSolutions int
	// ExactBlocking blocks only the exact projected assignment (both
	// polarities in the blocking clause) instead of the default
	// subset-blocking that forbids all supersets of the true-set. The
	// default suits minimal-correction enumeration; ExactBlocking suits
	// enumerating distinct assignments (e.g. distinguishing test vectors).
	ExactBlocking bool
	// BlockExtra literals are appended to every blocking clause. A
	// long-lived session passes the negation of a round-guard literal
	// here (and the guard itself in Assumptions): during the round the
	// guard is assumed true so blocking behaves as usual, and asserting
	// the guard false afterwards retracts every blocking clause of the
	// round at once, leaving the solver clean for the next query.
	BlockExtra []Lit
	// Mode selects the enumeration strategy (see EnumMode). The zero
	// value is the legacy loop the default goldens pin; EnumProjected
	// enables early model termination, blocked-continue search, and
	// free-variable order damping.
	Mode EnumMode
}

// EnumerateProjected enumerates the models of the current database
// projected onto proj: after every satisfying assignment, a blocking
// clause forbidding the set of projected literals that were true is added
// permanently, so no later model (in this or any following stage) repeats
// or extends an already reported projection. This is precisely the
// enumeration discipline of the paper's Figures 3 and 4: iterating the
// size limit upward with blocking yields exactly the solutions containing
// only essential candidates (Lemma 3).
//
// fn is called with the projected literals that are true in the model
// (aliasing an internal buffer; copy to retain). If fn returns false the
// enumeration stops early.
//
// complete is true iff the solution space under the assumptions was
// exhausted (final UNSAT), false on budget expiry, fn abort, or cap.
func (s *Solver) EnumerateProjected(proj []Lit, opts EnumOptions, fn func(trueLits []Lit) bool) (n int, complete bool) {
	if opts.Mode == EnumProjected {
		return s.enumerateContinue(proj, opts, fn)
	}
	buf := s.projBuf[:0]
	defer func() { s.projBuf = buf[:0] }()
	for {
		if opts.MaxSolutions > 0 && n >= opts.MaxSolutions {
			return n, false
		}
		if opts.Ctx != nil && opts.Ctx.Err() != nil {
			return n, false
		}
		switch s.SolveContext(opts.Ctx, opts.Assumptions...) {
		case StatusUnknown:
			return n, false
		case StatusUnsat:
			return n, true
		}
		buf = buf[:0]
		for _, l := range proj {
			if s.ValueLit(l) == LTrue {
				buf = append(buf, l)
			}
		}
		n++
		if fn != nil && !fn(buf) {
			return n, false
		}
		if opts.Ctx != nil && opts.Ctx.Err() != nil {
			// A consumer that observed the cancellation mid-model must
			// not grow the clause DB past the cancellation point.
			return n, false
		}
		block := s.blockingClause(proj, buf, opts)
		if !s.AddClause(block...) {
			// Blocking the empty projection (or a level-0 contradiction)
			// empties the solution space.
			return n, true
		}
	}
}

// blockingClause assembles the blocking clause for the current model in
// the solver-resident buffer (aliased by the return value; consumed
// before the next model).
func (s *Solver) blockingClause(proj, trueLits []Lit, opts EnumOptions) []Lit {
	block := s.blockBuf[:0]
	if opts.ExactBlocking {
		for _, l := range proj {
			switch s.ValueLit(l) {
			case LTrue:
				block = append(block, l.Neg())
			case LFalse:
				block = append(block, l)
			}
		}
	} else {
		for _, l := range trueLits {
			block = append(block, l.Neg())
		}
	}
	block = append(block, opts.BlockExtra...)
	s.blockBuf = block
	return block
}

// enumerateContinue is the EnumProjected loop: one continuous search
// over all models. The satisfaction tracker lets search terminate each
// model as soon as the projection is decided (early model termination),
// and blockAndContinue splices each blocking clause into the live trail
// with a minimal backjump instead of re-solving from scratch.
func (s *Solver) enumerateContinue(proj []Lit, opts EnumOptions, fn func(trueLits []Lit) bool) (n int, complete bool) {
	if !s.ok {
		return 0, true
	}
	if !s.Deadline.IsZero() && !time.Now().Before(s.Deadline) {
		s.record(trace.EvDeadlineExit)
		return 0, false
	}
	if opts.Ctx != nil {
		if opts.Ctx.Err() != nil {
			return 0, false
		}
		s.ctx = opts.Ctx
		s.ctxNext = s.Stats.Conflicts + ctxPollConflicts
		defer func() { s.ctx = nil }()
	}
	s.assumptions = append(s.assumptions[:0], opts.Assumptions...)
	s.conflictSet = s.conflictSet[:0]
	// Settle level 0 and drop clauses satisfied there before arming the
	// tracker, mirroring the simplify at the top of Solve. Without this a
	// long-lived session that retires guarded rounds would accumulate the
	// retracted blocking clauses (and their occurrence-list entries)
	// forever, since the continue loop never passes through Solve.
	if s.propagate() != CRefUndef {
		s.ok = false
		return 0, true
	}
	s.simplify()
	if !s.ok {
		return 0, true
	}
	s.enumActivate(proj)
	defer func() {
		s.cancelUntil(0)
		s.enumDeactivate()
	}()
	if s.maxLearnts == 0 {
		s.maxLearnts = float64(len(s.clauses)) / 3
		if s.maxLearnts < 5000 {
			s.maxLearnts = 5000
		}
	}
	buf := s.projBuf[:0]
	defer func() { s.projBuf = buf[:0] }()
	startConflicts := s.Stats.Conflicts
	restart := int64(0)
	for {
		restart++
		budget := int64(-1)
		if s.MaxConflicts > 0 {
			budget = startConflicts + s.MaxConflicts - s.Stats.Conflicts
			if budget <= 0 {
				s.record(trace.EvBudgetExit)
				return n, false
			}
		}
		limit := luby(restart) * 16
		if budget >= 0 && limit > budget {
			limit = budget
		}
		switch s.search(int(limit)) {
		case StatusUnknown:
			s.Stats.Restarts++
			s.record(trace.EvRestart)
			if !s.Deadline.IsZero() && time.Now().After(s.Deadline) {
				s.record(trace.EvDeadlineExit)
				return n, false
			}
			if s.interrupted() {
				s.record(trace.EvCtxExit)
				return n, false
			}
			if s.MaxConflicts > 0 && s.Stats.Conflicts-startConflicts >= s.MaxConflicts {
				s.record(trace.EvBudgetExit)
				return n, false
			}
			continue
		case StatusUnsat:
			// Either a level-0 conflict (database contradiction, s.ok
			// already false) or a failed-assumption core: the space under
			// the assumptions is exhausted.
			s.record(trace.EvUnsat)
			return n, true
		}
		// A model, with the trail still in place.
		buf = buf[:0]
		for _, l := range proj {
			if s.ValueLit(l) == LTrue {
				buf = append(buf, l)
			}
		}
		n++
		if fn != nil && !fn(buf) {
			return n, false
		}
		if opts.Ctx != nil && opts.Ctx.Err() != nil {
			s.record(trace.EvCtxExit)
			return n, false
		}
		if !s.blockAndContinue(s.blockingClause(proj, buf, opts)) {
			s.record(trace.EvUnsat)
			return n, true
		}
		if opts.MaxSolutions > 0 && n >= opts.MaxSolutions {
			return n, false
		}
		// Budgets and restart pacing are per model, mirroring the
		// one-Solve-per-model accounting of the legacy loop.
		startConflicts = s.Stats.Conflicts
		restart = 0
	}
}

// blockAndContinue attaches the blocking clause of the model currently
// on the trail and resumes the search in place: it backjumps only to the
// deepest level at which the clause stops being falsified — keeping
// trail, watches, and learnts intact below — instead of unwinding to
// level 0 and re-solving. All literals of the clause are false in the
// current state by construction.
//
// It reports false when the clause empties the remaining solution space
// (every literal false at level 0), leaving s.ok false exactly like the
// legacy AddClause path.
func (s *Solver) blockAndContinue(block []Lit) bool {
	if len(block) == 0 {
		s.ok = false
		return false
	}
	s.Stats.ContinueBackjumps++
	// Falsification depth of a literal; an unassigned literal (possible
	// only through unusual BlockExtra usage) sorts deepest so the clause
	// is treated as already unit rather than mis-read through a stale
	// level entry.
	depth := func(l Lit) int {
		if s.value(l) == LUndef {
			return s.decisionLevel() + 1
		}
		return s.varLevel(l.Var())
	}
	// Move the deepest literal to position 0.
	hi := 0
	for i := 1; i < len(block); i++ {
		if depth(block[i]) > depth(block[hi]) {
			hi = i
		}
	}
	block[0], block[hi] = block[hi], block[0]
	top := depth(block[0])
	if top == 0 {
		// Permanently falsified: the space is empty.
		s.ok = false
		return false
	}
	if len(block) == 1 {
		s.cancelUntil(0)
		s.uncheckedEnqueue(block[0], CRefUndef)
		s.ok = s.propagate() == CRefUndef
		return s.ok
	}
	// Move the second-deepest literal to position 1 (the second watch
	// must be among the last-falsified literals).
	sec := 1
	for i := 2; i < len(block); i++ {
		if depth(block[i]) > depth(block[sec]) {
			sec = i
		}
	}
	block[1], block[sec] = block[sec], block[1]
	bt := depth(block[1])
	if bt >= top {
		// Two literals share the deepest level, so no backjump target
		// makes the clause unit: step below, attach, and let propagation
		// rediscover it.
		bt = top - 1
	}
	s.enum.dampSkip = true
	s.cancelUntil(bt)
	s.enum.dampSkip = false
	cr := s.ca.alloc(block, false)
	s.clauses = append(s.clauses, cr)
	s.attach(cr)
	if s.value(block[0]) == LUndef && s.value(block[1]) == LFalse {
		// Unit at bt: assert the surviving literal with the blocking
		// clause as its reason and let search's propagate take over.
		s.uncheckedEnqueue(block[0], cr)
	}
	return true
}
