package sat

import "context"

// EnumOptions configures projected model enumeration.
type EnumOptions struct {
	// Assumptions are passed to every Solve call (e.g. the cardinality
	// bound of the current diagnosis stage).
	Assumptions []Lit
	// Ctx, when non-nil, cancels the enumeration cooperatively: it is
	// polled before every Solve and inside the search (SolveContext), so
	// ctx.Done() surfaces as an incomplete enumeration promptly.
	Ctx context.Context
	// MaxSolutions stops enumeration after this many models (0 = no cap).
	MaxSolutions int
	// ExactBlocking blocks only the exact projected assignment (both
	// polarities in the blocking clause) instead of the default
	// subset-blocking that forbids all supersets of the true-set. The
	// default suits minimal-correction enumeration; ExactBlocking suits
	// enumerating distinct assignments (e.g. distinguishing test vectors).
	ExactBlocking bool
	// BlockExtra literals are appended to every blocking clause. A
	// long-lived session passes the negation of a round-guard literal
	// here (and the guard itself in Assumptions): during the round the
	// guard is assumed true so blocking behaves as usual, and asserting
	// the guard false afterwards retracts every blocking clause of the
	// round at once, leaving the solver clean for the next query.
	BlockExtra []Lit
}

// EnumerateProjected enumerates the models of the current database
// projected onto proj: after every satisfying assignment, a blocking
// clause forbidding the set of projected literals that were true is added
// permanently, so no later model (in this or any following stage) repeats
// or extends an already reported projection. This is precisely the
// enumeration discipline of the paper's Figures 3 and 4: iterating the
// size limit upward with blocking yields exactly the solutions containing
// only essential candidates (Lemma 3).
//
// fn is called with the projected literals that are true in the model
// (aliasing an internal buffer; copy to retain). If fn returns false the
// enumeration stops early.
//
// complete is true iff the solution space under the assumptions was
// exhausted (final UNSAT), false on budget expiry, fn abort, or cap.
func (s *Solver) EnumerateProjected(proj []Lit, opts EnumOptions, fn func(trueLits []Lit) bool) (n int, complete bool) {
	var buf []Lit
	for {
		if opts.MaxSolutions > 0 && n >= opts.MaxSolutions {
			return n, false
		}
		if opts.Ctx != nil && opts.Ctx.Err() != nil {
			return n, false
		}
		switch s.SolveContext(opts.Ctx, opts.Assumptions...) {
		case StatusUnknown:
			return n, false
		case StatusUnsat:
			return n, true
		}
		buf = buf[:0]
		for _, l := range proj {
			if s.ValueLit(l) == LTrue {
				buf = append(buf, l)
			}
		}
		n++
		if fn != nil && !fn(buf) {
			return n, false
		}
		var block []Lit
		if opts.ExactBlocking {
			block = make([]Lit, 0, len(proj)+len(opts.BlockExtra))
			for _, l := range proj {
				switch s.ValueLit(l) {
				case LTrue:
					block = append(block, l.Neg())
				case LFalse:
					block = append(block, l)
				}
			}
		} else {
			block = make([]Lit, len(buf), len(buf)+len(opts.BlockExtra))
			for i, l := range buf {
				block[i] = l.Neg()
			}
		}
		block = append(block, opts.BlockExtra...)
		if !s.AddClause(block...) {
			// Blocking the empty projection (or a level-0 contradiction)
			// empties the solution space.
			return n, true
		}
	}
}
