package service_test

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/service"
)

// TestServerEnumModeEquivalence: projected-mode requests must answer
// byte-identically to legacy ones across all three serving paths, echo
// the mode, and actually engage the projected machinery (non-zero
// early-termination counter on the wire stats).
func TestServerEnumModeEquivalence(t *testing.T) {
	_, ts := newTestServer(t, 2)
	for seed := int64(1); seed <= 3; seed++ {
		c, tests := scenario(t, seed*10, 6)
		bench := benchText(t, c)
		wire := testJSON(tests)
		want := mustJSON(t, truth(t, bench, tests, 2, 1))

		// Cold path.
		cold := diagnose(t, ts.URL, service.DiagnoseRequest{
			Bench: bench, Tests: wire, K: 2, Mode: "cold", Enum: "projected",
		})
		if got := mustJSON(t, cold.Solutions); got != want {
			t.Fatalf("seed %d cold projected: %s != %s", seed, got, want)
		}
		if cold.Enum != "projected" {
			t.Fatalf("seed %d cold: enum echo %q", seed, cold.Enum)
		}
		if len(cold.Solutions) > 0 && cold.Stats.EarlyTerms == 0 {
			t.Fatalf("seed %d cold: projected mode never engaged (stats %+v)", seed, cold.Stats)
		}

		// Warm path (miss then hit), legacy and projected interleaved on
		// the same pooled session — the mode must not leak between runs.
		warmLegacy := diagnose(t, ts.URL, service.DiagnoseRequest{
			Bench: bench, Tests: wire, K: 2,
		})
		if got := mustJSON(t, warmLegacy.Solutions); got != want {
			t.Fatalf("seed %d warm legacy: %s != %s", seed, got, want)
		}
		if warmLegacy.Enum != "legacy" || warmLegacy.Stats.EarlyTerms != 0 {
			t.Fatalf("seed %d warm legacy: enum=%q earlyTerms=%d", seed, warmLegacy.Enum, warmLegacy.Stats.EarlyTerms)
		}
		warmProj := diagnose(t, ts.URL, service.DiagnoseRequest{
			Bench: bench, Tests: wire, K: 2, Enum: "projected",
		})
		if got := mustJSON(t, warmProj.Solutions); got != want {
			t.Fatalf("seed %d warm projected: %s != %s", seed, got, want)
		}
		if warmProj.Enum != "projected" || !warmProj.PoolHit {
			t.Fatalf("seed %d warm projected: enum=%q hit=%v", seed, warmProj.Enum, warmProj.PoolHit)
		}
		if len(warmProj.Solutions) > 0 && warmProj.Stats.EarlyTerms == 0 {
			t.Fatalf("seed %d warm projected: mode never engaged (stats %+v)", seed, warmProj.Stats)
		}

		// Sharded projected on the warm session.
		sharded := diagnose(t, ts.URL, service.DiagnoseRequest{
			Bench: bench, Tests: wire, K: 2, Shards: 2, Enum: "projected",
		})
		if got := mustJSON(t, sharded.Solutions); got != want {
			t.Fatalf("seed %d sharded projected: %s != %s", seed, got, want)
		}

		// Incremental inherits the previous run's mode ("" in the edit).
		sid := warmProj.Session
		code, inc := post[service.DiagnoseResponse](t, ts.URL+"/sessions/"+sid+"/tests",
			service.SessionTestsRequest{Remove: []int{0}})
		if code != http.StatusOK {
			t.Fatalf("seed %d incremental -> %d", seed, code)
		}
		wantSub := mustJSON(t, truth(t, bench, tests[1:], 2, 1))
		if got := mustJSON(t, inc.Solutions); got != wantSub {
			t.Fatalf("seed %d incremental projected: %s != %s", seed, got, wantSub)
		}
		if inc.Enum != "projected" {
			t.Fatalf("seed %d incremental: inherited enum %q, want projected", seed, inc.Enum)
		}
		// And an explicit legacy override on the next edit.
		code, inc2 := post[service.DiagnoseResponse](t, ts.URL+"/sessions/"+sid+"/tests",
			service.SessionTestsRequest{Add: wire[:1], Enum: "legacy"})
		if code != http.StatusOK {
			t.Fatalf("seed %d incremental add -> %d", seed, code)
		}
		if got := mustJSON(t, inc2.Solutions); got != want {
			t.Fatalf("seed %d incremental legacy: %s != %s", seed, got, want)
		}
		if inc2.Enum != "legacy" {
			t.Fatalf("seed %d incremental: override enum %q, want legacy", seed, inc2.Enum)
		}
	}

	// The per-session counters surfaced on /metrics.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	body := string(raw)
	for _, name := range []string{"diag_session_early_terms", "diag_session_continue_backjumps", "diag_session_skipped_decisions"} {
		if !strings.Contains(body, name) {
			t.Fatalf("metrics missing %s:\n%s", name, body)
		}
	}
}

// TestServerEnumModeValidation: unknown enumeration modes are rejected
// up front with 400 on both endpoints.
func TestServerEnumModeValidation(t *testing.T) {
	_, ts := newTestServer(t, 1)
	c, tests := scenario(t, 10, 4)
	bench := benchText(t, c)
	wire := testJSON(tests)

	code, _ := post[service.DiagnoseResponse](t, ts.URL+"/diagnose", service.DiagnoseRequest{
		Bench: bench, Tests: wire, K: 1, Enum: "nope",
	})
	if code != http.StatusBadRequest {
		t.Fatalf("/diagnose unknown enum -> %d, want 400", code)
	}

	first := diagnose(t, ts.URL, service.DiagnoseRequest{Bench: bench, Tests: wire, K: 1})
	code, _ = post[service.DiagnoseResponse](t, ts.URL+"/sessions/"+first.Session+"/tests",
		service.SessionTestsRequest{Remove: []int{0}, Enum: "nope"})
	if code != http.StatusBadRequest {
		t.Fatalf("/sessions unknown enum -> %d, want 400", code)
	}
}

// TestPortfolioProjectedRaces: an enum-pinned request still races (the
// mode is trajectory-only, so any winner returns the same bytes) and the
// projected machinery engages in the winning clone.
func TestPortfolioProjectedRaces(t *testing.T) {
	_, ts := newPortfolioServer(t)
	c, tests := scenario(t, 20, 6)
	bench := benchText(t, c)
	wire := testJSON(tests)
	want := mustJSON(t, truth(t, bench, tests, 2, 1))

	for round := 0; round < 2; round++ {
		r := diagnose(t, ts.URL, service.DiagnoseRequest{Bench: bench, Tests: wire, K: 2, Enum: "projected"})
		if !r.Raced {
			t.Fatalf("round %d: projected request did not race", round)
		}
		if r.Enum != "projected" {
			t.Fatalf("round %d: enum echo %q", round, r.Enum)
		}
		if got := mustJSON(t, r.Solutions); got != want {
			t.Fatalf("round %d raced projected: %s != %s", round, got, want)
		}
		if len(r.Solutions) > 0 && r.Stats.EarlyTerms == 0 {
			t.Fatalf("round %d: projected mode never engaged in the race winner", round)
		}
	}
}
