package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/service"
)

func newTestServer(t *testing.T, workers int) (*service.Server, *httptest.Server) {
	t.Helper()
	srv := service.NewServer(service.Options{
		Scheduler: service.SchedulerOptions{Workers: workers, Queue: 64},
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func post[T any](t *testing.T, url string, body any) (int, T) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var out T
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("decode %s: %v\n%s", url, err, raw)
		}
	}
	return resp.StatusCode, out
}

func diagnose(t *testing.T, base string, req service.DiagnoseRequest) service.DiagnoseResponse {
	t.Helper()
	code, resp := post[service.DiagnoseResponse](t, base+"/diagnose", req)
	if code != http.StatusOK {
		t.Fatalf("POST /diagnose -> %d", code)
	}
	return resp
}

// truth computes the monolithic ground truth the server must match,
// on the server's view of the circuit (the parsed bench text).
func truth(t *testing.T, bench string, tests circuit.TestSet, k, shards int) [][]int {
	t.Helper()
	parsed, err := circuit.ParseBench("truth", strings.NewReader(bench))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := core.Diagnose(context.Background(), core.Request{
		Engine: "bsat", Circuit: parsed, Tests: tests, K: k, Shards: shards,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete {
		t.Fatal("ground truth incomplete without budgets")
	}
	sols := make([][]int, len(rep.Solutions))
	for i, s := range rep.Solutions {
		sols[i] = s.Gates
	}
	return sols
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestServerEquivalenceProperty is the end-to-end acceptance property:
// for a stream of random circuit/test-set requests — any mix of cold,
// warm and incremental serving, any worker-pool size, sharded or not —
// the server's solution lists are byte-identical to monolithic
// core.Diagnose on the same inputs.
func TestServerEquivalenceProperty(t *testing.T) {
	for _, workers := range []int{1, 4} {
		for _, shards := range []int{1, 2} {
			t.Run(fmt.Sprintf("workers=%d/shards=%d", workers, shards), func(t *testing.T) {
				_, ts := newTestServer(t, workers)
				for seed := int64(1); seed <= 4; seed++ {
					c, tests := scenario(t, seed*10, 6)
					bench := benchText(t, c)
					wire := testJSON(tests)
					want := mustJSON(t, truth(t, bench, tests, 2, 1))

					// Cold (pool bypass).
					cold := diagnose(t, ts.URL, service.DiagnoseRequest{
						Bench: bench, Tests: wire, K: 2, Shards: shards, Mode: "cold",
					})
					if got := mustJSON(t, cold.Solutions); got != want {
						t.Fatalf("seed %d cold: %s != %s", seed, got, want)
					}
					if !cold.Complete || cold.PoolHit {
						t.Fatalf("seed %d cold: complete=%v hit=%v", seed, cold.Complete, cold.PoolHit)
					}

					// Warm start (pool miss) then warm hit.
					first := diagnose(t, ts.URL, service.DiagnoseRequest{
						Bench: bench, Tests: wire, K: 2, Shards: shards,
					})
					if got := mustJSON(t, first.Solutions); got != want {
						t.Fatalf("seed %d warm-start: %s != %s", seed, got, want)
					}
					if first.PoolHit || first.Session == "" {
						t.Fatalf("seed %d warm-start: hit=%v session=%q", seed, first.PoolHit, first.Session)
					}
					second := diagnose(t, ts.URL, service.DiagnoseRequest{
						Bench: bench, Tests: wire, K: 2, Shards: shards,
					})
					if got := mustJSON(t, second.Solutions); got != want {
						t.Fatalf("seed %d warm: %s != %s", seed, got, want)
					}
					if !second.PoolHit || second.Mode != "warm" || second.NewCopies != 0 {
						t.Fatalf("seed %d warm: hit=%v mode=%q new=%d", seed, second.PoolHit, second.Mode, second.NewCopies)
					}

					// Incremental: drop the first test, add it back.
					sid := first.Session
					code, inc := post[service.DiagnoseResponse](t, ts.URL+"/sessions/"+sid+"/tests",
						service.SessionTestsRequest{Remove: []int{0}, Shards: shards})
					if code != http.StatusOK {
						t.Fatalf("seed %d incremental remove -> %d", seed, code)
					}
					wantSub := mustJSON(t, truth(t, bench, tests[1:], 2, 1))
					if got := mustJSON(t, inc.Solutions); got != wantSub {
						t.Fatalf("seed %d incremental remove: %s != %s", seed, got, wantSub)
					}
					if inc.Mode != "incremental" || inc.Tests != len(tests)-1 {
						t.Fatalf("seed %d incremental: mode=%q tests=%d", seed, inc.Mode, inc.Tests)
					}
					code, inc2 := post[service.DiagnoseResponse](t, ts.URL+"/sessions/"+sid+"/tests",
						service.SessionTestsRequest{Add: wire[:1], Shards: shards})
					if code != http.StatusOK {
						t.Fatalf("seed %d incremental add -> %d", seed, code)
					}
					// Same test-set as the full run (order permuted —
					// the solution space is order-independent).
					if got := mustJSON(t, inc2.Solutions); got != want {
						t.Fatalf("seed %d incremental add: %s != %s", seed, got, want)
					}
					if inc2.NewCopies != 0 {
						t.Fatalf("seed %d: re-added test re-encoded (%d new copies)", seed, inc2.NewCopies)
					}
				}
			})
		}
	}
}

// TestServerConcurrentMixedClients hammers one server with concurrent
// cold/warm clients over two circuits and checks every response against
// the ground truth — the race-and-equivalence stress for the pool's
// serialization and the scheduler.
func TestServerConcurrentMixedClients(t *testing.T) {
	_, ts := newTestServer(t, 4)
	type workload struct {
		bench string
		wire  []service.TestJSON
		want  string
	}
	var loads []workload
	for seed := int64(1); seed <= 2; seed++ {
		c, tests := scenario(t, 100*seed, 5)
		bench := benchText(t, c)
		loads = append(loads, workload{
			bench: bench,
			wire:  testJSON(tests),
			want:  mustJSON(t, truth(t, bench, tests, 2, 1)),
		})
	}
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			wl := loads[i%len(loads)]
			mode := ""
			if i%3 == 0 {
				mode = "cold"
			}
			resp := diagnose(t, ts.URL, service.DiagnoseRequest{
				Bench: wl.bench, Tests: wl.wire, K: 2, Mode: mode,
			})
			if got := mustJSON(t, resp.Solutions); got != wl.want {
				t.Errorf("client %d (%s): %s != %s", i, resp.Mode, got, wl.want)
			}
		}(i)
	}
	wg.Wait()
}

// TestServerMetricsAndHealth: the serving counters must be visible on
// /metrics (pool hit/miss/eviction, latency histograms, per-session SAT
// cost) and /healthz must respond.
func TestServerMetricsAndHealth(t *testing.T) {
	_, ts := newTestServer(t, 2)
	c, tests := scenario(t, 7, 4)
	req := service.DiagnoseRequest{Bench: benchText(t, c), Tests: testJSON(tests), K: 2}
	diagnose(t, ts.URL, req)
	r2 := diagnose(t, ts.URL, req)
	if !r2.PoolHit {
		t.Fatal("second identical request missed the pool")
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"diag_pool_hits_total 1",
		"diag_pool_misses_total 1",
		"diag_pool_evictions_total 0",
		"diag_requests_total 2",
		`diag_request_seconds_count{mode="warm"} 1`,
		"diag_session_copies{session=",
		"diag_session_conflicts{session=",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}

	var health service.HealthJSON
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(hr.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if !health.OK || health.Sessions != 1 || health.Workers != 2 {
		t.Fatalf("health %+v", health)
	}

	var sessions []service.EntryInfo
	sr, err := http.Get(ts.URL + "/sessions")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(sr.Body).Decode(&sessions); err != nil {
		t.Fatal(err)
	}
	sr.Body.Close()
	if len(sessions) != 1 || sessions[0].Uses != 2 {
		t.Fatalf("sessions %+v", sessions)
	}
}

// TestServerMetricsDuringColdBuilds scrapes /sessions and /metrics
// while cold session builds and rebuilds are in flight — the entry
// fields those endpoints read must be published under the pool lock
// (regression for a write-after-publish race in Acquire and rebuild).
func TestServerMetricsDuringColdBuilds(t *testing.T) {
	_, ts := newTestServer(t, 4)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			http.Get(ts.URL + "/sessions")
			r, err := http.Get(ts.URL + "/metrics")
			if err == nil {
				io.Copy(io.Discard, r.Body)
				r.Body.Close()
			}
		}
	}()
	for seed := int64(1); seed <= 3; seed++ {
		c, tests := scenario(t, 200*seed, 4)
		bench := benchText(t, c)
		wire := testJSON(tests)
		var cw sync.WaitGroup
		for i := 0; i < 4; i++ {
			cw.Add(1)
			go func(i int) {
				defer cw.Done()
				// K alternates past DefaultWarmMaxK to force rebuilds
				// concurrent with the scrapers.
				k := 2
				if i%2 == 1 {
					k = 5
				}
				diagnose(t, ts.URL, service.DiagnoseRequest{Bench: bench, Tests: wire, K: k})
			}(i)
		}
		cw.Wait()
	}
	close(stop)
	wg.Wait()
}

// TestServerScenarioRoundtrip: the /scenario convenience endpoint must
// produce a payload /diagnose accepts, with non-empty solutions.
func TestServerScenarioRoundtrip(t *testing.T) {
	_, ts := newTestServer(t, 2)
	resp, err := http.Get(ts.URL + "/scenario?circuit=s298x&inject=1&seed=3&tests=6")
	if err != nil {
		t.Fatal(err)
	}
	var sc service.ScenarioJSON
	if err := json.NewDecoder(resp.Body).Decode(&sc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if sc.Bench == "" || len(sc.Tests) == 0 {
		t.Fatalf("scenario %+v", sc)
	}
	out := diagnose(t, ts.URL, service.DiagnoseRequest{Bench: sc.Bench, Tests: sc.Tests, K: sc.K})
	if len(out.Solutions) == 0 || !out.Complete {
		t.Fatalf("scenario diagnosis: %d solutions complete=%v", len(out.Solutions), out.Complete)
	}
}

// TestServerErrorPaths: malformed input and unknown sessions map to the
// right status codes and never wedge the scheduler.
func TestServerErrorPaths(t *testing.T) {
	_, ts := newTestServer(t, 1)
	c, tests := scenario(t, 5, 3)

	cases := []struct {
		name string
		req  service.DiagnoseRequest
		code int
	}{
		{"no circuit", service.DiagnoseRequest{Tests: testJSON(tests)}, http.StatusBadRequest},
		{"no tests", service.DiagnoseRequest{Bench: benchText(t, c)}, http.StatusBadRequest},
		{"bad vector", service.DiagnoseRequest{Bench: benchText(t, c),
			Tests: []service.TestJSON{{Vector: "xx", Output: 0}}}, http.StatusBadRequest},
		{"bad engine", service.DiagnoseRequest{Bench: benchText(t, c), Tests: testJSON(tests),
			Engine: "nope"}, http.StatusUnprocessableEntity},
		{"warm non-bsat", service.DiagnoseRequest{Bench: benchText(t, c), Tests: testJSON(tests),
			Engine: "cov", Mode: "warm"}, http.StatusBadRequest},
		{"bad encoding", service.DiagnoseRequest{Bench: benchText(t, c), Tests: testJSON(tests),
			Encoding: "unary"}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		code, _ := post[service.DiagnoseResponse](t, ts.URL+"/diagnose", tc.req)
		if code != tc.code {
			t.Errorf("%s: status %d, want %d", tc.name, code, tc.code)
		}
	}
	code, _ := post[service.DiagnoseResponse](t, ts.URL+"/sessions/zzz/tests", service.SessionTestsRequest{})
	if code != http.StatusNotFound {
		t.Errorf("unknown session: %d, want 404", code)
	}
	// The server still serves after the error burst.
	resp := diagnose(t, ts.URL, service.DiagnoseRequest{Bench: benchText(t, c), Tests: testJSON(tests), K: 2})
	if !resp.Complete {
		t.Fatal("server wedged after error paths")
	}
}

// TestServerHandlerGoroutineHygiene is the goleak-style check for the
// new handlers: after a burst of mixed requests (including cancelled
// ones) the goroutine count must settle back to the baseline — no
// stranded workers, no leaked per-request goroutines.
func TestServerHandlerGoroutineHygiene(t *testing.T) {
	srv, ts := newTestServer(t, 2)
	c, tests := scenario(t, 9, 4)
	bench := benchText(t, c)
	wire := testJSON(tests)

	before := runtime.NumGoroutine()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%4 == 3 {
				// A client that gives up immediately.
				ctx, cancel := context.WithCancel(context.Background())
				cancel()
				b, _ := json.Marshal(service.DiagnoseRequest{Bench: bench, Tests: wire, K: 2})
				req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/diagnose", bytes.NewReader(b))
				http.DefaultClient.Do(req)
				return
			}
			diagnose(t, ts.URL, service.DiagnoseRequest{Bench: bench, Tests: wire, K: 2, Shards: 1 + i%2})
		}(i)
	}
	wg.Wait()

	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.Gosched()
		// Idle client keep-alive connections hold read/write loop
		// goroutines that are not the server's to clean up.
		http.DefaultClient.CloseIdleConnections()
		// The scheduler's resident workers (2) are expected; anything
		// beyond baseline+workers is a leak.
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after burst", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Drain is clean: admitted work finished, workers exited.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}
