package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/core"
	"repro/internal/failpoint"
	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/journal"
	"repro/internal/metrics"
	"repro/internal/sat"
	"repro/internal/tgen"
	"repro/internal/trace"
)

// DefaultWarmMaxK is the ladder headroom warm sessions are built with:
// requests up to this correction size share one session without ever
// rebuilding the ladder. Larger k triggers one rebuild that then serves
// that k warmly too.
const DefaultWarmMaxK = 4

// maxBodyBytes bounds request bodies (.bench netlists dominate).
const maxBodyBytes = 64 << 20

// FailpointDiagnose fires once per diagnosis attempt, before any work
// runs — an injected failure is therefore always safe to retry.
const FailpointDiagnose = "service/diagnose"

// diagnoseRetries bounds the transient-failure retry loop per request;
// retryBackoff is the first backoff step, doubling per retry.
const (
	diagnoseRetries = 2
	retryBackoff    = 5 * time.Millisecond
)

// degradedWindow is how long a recovered panic or degraded response
// keeps /healthz reporting status "degraded".
const degradedWindow = 30 * time.Second

// Options configures a Server.
type Options struct {
	Pool      PoolOptions
	Scheduler SchedulerOptions

	// Portfolio races every eligible warm bsat request across all search
	// configurations (sat.PortfolioConfigs) on cloned sessions, first
	// finisher wins. Requests that pin a solver or shard their
	// enumeration run singly as before.
	Portfolio bool

	// Logger receives structured request logs (one line per request,
	// keyed by request id). nil discards them — tests and embedders that
	// do not care pay nothing.
	Logger *slog.Logger

	// TraceStore bounds how many completed request traces are retained
	// for GET /debug/diag/trace (0 = DefaultTraceStoreSize).
	TraceStore int

	// Journal, when non-nil, makes the warm pool durable: session
	// lifecycle records are appended to it and Drain seals it. nil
	// disables persistence (tests, embedders without a -journal-dir).
	Journal *journal.Writer

	// ReplayPending starts the server in the warming state: /healthz
	// answers 503 not-ready until Replay is called and completes.
	ReplayPending bool
}

// Server is the diagnosis service: session pool + scheduler + the JSON
// handlers. Create with NewServer, mount via Handler.
type Server struct {
	pool      *SessionPool
	sched     *Scheduler
	start     time.Time
	portfolio bool
	log       *slog.Logger
	traces    *traceStore
	reqID     atomic.Int64

	requests  metrics.Counter
	failures  metrics.Counter
	latencies map[string]*metrics.Histogram // by response mode
	// phases holds one latency histogram per request-span phase
	// (diag_phase_seconds{phase=...}): where end-to-end time actually
	// went, queue-wait separated from execution.
	phases map[string]*metrics.Histogram

	// Portfolio racing counters: races run, and wins per configuration
	// name (the map is fixed at construction — one counter per
	// sat.PortfolioConfigs entry).
	portfolioRaces metrics.Counter
	portfolioWins  map[string]*metrics.Counter

	// Fault-tolerance counters (tentpole of the robustness PR).
	panicsRecovered   metrics.Counter // handler/attempt panics turned into errors
	cubeRetries       metrics.Counter // shard-level cube retries, summed per run
	degradedResponses metrics.Counter // HTTP 200 with complete=false
	requestRetries    metrics.Counter // transient-failure retry attempts

	// Unix-nano timestamps of the last panic / degraded response,
	// feeding the /healthz degraded window.
	lastPanic    atomic.Int64
	lastDegraded atomic.Int64

	// Durability state (nil journal = persistence disabled). warming is
	// true from construction with ReplayPending until Replay completes;
	// /healthz reports 503 not-ready meanwhile. replaySt retains the
	// journal state the boot replayed, for /metrics.
	journal  *journal.Writer
	warming  atomic.Bool
	replaySt atomic.Pointer[journal.State]

	// Replay counters (diag_replay_*).
	replaySessions metrics.Counter // sessions rebuilt into the pool
	replaySkipped  metrics.Counter // sessions skipped (corrupt, failpoint, budget)
	replayTests    metrics.Counter // test copies re-encoded
	replayMillis   metrics.Gauge   // wall time of the last replay
}

// NewServer assembles a service instance.
// spanPhases are the request-span phases that get their own
// diag_phase_seconds histogram. "queue" is stamped by the scheduler
// worker, the rest by the pool/warm path; phases a request never
// entered simply observe nothing.
var spanPhases = []string{"queue", "pool", "session-wait", "rebuild", "encode", "solve"}

func NewServer(opts Options) *Server {
	wins := make(map[string]*metrics.Counter)
	for _, cfg := range sat.PortfolioConfigs() {
		wins[cfg.Name] = new(metrics.Counter)
	}
	phases := make(map[string]*metrics.Histogram, len(spanPhases))
	for _, p := range spanPhases {
		phases[p] = new(metrics.Histogram)
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	poolOpts := opts.Pool
	poolOpts.Journal = opts.Journal
	s := &Server{
		pool:      NewSessionPool(poolOpts),
		sched:     NewScheduler(opts.Scheduler),
		start:     time.Now(),
		portfolio: opts.Portfolio,
		log:       logger,
		traces:    newTraceStore(opts.TraceStore),
		latencies: map[string]*metrics.Histogram{
			"cold":        new(metrics.Histogram),
			"warm":        new(metrics.Histogram),
			"incremental": new(metrics.Histogram),
		},
		phases:        phases,
		portfolioWins: wins,
		journal:       opts.Journal,
	}
	s.warming.Store(opts.ReplayPending)
	return s
}

// Pool exposes the session pool (tests and cmd wiring).
func (s *Server) Pool() *SessionPool { return s.pool }

// Scheduler exposes the scheduler (drain on shutdown).
func (s *Server) Sched() *Scheduler { return s.sched }

// Handler returns the HTTP surface, wrapped in the recover middleware:
// a panicking handler answers 500 and bumps a counter instead of
// killing the process.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /diagnose", s.handleDiagnose)
	mux.HandleFunc("POST /sessions/{id}/tests", s.handleSessionTests)
	mux.HandleFunc("GET /sessions", s.handleSessions)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /livez", s.handleLivez)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /scenario", s.handleScenario)
	mux.HandleFunc("GET /debug/diag/trace", s.handleTraceList)
	mux.HandleFunc("GET /debug/diag/trace/{id}", s.handleTraceGet)
	return s.recoverMiddleware(mux)
}

// recoverMiddleware is the outermost backstop: anything that escapes
// the per-attempt and scheduler recovers still answers a 500 rather
// than crashing the shared server.
func (s *Server) recoverMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				s.notePanic()
				s.failures.Inc()
				writeError(w, http.StatusInternalServerError, "internal panic recovered: %v", v)
			}
		}()
		next.ServeHTTP(w, r)
	})
}

func (s *Server) notePanic() {
	s.panicsRecovered.Inc()
	s.lastPanic.Store(time.Now().UnixNano())
}

// Drain stops admission, waits for in-flight requests, then seals the
// journal: the in-flight appends have landed, so the clean-shutdown
// record is the true end of the log and the next boot skips torn-tail
// verification.
func (s *Server) Drain(ctx context.Context) error {
	err := s.sched.Drain(ctx)
	s.journal.Seal()
	return err
}

// TestJSON is one failing test triple on the wire. Vector is a 0/1
// string with one character per primary input, in circuit input order.
type TestJSON struct {
	Vector string `json:"vector"`
	Output int    `json:"output"`
	Want   bool   `json:"want"`
}

// DiagnoseRequest is the POST /diagnose body.
type DiagnoseRequest struct {
	// Bench is the faulty implementation as .bench netlist text.
	// Circuit alternatively names a synthetic-suite circuit (mostly for
	// experiments; real deployments ship the netlist).
	Bench   string `json:"bench,omitempty"`
	Circuit string `json:"circuit,omitempty"`

	Tests []TestJSON `json:"tests"`

	// Engine names the registered procedure ("" = bsat). Mode selects
	// the serving path: "auto" (default — warm-session path for bsat,
	// cold otherwise), "warm" (require the pooled path), or "cold"
	// (bypass the pool, monolithic core.Diagnose).
	Engine string `json:"engine,omitempty"`
	Mode   string `json:"mode,omitempty"`

	K          int   `json:"k,omitempty"`
	Shards     int   `json:"shards,omitempty"`
	SampleCap  int   `json:"sampleCap,omitempty"`
	Candidates []int `json:"candidates,omitempty"`

	// Fault-model knobs (part of the session key).
	Encoding  string `json:"encoding,omitempty"` // seqcounter|totalizer|pairwise
	ForceZero bool   `json:"forceZero,omitempty"`
	ConeOnly  bool   `json:"coneOnly,omitempty"`

	// Solver pins the SAT search configuration ("default", "gen2"; "" =
	// default — or a portfolio race when the server runs with one).
	// Trajectory-only, so it is NOT part of the session key.
	Solver string `json:"solver,omitempty"`

	// Enum pins the enumeration mode ("legacy", "projected"; "" =
	// legacy). Like Solver it is trajectory-only and not part of the
	// session key; the solution bytes are mode-invariant.
	Enum string `json:"enum,omitempty"`

	MaxSolutions int   `json:"maxSolutions,omitempty"`
	MaxConflicts int64 `json:"maxConflicts,omitempty"`
	TimeoutMs    int64 `json:"timeoutMs,omitempty"`
}

// SolverStatsJSON is the solver-work excerpt reported per response.
// The gen2 counters stay zero under the default configuration.
type SolverStatsJSON struct {
	Decisions    int64 `json:"decisions"`
	Conflicts    int64 `json:"conflicts"`
	Propagations int64 `json:"propagations"`

	LBDRestarts      int64 `json:"lbdRestarts,omitempty"`
	VivifiedLits     int64 `json:"vivifiedLits,omitempty"`
	ChronoBacktracks int64 `json:"chronoBacktracks,omitempty"`

	// Projected-enumeration counters; zero under the legacy mode.
	EarlyTerms        int64 `json:"earlyTerms,omitempty"`
	ContinueBackjumps int64 `json:"continueBackjumps,omitempty"`
	SkippedDecisions  int64 `json:"skippedDecisions,omitempty"`
}

func solverStatsJSON(st sat.Stats) SolverStatsJSON {
	return SolverStatsJSON{
		Decisions:         st.Decisions,
		Conflicts:         st.Conflicts,
		Propagations:      st.Propagations,
		LBDRestarts:       st.LBDRestarts,
		VivifiedLits:      st.VivifiedLits,
		ChronoBacktracks:  st.ChronoBacktracks,
		EarlyTerms:        st.EarlyTerms,
		ContinueBackjumps: st.ContinueBackjumps,
		SkippedDecisions:  st.SkippedDecisions,
	}
}

// DiagnoseResponse is the /diagnose and /sessions/{id}/tests reply.
// Solutions is canonical (size, then lexicographic): for complete runs
// it is byte-identical across cold, warm and incremental serving paths.
type DiagnoseResponse struct {
	Engine     string  `json:"engine"`
	Mode       string  `json:"mode"` // cold | warm | incremental
	Solutions  [][]int `json:"solutions"`
	Complete   bool    `json:"complete"`
	Guaranteed bool    `json:"guaranteed"`

	Session   string `json:"session,omitempty"` // warm-session id for follow-ups
	PoolHit   bool   `json:"poolHit"`
	Rebuilt   bool   `json:"rebuilt,omitempty"`
	Tests     int    `json:"tests"`
	NewCopies int    `json:"newCopies,omitempty"`

	Vars      int             `json:"vars,omitempty"`
	Clauses   int             `json:"clauses,omitempty"`
	Shards    int             `json:"shards,omitempty"`
	Stats     SolverStatsJSON `json:"stats"`
	ElapsedMs float64         `json:"elapsedMs"`

	// Solver is the search configuration that produced the answer; Raced
	// marks it as the winner of a portfolio race (the solution bytes are
	// configuration-invariant either way). Enum is the enumeration mode
	// the answer ran under.
	Solver string `json:"solver,omitempty"`
	Enum   string `json:"enum,omitempty"`
	Raced  bool   `json:"raced,omitempty"`

	// Degraded names why an incomplete run stopped (deadline,
	// conflict-budget, solution-cap, cube-abandoned, budget). Empty on
	// complete runs. A degraded answer is still HTTP 200: the solutions
	// found so far are valid diagnoses, just not provably all of them.
	Degraded string `json:"degraded,omitempty"`

	// Cube fault-tolerance counters of this run's sharded enumeration.
	CubePanics    int `json:"cubePanics,omitempty"`
	CubeRetries   int `json:"cubeRetries,omitempty"`
	CubeSteals    int `json:"cubeSteals,omitempty"`
	CubeAbandoned int `json:"cubeAbandoned,omitempty"`

	// RequestID names this request in the server's logs and trace store
	// (GET /debug/diag/trace/{id}).
	RequestID string `json:"requestId,omitempty"`

	// Timings is the request's span breakdown: where the wall time went
	// (queue, pool, encode, solve, …), with per-round and per-cube child
	// spans and their solver-work counters.
	Timings *trace.SpanJSON `json:"timings,omitempty"`

	// FlightRecorder is attached to degraded (complete=false) responses
	// only: the solver control-flow events of this run, so the "why did
	// it stop" question is answerable from the response alone. Complete
	// runs keep theirs reachable via /debug/diag/trace/{id}.
	FlightRecorder []trace.Event `json:"flightRecorder,omitempty"`

	// events is the run's full recorder window, wire-attached only when
	// degraded but always retained in the trace store.
	events []trace.Event
}

type errorJSON struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorJSON{Error: fmt.Sprintf(format, args...)})
}

// errAttemptPanic marks a diagnosis attempt that panicked and was
// recovered below the scheduler; the retry loop decides whether the
// attempt is safe to repeat.
var errAttemptPanic = errors.New("service: diagnosis attempt panicked")

// serveWithRetry runs serve with a bounded exponential-backoff retry
// loop. Failpoint-injected failures fire before any diagnosis work and
// are always retried; recovered panics are retried only when the
// caller declares the attempt idempotent (the declarative /diagnose
// paths are; the stateful incremental edit is not — a panic may have
// left the session's test list half-edited).
func (s *Server) serveWithRetry(ctx context.Context, idempotent bool,
	serve func(context.Context) (*DiagnoseResponse, error)) (*DiagnoseResponse, error) {

	backoff := retryBackoff
	for attempt := 0; ; attempt++ {
		resp, err := s.serveOnce(ctx, serve)
		if err == nil || attempt >= diagnoseRetries {
			return resp, err
		}
		transient := failpoint.IsInjected(err) || (idempotent && errors.Is(err, errAttemptPanic))
		if !transient || ctx.Err() != nil {
			return resp, err
		}
		s.requestRetries.Inc()
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(backoff):
		}
		backoff *= 2
	}
}

// serveOnce runs one diagnosis attempt: the service-level failpoint
// fires first (so chaos runs can fail an attempt without executing
// it), and a panic below this frame becomes an error instead of
// reaching the scheduler.
func (s *Server) serveOnce(ctx context.Context, serve func(context.Context) (*DiagnoseResponse, error)) (resp *DiagnoseResponse, err error) {
	defer func() {
		if v := recover(); v != nil {
			s.notePanic()
			resp, err = nil, fmt.Errorf("%w: %v", errAttemptPanic, v)
		}
	}()
	if ferr := failpoint.Inject(FailpointDiagnose); ferr != nil {
		return nil, ferr
	}
	return serve(ctx)
}

// annotateFaults copies the run's cube fault counters onto the wire
// and, for incomplete runs, classifies why the run stopped.
func (s *Server) annotateFaults(ctx context.Context, resp *DiagnoseResponse, perShard []cnf.ShardStats, maxSolutions int, maxConflicts int64) {
	for _, st := range perShard {
		resp.CubePanics += st.Panics
		resp.CubeRetries += st.Retries
		resp.CubeSteals += st.Steals
		resp.CubeAbandoned += st.Abandoned
	}
	if resp.CubeRetries > 0 {
		s.cubeRetries.Add(int64(resp.CubeRetries))
	}
	if resp.Complete {
		return
	}
	switch {
	case resp.CubeAbandoned > 0:
		resp.Degraded = "cube-abandoned"
	case ctx.Err() != nil:
		resp.Degraded = "deadline"
	case maxSolutions > 0 && len(resp.Solutions) >= maxSolutions:
		resp.Degraded = "solution-cap"
	case maxConflicts > 0:
		resp.Degraded = "conflict-budget"
	default:
		resp.Degraded = "budget"
	}
}

// countShards reports the parallel enumeration stages of a run,
// excluding the sequential sample pseudo-stage (Shard == -1) — the
// number a client can compare against its requested shard count.
func countShards(perShard []cnf.ShardStats) int {
	n := 0
	for _, st := range perShard {
		if st.Shard >= 0 {
			n++
		}
	}
	return n
}

// resolveCircuit parses the request's netlist (or generates the named
// suite circuit) and fingerprints it.
func resolveCircuit(req *DiagnoseRequest) (*circuit.Circuit, string, error) {
	switch {
	case req.Bench != "":
		c, err := circuit.ParseBench("request", strings.NewReader(req.Bench))
		if err != nil {
			return nil, "", fmt.Errorf("parse bench: %w", err)
		}
		return c, Fingerprint(c), nil
	case req.Circuit != "":
		c, err := gen.ByName(req.Circuit)
		if err != nil {
			return nil, "", err
		}
		return c, Fingerprint(c), nil
	default:
		return nil, "", errors.New("request needs bench (netlist text) or circuit (suite name)")
	}
}

// decodeTests validates and converts the wire tests.
func decodeTests(c *circuit.Circuit, in []TestJSON) (circuit.TestSet, error) {
	if len(in) == 0 {
		return nil, errors.New("request needs a non-empty test list")
	}
	tests := make(circuit.TestSet, len(in))
	for i, tj := range in {
		if len(tj.Vector) != len(c.Inputs) {
			return nil, fmt.Errorf("test %d: vector has %d bits, circuit has %d inputs", i, len(tj.Vector), len(c.Inputs))
		}
		if tj.Output < 0 || tj.Output >= len(c.Gates) {
			return nil, fmt.Errorf("test %d: output gate %d out of range", i, tj.Output)
		}
		vec := make([]bool, len(tj.Vector))
		for j, ch := range tj.Vector {
			switch ch {
			case '0':
			case '1':
				vec[j] = true
			default:
				return nil, fmt.Errorf("test %d: vector must be 0/1 characters", i)
			}
		}
		tests[i] = circuit.Test{Vector: vec, Output: tj.Output, Want: tj.Want}
	}
	return tests, nil
}

func parseEncoding(name string) (cnf.CardEncoding, error) {
	switch strings.ToLower(name) {
	case "", "seq", "seqcounter":
		return cnf.SeqCounter, nil
	case "totalizer":
		return cnf.Totalizer, nil
	case "pairwise":
		return cnf.Pairwise, nil
	default:
		return 0, fmt.Errorf("unknown encoding %q (seqcounter, totalizer, pairwise)", name)
	}
}

func (req *DiagnoseRequest) runSpec() RunSpec {
	k := req.K
	if k < 1 {
		k = 1
	}
	return RunSpec{
		K:            k,
		Shards:       req.Shards,
		SampleCap:    req.SampleCap,
		Candidates:   req.Candidates,
		MaxSolutions: req.MaxSolutions,
		MaxConflicts: req.MaxConflicts,
		Solver:       req.Solver,
		Enum:         req.Enum,
	}
}

// resolvedSolverName maps a wire solver name to the configuration name
// reported back ("" reads as "default"). The name is validated before
// any work runs, so resolution here cannot fail.
func resolvedSolverName(name string) string {
	cfg, err := sat.ConfigByName(name)
	if err != nil {
		return name
	}
	return cfg.Name
}

// resolvedEnumName is resolvedSolverName for enumeration modes ("" reads
// as "legacy").
func resolvedEnumName(name string) string {
	mode, err := sat.EnumModeByName(name)
	if err != nil {
		return name
	}
	return mode.String()
}

func (s *Server) handleDiagnose(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	var req DiagnoseRequest
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.failures.Inc()
		writeError(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	c, fp, err := resolveCircuit(&req)
	if err != nil {
		s.failures.Inc()
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	tests, err := decodeTests(c, req.Tests)
	if err != nil {
		s.failures.Inc()
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	encoding, err := parseEncoding(req.Encoding)
	if err != nil {
		s.failures.Inc()
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if _, err := sat.ConfigByName(req.Solver); err != nil {
		s.failures.Inc()
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if _, err := sat.EnumModeByName(req.Enum); err != nil {
		s.failures.Inc()
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	engine := req.Engine
	if engine == "" {
		engine = "bsat"
	}
	mode := req.Mode
	if mode == "" {
		mode = "auto"
	}
	warmable := engine == "bsat"
	switch mode {
	case "auto", "cold":
	case "warm":
		if !warmable {
			s.failures.Inc()
			writeError(w, http.StatusBadRequest, "mode warm requires engine bsat (the pooled SAT path), got %q", engine)
			return
		}
	default:
		s.failures.Inc()
		writeError(w, http.StatusBadRequest, "unknown mode %q (auto, warm, cold)", mode)
		return
	}
	useWarm := mode != "cold" && warmable

	ctx, cancel := s.sched.RequestContext(r.Context(), time.Duration(req.TimeoutMs)*time.Millisecond)
	defer cancel()

	// The root request span starts at admission (parsing is already
	// done), so its duration is the wall time the phase breakdown must
	// account for.
	rid := s.nextRequestID()
	span := trace.New("request")
	span.SetDetail(engine)
	ctx = trace.NewContext(ctx, span)

	var resp *DiagnoseResponse
	var derr error
	err = s.sched.Do(ctx, func(ctx context.Context) {
		// /diagnose is declarative (the request carries its whole
		// test-set), so even a panicked attempt is safe to retry.
		resp, derr = s.serveWithRetry(ctx, true, func(ctx context.Context) (*DiagnoseResponse, error) {
			if useWarm {
				return s.serveWarm(ctx, c, fp, tests, &req, encoding, engine)
			}
			return s.serveCold(ctx, c, tests, &req, encoding, engine)
		})
	})
	s.finish(w, resp, derr, err, rid, span)
}

// nextRequestID mints the per-process request identifier used in logs,
// responses and the trace store.
func (s *Server) nextRequestID() string {
	return fmt.Sprintf("r%d", s.reqID.Add(1))
}

// serveWarm runs the pooled path: acquire (or single-flight build) the
// warm session for the (circuit, fault-model) key and diagnose on it.
func (s *Server) serveWarm(ctx context.Context, c *circuit.Circuit, fp string, tests circuit.TestSet,
	req *DiagnoseRequest, encoding cnf.CardEncoding, engine string) (*DiagnoseResponse, error) {

	model := FaultModel{Encoding: encoding, ForceZero: req.ForceZero, ConeOnly: req.ConeOnly}
	spec := req.runSpec()
	key := SessionKey(fp, model)
	poolSpan := trace.FromContext(ctx).Child("pool")
	entry, outcome, err := s.pool.AcquireDetail(key, func() (Built, error) {
		maxK := spec.K
		if maxK < DefaultWarmMaxK {
			maxK = DefaultWarmMaxK
		}
		return Built{
			Session:     NewWarmSession(c, model, maxK),
			Circuit:     c,
			Model:       model,
			MaxK:        maxK,
			Source:      s.benchSource(c),
			Fingerprint: fp,
		}, nil
	})
	if poolSpan != nil {
		poolSpan.SetDetail(outcome)
		poolSpan.End()
		trace.FromContext(ctx).Phase("pool", poolSpan.Duration())
	}
	if err != nil {
		return nil, err
	}
	hit := outcome != OutcomeColdBuild
	defer s.pool.Release(entry)
	// A race needs an unpinned solver and a monolithic enumeration (the
	// sharded path already parallelizes; racing it would oversubscribe).
	raced := s.portfolio && spec.Solver == "" && spec.Shards <= 1
	var rep *WarmReport
	if raced {
		var winner string
		rep, winner, err = entry.DiagnosePortfolio(ctx, tests, spec)
		if err == nil {
			s.portfolioRaces.Inc()
			if c := s.portfolioWins[winner]; c != nil {
				c.Inc()
			}
		}
	} else {
		rep, err = entry.Diagnose(ctx, tests, spec)
	}
	if err != nil {
		return nil, err
	}
	respMode := "cold"
	if hit {
		respMode = "warm"
	}
	resp := &DiagnoseResponse{
		Engine:     engine,
		Mode:       respMode,
		Solutions:  rep.Solutions,
		Complete:   rep.Complete,
		Guaranteed: true,
		Session:    entry.ID(),
		PoolHit:    hit,
		Rebuilt:    rep.Rebuilt,
		Tests:      rep.Copies,
		NewCopies:  rep.NewCopies,
		Vars:       rep.Vars,
		Clauses:    rep.Clauses,
		Shards:     countShards(rep.PerShard),
		Stats:      solverStatsJSON(rep.Stats),
		Solver:     rep.Solver,
		Enum:       rep.Enum,
		Raced:      raced,
	}
	resp.events = rep.Events
	s.annotateFaults(ctx, resp, rep.PerShard, spec.MaxSolutions, spec.MaxConflicts)
	return resp, nil
}

// benchSource renders the circuit as self-contained .bench text for the
// journal. Empty when persistence is off — the render cost is only paid
// on journaled cold builds — or when the circuit contains constructs
// .bench cannot express (that session simply isn't journaled).
func (s *Server) benchSource(c *circuit.Circuit) string {
	if s.journal == nil {
		return ""
	}
	var sb strings.Builder
	if err := circuit.WriteBench(&sb, c); err != nil {
		return ""
	}
	return sb.String()
}

// serveCold bypasses the pool: one monolithic core.Diagnose call.
func (s *Server) serveCold(ctx context.Context, c *circuit.Circuit, tests circuit.TestSet,
	req *DiagnoseRequest, encoding cnf.CardEncoding, engine string) (*DiagnoseResponse, error) {

	// Cold runs build a throwaway solver, so they get a private flight
	// recorder via the context (core's option plumbing installs it).
	rec := trace.NewRecorder(0)
	ctx = trace.WithRecorder(ctx, rec)
	rep, err := core.Diagnose(ctx, core.Request{
		Engine:       engine,
		Circuit:      c,
		Tests:        tests,
		K:            req.K,
		Shards:       req.Shards,
		ShardSample:  req.SampleCap,
		MaxSolutions: req.MaxSolutions,
		MaxConflicts: req.MaxConflicts,
		Candidates:   req.Candidates,
		Encoding:     encoding,
		ForceZero:    req.ForceZero,
		ConeOnly:     req.ConeOnly,
		Solver:       req.Solver,
		Enum:         req.Enum,
	})
	if err != nil {
		return nil, err
	}
	sols := make([][]int, len(rep.Solutions))
	for i, sol := range rep.Solutions {
		sols[i] = sol.Gates
	}
	resp := &DiagnoseResponse{
		Engine:     rep.Engine,
		Mode:       "cold",
		Solutions:  sols,
		Complete:   rep.Complete,
		Guaranteed: rep.Guaranteed,
		Tests:      len(tests),
		Vars:       rep.Vars,
		Clauses:    rep.Clauses,
		Shards:     countShards(rep.PerShard),
		Stats:      solverStatsJSON(rep.Stats),
		Solver:     resolvedSolverName(req.Solver),
		Enum:       resolvedEnumName(req.Enum),
	}
	resp.events = rec.Snapshot()
	s.annotateFaults(ctx, resp, rep.PerShard, req.MaxSolutions, req.MaxConflicts)
	return resp, nil
}

// SessionTestsRequest is the POST /sessions/{id}/tests body: an edit of
// the session's current test-set plus optional knob overrides (zero
// values inherit the previous run).
type SessionTestsRequest struct {
	Add    []TestJSON `json:"add,omitempty"`
	Remove []int      `json:"remove,omitempty"` // positions in the current test list

	K            int    `json:"k,omitempty"`
	Shards       int    `json:"shards,omitempty"`
	SampleCap    int    `json:"sampleCap,omitempty"`
	Candidates   []int  `json:"candidates,omitempty"`
	MaxSolutions int    `json:"maxSolutions,omitempty"`
	MaxConflicts int64  `json:"maxConflicts,omitempty"`
	TimeoutMs    int64  `json:"timeoutMs,omitempty"`
	Solver       string `json:"solver,omitempty"` // "" inherits the previous run's
	Enum         string `json:"enum,omitempty"`   // "" inherits the previous run's
}

func (s *Server) handleSessionTests(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	id := r.PathValue("id")
	var req SessionTestsRequest
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.failures.Inc()
		writeError(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	if _, err := sat.ConfigByName(req.Solver); err != nil {
		s.failures.Inc()
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if _, err := sat.EnumModeByName(req.Enum); err != nil {
		s.failures.Inc()
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	entry, ok := s.pool.ByID(id)
	if !ok {
		s.failures.Inc()
		writeError(w, http.StatusNotFound, "unknown session %q (evicted or never created)", id)
		return
	}
	defer s.pool.Release(entry)
	add, err := decodeAdd(entry.Circuit(), req.Add)
	if err != nil {
		s.failures.Inc()
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	spec := RunSpec{
		K:            req.K,
		Shards:       req.Shards,
		SampleCap:    req.SampleCap,
		Candidates:   req.Candidates,
		MaxSolutions: req.MaxSolutions,
		MaxConflicts: req.MaxConflicts,
		Solver:       req.Solver,
		Enum:         req.Enum,
	}

	ctx, cancel := s.sched.RequestContext(r.Context(), time.Duration(req.TimeoutMs)*time.Millisecond)
	defer cancel()

	rid := s.nextRequestID()
	span := trace.New("request")
	span.SetDetail("incremental")
	ctx = trace.NewContext(ctx, span)

	var resp *DiagnoseResponse
	var derr error
	err = s.sched.Do(ctx, func(ctx context.Context) {
		// The incremental edit mutates the session's test list, so a
		// panicked attempt is NOT retried (idempotent=false); injected
		// pre-execution failures still are.
		resp, derr = s.serveWithRetry(ctx, false, func(ctx context.Context) (*DiagnoseResponse, error) {
			rep, active, ierr := entry.Incremental(ctx, add, req.Remove, spec)
			if ierr != nil {
				return nil, ierr
			}
			r := &DiagnoseResponse{
				Engine:     "bsat",
				Mode:       "incremental",
				Solutions:  rep.Solutions,
				Complete:   rep.Complete,
				Guaranteed: true,
				Session:    entry.ID(),
				PoolHit:    true,
				Tests:      len(active),
				NewCopies:  rep.NewCopies,
				Vars:       rep.Vars,
				Clauses:    rep.Clauses,
				Shards:     countShards(rep.PerShard),
				Stats:      solverStatsJSON(rep.Stats),
				Solver:     rep.Solver,
				Enum:       rep.Enum,
			}
			r.events = rep.Events
			s.annotateFaults(ctx, r, rep.PerShard, spec.MaxSolutions, spec.MaxConflicts)
			return r, nil
		})
	})
	s.finish(w, resp, derr, err, rid, span)
}

// decodeAdd is decodeTests allowing an empty list (pure retractions).
func decodeAdd(c *circuit.Circuit, in []TestJSON) (circuit.TestSet, error) {
	if len(in) == 0 {
		return nil, nil
	}
	return decodeTests(c, in)
}

// finish maps the (response, diagnosis error, scheduling error) triple
// onto the wire and records latency, the span breakdown, the per-phase
// histograms, the retained trace and the request log line. A deadline
// that fires mid-run with partial results still answers 200 (the
// degradation contract); only a request that produced nothing maps to
// an error status.
func (s *Server) finish(w http.ResponseWriter, resp *DiagnoseResponse, derr, schedErr error, rid string, span *trace.Span) {
	span.End()
	elapsed := span.Duration()
	fail := func(code int, format string, args ...any) {
		s.failures.Inc()
		msg := fmt.Sprintf(format, args...)
		s.traces.add(&RequestTrace{
			ID: rid, Time: time.Now(), Error: msg,
			ElapsedMs: float64(elapsed.Microseconds()) / 1e3,
			Timings:   span.Breakdown(),
		})
		s.log.Warn("request failed", "id", rid, "status", code,
			"elapsedMs", float64(elapsed.Microseconds())/1e3, "error", msg)
		writeError(w, code, "%s", msg)
	}
	var pe *PanicError
	switch {
	case errors.Is(schedErr, ErrOverloaded):
		fail(http.StatusTooManyRequests, "%v", schedErr)
		return
	case errors.Is(schedErr, ErrDraining):
		fail(http.StatusServiceUnavailable, "%v", schedErr)
		return
	case errors.Is(schedErr, ErrQueueTimeout):
		// The deadline expired while queued; no work ran. 503 tells the
		// client to back off and retry, unlike the mid-run 504.
		fail(http.StatusServiceUnavailable, "queue-timeout: %v", schedErr)
		return
	case errors.As(schedErr, &pe):
		// Recovered by the scheduler backstop: the process survived,
		// this request did not.
		s.lastPanic.Store(time.Now().UnixNano())
		fail(http.StatusInternalServerError, "%v", schedErr)
		return
	}
	if derr != nil {
		code := http.StatusUnprocessableEntity
		switch {
		case errors.Is(derr, cnf.ErrLadderWidth), errors.Is(derr, cnf.ErrBadEncoding):
			// Malformed request parameters, not a serving failure.
			code = http.StatusBadRequest
		case errors.Is(derr, errAttemptPanic):
			code = http.StatusInternalServerError
		}
		fail(code, "%v", derr)
		return
	}
	if resp == nil {
		// The run was cancelled before producing even a partial report.
		fail(http.StatusGatewayTimeout, "request produced no result: %v", schedErr)
		return
	}
	if resp.Degraded != "" {
		s.degradedResponses.Inc()
		s.lastDegraded.Store(time.Now().UnixNano())
	}
	resp.ElapsedMs = float64(elapsed.Microseconds()) / 1e3
	resp.RequestID = rid
	resp.Timings = span.Breakdown()
	if resp.Degraded != "" {
		// A degraded answer carries its own black box: the solver events
		// leading up to the budget/deadline exit travel with the reply.
		resp.FlightRecorder = resp.events
	}
	if h := s.latencies[resp.Mode]; h != nil {
		h.Observe(elapsed)
	}
	for name, d := range span.PhaseDurations() {
		if h := s.phases[name]; h != nil {
			h.Observe(d)
		}
	}
	s.traces.add(&RequestTrace{
		ID: rid, Time: time.Now(), Mode: resp.Mode, Engine: resp.Engine,
		Complete: resp.Complete, Degraded: resp.Degraded,
		ElapsedMs:      resp.ElapsedMs,
		Timings:        resp.Timings,
		FlightRecorder: resp.events,
	})
	s.log.Info("request", "id", rid, "mode", resp.Mode, "engine", resp.Engine,
		"solutions", len(resp.Solutions), "complete", resp.Complete,
		"degraded", resp.Degraded, "raced", resp.Raced, "poolHit", resp.PoolHit,
		"elapsedMs", resp.ElapsedMs)
	writeJSON(w, http.StatusOK, resp)
}

// HealthJSON is the GET /healthz reply. Live is process liveness
// (always true when the handler answers). Ready is false once draining
// began — load balancers should stop routing. Degraded means the
// server recently recovered a panic or served an incomplete answer:
// still serving, but worth a look.
type HealthJSON struct {
	OK       bool   `json:"ok"`
	Status   string `json:"status"` // ok | degraded | warming | draining
	Live     bool   `json:"live"`
	Ready    bool   `json:"ready"`
	Degraded bool   `json:"degraded"`
	UptimeMs int64  `json:"uptimeMs"`
	Sessions int    `json:"sessions"`
	Bytes    int64  `json:"bytes"`
	InFlight int64  `json:"inFlight"`
	Queued   int64  `json:"queued"`
	Workers  int    `json:"workers"`

	// Warming: warm-pool replay is still running; not-ready (503), but
	// live. JournalDegraded: the journal disabled itself after an I/O
	// error; serving continues without persistence.
	Warming         bool `json:"warming,omitempty"`
	JournalDegraded bool `json:"journalDegraded,omitempty"`

	PanicsRecovered   int64 `json:"panicsRecovered,omitempty"`
	DegradedResponses int64 `json:"degradedResponses,omitempty"`
}

// recentlyDegraded reports whether a panic or degraded response landed
// within the health window.
func (s *Server) recentlyDegraded() bool {
	cutoff := time.Now().Add(-degradedWindow).UnixNano()
	return s.lastPanic.Load() > cutoff || s.lastDegraded.Load() > cutoff
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	warming := s.warming.Load()
	ready := !s.sched.Draining() && !warming
	jdeg := s.journal.Degraded()
	degraded := s.recentlyDegraded() || jdeg
	status := "ok"
	code := http.StatusOK
	switch {
	case s.sched.Draining():
		status = "draining"
		code = http.StatusServiceUnavailable
	case warming:
		// Not-ready while the warm-pool replay runs — load balancers
		// hold traffic until the pool is rebuilt. Liveness (GET /livez)
		// stays 200 throughout.
		status = "warming"
		code = http.StatusServiceUnavailable
	case degraded:
		status = "degraded"
	}
	writeJSON(w, code, HealthJSON{
		OK:       ready && !degraded,
		Status:   status,
		Live:     true,
		Ready:    ready,
		Degraded: degraded,

		Warming:         warming,
		JournalDegraded: jdeg,
		UptimeMs:        time.Since(s.start).Milliseconds(),
		Sessions:        s.pool.Len(),
		Bytes:           s.pool.TotalBytes(),
		InFlight:        s.sched.InFlight.Value(),
		Queued:          s.sched.Queued.Value(),
		Workers:         s.sched.Workers(),

		PanicsRecovered:   s.panicsRecovered.Value() + s.sched.Panics.Value(),
		DegradedResponses: s.degradedResponses.Value(),
	})
}

// handleLivez is pure process liveness: always 200 while the handler
// can answer, regardless of warming or draining — the counterpart to
// /healthz readiness for orchestrators that separate the two probes.
func (s *Server) handleLivez(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]bool{"live": true})
}

func (s *Server) handleSessions(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.pool.Snapshot())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	metrics.WritePromValue(w, "diag_requests_total", "", s.requests.Value())
	metrics.WritePromValue(w, "diag_failures_total", "", s.failures.Value())
	metrics.WritePromValue(w, "diag_pool_hits_total", "", s.pool.Hits.Value())
	metrics.WritePromValue(w, "diag_pool_misses_total", "", s.pool.Misses.Value())
	metrics.WritePromValue(w, "diag_pool_evictions_total", "", s.pool.Evictions.Value())
	metrics.WritePromValue(w, "diag_pool_rebuilds_total", "", s.pool.Rebuilds.Value())
	metrics.WritePromValue(w, "diag_pool_sessions", "", s.pool.Sessions.Value())
	metrics.WritePromValue(w, "diag_pool_bytes", "", s.pool.Bytes.Value())
	metrics.WritePromValue(w, "diag_sched_inflight", "", s.sched.InFlight.Value())
	metrics.WritePromValue(w, "diag_sched_queued", "", s.sched.Queued.Value())
	metrics.WritePromValue(w, "diag_sched_rejected_total", "", s.sched.Rejected.Value())
	metrics.WritePromValue(w, "diag_sched_completed_total", "", s.sched.Completed.Value())
	metrics.WritePromValue(w, "diag_sched_queue_timeouts_total", "", s.sched.QueueTimeouts.Value())
	metrics.WritePromValue(w, "diag_panics_recovered", "", s.panicsRecovered.Value()+s.sched.Panics.Value())
	metrics.WritePromValue(w, "diag_cube_retries", "", s.cubeRetries.Value())
	metrics.WritePromValue(w, "diag_degraded_responses", "", s.degradedResponses.Value())
	metrics.WritePromValue(w, "diag_request_retries_total", "", s.requestRetries.Value())
	metrics.WritePromValue(w, "diag_portfolio_races_total", "", s.portfolioRaces.Value())
	for _, cfg := range sat.PortfolioConfigs() {
		if c := s.portfolioWins[cfg.Name]; c != nil {
			metrics.WritePromValue(w, "diag_portfolio_wins_total", fmt.Sprintf("config=%q", cfg.Name), c.Value())
		}
	}
	// Durability: journal writer counters plus the outcome of the boot
	// replay (all zero when persistence is disabled).
	if s.journal != nil {
		jst := s.journal.SnapshotStats()
		metrics.WritePromValue(w, "diag_journal_appends_total", "", jst.Appends)
		metrics.WritePromValue(w, "diag_journal_appended_bytes_total", "", jst.AppendedBytes)
		metrics.WritePromValue(w, "diag_journal_syncs_total", "", jst.Syncs)
		metrics.WritePromValue(w, "diag_journal_rotations_total", "", jst.Rotations)
		metrics.WritePromValue(w, "diag_journal_compactions_total", "", jst.Compactions)
		metrics.WritePromValue(w, "diag_journal_dropped_total", "", jst.Dropped)
		metrics.WritePromValue(w, "diag_journal_degraded", "", bool01(jst.Degraded))
		metrics.WritePromValue(w, "diag_journal_sealed", "", bool01(jst.Sealed))
	}
	metrics.WritePromValue(w, "diag_replay_sessions_total", "", s.replaySessions.Value())
	metrics.WritePromValue(w, "diag_replay_skipped_total", "", s.replaySkipped.Value())
	metrics.WritePromValue(w, "diag_replay_tests_total", "", s.replayTests.Value())
	metrics.WritePromValue(w, "diag_replay_duration_ms", "", s.replayMillis.Value())
	metrics.WritePromValue(w, "diag_replay_warming", "", bool01(s.warming.Load()))
	if rs := s.replaySt.Load(); rs != nil {
		metrics.WritePromValue(w, "diag_replay_journal_records", "", int64(rs.Records))
		metrics.WritePromValue(w, "diag_replay_corrupt_skipped_total", "", int64(rs.Skipped))
		metrics.WritePromValue(w, "diag_replay_torn_tail_bytes", "", rs.TornTailBytes)
		metrics.WritePromValue(w, "diag_replay_sealed_boot", "", bool01(rs.Sealed))
	}
	// Queue wait and execution are split at the admission boundary, so
	// saturation (growing queue wait, flat exec) is distinguishable from
	// slow diagnoses (flat queue wait, growing exec) at a glance.
	s.sched.QueueWait.WriteProm(w, "diag_queue_wait_seconds", "")
	s.sched.Exec.WriteProm(w, "diag_exec_seconds", "")
	for _, p := range spanPhases {
		s.phases[p].WriteProm(w, "diag_phase_seconds", fmt.Sprintf("phase=%q", p))
	}
	for mode, h := range s.latencies {
		h.WriteProm(w, "diag_request_seconds", fmt.Sprintf("mode=%q", mode))
	}
	// Per-session SAT cost (satellite of cnf.DiagSession.Stats): enough
	// for dashboards to spot a session whose clause DB or solver work is
	// running away.
	for _, info := range s.pool.Snapshot() {
		l := fmt.Sprintf("session=%q", metrics.Escape(info.ID))
		metrics.WritePromValue(w, "diag_session_bytes", l, info.Bytes)
		metrics.WritePromValue(w, "diag_session_uses", l, info.Uses)
		metrics.WritePromValue(w, "diag_session_copies", l, int64(info.Stats.Copies))
		metrics.WritePromValue(w, "diag_session_vars", l, int64(info.Stats.Vars))
		metrics.WritePromValue(w, "diag_session_clauses", l, int64(info.Stats.Clauses))
		metrics.WritePromValue(w, "diag_session_rounds", l, int64(info.Stats.Rounds))
		metrics.WritePromValue(w, "diag_session_budgeted_rounds", l, int64(info.Stats.BudgetedRounds))
		metrics.WritePromValue(w, "diag_session_conflicts", l, info.Stats.Solver.Conflicts)
		metrics.WritePromValue(w, "diag_session_decisions", l, info.Stats.Solver.Decisions)
		metrics.WritePromValue(w, "diag_session_propagations", l, info.Stats.Solver.Propagations)
		metrics.WritePromValue(w, "diag_session_lbd_restarts", l, info.Stats.Solver.LBDRestarts)
		metrics.WritePromValue(w, "diag_session_vivified_lits", l, info.Stats.Solver.VivifiedLits)
		metrics.WritePromValue(w, "diag_session_chrono_backtracks", l, info.Stats.Solver.ChronoBacktracks)
		metrics.WritePromValue(w, "diag_session_early_terms", l, info.Stats.Solver.EarlyTerms)
		metrics.WritePromValue(w, "diag_session_continue_backjumps", l, info.Stats.Solver.ContinueBackjumps)
		metrics.WritePromValue(w, "diag_session_skipped_decisions", l, info.Stats.Solver.SkippedDecisions)
	}
}

// ScenarioJSON is the GET /scenario reply: a self-contained faulty
// netlist with failing tests, ready to POST to /diagnose. It exists so
// a bare curl (or the load generator) can exercise the service without
// local tooling.
type ScenarioJSON struct {
	Circuit string     `json:"circuit"`
	Bench   string     `json:"bench"`
	Tests   []TestJSON `json:"tests"`
	Sites   []int      `json:"sites"` // actual injected error gates
	K       int        `json:"k"`     // number of injected errors
}

func (s *Server) handleScenario(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	name := q.Get("circuit")
	if name == "" {
		name = "s298x"
	}
	inject := intParam(q.Get("inject"), 1)
	seed := int64(intParam(q.Get("seed"), 1))
	count := intParam(q.Get("tests"), 8)
	golden, err := gen.ByName(name)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	faulty, fs, err := faults.Inject(golden, faults.Options{Count: inject, Seed: seed})
	if err != nil {
		writeError(w, http.StatusInternalServerError, "inject: %v", err)
		return
	}
	tests, err := tgen.Random(golden, faulty, tgen.Options{Count: count, Seed: seed})
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "no failing tests for this scenario (try another seed): %v", err)
		return
	}
	var sb strings.Builder
	if err := circuit.WriteBench(&sb, faulty); err != nil {
		writeError(w, http.StatusInternalServerError, "render bench: %v", err)
		return
	}
	tj := make([]TestJSON, len(tests))
	for i, t := range tests {
		var vb strings.Builder
		for _, b := range t.Vector {
			if b {
				vb.WriteByte('1')
			} else {
				vb.WriteByte('0')
			}
		}
		tj[i] = TestJSON{Vector: vb.String(), Output: t.Output, Want: t.Want}
	}
	writeJSON(w, http.StatusOK, ScenarioJSON{
		Circuit: name,
		Bench:   sb.String(),
		Tests:   tj,
		Sites:   fs.Sites(),
		K:       inject,
	})
}

func bool01(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func intParam(s string, def int) int {
	if s == "" {
		return def
	}
	var v int
	if _, err := fmt.Sscanf(s, "%d", &v); err != nil {
		return def
	}
	return v
}
