package service

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/sat"
	"repro/internal/trace"
)

// DiagnosePortfolio is the racing variant of PoolEntry.Diagnose: the
// warm session is forked once per portfolio configuration
// (sat.PortfolioConfigs), every fork searches the same request under
// its own configuration, and the first fork to finish wins — the
// others are cancelled and drain promptly (the solver polls its
// context every few dozen conflicts). winner reports the winning
// configuration's name.
//
// Racing is sound because configurations are trajectory-only: a
// completed enumeration's canonical solution set is identical under
// every configuration, so whichever fork finishes first answers with
// the same bytes the others would have. The forks keep the parent's
// learnt clauses (Clone(true)), and the parent session itself is never
// searched on — it only encodes missing test copies — so it stays warm
// and unpoisoned for the next request regardless of how the race ends.
func (e *PoolEntry) DiagnosePortfolio(ctx context.Context, tests circuit.TestSet, spec RunSpec) (rep *WarmReport, winner string, err error) {
	if spec.K < 1 {
		spec.K = 1
	}
	if len(tests) == 0 {
		return nil, "", fmt.Errorf("service: portfolio diagnosis requires a non-empty test-set")
	}
	if spec.Solver != "" {
		return nil, "", fmt.Errorf("service: a portfolio race cannot also pin solver %q", spec.Solver)
	}
	span := trace.FromContext(ctx)
	lockWait := time.Now()
	err = e.Run(func(sess *cnf.DiagSession, circ *circuit.Circuit) error {
		span.PhaseSince("session-wait", lockWait)
		rebuilt := false
		if !sess.CanBound(spec.K) {
			rebuildStart := time.Now()
			e.rebuild(NewWarmSession(circ, e.model, spec.K), spec.K)
			sess = e.sess
			rebuilt = true
			span.PhaseSince("rebuild", rebuildStart)
		}
		active, encoded, encode := e.ensureTests(tests)
		e.current = active
		e.lastSpec = spec
		span.Phase("encode", encode)

		configs := sat.PortfolioConfigs()
		raceCtx, cancel := context.WithCancel(ctx)
		defer cancel()
		type outcome struct {
			rep  *WarmReport
			err  error
			name string
		}
		solveStart := time.Now()
		results := make(chan outcome, len(configs))
		var wg sync.WaitGroup
		for _, cfg := range configs {
			fork := sess.ForkSession(true)
			fork.Solver.SetSearchConfig(cfg)
			wg.Add(1)
			go func(cfg sat.SearchConfig, fork *cnf.DiagSession) {
				defer wg.Done()
				// Each fork gets its own child span so the breakdown
				// shows every racer's rounds, winner and losers alike.
				fctx := raceCtx
				if fs := span.Child("fork:" + cfg.Name); fs != nil {
					fctx = trace.NewContext(raceCtx, fs)
					defer fs.End()
				}
				r, rerr := diagnoseActive(fctx, fork, active, spec)
				results <- outcome{rep: r, err: rerr, name: cfg.Name}
			}(cfg, fork)
		}
		// First finisher wins; the cancel tells the losers to stop. The
		// loop still collects every outcome, so the race never leaks a
		// goroutine past the request that started it.
		var firstErr error
		for range configs {
			o := <-results
			if o.err != nil {
				if firstErr == nil {
					firstErr = o.err
				}
				continue
			}
			if rep == nil {
				rep, winner = o.rep, o.name
				cancel()
			}
		}
		wg.Wait()
		if rep == nil {
			return firstErr
		}
		// The race's wall time, not the winner's internal solve time:
		// the request waited for the whole first-to-finish window.
		span.Phase("solve", time.Since(solveStart))
		rep.NewCopies = encoded
		rep.Encode = encode
		rep.Rebuilt = rebuilt
		rep.Solver = winner
		return nil
	})
	if err != nil {
		return nil, "", err
	}
	return rep, winner, nil
}
