package service

import (
	"net/http"
	"sync"
	"time"

	"repro/internal/trace"
)

// DefaultTraceStoreSize is how many completed request traces the server
// retains for GET /debug/diag/trace.
const DefaultTraceStoreSize = 64

// RequestTrace is one retained request: identity, outcome, the span
// breakdown and the flight-recorder window. It is what
// GET /debug/diag/trace/{id} returns — including for requests whose
// response did not carry the dump on the wire (only degraded responses
// do), so a slow-but-complete request can still be examined after the
// fact.
type RequestTrace struct {
	ID        string          `json:"id"`
	Time      time.Time       `json:"time"`
	Mode      string          `json:"mode,omitempty"`
	Engine    string          `json:"engine,omitempty"`
	Complete  bool            `json:"complete"`
	Degraded  string          `json:"degraded,omitempty"`
	Error     string          `json:"error,omitempty"`
	ElapsedMs float64         `json:"elapsedMs"`
	Timings   *trace.SpanJSON `json:"timings,omitempty"`
	// FlightRecorder is the solver-event window of this request (shared
	// ring cursors on the warm path, a private ring on the cold path).
	FlightRecorder []trace.Event `json:"flightRecorder,omitempty"`
}

// TraceSummary is the list-endpoint view: enough to pick a request
// worth dumping in full.
type TraceSummary struct {
	ID        string  `json:"id"`
	Mode      string  `json:"mode,omitempty"`
	Engine    string  `json:"engine,omitempty"`
	Complete  bool    `json:"complete"`
	Degraded  string  `json:"degraded,omitempty"`
	Error     string  `json:"error,omitempty"`
	ElapsedMs float64 `json:"elapsedMs"`
	Events    int     `json:"events"`
}

// traceStore is a fixed-size ring of the most recent request traces.
type traceStore struct {
	mu   sync.Mutex
	ring []*RequestTrace
	next int
}

func newTraceStore(n int) *traceStore {
	if n <= 0 {
		n = DefaultTraceStoreSize
	}
	return &traceStore{ring: make([]*RequestTrace, n)}
}

func (ts *traceStore) add(rt *RequestTrace) {
	ts.mu.Lock()
	ts.ring[ts.next%len(ts.ring)] = rt
	ts.next++
	ts.mu.Unlock()
}

// list returns the retained traces, newest first.
func (ts *traceStore) list() []*RequestTrace {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	out := make([]*RequestTrace, 0, len(ts.ring))
	for i := ts.next - 1; i >= ts.next-len(ts.ring) && i >= 0; i-- {
		if rt := ts.ring[i%len(ts.ring)]; rt != nil {
			out = append(out, rt)
		}
	}
	return out
}

func (ts *traceStore) get(id string) *RequestTrace {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	for _, rt := range ts.ring {
		if rt != nil && rt.ID == id {
			return rt
		}
	}
	return nil
}

// handleTraceList answers GET /debug/diag/trace: summaries of the
// retained requests, newest first.
func (s *Server) handleTraceList(w http.ResponseWriter, r *http.Request) {
	full := s.traces.list()
	out := make([]TraceSummary, len(full))
	for i, rt := range full {
		out[i] = TraceSummary{
			ID:        rt.ID,
			Mode:      rt.Mode,
			Engine:    rt.Engine,
			Complete:  rt.Complete,
			Degraded:  rt.Degraded,
			Error:     rt.Error,
			ElapsedMs: rt.ElapsedMs,
			Events:    len(rt.FlightRecorder),
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// handleTraceGet answers GET /debug/diag/trace/{id}: the full span
// breakdown and flight-recorder dump of one retained request.
func (s *Server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rt := s.traces.get(id)
	if rt == nil {
		writeError(w, http.StatusNotFound, "no retained trace for request %q (the store keeps the last %d)", id, len(s.traces.ring))
		return
	}
	writeJSON(w, http.StatusOK, rt)
}
