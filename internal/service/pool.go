package service

import (
	"container/list"
	"fmt"
	"sync"
	"time"

	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/journal"
	"repro/internal/metrics"
)

// PoolOptions configures a SessionPool.
type PoolOptions struct {
	// MaxBytes bounds the pool's estimated resident size; the least
	// recently used idle sessions are evicted past it. 0 means the
	// default of 512 MiB. The bound is soft: sessions serving in-flight
	// requests are never evicted, so a fully busy pool can exceed it
	// until requests drain.
	MaxBytes int64
	// MaxSessions bounds the number of warm sessions (0 = 64).
	MaxSessions int
	// Journal, when non-nil, receives the pool's session lifecycle
	// records (build, test-set deltas, eviction) so a restarted server
	// can replay its warm state. nil disables persistence.
	Journal *journal.Writer
}

// DefaultMaxBytes is the default pool size budget.
const DefaultMaxBytes = 512 << 20

// DefaultMaxSessions is the default warm-session count bound.
const DefaultMaxSessions = 64

// SessionPool keeps diagnosis sessions warm per (circuit, fault-model)
// key. It provides:
//
//   - single-flight construction: concurrent requests for the same cold
//     key build the session exactly once, the rest wait for it;
//   - per-session serialization: PoolEntry.Run queues concurrent
//     requests against one session (a DiagSession is not safe for
//     concurrent use) instead of letting them race;
//   - LRU eviction with byte-size accounting: the estimated resident
//     size of every session is tracked, and idle least-recently-used
//     sessions are dropped when the budget is exceeded.
type SessionPool struct {
	mu         sync.Mutex
	opts       PoolOptions
	jw         *journal.Writer // nil when persistence is disabled
	byKey      map[string]*PoolEntry
	byID       map[string]*PoolEntry
	lru        *list.List // front = most recently used
	totalBytes int64
	nextID     int64

	// Serving counters, exposed on /metrics.
	Hits      metrics.Counter
	Misses    metrics.Counter
	Evictions metrics.Counter
	Rebuilds  metrics.Counter
	Bytes     metrics.Gauge
	Sessions  metrics.Gauge
}

// NewSessionPool creates an empty pool.
func NewSessionPool(opts PoolOptions) *SessionPool {
	if opts.MaxBytes <= 0 {
		opts.MaxBytes = DefaultMaxBytes
	}
	if opts.MaxSessions <= 0 {
		opts.MaxSessions = DefaultMaxSessions
	}
	return &SessionPool{
		opts:  opts,
		jw:    opts.Journal,
		byKey: make(map[string]*PoolEntry),
		byID:  make(map[string]*PoolEntry),
		lru:   list.New(),
	}
}

// PoolEntry is one warm session with its construction state and
// bookkeeping. All session access goes through Run (per-session
// serialization); pool bookkeeping fields are guarded by the pool
// mutex.
type PoolEntry struct {
	pool *SessionPool
	id   string
	key  string

	ready chan struct{} // closed when construction settled
	err   error         // construction error (set before ready closes)

	// runMu serializes all use of the session; it is distinct from the
	// pool mutex so a long diagnosis never blocks pool bookkeeping.
	runMu sync.Mutex
	sess  *cnf.DiagSession
	circ  *circuit.Circuit
	model FaultModel
	maxK  int

	// testIndex maps canonical test keys to encoded copy indices, so a
	// re-sent test reuses its copy instead of re-encoding.
	testIndex map[string]int
	// current is the active test list (copy indices, in request order)
	// of the most recent diagnosis — the base the incremental endpoint
	// edits.
	current []int
	// lastSpec remembers the most recent run's knobs as incremental
	// defaults.
	lastSpec RunSpec

	// Journal mirror, guarded by pool.mu: the session's durable
	// identity (self-contained bench text + fingerprint, set once at
	// build publish) and the live test-set/K the last run left behind —
	// exactly what a compaction snapshot must emit for this session. An
	// empty jbench means the session is not journalable (e.g. its
	// circuit cannot be rendered as .bench text) and is skipped.
	jbench string
	jfp    string
	jtests []journal.TestRec
	jk     int
	// Staging area for journal records produced inside Run's fn (under
	// runMu): Run's post-accounting applies them under pool.mu, the
	// journal's serialization point, so a compaction snapshot can never
	// interleave with a half-applied delta.
	jstaged      []journal.Record
	jstagedTests []journal.TestRec
	jstagedK     int
	jstagedSet   bool

	// Guarded by pool.mu.
	bytes    int64
	elem     *list.Element
	refs     int
	evicted  bool
	uses     int64
	created  time.Time
	lastUsed time.Time
	// statsSnap caches the session's cost snapshot after each run so
	// /metrics never has to queue behind an in-flight diagnosis.
	statsSnap cnf.SessionStats
}

// ID returns the entry's stable session identifier (the /sessions/{id}
// path segment).
func (e *PoolEntry) ID() string { return e.id }

// Key returns the pool key the entry is stored under.
func (e *PoolEntry) Key() string { return e.key }

// Circuit returns the parsed circuit behind the session.
func (e *PoolEntry) Circuit() *circuit.Circuit { return e.circ }

// Built is what a pool builder returns: the warm session and its
// identity. Source and Fingerprint feed the journal: Source is the
// circuit as self-contained .bench text (empty = don't journal this
// session), Fingerprint its structural hash for replay verification.
type Built struct {
	Session     *cnf.DiagSession
	Circuit     *circuit.Circuit
	Model       FaultModel
	MaxK        int
	Source      string
	Fingerprint string
}

// Acquire outcomes reported by AcquireDetail, in the vocabulary the
// request spans use for the pool-lookup phase detail.
const (
	// OutcomeColdBuild: no warm session existed; this request built it.
	OutcomeColdBuild = "cold-build"
	// OutcomeWarmHit: a warm session was ready immediately.
	OutcomeWarmHit = "warm-hit"
	// OutcomeSingleFlight: another request was already building the
	// session; this one waited for that build instead of duplicating it.
	OutcomeSingleFlight = "singleflight-wait"
)

// Acquire returns the entry for key, building it with build exactly
// once per cold key regardless of how many requests race (single
// flight). hit reports whether a warm session was reused. The caller
// must Release the entry when done with it; until then the entry is
// pinned against eviction.
func (p *SessionPool) Acquire(key string, build func() (Built, error)) (e *PoolEntry, hit bool, err error) {
	e, outcome, err := p.AcquireDetail(key, build)
	return e, outcome != OutcomeColdBuild && err == nil, err
}

// AcquireDetail is Acquire with the lookup outcome spelled out:
// OutcomeColdBuild, OutcomeWarmHit or OutcomeSingleFlight. The
// distinction matters for tracing — a "slow pool phase" means
// construction cost on a cold build but lock/queue convoying on a
// single-flight wait, and the two are fixed differently.
func (p *SessionPool) AcquireDetail(key string, build func() (Built, error)) (e *PoolEntry, outcome string, err error) {
	for {
		p.mu.Lock()
		e = p.byKey[key]
		if e == nil {
			p.nextID++
			e = &PoolEntry{
				pool:      p,
				id:        fmt.Sprintf("s%d", p.nextID),
				key:       key,
				ready:     make(chan struct{}),
				testIndex: make(map[string]int),
				refs:      1,
				created:   time.Now(),
				lastUsed:  time.Now(),
			}
			e.elem = p.lru.PushFront(e)
			p.byKey[key] = e
			p.byID[e.id] = e
			p.Misses.Inc()
			p.mu.Unlock()

			built, berr := build()
			if berr != nil {
				e.err = berr
				close(e.ready)
				p.mu.Lock()
				p.dropLocked(e)
				e.refs--
				p.mu.Unlock()
				return nil, OutcomeColdBuild, berr
			}
			// The entry is already listed in the maps, so Snapshot (and
			// /metrics) can observe it mid-build: publish the built
			// fields under the pool lock before waking the waiters.
			snap := built.Session.Stats()
			p.mu.Lock()
			e.sess = built.Session
			e.circ = built.Circuit
			e.model = built.Model
			e.maxK = built.MaxK
			e.statsSnap = snap
			e.bytes = sessionBytes(snap)
			p.totalBytes += e.bytes
			if built.Source != "" {
				e.jbench = built.Source
				e.jfp = built.Fingerprint
				p.journalLocked(e.builtRecordLocked())
			}
			p.evictLocked(e)
			p.updateGaugesLocked()
			p.mu.Unlock()
			close(e.ready)
			return e, OutcomeColdBuild, nil
		}
		// Existing entry (possibly still building): pin it, then wait
		// for construction to settle outside the pool lock. Whether the
		// entry was already ready is the warm-hit vs single-flight-wait
		// distinction the trace reports.
		e.refs++
		p.lru.MoveToFront(e.elem)
		p.mu.Unlock()
		outcome := OutcomeWarmHit
		select {
		case <-e.ready:
		default:
			outcome = OutcomeSingleFlight
		}
		<-e.ready
		if e.err != nil {
			p.Release(e)
			return nil, outcome, e.err
		}
		p.mu.Lock()
		if e.evicted {
			// Evicted while we waited; unpin and retry with a fresh build.
			p.mu.Unlock()
			p.Release(e)
			continue
		}
		e.lastUsed = time.Now()
		p.mu.Unlock()
		p.Hits.Inc()
		return e, outcome, nil
	}
}

// ByID returns the warm entry with the given session id, pinned against
// eviction (the caller must Release it), or false when unknown.
func (p *SessionPool) ByID(id string) (*PoolEntry, bool) {
	p.mu.Lock()
	e := p.byID[id]
	if e == nil {
		p.mu.Unlock()
		return nil, false
	}
	e.refs++
	p.lru.MoveToFront(e.elem)
	p.mu.Unlock()
	<-e.ready
	if e.err != nil {
		p.Release(e)
		return nil, false
	}
	return e, true
}

// Release unpins an acquired entry.
func (p *SessionPool) Release(e *PoolEntry) {
	p.mu.Lock()
	e.refs--
	if e.refs < 0 {
		panic("service: PoolEntry released more often than acquired")
	}
	// An entry that went stale while pinned is already out of the maps;
	// nothing further to do — the GC reclaims it once the last holder
	// drops it. The entry just released is the most recently used, so it
	// is sheltered from this eviction round (evicting it would defeat
	// the warm cache exactly when it proved useful).
	p.evictLocked(e)
	p.updateGaugesLocked()
	p.mu.Unlock()
}

// Run executes fn with exclusive use of the entry's session (requests
// against one circuit queue here rather than race) and refreshes the
// byte accounting and the cached cost snapshot afterwards.
func (e *PoolEntry) Run(fn func(sess *cnf.DiagSession, circ *circuit.Circuit) error) error {
	e.runMu.Lock()
	defer e.runMu.Unlock()
	err := fn(e.sess, e.circ)
	snap := e.sess.Stats()
	p := e.pool
	p.mu.Lock()
	e.statsSnap = snap
	e.uses++
	e.lastUsed = time.Now()
	delta := sessionBytes(snap) - e.bytes
	e.bytes += delta
	// Apply the fn's staged journal records under pool.mu (the journal's
	// serialization point). An entry evicted while pinned is already out
	// of the roster — its session-evicted record is on the log, so late
	// deltas for it are dropped rather than resurrecting the key.
	if e.jstagedSet || len(e.jstaged) > 0 {
		if !e.evicted {
			if e.jstagedSet {
				e.jtests, e.jk = e.jstagedTests, e.jstagedK
			}
			for _, rec := range e.jstaged {
				p.journalLocked(rec)
			}
		}
		e.jstaged, e.jstagedTests, e.jstagedSet = nil, nil, false
	}
	if !e.evicted {
		p.totalBytes += delta
		p.evictLocked(e)
	}
	p.updateGaugesLocked()
	p.mu.Unlock()
	return err
}

// rebuild swaps in a freshly built session over the same circuit (a
// request needed a wider ladder than the warm one supports). Caller
// must hold runMu via Run; rebuild is therefore only called from
// warm.go inside Run's fn. The circuit pointer is deliberately left
// untouched — it never changes for a key, and Circuit() reads it
// without a lock. maxK is read by Snapshot under the pool lock, so its
// write takes it too.
func (e *PoolEntry) rebuild(sess *cnf.DiagSession, maxK int) {
	e.sess = sess
	e.testIndex = make(map[string]int)
	e.current = nil
	p := e.pool
	p.mu.Lock()
	e.maxK = maxK
	p.mu.Unlock()
	p.Rebuilds.Inc()
	// A rebuild journals as a fresh build: the old session's test copies
	// are gone, so the fold must start the key over. The caller's
	// subsequent test-set staging restores the live set on the log.
	if p.jw != nil && e.jbench != "" {
		e.jstaged = append(e.jstaged, journal.Record{
			Type:        journal.TypeSessionBuilt,
			Key:         e.key,
			Fingerprint: e.jfp,
			Bench:       e.jbench,
			Encoding:    e.model.Encoding.String(),
			ForceZero:   e.model.ForceZero,
			ConeOnly:    e.model.ConeOnly,
			MaxK:        maxK,
		})
		e.jstagedTests, e.jstagedK, e.jstagedSet = nil, 0, true
	}
}

// evictLocked drops idle least-recently-used entries until the pool is
// within its byte and session budgets. keep (the entry just touched) is
// never evicted even when idle, so a session larger than the whole
// budget still serves its own request.
func (p *SessionPool) evictLocked(keep *PoolEntry) {
	for (p.totalBytes > p.opts.MaxBytes || p.lru.Len() > p.opts.MaxSessions) && p.lru.Len() > 0 {
		var victim *PoolEntry
		for el := p.lru.Back(); el != nil; el = el.Prev() {
			cand := el.Value.(*PoolEntry)
			if cand.refs == 0 && cand != keep {
				victim = cand
				break
			}
		}
		if victim == nil {
			return // everything is busy; soft bound
		}
		p.dropLocked(victim)
		p.Evictions.Inc()
	}
}

// dropLocked removes an entry from the maps and accounting. Journaled
// sessions leave a SessionEvicted record so replay never rebuilds dead
// sessions — replay cost stays bounded by the live roster, not journal
// length.
func (p *SessionPool) dropLocked(e *PoolEntry) {
	if e.evicted {
		return
	}
	e.evicted = true
	delete(p.byKey, e.key)
	delete(p.byID, e.id)
	p.lru.Remove(e.elem)
	p.totalBytes -= e.bytes
	if e.jbench != "" && e.sess != nil {
		p.journalLocked(journal.Record{Type: journal.TypeSessionEvicted, Key: e.key})
	}
}

func (p *SessionPool) updateGaugesLocked() {
	p.Bytes.Set(p.totalBytes)
	p.Sessions.Set(int64(p.lru.Len()))
}

// sessionBytes estimates the resident size of a session from its
// instance dimensions. The constants approximate the built-in solver's
// per-variable (watch lists, trail, activity, phase) and per-clause
// (header + literals) footprint; the estimate only needs to be
// proportional for LRU accounting to be meaningful.
func sessionBytes(st cnf.SessionStats) int64 {
	return int64(st.Vars)*64 + int64(st.Clauses)*48
}

// journalLocked appends one record to the pool's journal (no-op when
// persistence is disabled). Caller holds pool.mu — that lock is the
// journal's serialization point, so when the append crosses a segment
// boundary the compaction snapshot taken here is atomic with respect to
// every other pool delta.
func (p *SessionPool) journalLocked(rec journal.Record) {
	if p.jw == nil {
		return
	}
	if p.jw.Append(rec) {
		p.jw.Compact(p.rosterLocked())
	}
}

// builtRecordLocked renders the entry's SessionBuilt record. Caller
// holds pool.mu.
func (e *PoolEntry) builtRecordLocked() journal.Record {
	return journal.Record{
		Type:        journal.TypeSessionBuilt,
		Key:         e.key,
		Fingerprint: e.jfp,
		Bench:       e.jbench,
		Encoding:    e.model.Encoding.String(),
		ForceZero:   e.model.ForceZero,
		ConeOnly:    e.model.ConeOnly,
		MaxK:        e.maxK,
	}
}

// rosterLocked snapshots the live roster as journal records, least
// recently used first so the fold's recency order matches the pool's
// LRU order. Caller holds pool.mu.
func (p *SessionPool) rosterLocked() []journal.Record {
	var out []journal.Record
	for el := p.lru.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*PoolEntry)
		if e.evicted || e.sess == nil || e.jbench == "" {
			continue
		}
		out = append(out, e.builtRecordLocked())
		if len(e.jtests) > 0 {
			out = append(out, journal.Record{
				Type:  journal.TypeTestsAdded,
				Key:   e.key,
				Reset: true,
				Tests: e.jtests,
				K:     e.jk,
			})
		}
	}
	return out
}

// CompactJournal snapshots the live roster into a fresh journal segment
// and drops older history (no-op without a journal). Called after a
// startup replay so the re-journaled rebuilds don't double the log.
func (p *SessionPool) CompactJournal() {
	if p.jw == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.jw.Compact(p.rosterLocked())
}

// Promote moves a pinned entry to the most-recently-used position —
// replay uses it to restore the journaled recency order after building
// sessions in parallel.
func (p *SessionPool) Promote(e *PoolEntry) {
	p.mu.Lock()
	if !e.evicted {
		p.lru.MoveToFront(e.elem)
	}
	p.mu.Unlock()
}

// Budgets returns the pool's byte and session bounds (replay stops
// rebuilding once the budget is reached).
func (p *SessionPool) Budgets() (maxBytes int64, maxSessions int) {
	return p.opts.MaxBytes, p.opts.MaxSessions
}

// stageJournalReset stages a full test-set replacement (a /diagnose
// activation) for the post-run journal append. Caller holds runMu via
// Run's fn.
func (e *PoolEntry) stageJournalReset(tests circuit.TestSet, k int) {
	if e.pool.jw == nil || e.jbench == "" {
		return
	}
	recs := toTestRecs(tests)
	e.jstaged = append(e.jstaged, journal.Record{
		Type:  journal.TypeTestsAdded,
		Key:   e.key,
		Reset: true,
		Tests: recs,
		K:     k,
	})
	e.jstagedTests, e.jstagedK, e.jstagedSet = recs, k, true
}

// stageJournalEdit stages an incremental retract+append edit; full is
// the resulting live test-set (the roster mirror). Caller holds runMu.
func (e *PoolEntry) stageJournalEdit(removed []int, add circuit.TestSet, full []journal.TestRec, k int) {
	if e.pool.jw == nil || e.jbench == "" {
		return
	}
	if len(removed) > 0 {
		e.jstaged = append(e.jstaged, journal.Record{
			Type:    journal.TypeTestsRetracted,
			Key:     e.key,
			Removed: append([]int(nil), removed...),
		})
	}
	e.jstaged = append(e.jstaged, journal.Record{
		Type:  journal.TypeTestsAdded,
		Key:   e.key,
		Tests: toTestRecs(add),
		K:     k,
	})
	e.jstagedTests, e.jstagedK, e.jstagedSet = full, k, true
}

// toTestRec converts one test to its journal wire form (vector as a 0/1
// string, one character per primary input).
func toTestRec(t circuit.Test) journal.TestRec {
	b := make([]byte, len(t.Vector))
	for i, v := range t.Vector {
		if v {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	return journal.TestRec{Vector: string(b), Output: t.Output, Want: t.Want}
}

func toTestRecs(tests circuit.TestSet) []journal.TestRec {
	if len(tests) == 0 {
		return nil
	}
	out := make([]journal.TestRec, len(tests))
	for i, t := range tests {
		out[i] = toTestRec(t)
	}
	return out
}

// EntryInfo is a point-in-time public view of one pooled session.
type EntryInfo struct {
	ID       string           `json:"id"`
	Key      string           `json:"key"`
	Bytes    int64            `json:"bytes"`
	Uses     int64            `json:"uses"`
	AgeMs    int64            `json:"ageMs"`
	IdleMs   int64            `json:"idleMs"`
	MaxK     int              `json:"maxK"`
	Stats    cnf.SessionStats `json:"stats"`
	InFlight bool             `json:"inFlight"`
}

// Snapshot lists the warm sessions, most recently used first, without
// touching any live session (the cost stats are the cached post-run
// snapshots).
func (p *SessionPool) Snapshot() []EntryInfo {
	now := time.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]EntryInfo, 0, p.lru.Len())
	for el := p.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*PoolEntry)
		out = append(out, EntryInfo{
			ID:       e.id,
			Key:      e.key,
			Bytes:    e.bytes,
			Uses:     e.uses,
			AgeMs:    now.Sub(e.created).Milliseconds(),
			IdleMs:   now.Sub(e.lastUsed).Milliseconds(),
			MaxK:     e.maxK,
			Stats:    e.statsSnap,
			InFlight: e.refs > 0,
		})
	}
	return out
}

// TotalBytes returns the pool's current estimated resident size.
func (p *SessionPool) TotalBytes() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.totalBytes
}

// Len returns the number of warm sessions.
func (p *SessionPool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lru.Len()
}
