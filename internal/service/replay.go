package service

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/circuit"
	"repro/internal/failpoint"
	"repro/internal/journal"
	"repro/internal/trace"
)

// DefaultReplayWorkers bounds the parallel session rebuilds of a boot
// replay when the caller does not choose.
const DefaultReplayWorkers = 4

// ReplayReport is the outcome of a warm-pool replay.
type ReplayReport struct {
	Sessions int // sessions rebuilt into the pool
	Skipped  int // sessions skipped (failpoint, corrupt record, over budget)
	Tests    int // test copies re-encoded
	Elapsed  time.Duration
}

// Replay rebuilds the warm pool from a journal's folded state: sessions
// are rebuilt bounded-parallel, most recently used first, until the
// pool's LRU byte/session budget is reached; the journaled recency
// order is then restored so the first post-boot eviction drops the
// right session. A session that fails to rebuild — corrupt bench text,
// fingerprint mismatch, injected journal/replay failure — is skipped
// and counted, never fatal. The warming flag clears when replay
// finishes, flipping /healthz from 503 not-ready to serving.
func (s *Server) Replay(st *journal.State, workers int) ReplayReport {
	defer s.warming.Store(false)
	start := time.Now()
	if workers <= 0 {
		workers = DefaultReplayWorkers
	}
	var rep ReplayReport
	if st != nil {
		s.replaySt.Store(st)
	}
	if st == nil || len(st.Sessions) == 0 {
		rep.Elapsed = time.Since(start)
		s.replayMillis.Set(rep.Elapsed.Milliseconds())
		return rep
	}

	span := trace.New("replay")
	span.SetDetail(fmt.Sprintf("%d sessions", len(st.Sessions)))
	maxBytes, maxSessions := s.pool.Budgets()

	var mu sync.Mutex // guards rep counts and entries
	entries := make([]*PoolEntry, len(st.Sessions))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := range st.Sessions {
		// The roster is MRU-first, so once the pool budget is reached
		// every remaining session is less recently used than everything
		// already rebuilt: stop, don't thrash the LRU.
		if s.pool.Len() >= maxSessions || s.pool.TotalBytes() >= maxBytes {
			mu.Lock()
			rep.Skipped += len(st.Sessions) - i
			mu.Unlock()
			for ; i < len(st.Sessions); i++ {
				child := span.Child("session")
				child.SetDetail(st.Sessions[i].Key + ": skipped (pool budget)")
				child.End()
			}
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			ss := &st.Sessions[i]
			child := span.Child("session")
			entry, tests, err := s.replaySession(ss)
			mu.Lock()
			if err != nil {
				rep.Skipped++
				child.SetDetail(ss.Key + ": skipped (" + err.Error() + ")")
			} else {
				entries[i] = entry
				rep.Sessions++
				rep.Tests += tests
				child.SetDetail(ss.Key)
			}
			mu.Unlock()
			child.End()
		}(i)
	}
	wg.Wait()

	// Parallel builds completed in arbitrary order; restore the
	// journaled recency by touching entries least-recent first, then
	// unpin. Release evicts past the budget from the LRU back, which is
	// now the correct end to trim.
	for i := len(entries) - 1; i >= 0; i-- {
		if entries[i] != nil {
			s.pool.Promote(entries[i])
		}
	}
	for _, e := range entries {
		if e != nil {
			s.pool.Release(e)
		}
	}
	// The replayed builds re-journaled themselves; compact so the log
	// holds one clean roster snapshot instead of history plus replay.
	s.pool.CompactJournal()

	rep.Elapsed = time.Since(start)
	span.End()
	s.replaySessions.Add(int64(rep.Sessions))
	s.replaySkipped.Add(int64(rep.Skipped))
	s.replayTests.Add(int64(rep.Tests))
	s.replayMillis.Set(rep.Elapsed.Milliseconds())
	s.traces.add(&RequestTrace{
		ID: "replay", Time: time.Now(), Mode: "replay",
		Complete:  true,
		ElapsedMs: float64(rep.Elapsed.Microseconds()) / 1e3,
		Timings:   span.Breakdown(),
	})
	s.log.Info("replay", "sessions", rep.Sessions, "skipped", rep.Skipped,
		"tests", rep.Tests, "records", st.Records, "corrupt", st.Skipped,
		"tornTailBytes", st.TornTailBytes, "sealed", st.Sealed,
		"elapsedMs", rep.Elapsed.Milliseconds())
	return rep
}

// replaySession rebuilds one journaled session: parse the bench text,
// verify the fingerprint, cold-build the warm session through the pool
// (journaling it afresh), and prime the live test-set so the next
// request — full or incremental — behaves exactly like a warm request
// on the pre-crash session. The returned entry is pinned; the caller
// releases after restoring LRU order.
func (s *Server) replaySession(ss *journal.SessionState) (*PoolEntry, int, error) {
	if err := failpoint.Inject(journal.FailpointReplay); err != nil {
		return nil, 0, fmt.Errorf("failpoint: %w", err)
	}
	encoding, err := parseEncoding(ss.Encoding)
	if err != nil {
		return nil, 0, err
	}
	c, err := circuit.ParseBench("journal", strings.NewReader(ss.Bench))
	if err != nil {
		return nil, 0, fmt.Errorf("parse bench: %w", err)
	}
	if fp := Fingerprint(c); fp != ss.Fingerprint {
		return nil, 0, fmt.Errorf("fingerprint mismatch: journal %s, parsed %s", ss.Fingerprint, fp)
	}
	model := FaultModel{Encoding: encoding, ForceZero: ss.ForceZero, ConeOnly: ss.ConeOnly}
	key := SessionKey(ss.Fingerprint, model)
	if ss.Key != "" && key != ss.Key {
		return nil, 0, fmt.Errorf("key mismatch: journal %q, derived %q", ss.Key, key)
	}
	var tests circuit.TestSet
	if len(ss.Tests) > 0 {
		tj := make([]TestJSON, len(ss.Tests))
		for i, t := range ss.Tests {
			tj[i] = TestJSON{Vector: t.Vector, Output: t.Output, Want: t.Want}
		}
		if tests, err = decodeTests(c, tj); err != nil {
			return nil, 0, fmt.Errorf("journaled tests: %w", err)
		}
	}
	maxK := ss.MaxK
	if maxK < 1 {
		maxK = 1
	}
	entry, outcome, err := s.pool.AcquireDetail(key, func() (Built, error) {
		return Built{
			Session:     NewWarmSession(c, model, maxK),
			Circuit:     c,
			Model:       model,
			MaxK:        maxK,
			Source:      ss.Bench,
			Fingerprint: ss.Fingerprint,
		}, nil
	})
	if err != nil {
		return nil, 0, err
	}
	if outcome != OutcomeColdBuild {
		// A request that arrived during warming already rebuilt this key
		// (and owns a fresher active test-set than the journal's): leave
		// it alone.
		return entry, 0, nil
	}
	if err := entry.Prime(tests, ss.K); err != nil {
		s.pool.Release(entry)
		return nil, 0, fmt.Errorf("prime: %w", err)
	}
	return entry, len(tests), nil
}
