package service_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"repro/internal/service"
)

func newPortfolioServer(t *testing.T) (*service.Server, *httptest.Server) {
	t.Helper()
	srv := service.NewServer(service.Options{
		Scheduler: service.SchedulerOptions{Workers: 2, Queue: 64},
		Portfolio: true,
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// TestPortfolioEquivalence is the racing acceptance property: on a
// portfolio-enabled server, raced answers must be byte-identical to
// solver-pinned answers and to monolithic core.Diagnose — whichever
// configuration wins the race. Solver-pinned and sharded requests must
// not race.
func TestPortfolioEquivalence(t *testing.T) {
	_, ts := newPortfolioServer(t)
	for seed := int64(1); seed <= 3; seed++ {
		c, tests := scenario(t, seed*20, 6)
		bench := benchText(t, c)
		wire := testJSON(tests)
		want := mustJSON(t, truth(t, bench, tests, 2, 1))

		// Raced request (cold build, then a warm raced hit).
		for round := 0; round < 2; round++ {
			r := diagnose(t, ts.URL, service.DiagnoseRequest{Bench: bench, Tests: wire, K: 2})
			if !r.Raced {
				t.Fatalf("seed %d round %d: portfolio server did not race", seed, round)
			}
			if r.Solver != "default" && r.Solver != "gen2" {
				t.Fatalf("seed %d: winner %q not a portfolio configuration", seed, r.Solver)
			}
			if !r.Complete {
				t.Fatalf("seed %d: raced run incomplete without budgets", seed)
			}
			if got := mustJSON(t, r.Solutions); got != want {
				t.Fatalf("seed %d raced (winner %s): %s != %s", seed, r.Solver, got, want)
			}
		}

		// Solver-pinned requests bypass the race and still agree.
		for _, solver := range []string{"default", "gen2"} {
			r := diagnose(t, ts.URL, service.DiagnoseRequest{Bench: bench, Tests: wire, K: 2, Solver: solver})
			if r.Raced {
				t.Fatalf("seed %d: pinned %s request raced", seed, solver)
			}
			if r.Solver != solver {
				t.Fatalf("seed %d: pinned request reports solver %q, want %q", seed, r.Solver, solver)
			}
			if got := mustJSON(t, r.Solutions); got != want {
				t.Fatalf("seed %d pinned %s: %s != %s", seed, solver, got, want)
			}
		}

		// Sharded requests already parallelize; they must not race either.
		r := diagnose(t, ts.URL, service.DiagnoseRequest{Bench: bench, Tests: wire, K: 2, Shards: 2})
		if r.Raced {
			t.Fatalf("seed %d: sharded request raced", seed)
		}
		if got := mustJSON(t, r.Solutions); got != want {
			t.Fatalf("seed %d sharded: %s != %s", seed, got, want)
		}
	}

	// The race counters made it to /metrics, and every win is attributed.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	body := string(raw)
	if !strings.Contains(body, "diag_portfolio_races_total 6") {
		t.Fatalf("metrics missing race count:\n%s", body)
	}
	wins := int64(0)
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "diag_portfolio_wins_total{") {
			v, err := strconv.ParseInt(line[strings.LastIndex(line, " ")+1:], 10, 64)
			if err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			wins += v
		}
	}
	if wins != 6 {
		t.Fatalf("portfolio wins sum to %d, want 6", wins)
	}
}

// TestPortfolioUnknownSolver: an unknown configuration name is a 400 on
// both the declarative and the incremental endpoint.
func TestPortfolioUnknownSolver(t *testing.T) {
	_, ts := newPortfolioServer(t)
	c, tests := scenario(t, 7, 4)
	req := service.DiagnoseRequest{Bench: benchText(t, c), Tests: testJSON(tests), K: 1, Solver: "no-such"}
	if code, _ := post[service.DiagnoseResponse](t, ts.URL+"/diagnose", req); code != http.StatusBadRequest {
		t.Fatalf("unknown solver -> %d, want 400", code)
	}
	if code, _ := post[service.DiagnoseResponse](t, ts.URL+"/sessions/s1/tests",
		service.SessionTestsRequest{Solver: "no-such"}); code != http.StatusBadRequest {
		t.Fatalf("incremental unknown solver -> %d, want 400", code)
	}
}

// TestIncrementalSolverPin: an incremental edit can switch the solver
// configuration; "" inherits the previous run's.
func TestIncrementalSolverPin(t *testing.T) {
	_, ts := newTestServer(t, 2)
	c, tests := scenario(t, 11, 5)
	bench := benchText(t, c)
	wire := testJSON(tests)
	want := mustJSON(t, truth(t, bench, tests, 2, 1))

	first := diagnose(t, ts.URL, service.DiagnoseRequest{Bench: bench, Tests: wire, K: 2, Solver: "gen2"})
	if first.Solver != "gen2" {
		t.Fatalf("warm-start reports solver %q, want gen2", first.Solver)
	}
	if got := mustJSON(t, first.Solutions); got != want {
		t.Fatalf("gen2 warm-start: %s != %s", got, want)
	}

	// Edit with no solver: inherits gen2. Then pin back to default.
	code, inc := post[service.DiagnoseResponse](t, ts.URL+"/sessions/"+first.Session+"/tests",
		service.SessionTestsRequest{Remove: []int{0}})
	if code != http.StatusOK || inc.Solver != "gen2" {
		t.Fatalf("inherit: code=%d solver=%q, want 200/gen2", code, inc.Solver)
	}
	code, inc2 := post[service.DiagnoseResponse](t, ts.URL+"/sessions/"+first.Session+"/tests",
		service.SessionTestsRequest{Add: wire[:1], Solver: "default"})
	if code != http.StatusOK || inc2.Solver != "default" {
		t.Fatalf("re-pin: code=%d solver=%q, want 200/default", code, inc2.Solver)
	}
	if got := mustJSON(t, inc2.Solutions); got != want {
		t.Fatalf("re-pinned incremental: %s != %s", got, want)
	}
}
