package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// ErrOverloaded is returned when the admission queue is full — the
// backpressure signal the HTTP layer maps to 429.
var ErrOverloaded = errors.New("service: admission queue full")

// ErrDraining is returned once Drain has begun; new work is refused
// while queued work finishes.
var ErrDraining = errors.New("service: server draining")

// ErrQueueTimeout is returned when a request's deadline expired while
// it waited in the admission queue: the worker skipped it without
// running any diagnosis. Distinct from a deadline that fires mid-run
// (which still yields partial results) so the HTTP layer can answer
// 503 retry-later instead of 504.
var ErrQueueTimeout = errors.New("service: request deadline expired while queued")

// PanicError wraps a panic recovered from a request function. The
// worker survives (the pool never shrinks from a poisoned request);
// the caller decides how to report it.
type PanicError struct{ Val any }

func (e *PanicError) Error() string { return fmt.Sprintf("service: request panicked: %v", e.Val) }

// SchedulerOptions configures a Scheduler.
type SchedulerOptions struct {
	// Workers is the number of concurrent request executors
	// (0 = GOMAXPROCS). Diagnosis is CPU-bound, so more workers than
	// cores only adds queueing inside the SAT solver's time slices.
	Workers int
	// Queue is the admission queue depth beyond the in-flight workers
	// (0 = 64). A full queue rejects with ErrOverloaded instead of
	// buffering unbounded work.
	Queue int
	// DefaultTimeout bounds requests that carry no deadline of their own
	// (0 = no default). MaxTimeout clamps client-supplied budgets.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
}

type task struct {
	ctx      context.Context
	fn       func(context.Context)
	enqueued time.Time
	done     chan struct{}
	skipped  bool // deadline expired while queued; fn never ran
	panicked any  // recovered panic value from fn, nil if none
}

// Scheduler runs submitted requests on a bounded worker pool with an
// admission queue: full queue → immediate rejection (backpressure),
// Drain → graceful completion of everything admitted.
type Scheduler struct {
	opts  SchedulerOptions
	tasks chan *task
	wg    sync.WaitGroup

	mu       sync.Mutex
	draining bool

	// Serving counters, exposed on /metrics. QueueWait and Exec split
	// end-to-end latency at the admission boundary: time spent waiting
	// for a worker versus time spent actually diagnosing. A healthy
	// server has Exec ≈ request latency; a saturated one shows the gap
	// in QueueWait.
	QueueWait     metrics.Histogram
	Exec          metrics.Histogram
	InFlight      metrics.Gauge
	Queued        metrics.Gauge
	Rejected      metrics.Counter
	Completed     metrics.Counter
	QueueTimeouts metrics.Counter
	Panics        metrics.Counter
}

// NewScheduler starts the worker pool.
func NewScheduler(opts SchedulerOptions) *Scheduler {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.Queue <= 0 {
		opts.Queue = 64
	}
	s := &Scheduler{opts: opts, tasks: make(chan *task, opts.Queue)}
	s.wg.Add(opts.Workers)
	for i := 0; i < opts.Workers; i++ {
		go s.worker()
	}
	return s
}

// Workers returns the worker-pool size.
func (s *Scheduler) Workers() int { return s.opts.Workers }

func (s *Scheduler) worker() {
	defer s.wg.Done()
	for t := range s.tasks {
		s.Queued.Add(-1)
		s.QueueWait.Observe(time.Since(t.enqueued))
		trace.FromContext(t.ctx).Phase("queue", time.Since(t.enqueued))
		// A request whose client already gave up is not worth starting:
		// skip it without burning the worker slot on doomed SAT work.
		if t.ctx.Err() != nil {
			t.skipped = true
			s.QueueTimeouts.Inc()
		} else {
			s.InFlight.Add(1)
			execStart := time.Now()
			s.runTask(t)
			s.Exec.Observe(time.Since(execStart))
			s.InFlight.Add(-1)
			s.Completed.Inc()
		}
		close(t.done)
	}
}

// runTask executes one request function, converting a panic into a
// recorded value instead of killing the worker (and with it the whole
// process): one poisoned request must not take the service down.
func (s *Scheduler) runTask(t *task) {
	defer func() {
		if v := recover(); v != nil {
			t.panicked = v
			s.Panics.Inc()
		}
	}()
	t.fn(t.ctx)
}

// RequestContext derives the execution context of one request from the
// client-supplied budget: clamped to MaxTimeout, defaulted to
// DefaultTimeout when absent.
func (s *Scheduler) RequestContext(parent context.Context, budget time.Duration) (context.Context, context.CancelFunc) {
	if budget <= 0 {
		budget = s.opts.DefaultTimeout
	}
	if s.opts.MaxTimeout > 0 && (budget <= 0 || budget > s.opts.MaxTimeout) {
		budget = s.opts.MaxTimeout
	}
	if budget <= 0 {
		return context.WithCancel(parent)
	}
	return context.WithTimeout(parent, budget)
}

// Do admits fn and blocks until a worker has finished it (or skipped it
// because ctx expired while queued). Admission fails fast with
// ErrOverloaded on a full queue and ErrDraining after Drain began.
func (s *Scheduler) Do(ctx context.Context, fn func(context.Context)) error {
	t := &task{ctx: ctx, fn: fn, enqueued: time.Now(), done: make(chan struct{})}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.Rejected.Inc()
		return ErrDraining
	}
	select {
	case s.tasks <- t:
		s.Queued.Add(1)
		s.mu.Unlock()
	default:
		s.mu.Unlock()
		s.Rejected.Inc()
		return ErrOverloaded
	}
	// Wait for the worker even when ctx fires mid-run: fn observes the
	// same ctx and aborts promptly, and the caller must not touch the
	// result before the worker is done with it.
	<-t.done
	if t.skipped {
		// Both sentinels stay matchable: ErrQueueTimeout for the HTTP
		// status mapping, the ctx cause for callers watching their own
		// context.
		return fmt.Errorf("%w: %w", ErrQueueTimeout, context.Cause(t.ctx))
	}
	if t.panicked != nil {
		return &PanicError{Val: t.panicked}
	}
	return ctx.Err()
}

// Draining reports whether Drain has begun (readiness signal).
func (s *Scheduler) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain stops admission and waits for every admitted task to finish,
// up to ctx. It is idempotent; concurrent Do calls race cleanly (they
// either get in before the cut or see ErrDraining).
func (s *Scheduler) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.tasks) // workers drain the queue, then exit
	}
	s.mu.Unlock()

	finished := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
