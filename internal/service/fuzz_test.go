package service

import (
	"encoding/json"
	"testing"
)

// FuzzDiagnoseRequest drives the request-decoding path a hostile client
// controls end to end: JSON unmarshalling, netlist parsing via
// resolveCircuit, and test validation via decodeTests. Any input must
// produce either a decoded request or an error — never a panic, which
// the robustness tentpole turned into the hard server-survival
// guarantee.
func FuzzDiagnoseRequest(f *testing.F) {
	seeds := []string{
		`{"circuit":"s298x","tests":[{"vector":"000","output":0,"want":true}]}`,
		`{"bench":"INPUT(a)\nOUTPUT(z)\nz = NOT(a)\n","tests":[{"vector":"1","output":1,"want":false}]}`,
		`{"bench":"INPUT(a)\nOUTPUT(z)\nz = NOT(a)\n","tests":[{"vector":"01","output":1,"want":false}]}`,  // wrong width
		`{"bench":"INPUT(a)\nOUTPUT(z)\nz = NOT(a)\n","tests":[{"vector":"x","output":1,"want":false}]}`,   // bad char
		`{"bench":"INPUT(a)\nOUTPUT(z)\nz = NOT(a)\n","tests":[{"vector":"1","output":-7,"want":true}]}`,   // negative gate
		`{"bench":"INPUT(a)\nOUTPUT(z)\nz = NOT(a)\n","tests":[{"vector":"1","output":9999,"want":true}]}`, // out of range
		`{"bench":"INPUT(a)\nz = AND(a, b)\n","tests":[{"vector":"1","output":0,"want":true}]}`,            // dangling wire
		`{"circuit":"no-such-circuit","tests":[{"vector":"0","output":0,"want":true}]}`,
		`{"tests":[]}`,
		`{"k":-3,"shards":-1,"maxSolutions":-9}`,
		`{"encoding":"bogus","tests":null}`,
		`[1,2,3]`,
		"{\"bench\":\"\x00\"}",
		``,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var req DiagnoseRequest
		if err := json.Unmarshal(data, &req); err != nil {
			return
		}
		c, _, err := resolveCircuit(&req)
		if err != nil {
			return
		}
		// Errors are the expected outcome for garbage; panics are bugs.
		if _, err := decodeTests(c, req.Tests); err != nil {
			return
		}
		if _, err := parseEncoding(req.Encoding); err != nil {
			return
		}
	})
}
