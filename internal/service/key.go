// Package service turns the diagnosis engine registry into a
// long-running concurrent server: a SessionPool keeps cnf.DiagSession
// instances warm per (circuit, fault-model) key, a Scheduler bounds and
// queues request execution, and Server exposes the JSON-over-HTTP
// surface (POST /diagnose, POST /sessions/{id}/tests, GET /healthz,
// GET /metrics) that cmd/diagserver serves and cmd/diagload drives.
//
// The subsystem exists because of the paper's central result: the
// simulation-based and SAT-based procedures compute the same solution
// sets, so the expensive SAT artifacts — encodings, learnt clauses,
// session state — are reusable assets. Keeping them warm across
// requests amortizes the Table 1/2 construction cost, and the
// incremental path (add/retract tests on a live session) makes repeat
// diagnosis of an edited test-set measurably cheaper than cold-start.
package service

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"

	"repro/internal/circuit"
	"repro/internal/cnf"
)

// FaultModel pins the structural encoding parameters of a pooled
// session — everything that changes the CNF itself. Per-request knobs
// that are assumption-scoped on a live session (candidate restriction,
// k-limits up to the ladder width, test activation) deliberately stay
// out: requests differing only in those share one warm session.
type FaultModel struct {
	// Encoding selects the cardinality encoding of the ladder.
	Encoding cnf.CardEncoding
	// ForceZero adds the advanced-approach clauses pinning unselected
	// correction inputs to zero.
	ForceZero bool
	// ConeOnly restricts each test copy to the erroneous output's fanin
	// cone.
	ConeOnly bool
}

// String renders the model compactly for keys and logs.
func (m FaultModel) String() string {
	return fmt.Sprintf("enc=%s,fz=%t,cone=%t", m.Encoding, m.ForceZero, m.ConeOnly)
}

// Fingerprint hashes the structural identity of a circuit: gate kinds,
// fanin wiring, truth tables, and the input/output interface. Two
// circuits with equal fingerprints encode to identical CNF (up to
// variable numbering), so the fingerprint — not the client-supplied
// name — keys the session pool.
func Fingerprint(c *circuit.Circuit) string {
	h := sha256.New()
	writeInt(h, len(c.Gates))
	for i := range c.Gates {
		g := &c.Gates[i]
		writeInt(h, int(g.Kind))
		writeInt(h, len(g.Fanin))
		for _, f := range g.Fanin {
			writeInt(h, f)
		}
		if g.Table != nil {
			writeInt(h, g.Table.N)
			for _, w := range g.Table.Bits {
				writeUint64(h, w)
			}
		}
	}
	writeInt(h, len(c.Inputs))
	for _, in := range c.Inputs {
		writeInt(h, in)
	}
	writeInt(h, len(c.Outputs))
	for _, o := range c.Outputs {
		writeInt(h, o)
	}
	return hex.EncodeToString(h.Sum(nil)[:12])
}

// SessionKey derives the pool key of a (circuit, fault-model) pair.
func SessionKey(fp string, m FaultModel) string {
	return fp + "/" + m.String()
}

// testKey canonicalizes one failing test for the per-session dedup
// index, so re-sent tests reuse their already-encoded copies.
func testKey(t circuit.Test) string {
	h := sha256.New()
	writeInt(h, t.Output)
	if t.Want {
		writeInt(h, 1)
	} else {
		writeInt(h, 0)
	}
	writeInt(h, len(t.Vector))
	var w uint64
	n := 0
	for _, b := range t.Vector {
		w <<= 1
		if b {
			w |= 1
		}
		if n++; n == 64 {
			writeUint64(h, w)
			w, n = 0, 0
		}
	}
	if n > 0 {
		writeUint64(h, w)
	}
	return string(h.Sum(nil)[:16])
}

func writeInt(h hash.Hash, v int) { writeUint64(h, uint64(int64(v))) }

func writeUint64(h hash.Hash, v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	h.Write(buf[:])
}
