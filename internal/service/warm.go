package service

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/journal"
	"repro/internal/sat"
	"repro/internal/trace"
)

// RunSpec is the per-request half of a warm diagnosis: everything that
// is assumption-scoped (or merely a budget) on a live session. The
// structural half lives in FaultModel.
type RunSpec struct {
	// K is the correction-size ladder bound (minimum 1).
	K int
	// Shards > 1 enumerates on that many concurrent workers over
	// disjoint assumption cubes; the solution set is shard-count
	// invariant. SampleCap bounds the sequential sample stage.
	Shards    int
	SampleCap int
	// Candidates restricts corrections to these gate labels by
	// assumptions (nil = all internal gates).
	Candidates []int
	// Budgets; zero values mean unlimited.
	MaxSolutions int
	MaxConflicts int64
	Timeout      time.Duration
	// Solver names the search configuration ("default", "gen2"; "" =
	// default). Trajectory-only: the solution set is configuration-
	// invariant, which is why it is NOT part of the session key — one
	// warm session serves any configuration back to back.
	Solver string
	// Enum names the enumeration mode ("legacy", "projected"; "" =
	// legacy). Like Solver it is trajectory-only — the ladder discipline
	// makes the solution set mode-invariant — so it is not part of the
	// session key either, and is applied per round rather than pinned on
	// the session.
	Enum string
}

// WarmReport is the outcome of a warm or incremental run. Solutions are
// canonical (size, then lexicographic) — for complete runs, byte-
// identical to the monolithic core.Diagnose solution list for the same
// circuit and active test-set.
type WarmReport struct {
	Solutions [][]int
	Complete  bool

	Copies    int // active test copies this run diagnosed
	NewCopies int // copies encoded by this run (0 = fully warm replay)
	Vars      int
	Clauses   int
	Stats     sat.Stats // solver work of this run only
	PerShard  []cnf.ShardStats
	Encode    time.Duration // time spent encoding missing copies
	Solve     time.Duration // enumeration wall time
	Rebuilt   bool          // the session was rebuilt for a wider ladder
	Solver    string        // search configuration that produced the answer
	Enum      string        // enumeration mode that produced the answer

	// Events is this run's slice of the session's flight recorder:
	// the solver control-flow events (restarts, clause-DB reductions,
	// models, budget exits, …) recorded between the run's start and end
	// cursors. Portfolio forks share the parent's recorder, so a raced
	// run's events interleave every fork on one timeline.
	Events []trace.Event
}

// NewWarmSession builds the long-lived session a pool entry keeps warm:
// guard-per-test copies (so any test subset activates by assumptions)
// over all internal candidate gates (so any candidate restriction is an
// assumption too).
func NewWarmSession(c *circuit.Circuit, model FaultModel, maxK int) *cnf.DiagSession {
	if maxK < 1 {
		maxK = 1
	}
	return cnf.NewSession(c, cnf.DiagOptions{
		MaxK:       maxK,
		Encoding:   model.Encoding,
		ForceZero:  model.ForceZero,
		ConeOnly:   model.ConeOnly,
		GuardTests: true,
		// Warm sessions always carry a flight recorder: the ring is a
		// few KiB per session and recording happens only at rare solver
		// control-flow points, so the capability costs nothing when no
		// one is looking and is already armed when a request degrades.
		Recorder: trace.NewRecorder(0),
	})
}

// Diagnose runs one warm diagnosis on the pooled session: missing test
// copies are encoded incrementally, the request's test-set is activated
// by assumptions, and one (possibly sharded) enumeration round runs and
// retires. The session afterwards carries the request's tests as its
// current active set, the base the incremental endpoint edits.
//
// If spec.K exceeds the warm ladder's width the session is rebuilt in
// place with the wider ladder (counted in the pool's Rebuilds); the
// request then proceeds on the fresh session.
func (e *PoolEntry) Diagnose(ctx context.Context, tests circuit.TestSet, spec RunSpec) (*WarmReport, error) {
	if spec.K < 1 {
		spec.K = 1
	}
	if len(tests) == 0 {
		return nil, fmt.Errorf("service: warm diagnosis requires a non-empty test-set")
	}
	var rep *WarmReport
	span := trace.FromContext(ctx)
	lockWait := time.Now()
	err := e.Run(func(sess *cnf.DiagSession, circ *circuit.Circuit) error {
		// The fn runs once runMu is held, so "session-wait" is the time
		// this request queued behind other requests on the same session.
		span.PhaseSince("session-wait", lockWait)
		rebuilt := false
		if !sess.CanBound(spec.K) {
			rebuildStart := time.Now()
			e.rebuild(NewWarmSession(circ, e.model, spec.K), spec.K)
			sess = e.sess
			rebuilt = true
			span.PhaseSince("rebuild", rebuildStart)
		}
		active, encoded, encode := e.ensureTests(tests)
		e.current = active
		e.lastSpec = spec
		e.stageJournalReset(tests, spec.K)
		span.Phase("encode", encode)
		solver, err := applySolver(sess, spec.Solver)
		if err != nil {
			return err
		}
		r, err := diagnoseActive(ctx, sess, active, spec)
		if err != nil {
			return err
		}
		span.Phase("solve", r.Solve)
		r.NewCopies = encoded
		r.Encode = encode
		r.Rebuilt = rebuilt
		r.Solver = solver
		rep = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rep, nil
}

// Incremental edits the session's current test-set — retract the listed
// positions, append the added tests — and re-diagnoses the result. The
// zero-valued fields of spec default to the previous run's knobs, so a
// client can send only the edit.
func (e *PoolEntry) Incremental(ctx context.Context, add circuit.TestSet, remove []int, spec RunSpec) (*WarmReport, circuit.TestSet, error) {
	var rep *WarmReport
	var activeTests circuit.TestSet
	span := trace.FromContext(ctx)
	lockWait := time.Now()
	err := e.Run(func(sess *cnf.DiagSession, circ *circuit.Circuit) error {
		span.PhaseSince("session-wait", lockWait)
		merged := e.lastSpec
		if spec.K > 0 {
			merged.K = spec.K
		}
		if merged.K < 1 {
			merged.K = 1
		}
		if spec.Shards > 0 {
			merged.Shards = spec.Shards
		}
		if spec.SampleCap > 0 {
			merged.SampleCap = spec.SampleCap
		}
		if spec.Candidates != nil {
			merged.Candidates = spec.Candidates
		}
		if spec.MaxSolutions > 0 {
			merged.MaxSolutions = spec.MaxSolutions
		}
		if spec.MaxConflicts > 0 {
			merged.MaxConflicts = spec.MaxConflicts
		}
		if spec.Timeout > 0 {
			merged.Timeout = spec.Timeout
		}
		if spec.Solver != "" {
			merged.Solver = spec.Solver
		}
		if spec.Enum != "" {
			merged.Enum = spec.Enum
		}
		if !sess.CanBound(merged.K) {
			return fmt.Errorf("service: incremental k=%d exceeds the session ladder (max %d); send a fresh /diagnose", merged.K, e.maxK)
		}

		// Retract: drop the listed positions of the current list. The
		// copies stay encoded (retraction is pure assumption scoping);
		// re-adding such a test later is free.
		drop := make(map[int]bool, len(remove))
		for _, i := range remove {
			if i < 0 || i >= len(e.current) {
				return fmt.Errorf("service: retract index %d out of range (current test-set has %d tests)", i, len(e.current))
			}
			drop[i] = true
		}
		next := make([]int, 0, len(e.current)+len(add))
		for i, ci := range e.current {
			if !drop[i] {
				next = append(next, ci)
			}
		}
		addIdx, encoded, encode := e.ensureTests(add)
		next = append(next, addIdx...)
		if len(next) == 0 {
			return fmt.Errorf("service: edit leaves an empty test-set")
		}
		e.current = next
		e.lastSpec = merged
		full := make([]journal.TestRec, 0, len(next))
		for _, ci := range next {
			full = append(full, toTestRec(sess.Tests[ci]))
		}
		e.stageJournalEdit(remove, add, full, merged.K)
		span.Phase("encode", encode)
		solver, err := applySolver(sess, merged.Solver)
		if err != nil {
			return err
		}
		r, err := diagnoseActive(ctx, sess, next, merged)
		if err != nil {
			return err
		}
		span.Phase("solve", r.Solve)
		r.NewCopies = encoded
		r.Encode = encode
		r.Solver = solver
		rep = r
		for _, ci := range next {
			activeTests = append(activeTests, sess.Tests[ci])
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return rep, activeTests, nil
}

// Prime restores a replayed session's serving state without running a
// diagnosis: the journaled live test-set is encoded (repopulating the
// dedup index so re-sent tests reuse their copies) and installed as the
// current active set, and k restores the incremental endpoint's default
// ladder bound. The next request then behaves exactly like a warm
// request on the pre-crash session.
func (e *PoolEntry) Prime(tests circuit.TestSet, k int) error {
	if k < 1 {
		k = 1
	}
	return e.Run(func(*cnf.DiagSession, *circuit.Circuit) error {
		active, _, _ := e.ensureTests(tests)
		e.current = active
		e.lastSpec = RunSpec{K: k}
		e.stageJournalReset(tests, k)
		return nil
	})
}

// ensureTests encodes any test not yet present and returns the copy
// indices of all of them, in request order.
func (e *PoolEntry) ensureTests(tests circuit.TestSet) (active []int, encoded int, encode time.Duration) {
	start := time.Now()
	active = make([]int, len(tests))
	for i, t := range tests {
		k := testKey(t)
		idx, ok := e.testIndex[k]
		if !ok {
			idx = e.sess.AddTest(t)
			e.testIndex[k] = idx
			encoded++
		}
		active[i] = idx
	}
	if encoded > 0 {
		encode = time.Since(start)
	}
	return active, encoded, encode
}

// applySolver pins the session's search configuration for this request
// and returns the resolved name. "" resolves to the default, so a
// previous request's configuration never leaks into the next one on a
// shared warm session.
func applySolver(sess *cnf.DiagSession, name string) (string, error) {
	cfg, err := sat.ConfigByName(name)
	if err != nil {
		return "", err
	}
	sess.Solver.SetSearchConfig(cfg)
	return cfg.Name, nil
}

// diagnoseActive runs one enumeration round over the given active
// copies. The projected solution space of a guard-activated,
// assumption-restricted round is identical to a monolithic instance
// built for exactly that test-set and candidate list (see the session
// property tests), which is what makes warm responses byte-identical to
// cold core.Diagnose ones.
func diagnoseActive(ctx context.Context, sess *cnf.DiagSession, active []int, spec RunSpec) (*WarmReport, error) {
	mode, err := sat.EnumModeByName(spec.Enum)
	if err != nil {
		return nil, err
	}
	rep := &WarmReport{Copies: len(active), Enum: mode.String()}
	round := cnf.RoundOptions{
		MaxK:         spec.K,
		Ctx:          ctx,
		ActiveTests:  active,
		Restrict:     spec.Candidates,
		MaxSolutions: spec.MaxSolutions,
		MaxConflicts: spec.MaxConflicts,
		Timeout:      spec.Timeout,
		SampleCap:    spec.SampleCap,
		Enum:         mode,
	}
	// This run's flight-recorder window: everything the (shared) ring
	// receives between these cursors belongs to this request. Nil-safe:
	// a recorder-less session yields cursor 0 and a nil event slice.
	rec := sess.Solver.FlightRecorder()
	cursor := rec.Cursor()
	before := sess.Solver.Statistics()
	start := time.Now()
	if spec.Shards > 1 {
		sols, complete, perShard, err := sess.EnumerateSharded(spec.Shards, round)
		if err != nil {
			return nil, err
		}
		rep.Solutions = sols
		rep.Complete = complete
		rep.PerShard = perShard
		for _, st := range perShard {
			if st.Shard != -1 {
				// The sample stage's work is already inside the live
				// solver's counters; only worker clones add on top.
				rep.Stats = rep.Stats.Add(st.Stats)
			}
		}
		rep.Stats = rep.Stats.Add(sess.Solver.Statistics().Sub(before))
	} else {
		var sols [][]int
		_, complete, err := sess.EnumerateRound(round, func(k int, gates []int) bool {
			g := append([]int(nil), gates...)
			sort.Ints(g)
			sols = append(sols, g)
			return true
		})
		if err != nil {
			return nil, err
		}
		cnf.SortSolutions(sols)
		rep.Solutions = sols
		rep.Complete = complete
		rep.Stats = sess.Solver.Statistics().Sub(before)
	}
	rep.Solve = time.Since(start)
	rep.Events = rec.Since(cursor)
	rep.Vars, rep.Clauses = sess.Size()
	if rep.Solutions == nil {
		rep.Solutions = [][]int{}
	}
	return rep, nil
}
