package service_test

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/service"
)

// getJSON fetches url and decodes the body into T (any status).
func getJSON[T any](t *testing.T, url string) (int, T) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var out T
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("decode %s: %v\n%s", url, err, raw)
		}
	}
	return resp.StatusCode, out
}

// phaseSumMS sums the top-level phase durations of a span breakdown.
func phaseSumMS(sj *json.RawMessage, t *testing.T) (float64, float64, map[string]float64) {
	t.Helper()
	var span struct {
		DurationMS float64 `json:"durationMs"`
		Phases     []struct {
			Name       string  `json:"name"`
			DurationMS float64 `json:"durationMs"`
		} `json:"phases"`
	}
	if err := json.Unmarshal(*sj, &span); err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	byName := make(map[string]float64)
	for _, p := range span.Phases {
		sum += p.DurationMS
		byName[p.Name] = p.DurationMS
	}
	return span.DurationMS, sum, byName
}

// TestDiagnoseTimings is the tracing acceptance check: a warm /diagnose
// response carries a span breakdown whose top-level phases account for
// the request's wall time (within 10%), with the expected phase
// vocabulary.
func TestDiagnoseTimings(t *testing.T) {
	_, ts := newTestServer(t, 2)
	c, tests := scenario(t, 30, 6)
	bench := benchText(t, c)
	wire := testJSON(tests)

	// Cold-start the session, then measure the warm hit.
	first := diagnose(t, ts.URL, service.DiagnoseRequest{Bench: bench, Tests: wire, K: 2})
	if first.Timings == nil {
		t.Fatal("cold-start response has no timings")
	}
	if first.RequestID == "" {
		t.Fatal("response has no request id")
	}
	warm := diagnose(t, ts.URL, service.DiagnoseRequest{Bench: bench, Tests: wire, K: 2})
	if warm.Timings == nil {
		t.Fatal("warm response has no timings")
	}
	if !warm.PoolHit || warm.Mode != "warm" {
		t.Fatalf("expected a warm hit, got mode=%q hit=%v", warm.Mode, warm.PoolHit)
	}

	raw, err := json.Marshal(warm.Timings)
	if err != nil {
		t.Fatal(err)
	}
	rm := json.RawMessage(raw)
	wall, sum, phases := phaseSumMS(&rm, t)
	if wall <= 0 {
		t.Fatalf("span wall time %v", wall)
	}
	for _, want := range []string{"queue", "pool", "session-wait", "solve"} {
		if _, ok := phases[want]; !ok {
			t.Fatalf("warm breakdown lacks phase %q: %v", want, phases)
		}
	}
	// The phases must account for the request: at least 90% of the span's
	// wall time, and never more than the wall time plus measurement noise.
	if sum < 0.9*wall {
		t.Fatalf("phases sum to %.3fms of %.3fms wall (<90%%): %v", sum, wall, phases)
	}
	if sum > 1.1*wall {
		t.Fatalf("phases sum to %.3fms of %.3fms wall (>110%%): %v", sum, wall, phases)
	}

	// The detail vocabulary: the warm hit's pool child span says so.
	if !strings.Contains(string(raw), service.OutcomeWarmHit) {
		t.Fatalf("warm breakdown does not mention %q: %s", service.OutcomeWarmHit, raw)
	}
}

// TestDegradedResponseCarriesFlightRecorder: a response that could not
// complete within its budget must arrive with the solver's flight
// recorder attached, and the dump must name the budget exit.
func TestDegradedResponseCarriesFlightRecorder(t *testing.T) {
	_, ts := newTestServer(t, 2)
	c, tests := scenario(t, 40, 6)
	resp := diagnose(t, ts.URL, service.DiagnoseRequest{
		Bench: benchText(t, c), Tests: testJSON(tests), K: 2, MaxConflicts: 1,
	})
	if resp.Complete {
		t.Skip("instance solved within one conflict; cannot exercise degradation")
	}
	if resp.Degraded == "" {
		t.Fatal("incomplete response not marked degraded")
	}
	if len(resp.FlightRecorder) == 0 {
		t.Fatal("degraded response carries no flight-recorder dump")
	}
	found := false
	for _, ev := range resp.FlightRecorder {
		if ev.Kind == "budget-exit" {
			found = true
		}
	}
	if !found {
		t.Fatalf("dump has no budget-exit event: %+v", resp.FlightRecorder)
	}

	// A complete response must NOT ship the dump on the wire.
	full := diagnose(t, ts.URL, service.DiagnoseRequest{
		Bench: benchText(t, c), Tests: testJSON(tests), K: 2,
	})
	if !full.Complete {
		t.Fatalf("unbudgeted request incomplete: %+v", full)
	}
	if len(full.FlightRecorder) != 0 {
		t.Fatal("complete response ships a flight recorder; it should only be in the trace store")
	}
}

// TestTraceEndpoints: every finished request is retrievable from
// GET /debug/diag/trace/{id} with its breakdown and events, and the
// list endpoint enumerates it.
func TestTraceEndpoints(t *testing.T) {
	_, ts := newTestServer(t, 2)
	c, tests := scenario(t, 50, 6)
	resp := diagnose(t, ts.URL, service.DiagnoseRequest{
		Bench: benchText(t, c), Tests: testJSON(tests), K: 2,
	})
	if resp.RequestID == "" {
		t.Fatal("no request id")
	}

	code, list := getJSON[[]service.TraceSummary](t, ts.URL+"/debug/diag/trace")
	if code != http.StatusOK {
		t.Fatalf("GET /debug/diag/trace -> %d", code)
	}
	found := false
	for _, s := range list {
		if s.ID == resp.RequestID {
			found = true
		}
	}
	if !found {
		t.Fatalf("request %s missing from trace list %+v", resp.RequestID, list)
	}

	code, rt := getJSON[service.RequestTrace](t, ts.URL+"/debug/diag/trace/"+resp.RequestID)
	if code != http.StatusOK {
		t.Fatalf("GET /debug/diag/trace/%s -> %d", resp.RequestID, code)
	}
	if rt.Timings == nil {
		t.Fatal("retained trace has no timings")
	}
	// A complete run keeps its events here even though the wire response
	// omitted them.
	if len(rt.FlightRecorder) == 0 {
		t.Fatal("retained trace has no flight-recorder events")
	}

	code, _ = getJSON[service.RequestTrace](t, ts.URL+"/debug/diag/trace/r999999")
	if code != http.StatusNotFound {
		t.Fatalf("unknown trace id -> %d, want 404", code)
	}
}

// TestIncrementalTimings: the stateful endpoint reports a breakdown too.
func TestIncrementalTimings(t *testing.T) {
	_, ts := newTestServer(t, 2)
	c, tests := scenario(t, 60, 6)
	first := diagnose(t, ts.URL, service.DiagnoseRequest{
		Bench: benchText(t, c), Tests: testJSON(tests[:4]), K: 2,
	})
	if first.Session == "" {
		t.Fatal("no session id")
	}
	code, inc := post[service.DiagnoseResponse](t, ts.URL+"/sessions/"+first.Session+"/tests",
		service.SessionTestsRequest{Add: testJSON(tests[4:])})
	if code != http.StatusOK {
		t.Fatalf("incremental -> %d", code)
	}
	if inc.Timings == nil {
		t.Fatal("incremental response has no timings")
	}
	if inc.RequestID == "" || inc.RequestID == first.RequestID {
		t.Fatalf("request ids not distinct: %q then %q", first.RequestID, inc.RequestID)
	}
}

// TestAcquireDetailOutcomes: the pool reports cold-build on a miss,
// warm-hit on an idle warm entry, and singleflight-wait when a second
// request arrives while the first is still building.
func TestAcquireDetailOutcomes(t *testing.T) {
	c, _ := scenario(t, 70, 4)
	pool := service.NewSessionPool(service.PoolOptions{})

	buildStarted := make(chan struct{})
	buildRelease := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	var waiterOutcome string
	go func() {
		defer wg.Done()
		<-buildStarted
		e, outcome, err := pool.AcquireDetail("k", warmBuilder(c, nil))
		if err != nil {
			t.Error(err)
			return
		}
		waiterOutcome = outcome
		pool.Release(e)
	}()

	e, outcome, err := pool.AcquireDetail("k", func() (service.Built, error) {
		close(buildStarted)
		// Hold the build open until the waiter is (very likely) blocked
		// on the ready channel.
		select {
		case <-buildRelease:
		case <-time.After(50 * time.Millisecond):
		}
		return warmBuilder(c, nil)()
	})
	if err != nil {
		t.Fatal(err)
	}
	if outcome != service.OutcomeColdBuild {
		t.Fatalf("first acquire outcome %q, want %q", outcome, service.OutcomeColdBuild)
	}
	wg.Wait()
	if waiterOutcome != service.OutcomeSingleFlight {
		t.Fatalf("concurrent acquire outcome %q, want %q", waiterOutcome, service.OutcomeSingleFlight)
	}
	pool.Release(e)

	_, outcome, err = pool.AcquireDetail("k", warmBuilder(c, nil))
	if err != nil {
		t.Fatal(err)
	}
	if outcome != service.OutcomeWarmHit {
		t.Fatalf("idle acquire outcome %q, want %q", outcome, service.OutcomeWarmHit)
	}
}
