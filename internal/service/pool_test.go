package service_test

import (
	"context"
	"encoding/json"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/circuit"
	"repro/internal/service"
)

func warmBuilder(c *circuit.Circuit, builds *atomic.Int64) func() (service.Built, error) {
	return func() (service.Built, error) {
		if builds != nil {
			builds.Add(1)
		}
		model := service.FaultModel{}
		return service.Built{
			Session: service.NewWarmSession(c, model, 2),
			Circuit: c,
			Model:   model,
			MaxK:    2,
		}, nil
	}
}

// TestPoolSingleFlight: concurrent requests for the same cold key must
// build the session exactly once; everyone else waits and hits.
func TestPoolSingleFlight(t *testing.T) {
	c, tests := scenario(t, 1, 4)
	pool := service.NewSessionPool(service.PoolOptions{})
	key := service.SessionKey(service.Fingerprint(c), service.FaultModel{})

	var builds atomic.Int64
	var hits atomic.Int64
	var wg sync.WaitGroup
	results := make([][][]int, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, hit, err := pool.Acquire(key, warmBuilder(c, &builds))
			if err != nil {
				t.Error(err)
				return
			}
			defer pool.Release(e)
			if hit {
				hits.Add(1)
			}
			rep, err := e.Diagnose(context.Background(), tests, service.RunSpec{K: 2})
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = rep.Solutions
		}(i)
	}
	wg.Wait()
	if builds.Load() != 1 {
		t.Fatalf("cold key built %d times, want exactly 1 (single flight)", builds.Load())
	}
	if hits.Load() != 15 {
		t.Fatalf("%d hits for 16 concurrent requests, want 15", hits.Load())
	}
	if pool.Hits.Value() != 15 || pool.Misses.Value() != 1 {
		t.Fatalf("counters: hits=%d misses=%d", pool.Hits.Value(), pool.Misses.Value())
	}
	// Per-session serialization: all concurrent diagnoses of one session
	// must have produced the identical canonical solution list.
	for i := 1; i < len(results); i++ {
		if !reflect.DeepEqual(results[i], results[0]) {
			t.Fatalf("request %d solutions %v != request 0 %v", i, results[i], results[0])
		}
	}
}

// TestPoolEvictionRebuildsIdentical: an evicted session must rebuild on
// the next request and return the identical canonical solutions.
func TestPoolEvictionRebuildsIdentical(t *testing.T) {
	cA, testsA := scenario(t, 2, 4)
	cB, _ := scenario(t, 40, 4)
	pool := service.NewSessionPool(service.PoolOptions{MaxSessions: 1})
	keyA := service.SessionKey(service.Fingerprint(cA), service.FaultModel{})
	keyB := service.SessionKey(service.Fingerprint(cB), service.FaultModel{})
	if keyA == keyB {
		t.Fatal("distinct circuits with equal keys")
	}

	diagnose := func(key string, c *circuit.Circuit, tests circuit.TestSet) ([][]int, bool) {
		e, hit, err := pool.Acquire(key, warmBuilder(c, nil))
		if err != nil {
			t.Fatal(err)
		}
		defer pool.Release(e)
		rep, err := e.Diagnose(context.Background(), tests, service.RunSpec{K: 2})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Complete {
			t.Fatal("incomplete without budgets")
		}
		return rep.Solutions, hit
	}

	first, hit := diagnose(keyA, cA, testsA)
	if hit {
		t.Fatal("first request hit a cold pool")
	}
	// B displaces A (MaxSessions 1, A idle).
	diagnose(keyB, cB, circuit.TestSet{testsA[0].Clone()})
	if pool.Evictions.Value() == 0 {
		t.Fatal("no eviction recorded")
	}
	if pool.Len() != 1 {
		t.Fatalf("pool holds %d sessions, want 1", pool.Len())
	}
	// A rebuilds (miss) and must reproduce the identical solutions.
	again, hit := diagnose(keyA, cA, testsA)
	if hit {
		t.Fatal("evicted key reported a pool hit")
	}
	b1, _ := json.Marshal(first)
	b2, _ := json.Marshal(again)
	if string(b1) != string(b2) {
		t.Fatalf("rebuilt session diverged:\n  first %s\n  again %s", b1, b2)
	}
}

// TestPoolBusyEntriesSurviveEviction: a pinned session must not be
// evicted even when the pool is over budget; the bound is soft.
func TestPoolBusyEntriesSurviveEviction(t *testing.T) {
	cA, testsA := scenario(t, 3, 3)
	cB, _ := scenario(t, 60, 3)
	pool := service.NewSessionPool(service.PoolOptions{MaxSessions: 1})
	keyA := service.SessionKey(service.Fingerprint(cA), service.FaultModel{})
	keyB := service.SessionKey(service.Fingerprint(cB), service.FaultModel{})

	eA, _, err := pool.Acquire(keyA, warmBuilder(cA, nil))
	if err != nil {
		t.Fatal(err)
	}
	// A stays pinned while B arrives: both live, over budget.
	eB, _, err := pool.Acquire(keyB, warmBuilder(cB, nil))
	if err != nil {
		t.Fatal(err)
	}
	pool.Release(eB)
	if pool.Len() != 2 {
		t.Fatalf("pinned session evicted: pool has %d sessions", pool.Len())
	}
	// The pinned session still works.
	if _, err := eA.Diagnose(context.Background(), testsA, service.RunSpec{K: 2}); err != nil {
		t.Fatal(err)
	}
	// Releasing A lets the budget enforce again on the next operation.
	pool.Release(eA)
	eB2, _, err := pool.Acquire(keyB, warmBuilder(cB, nil))
	if err != nil {
		t.Fatal(err)
	}
	pool.Release(eB2)
	if pool.Len() != 1 {
		t.Fatalf("pool holds %d sessions after release, want 1", pool.Len())
	}
	if pool.TotalBytes() <= 0 {
		t.Fatalf("byte accounting lost: %d", pool.TotalBytes())
	}
}

// TestPoolByID: the id lookup pins the entry; unknown ids miss.
func TestPoolByID(t *testing.T) {
	c, tests := scenario(t, 4, 3)
	pool := service.NewSessionPool(service.PoolOptions{})
	key := service.SessionKey(service.Fingerprint(c), service.FaultModel{})
	e, _, err := pool.Acquire(key, warmBuilder(c, nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Diagnose(context.Background(), tests, service.RunSpec{K: 2}); err != nil {
		t.Fatal(err)
	}
	pool.Release(e)

	got, ok := pool.ByID(e.ID())
	if !ok || got != e {
		t.Fatalf("ByID(%q) = %v, %v", e.ID(), got, ok)
	}
	pool.Release(got)
	if _, ok := pool.ByID("nope"); ok {
		t.Fatal("unknown id resolved")
	}
	snap := pool.Snapshot()
	if len(snap) != 1 || snap[0].ID != e.ID() || snap[0].Stats.Copies != len(tests) {
		t.Fatalf("snapshot %+v", snap)
	}
}
