package service_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/service"
)

// TestSchedulerBackpressure: with one worker and a one-deep queue, a
// third concurrent request must be rejected immediately.
func TestSchedulerBackpressure(t *testing.T) {
	s := service.NewScheduler(service.SchedulerOptions{Workers: 1, Queue: 1})
	release := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.Do(context.Background(), func(context.Context) {
			close(started)
			<-release
		})
	}()
	<-started // worker busy

	// Queue slot: admitted, waits behind the busy worker.
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := s.Do(context.Background(), func(context.Context) {}); err != nil {
			t.Errorf("queued task failed: %v", err)
		}
	}()
	// Wait until the slot is provably occupied, then the next
	// submission must bounce instead of blocking.
	deadline := time.Now().Add(2 * time.Second)
	for s.Queued.Value() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("queue slot never filled")
		}
		time.Sleep(time.Millisecond)
	}
	if err := s.Do(context.Background(), func(context.Context) {}); !errors.Is(err, service.ErrOverloaded) {
		t.Fatalf("full queue returned %v, want ErrOverloaded", err)
	}
	if s.Rejected.Value() == 0 {
		t.Fatal("rejection not counted")
	}
	close(release)
	wg.Wait()
}

// TestSchedulerQueuedExpiry: a request whose context dies while queued
// is skipped, not executed.
func TestSchedulerQueuedExpiry(t *testing.T) {
	s := service.NewScheduler(service.SchedulerOptions{Workers: 1, Queue: 4})
	release := make(chan struct{})
	started := make(chan struct{})
	go s.Do(context.Background(), func(context.Context) {
		close(started)
		<-release
	})
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	ran := false
	done := make(chan error, 1)
	go func() {
		done <- s.Do(ctx, func(context.Context) { ran = true })
	}()
	cancel()
	close(release)
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("Do returned %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("expired queued task was executed")
	}
}

// TestSchedulerDrain: drain finishes admitted work, then refuses more.
func TestSchedulerDrain(t *testing.T) {
	s := service.NewScheduler(service.SchedulerOptions{Workers: 2, Queue: 8})
	var done int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Do(context.Background(), func(context.Context) {
				time.Sleep(5 * time.Millisecond)
				mu.Lock()
				done++
				mu.Unlock()
			})
		}()
	}
	// Give the submissions a moment to be admitted.
	time.Sleep(20 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()
	mu.Lock()
	n := done
	mu.Unlock()
	if n != 6 {
		t.Fatalf("drain completed %d/6 admitted tasks", n)
	}
	if err := s.Do(context.Background(), func(context.Context) {}); !errors.Is(err, service.ErrDraining) {
		t.Fatalf("post-drain Do returned %v, want ErrDraining", err)
	}
}

// TestSchedulerRequestContext: budget clamping and defaulting.
func TestSchedulerRequestContext(t *testing.T) {
	s := service.NewScheduler(service.SchedulerOptions{
		Workers: 1, Queue: 1,
		DefaultTimeout: 50 * time.Millisecond,
		MaxTimeout:     100 * time.Millisecond,
	})
	ctx, cancel := s.RequestContext(context.Background(), 0)
	defer cancel()
	if dl, ok := ctx.Deadline(); !ok || time.Until(dl) > 110*time.Millisecond {
		t.Fatalf("default budget not applied: %v %v", dl, ok)
	}
	ctx2, cancel2 := s.RequestContext(context.Background(), time.Hour)
	defer cancel2()
	dl, ok := ctx2.Deadline()
	if !ok || time.Until(dl) > 110*time.Millisecond {
		t.Fatalf("budget not clamped to MaxTimeout: %v", dl)
	}
}
