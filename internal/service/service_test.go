package service_test

import (
	"strings"
	"testing"

	"repro/internal/circuit"
	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/service"
	"repro/internal/tgen"
)

// scenario builds a small detectable faulty circuit with m failing
// tests, scanning seeds so table-driven tests always run.
func scenario(t *testing.T, start int64, m int) (*circuit.Circuit, circuit.TestSet) {
	t.Helper()
	for seed := start; seed < start+30; seed++ {
		golden, err := gen.Generate(gen.Spec{Name: "svc", Inputs: 6, Outputs: 3, Gates: 40, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		faulty, _, err := faults.Inject(golden, faults.Options{Count: 2, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		tests, err := tgen.Random(golden, faulty, tgen.Options{Count: m, Seed: seed, MaxPatterns: 1 << 12})
		if err == tgen.ErrUndetected {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		return faulty, tests
	}
	t.Fatalf("no detectable scenario from seed %d", start)
	return nil, nil
}

// benchText renders a circuit as .bench netlist text (the wire form).
func benchText(t *testing.T, c *circuit.Circuit) string {
	t.Helper()
	var sb strings.Builder
	if err := circuit.WriteBench(&sb, c); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// testJSON converts tests to the wire form.
func testJSON(tests circuit.TestSet) []service.TestJSON {
	out := make([]service.TestJSON, len(tests))
	for i, tc := range tests {
		var vb strings.Builder
		for _, b := range tc.Vector {
			if b {
				vb.WriteByte('1')
			} else {
				vb.WriteByte('0')
			}
		}
		out[i] = service.TestJSON{Vector: vb.String(), Output: tc.Output, Want: tc.Want}
	}
	return out
}
