package service_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/failpoint"
	"repro/internal/journal"
	"repro/internal/service"
)

// openJournal opens (or reopens) a journal directory for a test server.
func openJournal(t *testing.T, dir string) (*journal.Writer, *journal.State) {
	t.Helper()
	jw, st, err := journal.Open(journal.Options{Dir: dir})
	if err != nil {
		t.Fatalf("journal open: %v", err)
	}
	return jw, st
}

func newJournaledServer(t *testing.T, jw *journal.Writer, pending bool, pool service.PoolOptions) (*service.Server, *httptest.Server) {
	t.Helper()
	srv := service.NewServer(service.Options{
		Pool:          pool,
		Scheduler:     service.SchedulerOptions{Workers: 4, Queue: 64},
		Journal:       jw,
		ReplayPending: pending,
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// TestJournalCrashReplayServesByteIdentical is the crash-equivalence
// property in-process: build warm state (including an incremental
// edit), crash without sealing, replay from the journal, and require
// the restarted pool to serve byte-identical solutions as warm hits
// with zero re-encoded copies.
func TestJournalCrashReplayServesByteIdentical(t *testing.T) {
	dir := t.TempDir()
	jw, st0 := openJournal(t, dir)
	if len(st0.Sessions) != 0 {
		t.Fatalf("fresh journal not empty: %+v", st0)
	}
	_, tsA := newJournaledServer(t, jw, false, service.PoolOptions{})

	c1, tests1 := scenario(t, 300, 5)
	c2, tests2 := scenario(t, 340, 4)
	b1, b2 := benchText(t, c1), benchText(t, c2)

	r1 := diagnose(t, tsA.URL, service.DiagnoseRequest{Bench: b1, Tests: testJSON(tests1), K: 2})
	diagnose(t, tsA.URL, service.DiagnoseRequest{Bench: b2, Tests: testJSON(tests2), K: 2})
	// Incremental edit on session 1: retract the first test. The journal
	// must fold this delta so the replayed session carries the edited
	// set, not the original.
	code, incBase := post[service.DiagnoseResponse](t, tsA.URL+"/sessions/"+r1.Session+"/tests",
		service.SessionTestsRequest{Remove: []int{0}})
	if code != http.StatusOK {
		t.Fatalf("incremental edit -> %d", code)
	}
	warmBase := diagnose(t, tsA.URL, service.DiagnoseRequest{Bench: b2, Tests: testJSON(tests2), K: 2})
	if !warmBase.PoolHit {
		t.Fatal("second diagnosis of c2 was not warm")
	}

	// Crash: stop serving and drop the writer without a seal record.
	tsA.Close()
	jw.Close()

	jw2, st := openJournal(t, dir)
	defer jw2.Close()
	if st.Sealed {
		t.Fatal("unsealed log read back as sealed")
	}
	if len(st.Sessions) != 2 {
		t.Fatalf("journal roster: got %d sessions, want 2: %+v", len(st.Sessions), st.Sessions)
	}
	srvB, tsB := newJournaledServer(t, jw2, true, service.PoolOptions{})

	// Warming regression: not-ready (503 warming) until replay finishes,
	// while liveness stays 200.
	if code, h := getHealth(t, tsB.URL); code != http.StatusServiceUnavailable || h.Status != "warming" || !h.Live {
		t.Fatalf("healthz during replay: code=%d %+v, want 503 warming live", code, h)
	}
	if resp, err := http.Get(tsB.URL + "/livez"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("livez during replay: %v %v", resp.StatusCode, err)
	} else {
		resp.Body.Close()
	}

	rep := srvB.Replay(st, 2)
	if rep.Sessions != 2 || rep.Skipped != 0 {
		t.Fatalf("replay: %+v, want 2 sessions 0 skipped", rep)
	}
	if code, h := getHealth(t, tsB.URL); code != http.StatusOK || !h.Ready || h.Warming {
		t.Fatalf("healthz after replay: code=%d %+v, want 200 ready", code, h)
	}

	// Re-sent request on the replayed pool: warm hit, nothing re-encoded,
	// solutions byte-identical to the pre-crash baseline.
	after := diagnose(t, tsB.URL, service.DiagnoseRequest{Bench: b2, Tests: testJSON(tests2), K: 2})
	if !after.PoolHit {
		t.Fatal("replayed session did not serve a warm hit")
	}
	if after.NewCopies != 0 {
		t.Fatalf("replayed session re-encoded %d copies, want 0", after.NewCopies)
	}
	if got, want := mustJSON(t, after.Solutions), mustJSON(t, warmBase.Solutions); got != want {
		t.Fatalf("replayed solutions differ:\n got %s\nwant %s", got, want)
	}

	// The replayed session 1 must carry the post-edit active set and the
	// pre-crash run's K as incremental defaults: a no-op edit re-runs the
	// edited set and must reproduce the incremental baseline bytes.
	parsed1, err := circuit.ParseBench("t", strings.NewReader(b1))
	if err != nil {
		t.Fatal(err)
	}
	key1 := service.SessionKey(service.Fingerprint(parsed1), service.FaultModel{Encoding: cnf.SeqCounter})
	var id1 string
	for _, info := range srvB.Pool().Snapshot() {
		if info.Key == key1 {
			id1 = info.ID
		}
	}
	if id1 == "" {
		t.Fatalf("session for key %s not replayed", key1)
	}
	code, incAfter := post[service.DiagnoseResponse](t, tsB.URL+"/sessions/"+id1+"/tests",
		service.SessionTestsRequest{})
	if code != http.StatusOK {
		t.Fatalf("incremental on replayed session -> %d", code)
	}
	if incAfter.NewCopies != 0 {
		t.Fatalf("replayed incremental re-encoded %d copies, want 0", incAfter.NewCopies)
	}
	if got, want := mustJSON(t, incAfter.Solutions), mustJSON(t, incBase.Solutions); got != want {
		t.Fatalf("replayed incremental solutions differ:\n got %s\nwant %s", got, want)
	}
}

// TestReplayBoundedByLiveRoster: evictions write SessionEvicted, so the
// folded roster — and therefore replay cost — is bounded by the live
// pool, not by journal length.
func TestReplayBoundedByLiveRoster(t *testing.T) {
	dir := t.TempDir()
	jw, _ := openJournal(t, dir)
	small := service.PoolOptions{MaxSessions: 2}
	_, tsA := newJournaledServer(t, jw, false, small)

	for i := int64(0); i < 4; i++ {
		c, tests := scenario(t, 400+40*i, 3)
		diagnose(t, tsA.URL, service.DiagnoseRequest{Bench: benchText(t, c), Tests: testJSON(tests), K: 2})
	}
	tsA.Close()
	jw.Close()

	jw2, st := openJournal(t, dir)
	defer jw2.Close()
	if len(st.Sessions) != 2 {
		t.Fatalf("folded roster has %d sessions, want 2 (evicted sessions must not replay): %+v",
			len(st.Sessions), st.Sessions)
	}
	srvB, _ := newJournaledServer(t, jw2, true, small)
	rep := srvB.Replay(st, 2)
	if rep.Sessions != 2 {
		t.Fatalf("replay rebuilt %d sessions, want 2: %+v", rep.Sessions, rep)
	}
	if got := srvB.Pool().Len(); got != 2 {
		t.Fatalf("pool after replay: %d sessions, want 2", got)
	}
}

// TestDrainSealsJournal: graceful shutdown writes the clean-shutdown
// seal, and a sealed log replays without tail repair.
func TestDrainSealsJournal(t *testing.T) {
	dir := t.TempDir()
	jw, _ := openJournal(t, dir)
	srvA, tsA := newJournaledServer(t, jw, false, service.PoolOptions{})
	c, tests := scenario(t, 500, 4)
	diagnose(t, tsA.URL, service.DiagnoseRequest{Bench: benchText(t, c), Tests: testJSON(tests), K: 2})

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srvA.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	tsA.Close()

	jw2, st := openJournal(t, dir)
	defer jw2.Close()
	if !st.Sealed {
		t.Fatal("drained journal not sealed")
	}
	if st.TornTailBytes != 0 || st.Skipped != 0 {
		t.Fatalf("sealed log reported damage: %+v", st)
	}
	if len(st.Sessions) != 1 {
		t.Fatalf("sealed roster: %+v", st.Sessions)
	}
}

// TestReplayCorruptedJournalBootsWithSkips: a flipped byte mid-log and
// trailing garbage must not stop the boot — the corrupt record is
// skipped with the counter > 0, the torn tail truncated, and the
// surviving sessions replay and serve warm.
func TestReplayCorruptedJournalBootsWithSkips(t *testing.T) {
	dir := t.TempDir()
	jw, _ := openJournal(t, dir)
	_, tsA := newJournaledServer(t, jw, false, service.PoolOptions{})
	c1, tests1 := scenario(t, 600, 4)
	c2, tests2 := scenario(t, 640, 4)
	b2 := benchText(t, c2)
	diagnose(t, tsA.URL, service.DiagnoseRequest{Bench: benchText(t, c1), Tests: testJSON(tests1), K: 2})
	diagnose(t, tsA.URL, service.DiagnoseRequest{Bench: b2, Tests: testJSON(tests2), K: 2})
	tsA.Close()
	jw.Close()

	seg := filepath.Join(dir, "diag-00000001.wal")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of the first record (c1's session-built) and
	// append garbage that never resolves into a frame (a torn tail).
	data[14] ^= 0xFF
	data = append(data, []byte("crash left this half-written tail")...)
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	jw2, st := openJournal(t, dir)
	defer jw2.Close()
	if st.Skipped == 0 {
		t.Fatalf("corrupt record not counted: %+v", st)
	}
	if st.TornTailBytes == 0 {
		t.Fatalf("torn tail not detected: %+v", st)
	}
	if len(st.Sessions) != 1 {
		t.Fatalf("surviving roster: got %d sessions, want 1 (c2): %+v", len(st.Sessions), st.Sessions)
	}
	srvB, tsB := newJournaledServer(t, jw2, true, service.PoolOptions{})
	rep := srvB.Replay(st, 2)
	if rep.Sessions != 1 {
		t.Fatalf("replay after corruption: %+v", rep)
	}
	after := diagnose(t, tsB.URL, service.DiagnoseRequest{Bench: b2, Tests: testJSON(tests2), K: 2})
	if !after.PoolHit || after.NewCopies != 0 {
		t.Fatalf("surviving session not warm after corrupted-boot replay: %+v", after)
	}
}

// TestReplayFailpointSkipsSessionNotBoot: an injected journal/replay
// failure skips the session (counted) instead of aborting the boot, and
// the server still serves that circuit via a cold rebuild.
func TestReplayFailpointSkipsSessionNotBoot(t *testing.T) {
	dir := t.TempDir()
	jw, _ := openJournal(t, dir)
	_, tsA := newJournaledServer(t, jw, false, service.PoolOptions{})
	c, tests := scenario(t, 700, 4)
	b := benchText(t, c)
	diagnose(t, tsA.URL, service.DiagnoseRequest{Bench: b, Tests: testJSON(tests), K: 2})
	tsA.Close()
	jw.Close()

	jw2, st := openJournal(t, dir)
	defer jw2.Close()
	if len(st.Sessions) != 1 {
		t.Fatalf("roster: %+v", st.Sessions)
	}
	if err := failpoint.Enable("journal/replay=error(1)x4", 1); err != nil {
		t.Fatal(err)
	}
	srvB, tsB := newJournaledServer(t, jw2, true, service.PoolOptions{})
	rep := srvB.Replay(st, 1)
	failpoint.Disable()
	if rep.Sessions != 0 || rep.Skipped != 1 {
		t.Fatalf("failpoint replay: %+v, want 0 sessions 1 skipped", rep)
	}
	if code, h := getHealth(t, tsB.URL); code != http.StatusOK || !h.Ready {
		t.Fatalf("server not ready after skipped replay: %d %+v", code, h)
	}
	resp := diagnose(t, tsB.URL, service.DiagnoseRequest{Bench: b, Tests: testJSON(tests), K: 2})
	if resp.PoolHit || !resp.Complete {
		t.Fatalf("cold rebuild after skipped replay: %+v", resp)
	}
}

// TestJournalDegradedModeKeepsServing: an injected append failure flips
// the journal into disabled-degraded mode; requests keep succeeding and
// /healthz reports degraded while staying ready.
func TestJournalDegradedModeKeepsServing(t *testing.T) {
	dir := t.TempDir()
	jw, _ := openJournal(t, dir)
	_, tsA := newJournaledServer(t, jw, false, service.PoolOptions{})
	defer jw.Close()

	if err := failpoint.Enable("journal/append=error(1)x1", 1); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disable()
	c, tests := scenario(t, 800, 4)
	resp := diagnose(t, tsA.URL, service.DiagnoseRequest{Bench: benchText(t, c), Tests: testJSON(tests), K: 2})
	if !resp.Complete {
		t.Fatalf("request failed under journal degradation: %+v", resp)
	}
	if !jw.Degraded() {
		t.Fatal("journal not degraded after injected append failure")
	}
	code, h := getHealth(t, tsA.URL)
	if code != http.StatusOK || !h.Ready {
		t.Fatalf("degraded journal must not flip readiness: %d %+v", code, h)
	}
	if h.Status != "degraded" || !h.JournalDegraded {
		t.Fatalf("healthz must surface journal degradation: %+v", h)
	}
	// Serving continues past the first failure.
	resp2 := diagnose(t, tsA.URL, service.DiagnoseRequest{Bench: benchText(t, c), Tests: testJSON(tests), K: 2})
	if !resp2.PoolHit {
		t.Fatalf("warm serving stopped after journal degradation: %+v", resp2)
	}
}
