package service_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"reflect"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/failpoint"
	"repro/internal/service"
)

// getHealth fetches GET /healthz.
func getHealth(t *testing.T, base string) (int, service.HealthJSON) {
	t.Helper()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h service.HealthJSON
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, h
}

// faultScenario scans for a scenario whose complete solution space has
// at least min diagnoses (so partial-answer tests have something to be
// partial about).
func faultScenario(t *testing.T, min int) (*circuit.Circuit, circuit.TestSet, [][]int) {
	t.Helper()
	for start := int64(1); start < 200; start += 10 {
		c, tests := scenario(t, start, 6)
		sols := truth(t, benchText(t, c), tests, 2, 1)
		if len(sols) >= min {
			return c, tests, sols
		}
	}
	t.Skipf("no scenario with >= %d solutions found", min)
	return nil, nil, nil
}

// TestSchedulerQueueTimeoutDistinct: a request skipped because its
// deadline expired in the queue returns ErrQueueTimeout, matchable
// separately from plain context errors.
func TestSchedulerQueueTimeoutDistinct(t *testing.T) {
	s := service.NewScheduler(service.SchedulerOptions{Workers: 1, Queue: 4})
	release := make(chan struct{})
	started := make(chan struct{})
	go s.Do(context.Background(), func(context.Context) {
		close(started)
		<-release
	})
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	done := make(chan error, 1)
	go func() {
		done <- s.Do(ctx, func(context.Context) {})
	}()
	close(release)
	err := <-done
	if !errors.Is(err, service.ErrQueueTimeout) {
		t.Fatalf("Do returned %v, want ErrQueueTimeout", err)
	}
	if s.QueueTimeouts.Value() != 1 {
		t.Fatalf("queue timeouts counted %d, want 1", s.QueueTimeouts.Value())
	}
}

// TestSchedulerRecoversPanic: a panicking request function surfaces as
// PanicError and the worker keeps serving.
func TestSchedulerRecoversPanic(t *testing.T) {
	s := service.NewScheduler(service.SchedulerOptions{Workers: 1, Queue: 4})
	err := s.Do(context.Background(), func(context.Context) { panic("poisoned request") })
	var pe *service.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Do returned %v, want PanicError", err)
	}
	if s.Panics.Value() != 1 {
		t.Fatalf("panics counted %d, want 1", s.Panics.Value())
	}
	// The single worker survived the panic.
	ran := false
	if err := s.Do(context.Background(), func(context.Context) { ran = true }); err != nil || !ran {
		t.Fatalf("worker dead after recovered panic: ran=%v err=%v", ran, err)
	}
}

// TestServerRetriesTransientFailures: injected transient failures on
// the service failpoint are retried with backoff and the request still
// answers 200 with the exact solution set.
func TestServerRetriesTransientFailures(t *testing.T) {
	defer failpoint.Disable()
	c, tests, want := faultScenario(t, 1)
	srv, ts := newTestServer(t, 2)
	bench := benchText(t, c)

	// Two injected errors: attempts 1 and 2 fail, attempt 3 serves.
	if err := failpoint.Enable("service/diagnose=error(1)x2", 11); err != nil {
		t.Fatal(err)
	}
	resp := diagnose(t, ts.URL, service.DiagnoseRequest{Bench: bench, Tests: testJSON(tests), K: 2})
	failpoint.Disable()
	if !resp.Complete || mustJSON(t, resp.Solutions) != mustJSON(t, want) {
		t.Fatalf("retried request diverged: complete=%v %v != %v", resp.Complete, resp.Solutions, want)
	}
	if code, _ := getHealth(t, ts.URL); code != http.StatusOK {
		t.Fatalf("healthz %d after recovered transient failures", code)
	}
	_ = srv
}

// TestServerRecoversInjectedPanic: a panic on the first attempt of an
// idempotent /diagnose is recovered and retried — the client sees a
// clean 200, /healthz flips to degraded.
func TestServerRecoversInjectedPanic(t *testing.T) {
	defer failpoint.Disable()
	c, tests, want := faultScenario(t, 1)
	_, ts := newTestServer(t, 2)
	bench := benchText(t, c)

	if err := failpoint.Enable("service/diagnose=panic(1)x1", 11); err != nil {
		t.Fatal(err)
	}
	resp := diagnose(t, ts.URL, service.DiagnoseRequest{Bench: bench, Tests: testJSON(tests), K: 2})
	failpoint.Disable()
	if !resp.Complete || mustJSON(t, resp.Solutions) != mustJSON(t, want) {
		t.Fatalf("post-panic retry diverged: complete=%v %v != %v", resp.Complete, resp.Solutions, want)
	}
	code, health := getHealth(t, ts.URL)
	if code != http.StatusOK || !health.Degraded || health.Status != "degraded" {
		t.Fatalf("healthz after recovered panic: code=%d %+v", code, health)
	}
	if health.PanicsRecovered == 0 {
		t.Fatal("recovered panic not counted")
	}
}

// TestServerPanicExhaustionIs500: when every retry attempt panics the
// request fails with 500 — but the process survives and the very next
// request serves normally.
func TestServerPanicExhaustionIs500(t *testing.T) {
	defer failpoint.Disable()
	c, tests, want := faultScenario(t, 1)
	_, ts := newTestServer(t, 2)
	bench := benchText(t, c)
	req := service.DiagnoseRequest{Bench: bench, Tests: testJSON(tests), K: 2}

	if err := failpoint.Enable("service/diagnose=panic(1)", 11); err != nil {
		t.Fatal(err)
	}
	code, _ := post[service.DiagnoseResponse](t, ts.URL+"/diagnose", req)
	failpoint.Disable()
	if code != http.StatusInternalServerError {
		t.Fatalf("all-attempts-panic answered %d, want 500", code)
	}
	resp := diagnose(t, ts.URL, req)
	if !resp.Complete || mustJSON(t, resp.Solutions) != mustJSON(t, want) {
		t.Fatalf("server unhealthy after panic storm: complete=%v %v != %v", resp.Complete, resp.Solutions, want)
	}
}

// TestServerDegradedSolutionCap: a budget-capped run answers 200 with
// complete=false, the solutions found so far, and a degraded reason —
// the graceful-degradation contract.
func TestServerDegradedSolutionCap(t *testing.T) {
	c, tests, want := faultScenario(t, 2)
	srv, ts := newTestServer(t, 2)
	bench := benchText(t, c)

	resp := diagnose(t, ts.URL, service.DiagnoseRequest{
		Bench: bench, Tests: testJSON(tests), K: 2, MaxSolutions: 1,
	})
	if resp.Complete {
		t.Fatalf("capped run reported complete with %d of %d solutions", len(resp.Solutions), len(want))
	}
	if resp.Degraded != "solution-cap" {
		t.Fatalf("degraded reason %q, want solution-cap", resp.Degraded)
	}
	if len(resp.Solutions) != 1 {
		t.Fatalf("capped run returned %d solutions, want the 1 found so far", len(resp.Solutions))
	}
	code, health := getHealth(t, ts.URL)
	if code != http.StatusOK || !health.Degraded || health.DegradedResponses == 0 {
		t.Fatalf("healthz after degraded response: code=%d %+v", code, health)
	}
	_ = srv
}

// TestServerQueueTimeout503: a request whose deadline expires while it
// waits behind a busy worker answers 503 (retry later), not 504.
func TestServerQueueTimeout503(t *testing.T) {
	defer failpoint.Disable()
	c, tests, _ := faultScenario(t, 1)
	srv, ts := newTestServer(t, 1)
	bench := benchText(t, c)
	req := service.DiagnoseRequest{Bench: bench, Tests: testJSON(tests), K: 2}

	// The delay failpoint parks the only worker for 300ms.
	if err := failpoint.Enable("service/diagnose=delay(300ms,1)x1", 11); err != nil {
		t.Fatal(err)
	}
	first := make(chan struct{})
	go func() {
		defer close(first)
		post[service.DiagnoseResponse](t, ts.URL+"/diagnose", req)
	}()
	deadline := time.Now().Add(2 * time.Second)
	for srv.Sched().InFlight.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first request never started")
		}
		time.Sleep(time.Millisecond)
	}
	fast := req
	fast.TimeoutMs = 1
	code, _ := post[service.DiagnoseResponse](t, ts.URL+"/diagnose", fast)
	<-first
	if code != http.StatusServiceUnavailable {
		t.Fatalf("queued-expired request answered %d, want 503", code)
	}
	if srv.Sched().QueueTimeouts.Value() == 0 {
		t.Fatal("queue timeout not counted")
	}
}

// TestWarmSessionSurvivesMidRunCancel is the warm-path cancellation
// satellite: interrupted runs (pre-cancelled context, expired deadline,
// solution-capped partial round) must leave the PoolEntry usable, and
// the next full run on the same entry must be byte-identical to a
// fresh session's answer.
func TestWarmSessionSurvivesMidRunCancel(t *testing.T) {
	c, tests, _ := faultScenario(t, 2)
	pool := service.NewSessionPool(service.PoolOptions{})
	key := service.SessionKey(service.Fingerprint(c), service.FaultModel{})
	entry, _, err := pool.Acquire(key, warmBuilder(c, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Release(entry)

	// Fresh-session ground truth from an independent pool.
	fresh, _, err := service.NewSessionPool(service.PoolOptions{}).Acquire(key, warmBuilder(c, nil))
	if err != nil {
		t.Fatal(err)
	}
	wantRep, err := fresh.Diagnose(context.Background(), tests, service.RunSpec{K: 2})
	if err != nil || !wantRep.Complete {
		t.Fatalf("fresh baseline: complete=%v err=%v", wantRep.Complete, err)
	}

	// 1. Pre-cancelled context: the round aborts immediately.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if rep, err := entry.Diagnose(cancelled, tests, service.RunSpec{K: 2}); err == nil && rep.Complete {
		t.Fatal("cancelled run reported complete")
	}
	// 2. Already-expired deadline.
	expired, cancel2 := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel2()
	time.Sleep(time.Millisecond)
	if rep, err := entry.Diagnose(expired, tests, service.RunSpec{K: 2}); err == nil && rep.Complete {
		t.Fatal("expired run reported complete")
	}
	// 3. A genuinely partial round: stop after the first solution.
	rep, err := entry.Diagnose(context.Background(), tests, service.RunSpec{K: 2, MaxSolutions: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Complete {
		t.Fatal("capped warm run reported complete")
	}

	// The entry must still serve complete, byte-identical answers.
	got, err := entry.Diagnose(context.Background(), tests, service.RunSpec{K: 2})
	if err != nil || !got.Complete {
		t.Fatalf("entry unusable after interrupted runs: complete=%v err=%v", got.Complete, err)
	}
	if !reflect.DeepEqual(got.Solutions, wantRep.Solutions) {
		t.Fatalf("post-cancel run diverged from fresh session:\n got %v\nwant %v", got.Solutions, wantRep.Solutions)
	}
}
