// Package expt is the benchmark harness reproducing the paper's
// evaluation (Section 5): Table 2 (runtimes of BSIM, COV and BSAT),
// Table 3 (diagnosis quality) and Figure 6 (quality and solution-count
// scatter of BSAT versus COV over all benchmarks). Circuits come from
// the seeded synthetic ISCAS89-like suite (see internal/gen and the
// substitution notes in DESIGN.md); errors are injected gate changes;
// test-sets are shared prefixes exactly as in the paper ("a part of the
// same test-set has been used").
package expt

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/tgen"
)

// Budget bounds each diagnosis run so the harness completes on a laptop;
// zero values mean unlimited (the paper used 512 MB / 30 min per run).
type Budget struct {
	MaxSolutions int           // cap on enumerated solutions per approach
	MaxConflicts int64         // SAT conflict budget per solve
	Timeout      time.Duration // wall-clock bound per BSAT enumeration
}

// Engine selects the SAT-diagnosis driver for the BSAT column.
type Engine int

// Engines: EngineMono is the paper's monolithic instance (one copy per
// test up front); EngineCEGAR grows the instance lazily with the
// simulation oracle refuting spurious candidates (identical solutions).
const (
	EngineMono Engine = iota
	EngineCEGAR
)

// String names the engine.
func (e Engine) String() string {
	switch e {
	case EngineMono:
		return "mono"
	case EngineCEGAR:
		return "cegar"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// ParseEngine maps a flag value to an Engine.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "", "mono":
		return EngineMono, nil
	case "cegar":
		return EngineCEGAR, nil
	default:
		return 0, fmt.Errorf("expt: unknown engine %q (want mono or cegar)", s)
	}
}

// Config describes one experiment row group: a circuit, an error count
// and the test-set sizes to sweep.
type Config struct {
	Circuit string // suite circuit name (gen.Suite)
	P       int    // number of injected errors; k is set to p as in the paper
	Ms      []int  // test counts (default 4, 8, 16, 32)
	Seed    int64  // injection/test-generation seed
	Model   faults.Model
	Budget  Budget
	Engine  Engine // SAT driver for the BSAT column (default EngineMono)
	// Shards > 1 runs the SAT enumeration sharded (identical solutions,
	// concurrent disjoint candidate slices); 0/1 = monolithic.
	Shards int
	// PaperScale generates the full-size circuit analog (only s38417x
	// differs from the default suite; see DESIGN.md).
	PaperScale bool
}

// DefaultMs is the paper's test-count sweep.
var DefaultMs = []int{4, 8, 16, 32}

// Row is one (circuit, p, m) measurement: every column of Tables 2 and 3.
type Row struct {
	Circuit string
	Gates   int
	P, M    int

	// Table 2 columns.
	BSIMTime   time.Duration
	CovTimings core.Timings // CNF (incl. BSIM), One, All
	SatTimings core.Timings
	SatVars    int
	SatClauses int
	// SatCopies is the number of test copies the SAT engine encoded: M
	// for the monolithic driver, the converged abstraction size for
	// CEGAR.
	SatCopies int
	// SatShards is the enumeration shard count of the SAT column (1 =
	// monolithic).
	SatShards int

	// Table 3 columns.
	BSIMQ metrics.BSIMQuality
	CovQ  metrics.SolutionQuality
	SatQ  metrics.SolutionQuality

	// Extra context recorded in EXPERIMENTS.md.
	CovHit, SatHit float64 // fraction of solutions containing a real site
	Sites          []int
}

// Scenario fixes a circuit, an injected fault set, and a generated
// test list shared across the m sweep.
type Scenario struct {
	Golden *circuit.Circuit
	Faulty *circuit.Circuit
	Fs     *faults.FaultSet
	Tests  circuit.TestSet
}

// Prepare generates the circuit, injects cfg.P errors and derives the
// maximal test-set needed by the sweep. If random simulation cannot
// expose the fault within its pattern budget, SAT-based ATPG supplies
// the tests; the seed is retried a few times against undetectable
// injections.
func Prepare(cfg Config) (*Scenario, error) {
	var (
		golden *circuit.Circuit
		err    error
	)
	if cfg.PaperScale {
		spec, ok := gen.PaperScaleSpec(cfg.Circuit)
		if !ok {
			return nil, fmt.Errorf("expt: unknown circuit %q", cfg.Circuit)
		}
		golden, err = gen.Generate(spec)
	} else {
		golden, err = gen.ByName(cfg.Circuit)
	}
	if err != nil {
		return nil, err
	}
	maxM := 0
	for _, m := range msOrDefault(cfg) {
		if m > maxM {
			maxM = m
		}
	}
	for attempt := 0; attempt < 5; attempt++ {
		seed := cfg.Seed + int64(attempt)*1009
		faulty, fs, err := faults.Inject(golden, faults.Options{Count: cfg.P, Model: cfg.Model, Seed: seed})
		if err != nil {
			return nil, err
		}
		tests, err := tgen.Random(golden, faulty, tgen.Options{Count: maxM, Seed: seed, MaxPatterns: 1 << 14})
		if err == tgen.ErrUndetected {
			tests, err = tgen.ATPG(golden, faulty, tgen.ATPGOptions{Count: maxM, MaxConflicts: 200000})
			if err == tgen.ErrUndetected {
				continue // equivalent mutation; resample
			}
		}
		if err != nil {
			return nil, err
		}
		if len(tests) < maxM {
			// Top up with ATPG-derived vectors when random simulation found
			// too few distinct failing triples.
			extra, aerr := tgen.ATPG(golden, faulty, tgen.ATPGOptions{Count: maxM, MaxConflicts: 200000, PerVector: tgen.AllOutputs})
			if aerr == nil {
				tests = dedupeTests(append(tests, extra...))
			}
		}
		if len(tests) == 0 {
			continue
		}
		return &Scenario{Golden: golden, Faulty: faulty, Fs: fs, Tests: tests}, nil
	}
	return nil, fmt.Errorf("expt: could not expose %d injected errors on %s", cfg.P, cfg.Circuit)
}

func dedupeTests(ts circuit.TestSet) circuit.TestSet {
	seen := make(map[string]bool, len(ts))
	var out circuit.TestSet
	for _, t := range ts {
		key := fmt.Sprint(t.Output, t.Want, t.Vector)
		if !seen[key] {
			seen[key] = true
			out = append(out, t)
		}
	}
	return out
}

func msOrDefault(cfg Config) []int {
	if len(cfg.Ms) == 0 {
		return DefaultMs
	}
	return cfg.Ms
}

// RunRow measures one (scenario, m) point: BSIM, COV and BSAT with k = p.
func RunRow(cfg Config, sc *Scenario, m int) (*Row, error) {
	tests := sc.Tests.Prefix(m)
	if len(tests) == 0 {
		return nil, fmt.Errorf("expt: empty test prefix")
	}
	row := &Row{
		Circuit: cfg.Circuit,
		Gates:   sc.Faulty.NumGates(),
		P:       cfg.P,
		M:       len(tests),
		Sites:   sc.Fs.Sites(),
	}

	bsim := core.BSIM(sc.Faulty, tests, core.PTOptions{})
	row.BSIMTime = bsim.Elapsed
	row.BSIMQ = metrics.MeasureBSIM(sc.Faulty, bsim, row.Sites)

	covRes, err := core.COV(sc.Faulty, tests, core.CovOptions{
		K:            cfg.P,
		MaxSolutions: cfg.Budget.MaxSolutions,
		MaxConflicts: cfg.Budget.MaxConflicts,
	})
	if err != nil {
		return nil, fmt.Errorf("expt: COV on %s: %w", cfg.Circuit, err)
	}
	row.CovTimings = covRes.Timings
	row.CovQ = metrics.MeasureSolutions(sc.Faulty, &covRes.SolutionSet, row.Sites)
	row.CovHit = metrics.HitRate(&covRes.SolutionSet, row.Sites)

	satOpts := core.BSATOptions{
		K:            cfg.P,
		MaxSolutions: cfg.Budget.MaxSolutions,
		MaxConflicts: cfg.Budget.MaxConflicts,
		Timeout:      cfg.Budget.Timeout,
		Shards:       cfg.Shards,
	}
	row.SatShards = cfg.Shards
	if row.SatShards < 1 {
		row.SatShards = 1
	}
	var satRes *core.BSATResult
	switch cfg.Engine {
	case EngineCEGAR:
		cres, err := core.CEGARDiagnose(sc.Faulty, tests, satOpts)
		if err != nil {
			return nil, fmt.Errorf("expt: CEGAR on %s: %w", cfg.Circuit, err)
		}
		satRes = &cres.BSATResult
		row.SatCopies = cres.Copies
	default:
		res, err := core.BSAT(sc.Faulty, tests, satOpts)
		if err != nil {
			return nil, fmt.Errorf("expt: BSAT on %s: %w", cfg.Circuit, err)
		}
		satRes = res
		row.SatCopies = len(tests)
	}
	row.SatTimings = satRes.Timings
	row.SatVars, row.SatClauses = satRes.Vars, satRes.Clauses
	row.SatQ = metrics.MeasureSolutions(sc.Faulty, &satRes.SolutionSet, row.Sites)
	row.SatHit = metrics.HitRate(&satRes.SolutionSet, row.Sites)
	return row, nil
}

// RunConfig prepares the scenario and measures every m of the sweep.
func RunConfig(cfg Config) ([]*Row, error) {
	sc, err := Prepare(cfg)
	if err != nil {
		return nil, err
	}
	var rows []*Row
	for _, m := range msOrDefault(cfg) {
		row, err := RunRow(cfg, sc, m)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Table2Configs returns the paper's Table 2/3 workload on the synthetic
// analogs: s1423x with p=4, s6669x with p=3, s38417x with p=2.
func Table2Configs(budget Budget) []Config {
	return []Config{
		{Circuit: "s1423x", P: 4, Seed: 1, Budget: budget},
		{Circuit: "s6669x", P: 3, Seed: 2, Budget: budget},
		{Circuit: "s38417x", P: 2, Seed: 3, Budget: budget},
	}
}

// Point is one Figure 6 scatter point: COV on the x axis, BSAT on y.
type Point struct {
	Circuit string
	P, M    int
	X, Y    float64
}

// Figure6Sweep runs the scatter workload: each small-suite circuit with
// p = 1..maxP errors and the given test counts; returns the quality
// scatter (avg distance, Figure 6a) and the solution-count scatter
// (Figure 6b).
func Figure6Sweep(circuits []string, maxP int, ms []int, budget Budget) (avgPts, numPts []Point, err error) {
	for _, name := range circuits {
		for p := 1; p <= maxP; p++ {
			cfg := Config{Circuit: name, P: p, Ms: ms, Seed: int64(p)*7919 + 11, Budget: budget}
			rows, rerr := RunConfig(cfg)
			if rerr != nil {
				return nil, nil, rerr
			}
			for _, row := range rows {
				if !math.IsNaN(row.CovQ.AvgAvg) && !math.IsNaN(row.SatQ.AvgAvg) {
					avgPts = append(avgPts, Point{Circuit: name, P: p, M: row.M, X: row.CovQ.AvgAvg, Y: row.SatQ.AvgAvg})
				}
				numPts = append(numPts, Point{Circuit: name, P: p, M: row.M,
					X: float64(row.CovQ.NumSolutions), Y: float64(row.SatQ.NumSolutions)})
			}
		}
	}
	return avgPts, numPts, nil
}

// RenderTable2 renders the runtime comparison in the layout of Table 2,
// extended with the number of test copies the SAT engine encoded
// (m for the monolithic driver, the converged abstraction for CEGAR)
// and the enumeration shard count (shard scaling: same solutions, the
// SAT columns shrink as shards increase).
func RenderTable2(w io.Writer, rows []*Row) {
	fmt.Fprintf(w, "%-10s %2s %3s | %8s | %8s %8s %8s | %8s %8s %8s %6s %6s\n",
		"I", "p", "m", "BSIM", "COV:CNF", "One", "All", "SAT:CNF", "One", "All", "copies", "shards")
	fmt.Fprintln(w, strings.Repeat("-", 110))
	for _, r := range rows {
		shards := r.SatShards
		if shards < 1 {
			shards = 1
		}
		fmt.Fprintf(w, "%-10s %2d %3d | %8s | %8s %8s %8s | %8s %8s %8s %6d %6d\n",
			r.Circuit, r.P, r.M,
			fmtDur(r.BSIMTime),
			fmtDur(r.CovTimings.CNF), fmtDur(r.CovTimings.One), fmtDur(r.CovTimings.All),
			fmtDur(r.SatTimings.CNF), fmtDur(r.SatTimings.One), fmtDur(r.SatTimings.All),
			r.SatCopies, shards)
	}
}

// RenderTable3 renders the quality comparison in the layout of Table 3.
func RenderTable3(w io.Writer, rows []*Row) {
	fmt.Fprintf(w, "%-10s %2s %3s | %6s %6s %5s %4s %4s %6s | %7s %6s %6s %6s | %7s %6s %6s %6s\n",
		"I", "p", "m", "|UCi|", "avgA", "Gmax", "min", "max", "avgG",
		"COV#sol", "min", "max", "avg", "SAT#sol", "min", "max", "avg")
	fmt.Fprintln(w, strings.Repeat("-", 132))
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %2d %3d | %6d %6s %5d %4d %4d %6s | %7d %6s %6s %6s | %7d %6s %6s %6s\n",
			r.Circuit, r.P, r.M,
			r.BSIMQ.UnionSize, metrics.Fmt(r.BSIMQ.AvgAll),
			r.BSIMQ.GmaxSize, r.BSIMQ.GminDist, r.BSIMQ.GmaxDist, metrics.Fmt(r.BSIMQ.GavgDist),
			r.CovQ.NumSolutions, metrics.Fmt(r.CovQ.MinAvg), metrics.Fmt(r.CovQ.MaxAvg), metrics.Fmt(r.CovQ.AvgAvg),
			r.SatQ.NumSolutions, metrics.Fmt(r.SatQ.MinAvg), metrics.Fmt(r.SatQ.MaxAvg), metrics.Fmt(r.SatQ.AvgAvg))
	}
}

// RenderPointsCSV emits a scatter as CSV (circuit, p, m, cov, bsat).
func RenderPointsCSV(w io.Writer, pts []Point) {
	fmt.Fprintln(w, "circuit,p,m,cov,bsat")
	for _, pt := range pts {
		fmt.Fprintf(w, "%s,%d,%d,%g,%g\n", pt.Circuit, pt.P, pt.M, pt.X, pt.Y)
	}
}

// RenderScatterASCII draws a coarse terminal scatter with the diagonal
// marked, mirroring the visual argument of Figure 6 ("points below the
// diagonal mean BSAT is better").
func RenderScatterASCII(w io.Writer, pts []Point, logScale bool, title string) {
	const size = 24
	grid := make([][]byte, size)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", size*2))
	}
	tr := func(v float64) float64 {
		if logScale {
			return math.Log10(v + 1)
		}
		return v
	}
	maxV := 1e-9
	for _, p := range pts {
		if tr(p.X) > maxV {
			maxV = tr(p.X)
		}
		if tr(p.Y) > maxV {
			maxV = tr(p.Y)
		}
	}
	for d := 0; d < size; d++ {
		grid[size-1-d][d*2] = '.'
	}
	below, above := 0, 0
	for _, p := range pts {
		x := int(tr(p.X) / maxV * float64(size-1))
		y := int(tr(p.Y) / maxV * float64(size-1))
		grid[size-1-y][x*2] = '*'
		switch {
		case p.Y < p.X:
			below++
		case p.Y > p.X:
			above++
		}
	}
	fmt.Fprintf(w, "%s  (x: COV, y: BSAT; '.' diagonal; %d below / %d above diagonal)\n", title, below, above)
	for _, line := range grid {
		fmt.Fprintf(w, "|%s\n", string(line))
	}
	fmt.Fprintf(w, "+%s\n", strings.Repeat("-", size*2))
}

func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.3fs", d.Seconds())
}

// SortRows orders rows by (circuit-size, p, m) for stable rendering.
func SortRows(rows []*Row) {
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].Gates != rows[j].Gates {
			return rows[i].Gates < rows[j].Gates
		}
		if rows[i].Circuit != rows[j].Circuit {
			return rows[i].Circuit < rows[j].Circuit
		}
		if rows[i].P != rows[j].P {
			return rows[i].P < rows[j].P
		}
		return rows[i].M < rows[j].M
	})
}
