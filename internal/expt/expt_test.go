package expt

import (
	"math"
	"strings"
	"testing"
	"time"
)

func smokeBudget() Budget {
	return Budget{MaxSolutions: 2000, MaxConflicts: 500000, Timeout: 30 * time.Second}
}

func TestRunConfigSmoke(t *testing.T) {
	cfg := Config{Circuit: "s298x", P: 2, Ms: []int{4, 8}, Seed: 42, Budget: smokeBudget()}
	rows, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.M == 0 || r.BSIMQ.UnionSize == 0 {
			t.Fatalf("degenerate row %+v", r)
		}
		if r.SatQ.NumSolutions == 0 {
			t.Fatalf("BSAT found no solutions: %+v", r)
		}
		if r.CovQ.NumSolutions == 0 {
			t.Fatalf("COV found no solutions: %+v", r)
		}
		if r.SatVars == 0 || r.SatClauses == 0 {
			t.Fatalf("instance size not recorded: %+v", r)
		}
		t.Logf("%s p=%d m=%d: BSIM %v |UCi|=%d; COV %d sols (%v); BSAT %d sols (%v) vars=%d",
			r.Circuit, r.P, r.M, r.BSIMTime, r.BSIMQ.UnionSize,
			r.CovQ.NumSolutions, r.CovTimings.All,
			r.SatQ.NumSolutions, r.SatTimings.All, r.SatVars)
	}
}

func TestPrefixSharing(t *testing.T) {
	cfg := Config{Circuit: "s298x", P: 1, Ms: []int{4, 8}, Seed: 7, Budget: smokeBudget()}
	sc, err := Prepare(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := sc.Tests.Prefix(4)
	b := sc.Tests.Prefix(8)
	for i := range a {
		if a[i].Output != b[i].Output || a[i].Want != b[i].Want {
			t.Fatal("prefix sharing broken")
		}
	}
}

func TestRenderers(t *testing.T) {
	cfg := Config{Circuit: "s298x", P: 1, Ms: []int{4}, Seed: 9, Budget: smokeBudget()}
	rows, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	RenderTable2(&sb, rows)
	if !strings.Contains(sb.String(), "s298x") || !strings.Contains(sb.String(), "BSIM") {
		t.Fatalf("table 2 rendering broken:\n%s", sb.String())
	}
	sb.Reset()
	RenderTable3(&sb, rows)
	if !strings.Contains(sb.String(), "|UCi|") {
		t.Fatalf("table 3 rendering broken:\n%s", sb.String())
	}
	pts := []Point{{Circuit: "s298x", P: 1, M: 4, X: 3, Y: 1}, {Circuit: "s298x", P: 1, M: 8, X: 10, Y: 12}}
	sb.Reset()
	RenderPointsCSV(&sb, pts)
	if !strings.Contains(sb.String(), "s298x,1,4,3,1") {
		t.Fatalf("CSV rendering broken:\n%s", sb.String())
	}
	sb.Reset()
	RenderScatterASCII(&sb, pts, false, "fig6a")
	if !strings.Contains(sb.String(), "1 below / 1 above") {
		t.Fatalf("scatter rendering broken:\n%s", sb.String())
	}
}

func TestFigure6SweepSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in short mode")
	}
	avgPts, numPts, err := Figure6Sweep([]string{"s298x"}, 2, []int{4, 8}, smokeBudget())
	if err != nil {
		t.Fatal(err)
	}
	if len(numPts) == 0 {
		t.Fatal("no scatter points")
	}
	for _, p := range avgPts {
		if math.IsNaN(p.X) || math.IsNaN(p.Y) {
			t.Fatalf("NaN point %+v", p)
		}
	}
}
