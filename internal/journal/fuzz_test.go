package journal

import (
	"bytes"
	"testing"
)

// FuzzJournalDecode feeds arbitrary byte streams to the segment decoder.
// The invariants under fuzz: never panic (including through the fold,
// which handles corrupt-but-CRC-valid records), never allocate beyond
// the input (declared lengths are validated against the remaining data
// before use), and always terminate with a consistent
// truncation/corruption verdict.
func FuzzJournalDecode(f *testing.F) {
	clean, _ := appendFrame(nil, &Record{Type: TypeSessionBuilt, Key: "a", Bench: "# b", MaxK: 3})
	clean, _ = appendFrame(clean, &Record{Type: TypeTestsAdded, Key: "a", Reset: true,
		Tests: []TestRec{{Vector: "01", Output: 1, Want: true}}})
	sealed, _ := appendFrame(append([]byte(nil), clean...), &Record{Type: TypeSeal})

	f.Add([]byte{})
	f.Add(clean)
	f.Add(sealed)
	f.Add(clean[:len(clean)-3])                         // torn tail
	f.Add(append([]byte("garbage"), clean...))          // leading junk
	f.Add(append(append([]byte{}, clean...), 'J', 'W')) // partial magic tail
	corrupt := append([]byte(nil), sealed...)
	corrupt[len(clean)/2] ^= 0xA5 // flip mid-log, later frames intact
	f.Add(corrupt)
	huge, _ := appendFrame(nil, &Record{Type: TypeTestsRetracted, Key: "x",
		Removed: []int{-1, 0, 1 << 30}})
	f.Add(huge)
	f.Add(bytes.Repeat(frameMagic, 64)) // magic spam, no valid frame

	f.Fuzz(func(t *testing.T, data []byte) {
		fold := newFolder()
		res := DecodeAll(data, fold.apply)
		_ = fold.state()

		if res.ValidEnd < 0 || res.ValidEnd > int64(len(data)) {
			t.Fatalf("ValidEnd %d out of range [0,%d]", res.ValidEnd, len(data))
		}
		if res.TornTail != (res.ValidEnd < int64(len(data))) {
			t.Fatalf("torn-tail verdict inconsistent: TornTail=%v ValidEnd=%d len=%d",
				res.TornTail, res.ValidEnd, len(data))
		}
		if res.Sealed && res.TornTail {
			t.Fatal("a torn log cannot be sealed")
		}
		if res.Records < 0 || res.Skipped < 0 {
			t.Fatalf("negative counters: %+v", res)
		}

		// The valid prefix must re-decode to the same record count with
		// nothing skipped or torn: the verdict names a clean cut point.
		again := DecodeAll(data[:res.ValidEnd], nil)
		if again.Records != res.Records || again.TornTail {
			t.Fatalf("valid prefix not self-consistent: first %+v, again %+v", res, again)
		}
	})
}
