package journal

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
)

// Record types of the session lifecycle journal, in the vocabulary of
// the warm-session pool: a session is built (cold build or ladder
// rebuild), its live test-set changes by deltas, and it is evicted.
// Seal marks a clean shutdown — a log ending in a seal needs no
// torn-tail repair on the next boot.
const (
	TypeSessionBuilt   = "session-built"
	TypeTestsAdded     = "tests-added"
	TypeTestsRetracted = "tests-retracted"
	TypeSessionEvicted = "session-evicted"
	TypeSeal           = "seal"
)

// TestRec is one journaled test triple, in the wire encoding the
// service already uses (vector as a 0/1 string, one character per
// primary input).
type TestRec struct {
	Vector string `json:"v"`
	Output int    `json:"o"`
	Want   bool   `json:"w"`
}

// Record is one journal entry. The zero fields of types that do not use
// them are omitted on disk; Key identifies the session for everything
// but the seal.
type Record struct {
	Type string `json:"type"`
	Key  string `json:"key,omitempty"`

	// session-built payload: everything needed to rebuild the warm
	// session from nothing — the circuit as self-contained .bench text
	// (independent of any generator suite drift), its fingerprint for
	// verification, the fault model, and the ladder width.
	Fingerprint string `json:"fp,omitempty"`
	Bench       string `json:"bench,omitempty"`
	Encoding    string `json:"encoding,omitempty"`
	ForceZero   bool   `json:"forceZero,omitempty"`
	ConeOnly    bool   `json:"coneOnly,omitempty"`
	MaxK        int    `json:"maxK,omitempty"`

	// tests-added payload. Reset replaces the live test-set (a full
	// /diagnose activation); otherwise the tests append to it (the
	// incremental edit). K remembers the run's ladder bound so a
	// replayed session restores sane incremental defaults.
	Reset bool      `json:"reset,omitempty"`
	Tests []TestRec `json:"tests,omitempty"`
	K     int       `json:"k,omitempty"`

	// tests-retracted payload: positions in the live test-set at the
	// time of the edit, exactly as the incremental endpoint names them.
	Removed []int `json:"removed,omitempty"`
}

// Frame layout: magic "JWAL" | payload length (uint32 LE) | CRC-32C of
// the payload (uint32 LE) | JSON payload. The magic makes resync after
// a corrupt record possible: the reader scans forward for the next
// "JWAL" and re-validates from there instead of refusing to boot.
var frameMagic = []byte("JWAL")

const (
	frameHeaderSize = 12
	// maxRecordBytes bounds a single record (the largest payloads are
	// .bench netlists, which the HTTP layer already caps at 64 MiB). A
	// decoded length beyond it is treated as corruption, never as an
	// allocation request.
	maxRecordBytes = 128 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// appendFrame encodes one record as a frame onto dst.
func appendFrame(dst []byte, rec *Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return dst, err
	}
	var hdr [frameHeaderSize]byte
	copy(hdr[0:4], frameMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[8:12], crc32.Checksum(payload, crcTable))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...), nil
}

// DecodeResult reports what a segment scan found. ValidEnd is the
// offset just past the last intact record — the truncation point for
// torn-tail repair. Skipped counts corrupt stretches that were jumped
// over (resynced past), TornTail marks trailing bytes that never
// resolved into another record, and Sealed reports that the data ends
// exactly at a clean seal record.
type DecodeResult struct {
	Records  int
	Skipped  int
	ValidEnd int64
	TornTail bool
	Sealed   bool
}

// DecodeAll scans one segment's bytes, invoking fn for every intact
// record in order. It never panics and never allocates beyond the
// input: payloads are decoded from subslices, a declared length larger
// than the remaining data is corruption, not an allocation. fn may be
// nil (pure verification).
func DecodeAll(data []byte, fn func(Record)) DecodeResult {
	var res DecodeResult
	off := 0
	for off < len(data) {
		idx := bytes.Index(data[off:], frameMagic)
		if idx < 0 {
			break // no further frame start; the rest is tail garbage
		}
		at := off + idx
		rec, end, ok := decodeFrameAt(data, at)
		if !ok {
			// Not a valid frame at this magic (bad length, CRC or JSON):
			// resync one byte past it and keep hunting.
			off = at + 1
			continue
		}
		if int64(at) > res.ValidEnd {
			// A valid record beyond a bad stretch: the gap was corrupt,
			// but the log continues — count and carry on.
			res.Skipped++
		}
		if fn != nil {
			fn(rec)
		}
		res.Records++
		res.Sealed = rec.Type == TypeSeal
		off = end
		res.ValidEnd = int64(end)
	}
	if res.ValidEnd < int64(len(data)) {
		res.TornTail = true
		res.Sealed = false
	}
	return res
}

// decodeFrameAt validates and decodes the frame starting at data[at].
func decodeFrameAt(data []byte, at int) (Record, int, bool) {
	var rec Record
	if at+frameHeaderSize > len(data) {
		return rec, 0, false
	}
	n := int(binary.LittleEndian.Uint32(data[at+4 : at+8]))
	if n > maxRecordBytes || at+frameHeaderSize+n > len(data) {
		return rec, 0, false
	}
	payload := data[at+frameHeaderSize : at+frameHeaderSize+n]
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(data[at+8:at+12]) {
		return rec, 0, false
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return rec, 0, false
	}
	return rec, at + frameHeaderSize + n, true
}
