// Package journal is the durability layer of the warm-session service:
// an append-only, length-prefixed, CRC-checksummed write-ahead log of
// session lifecycle events (session built, live test-set deltas,
// eviction, clean-shutdown seal). A restarted server replays the log to
// rebuild its warm pool instead of forcing the fleet back through cold
// builds.
//
// Robustness posture, in order of preference: never lose the process,
// then never lose the log, then never lose a record. Concretely:
//
//   - append or fsync I/O errors flip the writer into a disabled
//     degraded mode (appends are dropped and counted, serving
//     continues) rather than failing requests;
//   - a torn tail — the crash landed mid-write — is truncated on the
//     next open;
//   - a corrupt record mid-log is skipped by scanning forward for the
//     next frame magic, counted, and boot continues;
//   - a log ending in a clean seal needs no tail repair at all.
//
// Segments rotate at Options.SegmentBytes; on rotation the writer is
// compacted: the caller-supplied roster (current pool sessions + live
// test-sets) is snapshotted into the fresh segment and every older
// segment is deleted, so disk usage is bounded by the live roster plus
// one segment of deltas — never by journal history.
package journal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/failpoint"
)

// Failpoints of the durability path, armed like every other point via
// diagserver -failpoints / DIAG_FAILPOINTS (see internal/failpoint).
const (
	// FailpointAppend fires inside Writer.Append before the frame is
	// written: an injected error exercises the degraded-journal mode.
	FailpointAppend = "journal/append"
	// FailpointFsync fires before each file sync.
	FailpointFsync = "journal/fsync"
	// FailpointReplay fires before each session rebuild during warm-pool
	// replay (evaluated by the service layer): an injected failure must
	// skip that session, not abort the boot.
	FailpointReplay = "journal/replay"
)

// Policy selects when appended records reach stable storage.
type Policy int

const (
	// FsyncInterval (the default) syncs on a background timer: bounded
	// loss window, negligible per-append cost.
	FsyncInterval Policy = iota
	// FsyncAlways syncs after every append: no loss window, one disk
	// round-trip per record.
	FsyncAlways
	// FsyncOff never syncs explicitly; the OS flushes on its own
	// schedule. Cheapest, widest loss window.
	FsyncOff
)

func (p Policy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncOff:
		return "off"
	default:
		return "interval"
	}
}

// ParsePolicy maps the -journal-fsync flag values.
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "interval":
		return FsyncInterval, nil
	case "always":
		return FsyncAlways, nil
	case "off", "none":
		return FsyncOff, nil
	default:
		return 0, fmt.Errorf("journal: unknown fsync policy %q (always, interval, off)", s)
	}
}

// Options configures a journal directory.
type Options struct {
	// Dir holds the segment files. Created if missing.
	Dir string
	// Fsync selects the durability/latency trade-off (default interval).
	Fsync Policy
	// FsyncInterval is the background sync period under FsyncInterval
	// (default 100ms).
	FsyncInterval time.Duration
	// SegmentBytes rotates the active segment once its delta payload
	// (excluding the compaction snapshot it starts with) exceeds this
	// (default 64 MiB).
	SegmentBytes int64
}

// DefaultSegmentBytes is the rotation threshold when unset.
const DefaultSegmentBytes = 64 << 20

// DefaultFsyncInterval is the background sync period when unset.
const DefaultFsyncInterval = 100 * time.Millisecond

// Stats is a point-in-time snapshot of the writer's counters, exposed
// on /metrics as diag_journal_*.
type Stats struct {
	Appends       int64 // records appended (including roster snapshots)
	AppendedBytes int64
	Syncs         int64
	Rotations     int64
	Compactions   int64
	Dropped       int64 // records dropped while degraded
	Degraded      bool
	Sealed        bool
}

// Writer appends lifecycle records to the active segment. All methods
// are safe for concurrent use and nil-receiver safe, so call sites need
// no journal-enabled checks. A Writer that hits an I/O error degrades:
// it stops writing, counts dropped records, and never surfaces the
// failure to the serving path.
type Writer struct {
	mu   sync.Mutex
	opts Options
	f    *os.File
	seq  int   // active segment sequence number
	size int64 // bytes written to the active segment
	base int64 // bytes of the segment's leading compaction snapshot

	sealed   bool
	degraded atomic.Bool

	appends, appendedBytes atomic.Int64
	syncs, dirty           atomic.Int64
	rotations, compactions atomic.Int64
	dropped                atomic.Int64
	stopc                  chan struct{}
	tickerDone             sync.WaitGroup
	scratch                []byte
}

func segmentName(seq int) string { return fmt.Sprintf("diag-%08d.wal", seq) }

// segmentSeq parses a segment filename, reporting ok=false for foreign
// files (which Open ignores rather than deleting).
func segmentSeq(name string) (int, bool) {
	var seq int
	if _, err := fmt.Sscanf(name, "diag-%08d.wal", &seq); err != nil {
		return 0, false
	}
	return seq, true
}

// Open reads every segment in opts.Dir, folds the records into the
// live-session State, repairs a torn tail (unless the log is sealed),
// and returns a Writer appending to the last segment. A missing or
// empty directory yields an empty State and a fresh journal. Unreadable
// or corrupt stretches are counted in State.Skipped — only a directory
// that cannot be created or written at all fails the open.
func Open(opts Options) (*Writer, *State, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.FsyncInterval <= 0 {
		opts.FsyncInterval = DefaultFsyncInterval
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	entries, err := os.ReadDir(opts.Dir)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	var seqs []int
	for _, e := range entries {
		if seq, ok := segmentSeq(e.Name()); ok && !e.IsDir() {
			seqs = append(seqs, seq)
		}
	}
	sort.Ints(seqs)

	st := &State{}
	fold := newFolder()
	lastSeq := 0
	var lastValidEnd int64
	var lastSize int64
	for i, seq := range seqs {
		path := filepath.Join(opts.Dir, segmentName(seq))
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			// An unreadable segment is a corrupt stretch, not a boot
			// failure: count it and keep folding the rest.
			st.Skipped++
			continue
		}
		res := DecodeAll(data, fold.apply)
		st.Segments++
		st.Records += res.Records
		st.Skipped += res.Skipped
		if i == len(seqs)-1 {
			lastSeq = seq
			lastValidEnd = res.ValidEnd
			lastSize = int64(len(data))
			st.Sealed = res.Sealed
			if res.TornTail {
				st.TornTailBytes = int64(len(data)) - res.ValidEnd
			}
		} else if res.TornTail {
			// Mid-journal segments with trailing garbage (a crash during
			// rotation): their tail is unrecoverable, count it.
			st.Skipped++
		}
	}
	st.Sessions = fold.state()

	w := &Writer{opts: opts, stopc: make(chan struct{})}
	if lastSeq == 0 {
		w.seq = 1
		if err := w.createSegment(); err != nil {
			return nil, nil, err
		}
	} else {
		w.seq = lastSeq
		path := filepath.Join(opts.Dir, segmentName(lastSeq))
		// A sealed log needs no tail repair; an unsealed one truncates
		// to the last intact record before appending resumes.
		if !st.Sealed && lastValidEnd < lastSize {
			if err := os.Truncate(path, lastValidEnd); err != nil {
				return nil, nil, fmt.Errorf("journal: repair torn tail: %w", err)
			}
		}
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("journal: %w", err)
		}
		w.f = f
		w.size = lastValidEnd
	}
	if opts.Fsync == FsyncInterval {
		w.tickerDone.Add(1)
		go w.syncLoop()
	}
	return w, st, nil
}

func (w *Writer) createSegment() error {
	f, err := os.OpenFile(filepath.Join(w.opts.Dir, segmentName(w.seq)),
		os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	w.f = f
	w.size = 0
	w.base = 0
	syncDir(w.opts.Dir)
	return nil
}

// syncDir makes directory-entry changes (segment create/delete) durable
// on platforms that support it; best effort everywhere else.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

func (w *Writer) syncLoop() {
	defer w.tickerDone.Done()
	t := time.NewTicker(w.opts.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-w.stopc:
			return
		case <-t.C:
			if w.dirty.Swap(0) > 0 {
				w.Sync()
			}
		}
	}
}

// Append journals one record. It never returns an error: a failed write
// (including an injected journal/append failure) flips the writer into
// degraded mode, where this and all future records are dropped and
// counted instead. The returned rotated flag tells the owner a segment
// boundary was crossed — the cue to Compact with a fresh roster.
func (w *Writer) Append(rec Record) (rotated bool) {
	if w == nil || w.degraded.Load() {
		if w != nil {
			w.dropped.Add(1)
		}
		return false
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.sealed || w.degraded.Load() {
		w.dropped.Add(1)
		return false
	}
	if err := failpoint.Inject(FailpointAppend); err != nil {
		w.degradeLocked(err)
		return false
	}
	frame, err := appendFrame(w.scratch[:0], &rec)
	w.scratch = frame[:0]
	if err != nil {
		w.degradeLocked(err)
		return false
	}
	if w.size-w.base+int64(len(frame)) > w.opts.SegmentBytes && w.size > w.base {
		if err := w.rotateLocked(); err != nil {
			w.degradeLocked(err)
			return false
		}
		rotated = true
	}
	if err := w.writeLocked(frame); err != nil {
		w.degradeLocked(err)
		return false
	}
	if w.opts.Fsync == FsyncAlways {
		if err := w.syncLocked(); err != nil {
			w.degradeLocked(err)
			return false
		}
	} else {
		w.dirty.Add(1)
	}
	return rotated
}

func (w *Writer) writeLocked(frame []byte) error {
	n, err := w.f.Write(frame)
	w.size += int64(n)
	if err != nil {
		return err
	}
	w.appends.Add(1)
	w.appendedBytes.Add(int64(len(frame)))
	return nil
}

func (w *Writer) rotateLocked() error {
	if err := w.syncLocked(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	w.seq++
	if err := w.createSegment(); err != nil {
		return err
	}
	w.rotations.Add(1)
	return nil
}

func (w *Writer) syncLocked() error {
	if err := failpoint.Inject(FailpointFsync); err != nil {
		return err
	}
	if w.opts.Fsync == FsyncOff {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.syncs.Add(1)
	return nil
}

// degradeLocked disables the journal after an I/O failure: serving
// must continue, so the error is absorbed here and surfaced only
// through Degraded()/Stats and the health endpoint.
func (w *Writer) degradeLocked(err error) {
	_ = err
	w.degraded.Store(true)
	w.dropped.Add(1)
	if w.f != nil {
		_ = w.f.Close()
		w.f = nil
	}
}

// Sync flushes appended records to stable storage. Errors degrade the
// writer rather than propagate.
func (w *Writer) Sync() {
	if w == nil || w.degraded.Load() {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.sealed || w.degraded.Load() || w.f == nil {
		return
	}
	if err := w.syncLocked(); err != nil {
		w.degradeLocked(err)
	}
}

// Compact snapshots the live roster into a fresh segment and deletes
// every older one: replay cost and disk usage stay bounded by the live
// pool, never by journal history. The caller owns roster consistency —
// it must hold whatever lock serializes its Append calls, so no delta
// can land between the roster capture and the snapshot.
func (w *Writer) Compact(roster []Record) {
	if w == nil || w.degraded.Load() {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.sealed || w.degraded.Load() {
		return
	}
	old := w.seq
	if err := w.rotateLocked(); err != nil {
		w.degradeLocked(err)
		return
	}
	for i := range roster {
		frame, err := appendFrame(w.scratch[:0], &roster[i])
		w.scratch = frame[:0]
		if err != nil {
			w.degradeLocked(err)
			return
		}
		if err := w.writeLocked(frame); err != nil {
			w.degradeLocked(err)
			return
		}
	}
	if err := w.syncLocked(); err != nil {
		w.degradeLocked(err)
		return
	}
	// The snapshot is durable; the history it replaces can go.
	w.base = w.size
	for seq := old; seq >= 1; seq-- {
		path := filepath.Join(w.opts.Dir, segmentName(seq))
		if err := os.Remove(path); err != nil {
			break // already gone (or undeletable): stop scanning down
		}
	}
	syncDir(w.opts.Dir)
	w.compactions.Add(1)
}

// Seal appends the clean-shutdown record, syncs regardless of policy,
// and closes the journal. The next Open sees Sealed state and skips
// torn-tail repair. Appends after Seal are dropped.
func (w *Writer) Seal() {
	if w == nil {
		return
	}
	w.stopTicker()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.sealed || w.degraded.Load() || w.f == nil {
		w.sealed = true
		return
	}
	frame, err := appendFrame(w.scratch[:0], &Record{Type: TypeSeal})
	if err == nil {
		err = func() error {
			if werr := w.writeLocked(frame); werr != nil {
				return werr
			}
			if w.opts.Fsync != FsyncOff {
				if serr := w.f.Sync(); serr != nil {
					return serr
				}
				w.syncs.Add(1)
			}
			return nil
		}()
	}
	if err != nil {
		w.degradeLocked(err)
		return
	}
	w.sealed = true
	_ = w.f.Close()
	w.f = nil
}

// Close flushes and closes without sealing (the log will get a torn-
// tail check on the next open — which finds a clean end).
func (w *Writer) Close() {
	if w == nil {
		return
	}
	w.stopTicker()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return
	}
	if err := w.syncLocked(); err != nil {
		w.degradeLocked(err)
		return
	}
	_ = w.f.Close()
	w.f = nil
	w.sealed = true
}

func (w *Writer) stopTicker() {
	w.mu.Lock()
	select {
	case <-w.stopc:
	default:
		close(w.stopc)
	}
	w.mu.Unlock()
	w.tickerDone.Wait()
}

// Degraded reports whether the journal disabled itself after an I/O
// failure.
func (w *Writer) Degraded() bool { return w != nil && w.degraded.Load() }

// SnapshotStats returns the writer's counters.
func (w *Writer) SnapshotStats() Stats {
	if w == nil {
		return Stats{}
	}
	w.mu.Lock()
	sealed := w.sealed
	w.mu.Unlock()
	return Stats{
		Appends:       w.appends.Load(),
		AppendedBytes: w.appendedBytes.Load(),
		Syncs:         w.syncs.Load(),
		Rotations:     w.rotations.Load(),
		Compactions:   w.compactions.Load(),
		Dropped:       w.dropped.Load(),
		Degraded:      w.degraded.Load(),
		Sealed:        sealed,
	}
}
