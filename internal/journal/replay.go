package journal

import "sort"

// SessionState is the folded warm state of one live session: everything
// a restarted server needs to rebuild it and serve byte-identical
// answers — the circuit, the fault model, the ladder width, and the
// live test-set in activation order.
type SessionState struct {
	Key         string
	Fingerprint string
	Bench       string
	Encoding    string
	ForceZero   bool
	ConeOnly    bool
	MaxK        int

	// Tests is the live test-set (the current activation base the
	// incremental endpoint edits), K the last run's ladder bound.
	Tests []TestRec
	K     int

	// LastSeq is the global sequence number of the last record that
	// touched this session — the recency key replay uses to rebuild
	// most-recently-used sessions first.
	LastSeq int
}

// State is the outcome of reading a journal directory: the live
// session roster plus the health of the log itself.
type State struct {
	// Sessions is the live roster, most recently touched first.
	Sessions []SessionState

	Segments      int   // segment files read
	Records       int   // intact records folded
	Skipped       int   // corrupt records/stretches skipped (boot continues)
	TornTailBytes int64 // trailing bytes truncated from the last segment
	Sealed        bool  // the log ended in a clean-shutdown seal
}

// folder accumulates records into per-session state. All index and
// bounds handling is defensive: a corrupt-but-CRC-valid record must
// never panic the boot path.
type folder struct {
	sessions map[string]*SessionState
	seq      int
}

func newFolder() *folder {
	return &folder{sessions: make(map[string]*SessionState)}
}

func (f *folder) apply(rec Record) {
	f.seq++
	switch rec.Type {
	case TypeSessionBuilt:
		if rec.Key == "" {
			return
		}
		// A rebuild (wider ladder) journals as a fresh build: the test
		// copies of the old session are gone, the next tests-added reset
		// restores the live set.
		f.sessions[rec.Key] = &SessionState{
			Key:         rec.Key,
			Fingerprint: rec.Fingerprint,
			Bench:       rec.Bench,
			Encoding:    rec.Encoding,
			ForceZero:   rec.ForceZero,
			ConeOnly:    rec.ConeOnly,
			MaxK:        rec.MaxK,
			LastSeq:     f.seq,
		}
	case TypeTestsAdded:
		s := f.sessions[rec.Key]
		if s == nil {
			return // delta for a session we never saw built: skip
		}
		if rec.Reset {
			s.Tests = append(s.Tests[:0], rec.Tests...)
		} else {
			s.Tests = append(s.Tests, rec.Tests...)
		}
		if rec.K > 0 {
			s.K = rec.K
		}
		s.LastSeq = f.seq
	case TypeTestsRetracted:
		s := f.sessions[rec.Key]
		if s == nil {
			return
		}
		drop := make(map[int]bool, len(rec.Removed))
		for _, i := range rec.Removed {
			if i >= 0 && i < len(s.Tests) {
				drop[i] = true
			}
		}
		if len(drop) > 0 {
			kept := s.Tests[:0]
			for i, t := range s.Tests {
				if !drop[i] {
					kept = append(kept, t)
				}
			}
			s.Tests = kept
		}
		s.LastSeq = f.seq
	case TypeSessionEvicted:
		delete(f.sessions, rec.Key)
	case TypeSeal:
		// Position marker only; fold state is unaffected.
	}
}

// state finalizes the fold into the roster, most recently used first.
func (f *folder) state() []SessionState {
	out := make([]SessionState, 0, len(f.sessions))
	for _, s := range f.sessions {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].LastSeq > out[j].LastSeq })
	return out
}
