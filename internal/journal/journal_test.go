package journal

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/failpoint"
)

func testTests(n, from int) []TestRec {
	out := make([]TestRec, n)
	for i := range out {
		out[i] = TestRec{Vector: "0101", Output: from + i, Want: i%2 == 0}
	}
	return out
}

func built(key string) Record {
	return Record{
		Type: TypeSessionBuilt, Key: key, Fingerprint: "fp-" + key,
		Bench: "# bench " + key, Encoding: "seqcounter", MaxK: 4,
	}
}

// readState reopens the directory read-only-ish (open then close) and
// returns the folded state.
func readState(t *testing.T, dir string) *State {
	t.Helper()
	w, st, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	w.Close()
	return st
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, st, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Sessions) != 0 || st.Records != 0 {
		t.Fatalf("fresh journal not empty: %+v", st)
	}
	w.Append(built("a"))
	w.Append(Record{Type: TypeTestsAdded, Key: "a", Reset: true, Tests: testTests(3, 0), K: 2})
	w.Append(built("b"))
	w.Append(Record{Type: TypeTestsAdded, Key: "b", Reset: true, Tests: testTests(2, 10)})
	// Incremental edit on a: retract position 1, append one test.
	w.Append(Record{Type: TypeTestsRetracted, Key: "a", Removed: []int{1}})
	w.Append(Record{Type: TypeTestsAdded, Key: "a", Tests: testTests(1, 100)})
	// c is built then evicted: must not replay.
	w.Append(built("c"))
	w.Append(Record{Type: TypeSessionEvicted, Key: "c"})
	w.Close()

	st = readState(t, dir)
	if len(st.Sessions) != 2 {
		t.Fatalf("live roster: got %d sessions, want 2 (evicted c must be gone): %+v", len(st.Sessions), st.Sessions)
	}
	// MRU order: a was touched last (seq 6) after b (seq 4).
	if st.Sessions[0].Key != "a" || st.Sessions[1].Key != "b" {
		t.Fatalf("MRU order: got %s,%s want a,b", st.Sessions[0].Key, st.Sessions[1].Key)
	}
	a := st.Sessions[0]
	if len(a.Tests) != 3 {
		t.Fatalf("a live tests: got %d want 3 (3 reset - 1 retracted + 1 added)", len(a.Tests))
	}
	if a.Tests[0].Output != 0 || a.Tests[1].Output != 2 || a.Tests[2].Output != 100 {
		t.Fatalf("a test fold wrong: %+v", a.Tests)
	}
	if a.K != 2 || a.MaxK != 4 || a.Bench != "# bench a" || a.Fingerprint != "fp-a" {
		t.Fatalf("a metadata wrong: %+v", a)
	}
	if st.Skipped != 0 || st.TornTailBytes != 0 || st.Sealed {
		t.Fatalf("clean log reported damage: %+v", st)
	}
}

func TestRebuildResetsSession(t *testing.T) {
	dir := t.TempDir()
	w, _, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	w.Append(built("a"))
	w.Append(Record{Type: TypeTestsAdded, Key: "a", Reset: true, Tests: testTests(3, 0)})
	// Ladder rebuild journals as a fresh build with a wider ladder...
	reb := built("a")
	reb.MaxK = 8
	w.Append(reb)
	// ...followed by the re-activation of the request's test-set.
	w.Append(Record{Type: TypeTestsAdded, Key: "a", Reset: true, Tests: testTests(2, 50)})
	w.Close()

	st := readState(t, dir)
	if len(st.Sessions) != 1 || st.Sessions[0].MaxK != 8 || len(st.Sessions[0].Tests) != 2 {
		t.Fatalf("rebuild fold wrong: %+v", st.Sessions)
	}
}

func TestSealedLogSkipsTailRepair(t *testing.T) {
	dir := t.TempDir()
	w, _, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	w.Append(built("a"))
	w.Append(Record{Type: TypeTestsAdded, Key: "a", Reset: true, Tests: testTests(2, 0)})
	w.Seal()
	if got := w.SnapshotStats(); !got.Sealed {
		t.Fatalf("writer not sealed after Seal: %+v", got)
	}
	if w.Append(built("x")); w.SnapshotStats().Dropped == 0 {
		t.Fatal("append after Seal was not dropped")
	}

	seg := filepath.Join(dir, segmentName(1))
	before, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	w2, st, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if !st.Sealed {
		t.Fatalf("sealed log not detected: %+v", st)
	}
	if st.TornTailBytes != 0 || st.Skipped != 0 {
		t.Fatalf("sealed log reported tail damage: %+v", st)
	}
	after, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if before.Size() != after.Size() {
		t.Fatalf("sealed segment was modified on reopen: %d -> %d bytes", before.Size(), after.Size())
	}
	if len(st.Sessions) != 1 || len(st.Sessions[0].Tests) != 2 {
		t.Fatalf("sealed replay lost state: %+v", st.Sessions)
	}
	// The reopened writer keeps appending after a mid-log seal.
	w2.Append(built("b"))
	w2.Close()
	st = readState(t, dir)
	if len(st.Sessions) != 2 {
		t.Fatalf("append after sealed reopen lost: %+v", st.Sessions)
	}
	if st.Sealed {
		t.Fatal("log with appends past the seal still reads as sealed")
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	w, _, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	w.Append(built("a"))
	w.Append(Record{Type: TypeTestsAdded, Key: "a", Reset: true, Tests: testTests(2, 0)})
	w.Close()

	// Simulate a crash mid-append: half a frame at the tail.
	seg := filepath.Join(dir, segmentName(1))
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	torn, _ := appendFrame(nil, &Record{Type: TypeTestsAdded, Key: "a", Tests: testTests(4, 7)})
	if _, err := f.Write(torn[:len(torn)-5]); err != nil {
		t.Fatal(err)
	}
	f.Close()
	fullSize := int64(0)
	if fi, err := os.Stat(seg); err == nil {
		fullSize = fi.Size()
	}

	w2, st, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("torn tail must not fail the boot: %v", err)
	}
	if st.TornTailBytes != int64(len(torn)-5) {
		t.Fatalf("torn tail bytes: got %d want %d", st.TornTailBytes, len(torn)-5)
	}
	if len(st.Sessions) != 1 || len(st.Sessions[0].Tests) != 2 {
		t.Fatalf("state after torn tail: %+v", st.Sessions)
	}
	if fi, err := os.Stat(seg); err != nil || fi.Size() != fullSize-int64(len(torn)-5) {
		t.Fatalf("tail not truncated: %v", err)
	}
	// Appending over the repaired tail yields a clean log again.
	w2.Append(Record{Type: TypeTestsAdded, Key: "a", Tests: testTests(1, 9)})
	w2.Close()
	st = readState(t, dir)
	if st.TornTailBytes != 0 || len(st.Sessions[0].Tests) != 3 {
		t.Fatalf("append after repair: %+v", st)
	}
}

func TestCorruptMidLogSkippedWithCounter(t *testing.T) {
	dir := t.TempDir()
	w, _, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	w.Append(built("a"))
	w.Append(built("b"))
	w.Append(built("c"))
	w.Close()

	seg := filepath.Join(dir, segmentName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Find the second frame and flip a payload byte: record b corrupts,
	// a and c must survive.
	second := frameOffset(t, data, 1)
	data[second+frameHeaderSize+10] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	w2, st, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("mid-log corruption must not fail the boot: %v", err)
	}
	w2.Close()
	if st.Skipped == 0 {
		t.Fatalf("corruption not counted: %+v", st)
	}
	keys := map[string]bool{}
	for _, s := range st.Sessions {
		keys[s.Key] = true
	}
	if !keys["a"] || !keys["c"] || keys["b"] {
		t.Fatalf("skip-and-continue fold wrong, got %v want a,c", keys)
	}
}

// frameOffset returns the byte offset of the n-th (0-based) frame.
func frameOffset(t *testing.T, data []byte, n int) int {
	t.Helper()
	off := 0
	for i := 0; i < n; i++ {
		_, end, ok := decodeFrameAt(data, off)
		if !ok {
			t.Fatalf("frame %d not decodable", i)
		}
		off = end
	}
	return off
}

func TestRotationCompactionBoundsDisk(t *testing.T) {
	dir := t.TempDir()
	w, _, err := Open(Options{Dir: dir, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	roster := []Record{built("live"), {Type: TypeTestsAdded, Key: "live", Reset: true, Tests: testTests(1, 0)}}
	rotations := 0
	for i := 0; i < 200; i++ {
		if w.Append(Record{Type: TypeTestsAdded, Key: "live", Tests: testTests(1, i)}) {
			rotations++
			w.Compact(roster)
		}
	}
	w.Close()
	if rotations == 0 {
		t.Fatal("segment never rotated at 256 bytes")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	segs := 0
	for _, e := range entries {
		if _, ok := segmentSeq(e.Name()); ok {
			segs++
		}
	}
	if segs > 2 {
		t.Fatalf("compaction left %d segments on disk, want <= 2", segs)
	}
	st := readState(t, dir)
	if len(st.Sessions) != 1 || st.Sessions[0].Key != "live" {
		t.Fatalf("compacted state wrong: %+v", st.Sessions)
	}
	if got := w.SnapshotStats(); got.Compactions != int64(rotations) {
		t.Fatalf("compactions counter: got %d want %d", got.Compactions, rotations)
	}
}

func TestAppendFailureDegrades(t *testing.T) {
	dir := t.TempDir()
	w, _, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	w.Append(built("a"))
	if err := failpoint.Enable("journal/append=error(1)x1", 1); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disable()
	w.Append(built("b")) // injected failure: degrade, drop
	w.Append(built("c")) // dropped silently
	if !w.Degraded() {
		t.Fatal("writer not degraded after injected append failure")
	}
	st := w.SnapshotStats()
	if st.Dropped < 2 {
		t.Fatalf("dropped counter: got %d want >= 2", st.Dropped)
	}
	// The log keeps the pre-failure state.
	st2 := readState(t, dir)
	if len(st2.Sessions) != 1 || st2.Sessions[0].Key != "a" {
		t.Fatalf("degraded journal state: %+v", st2.Sessions)
	}
}

func TestFsyncFailureDegrades(t *testing.T) {
	dir := t.TempDir()
	w, _, err := Open(Options{Dir: dir, Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := failpoint.Enable("journal/fsync=error(1)x1", 1); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disable()
	w.Append(built("a"))
	if !w.Degraded() {
		t.Fatal("writer not degraded after injected fsync failure")
	}
}

func TestParsePolicy(t *testing.T) {
	cases := map[string]Policy{"": FsyncInterval, "interval": FsyncInterval,
		"always": FsyncAlways, "ALWAYS": FsyncAlways, "off": FsyncOff, "none": FsyncOff}
	for in, want := range cases {
		got, err := ParsePolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParsePolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Fatal("ParsePolicy accepted bogus")
	}
}

func TestNilWriterIsSafe(t *testing.T) {
	var w *Writer
	w.Append(built("a"))
	w.Sync()
	w.Compact(nil)
	w.Seal()
	w.Close()
	if w.Degraded() {
		t.Fatal("nil writer degraded")
	}
	if st := w.SnapshotStats(); st.Appends != 0 {
		t.Fatalf("nil writer stats: %+v", st)
	}
}
