package faults

import (
	"testing"
	"testing/quick"

	"repro/internal/circuit"
	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/sim"
)

func TestInjectKindChange(t *testing.T) {
	golden, err := gen.Generate(gen.Spec{Name: "f", Inputs: 6, Outputs: 3, Gates: 40, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	faulty, fs, err := Inject(golden, Options{Count: 2, Model: KindChange, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	sites := fs.Sites()
	if len(sites) != 2 {
		t.Fatalf("sites %v", sites)
	}
	// Exactly the error sites differ from the golden circuit.
	for g := range golden.Gates {
		isSite := false
		for _, s := range sites {
			if s == g {
				isSite = true
			}
		}
		same := golden.Gates[g].Kind == faulty.Gates[g].Kind
		if isSite && same {
			t.Fatalf("site %d unchanged", g)
		}
		if !isSite && !same {
			t.Fatalf("non-site %d changed", g)
		}
	}
	// Golden untouched.
	if golden.Name == faulty.Name {
		t.Fatal("faulty circuit not renamed")
	}
}

func TestInjectDeterministic(t *testing.T) {
	golden, err := gen.Generate(gen.Spec{Name: "f", Inputs: 6, Outputs: 3, Gates: 40, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, fs1, err := Inject(golden, Options{Count: 3, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	_, fs2, err := Inject(golden, Options{Count: 3, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if fs1.String() != fs2.String() {
		t.Fatalf("same seed, different faults:\n%s\n%s", fs1, fs2)
	}
	_, fs3, err := Inject(golden, Options{Count: 3, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if fs1.String() == fs3.String() {
		t.Fatal("different seeds produced identical faults (suspicious)")
	}
}

// TestInjectedFunctionDiffers: for every model, the mutated gate must
// compute a different function (pointwise on some minterm).
func TestInjectedFunctionDiffers(t *testing.T) {
	golden, err := gen.Generate(gen.Spec{Name: "f", Inputs: 6, Outputs: 3, Gates: 40, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64, modelRaw uint8) bool {
		model := Model(int(modelRaw) % 3)
		faulty, fs, err := Inject(golden, Options{Count: 1, Model: model, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		g := fs.Sites()[0]
		return !gateTable(&golden.Gates[g]).Equal(gateTable(&faulty.Gates[g]))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func gateTable(g *circuit.Gate) *logic.Table {
	if g.Kind == logic.TableKind {
		return g.Table
	}
	return logic.TableOf(g.Kind, len(g.Fanin))
}

func TestOutputInversionFlipsEverywhere(t *testing.T) {
	golden, err := gen.Generate(gen.Spec{Name: "f", Inputs: 5, Outputs: 2, Gates: 25, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	faulty, fs, err := Inject(golden, Options{Count: 1, Model: OutputInversion, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	g := fs.Sites()[0]
	// Simulate both; the site's value must be complemented on all vectors.
	gs := sim.New(golden)
	fsim := sim.New(faulty)
	words := make([]uint64, len(golden.Inputs))
	for i := range words {
		words[i] = 0xDEADBEEFCAFEF00D + uint64(i)*0x9E3779B97F4A7C15
	}
	gs.Run(words)
	fsim.Run(words)
	if gs.Value(g) != ^fsim.Value(g) {
		t.Fatalf("site %d not complemented", g)
	}
}

func TestInjectTooManyErrors(t *testing.T) {
	golden, err := gen.Generate(gen.Spec{Name: "f", Inputs: 3, Outputs: 1, Gates: 4, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Inject(golden, Options{Count: 100}); err == nil {
		t.Fatal("expected error for too many injection sites")
	}
}

func TestFaultSetDescription(t *testing.T) {
	golden, err := gen.Generate(gen.Spec{Name: "f", Inputs: 6, Outputs: 3, Gates: 40, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	_, fs, err := Inject(golden, Options{Count: 2, Model: FunctionChange, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if fs.String() == "" || len(fs.Faults) != 2 {
		t.Fatalf("bad fault set: %+v", fs)
	}
	for _, f := range fs.Faults {
		if f.Model != FunctionChange || f.Desc == "" {
			t.Fatalf("bad fault record %+v", f)
		}
	}
}

func TestModelNames(t *testing.T) {
	if KindChange.String() != "kind-change" || OutputInversion.String() != "output-inversion" || FunctionChange.String() != "function-change" {
		t.Fatal("model names")
	}
}
