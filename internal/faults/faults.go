// Package faults injects design errors into circuits. The paper's error
// model is "the replacement of the function of a gate by another
// arbitrary Boolean function" (Section 2.1); the experiments use "gate
// change errors". This package provides that model plus the common
// restricted variants (gate-kind swap, output inversion) and seeded
// multi-error injection.
package faults

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/circuit"
	"repro/internal/logic"
)

// Model selects an error model.
type Model int

// Error models.
//
// KindChange replaces the gate kind by a different kind of the same
// arity (the classic "gate change" error of the experiments).
// OutputInversion complements the gate function.
// FunctionChange replaces the gate by a uniformly random different truth
// table over the same fanins (the paper's most general definition).
const (
	KindChange Model = iota
	OutputInversion
	FunctionChange
)

// String names the model.
func (m Model) String() string {
	switch m {
	case KindChange:
		return "kind-change"
	case OutputInversion:
		return "output-inversion"
	case FunctionChange:
		return "function-change"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// Fault describes one injected error.
type Fault struct {
	Gate  int    // gate ID of the error site
	Model Model  // how the function was changed
	Desc  string // human-readable description ("AND->NOR" etc.)
}

// FaultSet is the outcome of an injection: the faulty circuit plus the
// actual error sites e1..ep.
type FaultSet struct {
	Faults []Fault
}

// Sites returns the sorted error-site gate IDs.
func (fs *FaultSet) Sites() []int {
	sites := make([]int, len(fs.Faults))
	for i, f := range fs.Faults {
		sites[i] = f.Gate
	}
	sort.Ints(sites)
	return sites
}

// String summarizes the fault set.
func (fs *FaultSet) String() string {
	s := ""
	for i, f := range fs.Faults {
		if i > 0 {
			s += ", "
		}
		s += f.Desc
	}
	return s
}

// Options configures injection.
type Options struct {
	Count int   // number of errors p (default 1)
	Model Model // error model (default KindChange)
	Seed  int64 // RNG seed; identical seeds reproduce identical faults
	// MinFanout, when positive, requires error sites to have at least
	// this many fanouts, biasing toward observable errors.
	MinFanout int
}

// Inject returns a deep copy of golden with Options.Count errors
// injected at distinct internal gates, together with the fault records.
// Injection guarantees each modified gate computes a function different
// from the original (pointwise on at least one minterm), but does not by
// itself guarantee the circuit outputs differ — pair with tgen to obtain
// failing tests (and resample if the fault is undetectable).
func Inject(golden *circuit.Circuit, opts Options) (*circuit.Circuit, *FaultSet, error) {
	count := opts.Count
	if count <= 0 {
		count = 1
	}
	internal := eligible(golden, opts.MinFanout)
	if len(internal) < count {
		return nil, nil, fmt.Errorf("faults: circuit %q has %d eligible gates, need %d", golden.Name, len(internal), count)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	faulty := golden.Clone()
	faulty.Name = golden.Name + "_faulty"
	perm := rng.Perm(len(internal))
	fs := &FaultSet{}
	for i := 0; i < count; i++ {
		g := internal[perm[i]]
		f, err := mutate(faulty, g, opts.Model, rng)
		if err != nil {
			return nil, nil, err
		}
		fs.Faults = append(fs.Faults, f)
	}
	sort.Slice(fs.Faults, func(i, j int) bool { return fs.Faults[i].Gate < fs.Faults[j].Gate })
	return faulty, fs, nil
}

func eligible(c *circuit.Circuit, minFanout int) []int {
	var ids []int
	for _, g := range c.InternalGates() {
		if len(c.Gates[g].Fanout) >= minFanout || c.IsOutput(g) {
			ids = append(ids, g)
		}
	}
	return ids
}

func mutate(c *circuit.Circuit, g int, model Model, rng *rand.Rand) (Fault, error) {
	gate := &c.Gates[g]
	orig := describeKind(gate)
	switch model {
	case KindChange:
		repl := replacementKinds(gate)
		if len(repl) == 0 {
			// Fall back to inversion for kinds without same-arity peers.
			return invert(c, g, orig)
		}
		gate.Kind = repl[rng.Intn(len(repl))]
		gate.Table = nil
		return Fault{Gate: g, Model: KindChange,
			Desc: fmt.Sprintf("%s@%s: %s->%s", gate.Name, c.Name, orig, gate.Kind)}, nil
	case OutputInversion:
		return invert(c, g, orig)
	case FunctionChange:
		n := len(gate.Fanin)
		if n > logic.MaxTableInputs {
			return Fault{}, fmt.Errorf("faults: gate %q fanin %d exceeds table limit", gate.Name, n)
		}
		cur := currentTable(gate)
		t := cur.Clone()
		for t.Equal(cur) {
			for i := range t.Bits {
				t.Bits[i] = rng.Uint64()
			}
			mask := uint(t.Rows())
			if mask < 64 {
				t.Bits[0] &= (1 << mask) - 1
			}
		}
		gate.Kind = logic.TableKind
		gate.Table = t
		return Fault{Gate: g, Model: FunctionChange,
			Desc: fmt.Sprintf("%s@%s: %s->TABLE[%s]", gate.Name, c.Name, orig, t)}, nil
	}
	return Fault{}, fmt.Errorf("faults: unknown model %v", model)
}

func invert(c *circuit.Circuit, g int, orig string) (Fault, error) {
	gate := &c.Gates[g]
	switch gate.Kind {
	case logic.And:
		gate.Kind = logic.Nand
	case logic.Nand:
		gate.Kind = logic.And
	case logic.Or:
		gate.Kind = logic.Nor
	case logic.Nor:
		gate.Kind = logic.Or
	case logic.Xor:
		gate.Kind = logic.Xnor
	case logic.Xnor:
		gate.Kind = logic.Xor
	case logic.Buf:
		gate.Kind = logic.Not
	case logic.Not:
		gate.Kind = logic.Buf
	case logic.Const0:
		gate.Kind = logic.Const1
	case logic.Const1:
		gate.Kind = logic.Const0
	case logic.TableKind:
		t := gate.Table.Clone()
		for i := range t.Bits {
			t.Bits[i] = ^t.Bits[i]
		}
		if mask := uint(t.Rows()); mask < 64 {
			t.Bits[0] &= (1 << mask) - 1
		}
		gate.Table = t
	default:
		return Fault{}, fmt.Errorf("faults: cannot invert kind %v", gate.Kind)
	}
	return Fault{Gate: g, Model: OutputInversion,
		Desc: fmt.Sprintf("%s@%s: %s inverted", gate.Name, c.Name, orig)}, nil
}

func describeKind(g *circuit.Gate) string {
	if g.Kind == logic.TableKind {
		return "TABLE[" + g.Table.String() + "]"
	}
	return g.Kind.String()
}

// replacementKinds lists alternative kinds with the same arity that
// compute a different function from the current gate.
func replacementKinds(g *circuit.Gate) []logic.Kind {
	n := len(g.Fanin)
	var pool []logic.Kind
	switch {
	case n == 1:
		pool = []logic.Kind{logic.Buf, logic.Not}
	case n >= 2:
		pool = []logic.Kind{logic.And, logic.Nand, logic.Or, logic.Nor, logic.Xor, logic.Xnor}
	default:
		return nil
	}
	cur := currentTable(g)
	var out []logic.Kind
	for _, k := range pool {
		if k == g.Kind {
			continue
		}
		if !logic.TableOf(k, n).Equal(cur) {
			out = append(out, k)
		}
	}
	return out
}

func currentTable(g *circuit.Gate) *logic.Table {
	if g.Kind == logic.TableKind {
		return g.Table
	}
	return logic.TableOf(g.Kind, len(g.Fanin))
}
