// Package circuit provides the gate-level netlist substrate used by every
// diagnosis approach in the repository: the circuit model and builder, an
// ISCAS-style .bench reader/writer (with the standard full-scan conversion
// of flip-flops to pseudo-primary inputs/outputs), and the structural
// analyses the paper's algorithms rely on (topological order, levels,
// cones, fanout-free regions, dominators, and gate distances).
package circuit

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/logic"
)

// Gate is one node of the netlist. Gates are identified by their index in
// Circuit.Gates. Primary inputs are gates of kind logic.Input.
type Gate struct {
	ID     int
	Name   string
	Kind   logic.Kind
	Fanin  []int        // driving gate IDs, in pin order
	Fanout []int        // driven gate IDs (derived, sorted)
	Table  *logic.Table // set iff Kind == logic.TableKind
}

// Eval computes the gate output word from the fanin value words.
func (g *Gate) Eval(in []uint64) uint64 {
	if g.Kind == logic.TableKind {
		return g.Table.EvalWord(in)
	}
	return logic.EvalWord(g.Kind, in)
}

// Circuit is an immutable combinational netlist. Gates appear in
// topological order: every fanin ID is smaller than the gate's own ID.
// Sequential designs are represented after full-scan conversion: former
// flip-flop outputs are pseudo-primary inputs (kind Input) and former
// flip-flop data inputs are listed as pseudo-primary outputs.
type Circuit struct {
	Name    string
	Gates   []Gate
	Inputs  []int // primary + pseudo-primary input gate IDs, in declaration order
	Outputs []int // observed gate IDs (primary + pseudo-primary outputs)

	// Latches records the flip-flops of a sequential design after
	// full-scan conversion: Q is the pseudo-primary input carrying the
	// present state, D the pseudo-primary output computing the next
	// state. Time-frame expansion (internal/seq) stitches D of frame f
	// to Q of frame f+1. Empty for purely combinational circuits.
	Latches []Latch

	byName map[string]int
	inPos  map[int]int // gate ID -> index in Inputs

	analysisOnce sync.Once
	analysis     *Analysis
}

// Latch is one state element of a sequential design in the full-scan
// combinational model.
type Latch struct {
	Q int // pseudo-primary input gate (flip-flop output)
	D int // pseudo-primary output gate (flip-flop data input)
}

// NumGates returns the total node count |I| (including inputs).
func (c *Circuit) NumGates() int { return len(c.Gates) }

// NumInternal returns the number of non-input gates — the correction
// candidates of the diagnosis approaches.
func (c *Circuit) NumInternal() int { return len(c.Gates) - len(c.Inputs) }

// GateByName returns the gate ID carrying the given name.
func (c *Circuit) GateByName(name string) (int, bool) {
	id, ok := c.byName[name]
	return id, ok
}

// InputPos returns the position of gate id within Inputs, or -1.
func (c *Circuit) InputPos(id int) int {
	if p, ok := c.inPos[id]; ok {
		return p
	}
	return -1
}

// IsInput reports whether gate id is a (pseudo-)primary input.
func (c *Circuit) IsInput(id int) bool { return c.Gates[id].Kind == logic.Input }

// IsOutput reports whether gate id is observed as a (pseudo-)primary output.
func (c *Circuit) IsOutput(id int) bool {
	for _, o := range c.Outputs {
		if o == id {
			return true
		}
	}
	return false
}

// InternalGates returns the IDs of all non-input gates in topological
// order: the candidate sites where corrections may be applied.
func (c *Circuit) InternalGates() []int {
	ids := make([]int, 0, c.NumInternal())
	for i := range c.Gates {
		if c.Gates[i].Kind != logic.Input {
			ids = append(ids, i)
		}
	}
	return ids
}

// Clone returns a deep copy sharing no mutable state with c.
func (c *Circuit) Clone() *Circuit {
	n := &Circuit{
		Name:    c.Name,
		Gates:   make([]Gate, len(c.Gates)),
		Inputs:  append([]int(nil), c.Inputs...),
		Outputs: append([]int(nil), c.Outputs...),
		Latches: append([]Latch(nil), c.Latches...),
		byName:  make(map[string]int, len(c.byName)),
		inPos:   make(map[int]int, len(c.inPos)),
	}
	for i, g := range c.Gates {
		ng := g
		ng.Fanin = append([]int(nil), g.Fanin...)
		ng.Fanout = append([]int(nil), g.Fanout...)
		if g.Table != nil {
			ng.Table = g.Table.Clone()
		}
		n.Gates[i] = ng
	}
	for k, v := range c.byName {
		n.byName[k] = v
	}
	for k, v := range c.inPos {
		n.inPos[k] = v
	}
	return n
}

// Stats summarizes a circuit for reporting.
type Stats struct {
	Gates, Inputs, Outputs, Internal, Levels int
}

// Stat computes summary statistics.
func (c *Circuit) Stat() Stats {
	lv := c.Levels()
	max := 0
	for _, l := range lv {
		if l > max {
			max = l
		}
	}
	return Stats{
		Gates:    len(c.Gates),
		Inputs:   len(c.Inputs),
		Outputs:  len(c.Outputs),
		Internal: c.NumInternal(),
		Levels:   max,
	}
}

// String renders a one-line summary.
func (c *Circuit) String() string {
	s := c.Stat()
	return fmt.Sprintf("%s: %d gates (%d inputs, %d outputs, %d internal, depth %d)",
		c.Name, s.Gates, s.Inputs, s.Outputs, s.Internal, s.Levels)
}

// Builder assembles a circuit incrementally. Gates must be added after
// their fanins (netlists with forward references should use the .bench
// parser, which buffers and sorts).
type Builder struct {
	name  string
	gates []Gate
	ins   []int
	outs  []int
	names map[string]int
	err   error
}

// NewBuilder starts an empty circuit with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, names: make(map[string]int)}
}

func (b *Builder) fail(format string, args ...interface{}) int {
	if b.err == nil {
		b.err = fmt.Errorf("circuit %q: %s", b.name, fmt.Sprintf(format, args...))
	}
	return -1
}

// Input declares a primary input and returns its gate ID.
func (b *Builder) Input(name string) int {
	id := b.add(name, logic.Input, nil, nil)
	if id >= 0 {
		b.ins = append(b.ins, id)
	}
	return id
}

// Gate adds a gate of the given kind over the fanin IDs and returns its ID.
func (b *Builder) Gate(kind logic.Kind, name string, fanin ...int) int {
	return b.add(name, kind, fanin, nil)
}

// TableGate adds a truth-table gate.
func (b *Builder) TableGate(name string, table *logic.Table, fanin ...int) int {
	return b.add(name, logic.TableKind, fanin, table)
}

func (b *Builder) add(name string, kind logic.Kind, fanin []int, table *logic.Table) int {
	if b.err != nil {
		return -1
	}
	if name == "" {
		name = fmt.Sprintf("n%d", len(b.gates))
	}
	if _, dup := b.names[name]; dup {
		return b.fail("duplicate signal name %q", name)
	}
	if !kind.Valid() {
		return b.fail("gate %q: invalid kind", name)
	}
	if kind == logic.TableKind {
		if table == nil {
			return b.fail("gate %q: table kind without table", name)
		}
		if table.N != len(fanin) {
			return b.fail("gate %q: table arity %d vs %d fanins", name, table.N, len(fanin))
		}
	}
	if !kind.ArityOK(len(fanin)) {
		return b.fail("gate %q: kind %v with %d fanins", name, kind, len(fanin))
	}
	id := len(b.gates)
	for _, f := range fanin {
		if f < 0 || f >= id {
			return b.fail("gate %q: fanin %d out of range (gates must be added after their fanins)", name, f)
		}
	}
	b.names[name] = id
	b.gates = append(b.gates, Gate{
		ID:    id,
		Name:  name,
		Kind:  kind,
		Fanin: append([]int(nil), fanin...),
		Table: table,
	})
	return id
}

// Output marks gate id as a primary output. A gate may be marked once.
func (b *Builder) Output(id int) {
	if b.err != nil {
		return
	}
	if id < 0 || id >= len(b.gates) {
		b.fail("output id %d out of range", id)
		return
	}
	for _, o := range b.outs {
		if o == id {
			b.fail("gate %q marked output twice", b.gates[id].Name)
			return
		}
	}
	b.outs = append(b.outs, id)
}

// Build finalizes the circuit, deriving fanout lists and validating
// structure. The builder must not be reused afterwards.
func (b *Builder) Build() (*Circuit, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.outs) == 0 {
		return nil, fmt.Errorf("circuit %q: no outputs", b.name)
	}
	c := &Circuit{
		Name:    b.name,
		Gates:   b.gates,
		Inputs:  b.ins,
		Outputs: b.outs,
		byName:  b.names,
		inPos:   make(map[int]int, len(b.ins)),
	}
	for pos, id := range c.Inputs {
		c.inPos[id] = pos
	}
	for i := range c.Gates {
		for _, f := range c.Gates[i].Fanin {
			c.Gates[f].Fanout = append(c.Gates[f].Fanout, i)
		}
	}
	for i := range c.Gates {
		sort.Ints(c.Gates[i].Fanout)
	}
	return c, nil
}
