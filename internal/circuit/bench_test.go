package circuit

import (
	"strings"
	"testing"

	"repro/internal/logic"
)

const sampleBench = `# tiny
INPUT(a)
INPUT(b)
OUTPUT(y)
n1 = NAND(a, b)
y = NOT(n1)
`

func TestParseBenchBasic(t *testing.T) {
	c, err := ParseBench("tiny", strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Inputs) != 2 || len(c.Outputs) != 1 || c.NumInternal() != 2 {
		t.Fatalf("shape: %v", c)
	}
	y, ok := c.GateByName("y")
	if !ok || c.Gates[y].Kind != logic.Not || !c.IsOutput(y) {
		t.Fatal("output gate wrong")
	}
}

func TestParseBenchForwardReferences(t *testing.T) {
	// y defined before its fanin n1.
	src := `INPUT(a)
OUTPUT(y)
y = NOT(n1)
n1 = BUFF(a)
`
	c, err := ParseBench("fwd", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if c.CheckTopological() != -1 {
		t.Fatal("parser emitted non-topological order")
	}
}

func TestParseBenchDFFConversion(t *testing.T) {
	src := `INPUT(x)
OUTPUT(o)
q = DFF(d)
d = NAND(x, q)
o = NOT(q)
`
	c, err := ParseBench("seq", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	// Full scan: q becomes a pseudo-input, d a pseudo-output.
	if len(c.Inputs) != 2 {
		t.Fatalf("inputs = %d, want 2 (x + pseudo q)", len(c.Inputs))
	}
	if len(c.Outputs) != 2 {
		t.Fatalf("outputs = %d, want 2 (o + pseudo d)", len(c.Outputs))
	}
	q, _ := c.GateByName("q")
	if !c.IsInput(q) {
		t.Fatal("DFF output not converted to input")
	}
	d, _ := c.GateByName("d")
	if !c.IsOutput(d) {
		t.Fatal("DFF data not converted to output")
	}
}

func TestParseBenchErrors(t *testing.T) {
	cases := []string{
		"INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n",             // unknown gate
		"INPUT(a)\nOUTPUT(y)\ny NOT(a)\n",                // missing '='
		"INPUT(a)\nOUTPUT(y)\ny = NOT(z)\n",              // undefined signal
		"INPUT(a)\nOUTPUT(y)\ny = NOT(y)\n",              // combinational cycle
		"INPUT(a)\nINPUT(a)\nOUTPUT(a)\n",                // duplicate input
		"INPUT(a)\nOUTPUT(missing)\na2 = NOT(a)\n",       // undefined output
		"INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = BUFF(a)\n", // double definition
		"INPUT(a\nOUTPUT(y)\ny = NOT(a)\n",               // malformed declaration
	}
	for _, src := range cases {
		if _, err := ParseBench("bad", strings.NewReader(src)); err == nil {
			t.Fatalf("no error for:\n%s", src)
		}
	}
}

func TestParseBenchCycleThroughDFFAllowed(t *testing.T) {
	// Feedback through a flip-flop is sequential, not combinational.
	src := `INPUT(x)
OUTPUT(q)
q = DFF(d)
d = NAND(x, q)
`
	if _, err := ParseBench("loop", strings.NewReader(src)); err != nil {
		t.Fatalf("DFF feedback rejected: %v", err)
	}
}

func TestWriteBenchRoundTrip(t *testing.T) {
	c, err := ParseBench("tiny", strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteBench(&sb, c); err != nil {
		t.Fatal(err)
	}
	c2, err := ParseBench("tiny2", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, sb.String())
	}
	if c2.NumGates() != c.NumGates() || len(c2.Outputs) != len(c.Outputs) {
		t.Fatal("round trip changed shape")
	}
}

func TestWriteBenchRejectsTables(t *testing.T) {
	b := NewBuilder("tab")
	a := b.Input("a")
	g := b.TableGate("g", logic.TableOf(logic.Not, 1), a)
	b.Output(g)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteBench(&sb, c); err == nil {
		t.Fatal("table gate serialized to bench")
	}
}

func TestParseBenchComments(t *testing.T) {
	src := "# header\nINPUT(a) # trailing\n\nOUTPUT(y)\ny = BUFF(a) # gate\n"
	c, err := ParseBench("comments", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if c.NumGates() != 2 {
		t.Fatalf("gates = %d", c.NumGates())
	}
}
