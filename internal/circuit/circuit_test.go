package circuit

import (
	"strings"
	"testing"

	"repro/internal/logic"
)

// buildDiamond returns a small reconvergent circuit:
//
//	a, b inputs; n1 = NAND(a,b); n2 = NOT(a); o1 = AND(n1, n2) (output)
func buildDiamond(t *testing.T) *Circuit {
	t.Helper()
	b := NewBuilder("diamond")
	a := b.Input("a")
	bi := b.Input("b")
	n1 := b.Gate(logic.Nand, "n1", a, bi)
	n2 := b.Gate(logic.Not, "n2", a)
	o1 := b.Gate(logic.And, "o1", n1, n2)
	b.Output(o1)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBuilderBasics(t *testing.T) {
	c := buildDiamond(t)
	if c.NumGates() != 5 || len(c.Inputs) != 2 || len(c.Outputs) != 1 {
		t.Fatalf("unexpected shape: %v", c)
	}
	if c.NumInternal() != 3 {
		t.Fatalf("internal = %d", c.NumInternal())
	}
	id, ok := c.GateByName("n1")
	if !ok || c.Gates[id].Kind != logic.Nand {
		t.Fatal("GateByName failed")
	}
	if c.CheckTopological() != -1 {
		t.Fatal("not topological")
	}
	a, _ := c.GateByName("a")
	if c.InputPos(a) != 0 || !c.IsInput(a) {
		t.Fatal("input bookkeeping")
	}
	o1, _ := c.GateByName("o1")
	if !c.IsOutput(o1) || c.IsOutput(a) {
		t.Fatal("output bookkeeping")
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder("bad")
	a := b.Input("a")
	b.Input("a") // duplicate
	b.Gate(logic.And, "g", a, a)
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("expected duplicate error, got %v", err)
	}

	b2 := NewBuilder("bad2")
	x := b2.Input("x")
	b2.Gate(logic.Not, "n", x, x) // wrong arity
	if _, err := b2.Build(); err == nil {
		t.Fatal("expected arity error")
	}

	b3 := NewBuilder("bad3")
	b3.Input("x")
	if _, err := b3.Build(); err == nil || !strings.Contains(err.Error(), "no outputs") {
		t.Fatalf("expected no-outputs error, got %v", err)
	}

	b4 := NewBuilder("bad4")
	y := b4.Input("y")
	b4.Gate(logic.Buf, "g", y)
	b4.Output(99)
	if _, err := b4.Build(); err == nil {
		t.Fatal("expected out-of-range output error")
	}

	b5 := NewBuilder("bad5")
	z := b5.Input("z")
	g := b5.Gate(logic.Buf, "g", z)
	b5.Output(g)
	b5.Output(g)
	if _, err := b5.Build(); err == nil {
		t.Fatal("expected double-output error")
	}
}

func TestBuilderTableGate(t *testing.T) {
	b := NewBuilder("tab")
	a := b.Input("a")
	bi := b.Input("b")
	tab := logic.TableOf(logic.Xor, 2)
	g := b.TableGate("g", tab, a, bi)
	b.Output(g)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if c.Gates[g].Table == nil {
		t.Fatal("table lost")
	}
	// Arity mismatch must fail.
	b2 := NewBuilder("tab2")
	x := b2.Input("x")
	b2.TableGate("g", logic.TableOf(logic.Xor, 2), x)
	if _, err := b2.Build(); err == nil {
		t.Fatal("expected table-arity error")
	}
}

func TestCloneIsDeep(t *testing.T) {
	c := buildDiamond(t)
	cl := c.Clone()
	n1, _ := cl.GateByName("n1")
	cl.Gates[n1].Kind = logic.Or
	orig, _ := c.GateByName("n1")
	if c.Gates[orig].Kind != logic.Nand {
		t.Fatal("clone aliases original")
	}
	if cl.Name != c.Name {
		t.Fatal("name not copied")
	}
}

func TestLevels(t *testing.T) {
	c := buildDiamond(t)
	lv := c.Levels()
	o1, _ := c.GateByName("o1")
	n1, _ := c.GateByName("n1")
	a, _ := c.GateByName("a")
	if lv[a] != 0 || lv[n1] != 1 || lv[o1] != 2 {
		t.Fatalf("levels %v", lv)
	}
	if c.Stat().Levels != 2 {
		t.Fatalf("stat levels = %d", c.Stat().Levels)
	}
}

func TestCones(t *testing.T) {
	c := buildDiamond(t)
	o1, _ := c.GateByName("o1")
	a, _ := c.GateByName("a")
	b, _ := c.GateByName("b")
	n2, _ := c.GateByName("n2")
	in := c.FaninCone(o1)
	for g, want := range map[int]bool{o1: true, a: true, b: true, n2: true} {
		if in[g] != want {
			t.Fatalf("fanin cone gate %d = %v, want %v", g, in[g], want)
		}
	}
	out := c.FanoutCone(a)
	if !out[o1] || !out[n2] || out[b] {
		t.Fatalf("fanout cone wrong: %v", out)
	}
}

func TestDistances(t *testing.T) {
	c := buildDiamond(t)
	n1, _ := c.GateByName("n1")
	o1, _ := c.GateByName("o1")
	a, _ := c.GateByName("a")
	n2, _ := c.GateByName("n2")
	d := c.Distances([]int{n1})
	if d[n1] != 0 || d[o1] != 1 || d[a] != 1 {
		t.Fatalf("distances %v", d)
	}
	// n2 is two steps away via a or o1.
	if d[n2] != 2 {
		t.Fatalf("d[n2] = %d", d[n2])
	}
	// Multiple sources take the minimum.
	d2 := c.Distances([]int{n1, n2})
	if d2[n2] != 0 || d2[o1] != 1 {
		t.Fatalf("multi-source distances %v", d2)
	}
	// Empty source set: all unreachable.
	d3 := c.Distances(nil)
	for _, v := range d3 {
		if v != -1 {
			t.Fatalf("expected -1, got %v", d3)
		}
	}
}

func TestFFRRoots(t *testing.T) {
	// Chain: a -> b1 -> b2 -> out ; all single fanout, so all share the
	// root "out"; a side branch with fanout 2 roots itself.
	b := NewBuilder("ffr")
	a := b.Input("a")
	s := b.Gate(logic.Buf, "stem", a) // fanout 2 below
	b1 := b.Gate(logic.Not, "b1", s)
	b2 := b.Gate(logic.Not, "b2", s)
	o := b.Gate(logic.And, "o", b1, b2)
	b.Output(o)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	roots := c.FFRRoots()
	if roots[s] != s {
		t.Fatalf("stem root = %d, want itself (%d)", roots[s], s)
	}
	if roots[b1] != o || roots[b2] != o || roots[o] != o {
		t.Fatalf("roots %v", roots)
	}
	members := c.FFRMembers()
	if len(members[o]) != 3 {
		t.Fatalf("region of o = %v", members[o])
	}
}

func TestDominators(t *testing.T) {
	// stem -> {b1, b2} -> o (single output): idom of b1, b2 and stem is o
	// (all paths to the output pass through o); o itself and observed
	// gates have no proper dominator.
	b := NewBuilder("dom")
	a := b.Input("a")
	s := b.Gate(logic.Buf, "stem", a)
	b1 := b.Gate(logic.Not, "b1", s)
	b2 := b.Gate(logic.Not, "b2", s)
	o := b.Gate(logic.And, "o", b1, b2)
	b.Output(o)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	idom := c.Dominators()
	if idom[b1] != o || idom[b2] != o {
		t.Fatalf("idom(b1)=%d idom(b2)=%d, want %d", idom[b1], idom[b2], o)
	}
	if idom[s] != o {
		t.Fatalf("idom(stem)=%d, want %d", idom[s], o)
	}
	if idom[o] != -1 {
		t.Fatalf("idom(o)=%d, want -1", idom[o])
	}
}

func TestDominatorsMultiOutput(t *testing.T) {
	// g feeds two separate outputs: no single proper dominator.
	b := NewBuilder("dom2")
	a := b.Input("a")
	g := b.Gate(logic.Not, "g", a)
	o1 := b.Gate(logic.Buf, "o1", g)
	o2 := b.Gate(logic.Not, "o2", g)
	b.Output(o1)
	b.Output(o2)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	idom := c.Dominators()
	if idom[g] != -1 {
		t.Fatalf("idom(g)=%d, want -1 (independent paths)", idom[g])
	}
}

func TestTestSetHelpers(t *testing.T) {
	ts := TestSet{
		{Vector: []bool{true}, Output: 3, Want: true},
		{Vector: []bool{false}, Output: 1, Want: false},
		{Vector: []bool{true}, Output: 3, Want: false},
	}
	if got := ts.Prefix(2); len(got) != 2 {
		t.Fatalf("prefix: %d", len(got))
	}
	if got := ts.Prefix(99); len(got) != 3 {
		t.Fatalf("over-prefix: %d", len(got))
	}
	outs := ts.Outputs()
	if len(outs) != 2 || outs[0] != 1 || outs[1] != 3 {
		t.Fatalf("outputs %v", outs)
	}
	cl := ts[0].Clone()
	cl.Vector[0] = false
	if ts[0].Vector[0] != true {
		t.Fatal("clone aliases")
	}
}
