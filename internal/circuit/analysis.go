package circuit

import "sync"

// Structural analyses backing the diagnosis algorithms: levels, cones,
// fanout-free regions, dominators and distance-to-gate metrics.

// Analysis caches the structural precomputations shared by the
// event-driven simulation engine and the diagnosis hot loops:
// levelization and lazily materialized fanout-cone bitsets. It is built
// at most once per Circuit (see Circuit.Analysis) and is safe for
// concurrent use.
type Analysis struct {
	// Levels is the longest distance (in gates) from any primary input,
	// per gate; inputs are level 0. Fanins always sit on strictly lower
	// levels than the gate they drive, so evaluating level-by-level in
	// ascending order respects all data dependencies.
	Levels []int
	// MaxLevel is the largest entry of Levels (the circuit depth).
	MaxLevel int

	c  *Circuit
	mu sync.RWMutex
	// cones memoizes fanout-cone bitsets per root and inCones fanin-cone
	// bitsets per root. Cones are demanded only for correction
	// candidates and observed outputs (small subsets of gates), so the
	// maps stay far below the dense |gates|^2/64 footprint.
	cones   map[int]Bitset
	inCones map[int]Bitset
}

// Analysis returns the cached structural analysis of c, computing it on
// first use. The result is shared; callers must treat it as read-only.
func (c *Circuit) Analysis() *Analysis {
	c.analysisOnce.Do(func() {
		a := &Analysis{
			Levels:  c.Levels(),
			c:       c,
			cones:   make(map[int]Bitset),
			inCones: make(map[int]Bitset),
		}
		for _, l := range a.Levels {
			if l > a.MaxLevel {
				a.MaxLevel = l
			}
		}
		c.analysis = a
	})
	return c.analysis
}

// FanoutConeBits returns the fanout cone of root (including root) as a
// bitset, memoized per root. The returned bitset is shared: callers must
// not modify it.
func (a *Analysis) FanoutConeBits(root int) Bitset {
	return a.coneBits(root, a.cones, false)
}

// FaninConeBits returns the fanin cone of root (including root) as a
// bitset, memoized per root. The returned bitset is shared: callers must
// not modify it.
func (a *Analysis) FaninConeBits(root int) Bitset {
	return a.coneBits(root, a.inCones, true)
}

// coneBits computes (or returns memoized) the reachability cone of root
// over the fanin or fanout edges.
func (a *Analysis) coneBits(root int, memo map[int]Bitset, fanin bool) Bitset {
	a.mu.RLock()
	b, ok := memo[root]
	a.mu.RUnlock()
	if ok {
		return b
	}
	b = NewBitset(len(a.c.Gates))
	b.Set(root)
	stack := []int{root}
	for len(stack) > 0 {
		g := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		edges := a.c.Gates[g].Fanout
		if fanin {
			edges = a.c.Gates[g].Fanin
		}
		for _, f := range edges {
			if !b.Has(f) {
				b.Set(f)
				stack = append(stack, f)
			}
		}
	}
	a.mu.Lock()
	if prev, ok := memo[root]; ok {
		b = prev // another goroutine computed it concurrently
	} else {
		memo[root] = b
	}
	a.mu.Unlock()
	return b
}

// Reaches reports whether gate to lies in the fanout cone of from, i.e.
// whether a value change at from can structurally influence to. It is
// answered from the fanin cone of to: the diagnosis sweeps ask about
// many candidate sources against few observed outputs, so memoizing one
// cone per output is far cheaper than one per source.
func (a *Analysis) Reaches(from, to int) bool {
	return a.FaninConeBits(to).Has(from)
}

// Bitset is a packed gate-ID set.
type Bitset []uint64

// NewBitset returns an empty bitset able to hold IDs 0..n-1.
func NewBitset(n int) Bitset { return make(Bitset, (n+63)/64) }

// Has reports whether id is in the set.
func (b Bitset) Has(id int) bool { return b[id>>6]>>(uint(id)&63)&1 == 1 }

// Set adds id to the set.
func (b Bitset) Set(id int) { b[id>>6] |= 1 << (uint(id) & 63) }

// Clear empties the set.
func (b Bitset) Clear() {
	for i := range b {
		b[i] = 0
	}
}

// Or adds every element of o (same capacity) to the set.
func (b Bitset) Or(o Bitset) {
	for i := range b {
		b[i] |= o[i]
	}
}

// Levels returns, per gate, the longest distance (in gates) from any
// primary input. Inputs are level 0.
func (c *Circuit) Levels() []int {
	lv := make([]int, len(c.Gates))
	for i := range c.Gates {
		max := -1
		for _, f := range c.Gates[i].Fanin {
			if lv[f] > max {
				max = lv[f]
			}
		}
		lv[i] = max + 1
	}
	return lv
}

// FaninCone returns the set (as a gate-indexed bool slice) of gates with a
// path to root, including root itself.
func (c *Circuit) FaninCone(root int) []bool {
	in := make([]bool, len(c.Gates))
	stack := []int{root}
	in[root] = true
	for len(stack) > 0 {
		g := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, f := range c.Gates[g].Fanin {
			if !in[f] {
				in[f] = true
				stack = append(stack, f)
			}
		}
	}
	return in
}

// FanoutCone returns the set of gates reachable from root, including root.
func (c *Circuit) FanoutCone(root int) []bool {
	out := make([]bool, len(c.Gates))
	stack := []int{root}
	out[root] = true
	for len(stack) > 0 {
		g := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, f := range c.Gates[g].Fanout {
			if !out[f] {
				out[f] = true
				stack = append(stack, f)
			}
		}
	}
	return out
}

// Distances returns, per gate, the length (in edges) of a shortest
// undirected path in the gate connection graph to any gate in from; gates
// in from have distance 0 and unreachable gates have distance -1. This is
// the "distance to the nearest error" metric of Table 3.
func (c *Circuit) Distances(from []int) []int {
	dist := make([]int, len(c.Gates))
	for i := range dist {
		dist[i] = -1
	}
	queue := make([]int, 0, len(from))
	for _, g := range from {
		if g >= 0 && g < len(c.Gates) && dist[g] == -1 {
			dist[g] = 0
			queue = append(queue, g)
		}
	}
	for head := 0; head < len(queue); head++ {
		g := queue[head]
		d := dist[g] + 1
		for _, n := range c.Gates[g].Fanin {
			if dist[n] == -1 {
				dist[n] = d
				queue = append(queue, n)
			}
		}
		for _, n := range c.Gates[g].Fanout {
			if dist[n] == -1 {
				dist[n] = d
				queue = append(queue, n)
			}
		}
	}
	return dist
}

// FFRRoots returns, per gate, the root of its fanout-free region: the
// first gate reached by following single-fanout edges forward. A gate with
// fanout count != 1, or whose single fanout would leave the circuit, is
// its own root, as is any observed output. FFR roots are the coarse
// correction sites used by the dominator-based first pass of the advanced
// SAT approach (Section 2.3 of the paper): every path from a gate inside
// the region to any output passes through the region's root.
func (c *Circuit) FFRRoots() []int {
	root := make([]int, len(c.Gates))
	obs := make([]bool, len(c.Gates))
	for _, o := range c.Outputs {
		obs[o] = true
	}
	// Gates are in topological order, so a reverse sweep sees each gate's
	// fanout root before the gate itself.
	for i := len(c.Gates) - 1; i >= 0; i-- {
		g := &c.Gates[i]
		if obs[i] || len(g.Fanout) != 1 {
			root[i] = i
			continue
		}
		root[i] = root[g.Fanout[0]]
	}
	return root
}

// FFRMembers groups gates by their fanout-free-region root.
func (c *Circuit) FFRMembers() map[int][]int {
	roots := c.FFRRoots()
	m := make(map[int][]int)
	for g, r := range roots {
		m[r] = append(m[r], g)
	}
	return m
}

// Dominators computes, per gate, the immediate dominator on all paths
// toward the observed outputs: the unique nearest gate (other than the
// gate itself) through which every gate-to-output path passes, or -1 if
// the gate reaches outputs through structurally independent paths (its
// only common dominator is the virtual sink) or reaches no output at all.
//
// This is the output-side dominator relation the advanced SAT-based
// approach uses to prune correction sites. It is computed with the
// classic iterative intersection scheme over the reverse graph, with a
// virtual sink collecting all outputs.
func (c *Circuit) Dominators() []int {
	n := len(c.Gates)
	const sink = -2 // virtual sink; exported as -1 ("no proper dominator")
	idom := make([]int, n)
	reaches := make([]bool, n)
	for _, o := range c.Outputs {
		reaches[o] = true
	}
	for i := n - 1; i >= 0; i-- {
		if reaches[i] {
			continue
		}
		for _, f := range c.Gates[i].Fanout {
			if reaches[f] {
				reaches[i] = true
				break
			}
		}
	}
	// Process in reverse topological order; fanouts (successors toward the
	// sink) are processed before the gate, so one sweep suffices on a DAG.
	order := make([]int, 0, n)
	for i := n - 1; i >= 0; i-- {
		if reaches[i] {
			order = append(order, i)
		}
	}
	pos := make([]int, n) // topological position for intersection walks
	for i := range pos {
		pos[i] = i
	}
	for i := range idom {
		idom[i] = -1
	}
	intersect := func(a, b int) int {
		// Walk the two dominator chains (toward larger IDs / the sink)
		// until they meet. sink dominates everything.
		for a != b {
			if a == sink || b == sink {
				return sink
			}
			if pos[a] < pos[b] {
				a = idomOrSink(idom, a)
			} else {
				b = idomOrSink(idom, b)
			}
		}
		return a
	}
	for _, g := range order {
		d := -1 // unset
		if c.IsOutput(g) {
			d = sink
		}
		for _, f := range c.Gates[g].Fanout {
			if !reaches[f] {
				continue
			}
			if d == -1 {
				d = f
			} else {
				d = intersect(d, f)
			}
		}
		if d == -1 {
			d = sink // isolated output (already handled) or unreachable
		}
		idom[g] = d
	}
	for i := range idom {
		if idom[i] == sink || !reaches[i] {
			idom[i] = -1
		}
	}
	return idom
}

func idomOrSink(idom []int, g int) int {
	d := idom[g]
	if d == -1 {
		return -2
	}
	return d
}

// CheckTopological verifies the structural invariant that every gate's
// fanins precede it, returning the first violating gate ID or -1.
func (c *Circuit) CheckTopological() int {
	for i := range c.Gates {
		for _, f := range c.Gates[i].Fanin {
			if f >= i {
				return i
			}
		}
	}
	return -1
}
