package circuit

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/logic"
)

// ParseBench reads a circuit in the ISCAS .bench netlist format:
//
//	# comment
//	INPUT(a)
//	OUTPUT(y)
//	g10 = NAND(a, b)
//	s5  = DFF(g10)
//
// Flip-flops (DFF/DFFSR first operand) are converted to the standard
// full-scan combinational model: the DFF output becomes a pseudo-primary
// input and its data input becomes a pseudo-primary output. Forward
// references are allowed; combinational cycles are rejected.
func ParseBench(name string, r io.Reader) (*Circuit, error) {
	type rawGate struct {
		kind  logic.Kind
		fanin []string
		line  int
	}
	type ffPair struct{ q, d string }
	defs := make(map[string]rawGate)
	var inputs, outputs, defOrder []string
	var ffs []ffPair // flip-flops: output (Q) and data (D) signal names

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(strings.ToUpper(line), "INPUT("):
			arg, err := benchArg(line)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: %v", name, lineno, err)
			}
			inputs = append(inputs, arg)
		case strings.HasPrefix(strings.ToUpper(line), "OUTPUT("):
			arg, err := benchArg(line)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: %v", name, lineno, err)
			}
			outputs = append(outputs, arg)
		default:
			eq := strings.IndexByte(line, '=')
			if eq < 0 {
				return nil, fmt.Errorf("%s:%d: expected assignment, got %q", name, lineno, line)
			}
			lhs := strings.TrimSpace(line[:eq])
			rhs := strings.TrimSpace(line[eq+1:])
			op, args, err := benchCall(rhs)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: %v", name, lineno, err)
			}
			if _, dup := defs[lhs]; dup {
				return nil, fmt.Errorf("%s:%d: signal %q defined twice", name, lineno, lhs)
			}
			upper := strings.ToUpper(op)
			if upper == "DFF" || upper == "DFFSR" {
				if len(args) == 0 {
					return nil, fmt.Errorf("%s:%d: DFF with no data input", name, lineno)
				}
				// Full-scan conversion: FF output -> pseudo-PI, data -> pseudo-PO.
				inputs = append(inputs, lhs)
				ffs = append(ffs, ffPair{q: lhs, d: args[0]})
				continue
			}
			kind, ok := logic.KindByName(op)
			if !ok || kind == logic.Input || kind == logic.TableKind {
				return nil, fmt.Errorf("%s:%d: unknown gate type %q", name, lineno, op)
			}
			defs[lhs] = rawGate{kind: kind, fanin: args, line: lineno}
			defOrder = append(defOrder, lhs)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %v", name, err)
	}

	b := NewBuilder(name)
	ids := make(map[string]int, len(defs)+len(inputs))
	for _, in := range inputs {
		if _, dup := ids[in]; dup {
			return nil, fmt.Errorf("%s: input %q declared twice", name, in)
		}
		if _, isGate := defs[in]; isGate {
			return nil, fmt.Errorf("%s: signal %q is both an input and a gate", name, in)
		}
		ids[in] = b.Input(in)
	}

	// Emit gates in dependency order (DFS over the forward-reference graph).
	state := make(map[string]int, len(defs)) // 0 new, 1 visiting, 2 done
	var emit func(sig string, via string) error
	emit = func(sig, via string) error {
		if _, ok := ids[sig]; ok {
			return nil
		}
		def, ok := defs[sig]
		if !ok {
			return fmt.Errorf("%s: undefined signal %q (used by %q)", name, sig, via)
		}
		switch state[sig] {
		case 1:
			return fmt.Errorf("%s: combinational cycle through %q", name, sig)
		case 2:
			return nil
		}
		state[sig] = 1
		fan := make([]int, len(def.fanin))
		for i, f := range def.fanin {
			if err := emit(f, sig); err != nil {
				return err
			}
			fan[i] = ids[f]
		}
		state[sig] = 2
		ids[sig] = b.Gate(def.kind, sig, fan...)
		return nil
	}
	for _, sig := range defOrder {
		if err := emit(sig, ""); err != nil {
			return nil, err
		}
	}
	seenOut := make(map[int]bool)
	addOut := func(sig string) error {
		id, ok := ids[sig]
		if !ok {
			return fmt.Errorf("%s: output %q never defined", name, sig)
		}
		if !seenOut[id] {
			seenOut[id] = true
			b.Output(id)
		}
		return nil
	}
	for _, out := range outputs {
		if err := addOut(out); err != nil {
			return nil, err
		}
	}
	for _, ff := range ffs {
		if err := addOut(ff.d); err != nil {
			return nil, err
		}
	}
	c, err := b.Build()
	if err != nil {
		return nil, err
	}
	for _, ff := range ffs {
		q, d := ids[ff.q], ids[ff.d]
		c.Latches = append(c.Latches, Latch{Q: q, D: d})
	}
	return c, nil
}

func benchArg(line string) (string, error) {
	open := strings.IndexByte(line, '(')
	close := strings.LastIndexByte(line, ')')
	if open < 0 || close < open {
		return "", fmt.Errorf("malformed declaration %q", line)
	}
	arg := strings.TrimSpace(line[open+1 : close])
	if arg == "" {
		return "", fmt.Errorf("empty declaration %q", line)
	}
	return arg, nil
}

func benchCall(rhs string) (op string, args []string, err error) {
	open := strings.IndexByte(rhs, '(')
	close := strings.LastIndexByte(rhs, ')')
	if open < 0 || close < open {
		return "", nil, fmt.Errorf("malformed gate expression %q", rhs)
	}
	op = strings.TrimSpace(rhs[:open])
	inner := rhs[open+1 : close]
	if strings.TrimSpace(inner) == "" {
		return op, nil, nil
	}
	for _, part := range strings.Split(inner, ",") {
		p := strings.TrimSpace(part)
		if p == "" {
			return "", nil, fmt.Errorf("empty operand in %q", rhs)
		}
		args = append(args, p)
	}
	return op, args, nil
}

// WriteBench renders the circuit in .bench format. Truth-table gates have
// no bench equivalent and are rejected. Pseudo-inputs and -outputs from
// full-scan conversion are emitted as plain INPUT/OUTPUT declarations.
func WriteBench(w io.Writer, c *Circuit) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s\n", c.Name)
	for _, in := range c.Inputs {
		fmt.Fprintf(bw, "INPUT(%s)\n", c.Gates[in].Name)
	}
	for _, out := range c.Outputs {
		fmt.Fprintf(bw, "OUTPUT(%s)\n", c.Gates[out].Name)
	}
	for i := range c.Gates {
		g := &c.Gates[i]
		if g.Kind == logic.Input {
			continue
		}
		if g.Kind == logic.TableKind {
			return fmt.Errorf("circuit %q: gate %q: truth-table gates cannot be written as .bench", c.Name, g.Name)
		}
		names := make([]string, len(g.Fanin))
		for j, f := range g.Fanin {
			names[j] = c.Gates[f].Name
		}
		fmt.Fprintf(bw, "%s = %s(%s)\n", g.Name, benchKindName(g.Kind), strings.Join(names, ", "))
	}
	return bw.Flush()
}

func benchKindName(k logic.Kind) string {
	switch k {
	case logic.Not:
		return "NOT"
	case logic.Buf:
		return "BUFF"
	default:
		return k.String()
	}
}

// Test is one diagnosis stimulus per Definition 1 of the paper: a triple
// (t, o, v) of an input vector, the primary output where the vector
// exposes an erroneous value, and the correct value at that output.
type Test struct {
	Vector []bool // one value per circuit input, by position in Circuit.Inputs
	Output int    // gate ID of the erroneous (pseudo-)primary output
	Want   bool   // correct value v at Output
}

// Clone returns a deep copy of the test.
func (t Test) Clone() Test {
	return Test{Vector: append([]bool(nil), t.Vector...), Output: t.Output, Want: t.Want}
}

// TestSet is an ordered collection of tests (Definition 2).
type TestSet []Test

// Prefix returns the first m tests, the sharing discipline of the paper's
// experiments ("a part of the same test-set has been used").
func (ts TestSet) Prefix(m int) TestSet {
	if m > len(ts) {
		m = len(ts)
	}
	return ts[:m]
}

// Outputs returns the sorted distinct erroneous outputs in the set.
func (ts TestSet) Outputs() []int {
	seen := make(map[int]bool)
	var outs []int
	for _, t := range ts {
		if !seen[t.Output] {
			seen[t.Output] = true
			outs = append(outs, t.Output)
		}
	}
	sort.Ints(outs)
	return outs
}
