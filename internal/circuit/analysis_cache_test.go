package circuit

import (
	"sync"
	"testing"
)

func TestAnalysisLevelsAndCache(t *testing.T) {
	c := buildDiamond(t)
	an := c.Analysis()
	if an != c.Analysis() {
		t.Fatal("Analysis not cached")
	}
	want := c.Levels()
	maxLevel := 0
	for g, l := range want {
		if an.Levels[g] != l {
			t.Fatalf("gate %d: cached level %d, Levels() %d", g, an.Levels[g], l)
		}
		if l > maxLevel {
			maxLevel = l
		}
	}
	if an.MaxLevel != maxLevel {
		t.Fatalf("MaxLevel = %d, want %d", an.MaxLevel, maxLevel)
	}
}

func TestAnalysisFanoutConeBits(t *testing.T) {
	c := buildDiamond(t)
	an := c.Analysis()
	for root := range c.Gates {
		ref := c.FanoutCone(root)
		bits := an.FanoutConeBits(root)
		for g, in := range ref {
			if bits.Has(g) != in {
				t.Fatalf("root %d gate %d: bitset %v, FanoutCone %v", root, g, bits.Has(g), in)
			}
			if an.Reaches(root, g) != in {
				t.Fatalf("Reaches(%d, %d) != FanoutCone", root, g)
			}
		}
	}
}

func TestAnalysisConcurrent(t *testing.T) {
	c := buildDiamond(t)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			an := c.Analysis()
			for root := range c.Gates {
				an.FanoutConeBits(root)
			}
		}()
	}
	wg.Wait()
	an := c.Analysis()
	for root := range c.Gates {
		ref := c.FanoutCone(root)
		for g := range c.Gates {
			if an.Reaches(root, g) != ref[g] {
				t.Fatalf("concurrent build corrupted cone of %d", root)
			}
		}
	}
}
