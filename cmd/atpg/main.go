// Command atpg derives diagnosis test-sets for a golden/faulty netlist
// pair: random bit-parallel simulation with a SAT-based
// distinguishing-vector fallback (miter construction). Tests are written
// one per line as "<vector> <output-name> <correct-value>", the triple
// format of the paper's Definition 1.
//
//	atpg -golden spec.bench -faulty impl.bench -n 32 -out tests.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	diagnosis "repro"
	"repro/internal/tgen"
)

func main() {
	var (
		goldenPath = flag.String("golden", "", "golden .bench netlist")
		faultyPath = flag.String("faulty", "", "faulty .bench netlist")
		n          = flag.Int("n", 16, "number of tests to derive")
		seed       = flag.Int64("seed", 1, "random-simulation seed")
		out        = flag.String("out", "", "output file (default: stdout)")
		satOnly    = flag.Bool("sat", false, "skip random simulation, use the SAT miter directly")
	)
	flag.Parse()
	if *goldenPath == "" || *faultyPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*goldenPath, *faultyPath, *n, *seed, *out, *satOnly); err != nil {
		fmt.Fprintln(os.Stderr, "atpg:", err)
		os.Exit(1)
	}
}

func run(goldenPath, faultyPath string, n int, seed int64, out string, satOnly bool) error {
	golden, err := diagnosis.LoadBench(goldenPath)
	if err != nil {
		return err
	}
	faulty, err := diagnosis.LoadBench(faultyPath)
	if err != nil {
		return err
	}
	var tests diagnosis.TestSet
	if satOnly {
		tests, err = tgen.ATPG(golden, faulty, tgen.ATPGOptions{Count: n})
	} else {
		tests, err = diagnosis.MakeTests(golden, faulty, diagnosis.TestGenOptions{Count: n, Seed: seed})
	}
	if err != nil {
		return err
	}
	if bad := diagnosis.VerifyTests(golden, faulty, tests); bad >= 0 {
		return fmt.Errorf("internal error: generated test %d is invalid", bad)
	}
	w := bufio.NewWriter(os.Stdout)
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	defer w.Flush()
	for _, t := range tests {
		for _, v := range t.Vector {
			if v {
				fmt.Fprint(w, "1")
			} else {
				fmt.Fprint(w, "0")
			}
		}
		val := 0
		if t.Want {
			val = 1
		}
		fmt.Fprintf(w, " %s %d\n", golden.Gates[t.Output].Name, val)
	}
	fmt.Fprintf(os.Stderr, "atpg: %d tests over %d erroneous outputs\n", len(tests), len(tests.Outputs()))
	return nil
}
