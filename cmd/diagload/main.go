// Command diagload replays synthetic multi-client diagnosis traffic
// against a running diagserver and reports throughput and latency
// quantiles, plus the server-side pool hit rate.
//
// Modes:
//
//	diagload -addr http://localhost:8344 -n 100 -c 8 -circuits s298x,s400x,s526x -zipf 1.2
//	    mixed load: zipf-popular circuits, warm pool, p50/p99 report
//	diagload -smoke
//	    one cold + one warm request; exits non-zero unless the warm
//	    request reports a pool hit with identical solutions
//	diagload -compare -circuits s1423x -tests 16 -inject 2
//	    cold vs warm vs incremental latency on one workload (the
//	    Table 2 amortization measurement)
//	diagload -chaos
//	    drive a failpoint-armed server (diagserver -failpoints ...) and
//	    assert the fault-tolerance contract: no 5xx escapes the
//	    recovery layers and every complete=true response is
//	    byte-identical to a locally computed fault-free diagnosis
//	diagload -restart prime -state st.json   (then SIGKILL + restart the server)
//	diagload -restart verify -state st.json
//	    crash-equivalence gate against a diagserver -journal-dir: prime
//	    warms the pool and records a solution baseline; verify waits out
//	    the replay (503 warming), then asserts every request hits the
//	    replayed pool warm (no re-encoding) with byte-identical solutions
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/service"
	"repro/internal/tgen"
	"repro/internal/trace"
)

type config struct {
	addr     string
	circuits []string
	inject   int
	seed     int64
	tests    int
	k        int
	shards   []int    // each request draws one uniformly
	engines  []string // each request draws one uniformly ("" = bsat)
	enums    []string // enumeration-mode mix; each request draws one
	n        int
	clients  int
	zipf     float64
	coldFrac float64
	reps        int
	minSpeed    float64
	traceSample int
	out         io.Writer
}

func main() {
	var (
		addr      = flag.String("addr", "http://localhost:8344", "diagserver base URL")
		circuits  = flag.String("circuits", "s298x,s400x,s526x", "comma-separated suite circuits")
		inject    = flag.Int("inject", 1, "errors injected per circuit")
		seed      = flag.Int64("seed", 1, "workload seed")
		tests     = flag.Int("tests", 8, "failing tests per workload")
		k         = flag.Int("k", 0, "correction size limit (0 = number of injected errors)")
		shards    = flag.String("shards", "1", "comma-separated shard counts; each request draws one")
		engines   = flag.String("engines", "bsat", "comma-separated engine mix; each request draws one")
		enums     = flag.String("enums", "legacy,projected", "comma-separated enumeration-mode mix; each request draws one")
		n         = flag.Int("n", 50, "total requests")
		clients   = flag.Int("c", 4, "concurrent clients")
		zipf      = flag.Float64("zipf", 1.2, "circuit popularity skew (<=1 = uniform)")
		coldFrac  = flag.Float64("cold-frac", 0, "fraction of requests forced cold (pool bypass)")
		reps      = flag.Int("reps", 3, "repetitions per stage in -compare")
		minSpeed  = flag.Float64("min-speedup", 0, "-compare exits non-zero when warm speedup is below this")
		smoke     = flag.Bool("smoke", false, "cold+warm smoke: assert the warm request hits the pool")
		compare   = flag.Bool("compare", false, "measure cold vs warm vs incremental latency")
		chaos     = flag.Bool("chaos", false, "fault-tolerance gate against a failpoint-armed server")
		portfolio = flag.Bool("portfolio", false,
			"portfolio smoke against a diagserver -portfolio: assert raced and pinned solutions are identical")
		restart = flag.String("restart", "",
			"crash-equivalence gate phase: 'prime' warms the pool and records a baseline, 'verify' asserts warm replay after a restart")
		stateFile = flag.String("state", "diagload-restart.json", "baseline file shared by the -restart phases")
		traceSample = flag.Int("trace-sample", 0,
			"after a load run, print the span breakdown of the N slowest requests")
	)
	flag.Parse()

	shardList, err := splitInts(*shards)
	if err != nil {
		fmt.Fprintln(os.Stderr, "diagload: -shards:", err)
		os.Exit(1)
	}
	cfg := config{
		addr: strings.TrimRight(*addr, "/"), circuits: splitList(*circuits),
		inject: *inject, seed: *seed, tests: *tests, k: *k,
		shards: shardList, engines: splitList(*engines), enums: splitList(*enums),
		n: *n, clients: *clients, zipf: *zipf, coldFrac: *coldFrac,
		reps: *reps, minSpeed: *minSpeed, traceSample: *traceSample, out: os.Stdout,
	}
	if cfg.k <= 0 {
		cfg.k = cfg.inject
	}
	if len(cfg.engines) == 0 {
		cfg.engines = []string{"bsat"}
	}
	if len(cfg.shards) == 0 {
		cfg.shards = []int{1}
	}
	if len(cfg.enums) == 0 {
		cfg.enums = []string{"legacy"}
	}
	switch {
	case *smoke:
		err = runSmoke(cfg)
	case *compare:
		err = runCompare(cfg)
	case *chaos:
		err = runChaos(cfg)
	case *portfolio:
		err = runPortfolio(cfg)
	case *restart != "":
		err = runRestart(cfg, *restart, *stateFile)
	default:
		err = runLoad(cfg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "diagload:", err)
		os.Exit(1)
	}
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func splitInts(s string) ([]int, error) {
	var out []int
	for _, p := range splitList(s) {
		var v int
		if _, err := fmt.Sscanf(p, "%d", &v); err != nil || v < 1 {
			return nil, fmt.Errorf("bad count %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

// workload is one circuit's prepared request payload.
type workload struct {
	name  string
	bench string
	tests []service.TestJSON
	extra []service.TestJSON // spare tests for incremental edits
}

// prepare builds the faulty circuit and failing tests for each named
// circuit, scanning seeds until the injected fault is detectable.
func prepare(cfg config) ([]workload, error) {
	loads := make([]workload, 0, len(cfg.circuits))
	for ci, name := range cfg.circuits {
		golden, err := gen.ByName(name)
		if err != nil {
			return nil, err
		}
		var wl *workload
		for s := cfg.seed + int64(ci); s < cfg.seed+int64(ci)+50; s++ {
			faulty, _, err := faults.Inject(golden, faults.Options{Count: cfg.inject, Seed: s})
			if err != nil {
				return nil, fmt.Errorf("%s: inject: %w", name, err)
			}
			// One spare test beyond the base set feeds -compare's
			// incremental stage.
			ts, err := tgen.Random(golden, faulty, tgen.Options{Count: cfg.tests + 1, Seed: s})
			if err == tgen.ErrUndetected {
				continue
			}
			if err != nil {
				return nil, fmt.Errorf("%s: tests: %w", name, err)
			}
			var sb strings.Builder
			if err := circuit.WriteBench(&sb, faulty); err != nil {
				return nil, err
			}
			wire := toWire(ts)
			wl = &workload{name: name, bench: sb.String(), tests: wire[:cfg.tests], extra: wire[cfg.tests:]}
			break
		}
		if wl == nil {
			return nil, fmt.Errorf("%s: no detectable fault in 50 seeds", name)
		}
		loads = append(loads, *wl)
	}
	return loads, nil
}

func toWire(ts circuit.TestSet) []service.TestJSON {
	out := make([]service.TestJSON, len(ts))
	for i, t := range ts {
		var vb strings.Builder
		for _, b := range t.Vector {
			if b {
				vb.WriteByte('1')
			} else {
				vb.WriteByte('0')
			}
		}
		out[i] = service.TestJSON{Vector: vb.String(), Output: t.Output, Want: t.Want}
	}
	return out
}

func postJSON[T any](base, path string, body any) (T, error) {
	var out T
	b, err := json.Marshal(body)
	if err != nil {
		return out, err
	}
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(b))
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return out, err
	}
	if resp.StatusCode != http.StatusOK {
		return out, fmt.Errorf("%s: HTTP %d: %s", path, resp.StatusCode, strings.TrimSpace(string(raw)))
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		return out, fmt.Errorf("%s: decode: %w", path, err)
	}
	return out, nil
}

func (cfg config) request(wl workload, mode, engine string, shards int, enum string) service.DiagnoseRequest {
	if enum == "legacy" {
		enum = "" // the wire zero value; keeps old servers compatible
	}
	return service.DiagnoseRequest{
		Bench:  wl.bench,
		Tests:  wl.tests,
		K:      cfg.k,
		Shards: shards,
		Engine: engine,
		Mode:   mode,
		Enum:   enum,
	}
}

// base is the single-choice request the smoke/compare paths use.
func (cfg config) base(wl workload, mode string) service.DiagnoseRequest {
	return cfg.request(wl, mode, cfg.engines[0], cfg.shards[0], "legacy")
}

// fetchMetric scrapes one plain sample from /metrics.
func fetchMetric(base, name string) (int64, error) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, err
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if strings.HasPrefix(line, name+" ") {
			var v int64
			if _, err := fmt.Sscanf(line[len(name)+1:], "%d", &v); err != nil {
				return 0, err
			}
			return v, nil
		}
	}
	return 0, fmt.Errorf("metric %s not exposed", name)
}

func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// runLoad replays mixed multi-client traffic with zipf circuit
// popularity and reports throughput + latency quantiles.
func runLoad(cfg config) error {
	loads, err := prepare(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(cfg.out, "workloads: %d circuits, %d tests each, k=%d, engines=%v, shards=%v, enums=%v\n",
		len(loads), cfg.tests, cfg.k, cfg.engines, cfg.shards, cfg.enums)

	type sample struct {
		d       time.Duration
		mode    string
		hit     bool
		id      string
		name    string
		timings *trace.SpanJSON
	}
	samples := make([]sample, cfg.n)
	var enumStats struct {
		sync.Mutex
		earlyTerms, continueBJ, skipped int64
	}
	var idx struct {
		sync.Mutex
		next int
	}
	pick := func(r *rand.Rand, z *rand.Zipf) int {
		if z != nil {
			return int(z.Uint64())
		}
		return r.Intn(len(loads))
	}
	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, cfg.clients)
	for c := 0; c < cfg.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(cfg.seed + int64(c)*7919))
			var z *rand.Zipf
			if cfg.zipf > 1 && len(loads) > 1 {
				z = rand.NewZipf(r, cfg.zipf, 1, uint64(len(loads)-1))
			}
			for {
				idx.Lock()
				i := idx.next
				idx.next++
				idx.Unlock()
				if i >= cfg.n {
					return
				}
				wl := loads[pick(r, z)]
				mode := ""
				if cfg.coldFrac > 0 && r.Float64() < cfg.coldFrac {
					mode = "cold"
				}
				engine := cfg.engines[r.Intn(len(cfg.engines))]
				shards := cfg.shards[r.Intn(len(cfg.shards))]
				enum := cfg.enums[r.Intn(len(cfg.enums))]
				t0 := time.Now()
				resp, err := postJSON[service.DiagnoseResponse](cfg.addr, "/diagnose", cfg.request(wl, mode, engine, shards, enum))
				if err != nil {
					errs <- err
					return
				}
				samples[i] = sample{
					d: time.Since(t0), mode: resp.Mode, hit: resp.PoolHit,
					id: resp.RequestID, name: wl.name, timings: resp.Timings,
				}
				enumStats.Lock()
				enumStats.earlyTerms += resp.Stats.EarlyTerms
				enumStats.continueBJ += resp.Stats.ContinueBackjumps
				enumStats.skipped += resp.Stats.SkippedDecisions
				enumStats.Unlock()
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return err
	}
	elapsed := time.Since(start)

	byMode := map[string][]time.Duration{}
	hits := 0
	for _, s := range samples {
		byMode[s.mode] = append(byMode[s.mode], s.d)
		if s.hit {
			hits++
		}
	}
	fmt.Fprintf(cfg.out, "%d requests in %v — %.1f req/s, client-observed pool hits %d/%d\n",
		cfg.n, elapsed.Round(time.Millisecond), float64(cfg.n)/elapsed.Seconds(), hits, cfg.n)
	modes := make([]string, 0, len(byMode))
	for m := range byMode {
		modes = append(modes, m)
	}
	sort.Strings(modes)
	for _, m := range modes {
		ds := byMode[m]
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		fmt.Fprintf(cfg.out, "  %-11s n=%-4d p50=%-10v p99=%v\n",
			m, len(ds), quantile(ds, 0.50).Round(time.Microsecond), quantile(ds, 0.99).Round(time.Microsecond))
	}
	fmt.Fprintf(cfg.out, "  projected enumeration: earlyTerms=%d continueBackjumps=%d skippedDecisions=%d\n",
		enumStats.earlyTerms, enumStats.continueBJ, enumStats.skipped)
	for _, name := range []string{"diag_pool_hits_total", "diag_pool_misses_total", "diag_pool_evictions_total"} {
		if v, err := fetchMetric(cfg.addr, name); err == nil {
			fmt.Fprintf(cfg.out, "  %s %d\n", name, v)
		}
	}
	if cfg.traceSample > 0 {
		sort.Slice(samples, func(i, j int) bool { return samples[i].d > samples[j].d })
		n := cfg.traceSample
		if n > len(samples) {
			n = len(samples)
		}
		fmt.Fprintf(cfg.out, "slowest %d request(s):\n", n)
		for _, s := range samples[:n] {
			fmt.Fprintf(cfg.out, "  %s %s %s client-observed %v\n", s.id, s.name, s.mode, s.d.Round(time.Microsecond))
			if s.timings == nil {
				fmt.Fprintf(cfg.out, "    (no timings in response — old server?)\n")
				continue
			}
			printSpan(cfg.out, s.timings, 2)
		}
	}
	return nil
}

// printSpan renders one span breakdown as an indented tree: duration,
// phases, counters, children.
func printSpan(w io.Writer, s *trace.SpanJSON, indent int) {
	pad := strings.Repeat("  ", indent)
	detail := ""
	if s.Detail != "" {
		detail = " [" + s.Detail + "]"
	}
	fmt.Fprintf(w, "%s%s%s %.3fms\n", pad, s.Name, detail, s.DurationMS)
	for _, p := range s.Phases {
		fmt.Fprintf(w, "%s  %-14s %.3fms\n", pad, p.Name, p.DurationMS)
	}
	if len(s.Counters) > 0 {
		keys := make([]string, 0, len(s.Counters))
		for k := range s.Counters {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(w, "%s  counters:", pad)
		for _, k := range keys {
			fmt.Fprintf(w, " %s=%d", k, s.Counters[k])
		}
		fmt.Fprintln(w)
	}
	for _, c := range s.Children {
		printSpan(w, c, indent+1)
	}
}

// runSmoke drives one cold and one warm request and asserts the warm
// one hit the session pool with identical solutions — the CI gate.
func runSmoke(cfg config) error {
	cfg.circuits = cfg.circuits[:1]
	loads, err := prepare(cfg)
	if err != nil {
		return err
	}
	wl := loads[0]
	cold, err := postJSON[service.DiagnoseResponse](cfg.addr, "/diagnose", cfg.base(wl, ""))
	if err != nil {
		return err
	}
	if cold.PoolHit {
		return fmt.Errorf("smoke: first request unexpectedly hit the pool")
	}
	warm, err := postJSON[service.DiagnoseResponse](cfg.addr, "/diagnose", cfg.base(wl, ""))
	if err != nil {
		return err
	}
	if !warm.PoolHit {
		return fmt.Errorf("smoke: warm request missed the pool (mode=%s)", warm.Mode)
	}
	a, _ := json.Marshal(cold.Solutions)
	b, _ := json.Marshal(warm.Solutions)
	if !bytes.Equal(a, b) {
		return fmt.Errorf("smoke: warm solutions diverged:\n cold %s\n warm %s", a, b)
	}
	// Projected-mode request on the same warm session: identical bytes,
	// and the mode must actually engage (non-zero early terminations).
	preq := cfg.base(wl, "")
	preq.Enum = "projected"
	proj, err := postJSON[service.DiagnoseResponse](cfg.addr, "/diagnose", preq)
	if err != nil {
		return err
	}
	if !proj.PoolHit {
		return fmt.Errorf("smoke: projected request missed the pool (mode=%s)", proj.Mode)
	}
	p, _ := json.Marshal(proj.Solutions)
	if !bytes.Equal(a, p) {
		return fmt.Errorf("smoke: projected solutions diverged:\n legacy    %s\n projected %s", a, p)
	}
	if len(proj.Solutions) > 0 && proj.Stats.EarlyTerms == 0 {
		return fmt.Errorf("smoke: projected mode did not engage (earlyTerms=0, stats %+v)", proj.Stats)
	}
	hitsMetric, err := fetchMetric(cfg.addr, "diag_pool_hits_total")
	if err != nil {
		return err
	}
	if hitsMetric < 1 {
		return fmt.Errorf("smoke: /metrics reports %d pool hits, want >= 1", hitsMetric)
	}
	fmt.Fprintf(cfg.out, "smoke ok: %s cold %.1fms -> warm %.1fms -> projected %.1fms (pool hit, %d solutions identical, earlyTerms=%d continueBackjumps=%d)\n",
		wl.name, cold.ElapsedMs, warm.ElapsedMs, proj.ElapsedMs, len(warm.Solutions),
		proj.Stats.EarlyTerms, proj.Stats.ContinueBackjumps)
	return nil
}

// runPortfolio is the portfolio-racing gate against a server started
// with -portfolio: one raced request, one request per pinned solver
// configuration, and the assertion that every answer — raced, pinned
// and the local fault-free baseline — is byte-identical. That is the
// contract that makes first-wins racing sound: configurations change
// the search trajectory, never the solution set.
func runPortfolio(cfg config) error {
	cfg.circuits = cfg.circuits[:1]
	loads, err := prepare(cfg)
	if err != nil {
		return err
	}
	wl := loads[0]
	want, err := localTruth(wl, cfg.k)
	if err != nil {
		return err
	}
	raced, err := postJSON[service.DiagnoseResponse](cfg.addr, "/diagnose", cfg.base(wl, ""))
	if err != nil {
		return err
	}
	if !raced.Raced {
		return fmt.Errorf("portfolio: response was not raced — is the server running with -portfolio?")
	}
	if !raced.Complete {
		return fmt.Errorf("portfolio: raced request did not complete")
	}
	got, _ := json.Marshal(raced.Solutions)
	if string(got) != want {
		return fmt.Errorf("portfolio: raced solutions diverged from local baseline:\n raced %s\n local %s", got, want)
	}
	for _, solver := range []string{"default", "gen2"} {
		req := cfg.base(wl, "")
		req.Solver = solver
		pinned, err := postJSON[service.DiagnoseResponse](cfg.addr, "/diagnose", req)
		if err != nil {
			return err
		}
		if pinned.Raced {
			return fmt.Errorf("portfolio: solver-pinned request (%s) was raced", solver)
		}
		if pinned.Solver != solver {
			return fmt.Errorf("portfolio: pinned request reports solver %q, want %q", pinned.Solver, solver)
		}
		pb, _ := json.Marshal(pinned.Solutions)
		if !bytes.Equal(pb, got) {
			return fmt.Errorf("portfolio: %s solutions diverged from the raced answer:\n %s %s\n raced %s", solver, solver, pb, got)
		}
	}
	races, err := fetchMetric(cfg.addr, "diag_portfolio_races_total")
	if err != nil {
		return err
	}
	if races < 1 {
		return fmt.Errorf("portfolio: /metrics reports %d races, want >= 1", races)
	}
	fmt.Fprintf(cfg.out, "portfolio ok: %s raced (winner %s, %.1fms), %d solutions identical across raced/default/gen2/local\n",
		wl.name, raced.Solver, raced.ElapsedMs, len(raced.Solutions))
	return nil
}

// postJSONStatus is postJSON that surfaces the HTTP status instead of
// treating non-200 as a transport error — chaos runs expect shedding
// (429/503) and degraded answers and must count them, not die on them.
func postJSONStatus[T any](base, path string, body any) (int, T, error) {
	var out T
	b, err := json.Marshal(body)
	if err != nil {
		return 0, out, err
	}
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(b))
	if err != nil {
		return 0, out, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, out, err
	}
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &out); err != nil {
			return resp.StatusCode, out, fmt.Errorf("%s: decode: %w", path, err)
		}
	}
	return resp.StatusCode, out, nil
}

// localTruth computes the fault-free diagnosis for a workload in this
// process (no failpoints armed here), on the server's view of the
// circuit — the equivalence baseline for completed chaos responses.
func localTruth(wl workload, k int) (string, error) {
	c, err := circuit.ParseBench(wl.name, strings.NewReader(wl.bench))
	if err != nil {
		return "", err
	}
	tests := make(circuit.TestSet, len(wl.tests))
	for i, tj := range wl.tests {
		vec := make([]bool, len(tj.Vector))
		for j, ch := range tj.Vector {
			vec[j] = ch == '1'
		}
		tests[i] = circuit.Test{Vector: vec, Output: tj.Output, Want: tj.Want}
	}
	rep, err := core.Diagnose(context.Background(), core.Request{
		Engine: "bsat", Circuit: c, Tests: tests, K: k,
	})
	if err != nil {
		return "", err
	}
	if !rep.Complete {
		return "", fmt.Errorf("%s: local baseline incomplete", wl.name)
	}
	sols := make([][]int, len(rep.Solutions))
	for i, s := range rep.Solutions {
		sols[i] = s.Gates
	}
	b, err := json.Marshal(sols)
	return string(b), err
}

// runChaos is the fault-tolerance gate: replay mixed traffic against a
// server started with -failpoints and assert (1) zero 5xx — every
// injected panic was recovered, (2) every complete=true response is
// byte-identical to the local fault-free baseline, (3) the failpoints
// actually fired (visible in the fault counters), and (4) the server
// still reports live afterwards.
func runChaos(cfg config) error {
	loads, err := prepare(cfg)
	if err != nil {
		return err
	}
	want := make([]string, len(loads))
	for i, wl := range loads {
		if want[i], err = localTruth(wl, cfg.k); err != nil {
			return err
		}
	}
	fmt.Fprintf(cfg.out, "chaos: %d circuits, %d requests, %d clients, shards=%v, enums=%v\n",
		len(loads), cfg.n, cfg.clients, cfg.shards, cfg.enums)

	var mu sync.Mutex
	codes := map[int]int{}
	completed, degraded := 0, 0
	completedProjected := 0
	earlyTerms := int64(0)
	undumped := 0 // degraded responses missing their flight-recorder dump
	var mismatches []string
	var transport []error

	var idx struct {
		sync.Mutex
		next int
	}
	var wg sync.WaitGroup
	for c := 0; c < cfg.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(cfg.seed + int64(c)*7919))
			for {
				idx.Lock()
				i := idx.next
				idx.next++
				idx.Unlock()
				if i >= cfg.n {
					return
				}
				li := r.Intn(len(loads))
				wl := loads[li]
				mode := ""
				if cfg.coldFrac > 0 && r.Float64() < cfg.coldFrac {
					mode = "cold"
				}
				shards := cfg.shards[r.Intn(len(cfg.shards))]
				enum := cfg.enums[r.Intn(len(cfg.enums))]
				req := cfg.request(wl, mode, cfg.engines[r.Intn(len(cfg.engines))], shards, enum)
				// A minimal sample stage pushes sharded work onto the
				// cube workers, where the cnf/cube failpoints live.
				req.SampleCap = 1
				code, resp, err := postJSONStatus[service.DiagnoseResponse](
					cfg.addr, "/diagnose", req)
				mu.Lock()
				switch {
				case err != nil:
					transport = append(transport, err)
				case code != http.StatusOK:
					codes[code]++
				case resp.Complete:
					completed++
					codes[code]++
					if enum == "projected" {
						completedProjected++
						earlyTerms += resp.Stats.EarlyTerms
					}
					if got, _ := json.Marshal(resp.Solutions); string(got) != want[li] {
						mismatches = append(mismatches,
							fmt.Sprintf("%s shards=%d enum=%s: %s != %s", wl.name, shards, enum, got, want[li]))
					}
				default:
					degraded++
					codes[code]++
					// The degradation contract includes the black box: an
					// incomplete answer must explain itself.
					if len(resp.FlightRecorder) == 0 {
						undumped++
					}
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()

	fmt.Fprintf(cfg.out, "  status codes: %v, complete %d, degraded %d\n", codes, completed, degraded)
	faults := int64(0)
	for _, name := range []string{
		"diag_panics_recovered", "diag_cube_retries", "diag_degraded_responses",
		"diag_request_retries_total", "diag_sched_queue_timeouts_total",
	} {
		if v, err := fetchMetric(cfg.addr, name); err == nil {
			fmt.Fprintf(cfg.out, "  %s %d\n", name, v)
			faults += v
		}
	}
	if len(transport) > 0 {
		return fmt.Errorf("chaos: %d transport errors (server died?), first: %v", len(transport), transport[0])
	}
	for code, n := range codes {
		if code >= 500 && code != http.StatusServiceUnavailable && code != http.StatusGatewayTimeout {
			return fmt.Errorf("chaos: %d responses with status %d — a panic escaped the recovery layers", n, code)
		}
	}
	if completed == 0 {
		return fmt.Errorf("chaos: no request completed — degradation swallowed the whole run")
	}
	if undumped > 0 {
		return fmt.Errorf("chaos: %d/%d degraded responses carried no flight-recorder dump", undumped, degraded)
	}
	if len(mismatches) > 0 {
		return fmt.Errorf("chaos: %d completed responses diverged from the fault-free baseline, first: %s",
			len(mismatches), mismatches[0])
	}
	if faults == 0 {
		return fmt.Errorf("chaos: no fault observed in the counters — are the server's failpoints armed?")
	}
	fmt.Fprintf(cfg.out, "  projected: %d completed, earlyTerms=%d\n", completedProjected, earlyTerms)
	if completedProjected > 0 && earlyTerms == 0 {
		return fmt.Errorf("chaos: %d projected responses completed but the mode never engaged (earlyTerms=0)",
			completedProjected)
	}
	if _, err := http.Get(cfg.addr + "/healthz"); err != nil {
		return fmt.Errorf("chaos: server unreachable after run: %w", err)
	}
	fmt.Fprintf(cfg.out, "chaos ok: %d/%d complete and byte-identical, %d degraded, 0 unrecovered panics\n",
		completed, cfg.n, degraded)
	return nil
}

// restartState is the baseline the -restart prime phase writes and the
// verify phase replays: the exact wire payloads plus the solutions the
// pre-crash server produced for them. Carrying the payloads (not just
// the workload seed) makes verify independent of generator drift.
type restartState struct {
	K         int               `json:"k"`
	Workloads []restartWorkload `json:"workloads"`
}

type restartWorkload struct {
	Name      string             `json:"name"`
	Bench     string             `json:"bench"`
	Tests     []service.TestJSON `json:"tests"`
	Solutions json.RawMessage    `json:"solutions"`
}

// waitReady polls /healthz until the server reports ready — during a
// boot replay it answers 503 "warming", which this deliberately sits
// through.
func waitReady(base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			code := resp.StatusCode
			resp.Body.Close()
			if code == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("healthz: %w", err)
			}
			return fmt.Errorf("healthz: not ready within %v", timeout)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func runRestart(cfg config, phase, statePath string) error {
	switch phase {
	case "prime":
		return runRestartPrime(cfg, statePath)
	case "verify":
		return runRestartVerify(cfg, statePath)
	default:
		return fmt.Errorf("-restart %q: want prime or verify", phase)
	}
}

// runRestartPrime warms one session per circuit on a journaling server
// and records the solution baseline. The caller then kills the server
// (SIGKILL — no drain, no seal) and restarts it on the same journal
// before running the verify phase.
func runRestartPrime(cfg config, statePath string) error {
	loads, err := prepare(cfg)
	if err != nil {
		return err
	}
	st := restartState{K: cfg.k}
	for _, wl := range loads {
		resp, err := postJSON[service.DiagnoseResponse](cfg.addr, "/diagnose", cfg.base(wl, ""))
		if err != nil {
			return err
		}
		if !resp.Complete {
			return fmt.Errorf("prime: %s did not complete", wl.name)
		}
		sols, err := json.Marshal(resp.Solutions)
		if err != nil {
			return err
		}
		st.Workloads = append(st.Workloads, restartWorkload{
			Name: wl.name, Bench: wl.bench, Tests: wl.tests, Solutions: sols,
		})
	}
	b, err := json.MarshalIndent(st, "", " ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(statePath, b, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(cfg.out, "restart prime ok: %d sessions warmed and journaled, baseline in %s\n",
		len(st.Workloads), statePath)
	return nil
}

// runRestartVerify is the post-crash half of the gate: wait out the
// boot replay, then re-issue every primed request and assert it lands
// warm — pool hit, zero re-encoded test copies — with solutions
// byte-identical to both the pre-crash baseline and a locally computed
// diagnosis. A cold rebuild or a single diverging byte fails the gate.
func runRestartVerify(cfg config, statePath string) error {
	raw, err := os.ReadFile(statePath)
	if err != nil {
		return err
	}
	var st restartState
	if err := json.Unmarshal(raw, &st); err != nil {
		return fmt.Errorf("%s: %w", statePath, err)
	}
	if len(st.Workloads) == 0 {
		return fmt.Errorf("%s: no workloads — run -restart prime first", statePath)
	}
	if err := waitReady(cfg.addr, time.Minute); err != nil {
		return err
	}
	hits0, _ := fetchMetric(cfg.addr, "diag_pool_hits_total") // 0 on a fresh process
	for _, wl := range st.Workloads {
		resp, err := postJSON[service.DiagnoseResponse](cfg.addr, "/diagnose", service.DiagnoseRequest{
			Bench: wl.Bench, Tests: wl.Tests, K: st.K,
		})
		if err != nil {
			return err
		}
		if !resp.PoolHit {
			return fmt.Errorf("verify: %s rebuilt cold — replay did not restore the session", wl.Name)
		}
		if resp.NewCopies != 0 {
			return fmt.Errorf("verify: %s re-encoded %d test copies — replay lost the live test-set", wl.Name, resp.NewCopies)
		}
		got, err := json.Marshal(resp.Solutions)
		if err != nil {
			return err
		}
		// The state file is written indented (it is a debugging artifact),
		// which re-indents the embedded solutions; compact before the
		// byte-level comparison.
		var before bytes.Buffer
		if err := json.Compact(&before, wl.Solutions); err != nil {
			return fmt.Errorf("%s: baseline solutions: %w", wl.Name, err)
		}
		if !bytes.Equal(got, before.Bytes()) {
			return fmt.Errorf("verify: %s solutions diverged from pre-crash baseline:\n before %s\n after  %s",
				wl.Name, before.Bytes(), got)
		}
		want, err := localTruth(workload{name: wl.Name, bench: wl.Bench, tests: wl.Tests}, st.K)
		if err != nil {
			return err
		}
		if string(got) != want {
			return fmt.Errorf("verify: %s solutions diverged from local baseline:\n local %s\n after %s",
				wl.Name, want, got)
		}
	}
	hits1, err := fetchMetric(cfg.addr, "diag_pool_hits_total")
	if err != nil {
		return err
	}
	if hits1-hits0 < int64(len(st.Workloads)) {
		return fmt.Errorf("verify: warm hit rate too low: %d hits for %d replayed requests",
			hits1-hits0, len(st.Workloads))
	}
	replayed, err := fetchMetric(cfg.addr, "diag_replay_sessions_total")
	if err != nil {
		return err
	}
	if replayed < 1 {
		return fmt.Errorf("verify: diag_replay_sessions_total=%d — did the server boot with -journal-dir?", replayed)
	}
	fmt.Fprintf(cfg.out, "restart verify ok: %d/%d sessions warm after crash (replayed=%d, pool hits +%d), solutions byte-identical\n",
		len(st.Workloads), len(st.Workloads), replayed, hits1-hits0)
	return nil
}

// runCompare measures the amortization the warm-session design exists
// for: cold (pool bypass) vs warm (session reuse) vs incremental (test
// edit on the live session) latency on one workload.
func runCompare(cfg config) error {
	cfg.circuits = cfg.circuits[:1]
	loads, err := prepare(cfg)
	if err != nil {
		return err
	}
	wl := loads[0]
	fmt.Fprintf(cfg.out, "compare: %s, %d tests, k=%d, shards=%d, %d reps\n",
		wl.name, cfg.tests, cfg.k, cfg.shards[0], cfg.reps)

	measure := func(fn func() error) (time.Duration, error) {
		best := time.Duration(0)
		for r := 0; r < cfg.reps; r++ {
			t0 := time.Now()
			if err := fn(); err != nil {
				return 0, err
			}
			d := time.Since(t0)
			if best == 0 || d < best {
				best = d
			}
		}
		return best, nil
	}

	cold, err := measure(func() error {
		_, err := postJSON[service.DiagnoseResponse](cfg.addr, "/diagnose", cfg.base(wl, "cold"))
		return err
	})
	if err != nil {
		return err
	}

	// Warm-start once (pool miss builds the session), then measure hits.
	first, err := postJSON[service.DiagnoseResponse](cfg.addr, "/diagnose", cfg.base(wl, ""))
	if err != nil {
		return err
	}
	warm, err := measure(func() error {
		resp, err := postJSON[service.DiagnoseResponse](cfg.addr, "/diagnose", cfg.base(wl, ""))
		if err != nil {
			return err
		}
		if !resp.PoolHit {
			return fmt.Errorf("warm request missed the pool")
		}
		return nil
	})
	if err != nil {
		return err
	}

	// Incremental: alternately add and retract the spare test on the
	// live session — the "edited test-set" re-diagnosis.
	sid := first.Session
	addSpare := true
	incr, err := measure(func() error {
		var req service.SessionTestsRequest
		if addSpare {
			req.Add = wl.extra
		} else {
			req.Remove = []int{cfg.tests} // the spare sits past the base tests
		}
		addSpare = !addSpare
		_, err := postJSON[service.DiagnoseResponse](cfg.addr, "/sessions/"+sid+"/tests", req)
		return err
	})
	if err != nil {
		return err
	}

	speedW := float64(cold) / float64(warm)
	speedI := float64(cold) / float64(incr)
	fmt.Fprintf(cfg.out, "  cold        %v\n  warm        %v  (%.2fx)\n  incremental %v  (%.2fx)\n",
		cold.Round(time.Microsecond), warm.Round(time.Microsecond), speedW,
		incr.Round(time.Microsecond), speedI)
	if cfg.minSpeed > 0 && speedW < cfg.minSpeed {
		return fmt.Errorf("warm speedup %.2fx below required %.2fx", speedW, cfg.minSpeed)
	}
	return nil
}
