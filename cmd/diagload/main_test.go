package main

import (
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/service"
)

func testConfig(base string) config {
	return config{
		addr:     strings.TrimRight(base, "/"),
		circuits: []string{"s298x"},
		inject:   1,
		seed:     3,
		tests:    4,
		k:        1,
		shards:   []int{1},
		engines:  []string{"bsat"},
		enums:    []string{"legacy", "projected"},
		n:        6,
		clients:  2,
		zipf:     1.2,
		reps:     2,
		out:      &strings.Builder{},
	}
}

func newBackend(t *testing.T) *httptest.Server {
	t.Helper()
	srv := service.NewServer(service.Options{
		Scheduler: service.SchedulerOptions{Workers: 2, Queue: 16},
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestSmokeAgainstInProcessServer: the -smoke gate (cold, then warm
// pool hit with identical solutions) against a real service instance.
func TestSmokeAgainstInProcessServer(t *testing.T) {
	ts := newBackend(t)
	if err := runSmoke(testConfig(ts.URL)); err != nil {
		t.Fatal(err)
	}
}

// TestLoadAgainstInProcessServer: the mixed-traffic path end to end,
// including the /metrics scrape.
func TestLoadAgainstInProcessServer(t *testing.T) {
	ts := newBackend(t)
	cfg := testConfig(ts.URL)
	cfg.circuits = []string{"s298x", "s400x"}
	cfg.coldFrac = 0.3
	cfg.engines = []string{"bsat", "cegar"}
	cfg.shards = []int{1, 2}
	var sb strings.Builder
	cfg.out = &sb
	if err := runLoad(cfg); err != nil {
		t.Fatal(err)
	}
	report := sb.String()
	for _, want := range []string{"req/s", "p50=", "diag_pool_hits_total"} {
		if !strings.Contains(report, want) {
			t.Fatalf("report missing %q:\n%s", want, report)
		}
	}
}

// TestCompareAgainstInProcessServer: cold vs warm vs incremental runs
// cleanly and reports speedups (the assertion threshold is exercised on
// the real Table 2 workload, not this tiny circuit).
func TestCompareAgainstInProcessServer(t *testing.T) {
	ts := newBackend(t)
	cfg := testConfig(ts.URL)
	var sb strings.Builder
	cfg.out = &sb
	if err := runCompare(cfg); err != nil {
		t.Fatal(err)
	}
	report := sb.String()
	for _, want := range []string{"cold", "warm", "incremental", "x)"} {
		if !strings.Contains(report, want) {
			t.Fatalf("report missing %q:\n%s", want, report)
		}
	}
}
