package main

import (
	"testing"
	"time"
)

// TestRunSmoke drives the full CLI body on an embedded benchmark for
// every engine × shard combination the flags expose. Building this test
// binary is the build check; running run() is the CLI smoke.
func TestRunSmoke(t *testing.T) {
	cases := []struct {
		name   string
		method string
		engine string
		shards int
	}{
		{"bsat-mono", "bsat", "mono", 1},
		{"bsat-mono-sharded", "bsat", "mono", 2},
		{"bsat-cegar", "bsat", "cegar", 1},
		{"bsat-cegar-sharded", "bsat", "cegar", 2},
		{"hybrid", "hybrid", "mono", 1},
		{"all-engines", "all", "mono", 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run("s298x", "", "", 1, 1, "kind", 4, 0,
				tc.method, tc.engine, tc.shards, 200, time.Minute, false)
			if err != nil {
				t.Fatalf("run(%s/%s/shards=%d): %v", tc.method, tc.engine, tc.shards, err)
			}
		})
	}
}

// TestRunRejectsBadFlags: engine validation happens inside run.
func TestRunRejectsBadFlags(t *testing.T) {
	if err := run("s298x", "", "", 1, 1, "kind", 4, 0, "bsat", "warp", 1, 10, time.Minute, false); err == nil {
		t.Fatal("unknown engine accepted")
	}
	if err := run("", "", "", 1, 1, "kind", 4, 0, "bsat", "mono", 1, 10, time.Minute, false); err == nil {
		t.Fatal("missing circuit accepted")
	}
}
