// Command diagnose runs the paper's diagnosis engines on a circuit.
//
// Typical session — inject two errors into a synthetic benchmark and
// compare all three engines:
//
//	diagnose -circuit s1423x -inject 2 -seed 7 -tests 16 -method all
//
// Diagnosing an explicit faulty implementation against a golden netlist:
//
//	diagnose -golden spec.bench -faulty impl.bench -tests 8 -method bsat -k 2
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	diagnosis "repro"
)

func main() {
	var (
		circuitName = flag.String("circuit", "", "synthetic suite circuit to diagnose (see -list)")
		goldenPath  = flag.String("golden", "", "golden .bench netlist (with -faulty)")
		faultyPath  = flag.String("faulty", "", "faulty .bench netlist (with -golden)")
		listNames   = flag.Bool("list", false, "list synthetic suite circuits and exit")
		inject      = flag.Int("inject", 1, "number of errors to inject (with -circuit)")
		seed        = flag.Int64("seed", 1, "injection/test-generation seed")
		model       = flag.String("model", "kind", "error model: kind, invert, function")
		numTests    = flag.Int("tests", 8, "number of tests m")
		k           = flag.Int("k", 0, "correction size limit (default: number of injected errors)")
		method      = flag.String("method", "all", "bsim, cov, bsat, hybrid, or all")
		engine      = flag.String("engine", "mono", "SAT engine: mono (one copy per test) or cegar (lazy abstraction, identical solutions)")
		shards      = flag.Int("shards", 1, "parallel enumeration shards for the SAT engines (complete runs return identical solutions for any count)")
		maxSol      = flag.Int("max-solutions", 5000, "solution cap per engine (0 = unlimited)")
		timeout     = flag.Duration("timeout", 2*time.Minute, "BSAT enumeration timeout (0 = unlimited)")
		verbose     = flag.Bool("v", false, "print individual solutions")
	)
	flag.Parse()

	if *listNames {
		for _, n := range diagnosis.BenchmarkNames() {
			fmt.Println(n)
		}
		return
	}
	if err := run(*circuitName, *goldenPath, *faultyPath, *inject, *seed, *model,
		*numTests, *k, *method, *engine, *shards, *maxSol, *timeout, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "diagnose:", err)
		os.Exit(1)
	}
}

func run(circuitName, goldenPath, faultyPath string, inject int, seed int64, model string,
	numTests, k int, method, engine string, shards, maxSol int, timeout time.Duration, verbose bool) error {

	var (
		golden, faulty *diagnosis.Circuit
		sites          []int
		err            error
	)
	switch {
	case circuitName != "":
		golden, err = diagnosis.GenerateCircuit(circuitName)
		if err != nil {
			return err
		}
		var m diagnosis.InjectOptions
		m.Count = inject
		m.Seed = seed
		switch model {
		case "kind":
			m.Model = diagnosis.KindChange
		case "invert":
			m.Model = diagnosis.OutputInversion
		case "function":
			m.Model = diagnosis.FunctionChange
		default:
			return fmt.Errorf("unknown error model %q", model)
		}
		var fs *diagnosis.FaultSet
		faulty, fs, err = diagnosis.Inject(golden, m)
		if err != nil {
			return err
		}
		sites = fs.Sites()
		fmt.Printf("circuit: %v\ninjected: %v\n", golden, fs)
	case goldenPath != "" && faultyPath != "":
		golden, err = diagnosis.LoadBench(goldenPath)
		if err != nil {
			return err
		}
		faulty, err = diagnosis.LoadBench(faultyPath)
		if err != nil {
			return err
		}
		fmt.Printf("golden: %v\nfaulty: %v\n", golden, faulty)
	default:
		return fmt.Errorf("need -circuit, or -golden and -faulty (try -list)")
	}

	tests, err := diagnosis.MakeTests(golden, faulty, diagnosis.TestGenOptions{Count: numTests, Seed: seed})
	if err != nil {
		return err
	}
	fmt.Printf("tests: %d failing triples over %d erroneous outputs\n", len(tests), len(tests.Outputs()))
	if k <= 0 {
		k = inject
		if k <= 0 {
			k = 1
		}
	}

	want := strings.ToLower(method)
	do := func(name string) bool { return want == "all" || want == name }

	if engine != "" && engine != "mono" && engine != "cegar" {
		return fmt.Errorf("unknown engine %q (want mono or cegar)", engine)
	}
	if engine == "cegar" && want == "hybrid" {
		return fmt.Errorf("-engine cegar does not combine with -method hybrid (steering is a mono-BSAT feature); use -method bsat")
	}

	if do("bsim") {
		res := diagnosis.DiagnoseBSIM(faulty, tests, diagnosis.PTOptions{})
		fmt.Printf("\n[BSIM] %v: |union(Ci)| = %d, Gmax = %d gates\n",
			res.Elapsed, len(res.Union()), len(res.MaxMarked()))
		if sites != nil {
			q := diagnosis.MeasureBSIM(faulty, res, sites)
			fmt.Printf("[BSIM] avg distance of marks to real errors: %.2f (Gmax: min %d, avg %.2f)\n",
				q.AvgAll, q.GminDist, q.GavgDist)
		}
	}
	if do("cov") {
		res, err := diagnosis.DiagnoseCOV(faulty, tests, diagnosis.CovOptions{K: k, MaxSolutions: maxSol})
		if err != nil {
			return err
		}
		fmt.Printf("\n[COV]  cnf %v, one %v, all %v: %d solutions (complete=%v) — validity NOT guaranteed\n",
			res.Timings.CNF, res.Timings.One, res.Timings.All, len(res.Solutions), res.Complete)
		printSolutions(faulty, res.Solutions, sites, verbose)
	}
	if do("bsat") || do("hybrid") {
		// SAT-family methods run through the unified engine registry.
		req := diagnosis.Request{
			Circuit:      faulty,
			Tests:        tests,
			K:            k,
			Shards:       shards,
			MaxSolutions: maxSol,
			Timeout:      timeout,
		}
		switch {
		case engine == "cegar":
			req.Engine = "cegar"
		case do("hybrid") && want != "all":
			req.Engine = "hybrid"
		default:
			req.Engine = "bsat"
		}
		rep, err := diagnosis.Diagnose(context.Background(), req)
		if err != nil {
			return err
		}
		if req.Engine == "cegar" {
			fmt.Printf("\n[BSAT] cegar: %d/%d test copies encoded (%d refinements, %d candidates checked)\n",
				rep.Copies, len(tests), rep.Refinements, rep.Checked)
		}
		fmt.Printf("\n[BSAT] %s: cnf %v (%d vars, %d clauses), one %v, all %v: %d valid corrections (complete=%v)\n",
			rep.Engine, rep.Timings.CNF, rep.Vars, rep.Clauses, rep.Timings.One, rep.Timings.All,
			len(rep.Solutions), rep.Complete)
		fmt.Printf("[BSAT] solver: %d decisions, %d conflicts, %d propagations\n",
			rep.Stats.Decisions, rep.Stats.Conflicts, rep.Stats.Propagations)
		for _, st := range rep.PerShard {
			fmt.Printf("[BSAT]   shard %d: %d solutions in %v (complete=%v, %d conflicts)\n",
				st.Shard, st.Solutions, st.Elapsed, st.Complete, st.Stats.Conflicts)
		}
		printSolutions(faulty, rep.Solutions, sites, verbose)
	}
	return nil
}

func printSolutions(c *diagnosis.Circuit, sols []diagnosis.Correction, sites []int, verbose bool) {
	limit := len(sols)
	if !verbose && limit > 10 {
		limit = 10
	}
	siteSet := make(map[int]bool)
	for _, s := range sites {
		siteSet[s] = true
	}
	for i := 0; i < limit; i++ {
		names := make([]string, len(sols[i].Gates))
		hit := ""
		for j, g := range sols[i].Gates {
			names[j] = c.Gates[g].Name
			if siteSet[g] {
				hit = "  <-- contains real error site"
			}
		}
		fmt.Printf("  %3d. {%s}%s\n", i+1, strings.Join(names, ", "), hit)
	}
	if limit < len(sols) {
		fmt.Printf("  ... %d more (use -v)\n", len(sols)-limit)
	}
}
